// Quickstart: build a transaction dependency graph, compute the paper's two
// concurrency metrics, and evaluate the speed-up model — first on the
// paper's own Figure 1 worked examples, then on a freshly generated
// Ethereum-like block.
package main

import (
	"fmt"
	"os"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The paper's worked examples (Figure 1). Block 1000007 has five
	// transactions of which two share a sender; block 1000124 has sixteen
	// transactions dominated by exchange deposits and a contract cascade.
	for _, fx := range []struct {
		name string
		view *core.AccountBlockView
	}{
		{"Ethereum block 1000007 (Fig. 1a)", core.Fig1aView()},
		{"Ethereum block 1000124 (Fig. 1b)", core.Fig1bView()},
	} {
		m := core.MeasureAccountView(fx.view)
		fmt.Printf("%s\n", fx.name)
		fmt.Printf("  transactions: %d (+%d internal), components: %d\n",
			m.NumTxs, m.NumInternal, m.Components)
		fmt.Printf("  single-transaction conflict rate: %.2f%%\n", 100*m.SingleRate())
		fmt.Printf("  group conflict rate:              %.2f%%\n", 100*m.GroupRate())
		for _, n := range []int{8, 16} {
			s, err := core.SpeedupsForBlock(m, n)
			if err != nil {
				return err
			}
			fmt.Printf("  n=%2d cores: speculative %.2fx (eq.1), group %.2fx (eq.2)\n",
				n, s.SpeculativeExact, s.Group)
		}
		fmt.Println()
	}

	// 2. A generated Ethereum-like block: execute it for real (the VM
	// produces the internal-transaction traces) and measure it.
	gen, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 3, 42)
	if err != nil {
		return err
	}
	var m core.Metrics
	for {
		blk, receipts, ok, err := gen.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		m = core.MeasureAccountBlock(blk, receipts)
	}
	fmt.Println("Generated Ethereum-like block")
	fmt.Printf("  transactions: %d (+%d internal), gas: %d\n", m.NumTxs, m.NumInternal, m.GasUsed)
	fmt.Printf("  single-transaction conflict rate: %.2f%%\n", 100*m.SingleRate())
	fmt.Printf("  group conflict rate:              %.2f%%\n", 100*m.GroupRate())
	s, err := core.SpeedupsForBlock(m, 8)
	if err != nil {
		return err
	}
	fmt.Printf("  8 cores: speculative %.2fx, group %.2fx\n", s.SpeculativeExact, s.Group)
	return nil
}
