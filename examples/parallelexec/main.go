// Parallelexec demonstrates the execution engines the paper names as future
// work: it generates Ethereum-like blocks and executes each with the
// sequential baseline, the speculative two-phase engine ([17]), the
// TDG-group engine (the paper's §V-B), and the ordered-STM engine, checking
// serial equivalence and comparing measured speed-ups with the analytical
// model.
package main

import (
	"flag"
	"fmt"
	"os"

	"txconcur/internal/account"
	"txconcur/internal/bench"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/exec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parallelexec:", err)
		os.Exit(1)
	}
}

func run() error {
	blocks := flag.Int("blocks", 10, "blocks to execute")
	workers := flag.Int("workers", 8, "cores n for the parallel engines")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	gen, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), *blocks, *seed)
	if err != nil {
		return err
	}

	t := bench.Table{
		Title: fmt.Sprintf("Execution engines on Ethereum-like blocks (n = %d, unit-cost speed-ups)", *workers),
		Headers: []string{
			"Block", "Txs", "Conflict", "LCC", "Spec", "Eq.(1)", "Group", "Eq.(2)", "STM", "Roots",
		},
	}
	for {
		pre := gen.Chain().State().Copy()
		blk, receipts, ok, err := gen.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if len(blk.Txs) == 0 {
			continue
		}
		m := core.MeasureAccountBlock(blk, receipts)

		seq, err := exec.Sequential(pre.Copy(), blk)
		if err != nil {
			return err
		}
		spec, err := exec.Speculative{Workers: *workers}.Execute(pre.Copy(), blk)
		if err != nil {
			return err
		}
		grp, err := exec.Grouped{Workers: *workers, Receipts: receipts}.Execute(pre.Copy(), blk)
		if err != nil {
			return err
		}
		stm, err := exec.STMExec{Workers: *workers}.Execute(pre.Copy(), blk)
		if err != nil {
			return err
		}

		rootsOK := "ok"
		for _, r := range []*exec.Result{spec, grp, stm} {
			if r.Root != seq.Root {
				rootsOK = "MISMATCH"
			}
		}
		eq1, err := core.SpeculativeSpeedupExact(m.NumTxs, m.SingleRate(), *workers)
		if err != nil {
			return err
		}
		eq2, err := core.GroupSpeedup(*workers, m.GroupRate())
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", blk.Height),
			fmt.Sprintf("%d", m.NumTxs),
			fmt.Sprintf("%.0f%%", 100*m.SingleRate()),
			fmt.Sprintf("%d", m.LCC),
			fmt.Sprintf("%.2fx", spec.Stats.Speedup),
			fmt.Sprintf("%.2fx", eq1),
			fmt.Sprintf("%.2fx", grp.Stats.Speedup),
			fmt.Sprintf("%.2fx", eq2),
			fmt.Sprintf("%.2fx", stm.Stats.Speedup),
			rootsOK,
		})
	}
	if err := bench.RenderTable(os.Stdout, t); err != nil {
		return err
	}

	// Demonstrate the serial-equivalence guarantee explicitly on one more
	// block with a deliberately hot receiver.
	fmt.Println("\nSerial-equivalence spot check (hot-receiver block):")
	st := account.NewStateDB()
	hot := make([]*account.Transaction, 0, 8)
	for i := 0; i < 8; i++ {
		from := accountAddr(uint64(i))
		st.AddBalance(from, 1_000_000_000)
		hot = append(hot, &account.Transaction{
			From: from, To: accountAddr(99), Value: 5,
			GasLimit: account.GasTx, GasPrice: 1,
		})
	}
	st.DiscardJournal()
	blk := &account.Block{Height: 0, Coinbase: accountAddr(100), Txs: hot}
	seq, err := exec.Sequential(st.Copy(), blk)
	if err != nil {
		return err
	}
	spec, err := exec.Speculative{Workers: 8}.Execute(st.Copy(), blk)
	if err != nil {
		return err
	}
	fmt.Printf("  all 8 transactions pay one address: binned %d/8, speed-up %.2fx (< 1 is the paper's R<1 regime)\n",
		spec.Stats.Conflicted, spec.Stats.Speedup)
	fmt.Printf("  roots equal: %v\n", spec.Root == seq.Root)
	return nil
}

func accountAddr(i uint64) (a [20]byte) {
	copy(a[:], fmt.Sprintf("example-user-%07d", i))
	return a
}
