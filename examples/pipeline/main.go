// Pipeline is a walkthrough of the mvstore-backed two-phase pipelined
// engine: it generates account-model histories, executes each whole chain
// with exec.Pipeline at several lookahead depths, verifies serial
// equivalence against a sequential replay, and reports how the pipelined
// flow-shop schedule compares with the per-block engines and the
// analytical model.
//
// The interesting number is the re-execution share: every transaction
// whose phase-1 snapshot went stale (an address also touched by one of the
// 1–2 blocks committed in between) is repaired serially in phase 2, so
// workloads with heavy cross-block sender reuse bound the pipeline's win,
// exactly as core.PipelineSpeedup predicts.
package main

import (
	"flag"
	"fmt"
	"os"

	"txconcur/internal/account"
	"txconcur/internal/bench"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/exec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	blocks := flag.Int("blocks", 12, "blocks to generate per chain")
	workers := flag.Int("workers", 8, "cores n for the parallel engines")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	for _, name := range []string{"Ethereum", "Zilliqa"} {
		if err := runChain(name, *blocks, *workers, *seed); err != nil {
			return err
		}
	}
	return nil
}

func runChain(profile string, blocks, workers int, seed int64) error {
	p, ok := chainsim.ProfileByName(profile)
	if !ok {
		return fmt.Errorf("unknown profile %q", profile)
	}
	g, err := chainsim.NewAcctGen(p, blocks, seed)
	if err != nil {
		return err
	}
	pre := g.Chain().State().Copy()
	var chain []*account.Block
	for {
		blk, _, more, err := g.Next()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		chain = append(chain, blk)
	}

	// Ground truth: sequential replay of the same blocks from the same
	// starting state.
	seqSt := pre.Copy()
	var seqUnits int
	var conflicted float64
	for _, blk := range chain {
		blkPre := seqSt.Copy() // this block's true pre-state
		res, err := exec.Sequential(seqSt, blk)
		if err != nil {
			return err
		}
		seqUnits += res.Stats.Txs
		spec, err := exec.Speculative{Workers: workers}.Execute(blkPre, blk)
		if err != nil {
			return err
		}
		if res.Stats.Txs > 0 {
			conflicted += float64(spec.Stats.Conflicted) / float64(res.Stats.Txs)
		}
	}
	seqRoot := seqSt.Root()

	t := bench.Table{
		Title: fmt.Sprintf("%s: pipelined two-phase engine over %d blocks, %d txs (n = %d)",
			profile, len(chain), seqUnits, workers),
		Headers: []string{"Depth", "Speed-up", "Gas speed-up", "Reexec", "Mean lag", "Root"},
	}
	for _, depth := range []int{1, 2, 4} {
		res, err := exec.Pipeline{Workers: workers, Depth: depth}.ExecuteChain(pre.Copy(), chain)
		if err != nil {
			return err
		}
		rootState := "MISMATCH"
		if res.Root == seqRoot {
			rootState = "= sequential"
		}
		lag := 0
		for _, bs := range res.Blocks {
			lag += bs.Lag
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.2fx", res.Stats.Speedup),
			fmt.Sprintf("%.2fx", res.Stats.GasSpeedup),
			fmt.Sprintf("%d/%d", res.Stats.Retries, res.Stats.Txs),
			fmt.Sprintf("%.2f", float64(lag)/float64(len(res.Blocks))),
			rootState,
		})
	}
	if err := bench.RenderTable(os.Stdout, t); err != nil {
		return err
	}

	// The analytical steady-state bound, with the measured mean per-block
	// conflict share as c.
	if len(chain) > 0 {
		meanTxs := seqUnits / len(chain)
		c := conflicted / float64(len(chain))
		predicted, err := core.PipelineSpeedup(meanTxs, c, workers)
		if err == nil {
			fmt.Printf("model: PipelineSpeedup(x=%d, c=%.2f, n=%d) = %.2fx\n\n",
				meanTxs, c, workers, predicted)
		}
	}
	return nil
}
