// Ethhistory reproduces the paper's Ethereum analysis end to end: it
// generates a calibrated Ethereum-like history (2015H2–2019 eras), runs the
// bucketed conflict-rate analysis of Figure 4, and derives the potential
// speed-ups of Figure 10.
package main

import (
	"flag"
	"fmt"
	"os"

	"txconcur/internal/analysis"
	"txconcur/internal/bench"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ethhistory:", err)
		os.Exit(1)
	}
}

func run() error {
	blocks := flag.Int("blocks", 150, "history blocks to generate")
	buckets := flag.Int("buckets", 25, "series buckets")
	seed := flag.Int64("seed", 2020, "generator seed")
	flag.Parse()

	gen, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), *blocks, *seed)
	if err != nil {
		return err
	}
	h := &analysis.History{Chain: "Ethereum"}
	for {
		blk, receipts, ok, err := gen.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.Add(blk.Height, blk.Time, core.MeasureAccountBlock(blk, receipts))
	}

	summary, err := analysis.Summary(h)
	if err != nil {
		return err
	}
	fmt.Printf("Ethereum-like history: %d blocks, %.0f txs/block (%.0f incl. internal)\n",
		h.Len(), summary.MeanTxs, summary.MeanAllTxs)
	fmt.Printf("whole-history single-transaction conflict rate: %.1f%% (tx-weighted), %.1f%% (gas-weighted)\n",
		100*summary.SingleTxWeighted, 100*summary.SingleGasWeighted)
	fmt.Printf("whole-history group conflict rate:              %.1f%% (tx-weighted), %.1f%% (gas-weighted)\n\n",
		100*summary.GroupTxWeighted, 100*summary.GroupGasWeighted)

	bks, err := analysis.Bucketize(h, *buckets)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 series (bucketed, tx-weighted):")
	for _, col := range []analysis.Column{
		{Name: "txs/block", Get: func(b analysis.Bucket) float64 { return b.MeanTxs }},
		{Name: "all txs/block", Get: func(b analysis.Bucket) float64 { return b.MeanAllTxs }},
		{Name: "single rate", Get: func(b analysis.Bucket) float64 { return b.SingleTxWeighted }},
		{Name: "group rate", Get: func(b analysis.Bucket) float64 { return b.GroupTxWeighted }},
	} {
		fmt.Printf("  %-14s %s\n", col.Name, analysis.Sparkline(bks, col))
	}
	fmt.Println()

	// Figure 10: apply the model per bucket.
	fmt.Println("Figure 10: potential speed-ups per bucket")
	t := bench.Table{
		Headers: []string{"Bucket", "Txs", "Single", "Group", "Eq.(1) n=8", "Eq.(2) n=8", "Eq.(2) n=64"},
		Title:   "",
	}
	for i, b := range bks {
		x := int(b.MeanTxs + 0.5)
		eq1, err := core.SpeculativeSpeedup(x, b.SingleTxWeighted, 8)
		if err != nil {
			return err
		}
		eq2a, err := core.GroupSpeedup(8, b.GroupTxWeighted)
		if err != nil {
			return err
		}
		eq2b, err := core.GroupSpeedup(64, b.GroupTxWeighted)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", x),
			fmt.Sprintf("%.2f", b.SingleTxWeighted),
			fmt.Sprintf("%.2f", b.GroupTxWeighted),
			fmt.Sprintf("%.2fx", eq1),
			fmt.Sprintf("%.2fx", eq2a),
			fmt.Sprintf("%.2fx", eq2b),
		})
	}
	return bench.RenderTable(os.Stdout, t)
}
