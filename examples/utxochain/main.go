// Utxochain explores intra-block spend chains in a generated Bitcoin-like
// history — the pattern of the paper's Figure 6, where an 18-transaction
// sweep in block 500000 must execute fully sequentially. It prints the
// longest chain found, rendered in the figure's style (short hashes and
// values along the chain).
package main

import (
	"flag"
	"fmt"
	"os"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "utxochain:", err)
		os.Exit(1)
	}
}

func run() error {
	blocks := flag.Int("blocks", 60, "history blocks to generate")
	seed := flag.Int64("seed", 6, "generator seed")
	flag.Parse()

	gen, err := chainsim.NewUTXOGen(chainsim.BitcoinProfile(), *blocks, *seed)
	if err != nil {
		return err
	}
	var best *utxo.Block
	bestLen := 0
	totalTxs, totalConflicted, totalLCC := 0, 0, 0
	n := 0
	for {
		blk, ok, err := gen.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n++
		m := core.MeasureUTXOBlock(blk)
		totalTxs += m.NumTxs
		totalConflicted += m.Conflicted
		totalLCC += m.LCC
		if l := core.LongestSpendChain(blk); l > bestLen {
			bestLen = l
			best = blk
		}
	}
	fmt.Printf("Bitcoin-like history: %d blocks, %d transactions\n", n, totalTxs)
	fmt.Printf("single-transaction conflict rate: %.1f%%\n", 100*float64(totalConflicted)/float64(totalTxs))
	fmt.Printf("group conflict rate:              %.2f%%\n\n", 100*float64(totalLCC)/float64(totalTxs))

	fmt.Printf("Longest intra-block spend chain: %d transactions in block %d\n", bestLen, best.Height)
	fmt.Println("(these transactions must execute sequentially, as in the paper's Figure 6)")
	renderChain(best)
	return nil
}

// renderChain prints the longest spend chain of the block in the style of
// the paper's Figure 6: short transaction hashes joined by the value
// carried along the chain.
func renderChain(b *utxo.Block) {
	// Rebuild the chain: find the path of intra-block spends.
	index := make(map[types.Hash]int)
	regular := make([]*utxo.Transaction, 0, len(b.Txs))
	for _, tx := range b.Txs {
		if tx.IsCoinbase() {
			continue
		}
		index[tx.ID()] = len(regular)
		regular = append(regular, tx)
	}
	// depth and predecessor along the longest chain ending at each tx.
	depth := make([]int, len(regular))
	pred := make([]int, len(regular))
	bestEnd := 0
	for i, tx := range regular {
		depth[i] = 1
		pred[i] = -1
		for _, in := range tx.Inputs {
			if j, ok := index[in.Prev.TxID]; ok && j < i && depth[j]+1 > depth[i] {
				depth[i] = depth[j] + 1
				pred[i] = j
			}
		}
		if depth[i] > depth[bestEnd] {
			bestEnd = i
		}
	}
	chain := []int{}
	for at := bestEnd; at >= 0; at = pred[at] {
		chain = append(chain, at)
	}
	// Reverse to chronological order.
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	fmt.Print("  ")
	for i, ti := range chain {
		tx := regular[ti]
		if i > 0 {
			fmt.Printf(" --%s--> ", formatValue(tx.OutputValue()))
		}
		fmt.Print(tx.ID().Short())
	}
	fmt.Println()
}

// formatValue renders an amount in whole coins, like the BTC values along
// the paper's Figure 6 chain.
func formatValue(v utxo.Amount) string {
	const coin = 100_000_000
	return fmt.Sprintf("%d.%05d", v/coin, (v%coin)/1000)
}
