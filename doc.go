// Package txconcur is a from-scratch Go reproduction of "On Exploiting
// Transaction Concurrency To Speed Up Blockchains" (Daniël Reijsbergen and
// Tien Tuan Anh Dinh, ICDCS 2020; arXiv:2003.06128).
//
// The paper quantifies the transaction-level concurrency available in seven
// public blockchains via per-block transaction dependency graphs (TDGs) and
// models the execution speed-up that concurrency buys. This repository
// implements the paper's entire stack: UTXO and account-model blockchain
// substrates (including a gas-metered contract VM whose CALL opcodes emit
// the internal-transaction traces the TDG needs), calibrated workload
// generators for all seven chains, the TDG and conflict-rate metrics, the
// analytical speed-up model, the BigQuery-style analysis pipeline, and —
// going beyond the paper — working parallel execution engines that validate
// the model.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the reproduced tables and figures.
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package txconcur
