// Package txconcur is a from-scratch Go reproduction of "On Exploiting
// Transaction Concurrency To Speed Up Blockchains" (Daniël Reijsbergen and
// Tien Tuan Anh Dinh, ICDCS 2020; arXiv:2003.06128).
//
// The paper quantifies the transaction-level concurrency available in seven
// public blockchains via per-block transaction dependency graphs (TDGs) and
// models the execution speed-up that concurrency buys. This repository
// implements the paper's entire stack: UTXO and account-model blockchain
// substrates (including a gas-metered contract VM whose CALL opcodes emit
// the internal-transaction traces the TDG needs), calibrated workload
// generators for all seven chains, the TDG and conflict-rate metrics, the
// analytical speed-up model, the BigQuery-style analysis pipeline, and —
// going beyond the paper — working parallel execution engines that validate
// the model.
//
// Six execution engines are implemented — sequential, speculative
// two-phase, oracle-TDG groups, ordered STM, the multi-version cross-block
// pipeline (internal/mvstore + internal/exec.Pipeline) whose speed-up is
// not bounded by a single global commit lock, and a sharded engine
// (internal/exec.Sharded) with a deterministic cross-shard commit — plus
// two layers composed on top of the sharded one: the pipelined sharded
// chain (Sharded.ExecuteChain) and adaptive conflict-heat shard
// assignment (internal/heat behind core.ShardMap), which learns conflict
// communities across blocks and migrates them between shards at epoch
// boundaries.
//
// See README.md for the layout, the paper-section → package map, and how
// to run each command; see docs/ARCHITECTURE.md for the execution
// engines, their serial-equivalence guarantees, and when each wins; see
// docs/EXPERIMENTS.md for the E1–E11 experiment catalogue (paper section,
// profiles, invocation, JSON schema, recorded baselines). The benchmarks
// in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package txconcur
