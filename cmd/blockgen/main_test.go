package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"txconcur/internal/dataset"
	"txconcur/internal/store"
)

func TestRunUTXO(t *testing.T) {
	out := filepath.Join(t.TempDir(), "btc.jsonl")
	if err := run([]string{"-chain", "Bitcoin", "-blocks", "4", "-seed", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := dataset.ReadJSONL[dataset.UTXOTxRow](f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows written")
	}
	// One coinbase per block (eraSchedule may round the block count up to
	// one per era).
	coinbases := 0
	blocks := map[uint64]bool{}
	for _, r := range rows {
		blocks[r.BlockNumber] = true
		if r.IsCoinbase {
			coinbases++
		}
	}
	if coinbases < 4 || coinbases != len(blocks) {
		t.Fatalf("coinbases = %d over %d blocks, want one per block and >= 4", coinbases, len(blocks))
	}
}

func TestRunAccount(t *testing.T) {
	out := filepath.Join(t.TempDir(), "eth.jsonl")
	if err := run([]string{"-chain", "Ethereum", "-blocks", "3", "-seed", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := dataset.ReadJSONL[dataset.AccountTxRow](f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows written")
	}
}

func TestRunUnknownChain(t *testing.T) {
	if err := run([]string{"-chain", "Solana"}); err == nil {
		t.Fatal("unknown chain accepted")
	}
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunERC20Trace(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "erc20.rwset.jsonl")
	if err := run([]string{"-mode", "erc20trace", "-blocks", "3", "-txs", "10", "-seed", "7", "-o", jpath}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := dataset.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Txs) != 30 {
		t.Fatalf("%d rows, want 30", len(tr.Txs))
	}
	// The CSV encoding of the same generation parses to the same trace.
	cpath := filepath.Join(dir, "erc20.rwset.csv")
	if err := run([]string{"-mode", "erc20trace", "-blocks", "3", "-txs", "10", "-seed", "7", "-format", "csv", "-o", cpath}); err != nil {
		t.Fatal(err)
	}
	cf, err := os.Open(cpath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	ctr, err := dataset.ReadTraceCSV(cf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, ctr) {
		t.Fatal("csv output parses to a different trace")
	}
}

func TestRunImportTrace(t *testing.T) {
	dir := t.TempDir()
	rows := filepath.Join(dir, "rows.jsonl")
	if err := run([]string{"-chain", "Ethereum", "-blocks", "3", "-seed", "1", "-o", rows}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "imported.rwset.jsonl")
	if err := run([]string{"-mode", "importtrace", "-in", rows, "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := dataset.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Txs) == 0 {
		t.Fatal("imported trace is empty")
	}
	// The imported trace must compile into replayable blocks.
	if _, err := dataset.BuildReplayChain(tr); err != nil {
		t.Fatal(err)
	}
	// Importing without -in is an error, as is a bad trace format.
	if err := run([]string{"-mode", "importtrace"}); err == nil {
		t.Fatal("importtrace without -in accepted")
	}
	if err := run([]string{"-mode", "erc20trace", "-format", "gob"}); err == nil {
		t.Fatal("gob accepted for a trace mode")
	}
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunGobFormats(t *testing.T) {
	dir := t.TempDir()
	upath := filepath.Join(dir, "ltc.hist")
	if err := run([]string{"-chain", "Litecoin", "-blocks", "3", "-format", "gob", "-o", upath}); err != nil {
		t.Fatal(err)
	}
	chain, blocks, err := store.LoadUTXOFile(upath)
	if err != nil || chain != "Litecoin" || len(blocks) != 3 {
		t.Fatalf("gob utxo: %q %d blocks, %v", chain, len(blocks), err)
	}
	apath := filepath.Join(dir, "zil.hist")
	if err := run([]string{"-chain", "Zilliqa", "-blocks", "3", "-format", "gob", "-o", apath}); err != nil {
		t.Fatal(err)
	}
	chain, ab, ar, err := store.LoadAccountFile(apath)
	if err != nil || chain != "Zilliqa" || len(ab) != len(ar) {
		t.Fatalf("gob account: %q %d/%d, %v", chain, len(ab), len(ar), err)
	}
}
