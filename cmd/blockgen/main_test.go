package main

import (
	"os"
	"path/filepath"
	"testing"

	"txconcur/internal/dataset"
	"txconcur/internal/store"
)

func TestRunUTXO(t *testing.T) {
	out := filepath.Join(t.TempDir(), "btc.jsonl")
	if err := run([]string{"-chain", "Bitcoin", "-blocks", "4", "-seed", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := dataset.ReadJSONL[dataset.UTXOTxRow](f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows written")
	}
	// One coinbase per block (eraSchedule may round the block count up to
	// one per era).
	coinbases := 0
	blocks := map[uint64]bool{}
	for _, r := range rows {
		blocks[r.BlockNumber] = true
		if r.IsCoinbase {
			coinbases++
		}
	}
	if coinbases < 4 || coinbases != len(blocks) {
		t.Fatalf("coinbases = %d over %d blocks, want one per block and >= 4", coinbases, len(blocks))
	}
}

func TestRunAccount(t *testing.T) {
	out := filepath.Join(t.TempDir(), "eth.jsonl")
	if err := run([]string{"-chain", "Ethereum", "-blocks", "3", "-seed", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := dataset.ReadJSONL[dataset.AccountTxRow](f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows written")
	}
}

func TestRunUnknownChain(t *testing.T) {
	if err := run([]string{"-chain", "Solana"}); err == nil {
		t.Fatal("unknown chain accepted")
	}
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunGobFormats(t *testing.T) {
	dir := t.TempDir()
	upath := filepath.Join(dir, "ltc.hist")
	if err := run([]string{"-chain", "Litecoin", "-blocks", "3", "-format", "gob", "-o", upath}); err != nil {
		t.Fatal(err)
	}
	chain, blocks, err := store.LoadUTXOFile(upath)
	if err != nil || chain != "Litecoin" || len(blocks) != 3 {
		t.Fatalf("gob utxo: %q %d blocks, %v", chain, len(blocks), err)
	}
	apath := filepath.Join(dir, "zil.hist")
	if err := run([]string{"-chain", "Zilliqa", "-blocks", "3", "-format", "gob", "-o", apath}); err != nil {
		t.Fatal(err)
	}
	chain, ab, ar, err := store.LoadAccountFile(apath)
	if err != nil || chain != "Zilliqa" || len(ab) != len(ar) {
		t.Fatalf("gob account: %q %d/%d, %v", chain, len(ab), len(ar), err)
	}
}
