// Command blockgen generates a synthetic-but-valid chain history for one of
// the seven profiled blockchains and exports it as a JSON Lines table in
// the BigQuery-style schema (dataset package), ready for cmd/analyze.
//
// Usage:
//
//	blockgen -chain Bitcoin -blocks 100 -o bitcoin.jsonl
//
// Beyond chain histories, -mode selects two rwset-trace outputs for the
// E12 replay pipeline (the txconcur-rwset format, dataset package):
//
//	blockgen -mode erc20trace -blocks 8 -txs 40 -seed 7 -o trace.rwset.jsonl
//	blockgen -mode importtrace -in rows.jsonl -o trace.rwset.jsonl
//
// "erc20trace" emits a deterministic ERC20-shaped trace (hot-token
// transfers, airdrop fan-outs, DEX pool contention, cold payments) whose
// read/write sets stress the engines like a real token-heavy block range.
// "importtrace" is the documented path for captured Ethereum data: export
// per-transaction rows in the BigQuery-style AccountTxRow JSONL schema
// (block_number, hash, from_address, to_address, receipt_gas_used, plus
// one row per internal call with is_internal=true), and blockgen converts
// them into an rwset trace — each transaction reads and writes its from
// and to addresses, internal calls widen the set, and receipt gas becomes
// the row's measured cost. Both trace modes write JSONL by default;
// -format csv selects the CSV encoding of the same format.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/dataset"
	"txconcur/internal/store"
	"txconcur/internal/utxo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blockgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blockgen", flag.ContinueOnError)
	mode := fs.String("mode", "chain", `output kind: "chain" (profiled history), "erc20trace" (generated rwset trace) or "importtrace" (AccountTxRow JSONL -> rwset trace)`)
	chain := fs.String("chain", "Bitcoin", "chain profile name (see Table I)")
	blocks := fs.Int("blocks", 100, "history blocks to generate")
	txs := fs.Int("txs", 0, "transactions per block for -mode erc20trace (0 = default)")
	seed := fs.Int64("seed", 2020, "generator seed")
	in := fs.String("in", "", "input AccountTxRow JSONL table for -mode importtrace")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "jsonl", `output format: "jsonl" or "gob" (chain mode) / "csv" (trace modes)`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *bufio.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	} else {
		w = bufio.NewWriter(os.Stdout)
	}
	defer w.Flush()

	switch *mode {
	case "chain":
		// Handled below.
	case "erc20trace", "importtrace":
		if *format != "jsonl" && *format != "csv" {
			return fmt.Errorf("unknown trace -format %q (want jsonl or csv)", *format)
		}
		var tr *dataset.Trace
		var err error
		if *mode == "erc20trace" {
			tr, err = dataset.GenerateERC20Trace(dataset.ERC20TraceConfig{
				Blocks: *blocks, TxPerBlock: *txs, Seed: *seed,
			})
		} else {
			if *in == "" {
				return fmt.Errorf("-mode importtrace needs -in")
			}
			f, ferr := os.Open(*in)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			rows, rerr := dataset.ReadJSONL[dataset.AccountTxRow](bufio.NewReader(f))
			if rerr != nil {
				return rerr
			}
			tr, err = dataset.TraceFromAccountRows(rows)
		}
		if err != nil {
			return err
		}
		if *format == "csv" {
			err = dataset.WriteTraceCSV(w, tr)
		} else {
			err = dataset.WriteTrace(w, tr)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "blockgen: %s: %d trace rows written\n", *mode, len(tr.Txs))
		return nil
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	if *format != "jsonl" && *format != "gob" {
		return fmt.Errorf("unknown -format %q", *format)
	}

	p, ok := chainsim.ProfileByName(*chain)
	if !ok {
		return fmt.Errorf("unknown chain %q; known: Bitcoin, Bitcoin Cash, Litecoin, Dogecoin, Ethereum, Ethereum Classic, Zilliqa", *chain)
	}

	switch p.Model {
	case chainsim.UTXO:
		g, err := chainsim.NewUTXOGen(p, *blocks, *seed)
		if err != nil {
			return err
		}
		var kept []*utxo.Block
		n := 0
		for {
			blk, ok, err := g.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if *format == "gob" {
				kept = append(kept, blk)
			} else if err := dataset.WriteJSONL(w, dataset.FromUTXOBlock(blk)); err != nil {
				return err
			}
			n++
		}
		if *format == "gob" {
			if err := store.WriteUTXO(w, p.Name, kept); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "blockgen: %s: %d blocks written\n", p.Name, n)
	case chainsim.Account:
		g, err := chainsim.NewAcctGen(p, *blocks, *seed)
		if err != nil {
			return err
		}
		var keptB []*account.Block
		var keptR [][]*account.Receipt
		n := 0
		for {
			blk, receipts, ok, err := g.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if *format == "gob" {
				keptB = append(keptB, blk)
				keptR = append(keptR, receipts)
			} else if err := dataset.WriteJSONL(w, dataset.FromAccountBlock(blk, receipts)); err != nil {
				return err
			}
			n++
		}
		if *format == "gob" {
			if err := store.WriteAccount(w, p.Name, keptB, keptR); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "blockgen: %s: %d blocks written\n", p.Name, n)
	}
	return nil
}
