// Command blockgen generates a synthetic-but-valid chain history for one of
// the seven profiled blockchains and exports it as a JSON Lines table in
// the BigQuery-style schema (dataset package), ready for cmd/analyze.
//
// Usage:
//
//	blockgen -chain Bitcoin -blocks 100 -o bitcoin.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/dataset"
	"txconcur/internal/store"
	"txconcur/internal/utxo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blockgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blockgen", flag.ContinueOnError)
	chain := fs.String("chain", "Bitcoin", "chain profile name (see Table I)")
	blocks := fs.Int("blocks", 100, "history blocks to generate")
	seed := fs.Int64("seed", 2020, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "jsonl", `output format: "jsonl" (BigQuery-style table) or "gob" (binary history with full blocks)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "jsonl" && *format != "gob" {
		return fmt.Errorf("unknown -format %q", *format)
	}

	p, ok := chainsim.ProfileByName(*chain)
	if !ok {
		return fmt.Errorf("unknown chain %q; known: Bitcoin, Bitcoin Cash, Litecoin, Dogecoin, Ethereum, Ethereum Classic, Zilliqa", *chain)
	}

	var w *bufio.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	} else {
		w = bufio.NewWriter(os.Stdout)
	}
	defer w.Flush()

	switch p.Model {
	case chainsim.UTXO:
		g, err := chainsim.NewUTXOGen(p, *blocks, *seed)
		if err != nil {
			return err
		}
		var kept []*utxo.Block
		n := 0
		for {
			blk, ok, err := g.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if *format == "gob" {
				kept = append(kept, blk)
			} else if err := dataset.WriteJSONL(w, dataset.FromUTXOBlock(blk)); err != nil {
				return err
			}
			n++
		}
		if *format == "gob" {
			if err := store.WriteUTXO(w, p.Name, kept); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "blockgen: %s: %d blocks written\n", p.Name, n)
	case chainsim.Account:
		g, err := chainsim.NewAcctGen(p, *blocks, *seed)
		if err != nil {
			return err
		}
		var keptB []*account.Block
		var keptR [][]*account.Receipt
		n := 0
		for {
			blk, receipts, ok, err := g.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if *format == "gob" {
				keptB = append(keptB, blk)
				keptR = append(keptR, receipts)
			} else if err := dataset.WriteJSONL(w, dataset.FromAccountBlock(blk, receipts)); err != nil {
				return err
			}
			n++
		}
		if *format == "gob" {
			if err := store.WriteAccount(w, p.Name, keptB, keptR); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "blockgen: %s: %d blocks written\n", p.Name, n)
	}
	return nil
}
