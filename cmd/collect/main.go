// Command collect demonstrates the paper's Zilliqa data-collection path
// (§III-B) end to end: it generates a Zilliqa-like history, serves it over
// JSON-RPC on a local port, downloads it back with the rate-limited
// two-phase collector, and runs the analysis pipeline on the collected
// table — the full loop the paper's authors ran against Zilliqa's mainnet
// with their Python client at ~4 requests per second.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"txconcur/internal/analysis"
	"txconcur/internal/chainsim"
	"txconcur/internal/client"
	"txconcur/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	blocks := fs.Int("blocks", 40, "history blocks to generate and serve")
	seed := fs.Int64("seed", 2020, "generator seed")
	interval := fs.Duration("interval", 2*time.Millisecond, "request spacing (the paper saw ~250ms against mainnet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *blocks < 1 {
		return fmt.Errorf("-blocks must be positive, got %d", *blocks)
	}
	if *interval < 0 {
		return fmt.Errorf("-interval must not be negative, got %v", *interval)
	}

	// Generate the history and export it to table rows.
	gen, err := chainsim.NewAcctGen(chainsim.ZilliqaProfile(), *blocks, *seed)
	if err != nil {
		return err
	}
	var rows []dataset.AccountTxRow
	for {
		blk, receipts, ok, err := gen.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rows = append(rows, dataset.FromAccountBlock(blk, receipts)...)
	}

	// Serve it on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: client.NewChainServer(rows)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveErr
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving %d blocks at %s\n", *blocks, url)

	// Collect it back with the two-phase client.
	start := time.Now()
	c := &client.Collector{URL: url, Interval: *interval, MaxRetries: 3}
	collected, err := c.CollectAll(context.Background(), func(p client.Progress) {
		if p.Block%16 == 15 || p.Block+1 == p.Blocks {
			fmt.Printf("  phase 1+2: block %d/%d, %d transactions\n", p.Block+1, p.Blocks, p.Transactions)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("collected %d rows in %v (rate limit %v/request)\n\n", len(collected), time.Since(start).Round(time.Millisecond), *interval)

	// Analyse the collected table.
	results, err := dataset.QueryAccount(collected)
	if err != nil {
		return err
	}
	h := &analysis.History{Chain: "Zilliqa (collected)"}
	for _, r := range results {
		h.Add(r.BlockNumber, r.BlockTime, r.Metrics())
	}
	s, err := analysis.Summary(h)
	if err != nil {
		return err
	}
	fmt.Printf("Zilliqa-like history, measured from the collected table:\n")
	fmt.Printf("  blocks: %d, mean txs/block: %.1f\n", h.Len(), s.MeanTxs)
	fmt.Printf("  single-transaction conflict rate: %.1f%%\n", 100*s.SingleTxWeighted)
	fmt.Printf("  group conflict rate:              %.1f%%\n", 100*s.GroupTxWeighted)
	fmt.Println("\n(the paper, Figure 7: Zilliqa shows the highest conflict rates of the seven chains)")
	return nil
}
