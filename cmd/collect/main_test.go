package main

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"txconcur/internal/chainsim"
	"txconcur/internal/client"
	"txconcur/internal/dataset"
)

// TestRunRoundTrip drives the whole loop the command implements — generate,
// serve, collect, analyse — at a test-friendly scale.
func TestRunRoundTrip(t *testing.T) {
	if err := run([]string{"-blocks", "5", "-seed", "7", "-interval", "0s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-blocks", "many"}); err == nil {
		t.Fatal("non-numeric -blocks accepted")
	}
	if err := run([]string{"-blocks", "0"}); err == nil {
		t.Fatal("zero -blocks accepted")
	}
	if err := run([]string{"-interval", "-1s"}); err == nil {
		t.Fatal("negative -interval accepted")
	}
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestCollectorAgainstTestServer is the round-trip at the package level:
// the command's collector must reproduce, row for row, the table served by
// internal/client's chain server — including across injected transient
// failures, which exercise the retry path the command relies on.
func TestCollectorAgainstTestServer(t *testing.T) {
	gen, err := chainsim.NewAcctGen(chainsim.ZilliqaProfile(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	var rows []dataset.AccountTxRow
	for {
		blk, receipts, ok, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, dataset.FromAccountBlock(blk, receipts)...)
	}

	srv := client.NewChainServer(rows)
	srv.SetFailEvery(7) // transient 503s; the collector must retry through
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	c := &client.Collector{URL: "http://" + ln.Addr().String(), Interval: 0, MaxRetries: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	collected, err := c.CollectAll(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	var regular int
	byHash := make(map[string]dataset.AccountTxRow)
	for _, r := range rows {
		if r.IsInternal {
			continue
		}
		regular++
		byHash[r.Hash.String()] = r
	}
	if len(collected) != regular {
		t.Fatalf("collected %d rows, served %d regular transactions", len(collected), regular)
	}
	for _, got := range collected {
		want, ok := byHash[got.Hash.String()]
		if !ok {
			t.Fatalf("collected unknown transaction %s", got.Hash.String())
		}
		if got.BlockNumber != want.BlockNumber || got.From != want.From ||
			got.To != want.To || got.GasUsed != want.GasUsed {
			t.Fatalf("row mismatch: got %+v want %+v", got, want)
		}
	}
}
