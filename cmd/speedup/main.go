// Command speedup evaluates the paper's execution speed-up model (§V) for
// given block parameters: equation (1) for speculative single-transaction
// concurrency, the pipelined two-phase variant (phases overlapped across
// blocks, see internal/exec.Pipeline), and equation (2) for group
// concurrency, across core counts. The optional -groupop flag supplies the
// group conflict rate measured on the operation-level (delta-refined) TDG,
// adding an "Eq.(2) op-level" column that shows what commutativity buys —
// on hot-key workloads the refined rate l' is far below the key-level l.
// The optional -shards flag adds three columns: "Sharded", the per-block
// sharded-engine model (core.ShardedSpeedup) for s committees with
// cross-shard fraction -cross and cross-shard abort rate -abort (a=1 is the
// key-level worst case, a=0 the commutative-delta limit E9 measures at op
// level); "Sharded pipelined", the chain-steady-state model of
// Sharded.ExecuteChain (core.ShardedPipelineSpeedup) where phase 1 of block
// b+1 overlaps the cross-shard commit of block b and the merge re-executes
// aborted transactions in parallel waves — the configuration E10 measures;
// and "Adaptive", the adaptive-placement model
// (core.AdaptiveShardedSpeedup) where a learned assignment converts the
// -locality share of the cross-shard stream into intra-shard work at an
// amortised migration cost of -migrate time units per block — the
// configuration E11 measures (λ near 1 on its stationary Skew workload,
// λ = 0 with μ > 0 on its Uniform control).
//
// Usage:
//
//	speedup -txs 100 -single 0.6 -group 0.2 -cores 4,8,64
//	speedup -txs 100 -single 0.6 -group 0.8 -groupop 0.05 -cores 8,64
//	speedup -txs 100 -single 0.3 -shards 4 -cross 0.8 -abort 0.2 -cores 8,64
//	speedup -txs 100 -single 0.3 -shards 4 -cross 0.8 -abort 0.2 -locality 0.7 -migrate 0.5 -cores 8,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"txconcur/internal/bench"
	"txconcur/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("speedup", flag.ContinueOnError)
	txs := fs.Int("txs", 100, "transactions per block (x)")
	single := fs.Float64("single", 0.6, "single-transaction conflict rate (c)")
	group := fs.Float64("group", 0.2, "group conflict rate (l)")
	groupOp := fs.Float64("groupop", -1, "operation-level group conflict rate (l' after delta refinement; -1 disables the column)")
	coresFlag := fs.String("cores", "4,8,64", "comma-separated core counts")
	k := fs.Float64("k", 0, "pre-processing cost K in time units")
	shardsN := fs.Int("shards", 0, "shard count s for the sharded-engine column (0 disables the column)")
	cross := fs.Float64("cross", 0.5, "cross-shard transaction fraction χ (with -shards)")
	abortRate := fs.Float64("abort", 1, "cross-shard abort rate a: share of cross-shard txs re-executed in the merge (with -shards)")
	locality := fs.Float64("locality", 0.6, "adaptive-placement locality λ: share of cross-shard traffic a learned assignment converts to intra-shard (with -shards)")
	migrate := fs.Float64("migrate", 0.5, "adaptive-placement migration cost μ in time units per block, amortised over the epoch (with -shards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cores []int
	for _, part := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -cores: %w", err)
		}
		cores = append(cores, n)
	}

	title := fmt.Sprintf("Speed-up model: x=%d, c=%.2f, l=%.2f, K=%.1f", *txs, *single, *group, *k)
	if *groupOp >= 0 {
		title += fmt.Sprintf(", l'=%.2f (op-level)", *groupOp)
	}
	if *shardsN > 0 {
		title += fmt.Sprintf(", s=%d, χ=%.2f, a=%.2f, λ=%.2f, μ=%.1f (sharded)",
			*shardsN, *cross, *abortRate, *locality, *migrate)
	}
	t := bench.Table{
		Title: title,
		Headers: []string{
			"Cores", "Eq.(1) speculative", "Exact speculative", "Perfect info", "Pipelined", "Eq.(2) group", "Group with K",
		},
	}
	if *groupOp >= 0 {
		t.Headers = append(t.Headers, "Eq.(2) op-level")
	}
	if *shardsN > 0 {
		t.Headers = append(t.Headers, "Sharded", "Sharded pipelined", "Adaptive")
	}
	for _, n := range cores {
		eq1, err := core.SpeculativeSpeedup(*txs, *single, n)
		if err != nil {
			return err
		}
		exact, err := core.SpeculativeSpeedupExact(*txs, *single, n)
		if err != nil {
			return err
		}
		perfect, err := core.PerfectInfoSpeedup(*txs, *single, n, *k)
		if err != nil {
			return err
		}
		pipe, err := core.PipelineSpeedup(*txs, *single, n)
		if err != nil {
			return err
		}
		eq2, err := core.GroupSpeedup(n, *group)
		if err != nil {
			return err
		}
		eq2k, err := core.GroupSpeedupWithCost(*txs, *group, n, *k)
		if err != nil {
			return err
		}
		row := []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.2fx", eq1),
			fmt.Sprintf("%.2fx", exact),
			fmt.Sprintf("%.2fx", perfect),
			fmt.Sprintf("%.2fx", pipe),
			fmt.Sprintf("%.2fx", eq2),
			fmt.Sprintf("%.2fx", eq2k),
		}
		if *groupOp >= 0 {
			eq2op, err := core.GroupSpeedup(n, *groupOp)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2fx", eq2op))
		}
		if *shardsN > 0 {
			sharded, err := core.ShardedSpeedup(*txs, *single, *cross, n, *shardsN, *abortRate)
			if err != nil {
				return err
			}
			piped, err := core.ShardedPipelineSpeedup(*txs, *single, *cross, n, *shardsN, *abortRate)
			if err != nil {
				return err
			}
			adaptive, err := core.AdaptiveShardedSpeedup(*txs, *single, *cross, n, *shardsN,
				*abortRate, *locality, *migrate)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.2fx", sharded),
				fmt.Sprintf("%.2fx", piped),
				fmt.Sprintf("%.2fx", adaptive))
		}
		t.Rows = append(t.Rows, row)
	}
	return bench.RenderTable(os.Stdout, t)
}
