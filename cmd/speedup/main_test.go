package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustom(t *testing.T) {
	if err := run([]string{"-txs", "16", "-single", "0.875", "-group", "0.5625", "-cores", "8,16", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-cores", "eight"}); err == nil {
		t.Fatal("bad cores accepted")
	}
	if err := run([]string{"-single", "1.5"}); err == nil {
		t.Fatal("out-of-domain rate accepted")
	}
}

func TestRunOpLevelColumn(t *testing.T) {
	if err := run([]string{"-txs", "120", "-single", "0.9", "-group", "0.8", "-groupop", "0.04", "-cores", "8,64"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-groupop", "1.5"}); err == nil {
		t.Fatal("out-of-domain op-level rate accepted")
	}
}

func TestRunShardedColumn(t *testing.T) {
	if err := run([]string{"-txs", "100", "-single", "0.3", "-shards", "4", "-cross", "0.8", "-abort", "0.2", "-cores", "8,64"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shards", "4", "-cross", "1.5"}); err == nil {
		t.Fatal("out-of-domain cross fraction accepted")
	}
	if err := run([]string{"-shards", "4", "-abort", "-0.1"}); err == nil {
		t.Fatal("out-of-domain abort rate accepted")
	}
}

func TestRunAdaptiveColumn(t *testing.T) {
	if err := run([]string{"-txs", "100", "-single", "0.3", "-shards", "4", "-cross", "0.8",
		"-abort", "0.2", "-locality", "0.7", "-migrate", "0.5", "-cores", "8,64"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shards", "4", "-locality", "1.5"}); err == nil {
		t.Fatal("out-of-domain locality accepted")
	}
	if err := run([]string{"-shards", "4", "-migrate", "-1"}); err == nil {
		t.Fatal("negative migration cost accepted")
	}
}
