// Command analyze runs the paper's analysis pipeline (§III-C) over a table
// file produced by cmd/blockgen: it groups the rows by block, applies the
// process_graph logic, bucketizes the per-block metrics, and prints both a
// summary and the bucketed series (optionally as CSV).
//
// Usage:
//
//	analyze -model utxo -buckets 20 bitcoin.jsonl
//	analyze -model account -csv ethereum.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"txconcur/internal/analysis"
	"txconcur/internal/core"
	"txconcur/internal/dataset"
	"txconcur/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	model := fs.String("model", "utxo", `data model of the table: "utxo" or "account"`)
	format := fs.String("format", "jsonl", `input format: "jsonl" (table) or "gob" (blockgen -format gob history)`)
	buckets := fs.Int("buckets", 20, "time-series buckets")
	csv := fs.Bool("csv", false, "emit bucketed series as CSV instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: analyze [-model utxo|account] [-format jsonl|gob] [-buckets N] [-csv] <history file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	h := &analysis.History{Chain: fs.Arg(0)}
	switch {
	case *format == "gob" && *model == "utxo":
		chain, blocks, err := store.ReadUTXO(f)
		if err != nil {
			return err
		}
		h.Chain = chain
		for _, b := range blocks {
			h.Add(b.Height, b.Time, core.MeasureUTXOBlock(b))
		}
	case *format == "gob" && *model == "account":
		chain, blocks, receipts, err := store.ReadAccount(f)
		if err != nil {
			return err
		}
		h.Chain = chain
		for i, b := range blocks {
			h.Add(b.Height, b.Time, core.MeasureAccountBlock(b, receipts[i]))
		}
	case *format == "jsonl" && *model == "utxo":
		rows, err := dataset.ReadJSONL[dataset.UTXOTxRow](f)
		if err != nil {
			return err
		}
		results, err := dataset.QueryUTXO(rows)
		if err != nil {
			return err
		}
		for _, r := range results {
			h.Add(r.BlockNumber, r.BlockTime, r.Metrics())
		}
	case *format == "jsonl" && *model == "account":
		rows, err := dataset.ReadJSONL[dataset.AccountTxRow](f)
		if err != nil {
			return err
		}
		results, err := dataset.QueryAccount(rows)
		if err != nil {
			return err
		}
		for _, r := range results {
			h.Add(r.BlockNumber, r.BlockTime, r.Metrics())
		}
	default:
		return fmt.Errorf("unknown -model %q / -format %q", *model, *format)
	}
	summary, err := analysis.Summary(h)
	if err != nil {
		return err
	}
	fmt.Printf("blocks: %d\n", h.Len())
	fmt.Printf("mean txs/block: %.1f\n", summary.MeanTxs)
	fmt.Printf("single-transaction conflict rate (tx-weighted): %.2f%%\n", 100*summary.SingleTxWeighted)
	fmt.Printf("group conflict rate (tx-weighted): %.2f%%\n", 100*summary.GroupTxWeighted)
	if summary.SingleGasWeighted > 0 {
		fmt.Printf("single-transaction conflict rate (gas-weighted): %.2f%%\n", 100*summary.SingleGasWeighted)
		fmt.Printf("group conflict rate (gas-weighted): %.2f%%\n", 100*summary.GroupGasWeighted)
	}

	bks, err := analysis.Bucketize(h, *buckets)
	if err != nil {
		return err
	}
	if *csv {
		return analysis.WriteCSV(os.Stdout, bks, analysis.StandardColumns())
	}
	fmt.Println()
	cols := []analysis.Column{
		{Name: "single_tx_w", Get: func(b analysis.Bucket) float64 { return b.SingleTxWeighted }},
		{Name: "group_tx_w", Get: func(b analysis.Bucket) float64 { return b.GroupTxWeighted }},
		{Name: "txs", Get: func(b analysis.Bucket) float64 { return b.MeanTxs }},
	}
	for _, c := range cols {
		fmt.Printf("%-12s %s\n", c.Name, analysis.Sparkline(bks, c))
	}
	return nil
}
