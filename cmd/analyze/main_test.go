package main

import (
	"os"
	"path/filepath"
	"testing"

	"txconcur/internal/chainsim"
	"txconcur/internal/dataset"
)

func writeFixture(t *testing.T) (utxoPath, acctPath string) {
	t.Helper()
	dir := t.TempDir()

	g, err := chainsim.NewUTXOGen(chainsim.DogecoinProfile(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var urows []dataset.UTXOTxRow
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		urows = append(urows, dataset.FromUTXOBlock(blk)...)
	}
	utxoPath = filepath.Join(dir, "utxo.jsonl")
	uf, err := os.Create(utxoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSONL(uf, urows); err != nil {
		t.Fatal(err)
	}
	uf.Close()

	ag, err := chainsim.NewAcctGen(chainsim.ZilliqaProfile(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var arows []dataset.AccountTxRow
	for {
		blk, receipts, ok, err := ag.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		arows = append(arows, dataset.FromAccountBlock(blk, receipts)...)
	}
	acctPath = filepath.Join(dir, "acct.jsonl")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSONL(af, arows); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return utxoPath, acctPath
}

func TestAnalyzeUTXO(t *testing.T) {
	utxoPath, _ := writeFixture(t)
	if err := run([]string{"-model", "utxo", "-buckets", "3", utxoPath}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAccountCSV(t *testing.T) {
	_, acctPath := writeFixture(t)
	if err := run([]string{"-model", "account", "-csv", acctPath}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-model", "bogus", "nosuchfile"}); err == nil {
		t.Fatal("missing file + bad model accepted")
	}
	utxoPath, _ := writeFixture(t)
	if err := run([]string{"-model", "bogus", utxoPath}); err == nil {
		t.Fatal("bad model accepted")
	}
}
