package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunStaticExperiments(t *testing.T) {
	// tableI and fig1 need no generation; anchored regexp avoids fig10.
	if err := run([]string{"-run", "tableI|fig1$", "-blocks", "5", "-buckets", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	if err := run([]string{"-run", "fig5", "-blocks", "10", "-buckets", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFilter(t *testing.T) {
	if err := run([]string{"-run", "("}); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

func TestRunOpLevelJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "oplevel", "-execblocks", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardingExecJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "shardingexec", "-execblocks", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedPipelineJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "shardedpipeline", "-execblocks", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdaptiveShardJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "adaptiveshard", "-execblocks", "6", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplayJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "tracereplay", "-json"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunProfileFlags: -cpuprofile and -trace must produce non-empty
// artifacts covering the selected experiments.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	tr := filepath.Join(dir, "trace.out")
	if err := run([]string{"-run", "tableI", "-cpuprofile", cpu, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, tr} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
	if err := run([]string{"-run", "tableI", "-cpuprofile", filepath.Join(dir, "missing", "cpu.out")}); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}
