package main

import "testing"

func TestRunStaticExperiments(t *testing.T) {
	// tableI and fig1 need no generation; anchored regexp avoids fig10.
	if err := run([]string{"-run", "tableI|fig1$", "-blocks", "5", "-buckets", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	if err := run([]string{"-run", "fig5", "-blocks", "10", "-buckets", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFilter(t *testing.T) {
	if err := run([]string{"-run", "("}); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

func TestRunOpLevelJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "oplevel", "-execblocks", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardingExecJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	if err := run([]string{"-run", "shardingexec", "-execblocks", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
}
