// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the extension experiments (E1–E3), printing them as text
// tables and sparkline charts.
//
// Usage:
//
//	experiments [-blocks N] [-buckets N] [-seed N] [-run regexp] [-json]
//	            [-cpuprofile file] [-trace file]
//
// The -run filter selects experiments by name (tableI, fig1, fig4, fig5,
// fig6, fig7, fig8, fig9, fig10, summary, exec, sched, approxtdg,
// interblock, utxoexec, sharding, shardingexec, shardedpipeline,
// adaptiveshard, tracereplay, streaming, recovery, memorybounded, census,
// pipeline, oplevel). With
// -json,
// table experiments
// emit one JSON object per table (figures stay text) — the format of the
// recorded benchmark baselines. Note that "-run sharding" matches the
// analytical E6 (sharding), the executable E9 (shardingexec) and the
// pipelined E10 (shardedpipeline), and "-run shard" additionally matches
// the adaptive E11 (adaptiveshard); anchor the regexp ("sharding$") to run
// E6 alone.
//
// -cpuprofile and -trace write a pprof CPU profile / runtime execution
// trace covering the selected experiments, so hot-path regressions in the
// executors (the cross-shard merge above all) are diagnosable with `go
// tool pprof` / `go tool trace` against a narrow -run filter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime/pprof"
	"runtime/trace"

	"txconcur/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	blocks := fs.Int("blocks", 200, "history blocks generated per chain")
	buckets := fs.Int("buckets", 40, "time-series buckets (paper: 20-200)")
	seed := fs.Int64("seed", 2020, "generator seed")
	filter := fs.String("run", "", "regexp of experiment names to run")
	execBlocks := fs.Int("execblocks", 20, "blocks for the executor experiments")
	jsonOut := fs.Bool("json", false, "emit table experiments as JSON")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	traceFile := fs.String("trace", "", "write a runtime execution trace of the selected experiments to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -run: %w", err)
		}
	}
	want := func(name string) bool { return re == nil || re.MatchString(name) }

	r := bench.NewRunner(*blocks, *buckets, *seed)
	out := os.Stdout
	renderTable := func(w io.Writer, tbl bench.Table) error {
		if *jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(tbl)
		}
		if err := bench.RenderTable(w, tbl); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	if want("tableI") {
		if err := renderTable(out, bench.TableI()); err != nil {
			return err
		}
	}
	if want("fig1") {
		if err := renderTable(out, bench.Fig1()); err != nil {
			return err
		}
	}

	figures := []struct {
		name string
		fn   func() (bench.Figure, error)
	}{
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
	}
	for _, f := range figures {
		if !want(f.name) {
			continue
		}
		fig, err := f.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		if err := bench.RenderFigure(out, fig); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if want("fig6") {
		tbl, err := r.Fig6()
		if err != nil {
			return fmt.Errorf("fig6: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("summary") {
		tbl, err := r.SummaryTable()
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("exec") {
		tbl, err := bench.ExecutorComparison(*execBlocks, *seed, []int{2, 4, 8, 64})
		if err != nil {
			return fmt.Errorf("exec: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("sched") {
		tbl, err := bench.SchedulingQuality(*execBlocks, *seed, []int{2, 4, 8, 64})
		if err != nil {
			return fmt.Errorf("sched: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("approxtdg") {
		tbl, err := bench.ApproxTDGEffectiveness(*execBlocks, *seed, 8)
		if err != nil {
			return fmt.Errorf("approxtdg: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("pipeline") {
		tbl, err := bench.PipelineComparison(*execBlocks, *seed,
			[]string{"Ethereum", "Ethereum Classic"}, []int{2, 4, 8, 64})
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("oplevel") {
		tbl, err := bench.OpLevelComparison(*execBlocks, *seed, bench.OpLevelProfiles(), []int{2, 4, 8, 64})
		if err != nil {
			return fmt.Errorf("oplevel: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("interblock") {
		tbl, err := bench.InterBlockConcurrency(*execBlocks, *seed, []int{1, 2, 4, 8}, 8)
		if err != nil {
			return fmt.Errorf("interblock: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("utxoexec") {
		tbl, err := bench.UTXOValidation(*execBlocks, *seed, []int{2, 4, 8, 64})
		if err != nil {
			return fmt.Errorf("utxoexec: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("sharding") {
		tbl, err := bench.ShardingAnalysis(*execBlocks, *seed, []int{2, 4, 8, 16})
		if err != nil {
			return fmt.Errorf("sharding: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("shardingexec") {
		tbl, err := bench.ShardingComparison(*execBlocks, *seed, bench.ShardProfileNames(), []int{1, 2, 4, 8}, 8)
		if err != nil {
			return fmt.Errorf("shardingexec: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("shardedpipeline") {
		tbl, err := bench.ShardedPipelineComparison(*execBlocks, *seed, bench.ShardProfileNames(), []int{1, 2, 4, 8}, 8)
		if err != nil {
			return fmt.Errorf("shardedpipeline: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("adaptiveshard") {
		tbl, err := bench.AdaptiveShardingComparison(*execBlocks, *seed, bench.AdaptiveShardProfileNames(), []int{2, 4, 8}, 8, 4)
		if err != nil {
			return fmt.Errorf("adaptiveshard: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("tracereplay") {
		tbl, err := bench.TraceReplayComparison(*seed, 8, 4, 2, 4)
		if err != nil {
			return fmt.Errorf("tracereplay: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("streaming") {
		tbl, err := bench.StreamingComparison(*seed, 8, 4)
		if err != nil {
			return fmt.Errorf("streaming: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("recovery") {
		tbl, err := bench.RecoveryComparison(*seed, 8, 4)
		if err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("memorybounded") {
		tbl, err := bench.MemoryBoundedComparison(*seed, 8, 4)
		if err != nil {
			return fmt.Errorf("memorybounded: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	if want("census") {
		tbl, err := bench.CensusTable(*execBlocks, *seed)
		if err != nil {
			return fmt.Errorf("census: %w", err)
		}
		if err := renderTable(out, tbl); err != nil {
			return err
		}
	}
	return nil
}
