// Package client reproduces the paper's custom data-collection path for
// Zilliqa (§III-B): since Zilliqa is absent from the BigQuery public
// datasets, the authors wrote "a lightweight client for downloading the
// data from Zilliqa's mainnet", working in two phases — first fetching all
// transaction hashes per block (GetTransactionsForTxBlock), then fetching
// each transaction's detail (GetTransaction) — at roughly 4 requests per
// second.
//
// This package provides both sides: a JSON-RPC chain server exposing those
// two methods over a generated history, and a rate-limited two-phase
// Collector with retries that downloads the history back into table rows.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"txconcur/internal/dataset"
	"txconcur/internal/types"
)

// JSON-RPC method names, mirroring the Zilliqa SDK.
const (
	MethodGetNumTxBlocks          = "GetNumTxBlocks"
	MethodGetTransactionsForBlock = "GetTransactionsForTxBlock"
	MethodGetTransaction          = "GetTransaction"
)

// rpcRequest is a JSON-RPC 2.0 request.
type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

// rpcError is a JSON-RPC 2.0 error object.
type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// rpcResponse is a JSON-RPC 2.0 response.
type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

// TxDetail is the GetTransaction result payload.
type TxDetail struct {
	Hash        types.Hash    `json:"hash"`
	BlockNumber uint64        `json:"block_number"`
	BlockTime   int64         `json:"block_timestamp"`
	From        types.Address `json:"from"`
	To          types.Address `json:"to"`
	GasUsed     uint64        `json:"gas_used"`
}

// ChainServer serves a chain history over JSON-RPC. It is safe for
// concurrent use.
type ChainServer struct {
	mu        sync.RWMutex
	byBlock   map[uint64][]types.Hash
	byHash    map[types.Hash]TxDetail
	blocks    []uint64
	failEvery int // inject a transient failure every Nth request (tests)
	requests  int
}

// NewChainServer builds a server over account-model table rows (regular
// transactions only, as Zilliqa has no internal transactions).
func NewChainServer(rows []dataset.AccountTxRow) *ChainServer {
	s := &ChainServer{
		byBlock: make(map[uint64][]types.Hash),
		byHash:  make(map[types.Hash]TxDetail),
	}
	for _, r := range rows {
		if r.IsInternal {
			continue
		}
		s.byBlock[r.BlockNumber] = append(s.byBlock[r.BlockNumber], r.Hash)
		s.byHash[r.Hash] = TxDetail{
			Hash:        r.Hash,
			BlockNumber: r.BlockNumber,
			BlockTime:   r.BlockTime,
			From:        r.From,
			To:          r.To,
			GasUsed:     r.GasUsed,
		}
	}
	for b := range s.byBlock {
		s.blocks = append(s.blocks, b)
	}
	sort.Slice(s.blocks, func(i, j int) bool { return s.blocks[i] < s.blocks[j] })
	return s
}

// SetFailEvery injects a transient HTTP 503 on every nth request (0
// disables). Used to test the collector's retry path.
func (s *ChainServer) SetFailEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failEvery = n
	s.requests = 0
}

// NumBlocks returns the number of blocks served.
func (s *ChainServer) NumBlocks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// ServeHTTP implements http.Handler with a single JSON-RPC endpoint.
func (s *ChainServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.requests++
	fail := s.failEvery > 0 && s.requests%s.failEvery == 0
	s.mu.Unlock()
	if fail {
		http.Error(w, "transient overload", http.StatusServiceUnavailable)
		return
	}

	var req rpcRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &rpcError{Code: -32700, Message: "parse error"}})
		return
	}
	resp := rpcResponse{JSONRPC: "2.0", ID: req.ID}
	result, rpcErr := s.dispatch(req.Method, req.Params)
	if rpcErr != nil {
		resp.Error = rpcErr
	} else {
		raw, err := json.Marshal(result)
		if err != nil {
			resp.Error = &rpcError{Code: -32603, Message: "internal error"}
		} else {
			resp.Result = raw
		}
	}
	writeRPC(w, resp)
}

func (s *ChainServer) dispatch(method string, params json.RawMessage) (any, *rpcError) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch method {
	case MethodGetNumTxBlocks:
		var max uint64
		for _, b := range s.blocks {
			if b+1 > max {
				max = b + 1
			}
		}
		return max, nil
	case MethodGetTransactionsForBlock:
		var args []uint64
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
			return nil, &rpcError{Code: -32602, Message: "want [blockNumber]"}
		}
		hashes, ok := s.byBlock[args[0]]
		if !ok {
			return []types.Hash{}, nil
		}
		return hashes, nil
	case MethodGetTransaction:
		var args []types.Hash
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
			return nil, &rpcError{Code: -32602, Message: "want [txHash]"}
		}
		detail, ok := s.byHash[args[0]]
		if !ok {
			return nil, &rpcError{Code: -20, Message: "transaction not found"}
		}
		return detail, nil
	default:
		return nil, &rpcError{Code: -32601, Message: fmt.Sprintf("unknown method %q", method)}
	}
}

func writeRPC(w http.ResponseWriter, resp rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// ErrRPC reports a JSON-RPC level error from the server.
var ErrRPC = errors.New("client: rpc error")
