package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"txconcur/internal/account"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
)

// MethodSubmitTransaction is the JSON-RPC method simulated clients use to
// feed the streaming block builder (the submission side of the same
// lightweight JSON-RPC surface the §III-B collector consumes).
const MethodSubmitTransaction = "SubmitTransaction"

// Submission error codes (application range of JSON-RPC 2.0).
const (
	codeSubmitFailed = -32000
	codePoolClosed   = -32001
)

// SubmitTx is the SubmitTransaction wire payload: the transaction envelope
// plus the client's predicted read/write/delta key sets, which steer the
// conflict-aware packer (a wrong prediction costs parallelism, never
// correctness).
type SubmitTx struct {
	From     types.Address  `json:"from"`
	To       types.Address  `json:"to"`
	Value    account.Amount `json:"value"`
	Nonce    uint64         `json:"nonce"`
	GasLimit uint64         `json:"gas_limit"`
	GasPrice account.Amount `json:"gas_price"`
	Arg      uint64         `json:"arg,omitempty"`
	Code     []byte         `json:"code,omitempty"`
	Reads    []string       `json:"reads,omitempty"`
	Writes   []string       `json:"writes,omitempty"`
	Deltas   []string       `json:"deltas,omitempty"`
}

// Pending converts the wire payload into the mempool's submission form.
func (s *SubmitTx) Pending() *mempool.Pending {
	return &mempool.Pending{
		Tx: &account.Transaction{
			From: s.From, To: s.To, Value: s.Value, Nonce: s.Nonce,
			GasLimit: s.GasLimit, GasPrice: s.GasPrice, Arg: s.Arg, Code: s.Code,
		},
		Reads:  s.Reads,
		Writes: s.Writes,
		Deltas: s.Deltas,
	}
}

// BuilderServer exposes a mempool over JSON-RPC: one SubmitTransaction
// endpoint whose admission blocks while the pool is full, so the pool's
// backpressure propagates to clients at the HTTP level (a slow builder
// slows submitters instead of dropping their transactions).
type BuilderServer struct {
	pool    *mempool.Pool
	durable bool
}

// NewBuilderServer serves submissions into pool. Replies ack admission
// only: the transaction is in the mempool but not yet durable.
func NewBuilderServer(pool *mempool.Pool) *BuilderServer {
	return &BuilderServer{pool: pool}
}

// NewDurableBuilderServer serves submissions with durable semantics: a
// SubmitTransaction reply is sent only after the builder has packed the
// transaction and appended its block to the write-ahead log, so a client
// that got true knows its transaction survives any crash
// (persist-then-ack). Requires the builder to run with a BlockLog.
func NewDurableBuilderServer(pool *mempool.Pool) *BuilderServer {
	return &BuilderServer{pool: pool, durable: true}
}

// ServeHTTP implements http.Handler with a single JSON-RPC endpoint.
func (s *BuilderServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req rpcRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &rpcError{Code: -32700, Message: "parse error"}})
		return
	}
	resp := rpcResponse{JSONRPC: "2.0", ID: req.ID}
	if req.Method != MethodSubmitTransaction {
		resp.Error = &rpcError{Code: -32601, Message: "unknown method " + req.Method}
		writeRPC(w, resp)
		return
	}
	var args []SubmitTx
	if err := json.Unmarshal(req.Params, &args); err != nil || len(args) != 1 {
		resp.Error = &rpcError{Code: -32602, Message: "want [transaction]"}
		writeRPC(w, resp)
		return
	}
	// Submit with the request's context: a full pool blocks the HTTP
	// request (backpressure); a client hang-up frees the slot wait.
	var err error
	if s.durable {
		// Persist-then-ack: hold the HTTP response until the builder has
		// appended the transaction's block to the WAL (or the service
		// shut down, surfaced as the ack error).
		var ack <-chan error
		ack, err = s.pool.SubmitDurable(r.Context(), args[0].Pending())
		if err == nil {
			select {
			case err = <-ack:
			case <-r.Context().Done():
				err = r.Context().Err()
			}
		}
	} else {
		err = s.pool.Submit(r.Context(), args[0].Pending())
	}
	if err != nil {
		code := codeSubmitFailed
		if errors.Is(err, mempool.ErrClosed) {
			code = codePoolClosed
		}
		resp.Error = &rpcError{Code: code, Message: err.Error()}
		writeRPC(w, resp)
		return
	}
	result, _ := json.Marshal(true)
	resp.Result = result
	writeRPC(w, resp)
}

// ErrPoolClosed reports a submission rejected because the server's pool is
// closed.
var ErrPoolClosed = errors.New("client: builder pool closed")

// Submitter is the client side of SubmitTransaction, reusing the
// collector's rate-limited, retrying JSON-RPC call path. Like Collector it
// is single-goroutine; simulated load generators run one Submitter per
// client goroutine.
type Submitter struct {
	Collector
}

// Submit sends one transaction, blocking while the server's pool is full.
// A pool-closed rejection is surfaced as ErrPoolClosed and never retried:
// it arrives as a JSON-RPC error (HTTP 200), which the call path treats
// as permanent — only transport failures and 5xx are retried, with the
// collector's deterministic backoff between attempts.
func (s *Submitter) Submit(ctx context.Context, tx SubmitTx) error {
	var ok bool
	err := s.call(ctx, MethodSubmitTransaction, []SubmitTx{tx}, &ok)
	if err != nil && errors.Is(err, ErrRPC) &&
		strings.Contains(err.Error(), strconv.Itoa(codePoolClosed)) {
		return ErrPoolClosed
	}
	return err
}
