package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"txconcur/internal/mempool"
	"txconcur/internal/types"
)

func submitTx(from, to, nonce uint64) SubmitTx {
	return SubmitTx{
		From:     types.AddressFromUint64("user", from),
		To:       types.AddressFromUint64("user", to),
		Value:    7,
		Nonce:    nonce,
		GasLimit: 21_000,
		GasPrice: 1,
		Reads:    []string{"b:x", "n:x"},
		Writes:   []string{"b:x", "n:x"},
		Deltas:   []string{"b:y"},
	}
}

// TestSubmitRoundTrip: a transaction submitted over HTTP lands in the pool
// with its envelope and predicted key sets intact.
func TestSubmitRoundTrip(t *testing.T) {
	pool := mempool.New(8)
	srv := httptest.NewServer(NewBuilderServer(pool))
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL}}
	for n := uint64(0); n < 3; n++ {
		if err := sub.Submit(context.Background(), submitTx(1, 2, n)); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Len() != 3 {
		t.Fatalf("pool has %d pending, want 3", pool.Len())
	}
	wire := submitTx(1, 2, 0)
	p := wire.Pending()
	if p.Tx.From != wire.From || p.Tx.To != wire.To || p.Tx.Value != 7 ||
		p.Tx.GasLimit != 21_000 || p.Tx.GasPrice != 1 {
		t.Fatalf("wire envelope mangled: %+v", p.Tx)
	}
	if len(p.Reads) != 2 || len(p.Writes) != 2 || len(p.Deltas) != 1 {
		t.Fatalf("predicted key sets mangled: %+v", p)
	}
}

// TestSubmitBackpressureOverHTTP: a full pool blocks the HTTP request; the
// request context cancels the wait cleanly.
func TestSubmitBackpressureOverHTTP(t *testing.T) {
	pool := mempool.New(1)
	srv := httptest.NewServer(NewBuilderServer(pool))
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL}}
	if err := sub.Submit(context.Background(), submitTx(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sub2 := &Submitter{Collector: Collector{URL: srv.URL}}
	err := sub2.Submit(ctx, submitTx(1, 2, 1))
	if err == nil {
		t.Fatal("submit to a full pool returned without blocking")
	}
	if pool.Len() != 1 {
		t.Fatalf("pool has %d pending, want 1", pool.Len())
	}
}

// TestSubmitClosedPool: submissions to a closed pool map to ErrPoolClosed.
func TestSubmitClosedPool(t *testing.T) {
	pool := mempool.New(4)
	pool.Close()
	srv := httptest.NewServer(NewBuilderServer(pool))
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL}}
	if err := sub.Submit(context.Background(), submitTx(1, 2, 0)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit to closed pool: %v, want ErrPoolClosed", err)
	}
}

// TestSubmitBadRequests: unknown methods and malformed params are rejected
// at the RPC layer without touching the pool.
func TestSubmitBadRequests(t *testing.T) {
	pool := mempool.New(4)
	srv := httptest.NewServer(NewBuilderServer(pool))
	defer srv.Close()

	c := &Collector{URL: srv.URL}
	if err := c.call(context.Background(), "NoSuchMethod", []int{}, nil); !errors.Is(err, ErrRPC) {
		t.Fatalf("unknown method: %v, want ErrRPC", err)
	}
	if err := c.call(context.Background(), MethodSubmitTransaction, []int{1, 2}, nil); !errors.Is(err, ErrRPC) {
		t.Fatalf("malformed params: %v, want ErrRPC", err)
	}
	resp, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pool.Len() != 0 {
		t.Fatalf("bad requests leaked %d transactions into the pool", pool.Len())
	}
}
