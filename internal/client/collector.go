package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"txconcur/internal/dataset"
	"txconcur/internal/types"
)

// Collector downloads a chain history from a JSON-RPC chain server in the
// paper's two phases: transaction hashes per block, then per-transaction
// detail. Requests are rate-limited (the paper reports ~4 requests per
// second against Zilliqa's SDK) and transient failures are retried.
type Collector struct {
	// URL is the server's endpoint.
	URL string
	// Interval is the minimum spacing between requests (rate limit).
	// Zero disables limiting.
	Interval time.Duration
	// MaxRetries bounds retries per request for transient failures.
	MaxRetries int
	// Backoff is the base delay of the deterministic exponential backoff
	// between retries: attempt i waits Backoff·2ⁱ (capped by BackoffMax),
	// honoring the request context's deadline while waiting. Zero retries
	// immediately.
	Backoff time.Duration
	// BackoffMax caps the per-attempt backoff delay; zero means no cap.
	BackoffMax time.Duration
	// HTTPClient optionally overrides the HTTP client.
	HTTPClient *http.Client

	nextID int64
	last   time.Time
}

// ErrTransient reports an HTTP-level failure that was retried until the
// budget ran out.
var ErrTransient = errors.New("client: transient failure persisted")

func (c *Collector) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// call performs one rate-limited JSON-RPC call with retries, decoding the
// result into out.
func (c *Collector) call(ctx context.Context, method string, params any, out any) error {
	rawParams, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("client: marshal params: %w", err)
	}
	c.nextID++
	req := rpcRequest{JSONRPC: "2.0", ID: c.nextID, Method: method, Params: rawParams}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}

	retries := c.MaxRetries
	for {
		if err := c.throttle(ctx); err != nil {
			return err
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("client: build request: %w", err)
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(httpReq)
		if err == nil && resp.StatusCode == http.StatusOK {
			defer resp.Body.Close()
			var rpcResp rpcResponse
			if err := json.NewDecoder(resp.Body).Decode(&rpcResp); err != nil {
				return fmt.Errorf("client: decode response: %w", err)
			}
			if rpcResp.Error != nil {
				return fmt.Errorf("%w: %d %s", ErrRPC, rpcResp.Error.Code, rpcResp.Error.Message)
			}
			if out != nil {
				if err := json.Unmarshal(rpcResp.Result, out); err != nil {
					return fmt.Errorf("client: decode result: %w", err)
				}
			}
			return nil
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Only server-side failures (5xx) are transient. A 4xx means
			// the server understood the request and rejected it — retrying
			// the same bytes cannot help.
			if resp.StatusCode < 500 || resp.StatusCode > 599 {
				return fmt.Errorf("client: permanent status %d", resp.StatusCode)
			}
		}
		if retries <= 0 {
			if err != nil {
				return fmt.Errorf("%w: %w", ErrTransient, err)
			}
			return fmt.Errorf("%w: status %d", ErrTransient, resp.StatusCode)
		}
		retries--
		if err := c.backoff(ctx, c.MaxRetries-retries-1); err != nil {
			return err
		}
	}
}

// backoff waits the deterministic exponential delay for the given retry
// attempt (0-based), honoring ctx's cancellation and deadline.
func (c *Collector) backoff(ctx context.Context, attempt int) error {
	if c.Backoff <= 0 {
		return nil
	}
	d := c.Backoff
	for i := 0; i < attempt && i < 30; i++ {
		d *= 2
		if c.BackoffMax > 0 && d >= c.BackoffMax {
			break
		}
	}
	if c.BackoffMax > 0 && d > c.BackoffMax {
		d = c.BackoffMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// throttle enforces the request interval.
func (c *Collector) throttle(ctx context.Context) error {
	if c.Interval <= 0 {
		return nil
	}
	now := time.Now()
	wait := c.Interval - now.Sub(c.last)
	if wait > 0 {
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c.last = time.Now()
	return nil
}

// NumBlocks fetches the served block-count (phase 0).
func (c *Collector) NumBlocks(ctx context.Context) (uint64, error) {
	var n uint64
	if err := c.call(ctx, MethodGetNumTxBlocks, []uint64{}, &n); err != nil {
		return 0, err
	}
	return n, nil
}

// BlockHashes fetches all transaction hashes of one block (phase 1).
func (c *Collector) BlockHashes(ctx context.Context, block uint64) ([]types.Hash, error) {
	var hashes []types.Hash
	if err := c.call(ctx, MethodGetTransactionsForBlock, []uint64{block}, &hashes); err != nil {
		return nil, err
	}
	return hashes, nil
}

// Transaction fetches one transaction's detail (phase 2).
func (c *Collector) Transaction(ctx context.Context, h types.Hash) (TxDetail, error) {
	var d TxDetail
	if err := c.call(ctx, MethodGetTransaction, []types.Hash{h}, &d); err != nil {
		return d, err
	}
	return d, nil
}

// Progress reports collection progress after each block.
type Progress struct {
	Block        uint64
	Blocks       uint64
	Transactions int
}

// CollectAll downloads the whole history in the paper's two phases and
// returns it as account table rows, ready for the dataset pipeline. The
// optional progress callback fires after each block.
func (c *Collector) CollectAll(ctx context.Context, progress func(Progress)) ([]dataset.AccountTxRow, error) {
	numBlocks, err := c.NumBlocks(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: phase 0: %w", err)
	}
	var rows []dataset.AccountTxRow
	total := 0
	for b := uint64(0); b < numBlocks; b++ {
		hashes, err := c.BlockHashes(ctx, b)
		if err != nil {
			return nil, fmt.Errorf("client: phase 1, block %d: %w", b, err)
		}
		for _, h := range hashes {
			d, err := c.Transaction(ctx, h)
			if err != nil {
				return nil, fmt.Errorf("client: phase 2, tx %s: %w", h.Short(), err)
			}
			rows = append(rows, dataset.AccountTxRow{
				BlockNumber: d.BlockNumber,
				BlockTime:   d.BlockTime,
				Hash:        d.Hash,
				From:        d.From,
				To:          d.To,
				GasUsed:     d.GasUsed,
			})
			total++
		}
		if progress != nil {
			progress(Progress{Block: b, Blocks: numBlocks, Transactions: total})
		}
	}
	return rows, nil
}
