package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/dataset"
	"txconcur/internal/types"
)

// buildZilliqaRows generates a small Zilliqa-like history and exports it to
// table rows, returning rows plus the per-block reference metrics.
func buildZilliqaRows(t *testing.T, blocks int) ([]dataset.AccountTxRow, map[uint64]core.Metrics) {
	t.Helper()
	g, err := chainsim.NewAcctGen(chainsim.ZilliqaProfile(), blocks, 33)
	if err != nil {
		t.Fatal(err)
	}
	var rows []dataset.AccountTxRow
	want := make(map[uint64]core.Metrics)
	for {
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, dataset.FromAccountBlock(blk, receipts)...)
		want[blk.Height] = core.MeasureAccountBlock(blk, receipts)
	}
	return rows, want
}

func TestTwoPhaseCollection(t *testing.T) {
	rows, want := buildZilliqaRows(t, 10)
	server := NewChainServer(rows)
	ts := httptest.NewServer(server)
	defer ts.Close()

	c := &Collector{URL: ts.URL, MaxRetries: 2}
	var progressCalls int
	got, err := c.CollectAll(context.Background(), func(p Progress) {
		progressCalls++
		if p.Blocks == 0 {
			t.Error("progress with zero total blocks")
		}
	})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if progressCalls == 0 {
		t.Fatal("no progress callbacks")
	}

	// The collected table must reproduce the reference metrics through the
	// dataset pipeline. (Zilliqa has no internal transactions, so the
	// collected rows carry the full TDG information.)
	results, err := dataset.QueryAccount(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		m, ok := want[r.BlockNumber]
		if !ok {
			t.Fatalf("unexpected block %d", r.BlockNumber)
		}
		if r.NumTransactions != m.NumTxs || r.NumConflictTxs != m.Conflicted || r.MaxLCCSize != m.LCC {
			t.Fatalf("block %d: collected (%d,%d,%d) != reference (%d,%d,%d)",
				r.BlockNumber, r.NumTransactions, r.NumConflictTxs, r.MaxLCCSize,
				m.NumTxs, m.Conflicted, m.LCC)
		}
	}
}

func TestCollectorRetriesTransientFailures(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 4)
	server := NewChainServer(rows)
	server.SetFailEvery(5) // every 5th request 503s
	ts := httptest.NewServer(server)
	defer ts.Close()

	c := &Collector{URL: ts.URL, MaxRetries: 3}
	if _, err := c.CollectAll(context.Background(), nil); err != nil {
		t.Fatalf("collector should survive transient failures: %v", err)
	}
}

func TestCollectorRetryBudgetExhausted(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 2)
	server := NewChainServer(rows)
	server.SetFailEvery(1) // every request fails
	ts := httptest.NewServer(server)
	defer ts.Close()

	c := &Collector{URL: ts.URL, MaxRetries: 2}
	_, err := c.CollectAll(context.Background(), nil)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
}

func TestRateLimiting(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 2)
	ts := httptest.NewServer(NewChainServer(rows))
	defer ts.Close()

	const interval = 5 * time.Millisecond
	c := &Collector{URL: ts.URL, Interval: interval}
	start := time.Now()
	n, err := c.NumBlocks(context.Background())
	if err != nil || n == 0 {
		t.Fatalf("NumBlocks: %d, %v", n, err)
	}
	// Several further calls must be spaced by the interval.
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := c.BlockHashes(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if min := time.Duration(calls) * interval; elapsed < min {
		t.Fatalf("%d calls took %v, rate limit demands >= %v", calls+1, elapsed, min)
	}
}

func TestContextCancellation(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 2)
	ts := httptest.NewServer(NewChainServer(rows))
	defer ts.Close()

	c := &Collector{URL: ts.URL, Interval: time.Hour} // would wait forever
	if _, err := c.NumBlocks(context.Background()); err != nil {
		t.Fatal(err) // first call: no wait yet
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := c.NumBlocks(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestServerErrors(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 2)
	ts := httptest.NewServer(NewChainServer(rows))
	defer ts.Close()
	c := &Collector{URL: ts.URL}

	// Unknown transaction.
	_, err := c.Transaction(context.Background(), types.HashUint64("missing", 1))
	if !errors.Is(err, ErrRPC) {
		t.Fatalf("missing tx: %v", err)
	}
	// Unknown block returns an empty list, not an error (Zilliqa-like).
	hashes, err := c.BlockHashes(context.Background(), 999999)
	if err != nil || len(hashes) != 0 {
		t.Fatalf("unknown block: %v, %v", hashes, err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	rows, _ := buildZilliqaRows(t, 2)
	server := NewChainServer(rows)
	if _, rpcErr := server.dispatch("NoSuchMethod", nil); rpcErr == nil {
		t.Fatal("unknown method accepted")
	}
	if _, rpcErr := server.dispatch(MethodGetTransactionsForBlock, []byte(`"no"`)); rpcErr == nil {
		t.Fatal("bad params accepted")
	}
	if server.NumBlocks() == 0 {
		t.Fatal("server has no blocks")
	}
}
