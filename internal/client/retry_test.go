package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
)

// flakyHandler fails the first `fail` requests with status, then delegates.
type flakyHandler struct {
	fail   int64
	status int
	next   http.Handler
	seen   atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.seen.Add(1)
	if n <= h.fail {
		http.Error(w, "injected", h.status)
		return
	}
	h.next.ServeHTTP(w, r)
}

// TestSubmitterRetriesFlaky5xx: a submitter rides out transient 5xx
// responses with bounded deterministic backoff and lands the transaction.
func TestSubmitterRetriesFlaky5xx(t *testing.T) {
	pool := mempool.New(8)
	h := &flakyHandler{fail: 3, status: http.StatusServiceUnavailable, next: NewBuilderServer(pool)}
	srv := httptest.NewServer(h)
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 5, Backoff: time.Millisecond, BackoffMax: 4 * time.Millisecond}}
	if err := sub.Submit(context.Background(), submitTx(1, 2, 0)); err != nil {
		t.Fatalf("submit through flaky server: %v", err)
	}
	if got := h.seen.Load(); got != 4 {
		t.Fatalf("%d requests, want 4 (3 failures + success)", got)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool has %d pending, want 1", pool.Len())
	}
}

// TestSubmitterRetryBudget: when the server never recovers, the submitter
// stops after MaxRetries and surfaces ErrTransient — bounded, not forever.
func TestSubmitterRetryBudget(t *testing.T) {
	h := &flakyHandler{fail: 1 << 30, status: http.StatusBadGateway, next: http.NotFoundHandler()}
	srv := httptest.NewServer(h)
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond}}
	err := sub.Submit(context.Background(), submitTx(1, 2, 0))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestSubmitterPermanent4xxNotRetried: a 4xx means the server rejected the
// request; retrying the same bytes is pointless and must not happen.
func TestSubmitterPermanent4xxNotRetried(t *testing.T) {
	h := &flakyHandler{fail: 1 << 30, status: http.StatusNotFound, next: http.NotFoundHandler()}
	srv := httptest.NewServer(h)
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 5, Backoff: time.Millisecond}}
	err := sub.Submit(context.Background(), submitTx(1, 2, 0))
	if err == nil || errors.Is(err, ErrTransient) {
		t.Fatalf("want a permanent error, got %v", err)
	}
	if got := h.seen.Load(); got != 1 {
		t.Fatalf("%d requests for a permanent failure, want 1", got)
	}
}

// TestSubmitterPoolClosedNotRetried: ErrPoolClosed arrives as a JSON-RPC
// error over HTTP 200 — permanent by construction, exactly one request.
func TestSubmitterPoolClosedNotRetried(t *testing.T) {
	pool := mempool.New(4)
	pool.Close()
	h := &flakyHandler{next: NewBuilderServer(pool)}
	srv := httptest.NewServer(h)
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 5, Backoff: time.Millisecond}}
	if err := sub.Submit(context.Background(), submitTx(1, 2, 0)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	if got := h.seen.Load(); got != 1 {
		t.Fatalf("%d requests after pool close, want 1", got)
	}
}

// TestSubmitterBackoffHonorsDeadline: a context deadline interrupts the
// backoff wait instead of sleeping through it.
func TestSubmitterBackoffHonorsDeadline(t *testing.T) {
	h := &flakyHandler{fail: 1 << 30, status: http.StatusInternalServerError, next: http.NotFoundHandler()}
	srv := httptest.NewServer(h)
	defer srv.Close()

	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 10, Backoff: time.Hour}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sub.Submit(ctx, submitTx(1, 2, 0))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored the deadline for %v", elapsed)
	}
}

// TestDurableSubmitOverHTTP: the durable server holds the reply until the
// builder has appended the block to the WAL, so an HTTP success IS a
// durability ack end to end.
func TestDurableSubmitOverHTTP(t *testing.T) {
	pre := account.NewStateDB()
	pre.AddBalance(types.AddressFromUint64("user", 1), 1<<30)
	pool := mempool.New(8)
	log := &countingLog{}
	builder := mempool.NewBuilder(pool, pre, mempool.BuilderConfig{
		Pack:     mempool.PackConfig{MaxTxs: 1, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
		Log:      log,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out := make(chan mempool.BuiltBlock, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		builder.Run(ctx, out)
	}()

	srv := httptest.NewServer(NewDurableBuilderServer(pool))
	defer srv.Close()
	sub := &Submitter{Collector: Collector{URL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond}}
	for n := uint64(0); n < 3; n++ {
		if err := sub.Submit(context.Background(), submitTx(1, 2, n)); err != nil {
			t.Fatalf("durable submit %d: %v", n, err)
		}
		// The reply only comes back after the append: the log must already
		// hold this transaction's block.
		if got := log.appends.Load(); got < int64(n)+1 {
			t.Fatalf("submit %d acked with only %d blocks appended", n, got)
		}
	}
	pool.Close()
	<-done
	// After shutdown, durable submissions are refused, not stranded.
	if err := sub.Submit(context.Background(), submitTx(1, 2, 3)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-shutdown durable submit: %v", err)
	}
}

// countingLog is a minimal BlockLog counting appends.
type countingLog struct {
	appends atomic.Int64
	syncs   atomic.Int64
}

func (l *countingLog) Append(blk *account.Block) (uint64, error) {
	return uint64(l.appends.Add(1) - 1), nil
}

func (l *countingLog) Sync() error {
	l.syncs.Add(1)
	return nil
}
