package core

import (
	"sort"

	"txconcur/internal/types"
)

// This file defines the address→shard assignment abstraction the sharded
// execution engine consults (internal/exec.Sharded). The paper's §II-B
// sharding — and the analytical E6 experiment — hard-codes a static
// assignment (ShardOf, FNV-1a over the address), which is exactly the
// limitation the ROADMAP's adaptive-placement items name: a hot shard
// absorbs the skew forever, because nothing ever moves. A ShardMap makes
// the assignment a value: the static map reproduces ShardOf bit for bit,
// an override map layers explicit reassignments over it, and an
// AdaptiveShardMap (implemented by internal/heat.AdaptiveMap) learns
// conflict structure across blocks and rebalances hot keys at epoch
// boundaries, with the engine migrating the moved state between its
// per-shard stores deterministically.

// ShardMap assigns every address to one of a fixed number of shards. A
// ShardMap must be a pure function between mutations: the sharded engine
// consults it from concurrent workers, so Shard must be safe for
// concurrent readers as long as nothing rebalances the map (the engine
// only rebalances at drained epoch boundaries).
type ShardMap interface {
	// Shards returns the committee count n ≥ 1.
	Shards() int
	// Shard maps an address to a shard in [0, Shards()).
	Shard(a types.Address) int
}

// StaticShardMap is the baseline assignment: FNV-1a over the full address
// (ShardOf), never rebalanced. The integer value is the shard count.
type StaticShardMap int

// Shards implements ShardMap.
func (m StaticShardMap) Shards() int {
	if m < 1 {
		return 1
	}
	return int(m)
}

// Shard implements ShardMap.
func (m StaticShardMap) Shard(a types.Address) int { return ShardOf(a, m.Shards()) }

// OverrideShardMap layers explicit per-address reassignments over the
// FNV-1a baseline: addresses in the override table live on their assigned
// shard, everything else falls through to ShardOf. This is the shape every
// load-aware policy produces — only the hot head of the address space is
// worth tracking, so the cold tail stays on its hash-balanced default.
type OverrideShardMap struct {
	n         int
	overrides map[types.Address]int
}

// NewOverrideShardMap builds an override map with n shards. Overrides
// outside [0, n) are clamped into range; a nil override table is legal and
// degenerates to the static map.
func NewOverrideShardMap(n int, overrides map[types.Address]int) *OverrideShardMap {
	if n < 1 {
		n = 1
	}
	m := &OverrideShardMap{n: n, overrides: make(map[types.Address]int, len(overrides))}
	for a, s := range overrides {
		if s < 0 {
			s = 0
		}
		if s >= n {
			s = n - 1
		}
		m.overrides[a] = s
	}
	return m
}

// Shards implements ShardMap.
func (m *OverrideShardMap) Shards() int { return m.n }

// Shard implements ShardMap.
func (m *OverrideShardMap) Shard(a types.Address) int {
	if s, ok := m.overrides[a]; ok {
		return s
	}
	return ShardOf(a, m.n)
}

// Overridden returns the overridden addresses in deterministic (byte)
// order — the migration working set of a rebalance that installed this
// table.
func (m *OverrideShardMap) Overridden() []types.Address {
	out := make([]types.Address, 0, len(m.overrides))
	for a := range m.overrides {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BlockHeat is one executed block's contribution to a conflict-heat
// profile, produced by the sharded engine after each commit and consumed
// by adaptive shard maps: which addresses the block touched, which were
// involved in serialised re-executions, and the per-transaction address
// groups of those re-executions (the affinity signal a placement policy
// clusters on).
type BlockHeat struct {
	// Access counts, per address, the transactions whose committed result
	// touched it (read, wrote, or delta-wrote any of its keys).
	Access map[types.Address]int
	// Conflict counts, per address, the transactions touching it that the
	// engine had to serialise at least once (shard bin, cross-shard merge
	// wave, commit redo, or repair pass).
	Conflict map[types.Address]int
	// Groups holds, for every serialised transaction in block order, its
	// touched addresses in deterministic (byte) order. Addresses that
	// repeatedly conflict *together* — a sweep bot and its collector — are
	// exactly what a placement policy wants to co-locate.
	Groups [][]types.Address
}

// ShardMove records one address reassignment of a rebalance: the shard its
// state currently lives on (From) and its new home (To).
type ShardMove struct {
	Addr     types.Address
	From, To int
}

// AdaptiveShardMap is a ShardMap that learns from executed blocks. The
// sharded chain engine (exec.Sharded.ExecuteChain) feeds it every
// committed block's BlockHeat in block order and, at epoch boundaries
// (Sharded.RebalanceEvery blocks, with the pipeline drained), calls
// Rebalance and migrates the moved addresses' state between its per-shard
// stores. Both calls happen on the committer goroutine only, so
// implementations need no internal locking; Shard must remain safe for
// concurrent readers between mutations.
type AdaptiveShardMap interface {
	ShardMap
	// ObserveBlock folds one committed block's heat into the profile.
	ObserveBlock(h BlockHeat)
	// Rebalance recomputes the assignment from the accumulated profile and
	// returns the moves (sorted by address), already applied to the map.
	// An empty slice means the assignment did not change.
	Rebalance() []ShardMove
}
