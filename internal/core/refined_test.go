package core

import (
	"testing"

	"txconcur/internal/types"
)

func refAddr(i uint64) types.Address { return types.AddressFromUint64("refined", i) }

// hotDepositView models the degenerate hot-key block: n distinct senders
// all paying one exchange wallet via pure transfers.
func hotDepositView(n int) *AccountBlockView {
	hot := refAddr(1000)
	v := &AccountBlockView{
		Regular:  make([]AccountEdge, n),
		Transfer: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		v.Regular[i] = AccountEdge{From: refAddr(uint64(i)), To: hot}
		v.Transfer[i] = true
	}
	return v
}

func TestRefinedDropsPureDeltaEdges(t *testing.T) {
	v := hotDepositView(6)
	key := BuildAccount(v)
	if key.LCCTxs() != 6 || key.Conflicted() != 6 {
		t.Fatalf("key-level TDG: LCC %d conflicted %d, want 6/6", key.LCCTxs(), key.Conflicted())
	}
	op := BuildAccountRefined(v)
	if op.DroppedDeltaEdges != 6 {
		t.Fatalf("dropped %d edges, want 6", op.DroppedDeltaEdges)
	}
	if op.LCCTxs() != 1 || op.Conflicted() != 0 {
		t.Fatalf("refined TDG: LCC %d conflicted %d, want 1/0", op.LCCTxs(), op.Conflicted())
	}
	if op.NumTxs != 6 || len(op.TxComponent) != 6 {
		t.Fatalf("refined TDG lost transactions: %+v", op)
	}
}

func TestRefinedKeepsReaderDependencies(t *testing.T) {
	// The hot address sends once (to one of the depositors, itself a
	// sender): its balance is read, so every credit to it materialises and
	// all edges must stay.
	v := hotDepositView(4)
	hot := v.Regular[0].To
	v.Regular = append(v.Regular, AccountEdge{From: hot, To: refAddr(0)})
	v.Transfer = append(v.Transfer, true)
	op := BuildAccountRefined(v)
	if op.DroppedDeltaEdges != 0 {
		t.Fatalf("dropped %d edges despite the receiver sending", op.DroppedDeltaEdges)
	}
	if op.LCCTxs() != 5 {
		t.Fatalf("refined LCC %d, want 5", op.LCCTxs())
	}

	// A non-transfer interaction (contract call) with the hot address also
	// pins every edge: the callee's state is really shared.
	v2 := hotDepositView(4)
	v2.Regular = append(v2.Regular, AccountEdge{From: refAddr(55), To: v2.Regular[0].To})
	v2.Transfer = append(v2.Transfer, false)
	op2 := BuildAccountRefined(v2)
	if op2.DroppedDeltaEdges != 0 {
		t.Fatalf("dropped %d edges despite a non-transfer target", op2.DroppedDeltaEdges)
	}
	if op2.LCCTxs() != 5 {
		t.Fatalf("refined LCC %d, want 5", op2.LCCTxs())
	}
}

func TestRefinedMatchesKeyLevelWithoutTransfers(t *testing.T) {
	// With no transfer classification (nil Transfer) or no transfers at all,
	// the refined TDG must equal the paper's key-level TDG.
	v := hotDepositView(5)
	v.Transfer = nil
	key, op := BuildAccount(v), BuildAccountRefined(v)
	if op.DroppedDeltaEdges != 0 || op.LCCTxs() != key.LCCTxs() || op.Conflicted() != key.Conflicted() {
		t.Fatalf("nil Transfer: refined diverged (dropped %d)", op.DroppedDeltaEdges)
	}

	// Self-transfers are never droppable: the sender reads its own balance.
	self := &AccountBlockView{
		Regular:  []AccountEdge{{From: refAddr(1), To: refAddr(1)}},
		Transfer: []bool{true},
	}
	if got := BuildAccountRefined(self).DroppedDeltaEdges; got != 0 {
		t.Fatalf("self-transfer dropped %d edges", got)
	}

	// Internal transactions targeting an address keep its edges even when a
	// regular transfer also pays it.
	vi := hotDepositView(3)
	vi.Internal = []AccountEdge{{From: refAddr(60), To: vi.Regular[0].To}}
	if got := BuildAccountRefined(vi).DroppedDeltaEdges; got != 0 {
		t.Fatalf("internal-targeted receiver dropped %d edges", got)
	}
}
