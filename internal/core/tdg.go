// Package core implements the paper's primary contribution: the transaction
// dependency graph (TDG, §III-A1), the two concurrency metrics derived from
// its connected components (single-transaction conflict rate and group
// conflict rate, §III-A3), and the analytical execution speed-up model
// (§V, equations (1) and (2)).
package core

import (
	"sort"

	"txconcur/internal/account"
	"txconcur/internal/graph"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

// TDG is the transaction dependency graph of one block, reduced to the
// information the metrics need: the assignment of regular transactions to
// connected components.
//
// For UTXO blocks the TDG's nodes are the block's transactions; for account
// blocks the nodes are addresses and transactions are then mapped onto the
// components of their endpoints (§III-A2). In both cases coinbase
// transactions are ignored (§III-A1).
type TDG struct {
	// NumTxs is the number of regular (non-coinbase) transactions.
	NumTxs int
	// NumInternal is the number of internal transactions (account model
	// only; always zero for UTXO blocks).
	NumInternal int
	// NumInputs is the total number of transaction inputs (UTXO model
	// only; the "input TXOs" series of Figure 5a).
	NumInputs int
	// TxComponent maps each regular transaction (by its index among
	// regular transactions, in block order) to a dense component ID.
	TxComponent []int
	// ComponentTxCount holds, for each component ID, the number of regular
	// transactions mapped to it.
	ComponentTxCount []int
	// DroppedDeltaEdges is the number of pure delta–delta edges the
	// operation-level refinement removed (BuildAccountRefined only; zero
	// for the paper's key-level construction).
	DroppedDeltaEdges int
}

// BuildUTXO constructs the TDG of a UTXO block: one node per non-coinbase
// transaction, and an edge (a, b) whenever a TXO created by a is spent by b
// within the same block (§III-A1).
func BuildUTXO(b *utxo.Block) *TDG {
	// Index regular transactions and the outputs they create.
	regular := make([]*utxo.Transaction, 0, len(b.Txs))
	creator := make(map[types.Hash]int, len(b.Txs)) // tx hash -> regular index
	for _, tx := range b.Txs {
		if tx.IsCoinbase() {
			continue
		}
		creator[tx.ID()] = len(regular)
		regular = append(regular, tx)
	}
	g := graph.NewUndirected(len(regular))
	inputs := 0
	for i, tx := range regular {
		inputs += len(tx.Inputs)
		for _, in := range tx.Inputs {
			if j, ok := creator[in.Prev.TxID]; ok && j != i {
				g.AddEdge(j, i)
			}
		}
	}
	// Coinbase inputs do not exist; count all block inputs for the series.
	for _, tx := range b.Txs {
		if tx.IsCoinbase() {
			inputs += len(tx.Inputs)
		}
	}

	ccs := g.ConnectedComponents()
	t := &TDG{
		NumTxs:           len(regular),
		NumInputs:        inputs,
		TxComponent:      make([]int, len(regular)),
		ComponentTxCount: make([]int, len(ccs)),
	}
	for comp, cc := range ccs {
		for _, node := range cc {
			t.TxComponent[node] = comp
		}
		t.ComponentTxCount[comp] = len(cc)
	}
	return t
}

// AccountEdge is one sender→receiver interaction: a regular transaction or
// an internal transaction.
type AccountEdge struct {
	From types.Address
	To   types.Address
}

// AccountBlockView is the data the account-model TDG construction consumes:
// the endpoints of each regular transaction and all internal-transaction
// edges. It decouples TDG building from block execution so that fixture
// blocks (e.g. the paper's Figure 1 examples) can be analysed without a
// state database.
type AccountBlockView struct {
	// Regular holds the (sender, receiver) endpoints of each regular
	// transaction, in block order. For contract creations the receiver is
	// the created contract's address.
	Regular []AccountEdge
	// Internal holds the endpoints of each internal transaction.
	Internal []AccountEdge
	// GasUsed is the gas consumed per regular transaction, aligned with
	// Regular; optional (used for gas weighting). Nil means unknown.
	GasUsed []uint64
	// Transfer marks regular transactions that are pure successful value
	// transfers — no code executed, no internal transactions — whose only
	// effect on the receiver is a commutative balance credit. Aligned with
	// Regular; optional (nil treats every transaction as a potential
	// reader, which disables the operation-level refinement).
	Transfer []bool
}

// ViewFromReceipts assembles an AccountBlockView from an executed block and
// its receipts (which carry the internal-transaction traces).
func ViewFromReceipts(b *account.Block, receipts []*account.Receipt) *AccountBlockView {
	v := &AccountBlockView{
		Regular:  make([]AccountEdge, len(b.Txs)),
		GasUsed:  make([]uint64, len(b.Txs)),
		Transfer: make([]bool, len(b.Txs)),
	}
	for i, tx := range b.Txs {
		to := tx.To
		if i < len(receipts) && tx.IsCreation() {
			to = receipts[i].To
		}
		v.Regular[i] = AccountEdge{From: tx.From, To: to}
		if i < len(receipts) {
			r := receipts[i]
			v.GasUsed[i] = r.GasUsed
			// Exactly the intrinsic gas means no code ran: the receiver was
			// only credited. Failed transactions (status 0) revert their
			// credit but burn extra gas, so they classify as non-transfers,
			// which is the conservative direction.
			v.Transfer[i] = !tx.IsCreation() && r.Status == 1 &&
				r.GasUsed == account.GasTx && len(r.Internal) == 0
			for _, itx := range r.Internal {
				v.Internal = append(v.Internal, AccountEdge{From: itx.From, To: itx.To})
			}
		}
	}
	return v
}

// InternalEdgesByTx extracts each transaction's internal edges from its
// receipt, aligned with the block's transactions — the per-transaction
// grouping the sharding analysis needs.
func InternalEdgesByTx(receipts []*account.Receipt) [][]AccountEdge {
	out := make([][]AccountEdge, len(receipts))
	for i, r := range receipts {
		for _, itx := range r.Internal {
			out[i] = append(out[i], AccountEdge{From: itx.From, To: itx.To})
		}
	}
	return out
}

// BuildAccount constructs the TDG of an account block: one node per address
// referenced by a (possibly internal) transaction, and an edge (a, b) for
// every transaction with sender a and receiver b (§III-A1). Regular
// transactions are then assigned to the component containing their
// endpoints, the extra mapping step the paper describes for its Ethereum
// query (§III-C).
func BuildAccount(v *AccountBlockView) *TDG {
	return buildAccount(v, false)
}

// BuildAccountRefined constructs the operation-level TDG: like
// BuildAccount, but edges whose only shared state is a commutative balance
// credit are dropped. A transfer's edge to its receiver is pure delta–delta
// when the receiver is credit-only within the block — it never sends (no
// balance/nonce read), is never called or created, and receives value only
// through pure transfers — so deposits to a hot wallet or payouts to a
// flash-crowd address no longer collapse the block into one component.
// (Lin et al. 2022 and Garamvölgyi et al. 2022 make the same observation
// at the execution layer: commutative balance updates need not conflict.)
// The transaction itself stays in its sender's component, which still
// carries its real read–write dependencies.
func BuildAccountRefined(v *AccountBlockView) *TDG {
	return buildAccount(v, true)
}

func buildAccount(v *AccountBlockView, refined bool) *TDG {
	// Classify receivers for the refinement: an address is credit-only iff
	// it never appears as a sender (its balance and nonce are never read)
	// and every interaction targeting it is a pure transfer credit.
	var sender, nonCredit map[types.Address]bool
	if refined {
		sender = make(map[types.Address]bool, len(v.Regular))
		nonCredit = make(map[types.Address]bool)
		for i, e := range v.Regular {
			sender[e.From] = true
			if i >= len(v.Transfer) || !v.Transfer[i] {
				nonCredit[e.To] = true
			}
		}
		for _, e := range v.Internal {
			sender[e.From] = true
			nonCredit[e.To] = true
		}
	}

	in := graph.NewInterner[types.Address](2 * len(v.Regular))
	g := graph.NewUndirected(0)
	addEdge := func(e AccountEdge) {
		a, b := in.ID(e.From), in.ID(e.To)
		g.Grow(in.Len())
		g.AddEdge(a, b)
	}
	dropped := 0
	for i, e := range v.Regular {
		if refined && i < len(v.Transfer) && v.Transfer[i] && e.From != e.To &&
			!sender[e.To] && !nonCredit[e.To] {
			// Pure delta–delta edge: the receiver's state is only ever
			// credited, commutatively. Keep the sender as a node so the
			// transaction still maps to a component.
			in.ID(e.From)
			g.Grow(in.Len())
			dropped++
			continue
		}
		addEdge(e)
	}
	for _, e := range v.Internal {
		addEdge(e)
	}

	ccs := g.ConnectedComponents()
	addrComp := make([]int, in.Len())
	for comp, cc := range ccs {
		for _, node := range cc {
			addrComp[node] = comp
		}
	}

	t := &TDG{
		NumTxs:            len(v.Regular),
		NumInternal:       len(v.Internal),
		TxComponent:       make([]int, len(v.Regular)),
		ComponentTxCount:  make([]int, len(ccs)),
		DroppedDeltaEdges: dropped,
	}
	for i, e := range v.Regular {
		// The sender is always interned (a refined-dropped edge still
		// interns it), and shares its component with the receiver whenever
		// the edge was added.
		id, _ := in.Lookup(e.From)
		comp := addrComp[id]
		t.TxComponent[i] = comp
		t.ComponentTxCount[comp]++
	}
	return t
}

// BuildAccountApprox constructs the approximate TDG the paper's §V-C
// proposes as future work: internal transactions are not available a priori,
// so only the regular transactions' endpoints contribute edges.
func BuildAccountApprox(v *AccountBlockView) *TDG {
	return BuildAccount(&AccountBlockView{Regular: v.Regular, GasUsed: v.GasUsed})
}

// Conflicted returns the number of conflicted regular transactions: those
// whose component contains at least one other regular transaction
// (§III-A2).
func (t *TDG) Conflicted() int {
	n := 0
	for _, comp := range t.TxComponent {
		if t.ComponentTxCount[comp] >= 2 {
			n++
		}
	}
	return n
}

// LCCTxs returns the absolute LCC size L: the largest number of regular
// transactions in any single component (§V-B uses this as the length of the
// unavoidable sequential schedule).
func (t *TDG) LCCTxs() int {
	max := 0
	for _, c := range t.ComponentTxCount {
		if c > max {
			max = c
		}
	}
	return max
}

// NumComponents returns the number of connected components that contain at
// least one regular transaction.
func (t *TDG) NumComponents() int {
	n := 0
	for _, c := range t.ComponentTxCount {
		if c > 0 {
			n++
		}
	}
	return n
}

// GasMetrics computes the gas-weighted conflict numerators given the
// per-transaction gas costs (aligned with the regular transactions): total
// block gas, gas of conflicted transactions, and the largest per-component
// gas sum. A nil gas slice yields zeros.
func (t *TDG) GasMetrics(gas []uint64) (total, conflicted, lccGas uint64) {
	if len(gas) == 0 {
		return 0, 0, 0
	}
	compGas := make([]uint64, len(t.ComponentTxCount))
	for i, comp := range t.TxComponent {
		if i >= len(gas) {
			break
		}
		total += gas[i]
		compGas[comp] += gas[i]
		if t.ComponentTxCount[comp] >= 2 {
			conflicted += gas[i]
		}
	}
	for _, g := range compGas {
		if g > lccGas {
			lccGas = g
		}
	}
	return total, conflicted, lccGas
}

// TxGroups returns the regular-transaction indices grouped by component,
// largest group first — the unit of scheduling for the group-concurrency
// executor. Only components with at least one transaction are returned.
func (t *TDG) TxGroups() [][]int {
	byComp := make(map[int][]int)
	for i, comp := range t.TxComponent {
		byComp[comp] = append(byComp[comp], i)
	}
	groups := make([][]int, 0, len(byComp))
	for _, g := range byComp {
		groups = append(groups, g)
	}
	// Sort by size descending, ties by first transaction index, for
	// determinism across map iteration orders.
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i]) != len(groups[j]) {
			return len(groups[i]) > len(groups[j])
		}
		return groups[i][0] < groups[j][0]
	})
	return groups
}
