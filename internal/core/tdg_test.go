package core

import (
	"math/rand"
	"testing"

	"txconcur/internal/graph"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

func addr(tag string, i uint64) types.Address { return types.AddressFromUint64(tag, i) }

func TestFig1a(t *testing.T) {
	m := MeasureAccountView(Fig1aView())
	if m.NumTxs != 5 {
		t.Fatalf("NumTxs = %d, want 5", m.NumTxs)
	}
	if m.Components != 4 {
		t.Fatalf("components = %d, want 4 (paper: 3 of size 1 and 1 of size 2)", m.Components)
	}
	if m.Conflicted != 2 {
		t.Fatalf("conflicted = %d, want 2 (transactions 3 and 4)", m.Conflicted)
	}
	if got := m.SingleRate(); got != 0.4 {
		t.Fatalf("single-transaction conflict rate = %v, want 0.40", got)
	}
	if got := m.GroupRate(); got != 0.4 {
		t.Fatalf("group conflict rate = %v, want 0.40", got)
	}
}

func TestFig1b(t *testing.T) {
	v := Fig1bView()
	if len(v.Internal) != 18 {
		t.Fatalf("fixture has %d internal txs, want 18", len(v.Internal))
	}
	m := MeasureAccountView(v)
	if m.NumTxs != 16 {
		t.Fatalf("NumTxs = %d, want 16", m.NumTxs)
	}
	if m.NumInternal != 18 {
		t.Fatalf("NumInternal = %d, want 18", m.NumInternal)
	}
	if m.Components != 5 {
		t.Fatalf("components = %d, want 5", m.Components)
	}
	if m.Conflicted != 14 {
		t.Fatalf("conflicted = %d, want 14", m.Conflicted)
	}
	if got := m.SingleRate(); got != 0.875 {
		t.Fatalf("single-transaction conflict rate = %v, want 0.875", got)
	}
	if m.LCC != 9 {
		t.Fatalf("LCC = %d, want 9 (transactions 1-9)", m.LCC)
	}
	if got := m.GroupRate(); got != 0.5625 {
		t.Fatalf("group conflict rate = %v, want 0.5625", got)
	}
}

func TestFig1bApproxTDG(t *testing.T) {
	// Without internal transactions (paper §V-C future work), 10-12 are
	// still conflicted — they share the receiving contract — so for this
	// block the approximation happens to be exact.
	v := Fig1bView()
	m := FromTDG(BuildAccountApprox(v))
	if m.NumInternal != 0 {
		t.Fatalf("approx TDG should drop internals, has %d", m.NumInternal)
	}
	if m.Conflicted != 14 || m.LCC != 9 {
		t.Fatalf("approx: conflicted=%d LCC=%d, want 14/9", m.Conflicted, m.LCC)
	}
}

func TestApproxTDGMissesInternalOnlyConflicts(t *testing.T) {
	// Two transactions to different contracts that both internally call the
	// same token contract: the full TDG sees one component, the approximate
	// TDG (regular edges only) sees two.
	token := addr("approx", 99)
	cA, cB := addr("approx", 1), addr("approx", 2)
	v := &AccountBlockView{
		Regular: []AccountEdge{
			{From: addr("approx-s", 1), To: cA},
			{From: addr("approx-s", 2), To: cB},
		},
		Internal: []AccountEdge{
			{From: cA, To: token},
			{From: cB, To: token},
		},
	}
	full := FromTDG(BuildAccount(v))
	if full.Conflicted != 2 || full.LCC != 2 {
		t.Fatalf("full TDG: %+v, want both conflicted", full)
	}
	apx := FromTDG(BuildAccountApprox(v))
	if apx.Conflicted != 0 || apx.LCC != 1 {
		t.Fatalf("approx TDG: %+v, want no conflicts", apx)
	}
}

// randHash is a test helper for synthetic outpoints outside the block.
func randHash(rng *rand.Rand) types.Hash {
	return types.HashUint64("core-test-ext", rng.Uint64())
}

// makeUTXOBlock builds a block of nTx transactions where spends[i] = j means
// transaction i spends an output of transaction j (j < i); spends[i] = -1
// means transaction i spends an external outpoint.
func makeUTXOBlock(t *testing.T, spends []int) *utxo.Block {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	coinbase := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	txs := []*utxo.Transaction{coinbase}
	regular := make([]*utxo.Transaction, 0, len(spends))
	for i, sp := range spends {
		var prev utxo.Outpoint
		if sp >= 0 {
			if sp >= i {
				t.Fatalf("bad fixture: spends[%d] = %d", i, sp)
			}
			prev = regular[sp].Outpoint(0)
		} else {
			prev = utxo.Outpoint{TxID: randHash(rng), Index: 0}
		}
		tx := utxo.NewTransaction(
			[]utxo.TxIn{{Prev: prev}},
			[]utxo.TxOut{{Value: utxo.Amount(10 + i)}},
		)
		regular = append(regular, tx)
		txs = append(txs, tx)
	}
	return &utxo.Block{Height: 1, Txs: txs}
}

func TestUTXOTDGIndependent(t *testing.T) {
	// All transactions spend external outputs: no conflicts, like a typical
	// Bitcoin block (paper: group conflict rate around 1%).
	b := makeUTXOBlock(t, []int{-1, -1, -1, -1})
	m := MeasureUTXOBlock(b)
	if m.NumTxs != 4 || m.Conflicted != 0 || m.LCC != 1 || m.Components != 4 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.SingleRate() != 0 {
		t.Fatalf("single rate = %v, want 0", m.SingleRate())
	}
	if m.GroupRate() != 0.25 {
		t.Fatalf("group rate = %v, want 0.25 (LCC of 1 tx over 4)", m.GroupRate())
	}
	if got := LongestSpendChain(b); got != 1 {
		t.Fatalf("longest chain = %d, want 1", got)
	}
}

func TestUTXOTDGChain(t *testing.T) {
	// An 18-transaction spend chain like the paper's Figure 6 (Bitcoin
	// block 500000): one component, everything conflicted.
	spends := make([]int, 18)
	for i := range spends {
		spends[i] = i - 1 // tx i spends tx i-1's output; tx 0 external
	}
	b := makeUTXOBlock(t, spends)
	m := MeasureUTXOBlock(b)
	if m.NumTxs != 18 || m.Conflicted != 18 || m.LCC != 18 || m.Components != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if got := LongestSpendChain(b); got != 18 {
		t.Fatalf("longest chain = %d, want 18", got)
	}
}

func TestUTXOTDGMixed(t *testing.T) {
	// Two chains of 3 and 2, plus 3 independent transactions.
	b := makeUTXOBlock(t, []int{-1, 0, 1, -1, 3, -1, -1, -1})
	m := MeasureUTXOBlock(b)
	if m.NumTxs != 8 {
		t.Fatalf("NumTxs = %d", m.NumTxs)
	}
	if m.Conflicted != 5 {
		t.Fatalf("conflicted = %d, want 5", m.Conflicted)
	}
	if m.LCC != 3 {
		t.Fatalf("LCC = %d, want 3", m.LCC)
	}
	if m.Components != 5 {
		t.Fatalf("components = %d, want 5", m.Components)
	}
	if got := LongestSpendChain(b); got != 3 {
		t.Fatalf("longest chain = %d, want 3", got)
	}
}

func TestUTXOCoinbaseIgnored(t *testing.T) {
	// A transaction spending the block's own coinbase output: the paper
	// ignores coinbase transactions, so this creates no edge.
	coinbase := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	spend := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: coinbase.Outpoint(0)}},
		[]utxo.TxOut{{Value: 50}},
	)
	b := &utxo.Block{Height: 0, Txs: []*utxo.Transaction{coinbase, spend}}
	m := MeasureUTXOBlock(b)
	if m.NumTxs != 1 {
		t.Fatalf("NumTxs = %d, want 1 (coinbase excluded)", m.NumTxs)
	}
	if m.Conflicted != 0 {
		t.Fatalf("conflicted = %d, want 0", m.Conflicted)
	}
}

func TestTDGEmptyBlock(t *testing.T) {
	coinbaseOnly := &utxo.Block{Height: 0, Txs: []*utxo.Transaction{
		utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}}),
	}}
	m := MeasureUTXOBlock(coinbaseOnly)
	if m.NumTxs != 0 || m.SingleRate() != 0 || m.GroupRate() != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	av := MeasureAccountView(&AccountBlockView{})
	if av.NumTxs != 0 || av.SingleRate() != 0 || av.GroupRate() != 0 {
		t.Fatalf("account metrics = %+v", av)
	}
}

func TestTxGroups(t *testing.T) {
	v := Fig1bView()
	tdg := BuildAccount(v)
	groups := tdg.TxGroups()
	if len(groups) != 5 {
		t.Fatalf("groups = %d, want 5", len(groups))
	}
	if len(groups[0]) != 9 {
		t.Fatalf("largest group = %d txs, want 9", len(groups[0]))
	}
	// Groups partition the transactions.
	seen := make(map[int]bool)
	total := 0
	for _, g := range groups {
		for _, tx := range g {
			if seen[tx] {
				t.Fatalf("tx %d in two groups", tx)
			}
			seen[tx] = true
			total++
		}
	}
	if total != 16 {
		t.Fatalf("groups cover %d txs, want 16", total)
	}
	// Descending sizes.
	for i := 1; i < len(groups); i++ {
		if len(groups[i]) > len(groups[i-1]) {
			t.Fatal("groups not sorted by size")
		}
	}
}

// TestUTXOTDGMatchesBruteForce cross-checks the TDG component assignment
// against a direct union-find over the same spend relation, on random
// blocks.
func TestUTXOTDGMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		spends := make([]int, n)
		for i := range spends {
			if i > 0 && rng.Float64() < 0.4 {
				spends[i] = rng.Intn(i)
			} else {
				spends[i] = -1
			}
		}
		b := makeUTXOBlock(t, spends)
		tdg := BuildUTXO(b)

		uf := graph.NewUnionFind(n)
		for i, sp := range spends {
			if sp >= 0 {
				uf.Union(i, sp)
			}
		}
		wantConflicted := 0
		wantLCC := 0
		for i := 0; i < n; i++ {
			if s := uf.SetSize(i); s >= 2 {
				wantConflicted++
			}
			if s := uf.SetSize(i); s > wantLCC {
				wantLCC = s
			}
		}
		if got := tdg.Conflicted(); got != wantConflicted {
			t.Fatalf("trial %d: conflicted = %d, want %d", trial, got, wantConflicted)
		}
		if got := tdg.LCCTxs(); got != wantLCC {
			t.Fatalf("trial %d: LCC = %d, want %d", trial, got, wantLCC)
		}
	}
}

// TestMetricsInvariants verifies the paper's §IV-B observation as an
// invariant: whenever any transaction is conflicted, the single-transaction
// conflict rate is at least the group conflict rate ("the single-transaction
// conflict must always be at least as high as the group conflict rate").
func TestMetricsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		spends := make([]int, n)
		for i := range spends {
			if i > 0 && rng.Float64() < 0.5 {
				spends[i] = rng.Intn(i)
			} else {
				spends[i] = -1
			}
		}
		m := MeasureUTXOBlock(makeUTXOBlock(t, spends))
		single, group := m.SingleRate(), m.GroupRate()
		if single < 0 || single > 1 || group < 0 || group > 1 {
			t.Fatalf("rates out of range: %v %v", single, group)
		}
		if m.LCC >= 2 && single < group {
			t.Fatalf("trial %d: single %v < group %v with LCC %d", trial, single, group, m.LCC)
		}
		if m.LCC <= 1 && m.Conflicted != 0 {
			t.Fatalf("trial %d: LCC %d but %d conflicted", trial, m.LCC, m.Conflicted)
		}
		if m.Conflicted == 0 && m.LCC > 1 {
			t.Fatalf("trial %d: no conflicts but LCC %d", trial, m.LCC)
		}
	}
}
