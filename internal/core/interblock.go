package core

import (
	"txconcur/internal/graph"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

// This file implements the inter-block concurrency analysis the paper's
// §VII names as unexplored future work ("we only focused on
// inter-transaction concurrency at block level, which leaves other sources
// of concurrency such as intra-transaction, inter-block and
// inter-blockchain unexplored"). A window of w consecutive blocks is
// treated as one batch: the TDG spans all transactions of the window, so a
// TXO created in block i and spent in block i+1 — invisible to the paper's
// per-block analysis — becomes an edge, and address reuse across blocks
// merges components.
//
// The resulting metrics answer a question the per-block analysis cannot:
// if an execution engine batches w blocks (as validators catching up, or
// rollup-style batch processors do), how much concurrency remains?

// BuildUTXOWindow constructs the TDG of a window of consecutive UTXO
// blocks: one node per non-coinbase transaction of the window, and an edge
// whenever a TXO created anywhere in the window is spent anywhere in the
// window.
func BuildUTXOWindow(blocks []*utxo.Block) *TDG {
	total := 0
	for _, b := range blocks {
		total += len(b.Txs)
	}
	regular := make([]*utxo.Transaction, 0, total)
	creator := make(map[types.Hash]int, total)
	inputs := 0
	for _, b := range blocks {
		for _, tx := range b.Txs {
			inputs += len(tx.Inputs)
			if tx.IsCoinbase() {
				continue
			}
			creator[tx.ID()] = len(regular)
			regular = append(regular, tx)
		}
	}
	g := graph.NewUndirected(len(regular))
	for i, tx := range regular {
		for _, in := range tx.Inputs {
			if j, ok := creator[in.Prev.TxID]; ok && j != i {
				g.AddEdge(j, i)
			}
		}
	}
	t := &TDG{
		NumTxs:      len(regular),
		NumInputs:   inputs,
		TxComponent: make([]int, len(regular)),
	}
	ccs := g.ConnectedComponents()
	t.ComponentTxCount = make([]int, len(ccs))
	for comp, cc := range ccs {
		for _, node := range cc {
			t.TxComponent[node] = comp
		}
		t.ComponentTxCount[comp] = len(cc)
	}
	return t
}

// MergeAccountViews concatenates the views of consecutive account blocks
// into one window view; BuildAccount over the result yields the
// inter-block TDG (shared addresses merge components across blocks).
func MergeAccountViews(views ...*AccountBlockView) *AccountBlockView {
	out := &AccountBlockView{}
	withGas := true
	for _, v := range views {
		if v.GasUsed == nil {
			withGas = false
		}
	}
	for _, v := range views {
		out.Regular = append(out.Regular, v.Regular...)
		out.Internal = append(out.Internal, v.Internal...)
		if withGas {
			out.GasUsed = append(out.GasUsed, v.GasUsed...)
		}
	}
	return out
}

// WindowMetrics computes the metrics of a sliding, non-overlapping window
// decomposition of a sequence of per-block account views: the sequence is
// cut into ⌈len/w⌉ windows of w blocks and each window is measured as one
// batch.
func WindowMetrics(views []*AccountBlockView, w int) []Metrics {
	if w < 1 {
		w = 1
	}
	out := make([]Metrics, 0, (len(views)+w-1)/w)
	for lo := 0; lo < len(views); lo += w {
		hi := lo + w
		if hi > len(views) {
			hi = len(views)
		}
		out = append(out, MeasureAccountView(MergeAccountViews(views[lo:hi]...)))
	}
	return out
}

// WindowMetricsUTXO is WindowMetrics for UTXO blocks.
func WindowMetricsUTXO(blocks []*utxo.Block, w int) []Metrics {
	if w < 1 {
		w = 1
	}
	out := make([]Metrics, 0, (len(blocks)+w-1)/w)
	for lo := 0; lo < len(blocks); lo += w {
		hi := lo + w
		if hi > len(blocks) {
			hi = len(blocks)
		}
		out = append(out, FromTDG(BuildUTXOWindow(blocks[lo:hi])))
	}
	return out
}
