package core_test

import (
	"fmt"
	"testing"

	"txconcur/internal/core"
	"txconcur/internal/types"
)

func TestStaticShardMapMatchesShardOf(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		m := core.StaticShardMap(n)
		if m.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", m.Shards(), n)
		}
		for i := uint64(0); i < 500; i++ {
			a := types.AddressFromUint64("shardmap/static", i)
			if m.Shard(a) != core.ShardOf(a, n) {
				t.Fatalf("n=%d: StaticShardMap diverges from ShardOf on %v", n, a)
			}
		}
	}
	// Degenerate counts clamp to one shard.
	if core.StaticShardMap(0).Shards() != 1 || core.StaticShardMap(-3).Shards() != 1 {
		t.Fatal("non-positive static map did not clamp to 1")
	}
}

func TestOverrideShardMap(t *testing.T) {
	a := types.AddressFromUint64("shardmap/override", 1)
	b := types.AddressFromUint64("shardmap/override", 2)
	m := core.NewOverrideShardMap(4, map[types.Address]int{a: 2, b: -5})
	if m.Shard(a) != 2 {
		t.Fatalf("override lost: %d", m.Shard(a))
	}
	if m.Shard(b) != 0 {
		t.Fatalf("negative override not clamped to 0: %d", m.Shard(b))
	}
	c := types.AddressFromUint64("shardmap/override", 3)
	if m.Shard(c) != core.ShardOf(c, 4) {
		t.Fatal("non-overridden address left its hash default")
	}
	got := m.Overridden()
	if len(got) != 2 {
		t.Fatalf("Overridden() = %v, want 2 addresses", got)
	}
	if !got[0].Less(got[1]) {
		t.Fatal("Overridden() not sorted")
	}
}

// ExampleShardMap shows the assignment abstraction the sharded engine
// consults: the static FNV baseline, and an override map that pins a hot
// address pair — a sweep bot and its collector — onto one shard so their
// transfers stop being cross-shard.
func ExampleShardMap() {
	bot := types.AddressFromUint64("example/bot", 3)
	collector := types.AddressFromUint64("example/collect", 3)

	var static core.ShardMap = core.StaticShardMap(4)
	fmt.Printf("static co-located: %v\n", static.Shard(bot) == static.Shard(collector))

	placed := core.NewOverrideShardMap(4, map[types.Address]int{
		bot:       1,
		collector: 1,
	})
	fmt.Printf("placed co-located: %v\n", placed.Shard(bot) == placed.Shard(collector))
	fmt.Printf("shards: %d\n", placed.Shards())
	// Output:
	// static co-located: false
	// placed co-located: true
	// shards: 4
}
