package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSpeedupWorkedExampleFig1a reproduces the paper's §V-A worked example
// for the block of Figure 1a: five transactions, conflict rate 40%, n ≥ 5
// cores. "The five transactions would first be executed concurrently, which
// can be done in 1 time unit if n ≥ 5. However, the last two transactions
// would need to be rolled back and executed sequentially, which would take 2
// time units. Hence, the new execution time is given by 3 time units, and
// ... the speed-up equals 5/3 or roughly 1.67."
func TestSpeedupWorkedExampleFig1a(t *testing.T) {
	m := MeasureAccountView(Fig1aView())
	for _, n := range []int{5, 8, 16, 64} {
		got, err := SpeculativeSpeedupExact(m.NumTxs, m.SingleRate(), n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, 5.0/3.0) {
			t.Fatalf("n=%d: speed-up = %v, want 5/3", n, got)
		}
	}
}

// TestSpeedupWorkedExampleFig1b reproduces the §V-A worked example for the
// block of Figure 1b: sixteen transactions, conflict rate 87.5%.
//   - n ≥ 16: phase one takes 1 unit, the sequential phase 14 units;
//     speed-up 16/15 ≈ 1.07.
//   - 8 ≤ n ≤ 15: phase one takes 2 units; speed-up 16/16 = 1.
//   - n < 8: speed-up below 1 (slower than sequential execution).
func TestSpeedupWorkedExampleFig1b(t *testing.T) {
	m := MeasureAccountView(Fig1bView())
	if m.NumTxs != 16 || !almostEqual(m.SingleRate(), 0.875) {
		t.Fatalf("fixture: %+v", m)
	}
	got, err := SpeculativeSpeedupExact(16, 0.875, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 16.0/15.0) {
		t.Fatalf("n=16: %v, want 16/15", got)
	}
	for _, n := range []int{8, 11, 15} {
		got, err := SpeculativeSpeedupExact(16, 0.875, n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, 1.0) {
			t.Fatalf("n=%d: %v, want 1.0", n, got)
		}
	}
	for _, n := range []int{1, 2, 4, 7} {
		got, err := SpeculativeSpeedupExact(16, 0.875, n)
		if err != nil {
			t.Fatal(err)
		}
		if got >= 1.0 {
			t.Fatalf("n=%d: %v, want < 1 (worse than sequential)", n, got)
		}
	}
}

func TestEquationOneAsPrinted(t *testing.T) {
	// R = x / (⌊x/n⌋ + 1 + c·x), e.g. x=100, c=0.6, n=8:
	// ⌊100/8⌋=12, T' = 12+1+60 = 73, R = 100/73.
	got, err := SpeculativeSpeedup(100, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 100.0/73.0) {
		t.Fatalf("R = %v, want 100/73", got)
	}
}

func TestPerfectInfoSpeedup(t *testing.T) {
	// x=100, c=0.6, n=8, K=0: parallel phase ⌊40/8⌋+1 = 6, T' = 66.
	got, err := PerfectInfoSpeedup(100, 0.6, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 100.0/66.0) {
		t.Fatalf("R = %v, want 100/66", got)
	}
	// Preprocessing cost eats into the gain.
	withK, err := PerfectInfoSpeedup(100, 0.6, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if withK >= got {
		t.Fatalf("K should reduce the speed-up: %v >= %v", withK, got)
	}
	// Perfect information never loses to blind speculation (same x, c, n,
	// K=0): it executes strictly fewer transactions in phase one.
	blind, err := SpeculativeSpeedup(100, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got < blind {
		t.Fatalf("perfect info %v < speculative %v", got, blind)
	}
}

func TestGroupSpeedupEquationTwo(t *testing.T) {
	// Paper §V-C: with the Ethereum group conflict rate around 20%, the
	// model predicts min(n, 5): 4 with 4 cores, 5 with 8, 5 with 64.
	cases := []struct {
		n    int
		l    float64
		want float64
	}{
		{4, 0.2, 4},
		{8, 0.2, 5},
		{64, 0.2, 5},
		{8, 0.5625, 1 / 0.5625}, // Figure 1b block
		{8, 1.0, 1},             // fully sequential block
		{4, 0.0, 4},             // no conflicts: bounded by cores
	}
	for _, tc := range cases {
		got, err := GroupSpeedup(tc.n, tc.l)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want) {
			t.Fatalf("GroupSpeedup(%d, %v) = %v, want %v", tc.n, tc.l, got, tc.want)
		}
	}
}

func TestGroupSpeedupWithCost(t *testing.T) {
	// K = 0 reduces to min(n, 1/l) for blocks where L ≥ 1.
	got, err := GroupSpeedupWithCost(100, 0.2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5.0) {
		t.Fatalf("K=0: %v, want 5", got)
	}
	// The paper: "the difference is negligible if K is small compared to
	// the product of the number of transactions and the execution time per
	// transaction."
	small, err := GroupSpeedupWithCost(10000, 0.2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small-5.0) > 0.01 {
		t.Fatalf("small K should be negligible: %v", small)
	}
	// Large K dominates.
	large, err := GroupSpeedupWithCost(100, 0.2, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if large > 1 {
		t.Fatalf("large K: %v, want <= 1", large)
	}
}

func TestModelDomainErrors(t *testing.T) {
	if _, err := SpeculativeSpeedup(-1, 0.5, 4); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("negative x: %v", err)
	}
	if _, err := SpeculativeSpeedup(10, 0.5, 0); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("zero cores: %v", err)
	}
	if _, err := SpeculativeSpeedup(10, 1.5, 4); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("rate > 1: %v", err)
	}
	if _, err := SpeculativeSpeedup(10, -0.1, 4); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("rate < 0: %v", err)
	}
	if _, err := PerfectInfoSpeedup(10, 0.5, 4, -1); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("negative K: %v", err)
	}
	if _, err := GroupSpeedup(0, 0.5); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("zero cores group: %v", err)
	}
	if _, err := GroupSpeedupWithCost(10, 0.5, 4, -1); !errors.Is(err, ErrModelDomain) {
		t.Fatalf("negative K group: %v", err)
	}
}

func TestEmptyBlockSpeedups(t *testing.T) {
	for _, f := range []func() (float64, error){
		func() (float64, error) { return SpeculativeSpeedup(0, 0, 4) },
		func() (float64, error) { return SpeculativeSpeedupExact(0, 0, 4) },
		func() (float64, error) { return PerfectInfoSpeedup(0, 0, 4, 1) },
		func() (float64, error) { return GroupSpeedupWithCost(0, 0, 4, 1) },
	} {
		got, err := f()
		if err != nil || got != 1 {
			t.Fatalf("empty block: %v, %v (want 1, nil)", got, err)
		}
	}
}

// TestModelProperties checks structural properties of the model over the
// whole domain:
//   - all estimates are positive;
//   - group speed-up never exceeds n nor 1/l;
//   - the exact speculative estimate is at least the printed equation (1)
//     (⌈x/n⌉ ≤ ⌊x/n⌋+1);
//   - more cores never hurt.
func TestModelProperties(t *testing.T) {
	f := func(xRaw uint16, cRaw uint8, nRaw uint8) bool {
		x := int(xRaw%2000) + 1
		c := float64(cRaw) / 255
		n := int(nRaw%128) + 1

		spec, err := SpeculativeSpeedup(x, c, n)
		if err != nil || spec <= 0 {
			return false
		}
		exact, err := SpeculativeSpeedupExact(x, c, n)
		if err != nil || exact < spec-1e-12 {
			return false
		}
		grp, err := GroupSpeedup(n, c)
		if err != nil || grp <= 0 || grp > float64(n)+1e-12 {
			return false
		}
		if c > 0 && grp > 1/c+1e-12 {
			return false
		}
		// Monotonicity in cores.
		spec2, err := SpeculativeSpeedup(x, c, 2*n)
		if err != nil || spec2 < spec-1e-12 {
			return false
		}
		grp2, err := GroupSpeedup(2*n, c)
		if err != nil || grp2 < grp-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupsForBlock(t *testing.T) {
	m := MeasureAccountView(Fig1bView())
	s, err := SpeedupsForBlock(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.SpeculativeExact, 16.0/15.0) {
		t.Fatalf("exact = %v", s.SpeculativeExact)
	}
	if !almostEqual(s.Group, 16.0/9.0) {
		t.Fatalf("group = %v, want 16/9", s.Group)
	}
	if s.Speculative <= 0 || s.PerfectInfo <= 0 {
		t.Fatalf("speedups = %+v", s)
	}
	if _, err := SpeedupsForBlock(m, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestPipelineSpeedup(t *testing.T) {
	cases := []struct {
		x    int
		c    float64
		n    int
		want float64
	}{
		// Validation hidden behind execution: bound is ⌈x/n⌉.
		{100, 0.1, 8, 100.0 / 13.0},
		// Re-execution dominates: one block per c·x units — better than
		// eq. (1)'s ⌈x/n⌉ + c·x because the phases overlap across blocks.
		{100, 0.5, 8, 2},
		// No conflicts: perfect core scaling.
		{64, 0, 64, 64},
		// Fully conflicted: no worse than sequential.
		{100, 1, 8, 1},
		// Empty block.
		{0, 0.5, 8, 1},
	}
	for _, tc := range cases {
		got, err := PipelineSpeedup(tc.x, tc.c, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want) {
			t.Fatalf("PipelineSpeedup(%d, %v, %d) = %v, want %v", tc.x, tc.c, tc.n, got, tc.want)
		}
	}
	// The pipeline never loses to the non-overlapped speculative engine.
	for _, c := range []float64{0, 0.1, 0.3, 0.7, 1} {
		for _, n := range []int{2, 8, 64} {
			pipe, err := PipelineSpeedup(200, c, n)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := SpeculativeSpeedupExact(200, c, n)
			if err != nil {
				t.Fatal(err)
			}
			if pipe+1e-9 < spec {
				t.Fatalf("c=%v n=%d: pipeline %v < speculative %v", c, n, pipe, spec)
			}
		}
	}
	if _, err := PipelineSpeedup(10, 1.5, 4); err == nil {
		t.Fatal("rate out of domain accepted")
	}
	if _, err := PipelineSpeedup(10, 0.5, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestShardedSpeedup(t *testing.T) {
	// No cross-shard traffic, one shard: exactly the exact speculative
	// model (phase 2 bin runs on the single shard).
	got, err := ShardedSpeedup(100, 0.3, 0, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SpeculativeSpeedupExact(100, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("s=1 χ=0: %v, want speculative %v", got, want)
	}
	// More shards divide the bin cost: speed-up must be monotonic in s
	// when there is no cross-shard traffic.
	prev := 0.0
	for _, s := range []int{1, 2, 4, 8} {
		r, err := ShardedSpeedup(100, 0.4, 0, 8, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r < prev {
			t.Fatalf("s=%d: speed-up %v below s/2 value %v", s, r, prev)
		}
		prev = r
	}
	// A fully aborting cross-shard merge (a=1) is worse than a fully
	// commuting one (a=0).
	abortAll, err := ShardedSpeedup(100, 0.2, 0.8, 8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	commute, err := ShardedSpeedup(100, 0.2, 0.8, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if abortAll >= commute {
		t.Fatalf("a=1 speed-up %v not below a=0 %v", abortAll, commute)
	}
	// Degenerate and domain cases.
	if r, err := ShardedSpeedup(0, 0.5, 0.5, 8, 4, 1); err != nil || r != 1 {
		t.Fatalf("x=0: %v, %v", r, err)
	}
	for _, bad := range []func() (float64, error){
		func() (float64, error) { return ShardedSpeedup(10, 0.5, -0.1, 8, 4, 1) },
		func() (float64, error) { return ShardedSpeedup(10, 0.5, 1.1, 8, 4, 1) },
		func() (float64, error) { return ShardedSpeedup(10, 0.5, 0.5, 8, 0, 1) },
		func() (float64, error) { return ShardedSpeedup(10, 0.5, 0.5, 8, 4, 2) },
		func() (float64, error) { return ShardedSpeedup(10, 0.5, 0.5, 0, 4, 1) },
	} {
		if _, err := bad(); err == nil {
			t.Fatal("out-of-domain parameters accepted")
		}
	}
}

func TestShardedPipelineSpeedup(t *testing.T) {
	// The pipelined model must dominate the per-block one on every point of
	// a parameter sweep: it hides the cheaper stage and divides the merge
	// tail by the worker count.
	for _, x := range []int{10, 100, 500} {
		for _, c := range []float64{0, 0.2, 0.6} {
			for _, cross := range []float64{0, 0.5, 0.9} {
				for _, a := range []float64{0, 0.3, 1} {
					pipe, err := ShardedPipelineSpeedup(x, c, cross, 8, 4, a)
					if err != nil {
						t.Fatal(err)
					}
					block, err := ShardedSpeedup(x, c, cross, 8, 4, a)
					if err != nil {
						t.Fatal(err)
					}
					if pipe < block-1e-9 {
						t.Fatalf("x=%d c=%v χ=%v a=%v: pipelined %v below per-block %v",
							x, c, cross, a, pipe, block)
					}
					if pipe > 8+1e-9 {
						t.Fatalf("x=%d c=%v χ=%v a=%v: pipelined %v exceeds core count", x, c, cross, a, pipe)
					}
				}
			}
		}
	}
	// Conflict-free steady state saturates the cores.
	if r, err := ShardedPipelineSpeedup(800, 0, 0, 8, 4, 0); err != nil || math.Abs(r-8) > 1e-9 {
		t.Fatalf("conflict-free: %v, %v (want 8)", r, err)
	}
	// With everything aborting (χ=1, a=1) the merge term a·χ·x/n equals the
	// spread, so the pipeline still completes a block every x/n units.
	if r, err := ShardedPipelineSpeedup(800, 0, 1, 8, 4, 1); err != nil || math.Abs(r-8) > 1e-9 {
		t.Fatalf("all-abort parallel merge: %v, %v (want 8)", r, err)
	}
	// Degenerate and domain cases.
	if r, err := ShardedPipelineSpeedup(0, 0.5, 0.5, 8, 4, 1); err != nil || r != 1 {
		t.Fatalf("x=0: %v, %v", r, err)
	}
	for _, bad := range []func() (float64, error){
		func() (float64, error) { return ShardedPipelineSpeedup(10, 0.5, -0.1, 8, 4, 1) },
		func() (float64, error) { return ShardedPipelineSpeedup(10, 0.5, 1.1, 8, 4, 1) },
		func() (float64, error) { return ShardedPipelineSpeedup(10, 0.5, 0.5, 8, 0, 1) },
		func() (float64, error) { return ShardedPipelineSpeedup(10, 0.5, 0.5, 8, 4, 2) },
		func() (float64, error) { return ShardedPipelineSpeedup(10, 0.5, 0.5, 0, 4, 1) },
		func() (float64, error) { return ShardedPipelineSpeedup(10, 1.5, 0.5, 8, 4, 1) },
	} {
		if _, err := bad(); err == nil {
			t.Fatal("out-of-domain parameters accepted")
		}
	}
}

func TestAdaptiveShardedSpeedup(t *testing.T) {
	// λ = 0, μ = 0 is the static map on a dependent stream: never above the
	// key-disjoint ideal of ShardedPipelineSpeedup, and monotone in λ
	// (co-locating more of a serial cross stream cannot hurt when s > 1 and
	// migration is free).
	for _, x := range []int{10, 100, 500} {
		for _, c := range []float64{0, 0.2, 0.6} {
			for _, cross := range []float64{0, 0.5, 0.9} {
				ideal, err := ShardedPipelineSpeedup(x, c, cross, 8, 4, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				static, err := AdaptiveShardedSpeedup(x, c, cross, 8, 4, 0.5, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if static > ideal+1e-9 {
					t.Fatalf("x=%d c=%v χ=%v: dependent-stream static %v above key-disjoint ideal %v",
						x, c, cross, static, ideal)
				}
				prev := 0.0
				for _, lam := range []float64{0, 0.3, 0.6, 1} {
					r, err := AdaptiveShardedSpeedup(x, c, cross, 8, 4, 0.5, lam, 0)
					if err != nil {
						t.Fatal(err)
					}
					if r < prev-1e-9 {
						t.Fatalf("x=%d c=%v χ=%v: speed-up not monotone in locality", x, c, cross)
					}
					prev = r
				}
			}
		}
	}
	// The merge-bound regime strictly improves with locality.
	lo, err := AdaptiveShardedSpeedup(400, 0.1, 0.9, 8, 4, 1, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := AdaptiveShardedSpeedup(400, 0.1, 0.9, 8, 4, 1, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("locality 0.9 (%v) not above 0.2 (%v) in a merge-bound regime", hi, lo)
	}
	// Migration cost on a structureless workload (λ = 0) can only lose —
	// the E11 Shard Uniform control.
	free, err := AdaptiveShardedSpeedup(100, 0.1, 0.3, 8, 4, 0.3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	taxed, err := AdaptiveShardedSpeedup(100, 0.1, 0.3, 8, 4, 0.3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if taxed >= free {
		t.Fatalf("migration tax did not reduce the speed-up: %v vs %v", taxed, free)
	}
	// Degenerate and domain cases.
	if r, err := AdaptiveShardedSpeedup(0, 0.5, 0.5, 8, 4, 1, 0.5, 1); err != nil || r != 1 {
		t.Fatalf("x=0: %v, %v", r, err)
	}
	for _, bad := range []func() (float64, error){
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 0.5, 8, 4, 1, -0.1, 0) },
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 0.5, 8, 4, 1, 1.1, 0) },
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 0.5, 8, 4, 1, 0.5, -1) },
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 1.5, 8, 4, 1, 0.5, 0) },
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 0.5, 8, 0, 1, 0.5, 0) },
		func() (float64, error) { return AdaptiveShardedSpeedup(10, 0.5, 0.5, 0, 4, 1, 0.5, 0) },
	} {
		if _, err := bad(); err == nil {
			t.Fatal("out-of-domain parameters accepted")
		}
	}
}
