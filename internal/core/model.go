package core

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the paper's execution speed-up model (§V). The model
// assumes every transaction in a block costs one time unit, so the
// sequential execution time of a block with x transactions is T = x.
//
// Two families of estimates are provided:
//
//   - Single-transaction concurrency (§V-A), modelling the speculative
//     two-phase scheme of Saraph & Herlihy [17]: execute everything in
//     parallel, then re-execute the conflicted transactions sequentially.
//   - Group concurrency (§V-B), scheduling whole connected components, whose
//     sequential floor is the largest component.

// ErrModelDomain reports parameters outside the model's domain.
var ErrModelDomain = errors.New("core: speed-up model parameter out of domain")

func checkDomain(x, n int, rate float64) error {
	if x < 0 {
		return fmt.Errorf("%w: x = %d", ErrModelDomain, x)
	}
	if n < 1 {
		return fmt.Errorf("%w: n = %d", ErrModelDomain, n)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("%w: rate = %g", ErrModelDomain, rate)
	}
	return nil
}

// SpeculativeSpeedup evaluates the paper's equation (1) exactly as printed:
//
//	R = x / (⌊x/n⌋ + 1 + c·x)
//
// where x is the number of transactions, c the single-transaction conflict
// rate and n the number of cores. The first phase executes all transactions
// concurrently (⌊x/n⌋+1 time units), the second re-executes the c·x
// conflicted ones sequentially. R < 1 means parallel execution would be
// slower than sequential — the regime the paper highlights for high conflict
// rates and few cores.
func SpeculativeSpeedup(x int, c float64, n int) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if x == 0 {
		return 1, nil
	}
	tPrime := float64(x/n) + 1 + c*float64(x)
	return float64(x) / tPrime, nil
}

// SpeculativeSpeedupExact evaluates the same two-phase scheme with the exact
// first-phase duration ⌈x/n⌉ instead of the ⌊x/n⌋+1 upper bound. This is
// the refinement the paper applies in its §V-A worked examples (e.g. block
// 1000007: 5 transactions, n ≥ 5, speed-up 5/3) and describes in prose as
// "a further mild improvement ... if ⌊x/n⌋ < x/n".
func SpeculativeSpeedupExact(x int, c float64, n int) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if x == 0 {
		return 1, nil
	}
	phase1 := math.Ceil(float64(x) / float64(n))
	// The conflicted transactions are an integer count in the worked
	// examples; keep the rate-based form for continuity with eq. (1).
	tPrime := phase1 + c*float64(x)
	return float64(x) / tPrime, nil
}

// PerfectInfoSpeedup evaluates the paper's perfect-information variant of
// equation (1): with a priori knowledge of the conflict set (obtained by a
// pre-processing step costing K time units), only the (1−c)·x unconflicted
// transactions run in the parallel phase and nothing is executed twice:
//
//	R = x / (K + ⌊(1−c)·x/n⌋ + 1 + c·x)
func PerfectInfoSpeedup(x int, c float64, n int, k float64) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("%w: K = %g", ErrModelDomain, k)
	}
	if x == 0 {
		return 1, nil
	}
	parallel := math.Floor((1-c)*float64(x)/float64(n)) + 1
	tPrime := k + parallel + c*float64(x)
	return float64(x) / tPrime, nil
}

// GroupSpeedup evaluates the paper's equation (2): the maximum potential
// speed-up from scheduling whole connected components on n cores, where l is
// the group conflict rate (relative LCC size):
//
//	R = min(n, 1/l)
//
// With unbounded cores each component gets its own core and the makespan is
// the LCC; with n cores the speed-up cannot exceed n.
func GroupSpeedup(n int, l float64) (float64, error) {
	if err := checkDomain(0, n, l); err != nil {
		return 0, err
	}
	if l == 0 {
		// No conflicts at all: bounded only by the core count.
		return float64(n), nil
	}
	return math.Min(float64(n), 1/l), nil
}

// GroupSpeedupWithCost evaluates the refined group estimate including the
// TDG-construction cost K (paper §V-B):
//
//	R = min( x/(x/n + K), x/(L + K) )
//
// where L = l·x is the absolute LCC size. The paper prints x/l in the second
// denominator; dimensional analysis (and the surrounding definition of the
// sequential floor as the LCC) indicates the intended quantity is the
// absolute LCC size L, since x/l ≥ x would be slower than sequential. See
// DESIGN.md §1.
func GroupSpeedupWithCost(x int, l float64, n int, k float64) (float64, error) {
	if err := checkDomain(x, n, l); err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("%w: K = %g", ErrModelDomain, k)
	}
	if x == 0 {
		return 1, nil
	}
	bigL := l * float64(x)
	if bigL < 1 {
		bigL = 1 // at least one transaction must execute
	}
	coreBound := float64(x) / (float64(x)/float64(n) + k)
	lccBound := float64(x) / (bigL + k)
	return math.Min(coreBound, lccBound), nil
}

// PipelineSpeedup models the steady-state throughput of the two-phase
// pipelined engine (internal/exec.Pipeline): per block, phase 1 executes
// all x transactions speculatively in ⌈x/n⌉ units on n cores and phase 2
// re-executes the c·x conflicted ones sequentially; with phase 1 of block
// b+1 overlapping phase 2 of block b, a long chain completes one block
// every max(⌈x/n⌉, c·x) units, so
//
//	R = x / max(⌈x/n⌉, c·x)
//
// Compare with equation (1): the speculative engine pays ⌈x/n⌉ + c·x per
// block because its two phases cannot overlap across blocks. The pipeline
// hides the cheaper phase entirely, which is why its speed-up is not
// bounded by a single global commit lock.
func PipelineSpeedup(x int, c float64, n int) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if x == 0 {
		return 1, nil
	}
	perBlock := math.Ceil(float64(x) / float64(n))
	if reexec := c * float64(x); reexec > perBlock {
		perBlock = reexec
	}
	return float64(x) / perBlock, nil
}

// ShardedSpeedup models the sharded engine (internal/exec.Sharded) with s
// committees on n cores: phase 1 executes all x transactions across the
// per-shard pipelines in ⌈x/n⌉ units; the shard-local bins re-execute in
// parallel across shards, costing c·(1−χ)·x/s units on the busiest shard
// (c is the single-transaction conflict rate, χ the cross-shard fraction);
// and the deterministic cross-shard merge re-executes its aborted share
// a·χ·x sequentially:
//
//	R = x / (⌈x/n⌉ + c·(1−χ)·x/s + a·χ·x)
//
// With a = 1 (every cross-shard transaction re-executes — the key-level
// worst case on a hot shard) the merge dominates exactly as E9 measures;
// with a = 0 (all staged results validate, the commutative-delta limit)
// sharding divides the bin cost by s and the model approaches the
// speculative engine with an s-way parallel phase 2.
func ShardedSpeedup(x int, c, cross float64, n, s int, abortRate float64) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if cross < 0 || cross > 1 {
		return 0, fmt.Errorf("%w: cross = %g", ErrModelDomain, cross)
	}
	if abortRate < 0 || abortRate > 1 {
		return 0, fmt.Errorf("%w: abort rate = %g", ErrModelDomain, abortRate)
	}
	if s < 1 {
		return 0, fmt.Errorf("%w: shards = %d", ErrModelDomain, s)
	}
	if x == 0 {
		return 1, nil
	}
	tPrime := math.Ceil(float64(x)/float64(n)) +
		c*(1-cross)*float64(x)/float64(s) +
		abortRate*cross*float64(x)
	return float64(x) / tPrime, nil
}

// ShardedPipelineSpeedup models the pipelined sharded engine
// (internal/exec.Sharded.ExecuteChain) with s committees on n cores: the
// per-shard speculative phase 1 of block b+1 overlaps the cross-shard
// commit of block b (the two-machine flow shop of the mvstore pipeline),
// and the merge re-executes its aborted share in parallel waves of
// key-disjoint transactions instead of one-by-one. In steady state a long
// chain completes one block every
//
//	max( ⌈x/n⌉ , c·(1−χ)·x/s + a·χ·x/n )
//
// units — the speculative spread hides behind the ordered stage or vice
// versa, and the merge term a·χ·x is divided by the worker count because
// the waves run its re-executions n at a time (fully dependent aborts
// degenerate to waves of one, which the per-block ShardedSpeedup models).
// Compare ShardedSpeedup, which pays ⌈x/n⌉ + c·(1−χ)·x/s + a·χ·x per block:
// the pipeline hides the cheaper stage entirely and the parallel merge
// divides the sequential tail E9 measures by up to n.
func ShardedPipelineSpeedup(x int, c, cross float64, n, s int, abortRate float64) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if cross < 0 || cross > 1 {
		return 0, fmt.Errorf("%w: cross = %g", ErrModelDomain, cross)
	}
	if abortRate < 0 || abortRate > 1 {
		return 0, fmt.Errorf("%w: abort rate = %g", ErrModelDomain, abortRate)
	}
	if s < 1 {
		return 0, fmt.Errorf("%w: shards = %d", ErrModelDomain, s)
	}
	if x == 0 {
		return 1, nil
	}
	spread := math.Ceil(float64(x) / float64(n))
	ordered := c*(1-cross)*float64(x)/float64(s) +
		abortRate*cross*float64(x)/float64(n)
	perBlock := spread
	if ordered > perBlock {
		perBlock = ordered
	}
	return float64(x) / perBlock, nil
}

// AdaptiveShardedSpeedup models the pipelined sharded engine under an
// adaptive shard assignment (internal/exec.Sharded.ExecuteChain with a
// heat.AdaptiveMap), in the *dependent-stream* regime the E11 workloads
// live in: the aborted cross-shard transactions are same-community chains
// (a sweep bot's nonce sequence into its collector), so the merge's
// re-execution waves degenerate to width one and the merge tail is serial
// — a·χ·x units, not the a·χ·x/n of ShardedPipelineSpeedup's key-disjoint
// ideal. A learned placement co-locates each community with its
// counterparty, converting the locality share λ of that serial cross
// stream into intra-shard bin work, which still serialises *within* its
// community but runs in parallel *across* the s shards the communities
// were spread over; the boundary migrations amortise to μ time units per
// block. The steady state is
//
//	R = x / ( max( ⌈x/n⌉ , (c·(1−χ)·x + λ·a·χ·x)/s + (1−λ)·a·χ·x ) + μ )
//
// λ = 0, μ = 0 is the static map on a dependent stream (the E11 Skew/Drift
// static columns); λ near 1 divides the whole conflict tail by s (the
// adaptive Skew rows). The migration term is why rebalancing a workload
// with no persistent structure (λ ≈ 0 but μ > 0, the E11 Shard Uniform
// control) can only lose.
func AdaptiveShardedSpeedup(x int, c, cross float64, n, s int, abortRate, locality, migPerBlock float64) (float64, error) {
	if err := checkDomain(x, n, c); err != nil {
		return 0, err
	}
	if cross < 0 || cross > 1 {
		return 0, fmt.Errorf("%w: cross = %g", ErrModelDomain, cross)
	}
	if abortRate < 0 || abortRate > 1 {
		return 0, fmt.Errorf("%w: abort rate = %g", ErrModelDomain, abortRate)
	}
	if locality < 0 || locality > 1 {
		return 0, fmt.Errorf("%w: locality = %g", ErrModelDomain, locality)
	}
	if migPerBlock < 0 {
		return 0, fmt.Errorf("%w: migration cost = %g", ErrModelDomain, migPerBlock)
	}
	if s < 1 {
		return 0, fmt.Errorf("%w: shards = %d", ErrModelDomain, s)
	}
	if x == 0 {
		return 1, nil
	}
	spread := math.Ceil(float64(x) / float64(n))
	serialCross := abortRate * cross * float64(x)
	ordered := (c*(1-cross)*float64(x)+locality*serialCross)/float64(s) +
		(1-locality)*serialCross
	perBlock := spread
	if ordered > perBlock {
		perBlock = ordered
	}
	return float64(x) / (perBlock + migPerBlock), nil
}

// BlockSpeedups evaluates all model variants for one measured block.
type BlockSpeedups struct {
	// Speculative is equation (1) with the block's single-transaction
	// conflict rate.
	Speculative float64
	// SpeculativeExact is the ⌈x/n⌉ refinement used in the worked
	// examples.
	SpeculativeExact float64
	// PerfectInfo is the perfect-information variant with K = 0.
	PerfectInfo float64
	// Group is equation (2) with the block's group conflict rate.
	Group float64
}

// SpeedupsForBlock applies the full model to one block's metrics on n cores.
func SpeedupsForBlock(m Metrics, n int) (BlockSpeedups, error) {
	var out BlockSpeedups
	var err error
	if out.Speculative, err = SpeculativeSpeedup(m.NumTxs, m.SingleRate(), n); err != nil {
		return out, err
	}
	if out.SpeculativeExact, err = SpeculativeSpeedupExact(m.NumTxs, m.SingleRate(), n); err != nil {
		return out, err
	}
	if out.PerfectInfo, err = PerfectInfoSpeedup(m.NumTxs, m.SingleRate(), n, 0); err != nil {
		return out, err
	}
	if out.Group, err = GroupSpeedup(n, m.GroupRate()); err != nil {
		return out, err
	}
	return out, nil
}
