package core

import (
	"txconcur/internal/types"
)

// This file analyses the workload through the lens of Zilliqa-style network
// sharding (paper §II-B): transactions are assigned to committees by their
// *sender* address, each committee processes its share independently, and —
// as the paper highlights as a major limitation — "it does not support
// cross-shard transactions — ones that touch multiple committees".
//
// Two quantities follow. First, the cross-shard fraction: transactions
// whose receiver (or any internal-call target) lives on another shard;
// these are exactly the ones Zilliqa's design cannot process without
// additional machinery. Second, the per-shard conflict rates: sharding
// partitions each block's TDG, so the intra-shard concurrency can differ
// from the global one.

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// ShardOf maps an address to one of n shards, as Zilliqa assigns accounts
// to committees. The full address is mixed through FNV-1a before the
// reduction: taking the leading 8 bytes directly skews the assignment for
// structured or low-entropy addresses (e.g. counter-derived test addresses
// whose leading bytes are constant, which would all land on one shard), and
// plain truncation interacts badly with non-power-of-two n. This is the
// baseline assignment behind every ShardMap (shardmap.go): StaticShardMap
// is exactly this function, and the override/adaptive maps fall through to
// it for every address they do not explicitly place.
func ShardOf(a types.Address, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for _, b := range a {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return int(h % uint64(n))
}

// ShardingReport summarises a sharded view of one block (or window).
type ShardingReport struct {
	// Shards is the committee count n.
	Shards int
	// Txs is the number of regular transactions.
	Txs int
	// CrossShard is the number of transactions whose receiver or any
	// internal-call endpoint is on a different shard than the sender.
	CrossShard int
	// PerShard holds the metrics of each shard's intra-shard sub-block
	// (cross-shard transactions excluded, as Zilliqa cannot process them).
	PerShard []Metrics
}

// CrossRate returns the cross-shard transaction fraction.
func (r ShardingReport) CrossRate() float64 {
	if r.Txs == 0 {
		return 0
	}
	return float64(r.CrossShard) / float64(r.Txs)
}

// IntraShardMetrics aggregates the per-shard metrics into one (weighted by
// transaction count, as the paper weights blocks).
func (r ShardingReport) IntraShardMetrics() Metrics {
	var agg Metrics
	for _, m := range r.PerShard {
		agg.NumTxs += m.NumTxs
		agg.NumInternal += m.NumInternal
		agg.Conflicted += m.Conflicted
		if m.LCC > agg.LCC {
			agg.LCC = m.LCC
		}
		agg.Components += m.Components
		agg.GasUsed += m.GasUsed
		agg.ConflictedGas += m.ConflictedGas
		if m.LCCGas > agg.LCCGas {
			agg.LCCGas = m.LCCGas
		}
	}
	return agg
}

// ShardAccountView assigns the view's transactions to n sender-based shards
// and measures each shard's intra-shard sub-block. A transaction counts as
// cross-shard when its receiver, or any endpoint of one of its internal
// transactions, is on a different shard than its sender; internal edges are
// attributed to transactions by matching the internal transaction's
// position (internal calls belong to the preceding regular transaction in
// view order, as ViewFromReceipts emits them).
func ShardAccountView(v *AccountBlockView, receiptsInternal [][]AccountEdge, n int) ShardingReport {
	rep := ShardingReport{Shards: n, Txs: len(v.Regular), PerShard: make([]Metrics, n)}
	shardViews := make([]*AccountBlockView, n)
	for i := range shardViews {
		shardViews[i] = &AccountBlockView{}
	}
	for i, e := range v.Regular {
		shard := ShardOf(e.From, n)
		cross := ShardOf(e.To, n) != shard
		var internal []AccountEdge
		if i < len(receiptsInternal) {
			internal = receiptsInternal[i]
			for _, ie := range internal {
				if ShardOf(ie.From, n) != shard || ShardOf(ie.To, n) != shard {
					cross = true
				}
			}
		}
		if cross {
			rep.CrossShard++
			continue
		}
		sv := shardViews[shard]
		sv.Regular = append(sv.Regular, e)
		sv.Internal = append(sv.Internal, internal...)
		if i < len(v.GasUsed) {
			sv.GasUsed = append(sv.GasUsed, v.GasUsed[i])
		}
	}
	for s, sv := range shardViews {
		if len(sv.GasUsed) != len(sv.Regular) {
			sv.GasUsed = nil
		}
		rep.PerShard[s] = MeasureAccountView(sv)
	}
	return rep
}

// InternalByTx regroups a flat view's internal edges per regular
// transaction using the receipts that produced them.
type InternalByTx = [][]AccountEdge

// ComponentCensus buckets a TDG's component sizes the way the paper's
// Figure 1 discussion counts them ("4 connected components, namely 3 of
// size 1 and 1 of size 2"): singletons, small (2–5), medium (6–20) and
// large (>20) components, with the share of transactions in each class.
type ComponentCensus struct {
	Singleton, Small, Medium, Large             int
	TxsSingleton, TxsSmall, TxsMedium, TxsLarge int
}

// Census computes the component census of a TDG.
func (t *TDG) Census() ComponentCensus {
	var c ComponentCensus
	for _, size := range t.ComponentTxCount {
		switch {
		case size == 0:
		case size == 1:
			c.Singleton++
			c.TxsSingleton += size
		case size <= 5:
			c.Small++
			c.TxsSmall += size
		case size <= 20:
			c.Medium++
			c.TxsMedium += size
		default:
			c.Large++
			c.TxsLarge += size
		}
	}
	return c
}

// Add accumulates another census (for whole-history aggregation).
func (c *ComponentCensus) Add(o ComponentCensus) {
	c.Singleton += o.Singleton
	c.Small += o.Small
	c.Medium += o.Medium
	c.Large += o.Large
	c.TxsSingleton += o.TxsSingleton
	c.TxsSmall += o.TxsSmall
	c.TxsMedium += o.TxsMedium
	c.TxsLarge += o.TxsLarge
}
