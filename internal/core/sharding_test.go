package core

import (
	"testing"

	"txconcur/internal/types"
)

func TestShardOf(t *testing.T) {
	a := addr("shard", 1)
	if ShardOf(a, 1) != 0 || ShardOf(a, 0) != 0 {
		t.Fatal("single shard must map to 0")
	}
	// Deterministic and in range.
	for n := 2; n <= 16; n *= 2 {
		s1 := ShardOf(a, n)
		s2 := ShardOf(a, n)
		if s1 != s2 {
			t.Fatal("not deterministic")
		}
		if s1 < 0 || s1 >= n {
			t.Fatalf("shard %d out of range for n=%d", s1, n)
		}
	}
	// Roughly uniform over many addresses.
	const n = 4
	counts := make([]int, n)
	for i := uint64(0); i < 4000; i++ {
		counts[ShardOf(addr("uniform", i), n)]++
	}
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("shard %d has %d of 4000 addresses (poor balance)", s, c)
		}
	}
}

// TestShardOfStructuredAddresses is a regression test for the leading-bits
// assignment bug: ShardOf used to reduce uint64(first 8 bytes) % n, so any
// address family with constant leading bytes — counter-style addresses with
// the index in the low bytes, zero-padded fixture addresses — collapsed
// onto a single shard, and non-power-of-two n inherited whatever bias the
// leading bytes carried. Hashing the full address must spread them.
func TestShardOfStructuredAddresses(t *testing.T) {
	families := map[string]func(i uint64) types.Address{
		// Counter in the trailing bytes, leading 12 bytes all zero: the old
		// code mapped every one of these to shard 0.
		"low-entropy-tail": func(i uint64) types.Address {
			var a types.Address
			a[19] = byte(i)
			a[18] = byte(i >> 8)
			a[17] = byte(i >> 16)
			return a
		},
		// Shared prefix with a small suffix counter (vanity/contract-factory
		// style).
		"shared-prefix": func(i uint64) types.Address {
			a := addr("factory", 7)
			a[19] = byte(i)
			a[18] = byte(i >> 8)
			return a
		},
	}
	for name, mk := range families {
		for _, n := range []int{2, 3, 4, 5, 8, 16} {
			counts := make([]int, n)
			const total = 3000
			for i := uint64(0); i < total; i++ {
				counts[ShardOf(mk(i), n)]++
			}
			want := total / n
			for s, c := range counts {
				if c < want/2 || c > want*2 {
					t.Errorf("%s n=%d: shard %d has %d of %d addresses (want ~%d)",
						name, n, s, c, total, want)
				}
			}
		}
	}
}

// TestShardOfChainsimGenerators checks shard balance over the address
// families the chainsim generators actually mint (types.AddressFromUint64
// with role-tagged domains), including non-power-of-two shard counts.
func TestShardOfChainsimGenerators(t *testing.T) {
	for _, tag := range []string{"user/Ethereum", "exchange/Zilliqa", "contract/Shard Cross-Heavy", "hot/Shard Hot-Shard"} {
		for _, n := range []int{2, 3, 4, 7, 8} {
			counts := make([]int, n)
			const total = 2100
			for i := uint64(0); i < total; i++ {
				counts[ShardOf(types.AddressFromUint64(tag, i), n)]++
			}
			want := total / n
			for s, c := range counts {
				if c < want*2/3 || c > want*3/2 {
					t.Errorf("tag %q n=%d: shard %d has %d of %d (want ~%d)", tag, n, s, c, total, want)
				}
			}
		}
	}
}

// shardFixture builds a view with controlled shard placement: it searches
// for addresses landing on the desired shards.
func addrOnShard(t *testing.T, tag string, want, n int) types.Address {
	t.Helper()
	for i := uint64(0); i < 10_000; i++ {
		a := addr(tag, i)
		if ShardOf(a, n) == want {
			return a
		}
	}
	t.Fatalf("no address found on shard %d/%d", want, n)
	return types.Address{}
}

func TestShardAccountView(t *testing.T) {
	const n = 2
	s0a := addrOnShard(t, "s0a", 0, n)
	s0b := addrOnShard(t, "s0b", 0, n)
	s0c := addrOnShard(t, "s0c", 0, n)
	s1a := addrOnShard(t, "s1a", 1, n)
	s1b := addrOnShard(t, "s1b", 1, n)

	v := &AccountBlockView{
		Regular: []AccountEdge{
			{From: s0a, To: s0b}, // intra shard 0
			{From: s0c, To: s0b}, // intra shard 0, conflicts with tx 0 via s0b
			{From: s1a, To: s1b}, // intra shard 1
			{From: s0a, To: s1b}, // cross-shard
		},
	}
	rep := ShardAccountView(v, nil, n)
	if rep.Txs != 4 {
		t.Fatalf("txs = %d", rep.Txs)
	}
	if rep.CrossShard != 1 {
		t.Fatalf("cross = %d, want 1", rep.CrossShard)
	}
	if rep.CrossRate() != 0.25 {
		t.Fatalf("cross rate = %v", rep.CrossRate())
	}
	intra := rep.IntraShardMetrics()
	if intra.NumTxs != 3 {
		t.Fatalf("intra txs = %d", intra.NumTxs)
	}
	// Shard 0: two txs sharing s0b -> both conflicted; shard 1: one
	// unconflicted tx.
	if intra.Conflicted != 2 {
		t.Fatalf("intra conflicted = %d, want 2", intra.Conflicted)
	}
	if intra.LCC != 2 {
		t.Fatalf("intra LCC = %d, want 2", intra.LCC)
	}
}

func TestShardAccountViewInternalCross(t *testing.T) {
	const n = 2
	sender := addrOnShard(t, "ic-s", 0, n)
	contract := addrOnShard(t, "ic-c", 0, n)
	token := addrOnShard(t, "ic-t", 1, n)

	v := &AccountBlockView{
		Regular: []AccountEdge{{From: sender, To: contract}},
	}
	// The contract internally calls a token on the other shard: the
	// transaction is cross-shard even though the top-level edge is local.
	internal := [][]AccountEdge{{{From: contract, To: token}}}
	rep := ShardAccountView(v, internal, n)
	if rep.CrossShard != 1 {
		t.Fatalf("internal cross-shard call not detected: %+v", rep)
	}
	// Without the internal edge it is intra-shard.
	rep = ShardAccountView(v, nil, n)
	if rep.CrossShard != 0 {
		t.Fatalf("false cross-shard: %+v", rep)
	}
}

func TestShardAccountViewEmpty(t *testing.T) {
	rep := ShardAccountView(&AccountBlockView{}, nil, 4)
	if rep.CrossRate() != 0 || rep.Txs != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if m := rep.IntraShardMetrics(); m.NumTxs != 0 {
		t.Fatalf("empty intra metrics = %+v", m)
	}
}

func TestCensus(t *testing.T) {
	// Figure 1a: 3 singletons + 1 component of size 2.
	tdg := BuildAccount(Fig1aView())
	c := tdg.Census()
	if c.Singleton != 3 || c.Small != 1 || c.Medium != 0 || c.Large != 0 {
		t.Fatalf("fig1a census = %+v", c)
	}
	if c.TxsSingleton != 3 || c.TxsSmall != 2 {
		t.Fatalf("fig1a tx census = %+v", c)
	}
	// Figure 1b: components of sizes 1,9,3,2,1 -> 2 singletons, 2 small
	// (3 and 2), 1 medium (9).
	tdg = BuildAccount(Fig1bView())
	c = tdg.Census()
	if c.Singleton != 2 || c.Small != 2 || c.Medium != 1 || c.Large != 0 {
		t.Fatalf("fig1b census = %+v", c)
	}
	if c.TxsMedium != 9 {
		t.Fatalf("fig1b medium txs = %d", c.TxsMedium)
	}
	// Accumulation.
	var total ComponentCensus
	total.Add(BuildAccount(Fig1aView()).Census())
	total.Add(c)
	if total.Singleton != 5 || total.TxsMedium != 9 {
		t.Fatalf("accumulated census = %+v", total)
	}
}
