package core

import (
	"txconcur/internal/account"
	"txconcur/internal/utxo"
)

// Metrics are the paper's per-block concurrency measurements (§III-A3).
type Metrics struct {
	// NumTxs is the number of regular (non-coinbase) transactions — the
	// denominator of both conflict rates.
	NumTxs int
	// NumInternal is the number of internal transactions (account model).
	NumInternal int
	// NumInputs is the number of transaction inputs (UTXO model).
	NumInputs int
	// Conflicted is the number of transactions sharing a component with at
	// least one other transaction.
	Conflicted int
	// LCC is the absolute size of the largest connected component,
	// measured in regular transactions.
	LCC int
	// Components is the number of components containing transactions.
	Components int
	// GasUsed is the block's total gas consumption (account model), the
	// weight of the paper's gas-weighted series.
	GasUsed uint64
	// ConflictedGas is the total gas of the conflicted transactions: the
	// numerator of the gas-weighted single-transaction conflict rate. The
	// paper's Ethereum query passes per-transaction gas costs into the UDF
	// for exactly this purpose (§III-C).
	ConflictedGas uint64
	// LCCGas is the largest per-component gas sum: the gas-weighted
	// analogue of the absolute LCC size (the sequential floor measured in
	// execution cost rather than transaction count).
	LCCGas uint64
}

// SingleRate returns the single-transaction conflict rate: conflicted
// transactions over total transactions. Zero for an empty block.
func (m Metrics) SingleRate() float64 {
	if m.NumTxs == 0 {
		return 0
	}
	return float64(m.Conflicted) / float64(m.NumTxs)
}

// GroupRate returns the group conflict rate: the relative LCC size. Zero
// for an empty block.
func (m Metrics) GroupRate() float64 {
	if m.NumTxs == 0 {
		return 0
	}
	return float64(m.LCC) / float64(m.NumTxs)
}

// SingleRateGas returns the gas-weighted single-transaction conflict rate:
// the share of the block's gas consumed by conflicted transactions.
func (m Metrics) SingleRateGas() float64 {
	if m.GasUsed == 0 {
		return 0
	}
	return float64(m.ConflictedGas) / float64(m.GasUsed)
}

// GroupRateGas returns the gas-weighted group conflict rate: the share of
// the block's gas in the heaviest connected component.
func (m Metrics) GroupRateGas() float64 {
	if m.GasUsed == 0 {
		return 0
	}
	return float64(m.LCCGas) / float64(m.GasUsed)
}

// FromTDG reduces a TDG to its metrics.
func FromTDG(t *TDG) Metrics {
	return Metrics{
		NumTxs:      t.NumTxs,
		NumInternal: t.NumInternal,
		NumInputs:   t.NumInputs,
		Conflicted:  t.Conflicted(),
		LCC:         t.LCCTxs(),
		Components:  t.NumComponents(),
	}
}

// MeasureUTXOBlock computes the metrics of a UTXO block.
func MeasureUTXOBlock(b *utxo.Block) Metrics {
	return FromTDG(BuildUTXO(b))
}

// MeasureAccountBlock computes the metrics of an executed account block.
func MeasureAccountBlock(b *account.Block, receipts []*account.Receipt) Metrics {
	return MeasureAccountView(ViewFromReceipts(b, receipts))
}

// MeasureAccountView computes the metrics of an account block view (used
// for fixture blocks and for the approximate-TDG extension).
func MeasureAccountView(v *AccountBlockView) Metrics {
	tdg := BuildAccount(v)
	m := FromTDG(tdg)
	m.GasUsed, m.ConflictedGas, m.LCCGas = tdg.GasMetrics(v.GasUsed)
	return m
}

// MeasureAccountViewRefined computes the metrics of an account block view
// under the operation-level TDG (BuildAccountRefined): commutative
// delta–delta edges do not count as conflicts.
func MeasureAccountViewRefined(v *AccountBlockView) Metrics {
	tdg := BuildAccountRefined(v)
	m := FromTDG(tdg)
	m.GasUsed, m.ConflictedGas, m.LCCGas = tdg.GasMetrics(v.GasUsed)
	return m
}

// LongestSpendChain returns the length (in transactions) of the longest
// intra-block spend chain of a UTXO block: the longest path in the DAG whose
// edges connect a transaction to one spending its output within the block.
// The paper's Figure 6 shows such a chain of 18 transactions in Bitcoin
// block 500000; chains force fully sequential execution.
func LongestSpendChain(b *utxo.Block) int {
	regular := make([]*utxo.Transaction, 0, len(b.Txs))
	index := make(map[[32]byte]int, len(b.Txs))
	for _, tx := range b.Txs {
		if tx.IsCoinbase() {
			continue
		}
		index[tx.ID()] = len(regular)
		regular = append(regular, tx)
	}
	if len(regular) == 0 {
		return 0
	}
	// Transactions appear after everything they spend (block validity), so
	// a single pass in block order computes the longest chain ending at
	// each transaction.
	depth := make([]int, len(regular))
	best := 1
	for i, tx := range regular {
		depth[i] = 1
		for _, in := range tx.Inputs {
			if j, ok := index[in.Prev.TxID]; ok && j < i && depth[j]+1 > depth[i] {
				depth[i] = depth[j] + 1
			}
		}
		if depth[i] > best {
			best = depth[i]
		}
	}
	return best
}
