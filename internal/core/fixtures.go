package core

import "txconcur/internal/types"

// This file reconstructs the paper's Figure 1 worked examples as account
// block views. They serve as executable ground truth: the paper publishes
// their exact metrics (block 1000007: single-transaction and group conflict
// rates both 40%; block 1000124: 87.5% and 56.25%), and the tests, the
// benchmark harness and the quickstart example all recompute them.

func fig1Addr(tag string, i uint64) types.Address { return types.AddressFromUint64(tag, i) }

// Fig1aView reconstructs Figure 1a (Ethereum block 1000007): five regular
// transactions, of which transactions 3 and 4 share the sender 0x2a6
// (the DwarfPool mining pool). The coinbase is ignored per §III-A1.
func Fig1aView() *AccountBlockView {
	sender := func(i uint64) types.Address { return fig1Addr("fig1a-s", i) }
	recv := func(i uint64) types.Address { return fig1Addr("fig1a-r", i) }
	dwarfPool := fig1Addr("fig1a", 0x2a6)
	return &AccountBlockView{
		Regular: []AccountEdge{
			{From: sender(0), To: recv(0)}, // 0xeb3 -> 0x828
			{From: sender(1), To: recv(1)}, // 0x529 -> 0x08a
			{From: sender(2), To: recv(2)}, // 0x125 -> 0xfbb
			{From: dwarfPool, To: recv(3)}, // 0x2a6 -> 0x24b
			{From: dwarfPool, To: recv(4)}, // 0x2a6 -> 0xc70
		},
	}
}

// Fig1bView reconstructs Figure 1b (Ethereum block 1000124): sixteen
// regular transactions (indices 0–15) and eighteen internal transactions.
// Transactions 1–9 pay the same exchange address (Poloniex, 0x32b); 10–12
// call a contract chain ending at the ElcoinDb contract (0x276); 13–14
// share a sender (DwarfPool); 0 and 15 are isolated.
func Fig1bView() *AccountBlockView {
	sender := func(i uint64) types.Address { return fig1Addr("fig1b-s", i) }
	recv := func(i uint64) types.Address { return fig1Addr("fig1b-r", i) }
	poloniex := fig1Addr("fig1b", 0x32b)
	contractA := fig1Addr("fig1b", 0x9af) // unverified contract receiving 10-12
	contractB := fig1Addr("fig1b", 0x115) // second unverified contract
	elcoinDb := fig1Addr("fig1b", 0x276)  // verified ElcoinDb contract
	dwarfPool := fig1Addr("fig1b", 0x2a6)

	v := &AccountBlockView{}
	// Transaction 0: isolated.
	v.Regular = append(v.Regular, AccountEdge{From: sender(0), To: recv(0)})
	// Transactions 1-9: distinct senders -> Poloniex.
	for i := uint64(1); i <= 9; i++ {
		v.Regular = append(v.Regular, AccountEdge{From: sender(i), To: poloniex})
	}
	// Transactions 10-12: distinct senders -> contract A.
	for i := uint64(10); i <= 12; i++ {
		v.Regular = append(v.Regular, AccountEdge{From: sender(i), To: contractA})
	}
	// Transactions 13-14: DwarfPool -> distinct receivers.
	v.Regular = append(v.Regular,
		AccountEdge{From: dwarfPool, To: recv(13)},
		AccountEdge{From: dwarfPool, To: recv(14)},
	)
	// Transaction 15: isolated.
	v.Regular = append(v.Regular, AccountEdge{From: sender(15), To: recv(15)})

	// Eighteen internal transactions: each of 10-12 triggers contractA ->
	// contractB -> ElcoinDb, and ElcoinDb touches twelve further addresses
	// (the figure's trailing "⋯").
	for i := 0; i < 3; i++ {
		v.Internal = append(v.Internal,
			AccountEdge{From: contractA, To: contractB},
			AccountEdge{From: contractB, To: elcoinDb},
		)
	}
	for i := uint64(0); i < 12; i++ {
		v.Internal = append(v.Internal, AccountEdge{From: elcoinDb, To: fig1Addr("fig1b-leaf", i)})
	}
	return v
}
