package core

import (
	"math/rand"
	"testing"

	"txconcur/internal/utxo"
)

func TestBuildUTXOWindowMergesCrossBlockSpends(t *testing.T) {
	// Block 1: tx A spends an external output. Block 2: tx B spends A's
	// output. Per-block analysis sees no conflicts; the 2-block window
	// sees one component of size 2.
	rng := rand.New(rand.NewSource(1))
	coinbase := func() *utxo.Transaction {
		return utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	}
	txA := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: utxo.Outpoint{TxID: randHash(rng)}}},
		[]utxo.TxOut{{Value: 10}},
	)
	txB := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: txA.Outpoint(0)}},
		[]utxo.TxOut{{Value: 10}},
	)
	b1 := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{coinbase(), txA}}
	b2 := &utxo.Block{Height: 2, Txs: []*utxo.Transaction{coinbase(), txB}}

	if m := MeasureUTXOBlock(b1); m.Conflicted != 0 {
		t.Fatalf("block 1 alone: %+v", m)
	}
	if m := MeasureUTXOBlock(b2); m.Conflicted != 0 {
		t.Fatalf("block 2 alone: %+v", m)
	}
	win := FromTDG(BuildUTXOWindow([]*utxo.Block{b1, b2}))
	if win.NumTxs != 2 || win.Conflicted != 2 || win.LCC != 2 {
		t.Fatalf("window metrics = %+v, want 2 conflicted in one component", win)
	}
}

func TestBuildUTXOWindowSingleBlockMatchesBuildUTXO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spends := make([]int, 30)
	for i := range spends {
		if i > 0 && rng.Float64() < 0.4 {
			spends[i] = rng.Intn(i)
		} else {
			spends[i] = -1
		}
	}
	b := makeUTXOBlock(t, spends)
	direct := FromTDG(BuildUTXO(b))
	window := FromTDG(BuildUTXOWindow([]*utxo.Block{b}))
	if direct.Conflicted != window.Conflicted || direct.LCC != window.LCC || direct.NumTxs != window.NumTxs {
		t.Fatalf("single-block window %+v != direct %+v", window, direct)
	}
}

func TestMergeAccountViews(t *testing.T) {
	a1 := addr("ib", 1)
	exch := addr("ib", 9)
	// Two blocks whose only link is a shared exchange address.
	v1 := &AccountBlockView{
		Regular: []AccountEdge{{From: a1, To: exch}},
		GasUsed: []uint64{21000},
	}
	v2 := &AccountBlockView{
		Regular: []AccountEdge{{From: addr("ib", 2), To: exch}},
		GasUsed: []uint64{30000},
	}
	merged := MergeAccountViews(v1, v2)
	if len(merged.Regular) != 2 || len(merged.GasUsed) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	m := MeasureAccountView(merged)
	if m.Conflicted != 2 || m.LCC != 2 {
		t.Fatalf("cross-block exchange sharing not detected: %+v", m)
	}
	if m.GasUsed != 51000 {
		t.Fatalf("gas = %d", m.GasUsed)
	}
	// Per-block, both are unconflicted.
	if m1 := MeasureAccountView(v1); m1.Conflicted != 0 {
		t.Fatalf("v1 alone: %+v", m1)
	}
}

func TestMergeAccountViewsDropsPartialGas(t *testing.T) {
	v1 := &AccountBlockView{Regular: []AccountEdge{{From: addr("pg", 1), To: addr("pg", 2)}}, GasUsed: []uint64{21000}}
	v2 := &AccountBlockView{Regular: []AccountEdge{{From: addr("pg", 3), To: addr("pg", 4)}}}
	merged := MergeAccountViews(v1, v2)
	if merged.GasUsed != nil {
		t.Fatal("partial gas must not be merged (misaligned weighting)")
	}
}

func TestWindowMetrics(t *testing.T) {
	views := make([]*AccountBlockView, 5)
	for i := range views {
		views[i] = &AccountBlockView{
			Regular: []AccountEdge{
				{From: addr("wm-s", uint64(i)), To: addr("wm-r", uint64(i))},
				{From: addr("wm-s", uint64(i)), To: addr("wm-r", uint64(100+i))},
			},
		}
	}
	// Window 1: five windows of 2 txs each.
	ms := WindowMetrics(views, 1)
	if len(ms) != 5 {
		t.Fatalf("windows = %d", len(ms))
	}
	for _, m := range ms {
		if m.NumTxs != 2 || m.Conflicted != 2 {
			t.Fatalf("per-block metrics = %+v", m)
		}
	}
	// Window 2: three windows (2+2, 2+2, 1 block). Senders differ across
	// blocks, so windows do not merge further.
	ms = WindowMetrics(views, 2)
	if len(ms) != 3 {
		t.Fatalf("windows = %d", len(ms))
	}
	if ms[0].NumTxs != 4 || ms[2].NumTxs != 2 {
		t.Fatalf("window sizes = %d, %d", ms[0].NumTxs, ms[2].NumTxs)
	}
	// Window 0 is clamped to 1.
	if got := WindowMetrics(views, 0); len(got) != 5 {
		t.Fatalf("w=0 windows = %d", len(got))
	}
}

func TestWindowMetricsUTXO(t *testing.T) {
	blocks := make([]*utxo.Block, 4)
	var prev *utxo.Transaction
	rng := rand.New(rand.NewSource(3))
	for i := range blocks {
		coinbase := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
		var in utxo.TxIn
		if prev == nil {
			in = utxo.TxIn{Prev: utxo.Outpoint{TxID: randHash(rng)}}
		} else {
			in = utxo.TxIn{Prev: prev.Outpoint(0)}
		}
		tx := utxo.NewTransaction([]utxo.TxIn{in}, []utxo.TxOut{{Value: 10}})
		blocks[i] = &utxo.Block{Height: uint64(i), Txs: []*utxo.Transaction{coinbase, tx}}
		prev = tx
	}
	// Each tx spends the previous block's tx: per-block no conflicts, a
	// 4-block window has one chain of 4.
	ms := WindowMetricsUTXO(blocks, 1)
	for _, m := range ms {
		if m.Conflicted != 0 {
			t.Fatalf("per-block: %+v", m)
		}
	}
	ms = WindowMetricsUTXO(blocks, 4)
	if len(ms) != 1 || ms[0].LCC != 4 || ms[0].Conflicted != 4 {
		t.Fatalf("4-window: %+v", ms)
	}
}

// TestWindowMonotonicity: merging blocks can only merge components, so the
// tx-weighted conflicted count of a window is at least the sum of its
// blocks' conflicted counts.
func TestWindowMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	views := make([]*AccountBlockView, 8)
	for i := range views {
		v := &AccountBlockView{}
		for j := 0; j < 5+rng.Intn(10); j++ {
			v.Regular = append(v.Regular, AccountEdge{
				From: addr("mono-s", uint64(rng.Intn(20))),
				To:   addr("mono-r", uint64(rng.Intn(20))),
			})
		}
		views[i] = v
	}
	perBlock := WindowMetrics(views, 1)
	sumConflicted := 0
	for _, m := range perBlock {
		sumConflicted += m.Conflicted
	}
	whole := WindowMetrics(views, len(views))
	if len(whole) != 1 {
		t.Fatal("expected one window")
	}
	if whole[0].Conflicted < sumConflicted {
		t.Fatalf("window conflicted %d < per-block sum %d", whole[0].Conflicted, sumConflicted)
	}
}
