package utxo

import (
	"math/rand"
	"testing"
)

// buildRandomHistory applies n random valid blocks to a fresh chain, using
// a small wallet pool. Returns the chain and the subsidy used.
func buildRandomHistory(t *testing.T, n int, seed int64) (*Chain, Amount) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const subsidy = Amount(50_000)
	wallets := make([]*testWallet, 8)
	for i := range wallets {
		wallets[i] = newWallet(uint64(i + 1))
	}
	type outp struct {
		op  Outpoint
		val Amount
		w   int
	}
	var pool []outp

	chain := NewChain(BlockOptions{Subsidy: subsidy, VerifyScripts: true})
	for height := 0; height < n; height++ {
		var txs []*Transaction
		var fees Amount
		// Up to three spends of existing outputs.
		nSpend := rng.Intn(4)
		if len(pool) < nSpend {
			nSpend = len(pool)
		}
		var newOuts []outp
		for s := 0; s < nSpend; s++ {
			idx := rng.Intn(len(pool))
			src := pool[idx]
			pool[idx] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			fee := src.val / 100
			pay := src.val - fee
			dst := rng.Intn(len(wallets))
			tx := payTo(wallets[src.w], []Outpoint{src.op}, []*testWallet{wallets[dst]}, []Amount{pay})
			txs = append(txs, tx)
			fees += fee
			newOuts = append(newOuts, outp{op: tx.Outpoint(0), val: pay, w: dst})
		}
		cbDst := rng.Intn(len(wallets))
		cb := coinbaseAt(wallets[cbDst], subsidy+fees, uint64(height))
		blk := &Block{
			Height:   uint64(height),
			PrevHash: chain.TipHash(),
			Time:     int64(height * 600),
			Txs:      append([]*Transaction{cb}, txs...),
		}
		if err := chain.Append(blk); err != nil {
			t.Fatalf("height %d: %v", height, err)
		}
		pool = append(pool, outp{op: cb.Outpoint(0), val: subsidy + fees, w: cbDst})
		pool = append(pool, newOuts...)
	}
	return chain, subsidy
}

// TestValueConservationProperty: over any random valid history, the UTXO
// set's total value equals the number of blocks times the subsidy — fees
// are redistributed to miners, never destroyed or minted.
func TestValueConservationProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		chain, subsidy := buildRandomHistory(t, 25, seed)
		want := Amount(chain.Height()) * subsidy
		if got := chain.UTXOSet().TotalValue(); got != want {
			t.Fatalf("seed %d: total value %d, want %d", seed, got, want)
		}
	}
}

// TestRollbackReplayProperty: rolling back the whole chain and re-applying
// the same blocks reproduces the same tip hash and UTXO set size.
func TestRollbackReplayProperty(t *testing.T) {
	chain, _ := buildRandomHistory(t, 20, 42)
	tip := chain.TipHash()
	setLen := chain.UTXOSet().Len()
	total := chain.UTXOSet().TotalValue()

	var blocks []*Block
	for chain.Height() > 0 {
		b, err := chain.Rollback()
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	if chain.UTXOSet().Len() != 0 {
		t.Fatalf("rolled-back set has %d entries", chain.UTXOSet().Len())
	}
	// Re-apply in original (reverse of rollback) order.
	for i := len(blocks) - 1; i >= 0; i-- {
		if err := chain.Append(blocks[i]); err != nil {
			t.Fatalf("replay height %d: %v", blocks[i].Height, err)
		}
	}
	if chain.TipHash() != tip {
		t.Fatal("replayed tip differs")
	}
	if chain.UTXOSet().Len() != setLen || chain.UTXOSet().TotalValue() != total {
		t.Fatal("replayed set differs")
	}
}

// TestPartialRollback: rolling back k blocks then extending with different
// blocks is a valid reorganisation.
func TestPartialRollback(t *testing.T) {
	chain, subsidy := buildRandomHistory(t, 10, 7)
	for i := 0; i < 3; i++ {
		if _, err := chain.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
	if chain.Height() != 7 {
		t.Fatalf("height = %d", chain.Height())
	}
	// Extend with a fresh empty block.
	alice := newWallet(99)
	blk := &Block{
		Height:   uint64(chain.Height()),
		PrevHash: chain.TipHash(),
		Txs:      []*Transaction{coinbaseAt(alice, subsidy, 1000)},
	}
	if err := chain.Append(blk); err != nil {
		t.Fatalf("reorg extension: %v", err)
	}
	want := Amount(chain.Height()) * subsidy
	if got := chain.UTXOSet().TotalValue(); got != want {
		t.Fatalf("total after reorg = %d, want %d", got, want)
	}
}
