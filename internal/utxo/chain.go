package utxo

import (
	"errors"
	"fmt"

	"txconcur/internal/types"
)

// Chain is a validated sequence of UTXO blocks with the resulting UTXO set,
// supporting append and rollback (reorganisation).
type Chain struct {
	opts   BlockOptions
	blocks []*Block
	undos  []*Undo
	set    *Set
}

// Chain errors.
var (
	// ErrBadLink reports a block whose height or previous-hash does not
	// extend the current tip.
	ErrBadLink = errors.New("utxo: block does not extend chain tip")
	// ErrEmptyChain reports a rollback on an empty chain.
	ErrEmptyChain = errors.New("utxo: chain is empty")
)

// NewChain returns an empty chain with the given validation options.
func NewChain(opts BlockOptions) *Chain {
	return &Chain{opts: opts, set: NewSet()}
}

// Height returns the number of blocks in the chain.
func (c *Chain) Height() int { return len(c.blocks) }

// TipHash returns the hash of the last block, or the zero hash for an empty
// chain.
func (c *Chain) TipHash() types.Hash {
	if len(c.blocks) == 0 {
		return types.ZeroHash
	}
	return c.blocks[len(c.blocks)-1].Hash()
}

// Block returns the block at height i (0-based).
func (c *Chain) Block(i int) *Block { return c.blocks[i] }

// Blocks returns the full block sequence. The slice is a copy; blocks are
// shared.
func (c *Chain) Blocks() []*Block {
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// UTXOSet returns the chain's current UTXO set. Callers must not mutate it;
// use Clone for speculative work.
func (c *Chain) UTXOSet() *Set { return c.set }

// Append validates b against the tip and the UTXO set and appends it.
func (c *Chain) Append(b *Block) error {
	if b.Height != uint64(len(c.blocks)) {
		return fmt.Errorf("%w: height %d, want %d", ErrBadLink, b.Height, len(c.blocks))
	}
	if b.PrevHash != c.TipHash() {
		return fmt.Errorf("%w: prev hash mismatch at height %d", ErrBadLink, b.Height)
	}
	undo, err := c.set.ApplyBlock(b, c.opts)
	if err != nil {
		return err
	}
	c.blocks = append(c.blocks, b)
	c.undos = append(c.undos, undo)
	return nil
}

// Rollback removes the tip block, restoring the UTXO set, and returns it.
func (c *Chain) Rollback() (*Block, error) {
	if len(c.blocks) == 0 {
		return nil, ErrEmptyChain
	}
	last := len(c.blocks) - 1
	b := c.blocks[last]
	c.set.UndoBlock(c.undos[last])
	c.blocks = c.blocks[:last]
	c.undos = c.undos[:last]
	return b, nil
}
