package utxo

import (
	"bytes"
	"errors"
	"fmt"

	"txconcur/internal/types"
)

// The script system is a small Bitcoin-like stack language. It supports the
// pay-to-pubkey-hash (P2PKH) pattern that dominates the chains the paper
// analyses, plus enough generic opcodes (DUP, EQUAL, HASH, arithmetic) to
// express the "higher-level protocols executed on top of Bitcoin via its
// scripting language" that the paper cites as a source of intra-block
// conflicts (§IV-A).
//
// Signatures are simulated: a "signature" by key k over transaction t is
// SHA-256("sig" || k || t). This keeps the module dependency-free while
// preserving the validation structure (unlock script must match the lock
// script's committed key hash).

// Opcode is a script operation.
type Opcode byte

// Script opcodes. Values are stable for encoding.
const (
	OpPush        Opcode = iota + 1 // push the associated data item
	OpDup                           // duplicate top of stack
	OpHash                          // replace top with SHA-256(top)
	OpEqual                         // pop two, push 1 if equal else 0
	OpVerify                        // pop top, fail if not truthy
	OpEqualVerify                   // OpEqual then OpVerify
	OpCheckSig                      // pop pubkey, sig; verify simulated signature
	OpTrue                          // push 1 (anyone-can-spend)
	OpReturn                        // unconditionally fail (data-carrier outputs)
)

// Instruction is one script step: an opcode plus optional pushed data.
type Instruction struct {
	Op   Opcode
	Data []byte
}

// Script is a sequence of instructions.
type Script []Instruction

// Script execution errors.
var (
	ErrScriptStack    = errors.New("utxo: script stack underflow")
	ErrScriptFailed   = errors.New("utxo: script verification failed")
	ErrScriptTooLong  = errors.New("utxo: script exceeds instruction budget")
	ErrScriptBadOp    = errors.New("utxo: unknown opcode")
	ErrScriptOpReturn = errors.New("utxo: OP_RETURN output is unspendable")
)

// maxScriptSteps bounds script execution, mirroring Bitcoin's limits.
const maxScriptSteps = 256

// P2PKH returns the canonical pay-to-pubkey-hash locking script for the
// given public key hash.
func P2PKH(pubKeyHash types.Hash) Script {
	return Script{
		{Op: OpDup},
		{Op: OpHash},
		{Op: OpPush, Data: pubKeyHash.Bytes()},
		{Op: OpEqualVerify},
		{Op: OpCheckSig},
	}
}

// AnyoneCanSpend returns a trivially spendable locking script.
func AnyoneCanSpend() Script { return Script{{Op: OpTrue}} }

// DataCarrier returns an unspendable OP_RETURN output embedding data.
func DataCarrier(data []byte) Script {
	return Script{{Op: OpReturn, Data: data}}
}

// Unlock returns the unlocking script (signature + pubkey) for a P2PKH
// output, given the spender's key and the spending transaction's ID.
func Unlock(key PrivateKey, txID types.Hash) Script {
	return Script{
		{Op: OpPush, Data: key.Sign(txID)},
		{Op: OpPush, Data: key.Public()},
	}
}

// PrivateKey is a simulated signing key: an arbitrary byte seed.
type PrivateKey []byte

// NewKey derives a deterministic key for a user index; the workload
// generators use one key per simulated user.
func NewKey(tag string, idx uint64) PrivateKey {
	h := types.HashUint64("key/"+tag, idx)
	return PrivateKey(h.Bytes())
}

// Public returns the simulated public key (hash of the private key).
func (k PrivateKey) Public() []byte {
	h := types.HashData([]byte("pub"), k)
	return h.Bytes()
}

// PubKeyHash returns the hash of the public key, as committed in P2PKH
// locking scripts.
func (k PrivateKey) PubKeyHash() types.Hash {
	return types.HashData([]byte("pkh"), k.Public())
}

// Sign produces the simulated signature over a transaction ID.
func (k PrivateKey) Sign(txID types.Hash) []byte {
	h := types.HashData([]byte("sig"), k.Public(), txID[:])
	return h.Bytes()
}

// verifySig checks a simulated signature: sig == SHA-256("sig"||pub||txID).
// Real Bitcoin uses ECDSA here; the structural property preserved is that
// only the holder of the key whose hash is committed in the locking script
// can produce a valid unlock.
func verifySig(sig, pub []byte, txID types.Hash) bool {
	want := types.HashData([]byte("sig"), pub, txID[:])
	return bytes.Equal(sig, want[:])
}

// Run executes unlock followed by lock against a fresh stack, as Bitcoin
// evaluates scriptSig then scriptPubKey, and reports whether the result is a
// single truthy value.
func Run(unlock, lock Script, txID types.Hash) error {
	var stack [][]byte
	steps := 0
	exec := func(s Script) error {
		for _, ins := range s {
			steps++
			if steps > maxScriptSteps {
				return ErrScriptTooLong
			}
			switch ins.Op {
			case OpPush:
				stack = append(stack, ins.Data)
			case OpDup:
				if len(stack) < 1 {
					return ErrScriptStack
				}
				stack = append(stack, stack[len(stack)-1])
			case OpHash:
				if len(stack) < 1 {
					return ErrScriptStack
				}
				h := types.HashData([]byte("pkh"), stack[len(stack)-1])
				stack[len(stack)-1] = h.Bytes()
			case OpEqual, OpEqualVerify:
				if len(stack) < 2 {
					return ErrScriptStack
				}
				a, b := stack[len(stack)-2], stack[len(stack)-1]
				stack = stack[:len(stack)-2]
				eq := bytes.Equal(a, b)
				if ins.Op == OpEqual {
					stack = append(stack, boolBytes(eq))
				} else if !eq {
					return fmt.Errorf("%w: EQUALVERIFY", ErrScriptFailed)
				}
			case OpVerify:
				if len(stack) < 1 {
					return ErrScriptStack
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if !truthy(top) {
					return fmt.Errorf("%w: VERIFY", ErrScriptFailed)
				}
			case OpCheckSig:
				if len(stack) < 2 {
					return ErrScriptStack
				}
				pub := stack[len(stack)-1]
				sig := stack[len(stack)-2]
				stack = stack[:len(stack)-2]
				stack = append(stack, boolBytes(verifySig(sig, pub, txID)))
			case OpTrue:
				stack = append(stack, boolBytes(true))
			case OpReturn:
				return ErrScriptOpReturn
			default:
				return fmt.Errorf("%w: %d", ErrScriptBadOp, ins.Op)
			}
		}
		return nil
	}
	if err := exec(unlock); err != nil {
		return err
	}
	if err := exec(lock); err != nil {
		return err
	}
	if len(stack) == 0 || !truthy(stack[len(stack)-1]) {
		return ErrScriptFailed
	}
	return nil
}

func truthy(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

func boolBytes(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

// encode serialises the script for hashing.
func (s Script) encode() []byte {
	buf := make([]byte, 0, len(s)*4)
	for _, ins := range s {
		buf = append(buf, byte(ins.Op), byte(len(ins.Data)))
		buf = append(buf, ins.Data...)
	}
	return buf
}
