package utxo

import (
	"errors"
	"testing"
	"testing/quick"

	"txconcur/internal/types"
)

func TestP2PKHHappyPath(t *testing.T) {
	key := NewKey("script", 1)
	txID := types.HashUint64("tx", 1)
	lock := P2PKH(key.PubKeyHash())
	unlock := Unlock(key, txID)
	if err := Run(unlock, lock, txID); err != nil {
		t.Fatalf("valid P2PKH spend rejected: %v", err)
	}
}

func TestP2PKHWrongKey(t *testing.T) {
	owner := NewKey("script", 1)
	thief := NewKey("script", 2)
	txID := types.HashUint64("tx", 1)
	lock := P2PKH(owner.PubKeyHash())
	unlock := Unlock(thief, txID)
	if err := Run(unlock, lock, txID); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestP2PKHWrongTx(t *testing.T) {
	key := NewKey("script", 1)
	lock := P2PKH(key.PubKeyHash())
	unlock := Unlock(key, types.HashUint64("tx", 1))
	// Replaying the signature against a different transaction must fail.
	if err := Run(unlock, lock, types.HashUint64("tx", 2)); err == nil {
		t.Fatal("signature replay accepted")
	}
}

func TestP2PKHForgedSignature(t *testing.T) {
	key := NewKey("script", 1)
	txID := types.HashUint64("tx", 1)
	lock := P2PKH(key.PubKeyHash())
	forged := Script{
		{Op: OpPush, Data: make([]byte, 32)},
		{Op: OpPush, Data: key.Public()},
	}
	if err := Run(forged, lock, txID); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestAnyoneCanSpend(t *testing.T) {
	if err := Run(nil, AnyoneCanSpend(), types.ZeroHash); err != nil {
		t.Fatalf("anyone-can-spend rejected: %v", err)
	}
}

func TestOpReturnUnspendable(t *testing.T) {
	err := Run(nil, DataCarrier([]byte("hello")), types.ZeroHash)
	if !errors.Is(err, ErrScriptOpReturn) {
		t.Fatalf("OP_RETURN: err = %v, want ErrScriptOpReturn", err)
	}
}

func TestStackUnderflow(t *testing.T) {
	cases := []Script{
		{{Op: OpDup}},
		{{Op: OpHash}},
		{{Op: OpEqual}},
		{{Op: OpVerify}},
		{{Op: OpCheckSig}},
		{{Op: OpPush, Data: []byte{1}}, {Op: OpEqualVerify}},
	}
	for i, s := range cases {
		if err := Run(nil, s, types.ZeroHash); !errors.Is(err, ErrScriptStack) {
			t.Errorf("case %d: err = %v, want ErrScriptStack", i, err)
		}
	}
}

func TestEmptyScriptFails(t *testing.T) {
	if err := Run(nil, nil, types.ZeroHash); !errors.Is(err, ErrScriptFailed) {
		t.Fatalf("empty scripts: err = %v, want ErrScriptFailed", err)
	}
}

func TestFalseTopFails(t *testing.T) {
	lock := Script{{Op: OpPush, Data: []byte{0}}}
	if err := Run(nil, lock, types.ZeroHash); !errors.Is(err, ErrScriptFailed) {
		t.Fatalf("false top: err = %v, want ErrScriptFailed", err)
	}
}

func TestVerifyConsumesTruthy(t *testing.T) {
	lock := Script{
		{Op: OpPush, Data: []byte{1}},
		{Op: OpVerify},
		{Op: OpTrue},
	}
	if err := Run(nil, lock, types.ZeroHash); err != nil {
		t.Fatalf("verify-then-true rejected: %v", err)
	}
}

func TestEqualOpcode(t *testing.T) {
	eq := Script{
		{Op: OpPush, Data: []byte("a")},
		{Op: OpPush, Data: []byte("a")},
		{Op: OpEqual},
	}
	if err := Run(nil, eq, types.ZeroHash); err != nil {
		t.Fatalf("equal values: %v", err)
	}
	ne := Script{
		{Op: OpPush, Data: []byte("a")},
		{Op: OpPush, Data: []byte("b")},
		{Op: OpEqual},
	}
	if err := Run(nil, ne, types.ZeroHash); !errors.Is(err, ErrScriptFailed) {
		t.Fatalf("unequal values: err = %v, want ErrScriptFailed", err)
	}
}

func TestStepBudget(t *testing.T) {
	long := make(Script, maxScriptSteps+1)
	for i := range long {
		long[i] = Instruction{Op: OpTrue}
	}
	if err := Run(nil, long, types.ZeroHash); !errors.Is(err, ErrScriptTooLong) {
		t.Fatalf("budget: err = %v, want ErrScriptTooLong", err)
	}
}

func TestUnknownOpcode(t *testing.T) {
	bad := Script{{Op: Opcode(200)}}
	if err := Run(nil, bad, types.ZeroHash); !errors.Is(err, ErrScriptBadOp) {
		t.Fatalf("unknown opcode: err = %v, want ErrScriptBadOp", err)
	}
}

// TestP2PKHSoundnessProperty: for random key indices and transaction IDs,
// the rightful owner's unlock always validates and a different key's unlock
// never does.
func TestP2PKHSoundnessProperty(t *testing.T) {
	f := func(ownerIdx, otherIdx uint16, txSeed uint32) bool {
		if ownerIdx == otherIdx {
			return true
		}
		owner := NewKey("prop", uint64(ownerIdx))
		other := NewKey("prop", uint64(otherIdx))
		txID := types.HashUint64("prop-tx", uint64(txSeed))
		lock := P2PKH(owner.PubKeyHash())
		if Run(Unlock(owner, txID), lock, txID) != nil {
			return false
		}
		return Run(Unlock(other, txID), lock, txID) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeyDerivationDistinct(t *testing.T) {
	k1, k2 := NewKey("a", 1), NewKey("a", 2)
	if k1.PubKeyHash() == k2.PubKeyHash() {
		t.Fatal("distinct keys share a pubkey hash")
	}
	if string(NewKey("a", 1)) != string(k1) {
		t.Fatal("key derivation not deterministic")
	}
}
