package utxo

import (
	"fmt"
)

// Set is the UTXO set: every currently unspent transaction output. The
// paper's §II-A: "Nodes keep track of unspent TXOs (or UTXOs). A transaction
// is valid if the total value of the output TXOs matches that of the input
// TXOs (minus some transaction fees), and if the input TXOs are in the
// current UTXO set."
type Set struct {
	entries map[Outpoint]TxOut
}

// NewSet returns an empty UTXO set.
func NewSet() *Set {
	return &Set{entries: make(map[Outpoint]TxOut)}
}

// Get returns the output at op and whether it is unspent.
func (s *Set) Get(op Outpoint) (TxOut, bool) {
	out, ok := s.entries[op]
	return out, ok
}

// Contains reports whether op is in the set.
func (s *Set) Contains(op Outpoint) bool {
	_, ok := s.entries[op]
	return ok
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.entries) }

// TotalValue returns the sum of all unspent output values (the monetary
// supply held in the set).
func (s *Set) TotalValue() Amount {
	var total Amount
	for _, out := range s.entries {
		total += out.Value
	}
	return total
}

// add records a new unspent output.
func (s *Set) add(op Outpoint, out TxOut) { s.entries[op] = out }

// spend removes an output, returning it.
func (s *Set) spend(op Outpoint) (TxOut, bool) {
	out, ok := s.entries[op]
	if ok {
		delete(s.entries, op)
	}
	return out, ok
}

// Range calls fn for every unspent output until fn returns false. The
// iteration order is unspecified; fn must not mutate the set.
func (s *Set) Range(fn func(Outpoint, TxOut) bool) {
	for op, out := range s.entries {
		if !fn(op, out) {
			return
		}
	}
}

// Clone returns a deep copy of the set; the workload generator uses clones
// to explore candidate blocks without committing them.
func (s *Set) Clone() *Set {
	c := &Set{entries: make(map[Outpoint]TxOut, len(s.entries))}
	for op, out := range s.entries {
		c.entries[op] = out
	}
	return c
}

// spentEntry records a spent output for undo.
type spentEntry struct {
	op  Outpoint
	out TxOut
}

// Undo captures the changes a block made to the set so the block can be
// rolled back (chain reorganisation support).
type Undo struct {
	spent   []spentEntry
	created []Outpoint
}

// BlockOptions parameterises block validation.
type BlockOptions struct {
	// Subsidy is the maximum value a coinbase may mint beyond collected
	// fees.
	Subsidy Amount
	// VerifyScripts enables script execution on every input. The analysis
	// pipeline disables it for speed; consensus-critical paths enable it.
	VerifyScripts bool
}

// ApplyBlock validates the block against the set and, if valid, applies it,
// returning the undo record. On error the set is unchanged.
//
// Intra-block spends are allowed and are precisely the TDG edges of the
// paper's UTXO model: an input may reference an output created by an earlier
// transaction in the same block.
func (s *Set) ApplyBlock(b *Block, opts BlockOptions) (*Undo, error) {
	if len(b.Txs) == 0 || !b.Txs[0].IsCoinbase() {
		return nil, fmt.Errorf("%w: block %d must start with a coinbase", ErrBadCoinbase, b.Height)
	}
	undo := &Undo{}
	// Stage changes so a failure mid-block leaves the set untouched.
	staged := make(map[Outpoint]TxOut)
	spentNow := make(map[Outpoint]spentEntry)

	lookup := func(op Outpoint) (TxOut, bool) {
		if out, ok := staged[op]; ok {
			return out, true
		}
		if _, gone := spentNow[op]; gone {
			return TxOut{}, false
		}
		return s.Get(op)
	}

	var fees Amount
	for i, tx := range b.Txs {
		if i > 0 && tx.IsCoinbase() {
			return nil, fmt.Errorf("%w: coinbase at index %d", ErrBadCoinbase, i)
		}
		if !tx.IsCoinbase() && (len(tx.Inputs) == 0 || len(tx.Outputs) == 0) {
			return nil, fmt.Errorf("%w: tx %d in block %d", ErrEmptyTx, i, b.Height)
		}
		var inValue Amount
		for j, in := range tx.Inputs {
			out, ok := lookup(in.Prev)
			if !ok {
				return nil, fmt.Errorf("%w: block %d tx %d input %d (%s)",
					ErrMissingUTXO, b.Height, i, j, in.Prev)
			}
			if opts.VerifyScripts {
				if err := Run(in.Unlock, out.Script, tx.ID()); err != nil {
					return nil, fmt.Errorf("%w: block %d tx %d input %d: %w",
						ErrScriptReject, b.Height, i, j, err)
				}
			}
			inValue += out.Value
			if _, dup := spentNow[in.Prev]; dup {
				return nil, fmt.Errorf("%w: %s", ErrDuplicateSpend, in.Prev)
			}
			spentNow[in.Prev] = spentEntry{op: in.Prev, out: out}
			delete(staged, in.Prev)
		}
		outValue := tx.OutputValue()
		// The coinbase value check is deferred until fees are known.
		if !tx.IsCoinbase() {
			if outValue > inValue {
				return nil, fmt.Errorf("%w: block %d tx %d: in %d < out %d",
					ErrValueConservation, b.Height, i, inValue, outValue)
			}
			fees += inValue - outValue
		}
		for k := range tx.Outputs {
			op := tx.Outpoint(k)
			// BIP30-style rule: creating an outpoint that already exists
			// unspent would silently shadow it (the historical Bitcoin
			// duplicate-coinbase bug); reject it.
			if _, dup := staged[op]; dup {
				return nil, fmt.Errorf("%w: duplicate transaction %s in block", ErrDuplicateCreate, tx.ID().Short())
			}
			if _, gone := spentNow[op]; !gone && s.Contains(op) {
				return nil, fmt.Errorf("%w: %s already unspent", ErrDuplicateCreate, op)
			}
			staged[op] = tx.Outputs[k]
		}
	}
	if cb := b.Txs[0]; cb.OutputValue() > opts.Subsidy+fees {
		return nil, fmt.Errorf("%w: coinbase mints %d > subsidy %d + fees %d",
			ErrBadCoinbase, cb.OutputValue(), opts.Subsidy, fees)
	}

	// Commit: remove spends, add creations (a created-and-spent-in-block
	// outpoint never touches the set: it was staged then deleted).
	for op, se := range spentNow {
		if _, existed := s.entries[op]; existed {
			s.spend(op)
			undo.spent = append(undo.spent, se)
		}
	}
	for op, out := range staged {
		s.add(op, out)
		undo.created = append(undo.created, op)
	}
	return undo, nil
}

// UndoBlock reverses a previously applied block using its undo record.
func (s *Set) UndoBlock(u *Undo) {
	for _, op := range u.created {
		delete(s.entries, op)
	}
	for _, se := range u.spent {
		s.entries[se.op] = se.out
	}
}

// ApplyDelta applies an externally validated block delta atomically:
// every outpoint in spent is removed and every entry of created inserted.
// It errors (leaving the set unchanged) if a spent outpoint is absent or a
// created one already present — the parallel validator in package exec uses
// this as its commit step.
func (s *Set) ApplyDelta(spent []Outpoint, created map[Outpoint]TxOut) error {
	for _, op := range spent {
		if !s.Contains(op) {
			return fmt.Errorf("%w: delta spends %v", ErrMissingUTXO, op)
		}
	}
	for op := range created {
		if s.Contains(op) {
			return fmt.Errorf("%w: delta creates %v", ErrDuplicateCreate, op)
		}
	}
	for _, op := range spent {
		delete(s.entries, op)
	}
	for op, out := range created {
		s.entries[op] = out
	}
	return nil
}
