package utxo

import (
	"errors"
	"testing"

	"txconcur/internal/types"
)

// testWallet bundles a key with convenience builders.
type testWallet struct {
	key PrivateKey
}

func newWallet(idx uint64) *testWallet {
	return &testWallet{key: NewKey("test", idx)}
}

func (w *testWallet) lock() Script { return P2PKH(w.key.PubKeyHash()) }

// payTo builds a signed transaction spending the given outpoints (all owned
// by w) into one output per (wallet, amount) pair.
func payTo(w *testWallet, prevs []Outpoint, dests []*testWallet, amounts []Amount) *Transaction {
	outs := make([]TxOut, len(dests))
	for i := range dests {
		outs[i] = TxOut{Value: amounts[i], Script: dests[i].lock()}
	}
	ins := make([]TxIn, len(prevs))
	for i, p := range prevs {
		ins[i] = TxIn{Prev: p}
	}
	tx := NewTransaction(ins, outs)
	// Sign after the ID is fixed. Input scripts are excluded from our tx ID
	// only via reconstruction: rebuild with unlock scripts, preserving ID
	// semantics by signing the unsigned form.
	id := tx.ID()
	for i := range ins {
		ins[i].Unlock = Unlock(w.key, id)
	}
	signed := &Transaction{Inputs: ins, Outputs: outs, id: id, hasID: true}
	return signed
}

func coinbase(w *testWallet, value Amount) *Transaction {
	return NewTransaction(nil, []TxOut{{Value: value, Script: w.lock()}})
}

// coinbaseAt is coinbase with a BIP34-style height marker, so identical
// (wallet, value) coinbases at different heights stay unique.
func coinbaseAt(w *testWallet, value Amount, height uint64) *Transaction {
	return NewTransaction(nil, []TxOut{
		{Value: value, Script: w.lock()},
		{Value: 0, Script: DataCarrier([]byte{byte(height >> 8), byte(height)})},
	})
}

func TestCoinbaseAndSpend(t *testing.T) {
	alice, bob := newWallet(1), newWallet(2)
	opts := BlockOptions{Subsidy: 50, VerifyScripts: true}
	chain := NewChain(opts)

	cb := coinbase(alice, 50)
	b0 := &Block{Height: 0, Txs: []*Transaction{cb}}
	if err := chain.Append(b0); err != nil {
		t.Fatalf("append genesis: %v", err)
	}
	if chain.UTXOSet().Len() != 1 {
		t.Fatalf("UTXO set size = %d, want 1", chain.UTXOSet().Len())
	}

	// Alice pays Bob 30 with 18 change and 2 fee.
	pay := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob, alice}, []Amount{30, 18})
	cb1 := coinbase(alice, 52) // 50 subsidy + 2 fee
	b1 := &Block{Height: 1, PrevHash: b0.Hash(), Txs: []*Transaction{cb1, pay}}
	if err := chain.Append(b1); err != nil {
		t.Fatalf("append block 1: %v", err)
	}
	set := chain.UTXOSet()
	if set.Len() != 3 {
		t.Fatalf("UTXO set size = %d, want 3", set.Len())
	}
	if set.Contains(cb.Outpoint(0)) {
		t.Fatal("spent outpoint still in set")
	}
	if got := set.TotalValue(); got != 100 {
		t.Fatalf("total value = %d, want 100 (2x subsidy)", got)
	}
}

func TestIntraBlockSpend(t *testing.T) {
	// A transaction spends an output created earlier in the same block —
	// the TDG edge of the paper's UTXO model.
	alice, bob, carol := newWallet(1), newWallet(2), newWallet(3)
	opts := BlockOptions{Subsidy: 50, VerifyScripts: true}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}

	t1 := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob}, []Amount{50})
	t2 := payTo(bob, []Outpoint{t1.Outpoint(0)}, []*testWallet{carol}, []Amount{50})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbaseAt(alice, 50, 1), t1, t2}}
	if err := chain.Append(b1); err != nil {
		t.Fatalf("intra-block spend rejected: %v", err)
	}
	set := chain.UTXOSet()
	if set.Contains(t1.Outpoint(0)) {
		t.Fatal("intermediate outpoint should be spent")
	}
	if !set.Contains(t2.Outpoint(0)) {
		t.Fatal("final outpoint should be unspent")
	}
}

func TestForwardReferenceRejected(t *testing.T) {
	// Spending an output created *later* in the block must fail: blocks are
	// executed in order.
	alice, bob := newWallet(1), newWallet(2)
	opts := BlockOptions{Subsidy: 50}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	t1 := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob}, []Amount{50})
	t2 := payTo(bob, []Outpoint{t1.Outpoint(0)}, []*testWallet{alice}, []Amount{50})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbaseAt(alice, 50, 1), t2, t1}}
	err := chain.Append(b1)
	if !errors.Is(err, ErrMissingUTXO) {
		t.Fatalf("forward reference: err = %v, want ErrMissingUTXO", err)
	}
	if chain.Height() != 1 {
		t.Fatal("failed append should not extend chain")
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	alice, bob := newWallet(1), newWallet(2)
	opts := BlockOptions{Subsidy: 50}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	t1 := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob}, []Amount{49})
	t2 := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{alice}, []Amount{49})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbaseAt(alice, 50, 1), t1, t2}}
	err := chain.Append(b1)
	if !errors.Is(err, ErrDuplicateSpend) && !errors.Is(err, ErrMissingUTXO) {
		t.Fatalf("double spend: err = %v, want duplicate-spend/missing", err)
	}
}

func TestValueConservation(t *testing.T) {
	alice, bob := newWallet(1), newWallet(2)
	opts := BlockOptions{Subsidy: 50}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	inflate := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob}, []Amount{51})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbaseAt(alice, 50, 1), inflate}}
	if err := chain.Append(b1); !errors.Is(err, ErrValueConservation) {
		t.Fatalf("inflation: err = %v, want ErrValueConservation", err)
	}
}

func TestCoinbaseLimits(t *testing.T) {
	alice := newWallet(1)
	opts := BlockOptions{Subsidy: 50}
	chain := NewChain(opts)
	// Coinbase above subsidy with no fees.
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{coinbase(alice, 51)}}); !errors.Is(err, ErrBadCoinbase) {
		t.Fatalf("oversized coinbase: err = %v, want ErrBadCoinbase", err)
	}
	// Block without coinbase.
	tx := NewTransaction([]TxIn{{Prev: Outpoint{Index: 0}}}, []TxOut{{Value: 1}})
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{tx}}); !errors.Is(err, ErrBadCoinbase) {
		t.Fatalf("missing coinbase: err = %v, want ErrBadCoinbase", err)
	}
	// Second coinbase mid-block.
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{coinbase(alice, 50), coinbase(alice, 50)}}); !errors.Is(err, ErrBadCoinbase) {
		t.Fatalf("mid-block coinbase: err = %v, want ErrBadCoinbase", err)
	}
	if chain.Height() != 0 {
		t.Fatal("no block should have been accepted")
	}
}

func TestScriptRejectsWrongKey(t *testing.T) {
	alice, bob, eve := newWallet(1), newWallet(2), newWallet(666)
	opts := BlockOptions{Subsidy: 50, VerifyScripts: true}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	// Eve tries to spend Alice's output.
	steal := payTo(eve, []Outpoint{cb.Outpoint(0)}, []*testWallet{eve}, []Amount{50})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbase(bob, 50), steal}}
	if err := chain.Append(b1); !errors.Is(err, ErrScriptReject) {
		t.Fatalf("theft: err = %v, want ErrScriptReject", err)
	}
}

func TestRollback(t *testing.T) {
	alice, bob := newWallet(1), newWallet(2)
	opts := BlockOptions{Subsidy: 50, VerifyScripts: true}
	chain := NewChain(opts)
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	before := chain.UTXOSet().Clone()

	pay := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob, alice}, []Amount{30, 18})
	b1 := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbase(alice, 52), pay}}
	if err := chain.Append(b1); err != nil {
		t.Fatal(err)
	}
	blk, err := chain.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if blk.Hash() != b1.Hash() {
		t.Fatal("rollback returned wrong block")
	}
	after := chain.UTXOSet()
	if after.Len() != before.Len() {
		t.Fatalf("set size after rollback = %d, want %d", after.Len(), before.Len())
	}
	if !after.Contains(cb.Outpoint(0)) {
		t.Fatal("rollback should restore the spent coinbase outpoint")
	}
	// Chain can be re-extended after rollback.
	if err := chain.Append(b1); err != nil {
		t.Fatalf("re-append after rollback: %v", err)
	}
	if _, err := chain.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Rollback(); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("rollback of empty chain: err = %v, want ErrEmptyChain", err)
	}
}

func TestBadLink(t *testing.T) {
	alice := newWallet(1)
	chain := NewChain(BlockOptions{Subsidy: 50})
	if err := chain.Append(&Block{Height: 1, Txs: []*Transaction{coinbase(alice, 50)}}); !errors.Is(err, ErrBadLink) {
		t.Fatalf("wrong height: err = %v, want ErrBadLink", err)
	}
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{coinbase(alice, 50)}}); err != nil {
		t.Fatal(err)
	}
	wrongPrev := &Block{Height: 1, PrevHash: types.HashUint64("bogus", 1), Txs: []*Transaction{coinbase(alice, 50)}}
	if err := chain.Append(wrongPrev); !errors.Is(err, ErrBadLink) {
		t.Fatalf("wrong prev: err = %v, want ErrBadLink", err)
	}
}

func TestEmptyTxRejected(t *testing.T) {
	alice := newWallet(1)
	chain := NewChain(BlockOptions{Subsidy: 50})
	cb := coinbase(alice, 50)
	if err := chain.Append(&Block{Height: 0, Txs: []*Transaction{cb}}); err != nil {
		t.Fatal(err)
	}
	noOut := &Transaction{Inputs: []TxIn{{Prev: cb.Outpoint(0)}}}
	b := &Block{Height: 1, PrevHash: chain.TipHash(), Txs: []*Transaction{coinbaseAt(alice, 50, 1), noOut}}
	if err := chain.Append(b); !errors.Is(err, ErrEmptyTx) {
		t.Fatalf("no-output tx: err = %v, want ErrEmptyTx", err)
	}
}

func TestTxIDStability(t *testing.T) {
	alice := newWallet(1)
	tx1 := coinbase(alice, 50)
	tx2 := coinbase(alice, 50)
	if tx1.ID() != tx2.ID() {
		t.Fatal("identical transactions must have identical IDs")
	}
	tx3 := coinbase(alice, 51)
	if tx1.ID() == tx3.ID() {
		t.Fatal("different values must change the ID")
	}
}

func TestBlockCounters(t *testing.T) {
	alice, bob := newWallet(1), newWallet(2)
	cb := coinbase(alice, 50)
	t1 := payTo(alice, []Outpoint{cb.Outpoint(0)}, []*testWallet{bob}, []Amount{25})
	b := &Block{Height: 0, Txs: []*Transaction{cb, t1}}
	if b.NumTxs() != 2 {
		t.Fatalf("NumTxs = %d, want 2", b.NumTxs())
	}
	if b.NumInputs() != 1 {
		t.Fatalf("NumInputs = %d, want 1", b.NumInputs())
	}
}
