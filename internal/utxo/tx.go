// Package utxo implements the UTXO-based blockchain substrate used by the
// paper's four Bitcoin-family subjects (Bitcoin, Bitcoin Cash, Litecoin,
// Dogecoin): transactions over unspent transaction outputs, a Bitcoin-like
// script interpreter, a UTXO set with apply/undo, and a validated chain of
// blocks.
//
// The paper's TDG analysis for this data model needs, per block, the edge
// set "TXO created by transaction a is spent by transaction b in the same
// block" (paper §III-A1). This package provides real, executable blocks so
// that the analysis operates on the same information the BigQuery datasets
// expose (transaction hashes and their inputs' spent_transaction_hash).
package utxo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"txconcur/internal/types"
)

// Amount is a token amount in the chain's base unit (satoshi-like).
type Amount int64

// Outpoint identifies a transaction output: the creating transaction's hash
// and the output index within it.
type Outpoint struct {
	TxID  types.Hash
	Index uint32
}

// String renders the outpoint as "hash:index".
func (o Outpoint) String() string {
	return fmt.Sprintf("%s:%d", o.TxID.Short(), o.Index)
}

// TxOut is a transaction output: a value locked by a script.
type TxOut struct {
	Value  Amount
	Script Script
}

// TxIn is a transaction input: a reference to the output it spends plus the
// unlocking script (scriptSig).
type TxIn struct {
	Prev   Outpoint
	Unlock Script
}

// Transaction is a UTXO-model transaction. A coinbase transaction has no
// inputs and mints the block subsidy plus fees.
type Transaction struct {
	Inputs  []TxIn
	Outputs []TxOut

	id    types.Hash
	hasID bool
}

// NewTransaction builds a transaction and precomputes its ID.
func NewTransaction(inputs []TxIn, outputs []TxOut) *Transaction {
	tx := &Transaction{Inputs: inputs, Outputs: outputs}
	tx.ID()
	return tx
}

// ID returns the transaction hash, computed over the spent outpoints and
// the outputs. Unlock scripts are excluded — as Bitcoin's txid excludes
// witness data — so a transaction can be identified (and signed: signatures
// commit to the ID) before or after its inputs are signed, and persisted
// transactions hash identically whether or not signatures are attached.
func (tx *Transaction) ID() types.Hash {
	if tx.hasID {
		return tx.id
	}
	buf := make([]byte, 0, 64+len(tx.Inputs)*36+len(tx.Outputs)*16)
	var tmp [8]byte
	for _, in := range tx.Inputs {
		buf = append(buf, in.Prev.TxID[:]...)
		binary.BigEndian.PutUint32(tmp[:4], in.Prev.Index)
		buf = append(buf, tmp[:4]...)
	}
	for _, out := range tx.Outputs {
		binary.BigEndian.PutUint64(tmp[:], uint64(out.Value))
		buf = append(buf, tmp[:]...)
		buf = append(buf, out.Script.encode()...)
	}
	tx.id = types.HashData([]byte("utxo-tx"), buf)
	tx.hasID = true
	return tx.id
}

// IsCoinbase reports whether the transaction is a coinbase (no inputs).
func (tx *Transaction) IsCoinbase() bool { return len(tx.Inputs) == 0 }

// OutputValue returns the sum of all output values.
func (tx *Transaction) OutputValue() Amount {
	var total Amount
	for _, out := range tx.Outputs {
		total += out.Value
	}
	return total
}

// Outpoint returns the outpoint for the i-th output of this transaction.
func (tx *Transaction) Outpoint(i int) Outpoint {
	return Outpoint{TxID: tx.ID(), Index: uint32(i)}
}

// Block is a block of UTXO transactions. By convention (as in Bitcoin) the
// first transaction is the coinbase.
type Block struct {
	Height   uint64
	PrevHash types.Hash
	Time     int64 // unix seconds, set by the generator
	Txs      []*Transaction
}

// Hash returns the block hash, computed over the header fields and the
// transaction IDs.
func (b *Block) Hash() types.Hash {
	buf := make([]byte, 16, 16+len(b.Txs)*types.HashSize)
	binary.BigEndian.PutUint64(buf[:8], b.Height)
	binary.BigEndian.PutUint64(buf[8:16], uint64(b.Time))
	buf = append(buf, b.PrevHash[:]...)
	for _, tx := range b.Txs {
		id := tx.ID()
		buf = append(buf, id[:]...)
	}
	return types.HashData([]byte("utxo-block"), buf)
}

// NumTxs returns the number of transactions in the block, including the
// coinbase.
func (b *Block) NumTxs() int { return len(b.Txs) }

// NumInputs returns the total number of inputs across all transactions
// (the "input TXOs" series of the paper's Figure 5a).
func (b *Block) NumInputs() int {
	n := 0
	for _, tx := range b.Txs {
		n += len(tx.Inputs)
	}
	return n
}

// Validation errors.
var (
	// ErrMissingUTXO reports an input whose referenced output is not in the
	// current UTXO set (already spent, or never created).
	ErrMissingUTXO = errors.New("utxo: input refers to unknown or spent output")
	// ErrValueConservation reports a transaction whose outputs exceed its
	// inputs.
	ErrValueConservation = errors.New("utxo: outputs exceed inputs")
	// ErrScriptReject reports an input whose unlock script failed against
	// the locking script.
	ErrScriptReject = errors.New("utxo: script rejected input")
	// ErrBadCoinbase reports a malformed coinbase (wrong position, wrong
	// count, or value above subsidy plus fees).
	ErrBadCoinbase = errors.New("utxo: invalid coinbase")
	// ErrEmptyTx reports a non-coinbase transaction without inputs or
	// without outputs.
	ErrEmptyTx = errors.New("utxo: transaction has no inputs or outputs")
	// ErrDuplicateSpend reports two inputs in the same block spending the
	// same outpoint.
	ErrDuplicateSpend = errors.New("utxo: outpoint spent twice in block")
	// ErrDuplicateCreate reports a transaction recreating an outpoint that
	// already exists unspent — the historical Bitcoin duplicate-coinbase
	// hazard that BIP30 forbids (overwriting would silently destroy the
	// earlier output's value).
	ErrDuplicateCreate = errors.New("utxo: outpoint created twice")
)
