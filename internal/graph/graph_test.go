package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewUndirected(0)
	if ccs := g.ConnectedComponents(); len(ccs) != 0 {
		t.Fatalf("empty graph has %d components, want 0", len(ccs))
	}
	st := Stats(nil)
	if st.Largest != 0 || st.NumComponents != 0 || st.Singletons != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := NewUndirected(5)
	ccs := g.ConnectedComponents()
	if len(ccs) != 5 {
		t.Fatalf("5 isolated nodes give %d components, want 5", len(ccs))
	}
	st := Stats(ccs)
	if st.Largest != 1 || st.Singletons != 5 {
		t.Fatalf("stats = %+v, want largest 1 singletons 5", st)
	}
}

func TestSingleEdge(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 2)
	ccs := Canonicalize(g.ConnectedComponents())
	want := [][]int{{0, 2}, {1}}
	if !reflect.DeepEqual(ccs, want) {
		t.Fatalf("components = %v, want %v", ccs, want)
	}
}

func TestSelfLoop(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(1, 1)
	ccs := g.ConnectedComponents()
	if len(ccs) != 2 {
		t.Fatalf("self loop should not merge components: %v", ccs)
	}
	st := Stats(ccs)
	if st.Largest != 1 {
		t.Fatalf("self loop inflated component size: %+v", st)
	}
}

func TestParallelEdges(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	ccs := g.ConnectedComponents()
	if len(ccs) != 1 || len(ccs[0]) != 2 {
		t.Fatalf("parallel edges broke components: %v", ccs)
	}
}

func TestChainComponent(t *testing.T) {
	// A path of 18 transactions, like the Bitcoin block 500000 sequence in
	// the paper's Figure 6: one component of size 18.
	g := NewUndirected(18)
	for i := 0; i < 17; i++ {
		g.AddEdge(i, i+1)
	}
	st := Stats(g.ConnectedComponents())
	if st.NumComponents != 1 || st.Largest != 18 {
		t.Fatalf("chain stats = %+v, want 1 component of size 18", st)
	}
}

func TestBFSDiscoveryOrder(t *testing.T) {
	// Star centred at 0: BFS from 0 must list 0 first, then the leaves.
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ccs := g.ConnectedComponents()
	if len(ccs) != 1 {
		t.Fatalf("star has %d components", len(ccs))
	}
	if ccs[0][0] != 0 {
		t.Fatalf("BFS order should start at node 0, got %v", ccs[0])
	}
	if len(ccs[0]) != 4 {
		t.Fatalf("star component has %d nodes, want 4", len(ccs[0]))
	}
}

func TestGrow(t *testing.T) {
	g := NewUndirected(0)
	g.AddEdge(5, 9)
	if g.Len() != 10 {
		t.Fatalf("Len = %d after AddEdge(5,9), want 10", g.Len())
	}
	if g.Degree(5) != 1 || g.Degree(9) != 1 || g.Degree(0) != 0 {
		t.Fatal("degrees wrong after growth")
	}
	if g.Degree(-1) != 0 || g.Degree(100) != 0 {
		t.Fatal("out-of-range degree should be 0")
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Count() != 6 {
		t.Fatalf("Count = %d, want 6", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union should not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 2)
	if uf.Count() != 3 {
		t.Fatalf("Count = %d, want 3", uf.Count())
	}
	if !uf.Connected(1, 3) {
		t.Fatal("1 and 3 should be connected via 0-2")
	}
	if uf.Connected(0, 5) {
		t.Fatal("0 and 5 should not be connected")
	}
	if uf.SetSize(3) != 4 {
		t.Fatalf("SetSize(3) = %d, want 4", uf.SetSize(3))
	}
	if uf.Len() != 6 {
		t.Fatalf("Len = %d, want 6", uf.Len())
	}
}

func TestUnionFindComponents(t *testing.T) {
	uf := NewUnionFind(5)
	uf.Union(4, 2)
	uf.Union(0, 3)
	got := uf.Components()
	want := [][]int{{0, 3}, {1}, {2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
}

// TestBFSMatchesUnionFind is the central cross-check: the paper's BFS
// algorithm (Figure 3) and an independent union-find must produce identical
// component decompositions on random graphs.
func TestBFSMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		m := rng.Intn(2 * n)
		g := NewUndirected(n)
		uf := NewUnionFind(n)
		for e := 0; e < m; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(a, b)
			uf.Union(a, b)
		}
		bfs := Canonicalize(g.ConnectedComponents())
		ufc := Canonicalize(uf.Components())
		if !reflect.DeepEqual(bfs, ufc) {
			t.Fatalf("trial %d (n=%d m=%d): BFS %v != UF %v", trial, n, m, bfs, ufc)
		}
	}
}

// TestComponentSizesInvariant checks that component sizes always sum to the
// node count, with quick-generated edge lists.
func TestComponentSizesInvariant(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 64
		g := NewUndirected(n)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(int(edges[i]%n), int(edges[i+1]%n))
		}
		st := Stats(g.ConnectedComponents())
		total := 0
		for _, s := range st.Sizes {
			total += s
		}
		return total == n && st.NumComponents == len(st.Sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStatsSorted checks Sizes is descending and Largest/Singletons agree
// with it.
func TestStatsSorted(t *testing.T) {
	g := NewUndirected(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	st := Stats(g.ConnectedComponents())
	want := []int{3, 2, 1, 1}
	if !reflect.DeepEqual(st.Sizes, want) {
		t.Fatalf("Sizes = %v, want %v", st.Sizes, want)
	}
	if st.Largest != 3 || st.Singletons != 2 || st.NumComponents != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner[string](4)
	a := in.ID("alpha")
	b := in.ID("beta")
	if a == b {
		t.Fatal("distinct keys got same ID")
	}
	if got := in.ID("alpha"); got != a {
		t.Fatalf("re-interning changed ID: %d vs %d", got, a)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if in.Key(a) != "alpha" || in.Key(b) != "beta" {
		t.Fatal("Key lookup mismatch")
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Fatal("Lookup(beta) failed")
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Fatal("Lookup(gamma) should miss")
	}
}

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner[int](0)
	for i := 0; i < 100; i++ {
		if id := in.ID(i * 7); id != i {
			t.Fatalf("IDs not dense: got %d for %dth key", id, i)
		}
	}
}

func BenchmarkConnectedComponentsBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	g := NewUndirected(n)
	for e := 0; e < n; e++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	type edge struct{ a, b int }
	edges := make([]edge, n)
	for i := range edges {
		edges[i] = edge{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uf := NewUnionFind(n)
		for _, e := range edges {
			uf.Union(e.a, e.b)
		}
	}
}
