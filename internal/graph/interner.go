package graph

// Interner maps arbitrary comparable keys (transaction hashes, addresses) to
// dense integer node IDs. The TDG builders in package core intern every
// endpoint they see and feed the resulting IDs to Undirected / UnionFind.
type Interner[K comparable] struct {
	ids  map[K]int
	keys []K
}

// NewInterner returns an empty interner. The capacity hint sizes the
// internal map.
func NewInterner[K comparable](capacity int) *Interner[K] {
	return &Interner[K]{
		ids:  make(map[K]int, capacity),
		keys: make([]K, 0, capacity),
	}
}

// ID returns the dense ID for key, assigning the next free ID on first use.
func (in *Interner[K]) ID(key K) int {
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := len(in.keys)
	in.ids[key] = id
	in.keys = append(in.keys, key)
	return id
}

// Lookup returns the ID for key without assigning one, and whether it was
// present.
func (in *Interner[K]) Lookup(key K) (int, bool) {
	id, ok := in.ids[key]
	return id, ok
}

// Key returns the key for a previously assigned ID.
func (in *Interner[K]) Key(id int) K { return in.keys[id] }

// Len returns the number of interned keys.
func (in *Interner[K]) Len() int { return len(in.keys) }
