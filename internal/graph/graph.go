// Package graph provides the graph algorithms underlying the transaction
// dependency graph (TDG) analysis of the paper: an undirected graph with
// dense integer node IDs, connected components via breadth-first search (a
// faithful port of the JavaScript UDF in the paper's Figure 3), and a
// union-find structure used as an independently implemented cross-check.
//
// The TDG construction in package core interns transaction hashes or
// addresses into dense IDs and then runs these algorithms; keeping the
// algorithms ID-based avoids re-implementing them per key type.
package graph

import "sort"

// Undirected is an undirected graph over nodes 0..n-1 represented with
// adjacency lists. The zero value is an empty graph; use NewUndirected or
// Grow to size it.
type Undirected struct {
	adj [][]int32
}

// NewUndirected returns a graph with n isolated nodes.
func NewUndirected(n int) *Undirected {
	return &Undirected{adj: make([][]int32, n)}
}

// Len returns the number of nodes.
func (g *Undirected) Len() int { return len(g.adj) }

// Grow ensures the graph has at least n nodes.
func (g *Undirected) Grow(n int) {
	for len(g.adj) < n {
		g.adj = append(g.adj, nil)
	}
}

// AddEdge adds an undirected edge between a and b, growing the graph if
// needed. Self-loops are recorded once (a single adjacency entry); parallel
// edges are kept, which — as in the paper's UDF — does not change the
// component structure.
func (g *Undirected) AddEdge(a, b int) {
	max := a
	if b > max {
		max = b
	}
	g.Grow(max + 1)
	if a == b {
		g.adj[a] = append(g.adj[a], int32(a))
		return
	}
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
}

// Neighbors returns the adjacency list of node a. The returned slice is
// owned by the graph and must not be modified.
func (g *Undirected) Neighbors(a int) []int32 {
	if a < 0 || a >= len(g.adj) {
		return nil
	}
	return g.adj[a]
}

// Degree returns the number of adjacency entries of node a (parallel edges
// counted individually).
func (g *Undirected) Degree(a int) int { return len(g.Neighbors(a)) }

// ConnectedComponents computes the connected components of the graph using
// breadth-first search. It is a faithful port of the JavaScript UDF shown in
// the paper's Figure 3: an outer loop over all nodes, an expanding frontier
// set, and a visited map. Each component is returned as a slice of node IDs;
// components are ordered by their smallest (first-visited) node and each
// component lists its nodes in BFS-discovery order, exactly as the ccs array
// in the paper is filled.
func (g *Undirected) ConnectedComponents() [][]int {
	visited := make([]bool, len(g.adj))
	var ccs [][]int
	for i := range g.adj {
		if visited[i] {
			continue
		}
		// Mirrors Figure 3: cc = [txs[i]]; frontier = neighbors(txs[i]).
		cc := []int{i}
		visited[i] = true
		frontier := make(map[int32]struct{})
		for _, nb := range g.adj[i] {
			if !visited[nb] {
				frontier[nb] = struct{}{}
			}
		}
		for len(frontier) > 0 {
			next := make(map[int32]struct{})
			for nb := range frontier {
				cc = append(cc, int(nb))
				visited[nb] = true
			}
			for nb := range frontier {
				for _, nnb := range g.adj[nb] {
					if !visited[nnb] {
						next[nnb] = struct{}{}
					}
				}
			}
			frontier = next
		}
		ccs = append(ccs, cc)
	}
	return ccs
}

// ComponentStats summarises a component decomposition the way the paper's
// metrics consume it.
type ComponentStats struct {
	// NumComponents is the number of connected components.
	NumComponents int
	// Largest is the size of the largest connected component (the paper's
	// absolute LCC size L). Zero for an empty graph.
	Largest int
	// Singletons is the number of components of size one (unconflicted
	// nodes in the paper's terminology).
	Singletons int
	// Sizes holds all component sizes in descending order.
	Sizes []int
}

// Stats computes summary statistics for a component decomposition as
// returned by ConnectedComponents.
func Stats(ccs [][]int) ComponentStats {
	st := ComponentStats{NumComponents: len(ccs), Sizes: make([]int, 0, len(ccs))}
	for _, cc := range ccs {
		n := len(cc)
		st.Sizes = append(st.Sizes, n)
		if n > st.Largest {
			st.Largest = n
		}
		if n == 1 {
			st.Singletons++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(st.Sizes)))
	return st
}

// UnionFind is a disjoint-set forest with union by size and path
// compression. It is used as an independent implementation of connectivity
// to property-test the BFS port, and by the scheduler to group transactions.
type UnionFind struct {
	parent []int32
	size   []int32
	count  int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing a and b and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	u.size[ra] += u.size[rb]
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// SetSize returns the size of the set containing x.
func (u *UnionFind) SetSize(x int) int { return int(u.size[u.Find(x)]) }

// Components returns the disjoint sets as slices of element IDs. Components
// are ordered by their smallest element, with elements ascending, so the
// output is canonical and comparable across implementations.
func (u *UnionFind) Components() [][]int {
	byRoot := make(map[int][]int)
	order := make([]int, 0)
	for i := range u.parent {
		r := u.Find(i)
		if _, seen := byRoot[r]; !seen {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	sort.Slice(order, func(i, j int) bool { return byRoot[order[i]][0] < byRoot[order[j]][0] })
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}

// Canonicalize sorts each component's node list ascending and orders
// components by their smallest node, allowing decompositions from different
// algorithms to be compared with reflect.DeepEqual.
func Canonicalize(ccs [][]int) [][]int {
	out := make([][]int, len(ccs))
	for i, cc := range ccs {
		c := make([]int, len(cc))
		copy(c, cc)
		sort.Ints(c)
		out[i] = c
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) == 0 || len(out[j]) == 0 {
			return len(out[i]) < len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
