package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHashDataDeterministic(t *testing.T) {
	a := HashData([]byte("hello"), []byte("world"))
	b := HashData([]byte("helloworld"))
	if a != b {
		t.Fatalf("concatenation should not affect hash: %s vs %s", a, b)
	}
	c := HashData([]byte("hello"), []byte("World"))
	if a == c {
		t.Fatalf("different inputs must hash differently")
	}
}

func TestHashUint64Distinct(t *testing.T) {
	seen := make(map[Hash]struct{})
	for i := uint64(0); i < 1000; i++ {
		h := HashUint64("tx", i)
		if _, dup := seen[h]; dup {
			t.Fatalf("duplicate hash for index %d", i)
		}
		seen[h] = struct{}{}
	}
	if HashUint64("tx", 1) == HashUint64("block", 1) {
		t.Fatal("tag must namespace hashes")
	}
	if HashUint64("tx", 1, 2) == HashUint64("tx", 2, 1) {
		t.Fatal("argument order must matter")
	}
}

func TestAddressFromUint64Distinct(t *testing.T) {
	seen := make(map[Address]struct{})
	for i := uint64(0); i < 1000; i++ {
		a := AddressFromUint64("user", i)
		if _, dup := seen[a]; dup {
			t.Fatalf("duplicate address for index %d", i)
		}
		seen[a] = struct{}{}
	}
}

func TestZeroValues(t *testing.T) {
	if !ZeroHash.IsZero() {
		t.Error("ZeroHash.IsZero() = false")
	}
	if !ZeroAddress.IsZero() {
		t.Error("ZeroAddress.IsZero() = false")
	}
	if HashUint64("x", 1).IsZero() {
		t.Error("derived hash should not be zero")
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	h := HashUint64("roundtrip", 42)
	parsed, err := ParseHash(h.String())
	if err != nil {
		t.Fatalf("ParseHash(%q): %v", h.String(), err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, h)
	}
	// 0x prefix is accepted too.
	parsed, err = ParseHash("0x" + h.String())
	if err != nil {
		t.Fatalf("ParseHash with 0x: %v", err)
	}
	if parsed != h {
		t.Fatal("0x round trip mismatch")
	}
}

func TestAddressStringRoundTrip(t *testing.T) {
	a := AddressFromUint64("roundtrip", 7)
	s := a.String()
	if !strings.HasPrefix(s, "0x") {
		t.Fatalf("address string %q should have 0x prefix", s)
	}
	parsed, err := ParseAddress(s)
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", s, err)
	}
	if parsed != a {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, a)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseHash("zzzz"); err == nil {
		t.Error("ParseHash should reject non-hex")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Error("ParseHash should reject short input")
	}
	if _, err := ParseAddress("0xdeadbeef"); err == nil {
		t.Error("ParseAddress should reject short input")
	}
}

func TestShortForms(t *testing.T) {
	h, err := ParseHash("1836000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Short(); got != "1836" {
		t.Errorf("Short() = %q, want 1836 (paper Fig. 6 notation)", got)
	}
	a, err := ParseAddress("0x2a65000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Short(); got != "0x2a6" {
		t.Errorf("Short() = %q, want 0x2a6 (paper Fig. 1 notation)", got)
	}
}

func TestBytesAreCopies(t *testing.T) {
	h := HashUint64("copy", 1)
	b := h.Bytes()
	b[0] ^= 0xff
	if h.Bytes()[0] == b[0] {
		t.Error("Hash.Bytes must return a copy")
	}
	a := AddressFromUint64("copy", 1)
	ab := a.Bytes()
	ab[0] ^= 0xff
	if a.Bytes()[0] == ab[0] {
		t.Error("Address.Bytes must return a copy")
	}
}

func TestHashRoundTripProperty(t *testing.T) {
	f := func(raw [HashSize]byte) bool {
		h := Hash(raw)
		parsed, err := ParseHash(h.String())
		return err == nil && parsed == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressRoundTripProperty(t *testing.T) {
	f := func(raw [AddressSize]byte) bool {
		a := Address(raw)
		parsed, err := ParseAddress(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
