// Package types provides the primitive value types shared by every other
// package in txconcur: transaction hashes, account addresses, and the
// deterministic hashing helpers used to derive them.
//
// The types are deliberately tiny value types (fixed-size arrays) so they can
// be used as map keys throughout the dependency-graph code without
// allocation.
package types

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// HashSize is the size of a transaction or block hash in bytes.
const HashSize = 32

// AddressSize is the size of an account address in bytes (Ethereum-style,
// 160 bits).
const AddressSize = 20

// Hash is a 256-bit identifier for transactions and blocks.
type Hash [HashSize]byte

// Address identifies an account (externally owned or contract) in the
// account-based data model.
type Address [AddressSize]byte

// ZeroHash is the all-zero hash. It is used as the "null" sender of coinbase
// transactions, mirroring the null address in the paper's Figure 1.
var ZeroHash Hash

// ZeroAddress is the all-zero address, used as the coinbase sender ("null"
// node in the paper's TDG figures).
var ZeroAddress Address

// HashData returns the SHA-256 hash of the concatenation of the given byte
// slices.
func HashData(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// HashUint64 returns a hash deterministically derived from a domain tag and
// a sequence of integers. The workload generators use it to mint unique
// transaction hashes without tracking nonces.
func HashUint64(tag string, vs ...uint64) Hash {
	buf := make([]byte, 0, len(tag)+8*len(vs))
	buf = append(buf, tag...)
	var tmp [8]byte
	for _, v := range vs {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	return HashData(buf)
}

// AddressFromUint64 derives a deterministic address from a domain tag and an
// index. Two distinct (tag, index) pairs yield distinct addresses with
// overwhelming probability.
func AddressFromUint64(tag string, v uint64) Address {
	h := HashUint64(tag, v)
	var a Address
	copy(a[:], h[HashSize-AddressSize:])
	return a
}

// String returns the full hex encoding of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first four hex digits of the hash, the notation used in
// the paper's Figure 6.
func (h Hash) Short() string { return hex.EncodeToString(h[:2]) }

// IsZero reports whether the hash is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns a fresh copy of the hash contents.
func (h Hash) Bytes() []byte {
	out := make([]byte, HashSize)
	copy(out, h[:])
	return out
}

// String returns the 0x-prefixed hex encoding of the address, the notation
// used by Ethereum block explorers and the paper's Figure 1.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// Short returns "0x" plus the first three hex digits, matching the labels in
// the paper's Figure 1 (e.g. "0x2a6").
func (a Address) Short() string { return "0x" + hex.EncodeToString(a[:2])[:3] }

// IsZero reports whether the address is the zero (coinbase/null) address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Less reports whether a orders before b byte-lexicographically — the
// deterministic iteration order used wherever address sets feed
// order-sensitive computations (heat planning, shard migration).
func (a Address) Less(b Address) bool { return bytes.Compare(a[:], b[:]) < 0 }

// Bytes returns a fresh copy of the address contents.
func (a Address) Bytes() []byte {
	out := make([]byte, AddressSize)
	copy(out, a[:])
	return out
}

// MarshalJSON encodes the hash as a hex string.
func (h Hash) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes a hex string (with or without 0x prefix).
func (h *Hash) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("types: hash: %w", err)
	}
	parsed, err := ParseHash(s)
	if err != nil {
		return err
	}
	*h = parsed
	return nil
}

// MarshalJSON encodes the address as a 0x-prefixed hex string.
func (a Address) MarshalJSON() ([]byte, error) {
	return []byte(`"` + a.String() + `"`), nil
}

// UnmarshalJSON decodes a hex string (with or without 0x prefix).
func (a *Address) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("types: address: %w", err)
	}
	parsed, err := ParseAddress(s)
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// ErrBadHexLength reports a hex string whose decoded length does not match
// the target type.
var ErrBadHexLength = errors.New("types: hex string has wrong length")

// ParseHash decodes a hex string (with or without 0x prefix) into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := parseHex(s, HashSize)
	if err != nil {
		return h, fmt.Errorf("parse hash: %w", err)
	}
	copy(h[:], b)
	return h, nil
}

// ParseAddress decodes a hex string (with or without 0x prefix) into an
// Address.
func ParseAddress(s string) (Address, error) {
	var a Address
	b, err := parseHex(s, AddressSize)
	if err != nil {
		return a, fmt.Errorf("parse address: %w", err)
	}
	copy(a[:], b)
	return a, nil
}

func parseHex(s string, want int) ([]byte, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(b) != want {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadHexLength, len(b), want)
	}
	return b, nil
}
