package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"txconcur/internal/wal"
)

// TestTruncatedHeader: every proper prefix of the header region is
// rejected as a bad header, never misread as an empty history.
func TestTruncatedHeader(t *testing.T) {
	blocks := generateUTXO(t, 2)
	var buf bytes.Buffer
	if err := WriteUTXO(&buf, "X", blocks); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The gob header is the first value in the stream; cut inside it.
	for cut := 0; cut < 24 && cut < len(full); cut += 3 {
		_, _, err := ReadUTXO(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrBadHeader) {
			t.Fatalf("cut %d: %v, want ErrBadHeader", cut, err)
		}
	}
}

// TestVersionRejected: a future format version is refused with ErrVersion.
func TestVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(Header{Magic: magic, Version: version + 1, Kind: KindUTXO}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadUTXO(&buf); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
}

// TestShortBlockRecord: a stream cut anywhere inside the block records
// fails with a block-scoped error — never a silent short read.
func TestShortBlockRecord(t *testing.T) {
	ab, ar := generateAccount(t, 3)
	var buf bytes.Buffer
	if err := WriteAccount(&buf, "X", ab, ar); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Find where the records start: the header alone ends the prefix that
	// still decodes as a header.
	var hdr bytes.Buffer
	if err := gob.NewEncoder(&hdr).Encode(Header{Magic: magic, Version: version, Kind: KindAccount, Chain: "X", Blocks: 3}); err != nil {
		t.Fatal(err)
	}
	for cut := hdr.Len() + 1; cut < len(full); cut += 97 {
		_, _, _, err := ReadAccount(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut %d: truncated record accepted", cut)
		}
		if !strings.Contains(err.Error(), "block") {
			t.Fatalf("cut %d: error %q not block-scoped", cut, err)
		}
	}
}

// TestAtomicSaveDecodeAfterKill: crash the atomic account save at every
// mutating filesystem operation; whatever survives must decode as either
// the old history or the new one, complete — the crash can cost the save,
// never the file.
func TestAtomicSaveDecodeAfterKill(t *testing.T) {
	oldB, oldR := generateAccount(t, 2)
	newB, newR := generateAccount(t, 3)
	var oldBytes bytes.Buffer
	if err := WriteAccount(&oldBytes, "old", oldB, oldR); err != nil {
		t.Fatal(err)
	}
	save := func(fsys wal.FS) error {
		return wal.WriteFileAtomic(fsys, "d/h.hist", func(w io.Writer) error {
			return WriteAccount(w, "new", newB, newR)
		})
	}
	setup := func() *wal.MemFS {
		mem := wal.NewMemFS()
		mem.Install("d/h.hist", oldBytes.Bytes())
		return mem
	}
	clean := wal.NewFaultFS(setup())
	if err := save(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	for op := 0; op < total; op++ {
		for _, keep := range []int{0, 11} {
			mem := setup()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: wal.Crash})
			saveErr := save(ff)
			img := mem.CrashImage(keep)
			data, ok := img.ReadFileVolatile("d/h.hist")
			if !ok {
				t.Fatalf("op %d keep %d: history vanished", op, keep)
			}
			chain, blocks, _, err := ReadAccount(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("op %d keep %d: crash image does not decode: %v", op, keep, err)
			}
			switch chain {
			case "old":
				if len(blocks) != len(oldB) {
					t.Fatalf("op %d keep %d: old history truncated to %d blocks", op, keep, len(blocks))
				}
			case "new":
				if len(blocks) != len(newB) {
					t.Fatalf("op %d keep %d: new history truncated to %d blocks", op, keep, len(blocks))
				}
				if saveErr != nil && op < total-1 {
					// New content may legitimately be visible once the
					// rename happened, even if a later op crashed.
					continue
				}
			default:
				t.Fatalf("op %d keep %d: decoded unknown chain %q", op, keep, chain)
			}
		}
	}
}

// TestAtomicSaveOnDisk: the real-filesystem savers replace content in
// place and leave no temp residue, and a stale temp file from a previous
// crash does not break a later save or load.
func TestAtomicSaveOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.hist")
	ab, ar := generateAccount(t, 2)
	if err := SaveAccountFile(path, "first", ab, ar); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash leftover from an interrupted earlier save.
	if err := os.WriteFile(path+".tmp", []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ab2, ar2 := generateAccount(t, 3)
	if err := SaveAccountFile(path, "second", ab2, ar2); err != nil {
		t.Fatal(err)
	}
	chain, blocks, _, err := LoadAccountFile(path)
	if err != nil || chain != "second" || len(blocks) != 3 {
		t.Fatalf("load after replace: %q %d %v", chain, len(blocks), err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp residue %s left behind", e.Name())
		}
	}
}
