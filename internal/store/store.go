// Package store persists generated chain histories to disk and loads them
// back, so expensive workload generation (a full seven-chain run) happens
// once and the analysis, executor and benchmark tooling can replay it. The
// format is a gob stream with a versioned header, one file per chain.
package store

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"txconcur/internal/account"
	"txconcur/internal/utxo"
	"txconcur/internal/wal"
)

// magic identifies txconcur history files; version gates format changes.
const (
	magic   = "txconcur-history"
	version = 1
)

// Kind distinguishes the two data models in the header.
type Kind int

// History kinds. Values start at one so the zero value is invalid.
const (
	KindUTXO Kind = iota + 1
	KindAccount
)

// Header opens every history file.
type Header struct {
	Magic   string
	Version int
	Kind    Kind
	Chain   string
	Blocks  int
}

// Store errors.
var (
	// ErrBadHeader reports a missing or foreign header.
	ErrBadHeader = errors.New("store: not a txconcur history file")
	// ErrVersion reports an unsupported format version.
	ErrVersion = errors.New("store: unsupported history version")
	// ErrKind reports a history of the wrong data model.
	ErrKind = errors.New("store: history has wrong kind")
)

// utxoRecord is the gob payload for one UTXO block. Transactions are
// flattened because utxo.Transaction caches its ID privately.
type utxoRecord struct {
	Height   uint64
	PrevHash [32]byte
	Time     int64
	Txs      []utxoTxRecord
}

type utxoTxRecord struct {
	Inputs  []utxo.TxIn
	Outputs []utxo.TxOut
}

// acctRecord is the gob payload for one account block with its receipts.
type acctRecord struct {
	Block    *account.Block
	Receipts []*account.Receipt
}

// WriteUTXO writes a UTXO history to w.
func WriteUTXO(w io.Writer, chain string, blocks []*utxo.Block) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	hdr := Header{Magic: magic, Version: version, Kind: KindUTXO, Chain: chain, Blocks: len(blocks)}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("store: header: %w", err)
	}
	for i, b := range blocks {
		rec := utxoRecord{Height: b.Height, PrevHash: b.PrevHash, Time: b.Time}
		for _, tx := range b.Txs {
			rec.Txs = append(rec.Txs, utxoTxRecord{Inputs: tx.Inputs, Outputs: tx.Outputs})
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("store: block %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadUTXO reads a UTXO history from r.
func ReadUTXO(r io.Reader) (string, []*utxo.Block, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	hdr, err := readHeader(dec, KindUTXO)
	if err != nil {
		return "", nil, err
	}
	blocks := make([]*utxo.Block, 0, hdr.Blocks)
	for i := 0; i < hdr.Blocks; i++ {
		var rec utxoRecord
		if err := dec.Decode(&rec); err != nil {
			return "", nil, fmt.Errorf("store: block %d: %w", i, err)
		}
		b := &utxo.Block{Height: rec.Height, PrevHash: rec.PrevHash, Time: rec.Time}
		for _, tr := range rec.Txs {
			b.Txs = append(b.Txs, utxo.NewTransaction(tr.Inputs, tr.Outputs))
		}
		blocks = append(blocks, b)
	}
	return hdr.Chain, blocks, nil
}

// WriteAccount writes an account history (blocks with receipts) to w.
func WriteAccount(w io.Writer, chain string, blocks []*account.Block, receipts [][]*account.Receipt) error {
	if len(blocks) != len(receipts) {
		return fmt.Errorf("store: %d blocks but %d receipt sets", len(blocks), len(receipts))
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	hdr := Header{Magic: magic, Version: version, Kind: KindAccount, Chain: chain, Blocks: len(blocks)}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("store: header: %w", err)
	}
	for i := range blocks {
		if err := enc.Encode(acctRecord{Block: blocks[i], Receipts: receipts[i]}); err != nil {
			return fmt.Errorf("store: block %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadAccount reads an account history from r.
func ReadAccount(r io.Reader) (string, []*account.Block, [][]*account.Receipt, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	hdr, err := readHeader(dec, KindAccount)
	if err != nil {
		return "", nil, nil, err
	}
	blocks := make([]*account.Block, 0, hdr.Blocks)
	receipts := make([][]*account.Receipt, 0, hdr.Blocks)
	for i := 0; i < hdr.Blocks; i++ {
		var rec acctRecord
		if err := dec.Decode(&rec); err != nil {
			return "", nil, nil, fmt.Errorf("store: block %d: %w", i, err)
		}
		blocks = append(blocks, rec.Block)
		receipts = append(receipts, rec.Receipts)
	}
	return hdr.Chain, blocks, receipts, nil
}

func readHeader(dec *gob.Decoder, want Kind) (Header, error) {
	var hdr Header
	if err := dec.Decode(&hdr); err != nil {
		return hdr, fmt.Errorf("%w: %w", ErrBadHeader, err)
	}
	if hdr.Magic != magic {
		return hdr, ErrBadHeader
	}
	if hdr.Version != version {
		return hdr, fmt.Errorf("%w: %d", ErrVersion, hdr.Version)
	}
	if hdr.Kind != want {
		return hdr, fmt.Errorf("%w: have %d, want %d", ErrKind, hdr.Kind, want)
	}
	return hdr, nil
}

// SaveUTXOFile writes a UTXO history to path atomically (temp file,
// fsync, rename, directory fsync): a crash mid-save leaves the previous
// file intact, never a truncated history.
func SaveUTXOFile(path, chain string, blocks []*utxo.Block) error {
	return wal.WriteFileAtomic(wal.OS{}, path, func(w io.Writer) error {
		return WriteUTXO(w, chain, blocks)
	})
}

// LoadUTXOFile reads a UTXO history from path.
func LoadUTXOFile(path string) (string, []*utxo.Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	return ReadUTXO(f)
}

// SaveAccountFile writes an account history to path atomically, with the
// same crash guarantee as SaveUTXOFile.
func SaveAccountFile(path, chain string, blocks []*account.Block, receipts [][]*account.Receipt) error {
	return wal.WriteFileAtomic(wal.OS{}, path, func(w io.Writer) error {
		return WriteAccount(w, chain, blocks, receipts)
	})
}

// LoadAccountFile reads an account history from path.
func LoadAccountFile(path string) (string, []*account.Block, [][]*account.Receipt, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, nil, err
	}
	defer f.Close()
	return ReadAccount(f)
}
