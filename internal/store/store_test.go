package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/utxo"
)

func generateUTXO(t *testing.T, blocks int) []*utxo.Block {
	t.Helper()
	g, err := chainsim.NewUTXOGen(chainsim.DogecoinProfile(), blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	var out []*utxo.Block
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, blk)
	}
	return out
}

func generateAccount(t *testing.T, blocks int) ([]*account.Block, [][]*account.Receipt) {
	t.Helper()
	g, err := chainsim.NewAcctGen(chainsim.EthereumClassicProfile(), blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	var bs []*account.Block
	var rs [][]*account.Receipt
	for {
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		bs = append(bs, blk)
		rs = append(rs, receipts)
	}
	return bs, rs
}

func TestUTXORoundTrip(t *testing.T) {
	blocks := generateUTXO(t, 5)
	var buf bytes.Buffer
	if err := WriteUTXO(&buf, "Dogecoin", blocks); err != nil {
		t.Fatal(err)
	}
	chain, got, err := ReadUTXO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if chain != "Dogecoin" || len(got) != len(blocks) {
		t.Fatalf("chain %q, %d blocks", chain, len(got))
	}
	for i := range blocks {
		// Block hashes cover every transaction ID: equality means the
		// round trip preserved the exact content.
		if got[i].Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch", i)
		}
		a := core.MeasureUTXOBlock(blocks[i])
		b := core.MeasureUTXOBlock(got[i])
		if a != b {
			t.Fatalf("block %d metrics changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestAccountRoundTrip(t *testing.T) {
	blocks, receipts := generateAccount(t, 5)
	var buf bytes.Buffer
	if err := WriteAccount(&buf, "Ethereum Classic", blocks, receipts); err != nil {
		t.Fatal(err)
	}
	chain, gotB, gotR, err := ReadAccount(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if chain != "Ethereum Classic" || len(gotB) != len(blocks) {
		t.Fatalf("chain %q, %d blocks", chain, len(gotB))
	}
	for i := range blocks {
		if gotB[i].Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch", i)
		}
		a := core.MeasureAccountBlock(blocks[i], receipts[i])
		b := core.MeasureAccountBlock(gotB[i], gotR[i])
		if a != b {
			t.Fatalf("block %d metrics changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blocks := generateUTXO(t, 3)
	upath := filepath.Join(dir, "doge.hist")
	if err := SaveUTXOFile(upath, "Dogecoin", blocks); err != nil {
		t.Fatal(err)
	}
	if _, got, err := LoadUTXOFile(upath); err != nil || len(got) != len(blocks) {
		t.Fatalf("load: %d blocks, %v", len(got), err)
	}

	ab, ar := generateAccount(t, 3)
	apath := filepath.Join(dir, "etc.hist")
	if err := SaveAccountFile(apath, "Ethereum Classic", ab, ar); err != nil {
		t.Fatal(err)
	}
	if _, gb, gr, err := LoadAccountFile(apath); err != nil || len(gb) != len(ab) || len(gr) != len(ar) {
		t.Fatalf("load: %d/%d, %v", len(gb), len(gr), err)
	}
}

func TestHeaderValidation(t *testing.T) {
	// Wrong kind.
	blocks := generateUTXO(t, 2)
	var buf bytes.Buffer
	if err := WriteUTXO(&buf, "X", blocks); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadAccount(&buf); !errors.Is(err, ErrKind) {
		t.Fatalf("kind: %v", err)
	}
	// Garbage.
	if _, _, err := ReadUTXO(bytes.NewBufferString("not a gob stream")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("garbage: %v", err)
	}
	// Truncated stream.
	buf.Reset()
	if err := WriteUTXO(&buf, "X", blocks); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()/2])
	if _, _, err := ReadUTXO(trunc); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Mismatched receipts length.
	if err := WriteAccount(&buf, "X", make([]*account.Block, 2), make([][]*account.Receipt, 1)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	// Missing file.
	if _, _, err := LoadUTXOFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}
