package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestReadYourWrites(t *testing.T) {
	s := NewStore[string, int]()
	tx := s.Begin()
	if err := tx.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Read("a")
	if err != nil || !ok || v != 1 {
		t.Fatalf("read-your-write: %v %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("committed value = %v %v", v, ok)
	}
}

func TestIsolationUntilCommit(t *testing.T) {
	s := NewStore[string, int]()
	tx := s.Begin()
	if err := tx.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("uncommitted write visible")
	}
	tx.Abort()
	if _, ok := s.Get("a"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestConflictDetection(t *testing.T) {
	s := NewStore[string, int]()
	s.Set("a", 0)

	t1 := s.Begin()
	if _, _, err := t1.Read("a"); err != nil {
		t.Fatal(err)
	}
	// A competing writer commits between t1's read and commit.
	t2 := s.Begin()
	if err := t2.Write("a", 99); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := t1.Write("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit = %v, want ErrConflict", err)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("conflicted transaction's write applied")
	}
}

func TestWriteOnlyNoConflict(t *testing.T) {
	// Blind writes never conflict (last writer wins), as in TL2.
	s := NewStore[string, int]()
	t1 := s.Begin()
	t2 := s.Begin()
	if err := t1.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); v != 2 {
		t.Fatalf("a = %d, want 2", v)
	}
}

func TestDisjointTxsCommit(t *testing.T) {
	s := NewStore[string, int]()
	s.Set("a", 1)
	s.Set("b", 2)
	t1 := s.Begin()
	t2 := s.Begin()
	v1, _, _ := t1.Read("a")
	v2, _, _ := t2.Read("b")
	if err := t1.Write("a", v1+10); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("b", v2+10); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 (disjoint) : %v", err)
	}
}

func TestFinishedTxRejected(t *testing.T) {
	s := NewStore[string, int]()
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Read("a"); !errors.Is(err, ErrFinished) {
		t.Fatalf("read after commit: %v", err)
	}
	if err := tx.Write("a", 1); !errors.Is(err, ErrFinished) {
		t.Fatalf("write after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestReadWriteSets(t *testing.T) {
	s := NewStore[string, int]()
	s.Set("r", 1)
	tx := s.Begin()
	if _, _, err := tx.Read("r"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("w", 2); err != nil {
		t.Fatal(err)
	}
	if rs := tx.ReadSet(); len(rs) != 1 || rs[0] != "r" {
		t.Fatalf("read set = %v", rs)
	}
	if ws := tx.WriteSet(); len(ws) != 1 || ws[0] != "w" {
		t.Fatalf("write set = %v", ws)
	}
}

func TestStats(t *testing.T) {
	s := NewStore[string, int]()
	s.Set("a", 0)
	t1 := s.Begin()
	if _, _, err := t1.Read("a"); err != nil {
		t.Fatal(err)
	}
	s.Set("a", 1) // invalidate
	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatal(err)
	}
	t2 := s.Begin()
	if err := t2.Write("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	commits, aborts := s.Stats()
	if commits != 1 || aborts != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", commits, aborts)
	}
}

// TestConcurrentCounter is the classic STM smoke test: many goroutines
// increment one counter through Atomically; no increment may be lost.
func TestConcurrentCounter(t *testing.T) {
	s := NewStore[string, int]()
	s.Set("counter", 0)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := Atomically(s, func(tx *Tx[string, int]) error {
					v, _, err := tx.Read("counter")
					if err != nil {
						return err
					}
					return tx.Write("counter", v+1)
				})
				if err != nil {
					t.Errorf("atomically: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := s.Get("counter"); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
}

// TestConcurrentDisjointWorkers: workers on disjoint keys should (almost)
// never abort; the final state must contain every write.
func TestConcurrentDisjointWorkers(t *testing.T) {
	s := NewStore[int, int]()
	const workers = 8
	const keysPer = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				k := w*keysPer + i
				err := Atomically(s, func(tx *Tx[int, int]) error {
					return tx.Write(k, k)
				})
				if err != nil {
					t.Errorf("atomically: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*keysPer {
		t.Fatalf("len = %d, want %d", s.Len(), workers*keysPer)
	}
	for k := 0; k < workers*keysPer; k++ {
		if v, ok := s.Get(k); !ok || v != k {
			t.Fatalf("key %d = %v %v", k, v, ok)
		}
	}
}

func TestAtomicallyPropagatesErrors(t *testing.T) {
	s := NewStore[string, int]()
	sentinel := errors.New("boom")
	err := Atomically(s, func(tx *Tx[string, int]) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
