// Package stm implements a small software transactional memory: a versioned
// key-value store with optimistic transactions (read-set validation at
// commit, buffered writes, abort/retry). It is the concurrency-control
// substrate of the speculative execution engines in package exec, standing
// in for the STM that Dickerson et al. [6] use for smart-contract
// speculation (paper §VI).
//
// The design follows TL2: each key carries a version; a transaction records
// the versions it read and buffers its writes; commit takes the global lock,
// validates that no read key changed, then applies writes and bumps
// versions. Transactions from concurrent goroutines are safe; aborted
// transactions can simply be retried.
//
// Stores built with NewStoreDelta additionally support blind commutative
// writes (Tx.WriteDelta): increments that carry no read dependency, merge
// onto whatever value is committed, and therefore can never be the *cause*
// of the writing transaction's abort — though committing one still bumps
// the key's version, invalidating concurrent readers. A key becomes
// "anchored" once an absolute Write commits to it; a key that only ever
// received deltas holds the accumulated delta relative to whatever base
// state the caller layers the store over (see Tx.ReadBase and RangeCells).
package stm

import (
	"errors"
	"sync"
)

// ErrConflict reports a commit whose read set was invalidated by another
// committed transaction.
var ErrConflict = errors.New("stm: read set invalidated")

// ErrFinished reports use of a transaction after commit or abort.
var ErrFinished = errors.New("stm: transaction already finished")

// ErrNoMerge reports a WriteDelta on a store built without a merge function
// (NewStore instead of NewStoreDelta).
var ErrNoMerge = errors.New("stm: delta write on a store without a merge function")

// cell is one committed value: anchored cells hold an absolute value,
// unanchored cells hold a pure delta accumulated from blind writes.
type cell[V any] struct {
	val      V
	anchored bool
}

// Store is a versioned key-value store supporting optimistic transactions.
// The zero value is not usable; call NewStore.
type Store[K comparable, V any] struct {
	mu      sync.RWMutex
	data    map[K]cell[V]
	version map[K]uint64
	clock   uint64
	commits uint64
	aborts  uint64

	// merge folds a delta onto a value; nil for NewStore stores, which then
	// reject WriteDelta. Immutable after construction.
	merge func(onto, delta V) V
}

// NewStore returns an empty store.
func NewStore[K comparable, V any]() *Store[K, V] {
	return &Store[K, V]{
		data:    make(map[K]cell[V]),
		version: make(map[K]uint64),
	}
}

// NewStoreDelta returns an empty store that additionally accepts blind
// delta writes, merged by merge(onto, delta). merge must be associative and
// commutative across transactions (integer addition is the canonical
// instance): committed deltas fold in commit order, which concurrent
// deltas do not control.
func NewStoreDelta[K comparable, V any](merge func(onto, delta V) V) *Store[K, V] {
	s := NewStore[K, V]()
	s.merge = merge
	return s
}

// Get reads a key outside any transaction (snapshot-free). ok reports an
// anchored value; delta-only keys read as absent (use RangeCells to observe
// them).
func (s *Store[K, V]) Get(k K) (V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.data[k]
	return c.val, ok && c.anchored
}

// Set writes a key outside any transaction, bumping its version.
func (s *Store[K, V]) Set(k K, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	s.data[k] = cell[V]{val: v, anchored: true}
	s.version[k] = s.clock
}

// Len returns the number of keys.
func (s *Store[K, V]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Stats returns the number of committed and aborted transactions.
func (s *Store[K, V]) Stats() (commits, aborts uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits, s.aborts
}

// Range calls fn for every committed key/value pair until fn returns false.
// The iteration order is unspecified; delta-only keys yield their raw
// accumulated delta (use RangeCells to distinguish). fn must not call back
// into the store.
func (s *Store[K, V]) Range(fn func(K, V) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, c := range s.data {
		if !fn(k, c.val) {
			return
		}
	}
}

// RangeCells calls fn for every committed key until fn returns false.
// anchored distinguishes absolute values from pure accumulated deltas that
// the caller must fold onto its own base state. fn must not call back into
// the store.
func (s *Store[K, V]) RangeCells(fn func(k K, val V, anchored bool) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, c := range s.data {
		if !fn(k, c.val, c.anchored) {
			return
		}
	}
}

// Tx is one optimistic transaction. A Tx is not safe for concurrent use by
// multiple goroutines (each worker owns its own transactions).
type Tx[K comparable, V any] struct {
	store    *Store[K, V]
	reads    map[K]uint64
	writes   map[K]V
	deltas   map[K]V
	finished bool
}

// Begin starts a transaction.
func (s *Store[K, V]) Begin() *Tx[K, V] {
	return &Tx[K, V]{
		store:  s,
		reads:  make(map[K]uint64),
		writes: make(map[K]V),
	}
}

// Read returns the value of k as seen by the transaction: its own buffered
// write if present, else the committed anchored value (recording the read
// version). Delta-only committed cells and the transaction's own pending
// deltas are not folded in — they are relative to a base state this store
// does not know; use ReadBase to materialise them.
func (t *Tx[K, V]) Read(k K) (V, bool, error) {
	var zero V
	if t.finished {
		return zero, false, ErrFinished
	}
	if v, ok := t.writes[k]; ok {
		return v, true, nil
	}
	c, _, err := t.readCell(k)
	if err != nil {
		return zero, false, err
	}
	return c.val, c.anchored, nil
}

// ReadBase returns the value of k materialised over base: the committed
// cell (anchored cells replace base, delta-only cells merge onto it), then
// the transaction's own buffered write (replacing), then its own pending
// deltas (merged last). The committed read is version-recorded like Read,
// so a concurrent commit to k — absolute or delta — still invalidates this
// transaction.
func (t *Tx[K, V]) ReadBase(k K, base V) (V, error) {
	if t.finished {
		return base, ErrFinished
	}
	val := base
	if w, ok := t.writes[k]; ok {
		val = w
	} else {
		c, present, err := t.readCell(k)
		if err != nil {
			return base, err
		}
		if present && c.anchored {
			val = c.val
		} else if present {
			val = t.store.merge(val, c.val)
		}
	}
	if d, ok := t.deltas[k]; ok {
		val = t.store.merge(val, d)
	}
	return val, nil
}

// readCell loads k's committed cell, recording and validating the read
// version.
func (t *Tx[K, V]) readCell(k K) (cell[V], bool, error) {
	t.store.mu.RLock()
	c, present := t.store.data[k]
	ver := t.store.version[k]
	t.store.mu.RUnlock()
	if prev, seen := t.reads[k]; seen && prev != ver {
		// The key changed between two of our own reads: doomed.
		return cell[V]{}, false, ErrConflict
	}
	t.reads[k] = ver
	return c, present, nil
}

// Write buffers a write of k.
func (t *Tx[K, V]) Write(k K, v V) error {
	if t.finished {
		return ErrFinished
	}
	t.writes[k] = v
	return nil
}

// WriteDelta buffers a blind commutative increment of k: no read dependency
// is recorded, so this write can never cause the transaction's own abort,
// and concurrent transactions delta-writing the same key all commit. At
// commit the delta merges onto the committed value (bumping the key's
// version, which invalidates concurrent readers of k). Requires a store
// built with NewStoreDelta.
func (t *Tx[K, V]) WriteDelta(k K, d V) error {
	if t.finished {
		return ErrFinished
	}
	if t.store.merge == nil {
		return ErrNoMerge
	}
	if t.deltas == nil {
		t.deltas = make(map[K]V)
	}
	if prev, ok := t.deltas[k]; ok {
		d = t.store.merge(prev, d)
	}
	t.deltas[k] = d
	return nil
}

// ReadSet returns the keys read (excluding write-only keys).
func (t *Tx[K, V]) ReadSet() []K {
	out := make([]K, 0, len(t.reads))
	for k := range t.reads {
		out = append(out, k)
	}
	return out
}

// WriteSet returns the keys written, including delta-written keys.
func (t *Tx[K, V]) WriteSet() []K {
	out := make([]K, 0, len(t.writes)+len(t.deltas))
	for k := range t.writes {
		out = append(out, k)
	}
	for k := range t.deltas {
		if _, dup := t.writes[k]; !dup {
			out = append(out, k)
		}
	}
	return out
}

// Commit validates the read set and atomically applies the writes: absolute
// writes install anchored values, pending deltas merge onto whatever is
// committed (after this transaction's own absolute write to the same key,
// if any). Deltas need no validation — they commute — but they do bump key
// versions, invalidating concurrent readers. On ErrConflict the transaction
// is finished and its writes are discarded; the caller may Begin a fresh
// transaction and retry.
func (t *Tx[K, V]) Commit() error {
	if t.finished {
		return ErrFinished
	}
	t.finished = true
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, ver := range t.reads {
		if s.version[k] != ver {
			s.aborts++
			return ErrConflict
		}
	}
	s.clock++
	for k, v := range t.writes {
		s.data[k] = cell[V]{val: v, anchored: true}
		s.version[k] = s.clock
	}
	for k, d := range t.deltas {
		c, ok := s.data[k]
		if ok {
			c.val = s.merge(c.val, d)
		} else {
			c = cell[V]{val: d}
		}
		s.data[k] = c
		s.version[k] = s.clock
	}
	s.commits++
	return nil
}

// Abort discards the transaction.
func (t *Tx[K, V]) Abort() {
	if !t.finished {
		t.finished = true
		t.store.mu.Lock()
		t.store.aborts++
		t.store.mu.Unlock()
	}
}

// Atomically runs fn inside transactions until one commits, retrying on
// conflict. fn must be safe to re-run.
func Atomically[K comparable, V any](s *Store[K, V], fn func(*Tx[K, V]) error) error {
	for {
		tx := s.Begin()
		if err := fn(tx); err != nil {
			if errors.Is(err, ErrConflict) {
				tx.Abort()
				continue
			}
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
}
