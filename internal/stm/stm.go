// Package stm implements a small software transactional memory: a versioned
// key-value store with optimistic transactions (read-set validation at
// commit, buffered writes, abort/retry). It is the concurrency-control
// substrate of the speculative execution engines in package exec, standing
// in for the STM that Dickerson et al. [6] use for smart-contract
// speculation (paper §VI).
//
// The design follows TL2: each key carries a version; a transaction records
// the versions it read and buffers its writes; commit takes the global lock,
// validates that no read key changed, then applies writes and bumps
// versions. Transactions from concurrent goroutines are safe; aborted
// transactions can simply be retried.
package stm

import (
	"errors"
	"sync"
)

// ErrConflict reports a commit whose read set was invalidated by another
// committed transaction.
var ErrConflict = errors.New("stm: read set invalidated")

// ErrFinished reports use of a transaction after commit or abort.
var ErrFinished = errors.New("stm: transaction already finished")

// Store is a versioned key-value store supporting optimistic transactions.
// The zero value is not usable; call NewStore.
type Store[K comparable, V any] struct {
	mu      sync.RWMutex
	data    map[K]V
	version map[K]uint64
	clock   uint64
	commits uint64
	aborts  uint64
}

// NewStore returns an empty store.
func NewStore[K comparable, V any]() *Store[K, V] {
	return &Store[K, V]{
		data:    make(map[K]V),
		version: make(map[K]uint64),
	}
}

// Get reads a key outside any transaction (snapshot-free).
func (s *Store[K, V]) Get(k K) (V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[k]
	return v, ok
}

// Set writes a key outside any transaction, bumping its version.
func (s *Store[K, V]) Set(k K, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	s.data[k] = v
	s.version[k] = s.clock
}

// Len returns the number of keys.
func (s *Store[K, V]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Stats returns the number of committed and aborted transactions.
func (s *Store[K, V]) Stats() (commits, aborts uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits, s.aborts
}

// Range calls fn for every committed key/value pair until fn returns false.
// The iteration order is unspecified. fn must not call back into the store.
func (s *Store[K, V]) Range(fn func(K, V) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.data {
		if !fn(k, v) {
			return
		}
	}
}

// Tx is one optimistic transaction. A Tx is not safe for concurrent use by
// multiple goroutines (each worker owns its own transactions).
type Tx[K comparable, V any] struct {
	store    *Store[K, V]
	reads    map[K]uint64
	writes   map[K]V
	finished bool
}

// Begin starts a transaction.
func (s *Store[K, V]) Begin() *Tx[K, V] {
	return &Tx[K, V]{
		store:  s,
		reads:  make(map[K]uint64),
		writes: make(map[K]V),
	}
}

// Read returns the value of k as seen by the transaction: its own buffered
// write if present, else the committed value (recording the read version).
func (t *Tx[K, V]) Read(k K) (V, bool, error) {
	var zero V
	if t.finished {
		return zero, false, ErrFinished
	}
	if v, ok := t.writes[k]; ok {
		return v, true, nil
	}
	t.store.mu.RLock()
	v, ok := t.store.data[k]
	ver := t.store.version[k]
	t.store.mu.RUnlock()
	if prev, seen := t.reads[k]; seen && prev != ver {
		// The key changed between two of our own reads: doomed.
		return zero, false, ErrConflict
	}
	t.reads[k] = ver
	return v, ok, nil
}

// Write buffers a write of k.
func (t *Tx[K, V]) Write(k K, v V) error {
	if t.finished {
		return ErrFinished
	}
	t.writes[k] = v
	return nil
}

// ReadSet returns the keys read (excluding write-only keys).
func (t *Tx[K, V]) ReadSet() []K {
	out := make([]K, 0, len(t.reads))
	for k := range t.reads {
		out = append(out, k)
	}
	return out
}

// WriteSet returns the keys written.
func (t *Tx[K, V]) WriteSet() []K {
	out := make([]K, 0, len(t.writes))
	for k := range t.writes {
		out = append(out, k)
	}
	return out
}

// Commit validates the read set and atomically applies the writes. On
// ErrConflict the transaction is finished and its writes are discarded; the
// caller may Begin a fresh transaction and retry.
func (t *Tx[K, V]) Commit() error {
	if t.finished {
		return ErrFinished
	}
	t.finished = true
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, ver := range t.reads {
		if s.version[k] != ver {
			s.aborts++
			return ErrConflict
		}
	}
	s.clock++
	for k, v := range t.writes {
		s.data[k] = v
		s.version[k] = s.clock
	}
	s.commits++
	return nil
}

// Abort discards the transaction.
func (t *Tx[K, V]) Abort() {
	if !t.finished {
		t.finished = true
		t.store.mu.Lock()
		t.store.aborts++
		t.store.mu.Unlock()
	}
}

// Atomically runs fn inside transactions until one commits, retrying on
// conflict. fn must be safe to re-run.
func Atomically[K comparable, V any](s *Store[K, V], fn func(*Tx[K, V]) error) error {
	for {
		tx := s.Begin()
		if err := fn(tx); err != nil {
			if errors.Is(err, ErrConflict) {
				tx.Abort()
				continue
			}
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
}
