package account

import (
	"encoding/binary"

	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// Transaction is an account-model transaction: a message from one account to
// another, optionally creating a contract or invoking contract code.
type Transaction struct {
	From     types.Address
	To       types.Address // zero address means contract creation
	Value    Amount
	Nonce    uint64
	GasLimit uint64
	GasPrice Amount
	Arg      uint64 // argument word passed to the callee's code
	Code     []byte // encoded contract (vm.EncodeContract) for creations

	hash    types.Hash
	hasHash bool
}

// IsCreation reports whether the transaction deploys a contract.
func (tx *Transaction) IsCreation() bool { return tx.To.IsZero() && len(tx.Code) > 0 }

// Hash returns the transaction hash, computed over all fields.
func (tx *Transaction) Hash() types.Hash {
	if tx.hasHash {
		return tx.hash
	}
	buf := make([]byte, 0, 2*types.AddressSize+48+len(tx.Code))
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	var tmp [8]byte
	for _, v := range []uint64{uint64(tx.Value), tx.Nonce, tx.GasLimit, uint64(tx.GasPrice), tx.Arg} {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, tx.Code...)
	tx.hash = types.HashData([]byte("acct-tx"), buf)
	tx.hasHash = true
	return tx.hash
}

// Receipt is the result of executing one transaction.
type Receipt struct {
	TxHash  types.Hash
	From    types.Address
	To      types.Address // the created contract's address for creations
	GasUsed uint64
	// Status is 1 if the transaction succeeded, 0 if its execution failed
	// (failed transactions are still included in blocks and consume gas).
	Status int
	// Internal lists the internal transactions (message calls) the
	// execution generated — the paper's TDG edges beyond the top-level
	// transfer.
	Internal []vm.InternalTx
	// Logs collects VM log words.
	Logs []uint64
	// ExecErr describes the VM failure for Status == 0.
	ExecErr string
}

// Block is a block of account-model transactions.
type Block struct {
	Height   uint64
	PrevHash types.Hash
	Time     int64
	Coinbase types.Address
	GasLimit uint64
	Txs      []*Transaction
}

// Hash returns the block hash.
func (b *Block) Hash() types.Hash {
	buf := make([]byte, 24, 24+types.AddressSize+len(b.Txs)*types.HashSize)
	binary.BigEndian.PutUint64(buf[:8], b.Height)
	binary.BigEndian.PutUint64(buf[8:16], uint64(b.Time))
	binary.BigEndian.PutUint64(buf[16:24], b.GasLimit)
	buf = append(buf, b.Coinbase[:]...)
	buf = append(buf, b.PrevHash[:]...)
	for _, tx := range b.Txs {
		h := tx.Hash()
		buf = append(buf, h[:]...)
	}
	return types.HashData([]byte("acct-block"), buf)
}

// NumTxs returns the number of regular transactions in the block. The
// coinbase reward is not represented as a transaction in the account model
// (as in Ethereum, where the reward is a state change of the block), so this
// is simply len(Txs).
func (b *Block) NumTxs() int { return len(b.Txs) }

// GasUsed sums the gas of the given receipts.
func GasUsed(receipts []*Receipt) uint64 {
	var total uint64
	for _, r := range receipts {
		total += r.GasUsed
	}
	return total
}

// ContractAddress computes the deterministic address of a contract created
// by sender with the given account nonce (as Ethereum derives CREATE
// addresses from (sender, nonce)).
func ContractAddress(sender types.Address, nonce uint64) types.Address {
	h := types.HashData([]byte("create"), sender[:], uint64Bytes(nonce))
	var a types.Address
	copy(a[:], h[types.HashSize-types.AddressSize:])
	return a
}

func uint64Bytes(v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return tmp[:]
}
