package account

import (
	"math/rand"
	"testing"

	"txconcur/internal/types"
)

// totalSupply sums the balances of a known address universe.
func totalSupply(st *StateDB, addrs []types.Address) Amount {
	var total Amount
	for _, a := range addrs {
		total += st.GetBalance(a)
	}
	return total
}

// TestSupplyConservationProperty: executing any valid block changes the
// total supply by exactly BlockReward — gas fees move value from senders to
// the coinbase but never create or destroy it.
func TestSupplyConservationProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const users = 12
		addrs := make([]types.Address, 0, users+1)
		st := NewStateDB()
		nonces := make(map[types.Address]uint64)
		for i := 0; i < users; i++ {
			a := addr(uint64(i))
			addrs = append(addrs, a)
			st.AddBalance(a, 10_000_000)
		}
		cb := addr(999)
		addrs = append(addrs, cb)
		st.DiscardJournal()

		before := totalSupply(st, addrs)
		var txs []*Transaction
		for i := 0; i < 20; i++ {
			from := addrs[rng.Intn(users)]
			to := addrs[rng.Intn(users)]
			tx := &Transaction{
				From: from, To: to,
				Value:    Amount(rng.Intn(1000)),
				Nonce:    nonces[from],
				GasLimit: GasTx,
				GasPrice: Amount(1 + rng.Intn(3)),
			}
			nonces[from]++
			txs = append(txs, tx)
		}
		blk := &Block{Height: 0, Coinbase: cb, Txs: txs}
		var p Processor
		if _, err := p.ApplyBlock(st, blk); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after := totalSupply(st, addrs)
		if after != before+BlockReward {
			t.Fatalf("seed %d: supply %d -> %d, want +%d", seed, before, after, BlockReward)
		}
	}
}

// TestDeferCoinbaseEquivalence: the deferred-fee processor produces exactly
// the same final state as the per-transaction one, for any block.
func TestDeferCoinbaseEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		build := func() (*StateDB, *Block) {
			st := NewStateDB()
			nonces := make(map[types.Address]uint64)
			for i := 0; i < 8; i++ {
				st.AddBalance(addr(uint64(i)), 10_000_000)
			}
			st.DiscardJournal()
			var txs []*Transaction
			for i := 0; i < 15; i++ {
				from := addr(uint64(rng.Intn(8)))
				tx := &Transaction{
					From: from, To: addr(uint64(rng.Intn(8))),
					Value:    Amount(rng.Intn(500)),
					Nonce:    nonces[from],
					GasLimit: GasTx,
					GasPrice: Amount(1 + rng.Intn(3)),
				}
				nonces[from]++
				txs = append(txs, tx)
			}
			return st, &Block{Height: 0, Coinbase: addr(99), Txs: txs}
		}

		stA, blkA := build()
		rng = rand.New(rand.NewSource(100 + seed)) // rebuild identically
		stB, blkB := build()
		if blkA.Hash() != blkB.Hash() {
			t.Fatal("fixture blocks differ")
		}
		perTx := Processor{}
		deferred := Processor{DeferCoinbase: true}
		if _, err := perTx.ApplyBlock(stA, blkA); err != nil {
			t.Fatal(err)
		}
		if _, err := deferred.ApplyBlock(stB, blkB); err != nil {
			t.Fatal(err)
		}
		if stA.Root() != stB.Root() {
			t.Fatalf("seed %d: deferred-fee state differs from per-tx state", seed)
		}
	}
}

// TestFeesHelper: Fees sums GasUsed × GasPrice pairwise.
func TestFeesHelper(t *testing.T) {
	txs := []*Transaction{
		{GasPrice: 2},
		{GasPrice: 3},
	}
	receipts := []*Receipt{
		{GasUsed: 100},
		{GasUsed: 10},
	}
	if got := Fees(txs, receipts); got != 230 {
		t.Fatalf("fees = %d, want 230", got)
	}
	// Extra receipts beyond txs are ignored.
	if got := Fees(txs[:1], receipts); got != 200 {
		t.Fatalf("fees = %d, want 200", got)
	}
}

// TestJournalDepthAfterBlocks: DiscardJournal at block boundaries keeps the
// journal from growing across blocks (memory hygiene for long histories).
func TestJournalDepthAfterBlocks(t *testing.T) {
	ch := NewChain()
	ch.State().AddBalance(addr(1), 1_000_000_000)
	for h := 0; h < 5; h++ {
		blk := &Block{
			Height:   uint64(h),
			PrevHash: ch.TipHash(),
			Coinbase: addr(99),
			Txs: []*Transaction{{
				From: addr(1), To: addr(2), Value: 1,
				Nonce: uint64(h), GasLimit: GasTx, GasPrice: 1,
			}},
		}
		if _, err := ch.Append(blk); err != nil {
			t.Fatal(err)
		}
		if got := ch.State().Snapshot(); got != 0 {
			t.Fatalf("journal depth after block %d = %d, want 0", h, got)
		}
	}
}
