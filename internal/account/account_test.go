package account

import (
	"errors"
	"testing"
	"testing/quick"

	"txconcur/internal/types"
	"txconcur/internal/vm"
)

func addr(i uint64) types.Address { return types.AddressFromUint64("accttest", i) }

func TestStateDBBasics(t *testing.T) {
	st := NewStateDB()
	a := addr(1)
	if st.GetBalance(a) != 0 || st.GetNonce(a) != 0 {
		t.Fatal("fresh account not zero")
	}
	st.AddBalance(a, 100)
	st.SubBalance(a, 30)
	if st.GetBalance(a) != 70 {
		t.Fatalf("balance = %d, want 70", st.GetBalance(a))
	}
	st.SetNonce(a, 5)
	if st.GetNonce(a) != 5 {
		t.Fatalf("nonce = %d, want 5", st.GetNonce(a))
	}
	st.SetCode(a, []byte{1, 2})
	if len(st.GetCode(a)) != 2 {
		t.Fatal("code not stored")
	}
	st.SetStorage(a, 3, 9)
	if st.GetStorage(a, 3) != 9 {
		t.Fatal("storage not stored")
	}
	if st.GetStorage(a, 4) != 0 {
		t.Fatal("unset slot not zero")
	}
}

func TestSnapshotRevert(t *testing.T) {
	st := NewStateDB()
	a, b := addr(1), addr(2)
	st.AddBalance(a, 100)
	snap := st.Snapshot()

	st.SubBalance(a, 40)
	st.AddBalance(b, 40)
	st.SetNonce(a, 1)
	st.SetStorage(a, 0, 7)
	st.SetCode(b, []byte{9})

	st.RevertToSnapshot(snap)
	if st.GetBalance(a) != 100 || st.GetBalance(b) != 0 {
		t.Fatalf("balances not reverted: %d/%d", st.GetBalance(a), st.GetBalance(b))
	}
	if st.GetNonce(a) != 0 || st.GetStorage(a, 0) != 0 || st.GetCode(b) != nil {
		t.Fatal("nonce/storage/code not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	st := NewStateDB()
	a := addr(1)
	st.AddBalance(a, 1)
	s1 := st.Snapshot()
	st.AddBalance(a, 10)
	s2 := st.Snapshot()
	st.AddBalance(a, 100)
	st.RevertToSnapshot(s2)
	if st.GetBalance(a) != 11 {
		t.Fatalf("after inner revert: %d, want 11", st.GetBalance(a))
	}
	st.RevertToSnapshot(s1)
	if st.GetBalance(a) != 1 {
		t.Fatalf("after outer revert: %d, want 1", st.GetBalance(a))
	}
}

func TestRootDeterministic(t *testing.T) {
	build := func(order []int) *StateDB {
		st := NewStateDB()
		for _, i := range order {
			a := addr(uint64(i))
			st.AddBalance(a, Amount(i*10))
			st.SetNonce(a, uint64(i))
			st.SetStorage(a, uint64(i), uint64(i*i))
		}
		return st
	}
	r1 := build([]int{1, 2, 3}).Root()
	r2 := build([]int{3, 1, 2}).Root()
	if r1 != r2 {
		t.Fatal("root depends on insertion order")
	}
	r3 := build([]int{1, 2, 4}).Root()
	if r1 == r3 {
		t.Fatal("different states share a root")
	}
}

func TestRootZeroStorageCanonical(t *testing.T) {
	// Writing zero to an empty slot must not perturb the root.
	st := NewStateDB()
	st.AddBalance(addr(1), 5)
	r1 := st.Root()
	st.SetStorage(addr(1), 9, 0)
	if st.Root() != r1 {
		t.Fatal("zero write to empty slot changed root")
	}
	// Writing then clearing a slot returns to the original root.
	st.SetStorage(addr(1), 9, 3)
	st.SetStorage(addr(1), 9, 0)
	if st.Root() != r1 {
		t.Fatal("set-then-clear changed root")
	}
}

func TestCopyIndependent(t *testing.T) {
	st := NewStateDB()
	st.AddBalance(addr(1), 10)
	st.SetCode(addr(2), []byte{1})
	st.SetStorage(addr(1), 0, 1)
	cp := st.Copy()
	if cp.Root() != st.Root() {
		t.Fatal("copy has different root")
	}
	cp.AddBalance(addr(1), 5)
	cp.SetStorage(addr(1), 0, 2)
	if st.GetBalance(addr(1)) != 10 || st.GetStorage(addr(1), 0) != 1 {
		t.Fatal("mutating copy changed original")
	}
}

// TestSnapshotRevertProperty: applying random mutations and reverting always
// restores the exact prior root.
func TestSnapshotRevertProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		st := NewStateDB()
		st.AddBalance(addr(0), 1000)
		before := st.Root()
		snap := st.Snapshot()
		for i, op := range ops {
			a := addr(uint64(op % 5))
			switch op % 4 {
			case 0:
				st.AddBalance(a, Amount(i))
			case 1:
				st.SetNonce(a, uint64(i))
			case 2:
				st.SetStorage(a, uint64(op), uint64(i))
			case 3:
				st.SetCode(a, []byte{op, uint8(i)})
			}
		}
		st.RevertToSnapshot(snap)
		return st.Root() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testBlock(txs ...*Transaction) *Block {
	return &Block{Height: 1, Time: 1000, Coinbase: addr(99), GasLimit: 100_000_000, Txs: txs}
}

func fundedState(users ...uint64) *StateDB {
	st := NewStateDB()
	for _, u := range users {
		st.AddBalance(addr(u), 1_000_000_000)
	}
	return st
}

func TestApplyTransfer(t *testing.T) {
	st := fundedState(1)
	var p Processor
	tx := &Transaction{From: addr(1), To: addr(2), Value: 500, GasLimit: 30_000, GasPrice: 2}
	rcpt, err := p.ApplyTransaction(st, testBlock(tx), tx)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if rcpt.Status != 1 {
		t.Fatalf("status = %d, want 1", rcpt.Status)
	}
	if rcpt.GasUsed != GasTx {
		t.Fatalf("gas used = %d, want %d", rcpt.GasUsed, GasTx)
	}
	if st.GetBalance(addr(2)) != 500 {
		t.Fatalf("recipient = %d, want 500", st.GetBalance(addr(2)))
	}
	wantSender := Amount(1_000_000_000) - 500 - Amount(GasTx)*2
	if st.GetBalance(addr(1)) != wantSender {
		t.Fatalf("sender = %d, want %d", st.GetBalance(addr(1)), wantSender)
	}
	if st.GetBalance(addr(99)) != Amount(GasTx)*2 {
		t.Fatalf("coinbase fee = %d, want %d", st.GetBalance(addr(99)), Amount(GasTx)*2)
	}
	if st.GetNonce(addr(1)) != 1 {
		t.Fatal("nonce not bumped")
	}
}

func TestEnvelopeErrors(t *testing.T) {
	var p Processor
	st := fundedState(1)

	badNonce := &Transaction{From: addr(1), To: addr(2), Nonce: 5, GasLimit: 30_000}
	if _, err := p.ApplyTransaction(st, testBlock(badNonce), badNonce); !errors.Is(err, ErrNonce) {
		t.Fatalf("bad nonce: %v", err)
	}
	lowGas := &Transaction{From: addr(1), To: addr(2), GasLimit: 100}
	if _, err := p.ApplyTransaction(st, testBlock(lowGas), lowGas); !errors.Is(err, ErrIntrinsicGas) {
		t.Fatalf("intrinsic: %v", err)
	}
	poor := &Transaction{From: addr(3), To: addr(2), Value: 1, GasLimit: 30_000, GasPrice: 1}
	if _, err := p.ApplyTransaction(st, testBlock(poor), poor); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("poor: %v", err)
	}
	codeOnCall := &Transaction{From: addr(1), To: addr(2), GasLimit: 30_000, Code: []byte{1}}
	if _, err := p.ApplyTransaction(st, testBlock(codeOnCall), codeOnCall); !errors.Is(err, ErrCodeOnCall) {
		t.Fatalf("code on call: %v", err)
	}
	// Envelope errors must not mutate state.
	if st.GetNonce(addr(1)) != 0 || st.GetBalance(addr(1)) != 1_000_000_000 {
		t.Fatal("failed envelope mutated state")
	}
}

func TestContractCreationAndCall(t *testing.T) {
	var p Processor
	st := fundedState(1)
	// Contract stores its call argument into slot 0.
	code := vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().Push(0).Op(vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	})
	create := &Transaction{From: addr(1), GasLimit: 10_000_000, GasPrice: 1, Code: code}
	rcpt, err := p.ApplyTransaction(st, testBlock(create), create)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cAddr := rcpt.To
	if cAddr.IsZero() {
		t.Fatal("creation receipt has zero contract address")
	}
	if len(st.GetCode(cAddr)) == 0 {
		t.Fatal("code not installed")
	}
	if rcpt.GasUsed < GasTx+GasTxCreate {
		t.Fatalf("creation gas %d below intrinsic", rcpt.GasUsed)
	}

	call := &Transaction{From: addr(1), To: cAddr, Nonce: 1, GasLimit: 1_000_000, GasPrice: 1, Arg: 77}
	rcpt, err = p.ApplyTransaction(st, testBlock(call), call)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if rcpt.Status != 1 {
		t.Fatalf("call failed: %s", rcpt.ExecErr)
	}
	if st.GetStorage(cAddr, 0) != 77 {
		t.Fatalf("slot0 = %d, want 77", st.GetStorage(cAddr, 0))
	}
}

func TestContractAddressDeterministic(t *testing.T) {
	a1 := ContractAddress(addr(1), 0)
	a2 := ContractAddress(addr(1), 0)
	if a1 != a2 {
		t.Fatal("not deterministic")
	}
	if ContractAddress(addr(1), 1) == a1 {
		t.Fatal("nonce must change address")
	}
	if ContractAddress(addr(2), 0) == a1 {
		t.Fatal("sender must change address")
	}
}

func TestFailedExecutionConsumesGas(t *testing.T) {
	var p Processor
	st := fundedState(1)
	code := vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().Sstore(0, 1).Op(vm.OpRevert).Bytes(),
	})
	create := &Transaction{From: addr(1), GasLimit: 10_000_000, GasPrice: 1, Code: code}
	rcpt, err := p.ApplyTransaction(st, testBlock(create), create)
	if err != nil {
		t.Fatal(err)
	}
	cAddr := rcpt.To

	balBefore := st.GetBalance(addr(1))
	call := &Transaction{From: addr(1), To: cAddr, Nonce: 1, GasLimit: 50_000, GasPrice: 1}
	rcpt, err = p.ApplyTransaction(st, testBlock(call), call)
	if err != nil {
		t.Fatalf("failed execution should still produce a receipt: %v", err)
	}
	if rcpt.Status != 0 || rcpt.ExecErr == "" {
		t.Fatalf("receipt = %+v, want status 0 with error", rcpt)
	}
	if rcpt.GasUsed != 50_000 {
		t.Fatalf("failed call should forfeit all gas, used %d", rcpt.GasUsed)
	}
	if st.GetStorage(cAddr, 0) != 0 {
		t.Fatal("reverted write survived")
	}
	if st.GetNonce(addr(1)) != 2 {
		t.Fatal("nonce bump must survive failure")
	}
	if st.GetBalance(addr(1)) != balBefore-50_000 {
		t.Fatalf("sender balance = %d, want %d", st.GetBalance(addr(1)), balBefore-50_000)
	}
}

func TestApplyBlockAndChain(t *testing.T) {
	ch := NewChain()
	ch.State().AddBalance(addr(1), 1_000_000_000)
	ch.State().AddBalance(addr(2), 1_000_000_000)

	b1 := &Block{
		Height: 0, Time: 10, Coinbase: addr(99), GasLimit: 10_000_000,
		Txs: []*Transaction{
			{From: addr(1), To: addr(3), Value: 100, GasLimit: 30_000, GasPrice: 1},
			{From: addr(2), To: addr(3), Value: 200, GasLimit: 30_000, GasPrice: 1},
			{From: addr(1), To: addr(2), Value: 50, Nonce: 1, GasLimit: 30_000, GasPrice: 1},
		},
	}
	receipts, err := ch.Append(b1)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if len(receipts) != 3 {
		t.Fatalf("receipts = %d, want 3", len(receipts))
	}
	if ch.State().GetBalance(addr(3)) != 300 {
		t.Fatalf("addr3 = %d, want 300", ch.State().GetBalance(addr(3)))
	}
	wantCoinbase := BlockReward + Amount(3*GasTx)
	if got := ch.State().GetBalance(addr(99)); got != wantCoinbase {
		t.Fatalf("coinbase = %d, want %d", got, wantCoinbase)
	}
	if ch.Height() != 1 {
		t.Fatal("height not bumped")
	}
	if got := ch.Receipts(0); len(got) != 3 {
		t.Fatal("receipts not stored")
	}

	// A block with a bad transaction is rejected atomically.
	rootBefore := ch.State().Root()
	bad := &Block{
		Height: 1, PrevHash: ch.TipHash(), Coinbase: addr(99), GasLimit: 10_000_000,
		Txs: []*Transaction{
			{From: addr(2), To: addr(1), Value: 1, Nonce: 1, GasLimit: 30_000, GasPrice: 1},
			{From: addr(2), To: addr(1), Value: 1, Nonce: 7, GasLimit: 30_000, GasPrice: 1}, // bad nonce
		},
	}
	if _, err := ch.Append(bad); !errors.Is(err, ErrNonce) {
		t.Fatalf("bad block: %v", err)
	}
	if ch.State().Root() != rootBefore {
		t.Fatal("rejected block mutated state")
	}
	if ch.Height() != 1 {
		t.Fatal("rejected block extended chain")
	}
}

func TestBlockGasLimit(t *testing.T) {
	var p Processor
	st := fundedState(1)
	blk := &Block{
		Height: 0, Coinbase: addr(99), GasLimit: GasTx + 10, // room for one tx only
		Txs: []*Transaction{
			{From: addr(1), To: addr(2), GasLimit: 21_000, GasPrice: 1},
			{From: addr(1), To: addr(2), Nonce: 1, GasLimit: 21_000, GasPrice: 1},
		},
	}
	if _, err := p.ApplyBlock(st, blk); !errors.Is(err, ErrBlockGasExceeded) {
		t.Fatalf("err = %v, want ErrBlockGasExceeded", err)
	}
}

func TestChainLinkErrors(t *testing.T) {
	ch := NewChain()
	b := &Block{Height: 5, Coinbase: addr(9)}
	if _, err := ch.Append(b); err == nil {
		t.Fatal("wrong height accepted")
	}
	b0 := &Block{Height: 0, Coinbase: addr(9)}
	if _, err := ch.Append(b0); err != nil {
		t.Fatal(err)
	}
	wrong := &Block{Height: 1, PrevHash: types.HashUint64("x", 1), Coinbase: addr(9)}
	if _, err := ch.Append(wrong); err == nil {
		t.Fatal("wrong prev hash accepted")
	}
}

func TestInternalTxsInReceipt(t *testing.T) {
	var p Processor
	st := fundedState(1)

	// Leaf contract: writes arg to slot 0.
	leafCode := vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().Push(0).Op(vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	})
	createLeaf := &Transaction{From: addr(1), GasLimit: 10_000_000, GasPrice: 1, Code: leafCode}
	rcpt, err := p.ApplyTransaction(st, testBlock(createLeaf), createLeaf)
	if err != nil {
		t.Fatal(err)
	}
	leaf := rcpt.To

	// Router contract: calls the leaf.
	routerCode := vm.EncodeContract(vm.Contract{
		Code:      vm.NewAsm().Call(0, 0, 5).Op(vm.OpPop, vm.OpStop).Bytes(),
		AddrTable: []types.Address{leaf},
	})
	createRouter := &Transaction{From: addr(1), Nonce: 1, GasLimit: 10_000_000, GasPrice: 1, Code: routerCode}
	rcpt, err = p.ApplyTransaction(st, testBlock(createRouter), createRouter)
	if err != nil {
		t.Fatal(err)
	}
	router := rcpt.To

	call := &Transaction{From: addr(1), To: router, Nonce: 2, GasLimit: 1_000_000, GasPrice: 1}
	rcpt, err = p.ApplyTransaction(st, testBlock(call), call)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != 1 {
		t.Fatalf("call failed: %s", rcpt.ExecErr)
	}
	if len(rcpt.Internal) != 1 {
		t.Fatalf("internal txs = %d, want 1", len(rcpt.Internal))
	}
	if rcpt.Internal[0].From != router || rcpt.Internal[0].To != leaf {
		t.Fatalf("internal = %+v", rcpt.Internal[0])
	}
	if st.GetStorage(leaf, 0) != 5 {
		t.Fatal("leaf write lost")
	}
}

func TestTxHashStability(t *testing.T) {
	tx1 := &Transaction{From: addr(1), To: addr(2), Value: 5, Nonce: 1, GasLimit: 100, GasPrice: 1}
	tx2 := &Transaction{From: addr(1), To: addr(2), Value: 5, Nonce: 1, GasLimit: 100, GasPrice: 1}
	if tx1.Hash() != tx2.Hash() {
		t.Fatal("identical txs must share a hash")
	}
	tx3 := &Transaction{From: addr(1), To: addr(2), Value: 6, Nonce: 1, GasLimit: 100, GasPrice: 1}
	if tx1.Hash() == tx3.Hash() {
		t.Fatal("different value must change hash")
	}
}

func TestValueTransferOnCreation(t *testing.T) {
	var p Processor
	st := fundedState(1)
	code := vm.EncodeContract(vm.Contract{Code: vm.NewAsm().Op(vm.OpStop).Bytes()})
	create := &Transaction{From: addr(1), Value: 1234, GasLimit: 10_000_000, GasPrice: 1, Code: code}
	rcpt, err := p.ApplyTransaction(st, testBlock(create), create)
	if err != nil {
		t.Fatal(err)
	}
	if st.GetBalance(rcpt.To) != 1234 {
		t.Fatalf("contract balance = %d, want 1234", st.GetBalance(rcpt.To))
	}
}
