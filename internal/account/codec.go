// Export/Restore turn a StateDB into a flat, deterministic, gob-friendly
// form — the checkpoint payload of the durability layer (internal/wal).
// The encoding is canonical: accounts and storage slots are sorted the
// same way Root() sorts them, and map membership is preserved exactly
// (an account holding an explicit zero balance is part of the root), so
// Restore reproduces a state with an identical Root.

package account

import (
	"sort"

	"txconcur/internal/types"
)

// AccountExport is one account's flattened fields. The Has flags record
// map membership: Root() includes every address present in any of the
// three account maps, including explicit zeros, so presence must survive
// the round trip bit-for-bit.
type AccountExport struct {
	Addr       types.Address
	Balance    Amount
	Nonce      uint64
	Code       []byte
	HasBalance bool
	HasNonce   bool
	HasCode    bool
}

// StorageExport is one occupied storage slot (zero-valued slots are never
// stored, so no presence flag is needed).
type StorageExport struct {
	Addr  types.Address
	Slot  uint64
	Value uint64
}

// StateExport is a StateDB flattened for serialisation, in canonical
// (sorted) order.
type StateExport struct {
	Accounts []AccountExport
	Storage  []StorageExport
}

// Export flattens the state. The journal is not captured — checkpoints
// snapshot committed state, which has none.
func (s *StateDB) Export() StateExport {
	seen := make(map[types.Address]bool, len(s.balances))
	addrs := make([]types.Address, 0, len(s.balances))
	collect := func(a types.Address) {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range s.balances {
		collect(a)
	}
	for a := range s.nonces {
		collect(a)
	}
	for a := range s.code {
		collect(a)
	}
	sort.Slice(addrs, func(i, j int) bool { return lessAddr(addrs[i], addrs[j]) })

	var e StateExport
	e.Accounts = make([]AccountExport, 0, len(addrs))
	for _, a := range addrs {
		bal, hasBal := s.balances[a]
		nonce, hasNonce := s.nonces[a]
		code, hasCode := s.code[a]
		e.Accounts = append(e.Accounts, AccountExport{
			Addr:       a,
			Balance:    bal,
			Nonce:      nonce,
			Code:       append([]byte(nil), code...),
			HasBalance: hasBal,
			HasNonce:   hasNonce,
			HasCode:    hasCode,
		})
	}

	keys := make([]StorageKey, 0, len(s.storage))
	for k := range s.storage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Addr != keys[j].Addr {
			return lessAddr(keys[i].Addr, keys[j].Addr)
		}
		return keys[i].Slot < keys[j].Slot
	})
	e.Storage = make([]StorageExport, 0, len(keys))
	for _, k := range keys {
		e.Storage = append(e.Storage, StorageExport{Addr: k.Addr, Slot: k.Slot, Value: s.storage[k]})
	}
	return e
}

// Restore rebuilds a StateDB from an export, with an empty journal.
func (e StateExport) Restore() *StateDB {
	s := NewStateDB()
	for _, a := range e.Accounts {
		if a.HasBalance {
			s.balances[a.Addr] = a.Balance
		}
		if a.HasNonce {
			s.nonces[a.Addr] = a.Nonce
		}
		if a.HasCode {
			s.code[a.Addr] = append([]byte(nil), a.Code...)
		}
	}
	for _, sl := range e.Storage {
		s.storage[StorageKey{Addr: sl.Addr, Slot: sl.Slot}] = sl.Value
	}
	return s
}
