// Package account implements the account-based blockchain substrate used by
// the paper's Ethereum-family subjects (Ethereum, Ethereum Classic, Zilliqa):
// accounts with balances, nonces, contract code and storage; a journaled
// state database with snapshots; and a block processor that executes
// transactions through the VM and records the internal-transaction traces
// the paper's TDG construction consumes (§II-A: "we define as an internal
// transaction any interaction between contracts that generates a so-called
// trace in the geth client").
package account

import (
	"encoding/binary"
	"sort"

	"txconcur/internal/types"
)

// Amount is a token amount in the chain's base unit (wei-like). It is an
// alias (not a distinct type) so that *StateDB satisfies vm.State, whose
// methods speak int64, without adapter boilerplate.
type Amount = int64

// StorageKey addresses one storage slot of one contract.
type StorageKey struct {
	Addr types.Address
	Slot uint64
}

// StateDB is the global account state: balances, nonces, code, and contract
// storage. All mutations are journaled so any prefix of changes can be
// reverted — the mechanism behind failed-transaction rollback and the
// speculative executor's aborts.
type StateDB struct {
	balances map[types.Address]Amount
	nonces   map[types.Address]uint64
	code     map[types.Address][]byte
	storage  map[StorageKey]uint64

	journal []journalEntry
}

// journalEntry undoes one state mutation.
type journalEntry func(s *StateDB)

// NewStateDB returns an empty state.
func NewStateDB() *StateDB {
	return &StateDB{
		balances: make(map[types.Address]Amount),
		nonces:   make(map[types.Address]uint64),
		code:     make(map[types.Address][]byte),
		storage:  make(map[StorageKey]uint64),
	}
}

// GetBalance returns the balance of addr (zero for unknown accounts).
func (s *StateDB) GetBalance(addr types.Address) Amount { return s.balances[addr] }

// AddBalance credits addr by v (which may be negative for debits when called
// via SubBalance).
func (s *StateDB) AddBalance(addr types.Address, v Amount) {
	prev, existed := s.balances[addr]
	s.journal = append(s.journal, func(s *StateDB) {
		if existed {
			s.balances[addr] = prev
		} else {
			delete(s.balances, addr)
		}
	})
	s.balances[addr] = prev + v
}

// SubBalance debits addr by v.
func (s *StateDB) SubBalance(addr types.Address, v Amount) { s.AddBalance(addr, -v) }

// GetNonce returns the transaction count of addr.
func (s *StateDB) GetNonce(addr types.Address) uint64 { return s.nonces[addr] }

// SetNonce sets the transaction count of addr.
func (s *StateDB) SetNonce(addr types.Address, n uint64) {
	prev, existed := s.nonces[addr]
	s.journal = append(s.journal, func(s *StateDB) {
		if existed {
			s.nonces[addr] = prev
		} else {
			delete(s.nonces, addr)
		}
	})
	s.nonces[addr] = n
}

// GetCode returns the contract code at addr (nil for externally owned
// accounts). Callers must not modify the returned slice.
func (s *StateDB) GetCode(addr types.Address) []byte { return s.code[addr] }

// SetCode installs contract code at addr.
func (s *StateDB) SetCode(addr types.Address, code []byte) {
	prev, existed := s.code[addr]
	s.journal = append(s.journal, func(s *StateDB) {
		if existed {
			s.code[addr] = prev
		} else {
			delete(s.code, addr)
		}
	})
	c := make([]byte, len(code))
	copy(c, code)
	s.code[addr] = c
}

// GetStorage reads one storage slot (zero for unset slots).
func (s *StateDB) GetStorage(addr types.Address, slot uint64) uint64 {
	return s.storage[StorageKey{Addr: addr, Slot: slot}]
}

// SetStorage writes one storage slot.
func (s *StateDB) SetStorage(addr types.Address, slot, value uint64) {
	k := StorageKey{Addr: addr, Slot: slot}
	prev, existed := s.storage[k]
	s.journal = append(s.journal, func(s *StateDB) {
		if existed {
			s.storage[k] = prev
		} else {
			delete(s.storage, k)
		}
	})
	if value == 0 && !existed {
		// Writing zero to an empty slot is a no-op (keeps the map, and
		// therefore the state root, canonical).
		s.journal = s.journal[:len(s.journal)-1]
		return
	}
	if value == 0 {
		delete(s.storage, k)
		return
	}
	s.storage[k] = value
}

// InstallBalance sets addr's balance without journaling. Install methods
// load committed base-layer state (lazy recovery fault-in, base-layer
// folds); they must never run inside transaction execution, where a
// revert would need the journal entry they skip.
func (s *StateDB) InstallBalance(addr types.Address, v Amount) { s.balances[addr] = v }

// InstallNonce sets addr's nonce without journaling; see InstallBalance.
func (s *StateDB) InstallNonce(addr types.Address, n uint64) { s.nonces[addr] = n }

// InstallCode installs code at addr without journaling; see InstallBalance.
func (s *StateDB) InstallCode(addr types.Address, code []byte) {
	c := make([]byte, len(code))
	copy(c, code)
	s.code[addr] = c
}

// InstallStorage sets one storage slot without journaling; a zero value
// deletes the slot, keeping the map (and Root) canonical. See
// InstallBalance.
func (s *StateDB) InstallStorage(addr types.Address, slot, value uint64) {
	k := StorageKey{Addr: addr, Slot: slot}
	if value == 0 {
		delete(s.storage, k)
		return
	}
	s.storage[k] = value
}

// Snapshot returns an identifier for the current journal position.
func (s *StateDB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot unwinds all mutations made after the snapshot was taken.
func (s *StateDB) RevertToSnapshot(snap int) {
	for i := len(s.journal) - 1; i >= snap; i-- {
		s.journal[i](s)
	}
	s.journal = s.journal[:snap]
}

// DiscardJournal drops accumulated undo records (e.g. at block boundaries,
// once the block is final).
func (s *StateDB) DiscardJournal() { s.journal = s.journal[:0] }

// Copy returns a deep copy of the state with an empty journal.
func (s *StateDB) Copy() *StateDB {
	c := NewStateDB()
	for a, v := range s.balances {
		c.balances[a] = v
	}
	for a, v := range s.nonces {
		c.nonces[a] = v
	}
	for a, v := range s.code {
		code := make([]byte, len(v))
		copy(code, v)
		c.code[a] = code
	}
	for k, v := range s.storage {
		c.storage[k] = v
	}
	return c
}

// Root computes a deterministic digest of the entire state. Two states with
// identical contents produce identical roots; the execution engines use this
// to prove serial equivalence (parallel execution must reach the sequential
// root).
func (s *StateDB) Root() types.Hash {
	var buf []byte
	var tmp [8]byte

	addrs := make([]types.Address, 0, len(s.balances)+len(s.nonces)+len(s.code))
	seen := make(map[types.Address]struct{})
	collect := func(a types.Address) {
		if _, ok := seen[a]; !ok {
			seen[a] = struct{}{}
			addrs = append(addrs, a)
		}
	}
	for a := range s.balances {
		collect(a)
	}
	for a := range s.nonces {
		collect(a)
	}
	for a := range s.code {
		collect(a)
	}
	sort.Slice(addrs, func(i, j int) bool { return lessAddr(addrs[i], addrs[j]) })
	for _, a := range addrs {
		buf = append(buf, a[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(s.balances[a]))
		buf = append(buf, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], s.nonces[a])
		buf = append(buf, tmp[:]...)
		buf = append(buf, s.code[a]...)
	}

	keys := make([]StorageKey, 0, len(s.storage))
	for k := range s.storage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Addr != keys[j].Addr {
			return lessAddr(keys[i].Addr, keys[j].Addr)
		}
		return keys[i].Slot < keys[j].Slot
	})
	for _, k := range keys {
		buf = append(buf, k.Addr[:]...)
		binary.BigEndian.PutUint64(tmp[:], k.Slot)
		buf = append(buf, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], s.storage[k])
		buf = append(buf, tmp[:]...)
	}
	return types.HashData([]byte("state-root"), buf)
}

func lessAddr(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
