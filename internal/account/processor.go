package account

import (
	"errors"
	"fmt"

	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// Gas schedule for the transaction envelope, mirroring Ethereum's.
const (
	// GasTx is the intrinsic gas of every transaction.
	GasTx uint64 = 21000
	// GasTxCreate is the additional intrinsic gas of a contract creation.
	GasTxCreate uint64 = 32000
	// GasCodeByte is the per-byte cost of deployed contract code.
	GasCodeByte uint64 = 200
)

// Transaction-envelope errors: a block containing a transaction that fails
// at this level is itself invalid (unlike VM failures, which are recorded in
// receipts and consume gas).
var (
	ErrNonce             = errors.New("account: bad nonce")
	ErrInsufficientFunds = errors.New("account: insufficient funds for gas * price + value")
	ErrIntrinsicGas      = errors.New("account: gas limit below intrinsic cost")
	ErrBlockGasExceeded  = errors.New("account: cumulative gas exceeds block gas limit")
	ErrCodeOnCall        = errors.New("account: code payload on non-creation transaction")
)

// State is the mutable world a Processor executes against. *StateDB is the
// canonical implementation; the parallel execution engines substitute
// recording overlays that track read/write sets.
type State interface {
	vm.State
	GetNonce(types.Address) uint64
	SetNonce(types.Address, uint64)
	SetCode(types.Address, []byte)
}

// Processor executes transactions and blocks against a State. The zero
// value is ready to use.
type Processor struct {
	// DeferCoinbase suppresses the per-transaction fee credit to the block
	// coinbase. Parallel executors set it so that fee payments — which
	// every transaction makes — do not serialise the whole block on the
	// miner's balance; the accumulated fees (Σ GasUsed × GasPrice) are
	// credited once at the end, which yields the identical final state.
	DeferCoinbase bool
}

// Interface checks: the state database must be usable by the VM and the
// processor.
var (
	_ vm.State = (*StateDB)(nil)
	_ State    = (*StateDB)(nil)
)

// ApplyTransaction executes one transaction. Envelope failures (bad nonce,
// insufficient funds, intrinsic gas) return an error and leave the state
// unchanged. VM failures produce a Status-0 receipt: the execution's state
// changes are reverted but the nonce bump and gas payment stand, exactly as
// in Ethereum.
func (p Processor) ApplyTransaction(st State, blk *Block, tx *Transaction) (*Receipt, error) {
	if got := st.GetNonce(tx.From); got != tx.Nonce {
		return nil, fmt.Errorf("%w: have %d, tx has %d (from %s)", ErrNonce, got, tx.Nonce, tx.From.Short())
	}
	if !tx.IsCreation() && len(tx.Code) > 0 {
		return nil, fmt.Errorf("%w: to=%s", ErrCodeOnCall, tx.To.Short())
	}
	intrinsic := GasTx
	if tx.IsCreation() {
		intrinsic += GasTxCreate + GasCodeByte*uint64(len(tx.Code))
	}
	if tx.GasLimit < intrinsic {
		return nil, fmt.Errorf("%w: limit %d < intrinsic %d", ErrIntrinsicGas, tx.GasLimit, intrinsic)
	}
	upfront := Amount(tx.GasLimit)*tx.GasPrice + tx.Value
	if st.GetBalance(tx.From) < upfront {
		return nil, fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientFunds,
			tx.From.Short(), st.GetBalance(tx.From), upfront)
	}

	// Buy gas and bump the nonce; these survive VM failure.
	st.SubBalance(tx.From, Amount(tx.GasLimit)*tx.GasPrice)
	st.SetNonce(tx.From, tx.Nonce+1)

	ctx := &vm.Context{Origin: tx.From, BlockHeight: blk.Height, BlockTime: blk.Time}
	gas := tx.GasLimit - intrinsic
	rcpt := &Receipt{TxHash: tx.Hash(), From: tx.From, To: tx.To, Status: 1}

	snap := st.Snapshot()
	var execErr error
	if tx.IsCreation() {
		addr := ContractAddress(tx.From, tx.Nonce)
		rcpt.To = addr
		st.SetCode(addr, tx.Code)
		if tx.Value != 0 {
			st.SubBalance(tx.From, tx.Value)
			st.AddBalance(addr, tx.Value)
		}
	} else {
		var res vm.Result
		res, execErr = vm.Call(st, ctx, tx.From, tx.To, tx.Value, tx.Arg, gas)
		gas -= res.GasUsed
		rcpt.Internal = res.Internal
		rcpt.Logs = res.Logs
	}
	if execErr != nil {
		st.RevertToSnapshot(snap)
		rcpt.Status = 0
		rcpt.ExecErr = execErr.Error()
		rcpt.Internal = nil
		rcpt.Logs = nil
		// A VM failure other than out-of-gas still forfeits the remaining
		// gas in our model (EVM REVERT-with-refund is not modelled).
		gas = 0
	}

	rcpt.GasUsed = tx.GasLimit - gas
	// Refund unused gas; pay the fee to the block's coinbase (unless the
	// caller batches fee credits).
	st.AddBalance(tx.From, Amount(gas)*tx.GasPrice)
	if !p.DeferCoinbase {
		st.AddBalance(blk.Coinbase, Amount(rcpt.GasUsed)*tx.GasPrice)
	}
	return rcpt, nil
}

// Fees sums the coinbase fees of the given transactions and receipts
// (Σ GasUsed × GasPrice); used with DeferCoinbase.
func Fees(txs []*Transaction, receipts []*Receipt) Amount {
	var total Amount
	for i, r := range receipts {
		if i < len(txs) {
			total += Amount(r.GasUsed) * txs[i].GasPrice
		}
	}
	return total
}

// BlockReward is the subsidy credited to the coinbase of every block.
const BlockReward Amount = 2_000_000_000

// ApplyBlock executes every transaction in the block in order, enforcing
// the block gas limit, then credits the block reward (and, with
// DeferCoinbase, the accumulated fees). On error the state is left
// unchanged.
func (p Processor) ApplyBlock(st State, blk *Block) ([]*Receipt, error) {
	snap := st.Snapshot()
	receipts := make([]*Receipt, 0, len(blk.Txs))
	var used uint64
	for i, tx := range blk.Txs {
		rcpt, err := p.ApplyTransaction(st, blk, tx)
		if err != nil {
			st.RevertToSnapshot(snap)
			return nil, fmt.Errorf("block %d tx %d: %w", blk.Height, i, err)
		}
		used += rcpt.GasUsed
		if blk.GasLimit > 0 && used > blk.GasLimit {
			st.RevertToSnapshot(snap)
			return nil, fmt.Errorf("%w: block %d used %d > limit %d",
				ErrBlockGasExceeded, blk.Height, used, blk.GasLimit)
		}
		receipts = append(receipts, rcpt)
	}
	if p.DeferCoinbase {
		st.AddBalance(blk.Coinbase, Fees(blk.Txs, receipts))
	}
	st.AddBalance(blk.Coinbase, BlockReward)
	return receipts, nil
}

// Chain is a validated sequence of account-model blocks with receipts.
type Chain struct {
	proc     Processor
	st       *StateDB
	blocks   []*Block
	receipts [][]*Receipt
}

// NewChain returns an empty chain over a fresh state. The genesis allocation
// can be applied directly to State() before the first block.
func NewChain() *Chain {
	return &Chain{st: NewStateDB()}
}

// State returns the chain's state database.
func (c *Chain) State() *StateDB { return c.st }

// Height returns the number of blocks.
func (c *Chain) Height() int { return len(c.blocks) }

// TipHash returns the hash of the last block, or the zero hash.
func (c *Chain) TipHash() types.Hash {
	if len(c.blocks) == 0 {
		return types.ZeroHash
	}
	return c.blocks[len(c.blocks)-1].Hash()
}

// Block returns the block at height i.
func (c *Chain) Block(i int) *Block { return c.blocks[i] }

// Receipts returns the receipts of the block at height i.
func (c *Chain) Receipts(i int) []*Receipt { return c.receipts[i] }

// Blocks returns the block sequence (copy of the slice, shared blocks).
func (c *Chain) Blocks() []*Block {
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// Append validates and executes b on top of the current state.
func (c *Chain) Append(b *Block) ([]*Receipt, error) {
	if b.Height != uint64(len(c.blocks)) {
		return nil, fmt.Errorf("account: block height %d, want %d", b.Height, len(c.blocks))
	}
	if b.PrevHash != c.TipHash() {
		return nil, fmt.Errorf("account: block %d prev-hash mismatch", b.Height)
	}
	receipts, err := c.proc.ApplyBlock(c.st, b)
	if err != nil {
		return nil, err
	}
	c.st.DiscardJournal()
	c.blocks = append(c.blocks, b)
	c.receipts = append(c.receipts, receipts)
	return receipts, nil
}
