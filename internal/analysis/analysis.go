// Package analysis implements the paper's empirical-study pipeline (§IV):
// per-block metrics are collected over a chain's history, divided into
// fixed-size buckets (the paper uses 20–200), and averaged with
// transaction-count or gas weights ("blocks having more transactions or
// consuming more [gas] should be weighted more heavily, because they have a
// greater impact on the total execution time").
package analysis

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"txconcur/internal/core"
)

// BlockPoint is one measured block in a history.
type BlockPoint struct {
	Height uint64
	Time   int64
	M      core.Metrics
}

// History is an ordered sequence of measured blocks.
type History struct {
	Chain  string
	Points []BlockPoint
}

// Add appends one measured block.
func (h *History) Add(height uint64, t int64, m core.Metrics) {
	h.Points = append(h.Points, BlockPoint{Height: height, Time: t, M: m})
}

// Len returns the number of measured blocks.
func (h *History) Len() int { return len(h.Points) }

// Bucket is the weighted summary of a span of consecutive blocks.
type Bucket struct {
	// StartTime and EndTime delimit the bucket (unix seconds).
	StartTime, EndTime int64
	// Blocks is the number of blocks aggregated.
	Blocks int

	// MeanTxs is the mean number of regular transactions per block; the
	// paper's Figures 4a/5a/8a/9a.
	MeanTxs float64
	// MeanAllTxs includes internal transactions (Figure 4a "all TXs").
	MeanAllTxs float64
	// MeanInputs is the mean number of input TXOs per block (Figure 5a).
	MeanInputs float64
	// MeanLCC is the mean absolute LCC size (Figure 9c).
	MeanLCC float64

	// SingleTxWeighted is the transaction-weighted single-transaction
	// conflict rate: Σ conflicted / Σ txs.
	SingleTxWeighted float64
	// SingleGasWeighted is the gas-weighted single-transaction conflict
	// rate: Σ (rate_i · gas_i) / Σ gas_i.
	SingleGasWeighted float64
	// GroupTxWeighted is the transaction-weighted group conflict rate:
	// Σ LCC / Σ txs.
	GroupTxWeighted float64
	// GroupGasWeighted is the gas-weighted group conflict rate.
	GroupGasWeighted float64
}

// ErrNoData reports an empty history or invalid bucket count.
var ErrNoData = errors.New("analysis: no data")

// Bucketize divides the history into numBuckets spans of (nearly) equal
// block count, in order, and computes each span's weighted averages. The
// paper's figures use between 20 and 200 buckets.
func Bucketize(h *History, numBuckets int) ([]Bucket, error) {
	n := len(h.Points)
	if n == 0 || numBuckets < 1 {
		return nil, fmt.Errorf("%w: %d points, %d buckets", ErrNoData, n, numBuckets)
	}
	if numBuckets > n {
		numBuckets = n
	}
	out := make([]Bucket, 0, numBuckets)
	for b := 0; b < numBuckets; b++ {
		lo := b * n / numBuckets
		hi := (b + 1) * n / numBuckets
		if hi <= lo {
			continue
		}
		out = append(out, summarize(h.Points[lo:hi]))
	}
	return out, nil
}

// summarize computes the weighted averages over one span of blocks.
func summarize(points []BlockPoint) Bucket {
	bk := Bucket{
		StartTime: points[0].Time,
		EndTime:   points[len(points)-1].Time,
		Blocks:    len(points),
	}
	var txs, internal, inputs, conflicted, lcc float64
	var gasTotal, gasSingle, gasGroup float64
	for _, p := range points {
		m := p.M
		txs += float64(m.NumTxs)
		internal += float64(m.NumInternal)
		inputs += float64(m.NumInputs)
		conflicted += float64(m.Conflicted)
		lcc += float64(m.LCC)
		// Gas weighting operates per transaction, as in the paper's
		// Ethereum UDF: conflicted gas over total gas.
		gasTotal += float64(m.GasUsed)
		gasSingle += float64(m.ConflictedGas)
		gasGroup += float64(m.LCCGas)
	}
	nb := float64(bk.Blocks)
	bk.MeanTxs = txs / nb
	bk.MeanAllTxs = (txs + internal) / nb
	bk.MeanInputs = inputs / nb
	bk.MeanLCC = lcc / nb
	if txs > 0 {
		bk.SingleTxWeighted = conflicted / txs
		bk.GroupTxWeighted = lcc / txs
	}
	if gasTotal > 0 {
		bk.SingleGasWeighted = gasSingle / gasTotal
		bk.GroupGasWeighted = gasGroup / gasTotal
	}
	return bk
}

// Summary computes the whole-history weighted averages (a single bucket).
func Summary(h *History) (Bucket, error) {
	if len(h.Points) == 0 {
		return Bucket{}, ErrNoData
	}
	return summarize(h.Points), nil
}

// Column selects one series from a bucket for rendering.
type Column struct {
	Name string
	Get  func(Bucket) float64
}

// StandardColumns returns the series the paper's per-chain figures plot.
func StandardColumns() []Column {
	return []Column{
		{Name: "txs", Get: func(b Bucket) float64 { return b.MeanTxs }},
		{Name: "all_txs", Get: func(b Bucket) float64 { return b.MeanAllTxs }},
		{Name: "inputs", Get: func(b Bucket) float64 { return b.MeanInputs }},
		{Name: "lcc_abs", Get: func(b Bucket) float64 { return b.MeanLCC }},
		{Name: "single_tx_w", Get: func(b Bucket) float64 { return b.SingleTxWeighted }},
		{Name: "single_gas_w", Get: func(b Bucket) float64 { return b.SingleGasWeighted }},
		{Name: "group_tx_w", Get: func(b Bucket) float64 { return b.GroupTxWeighted }},
		{Name: "group_gas_w", Get: func(b Bucket) float64 { return b.GroupGasWeighted }},
	}
}

// WriteCSV renders buckets as CSV with a time column followed by the given
// series columns.
func WriteCSV(w io.Writer, buckets []Bucket, cols []Column) error {
	header := make([]string, 0, len(cols)+1)
	header = append(header, "time")
	for _, c := range cols {
		header = append(header, c.Name)
	}
	if _, err := io.WriteString(w, strings.Join(header, ",")+"\n"); err != nil {
		return err
	}
	for _, b := range buckets {
		row := make([]string, 0, len(cols)+1)
		mid := b.StartTime + (b.EndTime-b.StartTime)/2
		row = append(row, time.Unix(mid, 0).UTC().Format("2006-01-02"))
		for _, c := range cols {
			row = append(row, strconv.FormatFloat(c.Get(b), 'g', 6, 64))
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders a compact unicode chart of a series, scaled to
// [min, max] of the data. It is the terminal stand-in for the paper's
// plots.
func Sparkline(buckets []Bucket, col Column) string {
	if len(buckets) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, len(buckets))
	for i, b := range buckets {
		v := col.Get(b)
		vals[i] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		sb.WriteRune(levels[idx])
	}
	return fmt.Sprintf("%s [%.3g..%.3g]", sb.String(), lo, hi)
}
