package analysis

import (
	"errors"
	"math"
	"strings"
	"testing"

	"txconcur/internal/core"
)

func point(h uint64, t int64, txs, conflicted, lcc int, gas uint64) BlockPoint {
	return BlockPoint{
		Height: h, Time: t,
		M: core.Metrics{NumTxs: txs, Conflicted: conflicted, LCC: lcc, GasUsed: gas},
	}
}

func TestBucketizeCounts(t *testing.T) {
	h := &History{Chain: "test"}
	for i := 0; i < 100; i++ {
		h.Add(uint64(i), int64(i*600), core.Metrics{NumTxs: 10, Conflicted: 2, LCC: 2})
	}
	buckets, err := Bucketize(h, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d, want 10", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Blocks
	}
	if total != 100 {
		t.Fatalf("bucketed blocks = %d, want 100", total)
	}
	for _, b := range buckets {
		if b.SingleTxWeighted != 0.2 || b.GroupTxWeighted != 0.2 {
			t.Fatalf("bucket rates = %v/%v, want 0.2", b.SingleTxWeighted, b.GroupTxWeighted)
		}
		if b.MeanTxs != 10 {
			t.Fatalf("mean txs = %v", b.MeanTxs)
		}
	}
}

func TestBucketizeUneven(t *testing.T) {
	h := &History{}
	for i := 0; i < 7; i++ {
		h.Add(uint64(i), int64(i), core.Metrics{NumTxs: 1})
	}
	buckets, err := Bucketize(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		if b.Blocks == 0 {
			t.Fatal("empty bucket")
		}
		total += b.Blocks
	}
	if total != 7 {
		t.Fatalf("total = %d", total)
	}
}

func TestBucketizeMoreBucketsThanBlocks(t *testing.T) {
	h := &History{}
	h.Add(0, 0, core.Metrics{NumTxs: 4, Conflicted: 2, LCC: 2})
	buckets, err := Bucketize(h, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 {
		t.Fatalf("buckets = %d, want 1", len(buckets))
	}
}

func TestBucketizeErrors(t *testing.T) {
	if _, err := Bucketize(&History{}, 10); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty: %v", err)
	}
	h := &History{}
	h.Add(0, 0, core.Metrics{})
	if _, err := Bucketize(h, 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("zero buckets: %v", err)
	}
	if _, err := Summary(&History{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("summary empty: %v", err)
	}
}

// TestTxWeighting verifies the paper's weighting rule: a big block's rate
// dominates the bucket average.
func TestTxWeighting(t *testing.T) {
	h := &History{}
	// Block with 1000 txs, all conflicted; block with 10 txs, none.
	h.Add(0, 0, core.Metrics{NumTxs: 1000, Conflicted: 1000, LCC: 1000})
	h.Add(1, 1, core.Metrics{NumTxs: 10, Conflicted: 0, LCC: 1})
	s, err := Summary(h)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 / 1010.0
	if math.Abs(s.SingleTxWeighted-want) > 1e-12 {
		t.Fatalf("tx-weighted single = %v, want %v", s.SingleTxWeighted, want)
	}
	// An unweighted mean would be ~0.5; the weighted one must exceed 0.99.
	if s.SingleTxWeighted < 0.99 {
		t.Fatal("weighting not applied")
	}
}

// TestGasWeighting verifies the gas-weighted variant used for Ethereum
// (Figure 4b): the rate is the gas of conflicted transactions over total
// gas, per transaction — so a block whose cheap transactions conflict while
// its expensive ones don't shows a gas-weighted rate below the tx-weighted
// one (the paper's contract-creation observation, §IV-A).
func TestGasWeighting(t *testing.T) {
	h := &History{}
	// Block 0: 10 txs, 5 conflicted — but the conflicted ones are cheap
	// (100 of 10100 total gas).
	h.Add(0, 0, core.Metrics{
		NumTxs: 10, Conflicted: 5, LCC: 5,
		GasUsed: 10100, ConflictedGas: 100, LCCGas: 100,
	})
	s, err := Summary(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.SingleTxWeighted != 0.5 {
		t.Fatalf("tx-weighted = %v, want 0.5", s.SingleTxWeighted)
	}
	wantGas := 100.0 / 10100.0
	if math.Abs(s.SingleGasWeighted-wantGas) > 1e-12 {
		t.Fatalf("gas-weighted = %v, want %v", s.SingleGasWeighted, wantGas)
	}
	if math.Abs(s.GroupGasWeighted-wantGas) > 1e-12 {
		t.Fatalf("gas-weighted group = %v, want %v", s.GroupGasWeighted, wantGas)
	}
	if s.SingleGasWeighted >= s.SingleTxWeighted {
		t.Fatal("cheap conflicts must drive the gas-weighted rate below the tx-weighted one")
	}
	// A second block with expensive conflicts pulls the aggregate up,
	// weighted by gas across blocks.
	h.Add(1, 1, core.Metrics{
		NumTxs: 10, Conflicted: 10, LCC: 10,
		GasUsed: 9900, ConflictedGas: 9900, LCCGas: 9900,
	})
	s, err = Summary(h)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := (100.0 + 9900.0) / (10100.0 + 9900.0)
	if math.Abs(s.SingleGasWeighted-wantAgg) > 1e-12 {
		t.Fatalf("aggregate gas-weighted = %v, want %v", s.SingleGasWeighted, wantAgg)
	}
}

func TestBucketTimesOrdered(t *testing.T) {
	h := &History{}
	for i := 0; i < 40; i++ {
		h.Add(uint64(i), int64(1000+i*600), core.Metrics{NumTxs: 1})
	}
	buckets, err := Bucketize(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buckets {
		if b.EndTime < b.StartTime {
			t.Fatalf("bucket %d: end < start", i)
		}
		if i > 0 && b.StartTime < buckets[i-1].EndTime {
			t.Fatalf("bucket %d overlaps predecessor", i)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	h := &History{}
	h.Add(0, 86400, core.Metrics{NumTxs: 10, Conflicted: 5, LCC: 3, GasUsed: 100})
	h.Add(1, 172800, core.Metrics{NumTxs: 20, Conflicted: 10, LCC: 6, GasUsed: 200})
	buckets, err := Bucketize(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cols := []Column{
		{Name: "single", Get: func(b Bucket) float64 { return b.SingleTxWeighted }},
	}
	if err := WriteCSV(&sb, buckets, cols); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3 (header + 2 rows):\n%s", len(lines), out)
	}
	if lines[0] != "time,single" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "0.5") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSparkline(t *testing.T) {
	buckets := []Bucket{
		{SingleTxWeighted: 0.1},
		{SingleTxWeighted: 0.5},
		{SingleTxWeighted: 0.9},
	}
	col := Column{Name: "s", Get: func(b Bucket) float64 { return b.SingleTxWeighted }}
	s := Sparkline(buckets, col)
	if len(s) == 0 {
		t.Fatal("empty sparkline")
	}
	if !strings.Contains(s, "0.1") || !strings.Contains(s, "0.9") {
		t.Fatalf("sparkline missing range: %q", s)
	}
	if Sparkline(nil, col) != "" {
		t.Fatal("nil buckets should render empty")
	}
	// Constant series should not divide by zero.
	flat := []Bucket{{SingleTxWeighted: 0.5}, {SingleTxWeighted: 0.5}}
	if s := Sparkline(flat, col); len(s) == 0 {
		t.Fatal("flat series should render")
	}
}

func TestStandardColumns(t *testing.T) {
	cols := StandardColumns()
	if len(cols) != 8 {
		t.Fatalf("columns = %d", len(cols))
	}
	b := Bucket{MeanTxs: 5, SingleTxWeighted: 0.25}
	byName := map[string]float64{}
	for _, c := range cols {
		byName[c.Name] = c.Get(b)
	}
	if byName["txs"] != 5 || byName["single_tx_w"] != 0.25 {
		t.Fatalf("column getters wrong: %v", byName)
	}
}
