package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"txconcur/internal/types"
)

// fakeState is a minimal State for VM tests (package account provides the
// production implementation; using a local fake avoids an import cycle in
// tests and pins the interface contract).
type fakeState struct {
	balances map[types.Address]int64
	code     map[types.Address][]byte
	storage  map[types.Address]map[uint64]uint64
	log      []func()
}

func newFakeState() *fakeState {
	return &fakeState{
		balances: make(map[types.Address]int64),
		code:     make(map[types.Address][]byte),
		storage:  make(map[types.Address]map[uint64]uint64),
	}
}

func (f *fakeState) GetBalance(a types.Address) int64 { return f.balances[a] }

func (f *fakeState) AddBalance(a types.Address, v int64) {
	prev := f.balances[a]
	f.log = append(f.log, func() { f.balances[a] = prev })
	f.balances[a] = prev + v
}

func (f *fakeState) SubBalance(a types.Address, v int64) { f.AddBalance(a, -v) }

func (f *fakeState) GetCode(a types.Address) []byte { return f.code[a] }

func (f *fakeState) GetStorage(a types.Address, slot uint64) uint64 {
	return f.storage[a][slot]
}

func (f *fakeState) SetStorage(a types.Address, slot, value uint64) {
	m := f.storage[a]
	prev, existed := m[slot]
	f.log = append(f.log, func() {
		if existed {
			f.storage[a][slot] = prev
		} else if f.storage[a] != nil {
			delete(f.storage[a], slot)
		}
	})
	if m == nil {
		m = make(map[uint64]uint64)
		f.storage[a] = m
	}
	m[slot] = value
}

func (f *fakeState) Snapshot() int { return len(f.log) }

func (f *fakeState) RevertToSnapshot(n int) {
	for i := len(f.log) - 1; i >= n; i-- {
		f.log[i]()
	}
	f.log = f.log[:n]
}

var _ State = (*fakeState)(nil)

func addr(i uint64) types.Address { return types.AddressFromUint64("vmtest", i) }

func testCtx() *Context {
	return &Context{Origin: addr(0), BlockHeight: 7, BlockTime: 1234}
}

// deploy installs a contract and returns its address.
func deploy(st *fakeState, i uint64, c Contract) types.Address {
	a := addr(100 + i)
	st.code[a] = EncodeContract(c)
	return a
}

func run(t *testing.T, st *fakeState, c Contract, value int64, arg uint64, gas uint64) (Result, error) {
	t.Helper()
	to := deploy(st, 0, c)
	st.balances[addr(1)] += value
	return Call(st, testCtx(), addr(1), to, value, arg, gas)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		want uint64
	}{
		{"add", NewAsm().Push(2).Push(3).Op(OpAdd, OpReturn).Bytes(), 5},
		{"sub", NewAsm().Push(10).Push(4).Op(OpSub, OpReturn).Bytes(), 6},
		{"mul", NewAsm().Push(6).Push(7).Op(OpMul, OpReturn).Bytes(), 42},
		{"div", NewAsm().Push(41).Push(5).Op(OpDiv, OpReturn).Bytes(), 8},
		{"div0", NewAsm().Push(41).Push(0).Op(OpDiv, OpReturn).Bytes(), 0},
		{"mod", NewAsm().Push(41).Push(5).Op(OpMod, OpReturn).Bytes(), 1},
		{"mod0", NewAsm().Push(41).Push(0).Op(OpMod, OpReturn).Bytes(), 0},
		{"lt", NewAsm().Push(1).Push(2).Op(OpLT, OpReturn).Bytes(), 1},
		{"gt", NewAsm().Push(1).Push(2).Op(OpGT, OpReturn).Bytes(), 0},
		{"eq", NewAsm().Push(9).Push(9).Op(OpEQ, OpReturn).Bytes(), 1},
		{"iszero", NewAsm().Push(0).Op(OpIsZero, OpReturn).Bytes(), 1},
		{"and", NewAsm().Push(0b1100).Push(0b1010).Op(OpAnd, OpReturn).Bytes(), 0b1000},
		{"or", NewAsm().Push(0b1100).Push(0b1010).Op(OpOr, OpReturn).Bytes(), 0b1110},
		{"xor", NewAsm().Push(0b1100).Push(0b1010).Op(OpXor, OpReturn).Bytes(), 0b0110},
		{"not", NewAsm().Push(0).Op(OpNot, OpReturn).Bytes(), ^uint64(0)},
		{"dup", NewAsm().Push(3).Op(OpDup, OpAdd, OpReturn).Bytes(), 6},
		{"swap", NewAsm().Push(10).Push(3).Op(OpSwap, OpSub, OpReturn).Bytes(), 18446744073709551609}, // 3-10 wraps
		{"pop", NewAsm().Push(1).Push(2).Op(OpPop, OpReturn).Bytes(), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := run(t, newFakeState(), Contract{Code: tc.code}, 0, 0, 100_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Ret != tc.want {
				t.Fatalf("ret = %d, want %d", res.Ret, tc.want)
			}
		})
	}
}

func TestStorageRoundTrip(t *testing.T) {
	st := newFakeState()
	code := NewAsm().
		Sstore(7, 99).
		Push(7).Op(OpSload, OpReturn).
		Bytes()
	res, err := run(t, st, Contract{Code: code}, 0, 0, 100_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ret != 99 {
		t.Fatalf("sload = %d, want 99", res.Ret)
	}
}

func TestEnvOpcodes(t *testing.T) {
	st := newFakeState()
	caller := addr(1)

	code := NewAsm().Op(OpCaller, OpReturn).Bytes()
	res, err := run(t, st, Contract{Code: code}, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != AddressFingerprint(caller) {
		t.Fatalf("CALLER = %d, want %d", res.Ret, AddressFingerprint(caller))
	}

	code = NewAsm().Op(OpCallValue, OpReturn).Bytes()
	res, err = run(t, st, Contract{Code: code}, 5, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 5 {
		t.Fatalf("CALLVALUE = %d, want 5", res.Ret)
	}

	code = NewAsm().Op(OpArg, OpReturn).Bytes()
	res, err = run(t, st, Contract{Code: code}, 0, 1234, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1234 {
		t.Fatalf("ARG = %d, want 1234", res.Ret)
	}

	code = NewAsm().Op(OpHeight, OpReturn).Bytes()
	res, err = run(t, st, Contract{Code: code}, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 7 {
		t.Fatalf("HEIGHT = %d, want 7", res.Ret)
	}

	code = NewAsm().Op(OpTime, OpReturn).Bytes()
	res, err = run(t, st, Contract{Code: code}, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1234 {
		t.Fatalf("TIME = %d, want 1234", res.Ret)
	}

	// BALANCE sees the value transferred in (fresh state: the shared one
	// has accumulated balances from the calls above).
	code = NewAsm().Op(OpBalance, OpReturn).Bytes()
	res, err = run(t, newFakeState(), Contract{Code: code}, 17, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 17 {
		t.Fatalf("BALANCE = %d, want 17", res.Ret)
	}
}

func TestJumpLoop(t *testing.T) {
	// Sum 1..5 with a loop: slot0 = counter, slot1 = acc. JUMPI pops the
	// destination from the top and the condition beneath it.
	code := NewAsm().
		Sstore(0, 5).
		Label("loop").
		Push(0).Op(OpSload).           // [c]
		Op(OpDup, OpIsZero).           // [c, c==0]
		PushLabel("done").Op(OpJumpI). // if c == 0 goto done; [c]
		// acc += c
		Op(OpDup).                    // [c, c]
		Push(1).Op(OpSload, OpAdd).   // [c, c+acc]
		Push(1).Op(OpSwap, OpSstore). // storage[1] = c+acc; [c]
		// c -= 1
		Push(1).Op(OpSub).            // [c-1]
		Push(0).Op(OpSwap, OpSstore). // storage[0] = c-1; []
		PushLabel("loop").Op(OpJump).
		Label("done").
		Push(1).Op(OpSload, OpReturn).
		Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ret != 15 {
		t.Fatalf("loop sum = %d, want 15", res.Ret)
	}
}

func TestOutOfGasInfiniteLoop(t *testing.T) {
	code := NewAsm().Label("x").PushLabel("x").Op(OpJump).Bytes()
	_, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 10_000)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", err)
	}
}

func TestOutOfGasRevertsState(t *testing.T) {
	st := newFakeState()
	code := NewAsm().
		Sstore(0, 42).
		Label("x").PushLabel("x").Op(OpJump).
		Bytes()
	to := deploy(st, 0, Contract{Code: code})
	_, err := Call(st, testCtx(), addr(1), to, 0, 0, 10_000)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", err)
	}
	if got := st.GetStorage(to, 0); got != 0 {
		t.Fatalf("storage not reverted: slot0 = %d", got)
	}
}

func TestGasAccounting(t *testing.T) {
	code := NewAsm().Push(1).Push(2).Op(OpAdd, OpStop).Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := GasFast * 3 // two pushes + add
	if res.GasUsed != want {
		t.Fatalf("GasUsed = %d, want %d", res.GasUsed, want)
	}
}

func TestStackErrors(t *testing.T) {
	if _, err := run(t, newFakeState(), Contract{Code: NewAsm().Op(OpAdd).Bytes()}, 0, 0, 1000); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("underflow: %v", err)
	}
	overflow := NewAsm().Push(1)
	for i := 0; i < maxStack; i++ {
		overflow.Op(OpDup)
	}
	if _, err := run(t, newFakeState(), Contract{Code: overflow.Bytes()}, 0, 0, 100_000); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("overflow: %v", err)
	}
}

func TestBadJumpAndOpcodes(t *testing.T) {
	if _, err := run(t, newFakeState(), Contract{Code: NewAsm().Push(9999).Op(OpJump).Bytes()}, 0, 0, 1000); !errors.Is(err, ErrBadJump) {
		t.Fatalf("bad jump: %v", err)
	}
	if _, err := run(t, newFakeState(), Contract{Code: []byte{0xff}}, 0, 0, 1000); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("bad opcode: %v", err)
	}
	if _, err := run(t, newFakeState(), Contract{Code: []byte{byte(OpPush), 1, 2}}, 0, 0, 1000); !errors.Is(err, ErrTruncatedCode) {
		t.Fatalf("truncated push: %v", err)
	}
}

func TestRevert(t *testing.T) {
	st := newFakeState()
	code := NewAsm().Sstore(0, 1).Op(OpRevert).Bytes()
	to := deploy(st, 0, Contract{Code: code})
	_, err := Call(st, testCtx(), addr(1), to, 0, 0, 100_000)
	if !errors.Is(err, ErrReverted) {
		t.Fatalf("err = %v, want ErrReverted", err)
	}
	if st.GetStorage(to, 0) != 0 {
		t.Fatal("revert did not roll back storage")
	}
}

func TestPlainTransfer(t *testing.T) {
	st := newFakeState()
	from, to := addr(1), addr(2)
	st.balances[from] = 100
	res, err := Call(st, testCtx(), from, to, 40, 0, 100_000)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if res.GasUsed != 0 {
		t.Fatalf("EOA transfer should use no VM gas, used %d", res.GasUsed)
	}
	if st.GetBalance(from) != 60 || st.GetBalance(to) != 40 {
		t.Fatalf("balances = %d/%d, want 60/40", st.GetBalance(from), st.GetBalance(to))
	}
}

func TestTransferInsufficient(t *testing.T) {
	st := newFakeState()
	_, err := Call(st, testCtx(), addr(1), addr(2), 40, 0, 100_000)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestCallEmitsInternalTx(t *testing.T) {
	st := newFakeState()
	payee := addr(2)
	// Contract forwards half its call value to payee.
	code := NewAsm().
		Op(OpCallValue).Push(2).Op(OpDiv). // value/2
		Push(0).Op(OpSwap).                // arg=0 under value... rebuild:
		Bytes()
	_ = code
	// Simpler: fixed forward of 10.
	forward := NewAsm().Call(0, 10, 0).Op(OpPop, OpStop).Bytes()
	to := deploy(st, 0, Contract{Code: forward, AddrTable: []types.Address{payee}})
	st.balances[addr(1)] = 100
	res, err := Call(st, testCtx(), addr(1), to, 50, 0, 100_000)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if len(res.Internal) != 1 {
		t.Fatalf("internal txs = %d, want 1", len(res.Internal))
	}
	itx := res.Internal[0]
	if itx.From != to || itx.To != payee || itx.Value != 10 || itx.Depth != 1 {
		t.Fatalf("internal tx = %+v", itx)
	}
	if st.GetBalance(payee) != 10 {
		t.Fatalf("payee balance = %d, want 10", st.GetBalance(payee))
	}
}

func TestNestedCallChainTraces(t *testing.T) {
	// A calls B calls C: mirrors the paper's Fig. 1b chain (tx -> contract
	// -> contract -> ElcoinDb). Expect two internal txs with depths 1, 2.
	st := newFakeState()
	cAddr := deploy(st, 3, Contract{Code: NewAsm().Sstore(0, 1).Op(OpStop).Bytes()})
	bCode := NewAsm().Call(0, 0, 0).Op(OpPop, OpStop).Bytes()
	bAddr := deploy(st, 2, Contract{Code: bCode, AddrTable: []types.Address{cAddr}})
	aCode := NewAsm().Call(0, 0, 0).Op(OpPop, OpStop).Bytes()
	aAddr := deploy(st, 1, Contract{Code: aCode, AddrTable: []types.Address{bAddr}})

	res, err := Call(st, testCtx(), addr(1), aAddr, 0, 0, 1_000_000)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if len(res.Internal) != 2 {
		t.Fatalf("internal txs = %d, want 2", len(res.Internal))
	}
	if res.Internal[0].From != aAddr || res.Internal[0].To != bAddr || res.Internal[0].Depth != 1 {
		t.Fatalf("first internal = %+v", res.Internal[0])
	}
	if res.Internal[1].From != bAddr || res.Internal[1].To != cAddr || res.Internal[1].Depth != 2 {
		t.Fatalf("second internal = %+v", res.Internal[1])
	}
	if st.GetStorage(cAddr, 0) != 1 {
		t.Fatal("innermost contract's write lost")
	}
}

func TestFailedCalleeIsContained(t *testing.T) {
	// Callee reverts; caller sees success flag 0 and keeps running, and the
	// callee's state changes are rolled back (EVM containment).
	st := newFakeState()
	bad := deploy(st, 2, Contract{Code: NewAsm().Sstore(0, 9).Op(OpRevert).Bytes()})
	code := NewAsm().
		Call(0, 0, 0). // success flag on stack
		Op(OpReturn).
		Bytes()
	caller := deploy(st, 1, Contract{Code: code, AddrTable: []types.Address{bad}})
	res, err := Call(st, testCtx(), addr(1), caller, 0, 0, 1_000_000)
	if err != nil {
		t.Fatalf("caller should survive callee failure: %v", err)
	}
	if res.Ret != 0 {
		t.Fatalf("success flag = %d, want 0", res.Ret)
	}
	if st.GetStorage(bad, 0) != 0 {
		t.Fatal("failed callee's storage write survived")
	}
	// The failed call's internal trace is not recorded, as geth drops
	// traces of reverted frames from the committed set.
	if len(res.Internal) != 1 {
		t.Fatalf("internal txs = %d, want 1 (the attempted call itself)", len(res.Internal))
	}
}

func TestCallDepthLimit(t *testing.T) {
	// Self-recursive contract must stop at MaxCallDepth.
	st := newFakeState()
	self := addr(100)
	code := NewAsm().Call(0, 0, 0).Op(OpPop, OpStop).Bytes()
	st.code[self] = EncodeContract(Contract{Code: code, AddrTable: []types.Address{self}})
	res, err := Call(st, testCtx(), addr(1), self, 0, 0, 100_000_000)
	if err != nil {
		t.Fatalf("recursion should be contained: %v", err)
	}
	maxDepth := 0
	for _, itx := range res.Internal {
		if itx.Depth > maxDepth {
			maxDepth = itx.Depth
		}
	}
	// Frames up to MaxCallDepth execute; the frame at MaxCallDepth records
	// one final attempted call (depth MaxCallDepth+1) that fails.
	if maxDepth != MaxCallDepth+1 {
		t.Fatalf("max depth reached = %d, want %d", maxDepth, MaxCallDepth+1)
	}
}

func TestLogs(t *testing.T) {
	code := NewAsm().Push(11).Op(OpLog).Push(22).Op(OpLog, OpStop).Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logs) != 2 || res.Logs[0] != 11 || res.Logs[1] != 22 {
		t.Fatalf("logs = %v, want [11 22]", res.Logs)
	}
}

func TestContractEncodeDecode(t *testing.T) {
	c := Contract{
		Code:      []byte{1, 2, 3},
		AddrTable: []types.Address{addr(5), addr(6)},
	}
	got, err := DecodeContract(EncodeContract(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.AddrTable) != 2 || got.AddrTable[0] != addr(5) || got.AddrTable[1] != addr(6) {
		t.Fatalf("addr table = %v", got.AddrTable)
	}
	if string(got.Code) != string(c.Code) {
		t.Fatalf("code = %v", got.Code)
	}
	// Empty blob decodes to empty contract.
	if c, err := DecodeContract(nil); err != nil || len(c.Code) != 0 {
		t.Fatalf("empty decode: %v %v", c, err)
	}
	// Truncated table errors.
	if _, err := DecodeContract([]byte{5, 1, 2}); !errors.Is(err, ErrTruncatedCode) {
		t.Fatalf("truncated table: %v", err)
	}
}

func TestContractRoundTripProperty(t *testing.T) {
	f := func(code []byte, nAddrs uint8) bool {
		n := int(nAddrs % 8)
		c := Contract{Code: code, AddrTable: make([]types.Address, n)}
		for i := range c.AddrTable {
			c.AddrTable[i] = addr(uint64(i))
		}
		got, err := DecodeContract(EncodeContract(c))
		if err != nil {
			return false
		}
		if len(got.AddrTable) != n || string(got.Code) != string(code) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBadAddrIndex(t *testing.T) {
	code := NewAsm().Call(3, 0, 0).Op(OpStop).Bytes()
	_, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 100_000)
	if !errors.Is(err, ErrBadAddrIndex) {
		t.Fatalf("err = %v, want ErrBadAddrIndex", err)
	}
}
