package vm

import (
	"encoding/binary"
	"fmt"
)

// Asm is a tiny fluent assembler for VM code, used by the workload
// generators and tests to build contracts without hand-encoding immediates.
//
//	code := vm.NewAsm().
//		Push(1).Push(2).Op(OpAdd).
//		Push(0).Op(OpSwap).Op(OpSstore). // storage[0] = 3
//		Op(OpStop).Bytes()
type Asm struct {
	code   []byte
	labels map[string]int
	// fixups records label references to patch: code offset -> label name.
	fixups map[int]string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Op appends a plain opcode.
func (a *Asm) Op(ops ...Opcode) *Asm {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends PUSH with a 64-bit immediate.
func (a *Asm) Push(v uint64) *Asm {
	a.code = append(a.code, byte(OpPush))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	a.code = append(a.code, tmp[:]...)
	return a
}

// PushAddr appends PUSHADDR with an address-table index.
func (a *Asm) PushAddr(idx int) *Asm {
	a.code = append(a.code, byte(OpPushAddr), byte(idx))
	return a
}

// Label defines a jump target at the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.code)
	return a
}

// PushLabel pushes the (eventually resolved) position of a label, for use
// before OpJump/OpJumpI.
func (a *Asm) PushLabel(name string) *Asm {
	a.code = append(a.code, byte(OpPush))
	a.fixups[len(a.code)] = name
	a.code = append(a.code, make([]byte, 8)...)
	return a
}

// Sstore appends code to write value into slot: storage[slot] = value.
// OpSstore pops the value from the top of the stack and the slot beneath it.
func (a *Asm) Sstore(slot, value uint64) *Asm {
	return a.Push(slot).Push(value).Op(OpSstore)
}

// Call appends code to call the address-table entry idx with the given
// value and argument, leaving the success flag on the stack. OpCall pops the
// table index from the top, then the argument, then the value.
func (a *Asm) Call(idx int, value, arg uint64) *Asm {
	return a.Push(value).Push(arg).PushAddr(idx).Op(OpCall)
}

// Bytes resolves labels and returns the final code. It panics on an
// undefined label, which is a programming error in the caller (assembly
// happens at workload-construction time, not at run time).
func (a *Asm) Bytes() []byte {
	for off, name := range a.fixups {
		pos, ok := a.labels[name]
		if !ok {
			panic(fmt.Sprintf("vm: undefined label %q", name))
		}
		binary.BigEndian.PutUint64(a.code[off:], uint64(pos))
	}
	out := make([]byte, len(a.code))
	copy(out, a.code)
	return out
}
