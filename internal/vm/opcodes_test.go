package vm

import (
	"testing"

	"txconcur/internal/types"
)

func TestOpSelf(t *testing.T) {
	st := newFakeState()
	code := NewAsm().Op(OpSelf, OpReturn).Bytes()
	to := deploy(st, 0, Contract{Code: code})
	res, err := Call(st, testCtx(), addr(1), to, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != AddressFingerprint(to) {
		t.Fatalf("SELF = %d, want %d", res.Ret, AddressFingerprint(to))
	}
}

func TestOpGas(t *testing.T) {
	// GAS pushes the gas remaining *after* the GAS opcode's own cost.
	code := NewAsm().Op(OpGas, OpReturn).Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1000 - GasQuick); res.Ret != want {
		t.Fatalf("GAS = %d, want %d", res.Ret, want)
	}
}

func TestOpPC(t *testing.T) {
	// PC pushes the position of the PC opcode itself. The first PUSH takes
	// 9 bytes (opcode + 8-byte immediate), POP one, so PC sits at offset
	// 10.
	code := NewAsm().Push(0).Op(OpPop, OpPC, OpReturn).Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Fatalf("PC = %d, want 10", res.Ret)
	}
}

func TestConditionalJumpNotTaken(t *testing.T) {
	// JUMPI with a false condition falls through.
	code := NewAsm().
		Push(0).                       // condition: false
		PushLabel("skip").Op(OpJumpI). // not taken
		Push(42).Op(OpReturn).         // executed
		Label("skip").Push(7).Op(OpReturn).
		Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("fall-through returned %d, want 42", res.Ret)
	}
}

func TestImplicitStop(t *testing.T) {
	// Running off the end of the code halts successfully (like STOP).
	code := NewAsm().Push(1).Push(2).Op(OpAdd).Bytes()
	res, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1000)
	if err != nil {
		t.Fatalf("implicit stop: %v", err)
	}
	if res.Ret != 0 {
		t.Fatalf("no RETURN executed, ret = %d", res.Ret)
	}
}

func TestTruncatedPushAddr(t *testing.T) {
	code := []byte{byte(OpPushAddr)} // immediate missing
	if _, err := run(t, newFakeState(), Contract{Code: code}, 0, 0, 1000); err == nil {
		t.Fatal("truncated PUSHADDR accepted")
	}
}

func TestValueCallRequiresBalance(t *testing.T) {
	// A contract forwarding more value than it holds: the inner call fails
	// (insufficient balance), the outer frame continues with success flag
	// 0, and no value moves.
	st := newFakeState()
	payee := addr(2)
	code := NewAsm().Call(0, 1_000_000, 0).Op(OpReturn).Bytes()
	to := deploy(st, 0, Contract{Code: code, AddrTable: []types.Address{payee}})
	res, err := Call(st, testCtx(), addr(1), to, 0, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0 {
		t.Fatalf("success flag = %d, want 0", res.Ret)
	}
	if st.GetBalance(payee) != 0 {
		t.Fatal("value moved despite failed call")
	}
}
