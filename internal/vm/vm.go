// Package vm implements a gas-metered stack virtual machine in the style of
// the Ethereum Virtual Machine, scaled down to 64-bit words. It exists so
// that the account-model workloads of the paper execute *real* contract
// code: the CALL opcode emits the internal-transaction traces that the
// paper's transaction dependency graph requires (§II-A), and gas consumption
// drives the gas-weighted conflict metrics of §III-A3.
//
// Differences from the real EVM, and why they do not matter for the paper's
// analysis: words are 64-bit rather than 256-bit (the TDG only needs
// sender/receiver/value of calls); contracts address each other through a
// per-contract address table rather than raw 160-bit pushes (same
// reachability, simpler encoding); constructor semantics are elided
// (deployments install code verbatim). Gas prices follow the relative
// ordering of Ethereum's schedule (storage writes ≫ storage reads ≫
// arithmetic).
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"txconcur/internal/types"
)

// State is the mutable world the VM runs against. *account.StateDB
// implements it.
type State interface {
	GetBalance(types.Address) int64
	AddBalance(types.Address, int64)
	SubBalance(types.Address, int64)
	GetCode(types.Address) []byte
	GetStorage(addr types.Address, slot uint64) uint64
	SetStorage(addr types.Address, slot, value uint64)
	Snapshot() int
	RevertToSnapshot(int)
}

// Opcode is a VM instruction.
type Opcode byte

// Instruction set. Values are part of the code encoding.
const (
	OpStop Opcode = iota + 1
	OpPush        // 8-byte big-endian immediate
	OpPop
	OpAdd
	OpSub
	OpMul
	OpDiv // division by zero yields zero, as in the EVM
	OpMod
	OpLT
	OpGT
	OpEQ
	OpIsZero
	OpAnd
	OpOr
	OpXor
	OpNot
	OpDup  // duplicate top of stack
	OpSwap // swap top two
	OpJump // absolute, operand from stack
	OpJumpI
	OpPC
	OpSload  // pop slot, push value
	OpSstore // pop slot, value
	OpCaller // push fingerprint of caller address
	OpSelf   // push fingerprint of executing contract address
	OpCallValue
	OpArg      // push the call argument word
	OpBalance  // push balance of executing contract
	OpHeight   // push block height
	OpTime     // push block timestamp
	OpGas      // push remaining gas
	OpPushAddr // 1-byte immediate: index into the contract's address table
	OpCall     // pop arg, value, addr-table-index; call; push 1 on success else 0
	OpLog      // pop a word into the log
	OpReturn   // pop a word, halt successfully with it
	OpRevert   // halt, reverting this frame's state changes
)

// Gas costs, mirroring the relative ordering of Ethereum's schedule.
const (
	GasQuick    uint64 = 2        // PC, CALLER, CALLVALUE, ...
	GasFast     uint64 = 3        // arithmetic, push, dup
	GasMid      uint64 = 5        // mul/div/mod
	GasJump     uint64 = 8        // jumps, log
	GasBalance  uint64 = 20       // balance lookup
	GasSload    uint64 = 50       // storage read
	GasSstore   uint64 = 200      // storage write
	GasCallBase uint64 = 40       // call overhead (callee gas is forwarded)
	GasTransfer uint64 = 9000 / 4 // value-bearing call surcharge, scaled down

	// MaxCallDepth bounds call nesting, as the EVM's 1024 does; kept small
	// because workload call chains are shallow.
	MaxCallDepth = 64
)

// VM execution errors.
var (
	ErrOutOfGas       = errors.New("vm: out of gas")
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrBadJump        = errors.New("vm: jump destination out of range")
	ErrBadOpcode      = errors.New("vm: illegal opcode")
	ErrTruncatedCode  = errors.New("vm: truncated immediate operand")
	ErrCallDepth      = errors.New("vm: max call depth exceeded")
	ErrInsufficient   = errors.New("vm: insufficient balance for call value")
	ErrBadAddrIndex   = errors.New("vm: address table index out of range")
	ErrReverted       = errors.New("vm: execution reverted")
)

// maxStack bounds the operand stack per frame.
const maxStack = 1024

// InternalTx records one message call made during contract execution — the
// paper's "internal transaction". The TDG adds an edge From→To for each.
type InternalTx struct {
	From  types.Address
	To    types.Address
	Value int64
	Depth int
}

// Context carries per-transaction execution context.
type Context struct {
	Origin      types.Address // transaction sender
	BlockHeight uint64
	BlockTime   int64
}

// Result is the outcome of running a call frame.
type Result struct {
	// Ret is the word passed to RETURN, zero otherwise.
	Ret uint64
	// GasUsed is the gas consumed by this frame and its children.
	GasUsed uint64
	// Internal lists every message call made during execution, in order.
	Internal []InternalTx
	// Logs collects the words passed to LOG.
	Logs []uint64
}

// Contract is the static part of a deployed contract: its code and address
// table (the other contracts and accounts it may call).
type Contract struct {
	Code      []byte
	AddrTable []types.Address
}

// EncodeContract serialises a contract (code plus address table) into the
// byte string stored in the account's code field.
func EncodeContract(c Contract) []byte {
	buf := make([]byte, 0, 2+len(c.AddrTable)*types.AddressSize+len(c.Code))
	buf = append(buf, byte(len(c.AddrTable)))
	for _, a := range c.AddrTable {
		buf = append(buf, a[:]...)
	}
	return append(buf, c.Code...)
}

// DecodeContract parses a stored code blob back into a Contract.
func DecodeContract(blob []byte) (Contract, error) {
	if len(blob) == 0 {
		return Contract{}, nil
	}
	n := int(blob[0])
	need := 1 + n*types.AddressSize
	if len(blob) < need {
		return Contract{}, fmt.Errorf("%w: address table", ErrTruncatedCode)
	}
	c := Contract{AddrTable: make([]types.Address, n)}
	for i := 0; i < n; i++ {
		copy(c.AddrTable[i][:], blob[1+i*types.AddressSize:])
	}
	c.Code = blob[need:]
	return c, nil
}

// AddressFingerprint maps an address to the 64-bit word CALLER/SELF push.
func AddressFingerprint(a types.Address) uint64 {
	return binary.BigEndian.Uint64(a[:8])
}

// Call runs the contract (or plain transfer) at 'to' with the given value,
// argument and gas budget, against the state. It is the entry point used by
// the block processor for the top-level message and recursively by OpCall.
//
// On any error the frame's state changes are reverted; gas consumed up to
// the failure point is still reported in Result.GasUsed (as in the EVM,
// failed frames consume their gas except for explicit REVERT refund
// semantics, which we do not model).
func Call(st State, ctx *Context, caller, to types.Address, value int64, arg uint64, gas uint64) (Result, error) {
	return call(st, ctx, caller, to, value, arg, gas, 0)
}

func call(st State, ctx *Context, caller, to types.Address, value int64, arg uint64, gas uint64, depth int) (Result, error) {
	var res Result
	if depth > MaxCallDepth {
		return res, ErrCallDepth
	}
	snap := st.Snapshot()
	if value != 0 {
		if st.GetBalance(caller) < value {
			return res, fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficient, caller.Short(), st.GetBalance(caller), value)
		}
		st.SubBalance(caller, value)
		st.AddBalance(to, value)
	}
	blob := st.GetCode(to)
	if len(blob) == 0 {
		// Plain transfer to an externally owned account.
		return res, nil
	}
	contract, err := DecodeContract(blob)
	if err != nil {
		st.RevertToSnapshot(snap)
		return res, err
	}
	in := interp{
		st:       st,
		ctx:      ctx,
		self:     to,
		caller:   caller,
		value:    value,
		arg:      arg,
		gas:      gas,
		contract: contract,
		depth:    depth,
	}
	err = in.run()
	res.Ret = in.ret
	res.GasUsed = gas - in.gas
	res.Internal = in.internal
	res.Logs = in.logs
	if err != nil {
		st.RevertToSnapshot(snap)
		res.Internal = nil
		res.Logs = nil
		return res, err
	}
	return res, nil
}

// interp is one executing call frame.
type interp struct {
	st       State
	ctx      *Context
	self     types.Address
	caller   types.Address
	value    int64
	arg      uint64
	gas      uint64
	contract Contract
	depth    int

	stack    []uint64
	pc       int
	ret      uint64
	internal []InternalTx
	logs     []uint64
}

func (in *interp) useGas(g uint64) error {
	if in.gas < g {
		in.gas = 0
		return ErrOutOfGas
	}
	in.gas -= g
	return nil
}

func (in *interp) push(v uint64) error {
	if len(in.stack) >= maxStack {
		return ErrStackOverflow
	}
	in.stack = append(in.stack, v)
	return nil
}

func (in *interp) pop() (uint64, error) {
	if len(in.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	v := in.stack[len(in.stack)-1]
	in.stack = in.stack[:len(in.stack)-1]
	return v, nil
}

func (in *interp) pop2() (a, b uint64, err error) {
	if b, err = in.pop(); err != nil {
		return
	}
	a, err = in.pop()
	return
}

func (in *interp) run() error {
	code := in.contract.Code
	for in.pc < len(code) {
		op := Opcode(code[in.pc])
		in.pc++
		switch op {
		case OpStop:
			return nil
		case OpPush:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			if in.pc+8 > len(code) {
				return ErrTruncatedCode
			}
			v := binary.BigEndian.Uint64(code[in.pc:])
			in.pc += 8
			if err := in.push(v); err != nil {
				return err
			}
		case OpPop:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if _, err := in.pop(); err != nil {
				return err
			}
		case OpAdd, OpSub, OpLT, OpGT, OpEQ, OpAnd, OpOr, OpXor:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			a, b, err := in.pop2()
			if err != nil {
				return err
			}
			var v uint64
			switch op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpLT:
				v = b2u(a < b)
			case OpGT:
				v = b2u(a > b)
			case OpEQ:
				v = b2u(a == b)
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpXor:
				v = a ^ b
			}
			if err := in.push(v); err != nil {
				return err
			}
		case OpMul, OpDiv, OpMod:
			if err := in.useGas(GasMid); err != nil {
				return err
			}
			a, b, err := in.pop2()
			if err != nil {
				return err
			}
			var v uint64
			switch op {
			case OpMul:
				v = a * b
			case OpDiv:
				if b != 0 {
					v = a / b
				}
			case OpMod:
				if b != 0 {
					v = a % b
				}
			}
			if err := in.push(v); err != nil {
				return err
			}
		case OpIsZero, OpNot:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			a, err := in.pop()
			if err != nil {
				return err
			}
			v := ^a
			if op == OpIsZero {
				v = b2u(a == 0)
			}
			if err := in.push(v); err != nil {
				return err
			}
		case OpDup:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			if len(in.stack) == 0 {
				return ErrStackUnderflow
			}
			if err := in.push(in.stack[len(in.stack)-1]); err != nil {
				return err
			}
		case OpSwap:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			n := len(in.stack)
			if n < 2 {
				return ErrStackUnderflow
			}
			in.stack[n-1], in.stack[n-2] = in.stack[n-2], in.stack[n-1]
		case OpJump, OpJumpI:
			if err := in.useGas(GasJump); err != nil {
				return err
			}
			dest, err := in.pop()
			if err != nil {
				return err
			}
			take := true
			if op == OpJumpI {
				cond, err := in.pop()
				if err != nil {
					return err
				}
				take = cond != 0
			}
			if take {
				if dest > uint64(len(code)) {
					return fmt.Errorf("%w: %d", ErrBadJump, dest)
				}
				in.pc = int(dest)
			}
		case OpPC:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(uint64(in.pc - 1)); err != nil {
				return err
			}
		case OpSload:
			if err := in.useGas(GasSload); err != nil {
				return err
			}
			slot, err := in.pop()
			if err != nil {
				return err
			}
			if err := in.push(in.st.GetStorage(in.self, slot)); err != nil {
				return err
			}
		case OpSstore:
			if err := in.useGas(GasSstore); err != nil {
				return err
			}
			slot, val, err := in.pop2()
			if err != nil {
				return err
			}
			in.st.SetStorage(in.self, slot, val)
		case OpCaller:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(AddressFingerprint(in.caller)); err != nil {
				return err
			}
		case OpSelf:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(AddressFingerprint(in.self)); err != nil {
				return err
			}
		case OpCallValue:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(uint64(in.value)); err != nil {
				return err
			}
		case OpArg:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(in.arg); err != nil {
				return err
			}
		case OpBalance:
			if err := in.useGas(GasBalance); err != nil {
				return err
			}
			if err := in.push(uint64(in.st.GetBalance(in.self))); err != nil {
				return err
			}
		case OpHeight:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(in.ctx.BlockHeight); err != nil {
				return err
			}
		case OpTime:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(uint64(in.ctx.BlockTime)); err != nil {
				return err
			}
		case OpGas:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			if err := in.push(in.gas); err != nil {
				return err
			}
		case OpPushAddr:
			if err := in.useGas(GasFast); err != nil {
				return err
			}
			if in.pc >= len(code) {
				return ErrTruncatedCode
			}
			idx := uint64(code[in.pc])
			in.pc++
			if err := in.push(idx); err != nil {
				return err
			}
		case OpCall:
			if err := in.opCall(); err != nil {
				return err
			}
		case OpLog:
			if err := in.useGas(GasJump); err != nil {
				return err
			}
			v, err := in.pop()
			if err != nil {
				return err
			}
			in.logs = append(in.logs, v)
		case OpReturn:
			if err := in.useGas(GasQuick); err != nil {
				return err
			}
			v, err := in.pop()
			if err != nil {
				return err
			}
			in.ret = v
			return nil
		case OpRevert:
			return ErrReverted
		default:
			return fmt.Errorf("%w: 0x%02x at pc %d", ErrBadOpcode, byte(op), in.pc-1)
		}
	}
	return nil
}

// opCall implements the CALL opcode: pop arg, value, address-table index;
// execute the callee with all remaining gas; push a success flag. A failed
// callee consumes the gas it used but does not abort the caller — exactly
// the EVM's containment semantics.
func (in *interp) opCall() error {
	gasCost := GasCallBase
	idx, err := in.pop()
	if err != nil {
		return err
	}
	value, arg, err := in.pop2()
	if err != nil {
		return err
	}
	if value != 0 {
		gasCost += GasTransfer
	}
	if err := in.useGas(gasCost); err != nil {
		return err
	}
	if idx >= uint64(len(in.contract.AddrTable)) {
		return fmt.Errorf("%w: %d of %d", ErrBadAddrIndex, idx, len(in.contract.AddrTable))
	}
	to := in.contract.AddrTable[idx]
	in.internal = append(in.internal, InternalTx{
		From:  in.self,
		To:    to,
		Value: int64(value),
		Depth: in.depth + 1,
	})
	res, err := call(in.st, in.ctx, in.self, to, int64(value), arg, in.gas, in.depth+1)
	in.gas -= res.GasUsed
	if err != nil {
		// The callee's internal calls were rolled back with its state.
		return in.push(0)
	}
	in.internal = append(in.internal, res.Internal...)
	in.logs = append(in.logs, res.Logs...)
	return in.push(1)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
