package basestore

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	genPrefix = "base-"
	genSuffix = ".tbl"
	// compactAfter is the generation count past which Apply folds the
	// store into a single table; bounds the per-Get binary-search fan-out
	// and the file-handle count.
	compactAfter = 8
)

// genName returns the filename of generation g; fixed-width hex makes
// lexical order equal numeric order.
func genName(g uint64) string {
	return fmt.Sprintf("%s%016x%s", genPrefix, g, genSuffix)
}

// parseGenName inverts genName.
func parseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, genPrefix), genSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	g, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// Store is the on-disk base layer: a stack of immutable sorted table
// generations where newer generations shadow older ones. Apply writes a
// new generation atomically (so a crash leaves either the old stack or the
// new one, never a torn table) and Compact folds the stack into one table.
//
// Reads (Get, Range, Has) take a read-lock on the generation stack and may
// run concurrently with each other and with writers up to the atomic swap;
// Apply and Compact serialize among themselves.
type Store struct {
	fsys FS
	dir  string

	wmu sync.Mutex // serializes Apply and Compact

	mu      sync.RWMutex // guards gens and nextGen
	gens    []*Table     // ascending generation order; later shadows earlier
	genIDs  []uint64
	nextGen uint64
}

// OpenStore opens (creating if needed) the base-layer directory. Leftover
// temp files are removed; files with foreign names are ignored; a present
// .tbl file that fails validation is real corruption and an error — the
// atomic writer never leaves a torn table under a durable name.
func OpenStore(fsys FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("basestore: mkdir %s: %w", dir, err)
	}
	names, err := fsys.ListDir(dir)
	if err != nil {
		return nil, fmt.Errorf("basestore: list %s: %w", dir, err)
	}
	s := &Store{fsys: fsys, dir: dir}
	for _, name := range names {
		if strings.HasSuffix(name, TmpSuffix) {
			fsys.Remove(filepath.Join(dir, name)) // crash leftovers are harmless
			continue
		}
		g, ok := parseGenName(name)
		if !ok {
			continue
		}
		t, err := OpenTable(fsys, filepath.Join(dir, name))
		if err != nil {
			s.closeLocked()
			return nil, err
		}
		s.gens = append(s.gens, t)
		s.genIDs = append(s.genIDs, g)
		if g >= s.nextGen {
			s.nextGen = g + 1
		}
	}
	return s, nil
}

// Close closes every open generation.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	for _, t := range s.gens {
		t.retire()
	}
	s.gens, s.genIDs = nil, nil
	return nil
}

// snapshot acquires a read reference on the current generation stack;
// callers must pair it with releaseAll. A compaction that retires a
// referenced table defers the close to the last release.
func (s *Store) snapshot() []*Table {
	s.mu.RLock()
	gens := append([]*Table(nil), s.gens...)
	for _, t := range gens {
		t.acquire()
	}
	s.mu.RUnlock()
	return gens
}

func releaseAll(gens []*Table) {
	for _, t := range gens {
		t.release()
	}
}

// Get returns the newest value written for key, reading newest generation
// first. The second result is false when no generation holds the key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	gens := s.snapshot()
	defer releaseAll(gens)
	for i := len(gens) - 1; i >= 0; i-- {
		if v, ok, err := gens[i].Get(key); ok || err != nil {
			return v, ok, err
		}
	}
	return nil, false, nil
}

// Has reports whether any generation holds key, without touching disk.
func (s *Store) Has(key []byte) bool {
	gens := s.snapshot()
	defer releaseAll(gens)
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i].Has(key) {
			return true
		}
	}
	return false
}

// Apply durably writes entries as a new generation: sorted, deduplicated
// (the last occurrence of a key wins, matching append order semantics),
// written atomically, then swapped into the generation stack. When Apply
// returns nil the batch is durable — a crash at any earlier point leaves
// the previous stack intact. Once the stack exceeds compactAfter
// generations the store compacts before returning.
func (s *Store) Apply(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})
	dedup := sorted[:0]
	for i, e := range sorted {
		if i+1 < len(sorted) && bytes.Equal(e.Key, sorted[i+1].Key) {
			continue // a later duplicate shadows this one
		}
		dedup = append(dedup, e)
	}
	s.mu.RLock()
	g := s.nextGen
	depth := len(s.gens)
	s.mu.RUnlock()
	path := filepath.Join(s.dir, genName(g))
	if err := WriteTable(s.fsys, path, dedup); err != nil {
		return err
	}
	t, err := OpenTable(s.fsys, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.gens = append(s.gens, t)
	s.genIDs = append(s.genIDs, g)
	s.nextGen = g + 1
	s.mu.Unlock()
	if depth+1 > compactAfter {
		return s.compactLocked()
	}
	return nil
}

// Compact folds every generation into a single new one and removes the old
// files. Crash-safe: the merged table is written under the next generation
// number before any old file is removed, and the newest-wins read rule
// makes a crash-leftover mix of merged and unmerged generations read
// identically to the merged table.
func (s *Store) Compact() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.compactLocked()
}

// compactLocked is Compact with wmu held.
func (s *Store) compactLocked() error {
	s.mu.RLock()
	gens := append([]*Table(nil), s.gens...)
	ids := append([]uint64(nil), s.genIDs...)
	g := s.nextGen
	s.mu.RUnlock()
	if len(gens) <= 1 {
		return nil
	}
	merged, err := mergeGens(gens)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, genName(g))
	if err := WriteTable(s.fsys, path, merged); err != nil {
		return err
	}
	t, err := OpenTable(s.fsys, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.gens = []*Table{t}
	s.genIDs = []uint64{g}
	s.nextGen = g + 1
	s.mu.Unlock()
	var ferr error
	for i, old := range gens {
		old.retire()
		if err := s.fsys.Remove(filepath.Join(s.dir, genName(ids[i]))); err != nil && ferr == nil {
			ferr = fmt.Errorf("basestore: remove old generation: %w", err)
		}
	}
	if err := s.fsys.SyncDir(s.dir); err != nil && ferr == nil {
		ferr = fmt.Errorf("basestore: sync dir %s: %w", s.dir, err)
	}
	return ferr
}

// mergeGens k-way merges the generations into one newest-wins sorted entry
// list, reading every value from disk.
func mergeGens(gens []*Table) ([]Entry, error) {
	// idx[i] is the cursor into generation i's key index.
	idx := make([]int, len(gens))
	var out []Entry
	for {
		// Pick the smallest current key; among equals the newest
		// generation (largest i) wins and the older cursors advance past
		// the shadowed entries.
		best := -1
		var bestKey []byte
		for i := range gens {
			if idx[i] >= gens[i].Len() {
				continue
			}
			k := gens[i].Key(idx[i])
			if best < 0 || bytes.Compare(k, bestKey) < 0 {
				best, bestKey = i, k
			} else if bytes.Equal(k, bestKey) {
				best = i // newer generation shadows
			}
		}
		if best < 0 {
			return out, nil
		}
		v, err := gens[best].readVal(idx[best])
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Key: append([]byte(nil), bestKey...), Val: v})
		for i := range gens {
			if idx[i] < gens[i].Len() && bytes.Equal(gens[i].Key(idx[i]), bestKey) {
				idx[i]++
			}
		}
	}
}

// Range calls fn for every live key in ascending order (newest generation's
// value per key) until fn returns false. The iteration sees the generation
// stack as of the call: batches applied concurrently may or may not be
// included, but a compaction mid-iteration never is (the acquired tables
// stay readable until Range returns).
func (s *Store) Range(fn func(key string, val []byte) bool) error {
	gens := s.snapshot()
	defer releaseAll(gens)
	idx := make([]int, len(gens))
	for {
		best := -1
		var bestKey []byte
		for i := range gens {
			if idx[i] >= gens[i].Len() {
				continue
			}
			k := gens[i].Key(idx[i])
			if best < 0 || bytes.Compare(k, bestKey) < 0 {
				best, bestKey = i, k
			} else if bytes.Equal(k, bestKey) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		v, err := gens[best].readVal(idx[best])
		if err != nil {
			return err
		}
		stop := !fn(string(bestKey), v)
		for i := range gens {
			if idx[i] < gens[i].Len() && bytes.Equal(gens[i].Key(idx[i]), bestKey) {
				idx[i]++
			}
		}
		if stop {
			return nil
		}
	}
}

// StoreStats describes the store's resident footprint.
type StoreStats struct {
	// Generations is the current table count.
	Generations int
	// IndexedKeys is the total key count across generations (shadowed
	// keys counted once per generation — this is the RAM-resident index
	// size, not the live key count).
	IndexedKeys int
}

// Stats returns the store's resident footprint.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StoreStats{Generations: len(s.gens)}
	for _, t := range s.gens {
		st.IndexedKeys += t.Len()
	}
	return st
}
