// Package basestore is the disk-backed base layer below the mvstore
// version cache: immutable sorted table files with CRC-framed entries and
// an in-RAM index, written atomically (temp file, fsync, rename, directory
// fsync) the same way the WAL writes checkpoints. The execution engines
// evict cold, GC-resolved keys from the version cache into the base layer
// and read through to it on cache misses, so the cache holds only hot keys
// and total state can exceed RAM.
//
// The package also owns the filesystem seam (File, FS, OS,
// WriteFileAtomic) the whole durability stack shares; internal/wal aliases
// these so its MemFS/FaultFS crash harness drives the base layer too.
package basestore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the durability layers write through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync forces written bytes to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail removal on open).
	Truncate(size int64) error
}

// FS is the filesystem seam: the OS implementation for production,
// wal.MemFS and wal.FaultFS for the deterministic crash harness.
// Implementations must be safe for concurrent use (the log appender, the
// checkpoint writer and the base-layer evictor run on different
// goroutines).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// ListDir returns the names (not paths) of dir's entries in sorted
	// order, so directory scans are deterministic on every backend.
	ListDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making created/renamed entries
	// durable. Creating or renaming a file persists its data blocks, not
	// its directory entry; a crash before SyncDir may lose the name.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile implements FS via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ListDir implements FS via os.ReadDir (whose results are already sorted).
func (OS) ListDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS by fsyncing the opened directory.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// TmpSuffix marks in-flight atomic writes; recovery scans skip these and
// a crash can leave them behind harmlessly.
const TmpSuffix = ".tmp"

// WriteFileAtomic writes a file so that a crash at any point leaves either
// the old content at path or the new content — never a torn mixture: the
// payload goes to path+".tmp", is fsynced, the temp file is renamed over
// path, and the directory entry is fsynced. Shared by the table writer,
// the checkpoint writer and the history-store savers.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + TmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("basestore: create %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("basestore: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("basestore: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("basestore: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("basestore: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("basestore: sync dir of %s: %w", path, err)
	}
	return nil
}
