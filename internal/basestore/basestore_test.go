package basestore_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"txconcur/internal/basestore"
	"txconcur/internal/wal"
)

func ent(k, v string) basestore.Entry {
	return basestore.Entry{Key: []byte(k), Val: []byte(v)}
}

// TestTableRoundTrip: a written table reopens with the same entries, in
// order, and serves point reads.
func TestTableRoundTrip(t *testing.T) {
	mem := wal.NewMemFS()
	entries := []basestore.Entry{ent("a", "1"), ent("b", ""), ent("cc", "three")}
	if err := basestore.WriteTable(mem, "d/t.tbl", entries); err != nil {
		t.Fatal(err)
	}
	tbl, err := basestore.OpenTable(mem, "d/t.tbl")
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if tbl.Len() != len(entries) {
		t.Fatalf("len %d, want %d", tbl.Len(), len(entries))
	}
	var got []basestore.Entry
	if err := tbl.Range(func(k, v []byte) bool {
		got = append(got, basestore.Entry{Key: append([]byte(nil), k...), Val: append([]byte(nil), v...)})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		if !bytes.Equal(got[i].Key, e.Key) || !bytes.Equal(got[i].Val, e.Val) {
			t.Fatalf("entry %d: got %q=%q, want %q=%q", i, got[i].Key, got[i].Val, e.Key, e.Val)
		}
		v, ok, err := tbl.Get(e.Key)
		if err != nil || !ok || !bytes.Equal(v, e.Val) {
			t.Fatalf("Get(%q) = %q,%v,%v", e.Key, v, ok, err)
		}
	}
	if _, ok, _ := tbl.Get([]byte("zz")); ok {
		t.Fatal("absent key found")
	}
	if tbl.Has([]byte("zz")) || !tbl.Has([]byte("b")) {
		t.Fatal("Has disagrees with contents")
	}
}

// TestWriteTableRejectsUnsorted: out-of-order and duplicate keys are
// writer errors, not silently reordered data.
func TestWriteTableRejectsUnsorted(t *testing.T) {
	mem := wal.NewMemFS()
	if err := basestore.WriteTable(mem, "d/t.tbl", []basestore.Entry{ent("b", "1"), ent("a", "2")}); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	if err := basestore.WriteTable(mem, "d/t.tbl", []basestore.Entry{ent("a", "1"), ent("a", "2")}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

// TestOpenTableRejectsCorruption: truncations, bit flips and foreign bytes
// all fail with ErrCorrupt — recovery code keys on that sentinel.
func TestOpenTableRejectsCorruption(t *testing.T) {
	mem := wal.NewMemFS()
	if err := basestore.WriteTable(mem, "d/t.tbl", []basestore.Entry{ent("a", "one"), ent("b", "two")}); err != nil {
		t.Fatal(err)
	}
	full, ok := mem.ReadFileVolatile("d/t.tbl")
	if !ok {
		t.Fatal("table file missing")
	}
	cases := map[string][]byte{
		"truncated tail":   full[:len(full)-3],
		"truncated header": full[:len(full)/2],
		"empty":            {},
		"garbage":          []byte("not a table at all"),
	}
	flip := append([]byte(nil), full...)
	flip[len(full)-1] ^= 0x20
	cases["bit flip"] = flip
	for name, data := range cases {
		fs := wal.NewMemFS()
		fs.Install("d/t.tbl", append([]byte(nil), data...))
		if _, err := basestore.OpenTable(fs, "d/t.tbl"); !errors.Is(err, basestore.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// storeBatches is the deterministic Apply workload the store tests share:
// overlapping key ranges so newest-wins ordering is observable.
func storeBatches(n int) [][]basestore.Entry {
	out := make([][]basestore.Entry, n)
	for i := range out {
		for k := i; k < i+5; k++ {
			key := fmt.Sprintf("k%02d", k%12)
			out[i] = append(out[i], ent(key, fmt.Sprintf("v%d-%s", i, key)))
		}
	}
	return out
}

// storeView folds the first n batches newest-wins — the oracle for every
// store read-back check.
func storeView(batches [][]basestore.Entry, n int) map[string]string {
	view := make(map[string]string)
	for _, b := range batches[:n] {
		for _, e := range b {
			view[string(e.Key)] = string(e.Val)
		}
	}
	return view
}

// requireStoreView asserts Get and Range both produce exactly want.
func requireStoreView(t *testing.T, s *basestore.Store, want map[string]string, label string) {
	t.Helper()
	got := make(map[string]string)
	var prev string
	first := true
	if err := s.Range(func(k string, v []byte) bool {
		if !first && k <= prev {
			t.Fatalf("%s: Range keys out of order: %q after %q", label, k, prev)
		}
		first, prev = false, k
		got[k] = string(v)
		return true
	}); err != nil {
		t.Fatalf("%s: range: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d live keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: range %q = %q, want %q", label, k, got[k], v)
		}
		gv, ok, err := s.Get([]byte(k))
		if err != nil || !ok || string(gv) != v {
			t.Fatalf("%s: Get(%q) = %q,%v,%v want %q", label, k, gv, ok, err, v)
		}
	}
}

// TestStoreNewestWins: stacked generations shadow correctly, survive a
// reopen, and compaction folds them without changing the observable view
// (and actually removes the old files).
func TestStoreNewestWins(t *testing.T) {
	mem := wal.NewMemFS()
	batches := storeBatches(4)
	s, err := basestore.OpenStore(mem, "base")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	want := storeView(batches, len(batches))
	requireStoreView(t, s, want, "stacked")
	if st := s.Stats(); st.Generations != len(batches) {
		t.Fatalf("%d generations, want %d", st.Generations, len(batches))
	}
	s.Close()

	s2, err := basestore.OpenStore(mem, "base")
	if err != nil {
		t.Fatal(err)
	}
	requireStoreView(t, s2, want, "reopened")
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	requireStoreView(t, s2, want, "compacted")
	if st := s2.Stats(); st.Generations != 1 || st.IndexedKeys != len(want) {
		t.Fatalf("post-compact stats %+v, want 1 generation / %d keys", st, len(want))
	}
	s2.Close()
	names, err := mem.ListDir("base")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("compaction left %d files: %v", len(names), names)
	}
}

// TestStoreAutoCompacts: Apply bounds the generation stack on its own.
func TestStoreAutoCompacts(t *testing.T) {
	mem := wal.NewMemFS()
	batches := storeBatches(24)
	s, err := basestore.OpenStore(mem, "base")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Generations > 9 {
		t.Fatalf("%d generations after %d applies — auto-compaction absent", st.Generations, len(batches))
	}
	requireStoreView(t, s, storeView(batches, len(batches)), "auto-compacted")
}

// TestStoreApplyDedup: within one batch the last occurrence of a key wins,
// matching append-order semantics of the callers building eviction batches.
func TestStoreApplyDedup(t *testing.T) {
	mem := wal.NewMemFS()
	s, err := basestore.OpenStore(mem, "base")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply([]basestore.Entry{ent("k", "old"), ent("a", "x"), ent("k", "new")}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("Get(k) = %q,%v,%v, want new", v, ok, err)
	}
}

// storeWorkload drives a store through the full mutating surface — open,
// a series of Applys (each a persist point: a nil return is an ack), with
// periodic explicit compactions — stopping at the first error.
func storeWorkload(fsys basestore.FS, batches [][]basestore.Entry) (acked int, err error) {
	s, err := basestore.OpenStore(fsys, "base")
	if err != nil {
		return 0, err
	}
	for i, b := range batches {
		if err := s.Apply(b); err != nil {
			return acked, err
		}
		acked++
		if (i+1)%3 == 0 {
			if err := s.Compact(); err != nil {
				return acked, err
			}
		}
	}
	return acked, s.Close()
}

// requireStoreRecovered reopens the store from a crash image and checks
// zero acked loss: every key of the acked view reads back with its acked
// value, or with the value of the single in-flight batch the crash
// interrupted (its table may have reached a durable name before the ack).
func requireStoreRecovered(t *testing.T, img *wal.MemFS, batches [][]basestore.Entry, acked int, label string) {
	t.Helper()
	s, err := basestore.OpenStore(img, "base")
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer s.Close()
	ackedView := storeView(batches, acked)
	nextView := ackedView
	if acked < len(batches) {
		nextView = storeView(batches, acked+1)
	}
	for k, v := range ackedView {
		got, ok, err := s.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: Get(%q): %v", label, k, err)
		}
		if !ok {
			t.Fatalf("%s: acked key %q lost", label, k)
		}
		if string(got) != v && string(got) != nextView[k] {
			t.Fatalf("%s: Get(%q) = %q, want %q (acked) or %q (in-flight)", label, k, got, v, nextView[k])
		}
	}
}

// TestBaseStoreCrashPointSweep is the base layer's durability invariant,
// the basestore half of the PR-9 sweep: crash the Apply/Compact workload
// at EVERY mutating filesystem operation — mid table write, mid index
// write (the reopen scan), between a compaction's new-table write and the
// old-file removes — then a reopen must succeed and serve every acked
// batch newest-wins, with zero acked loss. (A crash between an eviction's
// persist and its drop needs no disk-level case: the drop is RAM-only, so
// its crash image is identical to one of the Apply ordinals swept here.)
func TestBaseStoreCrashPointSweep(t *testing.T) {
	batches := storeBatches(7)

	clean := wal.NewFaultFS(wal.NewMemFS())
	acked, err := storeWorkload(clean, batches)
	if err != nil || acked != len(batches) {
		t.Fatalf("clean run: acked %d err %v", acked, err)
	}
	total := clean.Ops()
	if total == 0 {
		t.Fatal("clean run issued no filesystem operations")
	}

	for op := 0; op < total; op++ {
		for _, keep := range []int{0, 7} {
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: wal.Crash})
			acked, werr := storeWorkload(ff, batches)
			if !errors.Is(werr, wal.ErrCrashed) {
				t.Fatalf("op %d: workload survived the crash: %v", op, werr)
			}
			requireStoreRecovered(t, mem.CrashImage(keep), batches, acked,
				fmt.Sprintf("crash@%d/keep=%d", op, keep))
		}
	}
}

// TestBaseStoreInjectedErrors: transient write, short-write and fsync
// failures must surface from Apply/Compact (never be swallowed into an
// ack), and a crash right after still recovers every acked batch.
func TestBaseStoreInjectedErrors(t *testing.T) {
	batches := storeBatches(7)
	clean := wal.NewFaultFS(wal.NewMemFS())
	if _, err := storeWorkload(clean, batches); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()

	for op := 0; op < total; op++ {
		for _, kind := range []wal.FaultKind{wal.ErrWrite, wal.ShortWrite, wal.ErrSync} {
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: kind, Keep: 3})
			acked, werr := storeWorkload(ff, batches)
			if werr == nil && acked != len(batches) {
				t.Fatalf("op %d kind %d: injected fault swallowed", op, kind)
			}
			requireStoreRecovered(t, mem.CrashImage(0), batches, acked,
				fmt.Sprintf("fault@%d/kind=%d", op, kind))
		}
	}
}
