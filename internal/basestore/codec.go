package basestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// State-entry kinds. The values mirror the execution layer's StateKey
// kinds (exec.keyKind starts at one so the zero key is invalid); the
// explicit constants here keep the disk format independent of that
// package.
const (
	KindBalance byte = 1
	KindNonce   byte = 2
	KindCode    byte = 3
	KindStorage byte = 4
)

// KeySize is the fixed length of an encoded state key: address bytes, one
// kind byte, and a big-endian slot (zero for non-storage kinds). The
// layout sorts address-major, then kind, then slot — the same canonical
// order account.StateDB.Root hashes in.
const KeySize = types.AddressSize + 9

// EncodeKey encodes one state key.
func EncodeKey(addr types.Address, kind byte, slot uint64) []byte {
	k := make([]byte, KeySize)
	copy(k, addr[:])
	k[types.AddressSize] = kind
	binary.BigEndian.PutUint64(k[types.AddressSize+1:], slot)
	return k
}

// DecodeKey inverts EncodeKey.
func DecodeKey(key []byte) (addr types.Address, kind byte, slot uint64, err error) {
	if len(key) != KeySize {
		return addr, 0, 0, fmt.Errorf("basestore: bad key length %d", len(key))
	}
	copy(addr[:], key[:types.AddressSize])
	kind = key[types.AddressSize]
	if kind < KindBalance || kind > KindStorage {
		return addr, 0, 0, fmt.Errorf("basestore: bad key kind %d", kind)
	}
	slot = binary.BigEndian.Uint64(key[types.AddressSize+1:])
	if kind != KindStorage && slot != 0 {
		return addr, 0, 0, fmt.Errorf("basestore: non-storage key with slot %d", slot)
	}
	return addr, kind, slot, nil
}

// EncodeU64 encodes a numeric state value (balance as uint64 of its
// two's-complement int64, nonce, storage word) as 8 big-endian bytes.
func EncodeU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// DecodeU64 inverts EncodeU64.
func DecodeU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("basestore: bad numeric value length %d", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// StateEntries flattens a committed StateDB into sorted state entries —
// the checkpoint payload of the lazy-recovery path. Map membership is
// preserved exactly (an account holding an explicit zero balance gets an
// entry), so installing every entry into an empty StateDB reproduces an
// identical Root.
func StateEntries(st *account.StateDB) []Entry {
	e := st.Export()
	out := make([]Entry, 0, 3*len(e.Accounts)+len(e.Storage))
	for _, a := range e.Accounts {
		if a.HasBalance {
			out = append(out, Entry{Key: EncodeKey(a.Addr, KindBalance, 0), Val: EncodeU64(uint64(a.Balance))})
		}
		if a.HasNonce {
			out = append(out, Entry{Key: EncodeKey(a.Addr, KindNonce, 0), Val: EncodeU64(a.Nonce)})
		}
		if a.HasCode {
			out = append(out, Entry{Key: EncodeKey(a.Addr, KindCode, 0), Val: append([]byte(nil), a.Code...)})
		}
	}
	for _, sl := range e.Storage {
		out = append(out, Entry{Key: EncodeKey(sl.Addr, KindStorage, sl.Slot), Val: EncodeU64(sl.Value)})
	}
	// Export is address-major for accounts and storage separately; the
	// global key order interleaves each address's storage slots right
	// after its account kinds, so re-sort.
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// InstallEntry decodes one state entry and installs it into st through the
// non-journaled Install methods — the fault-in step of lazy recovery and
// the fold step of base-layer reads.
func InstallEntry(st *account.StateDB, key, val []byte) error {
	addr, kind, slot, err := DecodeKey(key)
	if err != nil {
		return err
	}
	switch kind {
	case KindBalance:
		v, err := DecodeU64(val)
		if err != nil {
			return err
		}
		st.InstallBalance(addr, int64(v))
	case KindNonce:
		v, err := DecodeU64(val)
		if err != nil {
			return err
		}
		st.InstallNonce(addr, v)
	case KindCode:
		st.InstallCode(addr, val)
	case KindStorage:
		v, err := DecodeU64(val)
		if err != nil {
			return err
		}
		st.InstallStorage(addr, slot, v)
	}
	return nil
}
