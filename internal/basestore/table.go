package basestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// tblMagic opens every table file; the trailing bytes version the format.
var tblMagic = []byte("txconcur-tbl\x00\x01")

// maxEntrySize bounds one frame's payload (key length prefix + key +
// value), mirroring the WAL's record-size cap: a corrupt length field must
// not drive a giant allocation.
const maxEntrySize = 1 << 26

// ErrCorrupt wraps every table-validation failure, so callers can
// distinguish "this table is damaged" from I/O errors without matching
// message strings.
var ErrCorrupt = errors.New("basestore: corrupt table")

// Entry is one key/value pair of a table. Keys are raw bytes compared with
// bytes.Compare; values may be empty but never nil semantics — an absent
// key is simply not in the table.
type Entry struct {
	Key []byte
	Val []byte
}

// Table is an immutable sorted table file: an in-RAM index (keys, offsets,
// stored checksums) over on-disk values. Values stay on disk and are read
// — and CRC-verified — on every Get, so the resident cost of an open table
// is its key set, not its data.
//
// File format, after the magic:
//
//	frame  = 4B LE payloadLen | 4B LE crc32(payload) | payload
//	payload = 2B LE keyLen | key | value
//
// Keys must be strictly increasing (bytes.Compare) and the file must end
// exactly at a frame boundary; OpenTable rejects anything else with
// ErrCorrupt.
type Table struct {
	mu   sync.Mutex // guards f's seek position
	f    File
	keys [][]byte // sorted, strictly increasing
	offs []int64  // offset of each payload (past the frame header)
	lens []uint32 // payload length of each frame
	crcs []uint32 // stored checksum of each payload

	// Reference count, used by Store so a compaction never closes a
	// table a concurrent reader still holds: readers acquire/release,
	// retire closes once the last reader is done.
	rcMu    sync.Mutex
	refs    int
	retired bool
}

// acquire takes a read reference; release drops it, closing the file if
// the table was retired meanwhile.
func (t *Table) acquire() {
	t.rcMu.Lock()
	t.refs++
	t.rcMu.Unlock()
}

func (t *Table) release() {
	t.rcMu.Lock()
	t.refs--
	closeNow := t.retired && t.refs == 0
	t.rcMu.Unlock()
	if closeNow {
		t.f.Close()
	}
}

// retire marks the table dead: the file closes as soon as the last
// in-flight reader releases it (immediately when there is none).
func (t *Table) retire() {
	t.rcMu.Lock()
	t.retired = true
	closeNow := t.refs == 0
	t.rcMu.Unlock()
	if closeNow {
		t.f.Close()
	}
}

// WriteTable atomically writes entries as a table file at path. Entries
// must be sorted by key, strictly increasing; the writer enforces this
// rather than sorting so callers cannot accidentally feed it duplicate
// keys with order-dependent meaning.
func WriteTable(fsys FS, path string, entries []Entry) error {
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			return fmt.Errorf("basestore: write %s: keys not strictly increasing at %d", path, i)
		}
	}
	return WriteFileAtomic(fsys, path, func(w io.Writer) error {
		if _, err := w.Write(tblMagic); err != nil {
			return err
		}
		var hdr [8]byte
		var payload bytes.Buffer
		for _, e := range entries {
			if len(e.Key) > 0xffff {
				return fmt.Errorf("key too long (%d bytes)", len(e.Key))
			}
			payload.Reset()
			var kl [2]byte
			binary.LittleEndian.PutUint16(kl[:], uint16(len(e.Key)))
			payload.Write(kl[:])
			payload.Write(e.Key)
			payload.Write(e.Val)
			if payload.Len() > maxEntrySize {
				return fmt.Errorf("entry too large (%d bytes)", payload.Len())
			}
			binary.LittleEndian.PutUint32(hdr[:4], uint32(payload.Len()))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
			if _, err := w.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := w.Write(payload.Bytes()); err != nil {
				return err
			}
		}
		return nil
	})
}

// OpenTable opens and fully validates the table file at path: magic, every
// frame's checksum and bounds, strict key order, and a clean end exactly at
// a frame boundary. On success the table's key index is resident in RAM
// and values are read through the returned Table's Get. Validation
// failures wrap ErrCorrupt; the file is closed on any error.
func OpenTable(fsys FS, path string) (*Table, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("basestore: open %s: %w", path, err)
	}
	t, err := indexTable(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// indexTable scans f front to back building the in-RAM index.
func indexTable(f File, path string) (*Table, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("basestore: table %s: %s: %w", path, fmt.Sprintf(format, args...), ErrCorrupt)
	}
	r := bufReaderAt{f: f}
	magic := make([]byte, len(tblMagic))
	if err := r.readFull(magic); err != nil {
		return nil, corrupt("magic: %v", err)
	}
	if !bytes.Equal(magic, tblMagic) {
		return nil, corrupt("bad magic")
	}
	t := &Table{f: f}
	var hdr [8]byte
	var prev []byte
	for {
		n, err := r.read(hdr[:])
		if n == 0 && errors.Is(err, io.EOF) {
			return t, nil // clean end at a frame boundary
		}
		if err != nil || n != len(hdr) {
			return nil, corrupt("truncated frame header at offset %d", r.off-int64(n))
		}
		size := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size < 2 || size > maxEntrySize {
			return nil, corrupt("bad frame size %d at offset %d", size, r.off-8)
		}
		payload := make([]byte, size)
		off := r.off
		if err := r.readFull(payload); err != nil {
			return nil, corrupt("truncated payload at offset %d", off)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, corrupt("checksum mismatch at offset %d", off)
		}
		klen := int(binary.LittleEndian.Uint16(payload[:2]))
		if 2+klen > len(payload) {
			return nil, corrupt("key length %d exceeds payload at offset %d", klen, off)
		}
		key := payload[2 : 2+klen]
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			return nil, corrupt("keys out of order at offset %d", off)
		}
		kcopy := append([]byte(nil), key...)
		prev = kcopy
		t.keys = append(t.keys, kcopy)
		t.offs = append(t.offs, off)
		t.lens = append(t.lens, size)
		t.crcs = append(t.crcs, sum)
	}
}

// bufReaderAt is a tiny forward reader that tracks the absolute offset, so
// index building makes one sequential pass without Seek round-trips.
type bufReaderAt struct {
	f   File
	off int64
}

func (r *bufReaderAt) read(p []byte) (int, error) {
	n, err := io.ReadFull(r.f, p)
	r.off += int64(n)
	if errors.Is(err, io.ErrUnexpectedEOF) && n > 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (r *bufReaderAt) readFull(p []byte) error {
	n, err := r.read(p)
	if err != nil || n != len(p) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.keys) }

// Key returns the i-th key (ascending). The returned slice is the index's
// own copy; callers must not mutate it.
func (t *Table) Key(i int) []byte { return t.keys[i] }

// find returns the index of key, or -1.
func (t *Table) find(key []byte) int {
	lo, hi := 0, len(t.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.keys) && bytes.Equal(t.keys[lo], key) {
		return lo
	}
	return -1
}

// Has reports whether key is present, without touching disk.
func (t *Table) Has(key []byte) bool { return t.find(key) >= 0 }

// Get reads key's value from disk, re-verifying the frame checksum, so a
// block that rotted after OpenTable is caught rather than served. The
// second result is false when the key is absent.
func (t *Table) Get(key []byte) ([]byte, bool, error) {
	i := t.find(key)
	if i < 0 {
		return nil, false, nil
	}
	v, err := t.readVal(i)
	return v, err == nil, err
}

// readVal fetches and verifies entry i's payload, returning the value.
func (t *Table) readVal(i int) ([]byte, error) {
	payload := make([]byte, t.lens[i])
	t.mu.Lock()
	_, err := t.f.Seek(t.offs[i], io.SeekStart)
	if err == nil {
		_, err = io.ReadFull(t.f, payload)
	}
	t.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("basestore: read entry %d: %w", i, err)
	}
	if crc32.ChecksumIEEE(payload) != t.crcs[i] {
		return nil, fmt.Errorf("basestore: entry %d: checksum mismatch: %w", i, ErrCorrupt)
	}
	klen := int(binary.LittleEndian.Uint16(payload[:2]))
	return payload[2+klen:], nil
}

// Range calls fn for every entry in ascending key order until fn returns
// false. Values are read (and verified) from disk per entry.
func (t *Table) Range(fn func(key, val []byte) bool) error {
	for i := range t.keys {
		v, err := t.readVal(i)
		if err != nil {
			return err
		}
		if !fn(t.keys[i], v) {
			return nil
		}
	}
	return nil
}

// Close closes the underlying file.
func (t *Table) Close() error { return t.f.Close() }
