package basestore_test

import (
	"bytes"
	"testing"

	"txconcur/internal/basestore"
	"txconcur/internal/wal"
)

// FuzzBaseStoreReader feeds arbitrary bytes to OpenTable. Whatever the
// input, indexing must not panic or over-allocate; if the table is
// accepted, every entry must read back (Get and Range agree), and
// rewriting the entries must produce a table that reopens identical —
// acceptance implies round-trip, corruption can only be rejected, never
// misread. Mirrors FuzzWALReplay one layer down.
func FuzzBaseStoreReader(f *testing.F) {
	// Seed corpus: a real table, truncations at interesting boundaries, a
	// corrupted byte, a bare magic, a torn magic, and garbage.
	mem := wal.NewMemFS()
	entries := []basestore.Entry{
		{Key: []byte("aa"), Val: []byte("one")},
		{Key: []byte("ab"), Val: nil},
		{Key: []byte("b\x00c"), Val: bytes.Repeat([]byte{0x7f}, 40)},
	}
	if err := basestore.WriteTable(mem, "d/seed.tbl", entries); err != nil {
		f.Fatal(err)
	}
	full, ok := mem.ReadFileVolatile("d/seed.tbl")
	if !ok {
		f.Fatal("seed table missing")
	}
	f.Add(append([]byte(nil), full...))
	f.Add(append([]byte(nil), full[:len(full)-1]...))
	f.Add(append([]byte(nil), full[:len(full)/2]...))
	f.Add(append([]byte(nil), full[:14]...)) // exactly the magic
	f.Add(append([]byte(nil), full[:6]...))
	corrupt := append([]byte(nil), full...)
	corrupt[len(full)-3] ^= 0x01
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte("definitely not a table"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := wal.NewMemFS()
		fsys.Install("d/in.tbl", append([]byte(nil), data...))
		tbl, err := basestore.OpenTable(fsys, "d/in.tbl")
		if err != nil {
			return // rejection is fine; wedging or panicking is not
		}
		defer tbl.Close()
		var got []basestore.Entry
		if err := tbl.Range(func(k, v []byte) bool {
			got = append(got, basestore.Entry{
				Key: append([]byte(nil), k...),
				Val: append([]byte(nil), v...),
			})
			return true
		}); err != nil {
			t.Fatalf("accepted table failed Range: %v", err)
		}
		if len(got) != tbl.Len() {
			t.Fatalf("Range saw %d entries, index holds %d", len(got), tbl.Len())
		}
		for i, e := range got {
			if i > 0 && bytes.Compare(got[i-1].Key, e.Key) >= 0 {
				t.Fatalf("accepted keys out of order at %d", i)
			}
			v, ok, err := tbl.Get(e.Key)
			if err != nil || !ok || !bytes.Equal(v, e.Val) {
				t.Fatalf("Get(%q) = %q,%v,%v, Range said %q", e.Key, v, ok, err, e.Val)
			}
		}
		// Round-trip: rewrite what was read and reopen.
		if err := basestore.WriteTable(fsys, "d/out.tbl", got); err != nil {
			t.Fatalf("rewrite of accepted entries rejected: %v", err)
		}
		tbl2, err := basestore.OpenTable(fsys, "d/out.tbl")
		if err != nil {
			t.Fatalf("reopen of rewritten table: %v", err)
		}
		defer tbl2.Close()
		if tbl2.Len() != len(got) {
			t.Fatalf("rewritten table holds %d entries, want %d", tbl2.Len(), len(got))
		}
		for i, e := range got {
			if !bytes.Equal(tbl2.Key(i), e.Key) {
				t.Fatalf("rewritten key %d changed", i)
			}
		}
	})
}
