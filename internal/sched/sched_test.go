package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestListBasics(t *testing.T) {
	s, err := List([]int{3, 3, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 6 || s.Total != 12 {
		t.Fatalf("schedule = %+v", s)
	}
	if s.Speedup() != 2 {
		t.Fatalf("speedup = %v", s.Speedup())
	}
}

func TestLPTBeatsNaiveOrder(t *testing.T) {
	// Classic example where greedy in given order is suboptimal: the long
	// job arrives last.
	jobs := []int{2, 2, 2, 2, 6}
	greedy, err := List(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := LPT(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan >= greedy.Makespan {
		t.Fatalf("LPT %d should beat greedy %d here", lpt.Makespan, greedy.Makespan)
	}
	// Optimal is 8 ({6,2} vs {2,2,2}); greedy-in-order ends at 10.
	if lpt.Makespan != 8 {
		t.Fatalf("LPT makespan = %d, want 8", lpt.Makespan)
	}
	if greedy.Makespan != 10 {
		t.Fatalf("greedy makespan = %d, want 10", greedy.Makespan)
	}
}

func TestSingleWorkerIsSequential(t *testing.T) {
	jobs := []int{5, 1, 9}
	s, err := LPT(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 15 || s.Speedup() != 1 {
		t.Fatalf("schedule = %+v", s)
	}
}

func TestMoreWorkersThanJobs(t *testing.T) {
	jobs := []int{4, 2}
	s, err := LPT(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4 (longest job)", s.Makespan)
	}
}

// TestSpeedupDegenerate pins the zero-makespan convention: no work is a
// neutral 1x, but positive total work finished in zero time is +Inf — the
// old code returned 1 for both, silently under-reporting the second case
// (e.g. gas-weighted schedules whose makespan rounds to zero).
func TestSpeedupDegenerate(t *testing.T) {
	zeroWork := &Schedule{Makespan: 0, Total: 0}
	if got := zeroWork.Speedup(); got != 1 {
		t.Fatalf("zero work: speedup = %v, want 1", got)
	}
	zeroCostJobs := &Schedule{Makespan: 0, Total: 7}
	if got := zeroCostJobs.Speedup(); !math.IsInf(got, 1) {
		t.Fatalf("zero makespan with total 7: speedup = %v, want +Inf", got)
	}
	// All-zero-length jobs through the real scheduler: Total stays 0, so
	// the neutral convention applies.
	s, err := LPT([]int{0, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 0 || s.Makespan != 0 || s.Speedup() != 1 {
		t.Fatalf("all-zero jobs schedule = %+v, speedup %v", s, s.Speedup())
	}
}

func TestEmptyJobs(t *testing.T) {
	s, err := LPT(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 || s.Speedup() != 1 {
		t.Fatalf("empty schedule = %+v", s)
	}
	if LowerBound(nil, 4) != 0 {
		t.Fatal("lower bound of no jobs")
	}
}

func TestErrors(t *testing.T) {
	if _, err := LPT([]int{1}, 0); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("zero workers: %v", err)
	}
	if _, err := List([]int{-1}, 2); err == nil {
		t.Fatal("negative job accepted")
	}
}

func TestAssignmentsPartitionJobs(t *testing.T) {
	jobs := []int{5, 3, 8, 1, 9, 2, 7}
	s, err := LPT(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, w := range s.Assignments {
		for _, j := range w {
			if seen[j] {
				t.Fatalf("job %d scheduled twice", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("scheduled %d of %d jobs", len(seen), len(jobs))
	}
}

func TestLowerBound(t *testing.T) {
	if lb := LowerBound([]int{4, 4, 4}, 3); lb != 4 {
		t.Fatalf("lb = %d, want 4", lb)
	}
	if lb := LowerBound([]int{10, 1, 1}, 3); lb != 10 {
		t.Fatalf("lb = %d, want 10 (longest job)", lb)
	}
	if lb := LowerBound([]int{5, 5, 5, 5}, 2); lb != 10 {
		t.Fatalf("lb = %d, want 10 (total/workers)", lb)
	}
}

func TestModelSpeedupMatchesPaperEq2(t *testing.T) {
	// 100 unit transactions, LCC of 20: l = 0.2, speed-up min(n, 5).
	jobs := make([]int, 81)
	jobs[0] = 20
	for i := 1; i < len(jobs); i++ {
		jobs[i] = 1
	}
	if got := ModelSpeedup(jobs, 4); got != 4 {
		t.Fatalf("n=4: %v, want 4", got)
	}
	if got := ModelSpeedup(jobs, 8); got != 5 {
		t.Fatalf("n=8: %v, want 5 (1/l)", got)
	}
	if got := ModelSpeedup(jobs, 64); got != 5 {
		t.Fatalf("n=64: %v, want 5", got)
	}
	if got := ModelSpeedup(nil, 4); got != 1 {
		t.Fatalf("empty: %v", got)
	}
}

// TestGrahamBounds property-checks the approximation guarantees. Graham's
// factors are relative to OPT, which is NP-hard to compute; every achieved
// makespan is an upper bound on OPT, so each algorithm is checked against
// the other's makespan. (Checking against LowerBound is not sound — OPT
// can exceed it by up to 4/3, and rare quick-check inputs found the gap.)
func TestGrahamBounds(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		jobs := make([]int, len(raw))
		for i, r := range raw {
			jobs[i] = int(r%50) + 1
		}
		n := int(wRaw%8) + 1
		lb := LowerBound(jobs, n)
		lpt, err := LPT(jobs, n)
		if err != nil {
			return false
		}
		greedy, err := List(jobs, n)
		if err != nil {
			return false
		}
		if lpt.Makespan < lb || greedy.Makespan < lb {
			return false
		}
		// LPT ≤ (4/3 − 1/(3n))·OPT ≤ (4/3 − 1/(3n))·greedy, and
		// greedy ≤ (2 − 1/n)·OPT ≤ (2 − 1/n)·LPT.
		if float64(lpt.Makespan) > (4.0/3.0-1.0/(3.0*float64(n)))*float64(greedy.Makespan)+1 {
			return false
		}
		if float64(greedy.Makespan) > (2.0-1.0/float64(n))*float64(lpt.Makespan)+1 {
			return false
		}
		return lpt.Makespan <= greedy.Makespan+lb // LPT is usually better; allow slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLPTNearModel measures how close LPT gets to the paper's min(n, 1/l)
// approximation on component-size distributions typical of generated
// blocks (one big component, many singletons) — the paper's §V-B open
// question. LPT must be within 1 time unit of the bound for these shapes.
func TestLPTNearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		jobs := []int{10 + rng.Intn(40)} // the LCC
		for i := 0; i < 50+rng.Intn(200); i++ {
			jobs = append(jobs, 1+rng.Intn(3))
		}
		for _, n := range []int{2, 4, 8, 16} {
			lb := LowerBound(jobs, n)
			lpt, err := LPT(jobs, n)
			if err != nil {
				t.Fatal(err)
			}
			if lpt.Makespan > lb+3 {
				t.Fatalf("trial %d n=%d: LPT %d far above bound %d", trial, n, lpt.Makespan, lb)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	jobs := []int{5, 5, 3, 3, 2, 2, 2}
	a, _ := LPT(jobs, 3)
	b, _ := LPT(jobs, 3)
	if a.Makespan != b.Makespan {
		t.Fatal("nondeterministic makespan")
	}
	for w := range a.Assignments {
		if len(a.Assignments[w]) != len(b.Assignments[w]) {
			t.Fatal("nondeterministic assignment")
		}
		for i := range a.Assignments[w] {
			if a.Assignments[w][i] != b.Assignments[w][i] {
				t.Fatal("nondeterministic assignment order")
			}
		}
	}
}
