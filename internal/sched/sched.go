// Package sched implements multiprocessor scheduling of transaction groups
// (connected components) onto a fixed number of cores. The paper's §V-B
// notes that computing the optimal schedule is the NP-hard multiprocessor
// scheduling problem [11] and approximates the speed-up as min(n, 1/l);
// this package provides the classic list-scheduling algorithms (greedy and
// LPT) whose makespans bound how good that approximation is in practice —
// the evaluation the paper leaves to future work.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoWorkers reports a schedule request with fewer than one worker.
var ErrNoWorkers = errors.New("sched: need at least one worker")

// Schedule is an assignment of jobs to workers.
type Schedule struct {
	// Assignments[w] lists the job indices run by worker w, in order.
	Assignments [][]int
	// Makespan is the completion time of the busiest worker.
	Makespan int
	// Total is the sum of all job lengths (sequential execution time).
	Total int
}

// Speedup returns Total / Makespan: the parallel speed-up of the schedule
// under the paper's unit-cost model.
//
// Degenerate-case convention: a zero makespan with zero total work (an
// empty schedule, or all-zero-cost jobs) is a no-op and reports a neutral
// speed-up of 1; a zero makespan with positive total work means the
// schedule finished real work in no time, which is +Inf — returning 1
// there would silently under-report the speed-up. List/LPT never produce
// the second shape (any positive job loads some worker), but hand-built
// schedules and gas-weighted callers can.
func (s *Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		if s.Total > 0 {
			return math.Inf(1)
		}
		return 1
	}
	return float64(s.Total) / float64(s.Makespan)
}

// workerHeap is a min-heap of (load, worker) pairs.
type workerHeap struct {
	load []int
	id   []int
}

func (h *workerHeap) Len() int { return len(h.load) }
func (h *workerHeap) Less(i, j int) bool {
	if h.load[i] != h.load[j] {
		return h.load[i] < h.load[j]
	}
	return h.id[i] < h.id[j]
}
func (h *workerHeap) Swap(i, j int) {
	h.load[i], h.load[j] = h.load[j], h.load[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
func (h *workerHeap) Push(x any) {
	p := x.([2]int)
	h.load = append(h.load, p[0])
	h.id = append(h.id, p[1])
}
func (h *workerHeap) Pop() any {
	n := len(h.load) - 1
	p := [2]int{h.load[n], h.id[n]}
	h.load = h.load[:n]
	h.id = h.id[:n]
	return p
}

// List builds a greedy list schedule: jobs are assigned in the given order,
// each to the least-loaded worker. Graham's bound guarantees a makespan
// within (2 − 1/n) of optimal.
func List(jobs []int, workers int) (*Schedule, error) {
	return listSchedule(jobs, workers, nil)
}

// LPT builds a longest-processing-time schedule: jobs are sorted by
// decreasing length first, tightening Graham's bound to (4/3 − 1/(3n)) of
// optimal. This is the scheduler the group-concurrency executor uses.
func LPT(jobs []int, workers int) (*Schedule, error) {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]] > jobs[order[b]] })
	return listSchedule(jobs, workers, order)
}

func listSchedule(jobs []int, workers int, order []int) (*Schedule, error) {
	if workers < 1 {
		return nil, fmt.Errorf("%w: %d", ErrNoWorkers, workers)
	}
	for i, j := range jobs {
		if j < 0 {
			return nil, fmt.Errorf("sched: job %d has negative length %d", i, j)
		}
	}
	s := &Schedule{Assignments: make([][]int, workers)}
	h := &workerHeap{load: make([]int, 0, workers), id: make([]int, 0, workers)}
	for w := 0; w < workers; w++ {
		h.load = append(h.load, 0)
		h.id = append(h.id, w)
	}
	heap.Init(h)
	pick := func(i int) int {
		if order != nil {
			return order[i]
		}
		return i
	}
	for i := range jobs {
		j := pick(i)
		p := heap.Pop(h).([2]int)
		load, w := p[0], p[1]
		s.Assignments[w] = append(s.Assignments[w], j)
		load += jobs[j]
		if load > s.Makespan {
			s.Makespan = load
		}
		s.Total += jobs[j]
		heap.Push(h, [2]int{load, w})
	}
	return s, nil
}

// LowerBound returns the trivial makespan lower bound:
// max(⌈total/workers⌉, longest job). The paper's min(n, 1/l) speed-up model
// is exactly Total / LowerBound under unit costs.
func LowerBound(jobs []int, workers int) int {
	if workers < 1 || len(jobs) == 0 {
		return 0
	}
	total, longest := 0, 0
	for _, j := range jobs {
		total += j
		if j > longest {
			longest = j
		}
	}
	lb := (total + workers - 1) / workers
	if longest > lb {
		lb = longest
	}
	return lb
}

// ModelSpeedup evaluates the paper's eq. (2) bound for a set of component
// sizes: min(n, total/longest), i.e. min(n, 1/l) with l = longest/total.
func ModelSpeedup(jobs []int, workers int) float64 {
	lb := LowerBound(jobs, workers)
	if lb == 0 {
		return 1
	}
	total := 0
	for _, j := range jobs {
		total += j
	}
	return float64(total) / float64(lb)
}
