package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"txconcur/internal/account"
)

// logMagic opens every block log; the trailing bytes version the format.
var logMagic = []byte("txconcur-wal\x00\x01")

// maxRecordSize bounds one framed record; a length prefix beyond it is
// treated as corruption (torn tail), not an allocation request.
const maxRecordSize = 1 << 26

// LogName is the block log's filename inside a durability directory.
const LogName = "blocks.wal"

// ErrForeignLog reports a log file whose magic belongs to something else.
var ErrForeignLog = errors.New("wal: not a txconcur block log")

// Record is one durable block: Index is its position in the chain
// (contiguous from the log's base), Block the built block the executor
// will see.
type Record struct {
	Index uint64
	Block *account.Block
}

// Log is an append-only block log with length-prefixed, CRC32-framed
// records:
//
//	magic | frame* ; frame = len(4B LE) | crc32(4B LE, IEEE, payload) | payload
//
// where payload is a self-contained gob encoding of one Record (a fresh
// encoder per record, so any prefix of frames decodes without the rest).
// OpenLog truncates a torn tail — any trailing bytes that do not parse as
// a complete, checksummed, index-contiguous frame — so a crash mid-append
// costs at most the unacked record being written. Append is not
// goroutine-safe; the builder is the only appender.
type Log struct {
	fsys   FS
	path   string
	policy SyncPolicy
	f      File
	next   uint64
}

// OpenLog opens (creating if absent) the block log at path, scans and
// validates every record, truncates the first torn or corrupt frame and
// everything after it, and returns the log positioned for appending plus
// the valid records in order.
func OpenLog(fsys FS, path string, policy SyncPolicy) (*Log, []Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log %s: %w", path, err)
	}
	l := &Log{fsys: fsys, path: path, policy: policy, f: f}
	recs, created, err := l.openScan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if created {
		// A freshly created file's data can be fsynced without its
		// directory entry being durable; sync the directory once so the
		// log's name survives any crash from here on.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync log dir: %w", err)
		}
	}
	return l, recs, nil
}

// openScan validates the header and frames, truncating at the first
// damage. On return the file offset is the append position; created
// reports that the header was (re)written — a fresh file whose directory
// entry still needs syncing.
func (l *Log) openScan() (recs []Record, created bool, _ error) {
	header := make([]byte, len(logMagic))
	n, err := io.ReadFull(l.f, header)
	switch {
	case errors.Is(err, io.EOF) && n == 0:
		// Fresh (or fully torn-away) log: write the header.
		if err := l.writeHeader(); err != nil {
			return nil, false, err
		}
		return nil, true, nil
	case errors.Is(err, io.ErrUnexpectedEOF):
		// Torn header: only a prefix of the magic made it. Rewrite.
		if bytes.HasPrefix(logMagic, header[:n]) {
			if err := l.f.Truncate(0); err != nil {
				return nil, false, fmt.Errorf("wal: reset torn header: %w", err)
			}
			if _, err := l.f.Seek(0, io.SeekStart); err != nil {
				return nil, false, fmt.Errorf("wal: reset torn header: %w", err)
			}
			if err := l.writeHeader(); err != nil {
				return nil, false, err
			}
			return nil, true, nil
		}
		return nil, false, ErrForeignLog
	case err != nil:
		return nil, false, fmt.Errorf("wal: read log header: %w", err)
	}
	if !bytes.Equal(header, logMagic) {
		return nil, false, ErrForeignLog
	}

	good := int64(len(logMagic))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(l.f, frame[:]); err != nil {
			break // short frame header: torn tail
		}
		size := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if size == 0 || size > maxRecordSize {
			break
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			break
		}
		if rec.Block == nil {
			break // a checksummed frame with no block is still not a block
		}
		if len(recs) > 0 && rec.Index != recs[len(recs)-1].Index+1 {
			break // discontinuity: everything from here is not ours to trust
		}
		recs = append(recs, rec)
		good += 8 + int64(size)
	}
	if err := l.f.Truncate(good); err != nil {
		return nil, false, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return nil, false, fmt.Errorf("wal: seek append position: %w", err)
	}
	if len(recs) > 0 {
		l.next = recs[len(recs)-1].Index + 1
	}
	return recs, false, nil
}

func (l *Log) writeHeader() error {
	if _, err := l.f.Write(logMagic); err != nil {
		return fmt.Errorf("wal: write log header: %w", err)
	}
	if l.policy == SyncEachRecord {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync log header: %w", err)
		}
	}
	return nil
}

// NextIndex returns the index the next appended block will get.
func (l *Log) NextIndex() uint64 { return l.next }

// Append frames and writes blk as the next record and, under
// SyncEachRecord, fsyncs before returning — the durability point the
// builder acks behind. Returns the record's index.
func (l *Log) Append(blk *account.Block) (uint64, error) {
	rec := Record{Index: l.next, Block: blk}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return 0, fmt.Errorf("wal: encode record %d: %w", rec.Index, err)
	}
	if payload.Len() > maxRecordSize {
		return 0, fmt.Errorf("wal: record %d exceeds %d bytes", rec.Index, maxRecordSize)
	}
	frame := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(frame[:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[8:], payload.Bytes())
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append record %d: %w", rec.Index, err)
	}
	if l.policy == SyncEachRecord {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync record %d: %w", rec.Index, err)
		}
	}
	l.next++
	return rec.Index, nil
}

// Sync forces all appended records to stable storage (the group-commit
// point under SyncManual; a no-op cost under SyncEachRecord).
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync log: %w", err)
	}
	return nil
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	serr := l.f.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return fmt.Errorf("wal: close log: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close log: %w", cerr)
	}
	return nil
}
