package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// FaultKind is the failure a FaultFS injects at a chosen operation.
type FaultKind int

const (
	// Crash simulates power loss at this operation: the op does not happen,
	// and every later operation on the filesystem fails with ErrCrashed.
	// The harness then recovers from the underlying MemFS's CrashImage.
	Crash FaultKind = iota
	// ErrWrite fails the operation with ErrInjected and no side effect —
	// a transient I/O error the caller must surface, not swallow.
	ErrWrite
	// ShortWrite applies only the first Keep bytes of a write, then fails.
	// Models a partial page reaching the device before an error.
	ShortWrite
	// ErrSync fails a Sync without advancing durability — the fsync error
	// case (the layer must treat the data as still volatile).
	ErrSync
)

// Fault schedules one injected failure: Kind fires at the Op-th mutating
// filesystem operation (0-based, in FaultFS's deterministic op order).
// Keep is the byte count a ShortWrite lets through.
type Fault struct {
	Op   int
	Kind FaultKind
	Keep int
}

// ErrCrashed is returned by every operation after an injected Crash.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the error surfaced by non-crash injected faults.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS and deterministically injects faults by operation
// ordinal. Mutating operations (OpenFile, Write, Sync, Truncate, Rename,
// Remove, MkdirAll, SyncDir) are numbered in the order the layer issues
// them; a fault scheduled at ordinal i fires at exactly the i-th such
// call, so a crash-point sweep enumerates Ops() from a fault-free run and
// replays the workload once per ordinal. Safe for concurrent use, though
// the sweep is only deterministic for single-threaded workloads.
type FaultFS struct {
	mu      sync.Mutex
	fs      FS
	faults  map[int]Fault
	ops     int
	crashed bool
}

// NewFaultFS wraps fsys with the given fault schedule.
func NewFaultFS(fsys FS, faults ...Fault) *FaultFS {
	ff := &FaultFS{fs: fsys, faults: make(map[int]Fault)}
	for _, f := range faults {
		ff.faults[f.Op] = f
	}
	return ff
}

// Ops returns the number of mutating operations issued so far — the sweep
// bound for a fault-free run of the workload.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether an injected Crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin numbers one mutating operation and resolves its scheduled fault.
func (f *FaultFS) begin() (Fault, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Fault{}, false, ErrCrashed
	}
	ord := f.ops
	f.ops++
	ft, ok := f.faults[ord]
	if !ok {
		return Fault{}, false, nil
	}
	if ft.Kind == Crash {
		f.crashed = true
		return ft, true, ErrCrashed
	}
	return ft, true, nil
}

// check gates non-mutating operations on crash state.
func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenFile implements FS; opening counts as a mutation (O_CREATE/O_TRUNC
// change the namespace).
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, faulted, err := f.begin(); err != nil {
		return nil, err
	} else if faulted {
		return nil, ErrInjected
	}
	file, err := f.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, f: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, faulted, err := f.begin(); err != nil {
		return err
	} else if faulted {
		return ErrInjected
	}
	return f.fs.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, faulted, err := f.begin(); err != nil {
		return err
	} else if faulted {
		return ErrInjected
	}
	return f.fs.Remove(name)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, faulted, err := f.begin(); err != nil {
		return err
	} else if faulted {
		return ErrInjected
	}
	return f.fs.MkdirAll(path, perm)
}

// ListDir implements FS; reading the namespace is not a mutation.
func (f *FaultFS) ListDir(dir string) ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.fs.ListDir(dir)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	ft, faulted, err := f.begin()
	if err != nil {
		return err
	}
	if faulted {
		if ft.Kind == ErrSync {
			return fmt.Errorf("wal: sync dir: %w", ErrInjected)
		}
		return ErrInjected
	}
	return f.fs.SyncDir(dir)
}

// faultHandle numbers a file's mutating calls through its parent FaultFS.
type faultHandle struct {
	fs *FaultFS
	f  File
}

func (h *faultHandle) Read(p []byte) (int, error) {
	if err := h.fs.check(); err != nil {
		return 0, err
	}
	return h.f.Read(p)
}

func (h *faultHandle) Seek(offset int64, whence int) (int64, error) {
	if err := h.fs.check(); err != nil {
		return 0, err
	}
	return h.f.Seek(offset, whence)
}

func (h *faultHandle) Write(p []byte) (int, error) {
	ft, faulted, err := h.fs.begin()
	if err != nil {
		return 0, err
	}
	if faulted {
		if ft.Kind == ShortWrite {
			keep := ft.Keep
			if keep > len(p) {
				keep = len(p)
			}
			n, werr := h.f.Write(p[:keep])
			if werr != nil {
				return n, werr
			}
			return n, fmt.Errorf("wal: short write %d/%d: %w", n, len(p), ErrInjected)
		}
		return 0, ErrInjected
	}
	return h.f.Write(p)
}

func (h *faultHandle) Sync() error {
	_, faulted, err := h.fs.begin()
	if err != nil {
		return err
	}
	if faulted {
		return fmt.Errorf("wal: sync: %w", ErrInjected)
	}
	return h.f.Sync()
}

func (h *faultHandle) Truncate(size int64) error {
	if _, faulted, err := h.fs.begin(); err != nil {
		return err
	} else if faulted {
		return ErrInjected
	}
	return h.f.Truncate(size)
}

func (h *faultHandle) Close() error {
	if err := h.fs.check(); err != nil {
		// Crash leaves the handle unusable; closing it is a no-op.
		return nil
	}
	return h.f.Close()
}
