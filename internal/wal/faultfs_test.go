package wal

import (
	"errors"
	"io"
	"os"
	"testing"
)

// TestMemFSDurabilitySemantics pins the crash model itself: unsynced data
// and unsynced directory entries do not survive CrashImage, synced ones
// do, and a rename is invisible after a crash until its directory was
// synced.
func TestMemFSDurabilitySemantics(t *testing.T) {
	mem := NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := mem.OpenFile("d/a", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Without SyncDir the file's name itself is not durable.
	img := mem.CrashImage(0)
	if _, ok := img.ReadFileVolatile("d/a"); ok {
		t.Fatal("unsynced directory entry survived the crash")
	}

	if err := mem.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	img = mem.CrashImage(0)
	got, ok := img.ReadFileVolatile("d/a")
	if !ok || string(got) != "synced" {
		t.Fatalf("durable image: %q %v", got, ok)
	}
	// Torn tail: a few unsynced bytes may survive.
	img = mem.CrashImage(4)
	got, _ = img.ReadFileVolatile("d/a")
	if string(got) != "synced-vol" {
		t.Fatalf("torn image: %q", got)
	}

	// Rename before SyncDir: the crash resurrects the old name.
	if err := mem.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	img = mem.CrashImage(0)
	if _, ok := img.ReadFileVolatile("d/b"); ok {
		t.Fatal("unsynced rename survived")
	}
	if _, ok := img.ReadFileVolatile("d/a"); !ok {
		t.Fatal("old name lost before the rename was durable")
	}
	if err := mem.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	img = mem.CrashImage(0)
	if _, ok := img.ReadFileVolatile("d/b"); !ok {
		t.Fatal("synced rename lost")
	}
	if _, ok := img.ReadFileVolatile("d/a"); ok {
		t.Fatal("old name survived a synced rename")
	}
}

// TestMemFSOverwriteInvalidatesSync: overwriting synced bytes makes them
// volatile again until the next sync.
func TestMemFSOverwriteInvalidatesSync(t *testing.T) {
	mem := NewMemFS()
	mem.Install("d/a", []byte("aaaa"))
	f, err := mem.OpenFile("d/a", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("BB")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := mem.CrashImage(0).ReadFileVolatile("d/a")
	if string(got) != "aa" {
		t.Fatalf("overwritten suffix still durable: %q", got)
	}
}

// TestFaultFSInjection: ordinals count deterministically, each fault kind
// surfaces its error, and a crash poisons every later operation.
func TestFaultFSInjection(t *testing.T) {
	workload := func(fsys FS) error {
		if err := fsys.MkdirAll("d", 0o755); err != nil { // op 0
			return err
		}
		f, err := fsys.OpenFile("d/x", os.O_WRONLY|os.O_CREATE, 0o644) // op 1
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello world")); err != nil { // op 2
			return err
		}
		if err := f.Sync(); err != nil { // op 3
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fsys.SyncDir("d") // op 4
	}

	clean := NewFaultFS(NewMemFS())
	if err := workload(clean); err != nil {
		t.Fatal(err)
	}
	if clean.Ops() != 5 {
		t.Fatalf("clean run counted %d ops, want 5", clean.Ops())
	}

	// Every ordinal with a Crash: the workload fails, the FS reports
	// crashed, and all later ops fail ErrCrashed.
	for op := 0; op < 5; op++ {
		mem := NewMemFS()
		ff := NewFaultFS(mem, Fault{Op: op, Kind: Crash})
		if err := workload(ff); !errors.Is(err, ErrCrashed) {
			t.Fatalf("op %d: %v", op, err)
		}
		if !ff.Crashed() {
			t.Fatalf("op %d: not crashed", op)
		}
		if err := ff.MkdirAll("later", 0o755); !errors.Is(err, ErrCrashed) {
			t.Fatalf("op %d: post-crash op: %v", op, err)
		}
		if _, err := ff.ListDir("d"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("op %d: post-crash read: %v", op, err)
		}
	}

	// ErrWrite on the write: surfaced, nothing written.
	mem := NewMemFS()
	ff := NewFaultFS(mem, Fault{Op: 2, Kind: ErrWrite})
	if err := workload(ff); !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrWrite: %v", err)
	}
	if got, _ := mem.ReadFileVolatile("d/x"); len(got) != 0 {
		t.Fatalf("ErrWrite wrote %q", got)
	}

	// ShortWrite: exactly Keep bytes land, then the error.
	mem = NewMemFS()
	ff = NewFaultFS(mem, Fault{Op: 2, Kind: ShortWrite, Keep: 5})
	if err := workload(ff); !errors.Is(err, ErrInjected) {
		t.Fatalf("ShortWrite: %v", err)
	}
	if got, _ := mem.ReadFileVolatile("d/x"); string(got) != "hello" {
		t.Fatalf("ShortWrite kept %q", got)
	}

	// ErrSync: surfaced, durability not advanced.
	mem = NewMemFS()
	ff = NewFaultFS(mem, Fault{Op: 3, Kind: ErrSync})
	if err := workload(ff); !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrSync: %v", err)
	}
	if got, ok := mem.CrashImage(0).ReadFileVolatile("d/x"); ok && len(got) != 0 {
		t.Fatalf("failed sync still made %q durable", got)
	}
}

// TestWriteFileAtomicCrashSweep: crash WriteFileAtomic at every mutating
// operation; the durable image must hold either the old content or the
// new content, bit-exact — never a mixture, never a torn file.
func TestWriteFileAtomicCrashSweep(t *testing.T) {
	old := []byte("old-content")
	next := []byte("new-content-longer")
	setup := func() *MemFS {
		mem := NewMemFS()
		mem.Install("d/f", old)
		return mem
	}
	write := func(fsys FS) error {
		return WriteFileAtomic(fsys, "d/f", func(w io.Writer) error {
			// Two writes so a crash can split the payload.
			if _, err := w.Write(next[:4]); err != nil {
				return err
			}
			_, err := w.Write(next[4:])
			return err
		})
	}
	clean := NewFaultFS(setup())
	if err := write(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	if total == 0 {
		t.Fatal("no ops counted")
	}
	for op := 0; op < total; op++ {
		for _, keep := range []int{0, 3} {
			mem := setup()
			ff := NewFaultFS(mem, Fault{Op: op, Kind: Crash})
			err := write(ff)
			img := mem.CrashImage(keep)
			got, ok := img.ReadFileVolatile("d/f")
			if !ok {
				t.Fatalf("op %d keep %d: file vanished", op, keep)
			}
			if string(got) != string(old) && string(got) != string(next) {
				t.Fatalf("op %d keep %d: torn content %q (err %v)", op, keep, got, err)
			}
			if err == nil && string(got) != string(next) {
				t.Fatalf("op %d keep %d: successful write not durable", op, keep)
			}
		}
	}
	// Non-crash faults must surface as errors and leave the old content.
	for op := 0; op < total; op++ {
		for _, kind := range []FaultKind{ErrWrite, ShortWrite, ErrSync} {
			mem := setup()
			ff := NewFaultFS(mem, Fault{Op: op, Kind: kind, Keep: 2})
			if err := write(ff); err == nil {
				t.Fatalf("op %d kind %d: injected fault swallowed", op, kind)
			}
			got, ok := mem.CrashImage(0).ReadFileVolatile("d/f")
			if !ok || string(got) != string(old) {
				t.Fatalf("op %d kind %d: old content lost: %q %v", op, kind, got, ok)
			}
		}
	}
}
