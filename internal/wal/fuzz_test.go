package wal

import (
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to OpenLog as a log file. Whatever
// the input, Open must not panic; if it accepts the file, the log must be
// appendable and a reopen must preserve the surviving records plus the
// appended one — corruption can only shorten the log, never wedge it.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a real three-record log, truncations of it, a corrupted
	// byte, a bare header, a torn header, and garbage.
	mem := NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		f.Fatal(err)
	}
	l, _, err := OpenLog(mem, "d/"+LogName, SyncEachRecord)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if _, err := l.Append(testBlock(i)); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	full, _ := mem.ReadFileVolatile("d/" + LogName)
	f.Add(append([]byte(nil), full...))
	f.Add(append([]byte(nil), full[:len(full)-5]...))
	f.Add(append([]byte(nil), full[:len(logMagic)+3]...))
	corrupt := append([]byte(nil), full...)
	corrupt[len(full)/2] ^= 0x40
	f.Add(corrupt)
	f.Add(append([]byte(nil), logMagic...))
	f.Add(append([]byte(nil), logMagic[:6]...))
	f.Add([]byte{})
	f.Add([]byte("not a wal at all, definitely not one"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := NewMemFS()
		fsys.Install("d/"+LogName, data)
		l, recs, err := OpenLog(fsys, "d/"+LogName, SyncEachRecord)
		if err != nil {
			// Rejection (foreign magic) is fine; wedging or panicking is not.
			return
		}
		for i, r := range recs {
			if i > 0 && r.Index != recs[i-1].Index+1 {
				t.Fatalf("accepted discontiguous records: %d after %d", r.Index, recs[i-1].Index)
			}
			if r.Block == nil {
				t.Fatalf("accepted record %d with no block", r.Index)
			}
		}
		if _, err := l.Append(testBlock(uint64(len(recs)))); err != nil {
			t.Fatalf("append after open: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, recs2, err := OpenLog(fsys, "d/"+LogName, SyncEachRecord)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen found %d records, want %d", len(recs2), len(recs)+1)
		}
		for i, r := range recs {
			if recs2[i].Index != r.Index || recs2[i].Block.Height != r.Block.Height {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
	})
}
