package wal

import (
	"fmt"
	"sync"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
	"txconcur/internal/types"
)

// LazyState is a recovered checkpoint viewed through fault-in: Recover
// loads only the checkpoint table's key index, and each state read or
// write pulls exactly the keys it touches off disk before delegating to
// an in-RAM StateDB. Replaying a short log suffix therefore costs IO
// proportional to the keys the suffix touches, not to the total state
// size. Materialize faults in everything that remains and returns the
// plain StateDB.
//
// LazyState implements account.State, so the sequential processor can
// replay blocks over it directly. Methods are mutex-guarded; disk or
// decode failures latch (the read signatures cannot return errors) and
// surface from Err and Materialize.
type LazyState struct {
	mu     sync.Mutex
	tbl    *basestore.Table // nil for genesis, and after Materialize
	db     *account.StateDB
	loaded map[string]bool
	faults int
	err    error
}

var _ account.State = (*LazyState)(nil)

// newLazyState wraps an opened checkpoint table. The table is owned by
// the LazyState and closed by Materialize.
func newLazyState(tbl *basestore.Table) *LazyState {
	return &LazyState{tbl: tbl, db: account.NewStateDB(), loaded: make(map[string]bool)}
}

// eagerLazyState wraps an already-complete StateDB (the genesis fallback);
// every key counts as loaded.
func eagerLazyState(db *account.StateDB) *LazyState {
	return &LazyState{db: db}
}

// ensure faults one key in from the checkpoint table. Absent keys are
// remembered too, so each key hits the index at most once.
func (ls *LazyState) ensure(kind byte, addr types.Address, slot uint64) {
	if ls.tbl == nil {
		return
	}
	key := basestore.EncodeKey(addr, kind, slot)
	ks := string(key)
	if ls.loaded[ks] {
		return
	}
	ls.loaded[ks] = true
	val, ok, err := ls.tbl.Get(key)
	if err != nil {
		ls.fail(err)
		return
	}
	if !ok {
		return
	}
	ls.faults++
	if err := basestore.InstallEntry(ls.db, key, val); err != nil {
		ls.fail(err)
	}
}

func (ls *LazyState) fail(err error) {
	if ls.err == nil {
		ls.err = fmt.Errorf("wal: lazy recovery: %w", err)
	}
}

// Err returns the first latched fault-in failure, if any.
func (ls *LazyState) Err() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.err
}

// Faults returns the number of keys faulted in on demand (Materialize's
// bulk load is not counted).
func (ls *LazyState) Faults() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.faults
}

// Materialize faults in every remaining checkpoint key, closes the table
// and returns the fully loaded StateDB. Idempotent; the returned StateDB
// is the same instance the lazy view wrote through, so replay done before
// Materialize is preserved.
func (ls *LazyState) Materialize() (*account.StateDB, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.tbl != nil {
		err := ls.tbl.Range(func(key, val []byte) bool {
			if len(key) != basestore.KeySize {
				return true // checkpoint meta entry
			}
			if ls.loaded[string(key)] {
				return true // faulted earlier; possibly overwritten by replay since
			}
			if e := basestore.InstallEntry(ls.db, key, val); e != nil {
				ls.fail(e)
				return false
			}
			return true
		})
		if err != nil {
			ls.fail(err)
		}
		ls.tbl.Close()
		ls.tbl = nil
		ls.loaded = nil
	}
	if ls.err != nil {
		return nil, ls.err
	}
	return ls.db, nil
}

// GetBalance implements vm.State.
func (ls *LazyState) GetBalance(a types.Address) int64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindBalance, a, 0)
	return ls.db.GetBalance(a)
}

// AddBalance implements vm.State. The key is faulted in first so the
// write lands on the checkpointed value.
func (ls *LazyState) AddBalance(a types.Address, v int64) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindBalance, a, 0)
	ls.db.AddBalance(a, v)
}

// SubBalance implements vm.State.
func (ls *LazyState) SubBalance(a types.Address, v int64) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindBalance, a, 0)
	ls.db.SubBalance(a, v)
}

// GetNonce implements account.State.
func (ls *LazyState) GetNonce(a types.Address) uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindNonce, a, 0)
	return ls.db.GetNonce(a)
}

// SetNonce implements account.State.
func (ls *LazyState) SetNonce(a types.Address, n uint64) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindNonce, a, 0)
	ls.db.SetNonce(a, n)
}

// GetCode implements vm.State.
func (ls *LazyState) GetCode(a types.Address) []byte {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindCode, a, 0)
	return ls.db.GetCode(a)
}

// SetCode implements account.State.
func (ls *LazyState) SetCode(a types.Address, code []byte) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindCode, a, 0)
	ls.db.SetCode(a, code)
}

// GetStorage implements vm.State.
func (ls *LazyState) GetStorage(a types.Address, slot uint64) uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindStorage, a, slot)
	return ls.db.GetStorage(a, slot)
}

// SetStorage implements vm.State. Faulting in first keeps the journal's
// previous-value entry correct, so VM reverts restore the checkpointed
// word.
func (ls *LazyState) SetStorage(a types.Address, slot, value uint64) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.ensure(basestore.KindStorage, a, slot)
	ls.db.SetStorage(a, slot, value)
}

// Snapshot implements vm.State.
func (ls *LazyState) Snapshot() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.db.Snapshot()
}

// RevertToSnapshot implements vm.State. Fault-in uses the non-journaled
// Install methods, so reverting never undoes a checkpoint load.
func (ls *LazyState) RevertToSnapshot(id int) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.db.RevertToSnapshot(id)
}
