package wal

import (
	"errors"
	"io"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// testBlock builds a distinguishable block for framing tests.
func testBlock(height uint64) *account.Block {
	return &account.Block{
		Height:   height,
		Time:     int64(1000 + height),
		Coinbase: types.Address{0xcb},
		Txs: []*account.Transaction{{
			From:     types.Address{byte(height + 1)},
			To:       types.Address{byte(height + 2)},
			Value:    account.Amount(100 + height),
			Nonce:    height,
			GasLimit: 21000,
		}},
	}
}

// openTestLog opens a log at a fixed path on a fresh MemFS.
func openTestLog(t *testing.T, fsys FS) (*Log, []Record) {
	t.Helper()
	if err := fsys.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	l, recs, err := OpenLog(fsys, "d/"+LogName, SyncEachRecord)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

// TestLogRoundTrip: appended records come back in order, with the right
// indices and block contents, across a close/reopen cycle.
func TestLogRoundTrip(t *testing.T) {
	mem := NewMemFS()
	l, recs := openTestLog(t, mem)
	if len(recs) != 0 || l.NextIndex() != 0 {
		t.Fatalf("fresh log: %d records, next %d", len(recs), l.NextIndex())
	}
	for i := uint64(0); i < 5; i++ {
		idx, err := l.Append(testBlock(i))
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("append %d got index %d", i, idx)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs2 := openTestLog(t, mem)
	defer l2.Close()
	if len(recs2) != 5 || l2.NextIndex() != 5 {
		t.Fatalf("reopen: %d records, next %d", len(recs2), l2.NextIndex())
	}
	for i, r := range recs2 {
		if r.Index != uint64(i) || r.Block.Height != uint64(i) {
			t.Fatalf("record %d: index %d height %d", i, r.Index, r.Block.Height)
		}
		if len(r.Block.Txs) != 1 || r.Block.Txs[0].Value != account.Amount(100+uint64(i)) {
			t.Fatalf("record %d: payload did not round-trip", i)
		}
	}
}

// TestLogTornTailTruncated: any proper prefix of the last frame is
// truncated on open, preserving all earlier records, and the log appends
// cleanly afterwards.
func TestLogTornTailTruncated(t *testing.T) {
	mem := NewMemFS()
	l, _ := openTestLog(t, mem)
	for i := uint64(0); i < 3; i++ {
		if _, err := l.Append(testBlock(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, _ := mem.ReadFileVolatile("d/" + LogName)

	// Find the start of the last frame by re-scanning: cut at every byte
	// inside the final record.
	l2, recs := openTestLog(t, mem)
	if len(recs) != 3 {
		t.Fatalf("setup: %d records", len(recs))
	}
	l2.Close()
	// The last frame occupies the tail after the first two records; try a
	// sweep of cut points across the whole file.
	for cut := len(logMagic); cut < len(full); cut++ {
		fs2 := NewMemFS()
		fs2.Install("d/"+LogName, full[:cut])
		l3, recs3, err := OpenLog(fs2, "d/"+LogName, SyncEachRecord)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for i, r := range recs3 {
			if r.Index != uint64(i) || r.Block.Height != uint64(i) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// Truncated open must leave an appendable log.
		if _, err := l3.Append(testBlock(uint64(len(recs3)))); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		l3.Close()
		_, recs4, err := OpenLog(fs2, "d/"+LogName, SyncEachRecord)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if len(recs4) != len(recs3)+1 {
			t.Fatalf("cut %d: %d records after append, want %d", cut, len(recs4), len(recs3)+1)
		}
	}
}

// TestLogCorruptionTruncates: a flipped byte inside a record drops that
// record and everything after it (CRC), never an earlier record.
func TestLogCorruptionTruncates(t *testing.T) {
	mem := NewMemFS()
	l, _ := openTestLog(t, mem)
	for i := uint64(0); i < 3; i++ {
		if _, err := l.Append(testBlock(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, _ := mem.ReadFileVolatile("d/" + LogName)
	for pos := len(logMagic); pos < len(full); pos++ {
		data := append([]byte(nil), full...)
		data[pos] ^= 0xff
		fs2 := NewMemFS()
		fs2.Install("d/"+LogName, data)
		_, recs, err := OpenLog(fs2, "d/"+LogName, SyncEachRecord)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if len(recs) >= 3 {
			t.Fatalf("pos %d: corruption not detected (%d records)", pos, len(recs))
		}
		for i, r := range recs {
			if r.Index != uint64(i) || r.Block.Height != uint64(i) {
				t.Fatalf("pos %d: surviving record %d corrupted", pos, i)
			}
		}
	}
}

// TestLogForeignFile: a file that is not a txconcur log is refused, not
// truncated — the one corruption Open must not "repair".
func TestLogForeignFile(t *testing.T) {
	mem := NewMemFS()
	mem.Install("d/"+LogName, []byte("definitely not a wal file, but long enough"))
	if _, _, err := OpenLog(mem, "d/"+LogName, SyncEachRecord); !errors.Is(err, ErrForeignLog) {
		t.Fatalf("foreign file: %v", err)
	}
	// A torn prefix of the real magic, though, is rewritten.
	mem2 := NewMemFS()
	mem2.Install("d/"+LogName, logMagic[:4])
	l, recs, err := OpenLog(mem2, "d/"+LogName, SyncEachRecord)
	if err != nil || len(recs) != 0 {
		t.Fatalf("torn magic: %v (%d records)", err, len(recs))
	}
	l.Close()
}

// TestWriteFileAtomicReplaces: the helper replaces content atomically and
// cleans up its temp file on both success and write failure.
func TestWriteFileAtomicReplaces(t *testing.T) {
	mem := NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(mem, "d/f", func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, ok := mem.ReadFileVolatile("d/f")
	if !ok || string(got) != "v1" {
		t.Fatalf("after first write: %q %v", got, ok)
	}
	if err := WriteFileAtomic(mem, "d/f", func(w io.Writer) error {
		_, err := w.Write([]byte("version-two"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = mem.ReadFileVolatile("d/f")
	if string(got) != "version-two" {
		t.Fatalf("after replace: %q", got)
	}
	if n := mem.fileCount("d/", tmpSuffix); n != 0 {
		t.Fatalf("%d temp files left behind", n)
	}
	// A write callback failure keeps the old content and removes the temp.
	boom := errors.New("boom")
	if err := WriteFileAtomic(mem, "d/f", func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error not surfaced: %v", err)
	}
	got, _ = mem.ReadFileVolatile("d/f")
	if string(got) != "version-two" {
		t.Fatalf("failed write clobbered content: %q", got)
	}
	if n := mem.fileCount("d/", tmpSuffix); n != 0 {
		t.Fatalf("%d temp files left after failure", n)
	}
}

// TestLogSyncManualTornTail: under SyncManual a crash loses the unsynced
// suffix; recovery sees exactly the synced prefix.
func TestLogSyncManualTornTail(t *testing.T) {
	mem := NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	l, _, err := OpenLog(mem, "d/"+LogName, SyncManual)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testBlock(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // group-commit point: record 0 durable
		t.Fatal(err)
	}
	if _, err := l.Append(testBlock(1)); err != nil { // never synced
		t.Fatal(err)
	}
	img := mem.CrashImage(0)
	_, recs, err := OpenLog(img, "d/"+LogName, SyncManual)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("crash image: %d records", len(recs))
	}
	// A torn tail of the unsynced frame must also truncate cleanly.
	img2 := mem.CrashImage(5)
	_, recs2, err := OpenLog(img2, "d/"+LogName, SyncManual)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 1 {
		t.Fatalf("torn crash image: %d records", len(recs2))
	}
}
