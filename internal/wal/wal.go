// Package wal is the crash-safe durability layer under the streaming
// block-builder service: a write-ahead block log the builder appends to
// before the executor sees a block, versioned checkpoints of committed
// state written off the commit path, and deterministic recovery that
// replays the log suffix over the latest checkpoint.
//
// Every engine in this repository keeps committed state in RAM
// (internal/mvstore); without this layer a restart loses the chain. The
// durability contract is the classic ARIES-style split:
//
//   - the log is the truth: a block is durable the moment its record is
//     appended and (per SyncPolicy) fsynced; the builder acks durable
//     submissions only after that point (persist-then-ack);
//   - checkpoints are an optimisation: they bound recovery replay, are
//     written atomically (temp file, fsync, rename, directory fsync) by an
//     asynchronous worker, and a torn or missing checkpoint costs replay
//     time, never correctness;
//   - recovery is deterministic: the same durable bytes always recover to
//     the same state, because replay runs the same deterministic engines
//     that produced the chain — roots and receipts of the replayed suffix
//     are byte-identical to the uninterrupted run.
//
// All disk access goes through the FS seam so the fault-injection harness
// (MemFS, FaultFS) can deterministically crash the layer at every write,
// sync, rename and directory operation; the crash-point sweep in
// recovery_test.go runs recovery from the durable image of every such
// point.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SyncPolicy selects when the log forces appended records to stable
// storage.
type SyncPolicy int

const (
	// SyncEachRecord fsyncs the log after every appended record — the
	// policy behind persist-then-ack: when Append returns, the record
	// survives any crash. This is the default and the only policy under
	// which the builder's durable acks are honest.
	SyncEachRecord SyncPolicy = iota
	// SyncManual leaves syncing to explicit Sync calls (group commit).
	// Cheaper per record; a crash may lose the unsynced suffix, which
	// recovery truncates as a torn tail.
	SyncManual
)

// File is the subset of *os.File the durability layer writes through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync forces written bytes to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail removal on open).
	Truncate(size int64) error
}

// FS is the filesystem seam: the OS implementation for production, MemFS
// and FaultFS for the deterministic crash harness. Implementations must be
// safe for concurrent use (the log appender and the checkpoint writer run
// on different goroutines).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// ListDir returns the names (not paths) of dir's entries in sorted
	// order, so directory scans are deterministic on every backend.
	ListDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making created/renamed entries
	// durable. Creating or renaming a file persists its data blocks, not
	// its directory entry; a crash before SyncDir may lose the name.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile implements FS via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ListDir implements FS via os.ReadDir (whose results are already sorted).
func (OS) ListDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS by fsyncing the opened directory.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// tmpSuffix marks in-flight atomic writes; recovery scans skip these and
// a crash can leave them behind harmlessly.
const tmpSuffix = ".tmp"

// WriteFileAtomic writes a file so that a crash at any point leaves either
// the old content at path or the new content — never a torn mixture: the
// payload goes to path+".tmp", is fsynced, the temp file is renamed over
// path, and the directory entry is fsynced. Shared by the checkpoint
// writer and the history-store savers.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("wal: sync dir of %s: %w", path, err)
	}
	return nil
}
