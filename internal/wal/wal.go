// Package wal is the crash-safe durability layer under the streaming
// block-builder service: a write-ahead block log the builder appends to
// before the executor sees a block, versioned checkpoints of committed
// state written off the commit path, and deterministic recovery that
// replays the log suffix over the latest checkpoint.
//
// Every engine in this repository keeps hot committed state in RAM
// (internal/mvstore) over the disk-backed base layer
// (internal/basestore); without this layer a restart loses the chain. The
// durability contract is the classic ARIES-style split:
//
//   - the log is the truth: a block is durable the moment its record is
//     appended and (per SyncPolicy) fsynced; the builder acks durable
//     submissions only after that point (persist-then-ack);
//   - checkpoints are an optimisation: they bound recovery replay, are
//     written atomically (temp file, fsync, rename, directory fsync) by an
//     asynchronous worker as basestore sorted tables, and a torn or
//     missing checkpoint costs replay time, never correctness;
//   - recovery is deterministic: the same durable bytes always recover to
//     the same state, because replay runs the same deterministic engines
//     that produced the chain — roots and receipts of the replayed suffix
//     are byte-identical to the uninterrupted run. Recovery is also lazy:
//     Recover loads only the newest checkpoint's index, and LazyState
//     faults account entries in on demand during suffix replay.
//
// All disk access goes through the FS seam (owned by internal/basestore,
// aliased here) so the fault-injection harness (MemFS, FaultFS) can
// deterministically crash the layer at every write, sync, rename and
// directory operation; the crash-point sweep in recovery_test.go runs
// recovery from the durable image of every such point.
package wal

import (
	"io"

	"txconcur/internal/basestore"
)

// SyncPolicy selects when the log forces appended records to stable
// storage.
type SyncPolicy int

const (
	// SyncEachRecord fsyncs the log after every appended record — the
	// policy behind persist-then-ack: when Append returns, the record
	// survives any crash. This is the default and the only policy under
	// which the builder's durable acks are honest.
	SyncEachRecord SyncPolicy = iota
	// SyncManual leaves syncing to explicit Sync calls (group commit).
	// Cheaper per record; a crash may lose the unsynced suffix, which
	// recovery truncates as a torn tail.
	SyncManual
)

// File is the subset of *os.File the durability layer writes through.
// Owned by internal/basestore (the disk-primitives leaf both layers
// share); aliased here so the WAL's API and its MemFS/FaultFS harness keep
// their historical names.
type File = basestore.File

// FS is the filesystem seam: the OS implementation for production, MemFS
// and FaultFS for the deterministic crash harness. Alias of basestore.FS.
type FS = basestore.FS

// OS is the real filesystem. Alias of basestore.OS.
type OS = basestore.OS

// tmpSuffix marks in-flight atomic writes; recovery scans skip these and
// a crash can leave them behind harmlessly.
const tmpSuffix = basestore.TmpSuffix

// WriteFileAtomic writes a file so that a crash at any point leaves either
// the old content at path or the new content — never a torn mixture; see
// basestore.WriteFileAtomic, which owns the implementation.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	return basestore.WriteFileAtomic(fsys, path, write)
}
