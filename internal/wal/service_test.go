package wal_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/exec"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
	"txconcur/internal/wal"
)

const (
	svcSenders = 8
	svcTxs     = 5 // per sender
)

func svcAddr(u uint64) types.Address { return types.AddressFromUint64("svc", u) }

func svcGenesis() *account.StateDB {
	pre := account.NewStateDB()
	for u := uint64(0); u < svcSenders; u++ {
		pre.AddBalance(svcAddr(u), 1<<40)
	}
	return pre
}

// svcService wires the full durable pipeline over fsys: durable submitters
// → pool → builder (persist-then-ack through the WAL) → streamed sharded
// execution with async checkpoints. It returns the hashes of transactions
// whose acks delivered nil (durable before any crash), the streamed chain
// result (nil if the stream failed), and the builder error.
func svcService(t *testing.T, fsys wal.FS, pre *account.StateDB, ckptEvery int) (acked map[types.Hash]bool, res *exec.ChainResult, builderErr error) {
	t.Helper()
	acked = make(map[types.Hash]bool)
	d, err := wal.Open(fsys, "dur", wal.SyncEachRecord)
	if err != nil {
		// A crash can land inside Open itself; nothing was acked.
		return acked, nil, err
	}
	// Capacity covers the whole workload so admission never blocks even if
	// the builder dies mid-run. Flush bounds the wait for the underfull
	// tail block — durable submitters hold their last acks until it closes.
	pool := mempool.New(svcSenders * svcTxs)
	builder := mempool.NewBuilder(pool, pre, mempool.BuilderConfig{
		Pack:     mempool.PackConfig{MaxTxs: 6, HotKeyCap: 4},
		Coinbase: types.AddressFromUint64("miner", 1),
		Flush:    10 * time.Millisecond,
		Log:      d.Log(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	out := make(chan mempool.BuiltBlock)
	blockCh := make(chan *account.Block)
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		_, builderErr = builder.Run(ctx, out)
	}()
	go func() {
		defer close(blockCh)
		for bb := range out {
			blockCh <- bb.Block
		}
	}()
	streamDone := make(chan struct{})
	var streamErr error
	go func() {
		defer close(streamDone)
		e := exec.Sharded{Workers: 4, Shards: 2, Depth: 2, Checkpoint: d.Checkpointer(ckptEvery)}
		res, _, streamErr = e.ExecuteChainStream(pre.Copy(), blockCh, nil)
	}()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for u := uint64(0); u < svcSenders; u++ {
		wg.Add(1)
		go func(u uint64) {
			defer wg.Done()
			var pendingAcks []<-chan error
			var hashes []types.Hash
			for n := uint64(0); n < svcTxs; n++ {
				tx := &account.Transaction{From: svcAddr(u), To: svcAddr(100 + (u+n)%svcSenders),
					Value: 10, Nonce: n, GasLimit: 21_000, GasPrice: 1}
				// Hash memoizes into the transaction; take it before the pool
				// can hand tx to the builder, which hashes it too.
				h := tx.Hash()
				ack, err := pool.SubmitDurable(ctx, mempool.PredictTransfer(tx))
				if err != nil {
					return // service already down; nothing acked from here on
				}
				pendingAcks = append(pendingAcks, ack)
				hashes = append(hashes, h)
			}
			for i, ack := range pendingAcks {
				select {
				case err := <-ack:
					if err == nil {
						mu.Lock()
						acked[hashes[i]] = true
						mu.Unlock()
					}
				case <-builderDone:
					// The service died before this ack resolved; the tx may
					// or may not be durable, but it was never acked — the
					// invariant makes no promise about it.
				}
			}
		}(u)
	}
	wg.Wait()
	pool.Close()
	<-builderDone
	<-streamDone
	if builderErr == nil && streamErr != nil {
		t.Fatalf("stream failed on a healthy service: %v", streamErr)
	}
	if builderErr != nil {
		res = nil
	}
	d.Close() // after a crash this fails; the image below is what counts
	return acked, res, builderErr
}

// svcRecover recovers the durable chain from the crash image and returns
// the recovered blocks (full chain order) plus the replayed final root.
func svcRecover(t *testing.T, img *wal.MemFS, pre *account.StateDB) ([]*account.Block, types.Hash) {
	t.Helper()
	d, err := wal.Open(img, "dur", wal.SyncEachRecord)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer d.Close()
	rec, err := d.Recover(pre)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	st, err := rec.State.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	root := st.Root()
	if len(rec.Blocks) > 0 {
		e := exec.Sharded{Workers: 4, Shards: 2, Depth: 2}
		res, _, err := e.ExecuteChain(st, rec.Blocks)
		if err != nil {
			t.Fatalf("recovery replay: %v", err)
		}
		root = res.Root
	}
	var chain []*account.Block
	for _, r := range d.Records() {
		chain = append(chain, r.Block)
	}
	// The full durable chain must itself replay cleanly, and the
	// checkpoint-based replay must land on the same root as replaying
	// everything from genesis — the two recovery paths agree.
	if len(chain) > 0 {
		seq := testutil.ReplaySequential(t, pre, chain)
		if root != seq.Root() {
			t.Fatalf("checkpointed recovery root %s, full replay has %s", root.Short(), seq.Root().Short())
		}
	} else if root != pre.Root() {
		t.Fatalf("empty chain recovered root %s, want genesis %s", root.Short(), pre.Root().Short())
	}
	return chain, root
}

// requireAckedDurable: every transaction whose durable ack delivered nil
// must appear in the recovered chain — the zero-acked-loss invariant.
func requireAckedDurable(t *testing.T, label string, acked map[types.Hash]bool, chain []*account.Block) {
	t.Helper()
	recovered := make(map[types.Hash]bool)
	for _, blk := range chain {
		for _, tx := range blk.Txs {
			recovered[tx.Hash()] = true
		}
	}
	for h := range acked {
		if !recovered[h] {
			t.Fatalf("%s: acked transaction %s missing from the recovered chain (%d acked, %d recovered)",
				label, h.Short(), len(acked), len(recovered))
		}
	}
}

// TestServiceCleanShutdownRecovery: a full durable service run — durable
// submitters, WAL-backed builder, streamed execution with checkpoints —
// followed by a clean shutdown, loses nothing: recovery from the durable
// image reproduces the streamed root exactly and every acked transaction.
func TestServiceCleanShutdownRecovery(t *testing.T) {
	pre := svcGenesis()
	mem := wal.NewMemFS()
	acked, res, err := svcService(t, mem, pre, 2)
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	if res == nil {
		t.Fatal("no stream result from a clean run")
	}
	if len(acked) != svcSenders*svcTxs {
		t.Fatalf("%d of %d submissions acked on a clean run", len(acked), svcSenders*svcTxs)
	}
	chain, root := svcRecover(t, mem.CrashImage(0), pre)
	if root != res.Root {
		t.Fatalf("recovered root %s, streamed run committed %s", root.Short(), res.Root.Short())
	}
	requireAckedDurable(t, "clean shutdown", acked, chain)
	total := 0
	for _, blk := range chain {
		total += len(blk.Txs)
	}
	if total != svcSenders*svcTxs {
		t.Fatalf("recovered %d transactions, want %d", total, svcSenders*svcTxs)
	}
}

// TestServiceCrashMidRun: crash the live concurrent service at sampled
// filesystem operations. Whatever the interleaving, recovery must succeed
// and must contain every transaction that was acked before the crash.
// (The exact crash ordinal is racy under concurrency — the checkpoint
// worker and the builder share the FS — so this asserts the invariant, not
// a byte-exact image per ordinal; the single-threaded sweep in
// recovery_test.go covers that.)
func TestServiceCrashMidRun(t *testing.T) {
	pre := svcGenesis()
	for op := 2; op < 60; op += 7 {
		mem := wal.NewMemFS()
		ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: wal.Crash})
		acked, _, _ := svcService(t, ff, pre, 2)
		for _, keep := range []int{0, 9} {
			chain, _ := svcRecover(t, mem.CrashImage(keep), pre)
			requireAckedDurable(t, "crash@"+itoa(op)+"/keep="+itoa(keep), acked, chain)
		}
	}
}
