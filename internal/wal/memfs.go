package wal

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models the durability semantics real
// filesystems give a crash-safe layer, with a volatile/durable split:
//
//   - file data written but not yet Synced lives only in the volatile
//     image (the page cache); Sync advances the file's durable prefix;
//   - a created or renamed name is volatile until its directory is
//     SyncDir'd: a crash can forget a rename whose directory entry never
//     hit disk, exactly the failure temp-file+rename must survive;
//   - CrashImage materialises the post-crash filesystem: durable names
//     only, each file cut to its durable prefix plus an optional torn
//     tail of unsynced bytes that happened to reach disk.
//
// Directories themselves are considered durable on creation (MkdirAll
// precedes all interesting data in this layer). MemFS is safe for
// concurrent use.
type MemFS struct {
	mu   sync.Mutex
	vols map[string]*memInode // current (volatile) namespace
	dur  map[string]*memInode // names whose directory entries are durable
	dirs map[string]bool
}

// memInode is one file's backing store. synced is the durable data
// prefix; bytes beyond it are lost (except for a torn tail) on crash.
type memInode struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		vols: make(map[string]*memInode),
		dur:  make(map[string]*memInode),
		dirs: make(map[string]bool),
	}
}

// Install creates a file whose name and contents are already fully
// durable — the seeding primitive of the fuzz and recovery tests.
func (m *MemFS) Install(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	node := &memInode{data: append([]byte(nil), data...)}
	node.synced = len(node.data)
	m.vols[name] = node
	m.dur[name] = node
	m.dirs[filepath.Dir(name)] = true
}

// ReadFileVolatile returns the current (volatile) contents of name, for
// test assertions.
func (m *MemFS) ReadFileVolatile(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.vols[filepath.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), node.data...), true
}

// CrashImage returns the filesystem a reboot would observe: only durable
// directory entries survive, and each file's data is its durable prefix
// plus at most keepUnsynced trailing unsynced bytes (a torn tail — disks
// persist partial pages even without fsync). keepUnsynced 0 is the
// strictest image; sweeping small positive values exercises torn-record
// truncation. The receiver is not modified.
func (m *MemFS) CrashImage(keepUnsynced int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	//txlint:ordered keyed copy; distinct range keys write distinct entries of the image
	for name, node := range m.dur {
		n := node.synced + keepUnsynced
		if n > len(node.data) {
			n = len(node.data)
		}
		img := &memInode{data: append([]byte(nil), node.data[:n]...), synced: node.synced}
		out.vols[name] = img
		out.dur[name] = img
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	node, ok := m.vols[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		node = &memInode{}
		m.vols[name] = node
	}
	if flag&os.O_TRUNC != 0 {
		node.data = node.data[:0]
		node.synced = 0
	}
	return &memHandle{fs: m, node: node}, nil
}

// Rename implements FS. The new name is volatile until its directory is
// SyncDir'd; a crash before that resurrects the old name.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	node, ok := m.vols[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.vols, oldpath)
	m.vols[newpath] = node
	return nil
}

// Remove implements FS. Like Rename, the removal is volatile until the
// directory is synced.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.vols[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.vols, name)
	return nil
}

// MkdirAll implements FS; directories are durable on creation.
func (m *MemFS) MkdirAll(path string, _ os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// ListDir implements FS over the volatile namespace, sorted.
func (m *MemFS) ListDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, &fs.PathError{Op: "open", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	//txlint:ordered collected names are sorted before return
	for name := range m.vols {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: every volatile entry directly under dir becomes
// durable, and durable entries no longer present are forgotten — the
// moment a rename or removal truly commits.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	//txlint:ordered keyed copy; distinct range keys write distinct durable entries
	for name, node := range m.vols {
		if filepath.Dir(name) == dir {
			m.dur[name] = node
		}
	}
	//txlint:ordered keyed deletes; distinct range keys delete distinct entries
	for name := range m.dur {
		if filepath.Dir(name) != dir {
			continue
		}
		if _, live := m.vols[name]; !live {
			delete(m.dur, name)
		}
	}
	return nil
}

// fileCount returns the number of volatile entries whose name has the
// given prefix and suffix (test helper).
func (m *MemFS) fileCount(prefix, suffix string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	//txlint:ordered pure count; addition over the range commutes
	for name := range m.vols {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			n++
		}
	}
	return n
}

// memHandle is one open descriptor: a position over a shared inode.
type memHandle struct {
	fs     *MemFS
	node   *memInode
	off    int64
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	end := h.off + int64(len(p))
	for int64(len(h.node.data)) < end {
		h.node.data = append(h.node.data, 0)
	}
	copy(h.node.data[h.off:end], p)
	// Overwriting previously-synced bytes invalidates their durability
	// until the next sync.
	if int(h.off) < h.node.synced {
		h.node.synced = int(h.off)
	}
	h.off = end
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.node.data)) + offset
	default:
		return 0, fmt.Errorf("wal: bad whence %d", whence)
	}
	if h.off < 0 {
		h.off = 0
	}
	return h.off, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.node.synced = len(h.node.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if size < 0 || size > int64(len(h.node.data)) {
		return fmt.Errorf("wal: bad truncate size %d", size)
	}
	h.node.data = h.node.data[:size]
	if h.node.synced > int(size) {
		h.node.synced = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
