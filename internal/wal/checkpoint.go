package wal

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
)

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

// ckptMetaKey keys the one non-state entry of a checkpoint table: its
// value is the big-endian block index the checkpoint covers, validated
// against the filename on open. The single zero byte is shorter than any
// encoded state key, so it always sorts (and is written) first.
var ckptMetaKey = []byte{0x00}

// A checkpoint file is a basestore sorted table: the meta entry followed
// by basestore.StateEntries of the committed state after applying blocks
// [0, index] of the log. The table's per-frame CRCs and strict key order
// replace the old whole-file checksum, and its in-RAM key index is what
// makes recovery lazy — Recover opens the index without touching the
// values; the suffix replay faults keys in on demand.

// checkpointName returns the filename for a checkpoint at the given block
// index; the fixed-width hex index makes lexical order equal numeric order.
func checkpointName(index uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, index, ckptSuffix)
}

// parseCheckpointName inverts checkpointName.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Dir is one durability directory: the block log plus any number of
// versioned checkpoint files, all accessed through the same FS seam.
type Dir struct {
	fsys   FS
	path   string
	policy SyncPolicy
	log    *Log
	recs   []Record
}

// Open opens (creating if needed) the durability directory at path: the
// block log is opened and scanned (torn tails truncated), checkpoint files
// are left untouched until Recover.
func Open(fsys FS, path string, policy SyncPolicy) (*Dir, error) {
	if err := fsys.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", path, err)
	}
	log, recs, err := OpenLog(fsys, filepath.Join(path, LogName), policy)
	if err != nil {
		return nil, err
	}
	return &Dir{fsys: fsys, path: path, policy: policy, log: log, recs: recs}, nil
}

// Log returns the directory's block log.
func (d *Dir) Log() *Log { return d.log }

// Records returns the valid records found when the log was opened.
func (d *Dir) Records() []Record { return d.recs }

// Close closes the block log.
func (d *Dir) Close() error { return d.log.Close() }

// WriteCheckpoint atomically writes the committed state after block index
// as a versioned checkpoint file. A crash at any stage leaves at worst a
// stale temp file and the previous checkpoints — never a torn checkpoint
// that recovery could trust.
func (d *Dir) WriteCheckpoint(index uint64, st *account.StateDB) error {
	entries := basestore.StateEntries(st)
	all := make([]basestore.Entry, 0, len(entries)+1)
	all = append(all, basestore.Entry{Key: ckptMetaKey, Val: basestore.EncodeU64(index)})
	all = append(all, entries...)
	path := filepath.Join(d.path, checkpointName(index))
	if err := basestore.WriteTable(d.fsys, path, all); err != nil {
		return fmt.Errorf("wal: write checkpoint %d: %w", index, err)
	}
	return nil
}

// openCheckpoint opens and validates one checkpoint table. Only the key
// index and the meta entry are read; state values stay on disk for
// LazyState to fault in.
func (d *Dir) openCheckpoint(name string) (*basestore.Table, error) {
	tbl, err := basestore.OpenTable(d.fsys, filepath.Join(d.path, name))
	if err != nil {
		return nil, fmt.Errorf("wal: open checkpoint %s: %w", name, err)
	}
	meta, ok, err := tbl.Get(ckptMetaKey)
	if err != nil || !ok {
		tbl.Close()
		return nil, fmt.Errorf("wal: checkpoint %s: missing meta entry", name)
	}
	idx, err := basestore.DecodeU64(meta)
	if err != nil {
		tbl.Close()
		return nil, fmt.Errorf("wal: checkpoint %s meta: %w", name, err)
	}
	if wantIdx, _ := parseCheckpointName(name); idx != wantIdx {
		tbl.Close()
		return nil, fmt.Errorf("wal: checkpoint %s claims index %d", name, idx)
	}
	return tbl, nil
}

// Recovery is the outcome of Recover: the state to resume from and the
// log suffix to replay through the execution engine.
type Recovery struct {
	// Checkpoint is the block index of the checkpoint used, -1 when
	// recovery starts from genesis.
	Checkpoint int64
	// State is the recovered base state (the checkpoint's, or a copy of
	// genesis) behind a fault-in view: only the checkpoint's key index is
	// in RAM until keys are touched. Replaying Blocks on it reproduces
	// the durable chain; call Materialize for a plain StateDB.
	State *LazyState
	// Blocks is the log suffix after the checkpoint, in chain order.
	Blocks []*account.Block
	// NextIndex is one past the last durable block — where the builder
	// resumes appending.
	NextIndex uint64
}

// Recover picks the newest valid checkpoint consistent with the log and
// returns it plus the log suffix to replay. The log is the truth: a
// checkpoint claiming blocks the (possibly truncated) log does not hold
// is ignored, as is any checkpoint that fails validation — recovery then
// falls back to an older checkpoint or to genesis. Deterministic: the
// same durable bytes always produce the same Recovery.
func (d *Dir) Recover(genesis *account.StateDB) (*Recovery, error) {
	names, err := d.fsys.ListDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", d.path, err)
	}
	recs := d.recs
	lastIdx := int64(-1)
	if len(recs) > 0 {
		lastIdx = int64(recs[len(recs)-1].Index)
	}
	// Walk checkpoints newest-first (ListDir is sorted; the fixed-width
	// hex names sort numerically).
	var best *basestore.Table
	var bestIdx uint64
	for i := len(names) - 1; i >= 0; i-- {
		idx, ok := parseCheckpointName(names[i])
		if !ok || int64(idx) > lastIdx {
			continue
		}
		tbl, err := d.openCheckpoint(names[i])
		if err != nil {
			continue // a torn or foreign checkpoint costs replay time, never correctness
		}
		best, bestIdx = tbl, idx
		break
	}
	out := &Recovery{Checkpoint: -1, NextIndex: d.log.NextIndex()}
	suffixFrom := uint64(0)
	if best != nil {
		out.Checkpoint = int64(bestIdx)
		out.State = newLazyState(best)
		suffixFrom = bestIdx + 1
	} else {
		if len(recs) > 0 && recs[0].Index != 0 {
			return nil, fmt.Errorf("wal: log starts at %d with no usable checkpoint", recs[0].Index)
		}
		out.State = eagerLazyState(genesis.Copy())
	}
	for _, r := range recs {
		if r.Index >= suffixFrom {
			out.Blocks = append(out.Blocks, r.Block)
		}
	}
	return out, nil
}

// Checkpointer writes checkpoints into a Dir and satisfies the execution
// engine's CheckpointSink seam. Failures are recorded, not fatal: a
// checkpoint that cannot be written only lengthens replay.
type Checkpointer struct {
	d     *Dir
	every int

	mu      sync.Mutex
	written int
	err     error
}

// Checkpointer returns a sink that checkpoints every `every` committed
// blocks (0 disables checkpointing).
func (d *Dir) Checkpointer(every int) *Checkpointer {
	return &Checkpointer{d: d, every: every}
}

// Interval returns the checkpoint interval in blocks.
func (c *Checkpointer) Interval() int { return c.every }

// Checkpoint writes the committed state after block idx. Called from the
// engine's checkpoint worker goroutine, never the commit path.
func (c *Checkpointer) Checkpoint(idx int, st *account.StateDB) {
	err := c.d.WriteCheckpoint(uint64(idx), st)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	c.written++
}

// Written returns the number of checkpoints successfully written.
func (c *Checkpointer) Written() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Err returns the first checkpoint-write failure, if any.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
