package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"txconcur/internal/account"
)

// ckptMagic opens every checkpoint file; the trailing bytes version the
// format.
var ckptMagic = []byte("txconcur-ckpt\x00\x01")

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

// checkpointRecord is a checkpoint file's payload: the committed state
// after applying blocks [0, Index] of the log.
type checkpointRecord struct {
	Index uint64
	State account.StateExport
}

// checkpointName returns the filename for a checkpoint at the given block
// index; the fixed-width hex index makes lexical order equal numeric order.
func checkpointName(index uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, index, ckptSuffix)
}

// parseCheckpointName inverts checkpointName.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Dir is one durability directory: the block log plus any number of
// versioned checkpoint files, all accessed through the same FS seam.
type Dir struct {
	fsys   FS
	path   string
	policy SyncPolicy
	log    *Log
	recs   []Record
}

// Open opens (creating if needed) the durability directory at path: the
// block log is opened and scanned (torn tails truncated), checkpoint files
// are left untouched until Recover.
func Open(fsys FS, path string, policy SyncPolicy) (*Dir, error) {
	if err := fsys.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", path, err)
	}
	log, recs, err := OpenLog(fsys, filepath.Join(path, LogName), policy)
	if err != nil {
		return nil, err
	}
	return &Dir{fsys: fsys, path: path, policy: policy, log: log, recs: recs}, nil
}

// Log returns the directory's block log.
func (d *Dir) Log() *Log { return d.log }

// Records returns the valid records found when the log was opened.
func (d *Dir) Records() []Record { return d.recs }

// Close closes the block log.
func (d *Dir) Close() error { return d.log.Close() }

// WriteCheckpoint atomically writes the committed state after block index
// as a versioned checkpoint file. A crash at any stage leaves at worst a
// stale temp file and the previous checkpoints — never a torn checkpoint
// that recovery could trust.
func (d *Dir) WriteCheckpoint(index uint64, st *account.StateDB) error {
	rec := checkpointRecord{Index: index, State: st.Export()}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return fmt.Errorf("wal: encode checkpoint %d: %w", index, err)
	}
	path := filepath.Join(d.path, checkpointName(index))
	return WriteFileAtomic(d.fsys, path, func(w io.Writer) error {
		if _, err := w.Write(ckptMagic); err != nil {
			return err
		}
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[:4], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		_, err := w.Write(payload.Bytes())
		return err
	})
}

// readCheckpoint loads and fully validates one checkpoint file.
func (d *Dir) readCheckpoint(name string) (checkpointRecord, error) {
	var rec checkpointRecord
	f, err := d.fsys.OpenFile(filepath.Join(d.path, name), os.O_RDONLY, 0)
	if err != nil {
		return rec, fmt.Errorf("wal: open checkpoint %s: %w", name, err)
	}
	defer f.Close()
	header := make([]byte, len(ckptMagic)+8)
	if _, err := io.ReadFull(f, header); err != nil {
		return rec, fmt.Errorf("wal: checkpoint %s header: %w", name, err)
	}
	if !bytes.Equal(header[:len(ckptMagic)], ckptMagic) {
		return rec, fmt.Errorf("wal: checkpoint %s: bad magic", name)
	}
	size := binary.LittleEndian.Uint32(header[len(ckptMagic):])
	sum := binary.LittleEndian.Uint32(header[len(ckptMagic)+4:])
	if size == 0 || size > maxRecordSize {
		return rec, fmt.Errorf("wal: checkpoint %s: bad size %d", name, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(f, payload); err != nil {
		return rec, fmt.Errorf("wal: checkpoint %s payload: %w", name, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, fmt.Errorf("wal: checkpoint %s: checksum mismatch", name)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("wal: checkpoint %s decode: %w", name, err)
	}
	wantIdx, _ := parseCheckpointName(name)
	if rec.Index != wantIdx {
		return rec, fmt.Errorf("wal: checkpoint %s claims index %d", name, rec.Index)
	}
	return rec, nil
}

// Recovery is the outcome of Recover: the state to resume from and the
// log suffix to replay through the execution engine.
type Recovery struct {
	// Checkpoint is the block index of the checkpoint used, -1 when
	// recovery starts from genesis.
	Checkpoint int64
	// State is the recovered base state (the checkpoint's, or a copy of
	// genesis). Replaying Blocks on it reproduces the durable chain.
	State *account.StateDB
	// Blocks is the log suffix after the checkpoint, in chain order.
	Blocks []*account.Block
	// NextIndex is one past the last durable block — where the builder
	// resumes appending.
	NextIndex uint64
}

// Recover picks the newest valid checkpoint consistent with the log and
// returns it plus the log suffix to replay. The log is the truth: a
// checkpoint claiming blocks the (possibly truncated) log does not hold
// is ignored, as is any checkpoint that fails validation — recovery then
// falls back to an older checkpoint or to genesis. Deterministic: the
// same durable bytes always produce the same Recovery.
func (d *Dir) Recover(genesis *account.StateDB) (*Recovery, error) {
	names, err := d.fsys.ListDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", d.path, err)
	}
	recs := d.recs
	lastIdx := int64(-1)
	if len(recs) > 0 {
		lastIdx = int64(recs[len(recs)-1].Index)
	}
	// Walk checkpoints newest-first (ListDir is sorted; the fixed-width
	// hex names sort numerically).
	var best *checkpointRecord
	for i := len(names) - 1; i >= 0; i-- {
		idx, ok := parseCheckpointName(names[i])
		if !ok || int64(idx) > lastIdx {
			continue
		}
		ck, err := d.readCheckpoint(names[i])
		if err != nil {
			continue // a torn or foreign checkpoint costs replay time, never correctness
		}
		best = &ck
		break
	}
	out := &Recovery{Checkpoint: -1, NextIndex: d.log.NextIndex()}
	suffixFrom := uint64(0)
	if best != nil {
		out.Checkpoint = int64(best.Index)
		out.State = best.State.Restore()
		suffixFrom = best.Index + 1
	} else {
		if len(recs) > 0 && recs[0].Index != 0 {
			return nil, fmt.Errorf("wal: log starts at %d with no usable checkpoint", recs[0].Index)
		}
		out.State = genesis.Copy()
	}
	for _, r := range recs {
		if r.Index >= suffixFrom {
			out.Blocks = append(out.Blocks, r.Block)
		}
	}
	return out, nil
}

// Checkpointer writes checkpoints into a Dir and satisfies the execution
// engine's CheckpointSink seam. Failures are recorded, not fatal: a
// checkpoint that cannot be written only lengthens replay.
type Checkpointer struct {
	d     *Dir
	every int

	mu      sync.Mutex
	written int
	err     error
}

// Checkpointer returns a sink that checkpoints every `every` committed
// blocks (0 disables checkpointing).
func (d *Dir) Checkpointer(every int) *Checkpointer {
	return &Checkpointer{d: d, every: every}
}

// Interval returns the checkpoint interval in blocks.
func (c *Checkpointer) Interval() int { return c.every }

// Checkpoint writes the committed state after block idx. Called from the
// engine's checkpoint worker goroutine, never the commit path.
func (c *Checkpointer) Checkpoint(idx int, st *account.StateDB) {
	err := c.d.WriteCheckpoint(uint64(idx), st)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	c.written++
}

// Written returns the number of checkpoints successfully written.
func (c *Checkpointer) Written() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Err returns the first checkpoint-write failure, if any.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
