package wal_test

import (
	"errors"
	"fmt"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/wal"
)

// baseSweepProfile is an even smaller workload than sweepProfile: the
// integrated sweep folds the full state into the base store every block,
// so per-run cost scales with state size times the op count.
func baseSweepProfile() chainsim.Profile {
	return chainsim.Profile{
		Name: "Base-Layer Sweep", Model: chainsim.Account, Consensus: "PoW",
		DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []chainsim.Era{{
			Name: "sweep", Weight: 1, StartTime: 1577836800, BlockInterval: 15,
			TxPerBlock: 8, TxPerBlockJitter: 0.3, Users: 24, ActiveFrac: 2.5,
			HotSenderFrac: 0.5, HotSenders: 2,
		}},
	}
}

// baseWorkload drives the durability directory and a base-layer store on
// the SAME filesystem, the way the memory-bounded service stack does:
// append each block to the log (block ack), advance the committed state,
// checkpoint every `every` blocks, then fold the block's state entries
// into the base store (fold ack — the eviction persist point), compacting
// every third fold. Stops at the first filesystem error.
func baseWorkload(t *testing.T, fsys wal.FS, pre *account.StateDB, blocks []*account.Block, every int) (ackedBlocks, ackedFolds int, err error) {
	t.Helper()
	d, err := wal.Open(fsys, "dur", wal.SyncEachRecord)
	if err != nil {
		return 0, 0, err
	}
	bs, err := basestore.OpenStore(fsys, "dur/base")
	if err != nil {
		return 0, 0, err
	}
	st := pre.Copy()
	proc := account.Processor{DeferCoinbase: true}
	for i, blk := range blocks {
		if _, err := d.Log().Append(blk); err != nil {
			return ackedBlocks, ackedFolds, err
		}
		ackedBlocks++
		receipts := make([]*account.Receipt, 0, len(blk.Txs))
		for j, tx := range blk.Txs {
			rcpt, aerr := proc.ApplyTransaction(st, blk, tx)
			if aerr != nil {
				t.Fatalf("workload replay block %d tx %d: %v", i, j, aerr)
			}
			receipts = append(receipts, rcpt)
		}
		st.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		st.AddBalance(blk.Coinbase, account.BlockReward)
		st.DiscardJournal()
		if every > 0 && (i+1)%every == 0 {
			if err := d.WriteCheckpoint(uint64(i), st); err != nil {
				return ackedBlocks, ackedFolds, err
			}
		}
		if err := bs.Apply(basestore.StateEntries(st)); err != nil {
			return ackedBlocks, ackedFolds, err
		}
		ackedFolds++
		if ackedFolds%3 == 0 {
			if err := bs.Compact(); err != nil {
				return ackedBlocks, ackedFolds, err
			}
		}
	}
	bs.Close()
	return ackedBlocks, ackedFolds, d.Close()
}

// oracleEntries replays blocks sequentially and returns the base-layer
// entry set after each block — the fold oracle.
func oracleEntries(t *testing.T, pre *account.StateDB, blocks []*account.Block) [][]basestore.Entry {
	t.Helper()
	st := pre.Copy()
	proc := account.Processor{DeferCoinbase: true}
	out := make([][]basestore.Entry, len(blocks))
	for i, blk := range blocks {
		receipts := make([]*account.Receipt, 0, len(blk.Txs))
		for j, tx := range blk.Txs {
			rcpt, err := proc.ApplyTransaction(st, blk, tx)
			if err != nil {
				t.Fatalf("oracle replay block %d tx %d: %v", i, j, err)
			}
			receipts = append(receipts, rcpt)
		}
		st.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		st.AddBalance(blk.Coinbase, account.BlockReward)
		st.DiscardJournal()
		out[i] = basestore.StateEntries(st)
	}
	return out
}

// requireBaseRecovered reopens the base store from a crash image and
// checks zero acked-fold loss: every entry of the last acked fold reads
// back with its acked value or the in-flight fold's value (accounts are
// never deleted, so the newest-wins union over the fold prefix is the
// last fold's entry set).
func requireBaseRecovered(t *testing.T, img *wal.MemFS, folds [][]basestore.Entry, acked int, label string) {
	t.Helper()
	s, err := basestore.OpenStore(img, "dur/base")
	if err != nil {
		t.Fatalf("%s: base reopen: %v", label, err)
	}
	defer s.Close()
	if acked == 0 {
		return
	}
	next := make(map[string]string)
	if acked < len(folds) {
		for _, e := range folds[acked] {
			next[string(e.Key)] = string(e.Val)
		}
	}
	for _, e := range folds[acked-1] {
		got, ok, err := s.Get(e.Key)
		if err != nil {
			t.Fatalf("%s: base Get: %v", label, err)
		}
		if !ok {
			t.Fatalf("%s: acked base key %x lost", label, e.Key)
		}
		if string(got) != string(e.Val) && string(got) != next[string(e.Key)] {
			t.Fatalf("%s: base key %x = %x, want %x (acked) or in-flight value", label, e.Key, got, e.Val)
		}
	}
}

// TestBaseLayerCrashPointSweep extends the PR-9 crash-point sweep to
// every mutating filesystem operation of the full base-layer stack
// running beside the WAL: block appends, table-checkpoint writes, base
// store Apply (the eviction persist point — a crash here is "between
// evict and fold", since the in-RAM drop vanishes with the process) and
// Compact, all numbered on one FaultFS. Crashing at each ordinal covers
// mid-table-write and mid-index-write for both the checkpoint and base
// writers. After every crash: recovery must reproduce the oracle's roots
// and receipts exactly with zero acked-block loss, and the reopened base
// store must serve every acked fold newest-wins.
func TestBaseLayerCrashPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long: one full workload run per filesystem operation")
	}
	pre, blocks, err := chainsim.GenerateAccountChain(baseSweepProfile(), 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	folds := oracleEntries(t, pre, blocks)
	const every = 2

	clean := wal.NewFaultFS(wal.NewMemFS())
	ackedBlocks, ackedFolds, err := baseWorkload(t, clean, pre, blocks, every)
	if err != nil || ackedBlocks != len(blocks) || ackedFolds != len(blocks) {
		t.Fatalf("clean run: acked %d blocks %d folds err %v", ackedBlocks, ackedFolds, err)
	}
	total := clean.Ops()
	if total == 0 {
		t.Fatal("clean run issued no filesystem operations")
	}

	for op := 0; op < total; op++ {
		for _, keep := range []int{0, 7} {
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: wal.Crash})
			ackedBlocks, ackedFolds, werr := baseWorkload(t, ff, pre, blocks, every)
			if !errors.Is(werr, wal.ErrCrashed) {
				t.Fatalf("op %d: workload survived the crash: %v", op, werr)
			}
			img := mem.CrashImage(keep)
			label := fmt.Sprintf("crash@%d/keep=%d", op, keep)
			requireRecovered(t, img, pre, seq, ackedBlocks, label)
			requireBaseRecovered(t, img, folds, ackedFolds, label)
		}
	}
}

// TestLazyRecoveryFaultsOnDemand is the payoff of the table checkpoint
// format: recovering and replaying a short log suffix faults in only the
// keys the suffix touches — a small fraction of the checkpointed state —
// and still lands on the oracle root after materialisation.
func TestLazyRecoveryFaultsOnDemand(t *testing.T) {
	p := sweepProfile()
	p.Eras[0].Users = 400
	p.Eras[0].TxPerBlock = 8
	pre, blocks, err := chainsim.GenerateAccountChain(p, 7, 29)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	mem := wal.NewMemFS()
	const every = 3
	if _, err := durWorkload(t, mem, pre, blocks, every); err != nil {
		t.Fatal(err)
	}
	d, err := wal.Open(mem, "dur", wal.SyncEachRecord)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec, err := d.Recover(pre)
	if err != nil {
		t.Fatal(err)
	}
	// 7 blocks, every=3 → checkpoints at 2 and 5; suffix is block 6 only.
	if rec.Checkpoint != 5 || len(rec.Blocks) != 1 {
		t.Fatalf("recovered checkpoint %d with %d suffix blocks, want 5 and 1", rec.Checkpoint, len(rec.Blocks))
	}
	if got := rec.State.Faults(); got != 0 {
		t.Fatalf("%d keys faulted before any access", got)
	}

	// Sequential suffix replay straight over the lazy view.
	proc := account.Processor{DeferCoinbase: true}
	for _, blk := range rec.Blocks {
		receipts := make([]*account.Receipt, 0, len(blk.Txs))
		for _, tx := range blk.Txs {
			rcpt, err := proc.ApplyTransaction(rec.State, blk, tx)
			if err != nil {
				t.Fatalf("lazy replay: %v", err)
			}
			receipts = append(receipts, rcpt)
		}
		rec.State.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		rec.State.AddBalance(blk.Coinbase, account.BlockReward)
	}
	faults := rec.State.Faults()
	if faults == 0 {
		t.Fatal("suffix replay faulted no keys")
	}

	st, err := rec.State.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Root(), seq.Roots[len(blocks)-1]; got != want {
		t.Fatalf("lazy-replayed root %s, oracle has %s", got.Short(), want.Short())
	}
	total := len(basestore.StateEntries(st))
	if faults*4 > total {
		t.Fatalf("suffix replay faulted %d of %d keys — recovery is not lazy", faults, total)
	}
}
