package wal_test

import (
	"errors"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/wal"
)

// sweepProfile is a deliberately small account-model workload: the sweeps
// re-run the whole workload once per filesystem operation and fault kind,
// so state size matters far more than realism here. Skewed senders keep
// real conflicts in the replay.
func sweepProfile() chainsim.Profile {
	return chainsim.Profile{
		Name: "Durability Sweep", Model: chainsim.Account, Consensus: "PoW",
		DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []chainsim.Era{{
			Name: "sweep", Weight: 1, StartTime: 1577836800, BlockInterval: 15,
			TxPerBlock: 10, TxPerBlockJitter: 0.3, Users: 120, ActiveFrac: 2.5,
			HotSenderFrac: 0.5, HotSenders: 2,
		}},
	}
}

// durWorkload drives the durability layer the way the builder does:
// append each block to the log (persist point — a successful Append is an
// ack), advance the committed state, and checkpoint every `every` blocks.
// It stops at the first filesystem error and reports how many blocks were
// acked before it.
func durWorkload(t *testing.T, fsys wal.FS, pre *account.StateDB, blocks []*account.Block, every int) (acked int, err error) {
	t.Helper()
	d, err := wal.Open(fsys, "dur", wal.SyncEachRecord)
	if err != nil {
		return 0, err
	}
	st := pre.Copy()
	proc := account.Processor{DeferCoinbase: true}
	for i, blk := range blocks {
		if _, err := d.Log().Append(blk); err != nil {
			return acked, err
		}
		acked++
		receipts := make([]*account.Receipt, 0, len(blk.Txs))
		for j, tx := range blk.Txs {
			rcpt, aerr := proc.ApplyTransaction(st, blk, tx)
			if aerr != nil {
				t.Fatalf("workload replay block %d tx %d: %v", i, j, aerr)
			}
			receipts = append(receipts, rcpt)
		}
		st.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		st.AddBalance(blk.Coinbase, account.BlockReward)
		st.DiscardJournal()
		if every > 0 && (i+1)%every == 0 {
			if err := d.WriteCheckpoint(uint64(i), st); err != nil {
				return acked, err
			}
		}
	}
	return acked, d.Close()
}

// requireRecovered opens the crash image, recovers, replays the log suffix
// through the sharded chain, and asserts the recovered chain is
// byte-identical to the uninterrupted run's prefix: same roots, same
// receipts, and no acked block missing.
func requireRecovered(t *testing.T, img *wal.MemFS, pre *account.StateDB, seq *testutil.Chain, acked int, label string) {
	t.Helper()
	d, err := wal.Open(img, "dur", wal.SyncEachRecord)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer d.Close()
	rec, err := d.Recover(pre)
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	durable := int(rec.NextIndex)
	if durable < acked {
		t.Fatalf("%s: %d blocks acked but only %d durable — acked data lost", label, acked, durable)
	}
	if rec.Checkpoint >= 0 && int(rec.Checkpoint)+1+len(rec.Blocks) != durable {
		t.Fatalf("%s: checkpoint %d + %d replay blocks != %d durable", label, rec.Checkpoint, len(rec.Blocks), durable)
	}

	// The checkpoint itself must equal the sequential prefix state.
	st, err := rec.State.Materialize()
	if err != nil {
		t.Fatalf("%s: materialize: %v", label, err)
	}
	if rec.Checkpoint >= 0 {
		if got, want := st.Root(), seq.Roots[rec.Checkpoint]; got != want {
			t.Fatalf("%s: checkpoint %d root %s, oracle prefix has %s", label, rec.Checkpoint, got.Short(), want.Short())
		}
	} else if got, want := st.Root(), pre.Root(); got != want {
		t.Fatalf("%s: genesis recovery root %s, want %s", label, got.Short(), want.Short())
	}

	e := exec.Sharded{Workers: 4, Shards: 2, Depth: 2}
	root := st.Root()
	if len(rec.Blocks) > 0 {
		res, _, err := e.ExecuteChain(st, rec.Blocks)
		if err != nil {
			t.Fatalf("%s: replay: %v", label, err)
		}
		root = res.Root
		first := int(rec.Checkpoint) + 1
		for b := range res.Receipts {
			testutil.RequireReceipts(t, label, first+b, res.Receipts[b], seq.Receipts[first+b])
		}
	}
	want := pre.Root()
	if durable > 0 {
		want = seq.Roots[durable-1]
	}
	if root != want {
		t.Fatalf("%s: recovered root %s, uninterrupted run has %s", label, root.Short(), want.Short())
	}
}

// TestRecoveryCrashPointSweep is the durability layer's central invariant:
// crash the workload at EVERY mutating filesystem operation (with and
// without a torn tail of unsynced bytes), then Recover() + replay must
// reproduce the uninterrupted run's roots and receipts exactly, with zero
// acked-block loss.
func TestRecoveryCrashPointSweep(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(sweepProfile(), 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	const every = 2

	// Fault-free run bounds the sweep and pins the op count: any change to
	// the write path shows up here as a different sweep width.
	clean := wal.NewFaultFS(wal.NewMemFS())
	acked, err := durWorkload(t, clean, pre, blocks, every)
	if err != nil || acked != len(blocks) {
		t.Fatalf("clean run: acked %d err %v", acked, err)
	}
	total := clean.Ops()
	if total == 0 {
		t.Fatal("clean run issued no filesystem operations")
	}

	for op := 0; op < total; op++ {
		for _, keep := range []int{0, 7} {
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: wal.Crash})
			acked, werr := durWorkload(t, ff, pre, blocks, every)
			if !errors.Is(werr, wal.ErrCrashed) {
				t.Fatalf("op %d: workload survived the crash: %v", op, werr)
			}
			img := mem.CrashImage(keep)
			requireRecovered(t, img, pre, seq, acked,
				"crash@"+itoa(op)+"/keep="+itoa(keep))
		}
	}
}

// TestRecoveryAfterInjectedErrors: non-crash faults (transient write
// errors, short writes, fsync failures) abort the workload with a visible
// error, and a subsequent crash still recovers consistently — an error the
// layer surfaced must never have been acked.
func TestRecoveryAfterInjectedErrors(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(sweepProfile(), 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	const every = 2

	clean := wal.NewFaultFS(wal.NewMemFS())
	if _, err := durWorkload(t, clean, pre, blocks, every); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()

	for op := 0; op < total; op++ {
		for _, kind := range []wal.FaultKind{wal.ErrWrite, wal.ShortWrite, wal.ErrSync} {
			mem := wal.NewMemFS()
			ff := wal.NewFaultFS(mem, wal.Fault{Op: op, Kind: kind, Keep: 3})
			acked, werr := durWorkload(t, ff, pre, blocks, every)
			if werr == nil {
				t.Fatalf("op %d kind %d: injected fault swallowed", op, kind)
			}
			// Power-loss right after the error: everything unsynced is gone.
			img := mem.CrashImage(0)
			requireRecovered(t, img, pre, seq, acked,
				"fault@"+itoa(op)+"/kind="+itoa(int(kind)))
		}
	}
}

// TestRecoveryCheckpointPreferred: with checkpoints on disk, recovery
// starts from the newest one consistent with the log, replaying only the
// suffix.
func TestRecoveryCheckpointPreferred(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(sweepProfile(), 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	mem := wal.NewMemFS()
	if _, err := durWorkload(t, mem, pre, blocks, 2); err != nil {
		t.Fatal(err)
	}
	d, err := wal.Open(mem, "dur", wal.SyncEachRecord)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec, err := d.Recover(pre)
	if err != nil {
		t.Fatal(err)
	}
	// 6 blocks, every=2 → checkpoints at 1, 3, 5; newest is 5.
	if rec.Checkpoint != 5 {
		t.Fatalf("recovered from checkpoint %d, want 5", rec.Checkpoint)
	}
	if len(rec.Blocks) != 0 {
		t.Fatalf("%d replay blocks after a tip checkpoint", len(rec.Blocks))
	}
	st, err := rec.State.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if got, want := st.Root(), seq.Roots[len(blocks)-1]; got != want {
		t.Fatalf("checkpoint state root %s, want %s", got.Short(), want.Short())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
