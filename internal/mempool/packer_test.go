package mempool

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// genWorkload derives a deterministic pending list from a seed: a handful
// of senders with in-order nonce chains, predictions from PredictTransfer,
// some transactions additionally touching shared contract keys (hot reads/
// writes or commuting deltas).
func genWorkload(seed int64, n int) []*Pending {
	rng := rand.New(rand.NewSource(seed))
	nonces := make(map[types.Address]uint64)
	out := make([]*Pending, 0, n)
	for i := 0; i < n; i++ {
		from := addr(uint64(rng.Intn(8)))
		tx := transfer(0, uint64(100+rng.Intn(4)), nonces[from], 1)
		tx.From = from
		nonces[from]++
		p := PredictTransfer(tx)
		if rng.Intn(3) == 0 {
			k := fmt.Sprintf("hot%d", rng.Intn(3))
			if rng.Intn(2) == 0 {
				p.Reads = append(p.Reads, k)
				p.Writes = append(p.Writes, k)
			} else {
				p.Deltas = append(p.Deltas, k)
			}
		}
		out = append(out, p)
	}
	return out
}

// checkContract asserts the Packer interface contract on one Pack call:
// strictly increasing indices within bounds, at most MaxTxs, progress
// (pending[0] picked), and the per-sender prefix rule.
func checkContract(t *testing.T, name string, pending []*Pending, cfg PackConfig, idx []int) {
	t.Helper()
	cfg = cfg.normalized()
	if len(idx) > cfg.MaxTxs {
		t.Fatalf("%s: packed %d > MaxTxs %d", name, len(idx), cfg.MaxTxs)
	}
	if len(pending) > 0 && (len(idx) == 0 || idx[0] != 0) {
		t.Fatalf("%s: no progress — pending[0] not picked (idx=%v)", name, idx)
	}
	picked := make(map[int]bool, len(idx))
	for i, v := range idx {
		if v < 0 || v >= len(pending) {
			t.Fatalf("%s: index %d out of range", name, v)
		}
		if i > 0 && v <= idx[i-1] {
			t.Fatalf("%s: indices not strictly increasing: %v", name, idx)
		}
		picked[v] = true
	}
	// Prefix rule: picking pending[i] requires every earlier tx from the
	// same sender to be picked too, or nonces would commit out of order.
	for _, v := range idx {
		from := pending[v].Tx.From
		for j := 0; j < v; j++ {
			if pending[j].Tx.From == from && !picked[j] {
				t.Fatalf("%s: sender %s reordered — pending[%d] picked, pending[%d] skipped",
					name, from.Short(), v, j)
			}
		}
	}
}

func packers() []Packer { return []Packer{FIFO{}, ConflictAware{}} }

// TestQuickPackerContract: the interface contract holds for random
// workloads and configs, for both packers.
func TestQuickPackerContract(t *testing.T) {
	f := func(seed int64, nRaw, maxRaw, capRaw uint8) bool {
		n := int(nRaw % 64)
		cfg := PackConfig{MaxTxs: int(maxRaw%24) + 1, HotKeyCap: int(capRaw%5) + 1}
		pending := genWorkload(seed, n)
		for _, p := range packers() {
			checkContract(t, p.Name(), pending, cfg, p.Pack(pending, cfg))
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPackerDrainConservation: repeatedly packing and removing until
// the pool view is empty drops nothing and duplicates nothing — every
// transaction is packed exactly once, and the loop terminates (progress).
func TestQuickPackerDrainConservation(t *testing.T) {
	f := func(seed int64, nRaw, maxRaw, capRaw uint8) bool {
		n := int(nRaw%64) + 1
		cfg := PackConfig{MaxTxs: int(maxRaw%24) + 1, HotKeyCap: int(capRaw%5) + 1}
		for _, p := range packers() {
			pending := genWorkload(seed, n)
			counts := make(map[*Pending]int, n)
			for _, tx := range pending {
				counts[tx]++
			}
			for rounds := 0; len(pending) > 0; rounds++ {
				if rounds > n {
					t.Fatalf("%s: drain did not terminate in %d rounds", p.Name(), n)
				}
				idx := p.Pack(pending, cfg)
				checkContract(t, p.Name(), pending, cfg, idx)
				inBlock := make(map[int]bool, len(idx))
				for _, v := range idx {
					counts[pending[v]]--
					inBlock[v] = true
				}
				kept := pending[:0]
				for i, tx := range pending {
					if !inBlock[i] {
						kept = append(kept, tx)
					}
				}
				pending = kept
			}
			for tx, c := range counts {
				if c != 0 {
					t.Fatalf("%s: %s nonce %d packed %d times too %s",
						p.Name(), tx.Tx.From.Short(), tx.Tx.Nonce, c, "few/many")
				}
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConflictDensityBound: every block the conflict-aware packer
// builds has per-key non-commutative density ≤ HotKeyCap — the bound that
// makes the density ceiling monotone in the cap.
func TestQuickConflictDensityBound(t *testing.T) {
	f := func(seed int64, nRaw, capRaw uint8) bool {
		n := int(nRaw % 96)
		cfg := PackConfig{MaxTxs: 64, HotKeyCap: int(capRaw%6) + 1}
		pending := genWorkload(seed, n)
		idx := ConflictAware{}.Pack(pending, cfg)
		density := make(map[string]int)
		for _, v := range idx {
			for _, k := range nonCommuting(pending[v]) {
				density[k]++
			}
		}
		for k, d := range density {
			if d > cfg.HotKeyCap {
				t.Fatalf("key %q density %d > cap %d (seed=%d)", k, d, cfg.HotKeyCap, seed)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConflictAwareHotKeyExact pins the exact behaviour on a pure hot-key
// workload — N distinct senders all read-writing one key: the packed count
// is min(cap, N), strictly monotone in the cap until it saturates.
func TestConflictAwareHotKeyExact(t *testing.T) {
	const n = 20
	pending := make([]*Pending, n)
	for i := range pending {
		tx := transfer(uint64(i), 500, 0, 1)
		p := PredictTransfer(tx)
		p.Reads = append(p.Reads, "hot")
		p.Writes = append(p.Writes, "hot")
		pending[i] = p
	}
	prev := 0
	for hotCap := 1; hotCap <= n+5; hotCap++ {
		got := len(ConflictAware{}.Pack(pending, PackConfig{MaxTxs: 64, HotKeyCap: hotCap}))
		want := hotCap
		if want > n {
			want = n
		}
		if got != want {
			t.Fatalf("cap=%d: packed %d, want %d", hotCap, got, want)
		}
		if got < prev {
			t.Fatalf("cap=%d: packed count fell from %d to %d", hotCap, prev, got)
		}
		prev = got
	}
	// FIFO ignores the cap entirely: all N in one block.
	if got := len(FIFO{}.Pack(pending, PackConfig{MaxTxs: 64, HotKeyCap: 1})); got != n {
		t.Fatalf("fifo packed %d, want %d", got, n)
	}
}

// TestConflicts pins the op-level conflict rule on predictions.
func TestConflicts(t *testing.T) {
	mk := func(r, w, d []string) *Pending {
		return &Pending{Tx: &account.Transaction{}, Reads: r, Writes: w, Deltas: d}
	}
	cases := []struct {
		name string
		a, b *Pending
		want bool
	}{
		{"disjoint", mk([]string{"a"}, []string{"a"}, nil), mk([]string{"b"}, []string{"b"}, nil), false},
		{"read-read", mk([]string{"k"}, nil, nil), mk([]string{"k"}, nil, nil), false},
		{"delta-delta", mk(nil, nil, []string{"k"}), mk(nil, nil, []string{"k"}), false},
		{"write-write", mk(nil, []string{"k"}, nil), mk(nil, []string{"k"}, nil), true},
		{"write-read", mk(nil, []string{"k"}, nil), mk([]string{"k"}, nil, nil), true},
		{"write-delta", mk(nil, []string{"k"}, nil), mk(nil, nil, []string{"k"}), true},
		{"delta-read", mk(nil, nil, []string{"k"}), mk([]string{"k"}, nil, nil), true},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("%s: Conflicts = %v, want %v", c.name, got, c.want)
		}
		if got := Conflicts(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): Conflicts = %v, want %v", c.name, got, c.want)
		}
	}
	// PredictTransfer self-consistency: two transfers from one sender
	// conflict (nonce/balance), transfers to a shared recipient commute.
	t1 := PredictTransfer(transfer(1, 9, 0, 1))
	t2 := PredictTransfer(transfer(1, 8, 1, 1))
	t3 := PredictTransfer(transfer(2, 9, 0, 1))
	if !Conflicts(t1, t2) {
		t.Error("same-sender transfers should conflict")
	}
	if Conflicts(t1, t3) {
		t.Error("shared-recipient transfers should commute (delta-delta)")
	}
}
