package mempool

import (
	"context"
	"sync"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

func addr(i uint64) types.Address { return types.AddressFromUint64("user", i) }

func transfer(from, to, nonce uint64, value account.Amount) *account.Transaction {
	return &account.Transaction{
		From: addr(from), To: addr(to), Value: value,
		Nonce: nonce, GasLimit: 21_000, GasPrice: 1,
	}
}

func TestSubmitValidation(t *testing.T) {
	p := New(4)
	if err := p.Submit(context.Background(), nil); err == nil {
		t.Fatal("nil pending accepted")
	}
	if err := p.Submit(context.Background(), &Pending{}); err == nil {
		t.Fatal("nil transaction accepted")
	}
	if p.Len() != 0 {
		t.Fatalf("rejected submissions left %d pending", p.Len())
	}
}

func TestSubmitStampsAndCopies(t *testing.T) {
	p := New(4)
	fake := time.Unix(1000, 0)
	p.now = func() time.Time { return fake }
	orig := PredictTransfer(transfer(1, 2, 0, 5))
	if err := p.Submit(context.Background(), orig); err != nil {
		t.Fatal(err)
	}
	orig.Submitted = time.Unix(9999, 0) // caller reuse must not leak in
	fake = time.Unix(2000, 0)
	if err := p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 1, 5))); err != nil {
		t.Fatal(err)
	}
	pend, closed := p.view()
	if closed {
		t.Fatal("pool reported closed")
	}
	if len(pend) != 2 {
		t.Fatalf("pending = %d, want 2", len(pend))
	}
	if !pend[0].Submitted.Equal(time.Unix(1000, 0)) || !pend[1].Submitted.Equal(time.Unix(2000, 0)) {
		t.Fatalf("submit stamps %v, %v", pend[0].Submitted, pend[1].Submitted)
	}
	if pend[0].seq >= pend[1].seq {
		t.Fatalf("arrival numbers not increasing: %d, %d", pend[0].seq, pend[1].seq)
	}
}

func TestBackpressure(t *testing.T) {
	p := New(1)
	if err := p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 0, 1))); err != nil {
		t.Fatal(err)
	}
	// A full pool blocks; a cancelled context unblocks with ctx's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Submit(ctx, PredictTransfer(transfer(1, 2, 1, 1))); err != context.Canceled {
		t.Fatalf("submit on full pool with cancelled ctx: %v", err)
	}
	// Freeing the slot admits a blocked submitter.
	done := make(chan error, 1)
	go func() {
		done <- p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 1, 1)))
	}()
	select {
	case err := <-done:
		t.Fatalf("submit did not block on full pool (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	pend, _ := p.view()
	p.remove(map[uint64]bool{pend[0].seq: true})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submitter still blocked after slot freed")
	}
}

func TestCloseSemantics(t *testing.T) {
	p := New(1)
	if err := p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 0, 1))); err != nil {
		t.Fatal(err)
	}
	// A submitter blocked on a full pool is woken by Close with ErrClosed.
	done := make(chan error, 1)
	go func() {
		done <- p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 1, 1)))
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	p.Close() // idempotent
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("blocked submitter woke with %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked submitter not woken by Close")
	}
	if err := p.Submit(context.Background(), PredictTransfer(transfer(1, 2, 1, 1))); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	// The admitted transaction is still drainable.
	if p.Len() != 1 {
		t.Fatalf("pending after close = %d, want 1", p.Len())
	}
}

func TestRemovePreservesOrderAndSlots(t *testing.T) {
	p := New(5)
	for i := uint64(0); i < 5; i++ {
		if err := p.Submit(context.Background(), PredictTransfer(transfer(i, 99, 0, 1))); err != nil {
			t.Fatal(err)
		}
	}
	pend, _ := p.view()
	p.remove(map[uint64]bool{pend[1].seq: true, pend[3].seq: true})
	kept, _ := p.view()
	if len(kept) != 3 {
		t.Fatalf("pending = %d, want 3", len(kept))
	}
	for i, want := range []types.Address{addr(0), addr(2), addr(4)} {
		if kept[i].Tx.From != want {
			t.Fatalf("arrival order not preserved: slot %d is %s", i, kept[i].Tx.From.Short())
		}
	}
	// Two slots were released: two more submissions must not block.
	for i := uint64(5); i < 7; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := p.Submit(ctx, PredictTransfer(transfer(i, 99, 0, 1)))
		cancel()
		if err != nil {
			t.Fatalf("slot %d not released: %v", i, err)
		}
	}
}

func TestLatencies(t *testing.T) {
	if s := Latencies(nil); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty sample stats = %+v", s)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Millisecond // reversed: must sort
	}
	s := Latencies(samples)
	if s.Count != 100 || s.P50 != 50*time.Millisecond || s.P99 != 99*time.Millisecond ||
		s.Max != 100*time.Millisecond {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if samples[0] != 100*time.Millisecond {
		t.Fatal("Latencies mutated its input")
	}
}

// TestPoolConcurrentSubmitRace is the -race workhorse: many submitters
// against a live builder, with the pool far smaller than the workload so
// every submitter exercises backpressure. Asserts conservation (every
// admitted transaction is emitted exactly once) and per-sender nonce order
// across the emitted blocks.
func TestPoolConcurrentSubmitRace(t *testing.T) {
	const (
		submitters = 8
		perSender  = 50
		sendersPer = 4 // senders per submitter goroutine
	)
	pre := account.NewStateDB()
	total := 0
	for g := 0; g < submitters; g++ {
		for s := 0; s < sendersPer; s++ {
			pre.AddBalance(addr(uint64(g*sendersPer+s)), 1<<40)
			total += perSender
		}
	}
	pool := New(64)
	builder := NewBuilder(pool, pre, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 48, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	out := make(chan BuiltBlock, 64)
	runDone := make(chan struct{})
	var leftovers []*Pending
	var runErr error
	go func() {
		defer close(runDone)
		leftovers, runErr = builder.Run(ctx, out)
	}()

	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Round-robin this goroutine's senders so their chains
			// interleave; per-sender nonce order is still preserved.
			for n := uint64(0); n < perSender; n++ {
				for s := 0; s < sendersPer; s++ {
					from := uint64(g*sendersPer + s)
					tx := transfer(from, uint64(1000+g), n, 1)
					if err := pool.Submit(ctx, PredictTransfer(tx)); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	go func() {
		wg.Wait()
		pool.Close()
	}()

	emitted := 0
	seen := make(map[types.Hash]bool)
	nextNonce := make(map[types.Address]uint64)
	for bb := range out {
		for _, tx := range bb.Block.Txs {
			emitted++
			h := tx.Hash()
			if seen[h] {
				t.Fatalf("transaction emitted twice: %s", h.Short())
			}
			seen[h] = true
			if tx.Nonce != nextNonce[tx.From] {
				t.Fatalf("sender %s reordered: nonce %d after %d committed",
					tx.From.Short(), tx.Nonce, nextNonce[tx.From])
			}
			nextNonce[tx.From] = tx.Nonce + 1
		}
	}
	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(leftovers) != 0 {
		t.Fatalf("%d transactions left unpackable", len(leftovers))
	}
	if emitted != total {
		t.Fatalf("emitted %d of %d admitted transactions", emitted, total)
	}
}
