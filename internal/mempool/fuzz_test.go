package mempool

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// FuzzMempoolPacker drives the whole service — concurrent submitters with
// backpressure, optional mid-stream context cancellation, both packers —
// from fuzzer-chosen parameters and asserts the invariants that must hold
// under any interleaving: no panic, no deadlock (a watchdog context), exact
// conservation (every admitted transaction emitted exactly once, no
// duplicates), and per-sender nonce order across the emitted blocks.
func FuzzMempoolPacker(f *testing.F) {
	f.Add(int64(1), byte(4), byte(40), byte(8), byte(12), byte(2), byte(0))
	f.Add(int64(-77), byte(11), byte(95), byte(1), byte(1), byte(1), byte(1))
	f.Add(int64(2020), byte(2), byte(60), byte(3), byte(30), byte(5), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, sendersRaw, txsRaw, capRaw, maxRaw, hotRaw, flags byte) {
		nSenders := int(sendersRaw%12) + 1
		nTxs := int(txsRaw%96) + 1
		poolCap := int(capRaw%48) + 1
		cfg := BuilderConfig{
			Pack:     PackConfig{MaxTxs: int(maxRaw%32) + 1, HotKeyCap: int(hotRaw%8) + 1},
			Coinbase: types.AddressFromUint64("miner", 1),
		}
		if flags&1 != 0 {
			cfg.Packer = FIFO{}
		}
		cancelOne := flags&2 != 0

		pre := account.NewStateDB()
		for s := 0; s < nSenders; s++ {
			pre.AddBalance(addr(uint64(s)), 1<<40)
		}
		// Per-sender nonce chains, dealt round-robin to three submitter
		// goroutines by sender so each sender's order is preserved.
		rng := rand.New(rand.NewSource(seed))
		chains := make([][]*Pending, nSenders)
		for i := 0; i < nTxs; i++ {
			s := rng.Intn(nSenders)
			tx := transfer(uint64(s), uint64(100+rng.Intn(5)), uint64(len(chains[s])), 1)
			p := PredictTransfer(tx)
			if rng.Intn(4) == 0 {
				p.Reads = append(p.Reads, "hot")
				p.Writes = append(p.Writes, "hot")
			}
			chains[s] = append(chains[s], p)
		}

		watchdog, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		pool := New(poolCap)
		builder := NewBuilder(pool, pre, cfg)
		out := make(chan BuiltBlock, 8)
		runDone := make(chan struct{})
		var leftovers []*Pending
		var runErr error
		go func() {
			defer close(runDone)
			leftovers, runErr = builder.Run(watchdog, out)
		}()

		var admitted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			subCtx := watchdog
			var subCancel context.CancelFunc
			if cancelOne && g == 1 {
				// One submitter's context dies mid-stream: its remaining
				// submissions fail, but every sender still keeps a clean
				// nonce prefix (each sender belongs to one goroutine).
				subCtx, subCancel = context.WithTimeout(watchdog, time.Millisecond)
				defer subCancel()
			}
			wg.Add(1)
			go func(g int, ctx context.Context) {
				defer wg.Done()
				for s := g; s < nSenders; s += 3 {
					for _, p := range chains[s] {
						if err := pool.Submit(ctx, p); err != nil {
							break // cancelled: drop this sender's suffix
						}
						admitted.Add(1)
					}
				}
			}(g, subCtx)
		}
		go func() {
			wg.Wait()
			pool.Close()
		}()

		emitted := 0
		seen := make(map[types.Hash]bool)
		nextNonce := make(map[types.Address]uint64)
		for bb := range out {
			for _, tx := range bb.Block.Txs {
				emitted++
				h := tx.Hash()
				if seen[h] {
					t.Fatalf("transaction emitted twice: %s", h.Short())
				}
				seen[h] = true
				if tx.Nonce != nextNonce[tx.From] {
					t.Fatalf("sender %s reordered: nonce %d after %d",
						tx.From.Short(), tx.Nonce, nextNonce[tx.From])
				}
				nextNonce[tx.From] = tx.Nonce + 1
			}
		}
		<-runDone
		if runErr != nil {
			t.Fatalf("builder stalled or failed: %v", runErr)
		}
		// Every sender keeps a contiguous nonce prefix, so nothing is ever
		// permanently unpackable: conservation is exact.
		if len(leftovers) != 0 {
			t.Fatalf("%d transactions left unpackable", len(leftovers))
		}
		if int64(emitted) != admitted.Load() {
			t.Fatalf("emitted %d of %d admitted transactions", emitted, admitted.Load())
		}
	})
}
