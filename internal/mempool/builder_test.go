package mempool

import (
	"context"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/exec"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/types"
)

// buildAll drains a fully-loaded, closed pool through the builder and
// returns the emitted blocks. Because every transaction is already pending
// when Run starts, the block boundaries are a pure function of the packer —
// fully deterministic.
func buildAll(t *testing.T, pre *account.StateDB, subs []*Pending, cfg BuilderConfig) []BuiltBlock {
	t.Helper()
	pool := New(len(subs) + 1)
	for _, s := range subs {
		if err := pool.Submit(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}
	pool.Close()
	builder := NewBuilder(pool, pre, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out := make(chan BuiltBlock)
	var blocks []BuiltBlock
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for bb := range out {
			blocks = append(blocks, bb)
		}
	}()
	leftovers, err := builder.Run(ctx, out)
	<-collected
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("%d transactions left unpackable", len(leftovers))
	}
	return blocks
}

// e2eWorkload builds the fixed-seed end-to-end workload: 40 funded users
// with multi-nonce transfer chains (a mix of hot and cold recipients), plus
// a dependency that forces deferral — a fresh account's spend submitted
// before the transfer that funds it.
func e2eWorkload() (*account.StateDB, []*Pending, types.Hash) {
	const users, rounds = 40, 6
	pre := account.NewStateDB()
	for u := uint64(0); u < users; u++ {
		pre.AddBalance(addr(u), 1<<40)
	}
	funder := types.AddressFromUint64("funder", 1)
	pre.AddBalance(funder, 1<<40)
	fresh := types.AddressFromUint64("fresh", 1)

	var subs []*Pending
	// The fresh account's spend arrives first: invalid (no funds) until the
	// funder's transfer — submitted two rounds later — commits.
	spend := &account.Transaction{From: fresh, To: addr(1), Value: 100,
		Nonce: 0, GasLimit: 21_000, GasPrice: 1}
	subs = append(subs, PredictTransfer(spend))
	for r := uint64(0); r < rounds; r++ {
		for u := uint64(0); u < users; u++ {
			to := addr((u + 7*r + 1) % users)
			if (u+r)%5 == 0 {
				to = types.AddressFromUint64("hotshop", 1)
			}
			subs = append(subs, PredictTransfer(transfer(u, 0, r, 3)))
			subs[len(subs)-1].Tx.To = to
			subs[len(subs)-1].Deltas = []string{"b:" + to.String()}
		}
		if r == 2 {
			fund := &account.Transaction{From: funder, To: fresh, Value: 1_000_000,
				Nonce: 0, GasLimit: 21_000, GasPrice: 1}
			subs = append(subs, PredictTransfer(fund))
		}
	}
	return pre, subs, spend.Hash()
}

// TestBuilderDeterministicEndToEnd is the e2e streaming test: fixed-seed
// load → builder (both packers) → ExecuteChainStream, asserting serial
// equivalence (root and receipts vs the sequential replay) and stream ≡
// batch for both conflict modes × shards {1, 4}, plus conservation and
// per-sender nonce order across the built blocks.
func TestBuilderDeterministicEndToEnd(t *testing.T) {
	pre, subs, spendHash := e2eWorkload()
	for _, packer := range packers() {
		t.Run(packer.Name(), func(t *testing.T) {
			built := buildAll(t, pre, subs, BuilderConfig{
				Packer:   packer,
				Pack:     PackConfig{MaxTxs: 25, HotKeyCap: 2},
				Coinbase: types.AddressFromUint64("miner", 1),
			})

			// Conservation + per-sender order + the deferral actually fired.
			emitted, deferred := 0, 0
			nextNonce := make(map[types.Address]uint64)
			blocks := make([]*account.Block, len(built))
			for i, bb := range built {
				blocks[i] = bb.Block
				deferred += bb.Deferred
				if len(bb.Submitted) != len(bb.Block.Txs) {
					t.Fatalf("block %d: %d submit stamps for %d txs", i, len(bb.Submitted), len(bb.Block.Txs))
				}
				for _, tx := range bb.Block.Txs {
					emitted++
					if tx.Nonce != nextNonce[tx.From] {
						t.Fatalf("sender %s reordered: nonce %d after %d", tx.From.Short(), tx.Nonce, nextNonce[tx.From])
					}
					nextNonce[tx.From] = tx.Nonce + 1
				}
			}
			if emitted != len(subs) {
				t.Fatalf("emitted %d of %d submissions", emitted, len(subs))
			}
			if deferred == 0 {
				t.Fatal("the fresh-account spend was never deferred")
			}
			for _, tx := range blocks[0].Txs {
				if tx.Hash() == spendHash {
					t.Fatal("unfunded spend packed into the first block")
				}
			}

			// Serial equivalence of the built chain, then stream ≡ batch
			// across conflict modes and shard counts.
			seq := testutil.ReplaySequential(t, pre, blocks)
			for _, shards := range []int{1, 4} {
				for _, op := range []bool{false, true} {
					e := exec.Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: 2}
					batch, _, err := e.ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("batch shards=%d op=%v: %v", shards, op, err)
					}
					ch := make(chan *account.Block)
					go func() {
						defer close(ch)
						for _, b := range blocks {
							ch <- b
						}
					}()
					stream, _, err := e.ExecuteChainStream(pre.Copy(), ch, nil)
					if err != nil {
						t.Fatalf("stream shards=%d op=%v: %v", shards, op, err)
					}
					seq.RequireChain(t, "stream", stream.Root, stream.Receipts)
					if stream.Root != batch.Root || stream.Root != seq.Root() {
						t.Fatalf("shards=%d op=%v: roots diverged (stream %s, batch %s, seq %s)",
							shards, op, stream.Root.Short(), batch.Root.Short(), seq.Root().Short())
					}
				}
			}
		})
	}
}

// TestBuilderFlushClosesPartialBlocks: with Flush set, an underfull open
// pool still produces a block after a lull instead of waiting forever.
func TestBuilderFlushClosesPartialBlocks(t *testing.T) {
	pre := account.NewStateDB()
	pre.AddBalance(addr(1), 1<<30)
	pool := New(64)
	if err := pool.Submit(context.Background(), PredictTransfer(transfer(1, 2, 0, 5))); err != nil {
		t.Fatal(err)
	}
	builder := NewBuilder(pool, pre, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 32, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
		Flush:    10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := make(chan BuiltBlock, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := builder.Run(ctx, out); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	select {
	case bb := <-out:
		if len(bb.Block.Txs) != 1 {
			t.Fatalf("flushed block has %d txs, want 1", len(bb.Block.Txs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush never fired")
	}
	pool.Close()
	<-done
}
