// Package mempool turns the repo's batch pipeline into a service: a
// bounded transaction pool with backpressure, fed by concurrent clients,
// and a block builder that packs blocks to keep the transaction dependency
// graph wide before handing them to the sharded chain executor.
//
// Each submission carries the client's *predicted* read/write/delta key
// sets (strings — the same key vocabulary as the txconcur-rwset traces).
// Predictions steer packing only: a wrong prediction can cost parallelism
// inside a block, never correctness, because the executor validates every
// speculative result against what transactions actually touched, and the
// builder itself replays each candidate block sequentially before emitting
// it. The pipeline is
//
//	clients ── Submit (bounded, blocking) ──▶ Pool ──▶ Builder/Packer ──▶ exec.Sharded.ExecuteChainStream
//
// with per-sender arrival order preserved end to end (a sender's nonces
// must be submitted in order, as on any real chain).
package mempool

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"txconcur/internal/account"
)

// ErrClosed reports a submission to a closed pool.
var ErrClosed = errors.New("mempool: closed")

// Pending is one transaction waiting in the pool, with the predicted key
// sets the packer plans around.
type Pending struct {
	// Tx is the transaction itself.
	Tx *account.Transaction
	// Reads, Writes and Deltas are the predicted key sets: keys the
	// transaction will read, write absolutely, or adjust commutatively
	// (blind credits). Delta–delta contact on a key commutes and is not a
	// conflict — the same refinement the op-level engines exploit.
	Reads, Writes, Deltas []string
	// Submitted is stamped by the pool at admission; end-to-end latency is
	// measured from here to the block's commit.
	Submitted time.Time
	// seq is the pool-wide arrival number (per-sender order ⊆ seq order).
	seq uint64
	// ack, set by SubmitDurable, receives the submission's outcome exactly
	// once: nil after the builder has packed the transaction and appended
	// its block to the WAL (persist-then-ack), or the shutdown error if
	// the service stops first. Buffered so resolution never blocks.
	ack chan error
}

// resolve delivers the submission's outcome to a durable submitter, at
// most once; later calls (and calls on non-durable submissions) are
// no-ops.
func (tx *Pending) resolve(err error) {
	if tx.ack == nil {
		return
	}
	select {
	case tx.ack <- err:
	default:
	}
}

// Pool is the bounded mempool. Submit blocks while the pool is at
// capacity — backpressure, not rejection — and respects context
// cancellation, so a cancelled client never deadlocks a full pool.
type Pool struct {
	mu      sync.Mutex
	pending []*Pending
	seq     uint64
	closed  bool

	slots    chan struct{} // capacity semaphore: one token per admitted tx
	arrival  chan struct{} // level-triggered "pending changed" signal
	closedCh chan struct{} // closed by Close
	now      func() time.Time
}

// New builds a pool admitting at most capacity transactions at a time
// (minimum 1).
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		slots:    make(chan struct{}, capacity),
		arrival:  make(chan struct{}, 1),
		closedCh: make(chan struct{}),
		//txlint:clock sanctioned clock injection point; tests swap in a fake clock here
		now: time.Now,
	}
}

// Submit admits tx, blocking while the pool is full. It returns ctx's
// error if the context ends first and ErrClosed once the pool is closed.
// The Pending is copied; the caller may reuse it.
func (p *Pool) Submit(ctx context.Context, tx *Pending) error {
	_, err := p.submit(ctx, tx, false)
	return err
}

// SubmitDurable is Submit with durable semantics: on admission it
// additionally returns a one-shot channel that reports the submission's
// fate — nil once the builder has packed the transaction and appended its
// block to the write-ahead log (the tx then survives any crash), or an
// error if the service shuts down before that. Admission alone promises
// nothing; callers wanting durability must wait on the channel.
func (p *Pool) SubmitDurable(ctx context.Context, tx *Pending) (<-chan error, error) {
	return p.submit(ctx, tx, true)
}

func (p *Pool) submit(ctx context.Context, tx *Pending, durable bool) (<-chan error, error) {
	if tx == nil || tx.Tx == nil {
		return nil, errors.New("mempool: nil transaction")
	}
	//txlint:clock admission backpressure; commit order is assigned by seq under the lock, not select arbitration
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closedCh:
		return nil, ErrClosed
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.slots
		return nil, ErrClosed
	}
	cp := *tx
	cp.Submitted = p.now()
	cp.seq = p.seq
	cp.ack = nil
	var ack chan error
	if durable {
		ack = make(chan error, 1)
		cp.ack = ack
	}
	p.seq++
	p.pending = append(p.pending, &cp)
	p.mu.Unlock()
	p.notify()
	return ack, nil
}

// Close stops admissions and wakes every waiter (submitters get ErrClosed,
// the builder drains what is left). Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.closedCh)
	}
	p.mu.Unlock()
	p.notify()
}

// Cap returns the pool's admission capacity.
func (p *Pool) Cap() int { return cap(p.slots) }

// Len returns the number of pending transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// notify pulses the arrival signal (level-triggered: one buffered token).
func (p *Pool) notify() {
	select {
	case p.arrival <- struct{}{}:
	default:
	}
}

// view snapshots the pending transactions in arrival order plus the closed
// flag. The returned slice is a copy; the Pendings are shared (read-only
// by convention once admitted).
func (p *Pool) view() ([]*Pending, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Pending, len(p.pending))
	copy(out, p.pending)
	return out, p.closed
}

// remove deletes the transactions with the given arrival numbers from the
// pool, releasing their capacity slots (arrival order of the remainder is
// preserved).
func (p *Pool) remove(seqs map[uint64]bool) {
	if len(seqs) == 0 {
		return
	}
	p.mu.Lock()
	kept := p.pending[:0]
	removed := 0
	for _, tx := range p.pending {
		if seqs[tx.seq] {
			removed++
			continue
		}
		kept = append(kept, tx)
	}
	for i := len(kept); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = kept
	p.mu.Unlock()
	for i := 0; i < removed; i++ {
		<-p.slots
	}
	p.notify()
}

// failPending resolves every still-pending durable submission with err —
// the shutdown path: an acked submission is durable, so anything still in
// the pool when the builder stops must be failed, never silently dropped.
func (p *Pool) failPending(err error) {
	p.mu.Lock()
	left := make([]*Pending, len(p.pending))
	copy(left, p.pending)
	p.mu.Unlock()
	for _, tx := range left {
		tx.resolve(err)
	}
}

// LatencyStats summarises a set of submit → committed latencies.
type LatencyStats struct {
	Count    int
	P50, P99 time.Duration
	Max      time.Duration
	Mean     time.Duration
}

// Latencies computes order statistics over samples (the input is not
// mutated). The quantile convention is the nearest-rank method.
func Latencies(samples []time.Duration) LatencyStats {
	var s LatencyStats
	s.Count = len(samples)
	if s.Count == 0 {
		return s
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	s.P50 = rank(0.50)
	s.P99 = rank(0.99)
	s.Max = sorted[len(sorted)-1]
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	s.Mean = sum / time.Duration(len(sorted))
	return s
}
