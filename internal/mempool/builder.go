package mempool

import (
	"context"
	"fmt"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// BuilderConfig parameterises the block builder.
type BuilderConfig struct {
	// Packer selects each block's transactions (default ConflictAware).
	Packer Packer
	// Pack bounds each block (MaxTxs, HotKeyCap).
	Pack PackConfig
	// Coinbase is credited each block's fees and reward.
	Coinbase types.Address
	// BaseHeight numbers the first built block (heights then increment by
	// one) and BaseTime stamps it; each block advances BlockInterval
	// seconds (default 1).
	BaseHeight    uint64
	BaseTime      int64
	BlockInterval int64
	// Flush bounds how long an underfull block waits for more arrivals
	// while the pool is open: once at least one transaction is pending and
	// nothing new arrives for Flush, the partial block closes. Zero means
	// wait for a full block or pool close — the deterministic setting the
	// tests use.
	Flush time.Duration
	// Log, if non-nil, is the write-ahead block log: every built block is
	// appended (and made durable per the log's sync policy) before it is
	// sent downstream or any durable submission in it is acked. On return
	// Run syncs the log and fails the acks of whatever never made it into
	// a durable block. With a Log set, configure Flush > 0 or a MaxTxs the
	// workload is guaranteed to reach — durable submitters block on their
	// ack, so a partial block that never closes would strand them.
	Log BlockLog
}

// BlockLog is the durability seam the builder persists blocks through
// before acking (persist-then-ack); *wal.Log satisfies it. Append makes
// the block durable per the log's sync policy and returns its log index;
// Sync flushes any unsynced suffix at shutdown.
type BlockLog interface {
	Append(blk *account.Block) (uint64, error)
	Sync() error
}

// BuiltBlock is one closed block plus the bookkeeping the latency metrics
// need: the pool-admission time of each packed transaction, index-aligned
// with Block.Txs.
type BuiltBlock struct {
	Block     *account.Block
	Submitted []time.Time
	// Deferred counts packed candidates this round that failed sequential
	// validation (bad nonce or insufficient funds under the repacked
	// order) and were returned to the pool for a later block.
	Deferred int
}

// Builder drains a Pool into sequentially-validated blocks.
//
// Packing can reorder transactions across senders, and a reordering can
// invalidate an envelope that was valid in arrival order (a payment
// overtaken by the spend it funds). Every engine treats an envelope
// failure as a whole-block failure, so the builder replays each candidate
// block on its own sequential replica before emitting it: transactions
// that fail validation are deferred back to the pool — preserving arrival
// order, and dragging their sender's later nonces with them via the same
// nonce check — and retried in a later block once their funding lands.
// The replica applies exactly the engines' sequential semantics (deferred
// fees, then the block reward), so a block the builder emits is a block
// every engine will accept.
type Builder struct {
	pool    *Pool
	cfg     BuilderConfig
	replica *account.StateDB
	proc    account.Processor
	height  uint64
}

// NewBuilder builds a Builder over the pool; pre is the state before the
// first block (copied — the caller's StateDB is never touched).
func NewBuilder(pool *Pool, pre *account.StateDB, cfg BuilderConfig) *Builder {
	if cfg.Packer == nil {
		cfg.Packer = ConflictAware{}
	}
	cfg.Pack = cfg.Pack.normalized()
	if cfg.BlockInterval < 1 {
		cfg.BlockInterval = 1
	}
	return &Builder{
		pool:    pool,
		cfg:     cfg,
		replica: pre.Copy(),
		proc:    account.Processor{DeferCoinbase: true},
		height:  cfg.BaseHeight,
	}
}

// Run drains the pool into blocks until the pool is closed and empty (or
// ctx ends), sending each validated block on out. out is closed on return.
// Returns the transactions that remained unpackable after the pool closed
// — permanently invalid envelopes (nil for a well-formed workload) — so
// callers can assert nothing was silently dropped.
//
// With a WAL configured (BuilderConfig.Log), each block is appended and
// synced before it is emitted or acked, and shutdown is ordered: the log
// is flushed and every unresolved durable ack failed before out closes,
// so by the time a downstream consumer sees the closed channel no
// submitter is still waiting on a promise the service cannot keep.
func (b *Builder) Run(ctx context.Context, out chan<- BuiltBlock) (left []*Pending, err error) {
	defer close(out)
	// Registered after close(out)'s defer, so it runs first: flush the
	// log, then fail whatever never reached a durable block.
	defer func() {
		if b.cfg.Log != nil {
			if serr := b.cfg.Log.Sync(); serr != nil && err == nil {
				err = serr
			}
		}
		ferr := err
		if ferr == nil {
			ferr = ErrClosed
		}
		// Transactions the builder returns as permanently invalid are
		// still in the pool, so failPending covers them too.
		b.pool.failPending(ferr)
	}()
	for {
		pending, closed := b.pool.view()
		if len(pending) == 0 {
			if closed {
				return nil, nil
			}
			if err := b.wait(ctx); err != nil {
				return nil, err
			}
			continue
		}
		if len(pending) < b.cfg.Pack.MaxTxs && len(pending) < b.pool.Cap() && !closed {
			// Underfull: wait for more arrivals, the pool closing, or —
			// with Flush set — a lull long enough to close a partial
			// block. A pool at capacity is packed immediately even if
			// underfull — waiting would deadlock against submitters
			// blocked on slots.
			flushed, err := b.waitOrFlush(ctx)
			if err != nil {
				return nil, err
			}
			if !flushed {
				continue
			}
			// Flush lull: fall through and pack what is pending.
		}

		bb, removed, packed := b.packOne(pending)
		if len(removed) == 0 {
			// Everything packable failed validation. If the pool is
			// closed no new funds can arrive: what is left is permanently
			// invalid. Otherwise wait for arrivals before retrying.
			if closed {
				return pending, nil
			}
			if err := b.wait(ctx); err != nil {
				return nil, err
			}
			continue
		}
		// Persist, then ack, then release pool capacity: a durable
		// submitter that sees nil is guaranteed its block survives any
		// crash from here on.
		if b.cfg.Log != nil {
			if _, lerr := b.cfg.Log.Append(bb.Block); lerr != nil {
				return nil, fmt.Errorf("mempool: wal append for block %d: %w", bb.Block.Height, lerr)
			}
		}
		for _, tx := range packed {
			tx.resolve(nil)
		}
		b.pool.remove(removed)
		//txlint:clock send-vs-cancel backpressure; the block was already packed deterministically from the pool snapshot
		select {
		case out <- bb:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// wait blocks until the pool signals an arrival or closes, or ctx ends.
func (b *Builder) wait(ctx context.Context) error {
	//txlint:clock wakeup arbitration only; packing re-reads the pool under its lock
	select {
	case <-b.pool.arrival:
		return nil
	case <-b.pool.closedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// waitOrFlush waits like wait but additionally arms the Flush timer (when
// configured), reporting whether the lull — not an arrival — ended the
// wait.
func (b *Builder) waitOrFlush(ctx context.Context) (bool, error) {
	var timer <-chan time.Time
	if b.cfg.Flush > 0 {
		t := time.NewTimer(b.cfg.Flush)
		defer t.Stop()
		timer = t.C
	}
	//txlint:clock flush lulls are inherently wall-clock; block contents still come deterministically from the snapshot
	select {
	case <-b.pool.arrival:
		return false, nil
	case <-b.pool.closedCh:
		return false, nil
	case <-timer:
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// packOne packs and validates one block from the pending snapshot,
// advancing the replica. It returns the built block, the arrival numbers
// to remove from the pool, and the packed Pendings themselves (for
// durable acks); an empty removal set means every candidate failed
// validation (the block was not built).
func (b *Builder) packOne(pending []*Pending) (BuiltBlock, map[uint64]bool, []*Pending) {
	idx := b.cfg.Packer.Pack(pending, b.cfg.Pack)
	blk := &account.Block{
		Height:   b.height,
		Time:     b.cfg.BaseTime + int64(b.height-b.cfg.BaseHeight)*b.cfg.BlockInterval,
		Coinbase: b.cfg.Coinbase,
		// GasLimit 0 = unlimited: admission control is the pool's job; a
		// gas-full block under repacking would only re-defer valid txs.
	}
	removed := make(map[uint64]bool, len(idx))
	var receipts []*account.Receipt
	var times []time.Time
	var packed []*Pending
	deferred := 0
	for _, i := range idx {
		cand := pending[i]
		// ApplyTransaction leaves the replica untouched on failure, so a
		// deferred candidate costs nothing; blk's header fields are final
		// and Txs is not read by the VM, so filling Txs afterwards is
		// sound.
		rcpt, err := b.proc.ApplyTransaction(b.replica, blk, cand.Tx)
		if err != nil {
			deferred++
			continue
		}
		blk.Txs = append(blk.Txs, cand.Tx)
		receipts = append(receipts, rcpt)
		times = append(times, cand.Submitted)
		removed[cand.seq] = true
		packed = append(packed, cand)
	}
	if len(blk.Txs) == 0 {
		return BuiltBlock{}, nil, nil
	}
	b.replica.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
	b.replica.AddBalance(blk.Coinbase, account.BlockReward)
	b.replica.DiscardJournal()
	b.height++
	return BuiltBlock{Block: blk, Submitted: times, Deferred: deferred}, removed, packed
}
