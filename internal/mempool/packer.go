package mempool

import (
	"txconcur/internal/account"
	"txconcur/internal/types"
)

// PackConfig bounds one packed block.
type PackConfig struct {
	// MaxTxs caps the block size (minimum 1).
	MaxTxs int
	// HotKeyCap caps, per block, the number of non-commutative touches
	// (predicted reads or absolute writes) of any single key — the dial
	// that keeps one hot account from serialising a whole block. Pure
	// delta touches commute and are exempt. Minimum 1; only the
	// conflict-aware packer consults it.
	HotKeyCap int
}

func (c PackConfig) normalized() PackConfig {
	if c.MaxTxs < 1 {
		c.MaxTxs = 1
	}
	if c.HotKeyCap < 1 {
		c.HotKeyCap = 1
	}
	return c
}

// A Packer selects the next block from the pending transactions (given in
// arrival order) and returns the chosen indices, strictly increasing. The
// contract every packer must honour, property-tested and fuzzed:
//
//   - never reorder a sender: if pending[i] is picked, every earlier
//     pending[j] (j < i) with the same sender is picked too (nonces must
//     commit in submission order);
//   - never pick an index twice, never exceed cfg.MaxTxs;
//   - always make progress: with MaxTxs ≥ 1 and pending non-empty, at
//     least pending[0] is picked.
type Packer interface {
	Name() string
	Pack(pending []*Pending, cfg PackConfig) []int
}

// FIFO packs blocks in pure arrival order — the baseline every chain
// implements, and E13's control.
type FIFO struct{}

// Name implements Packer.
func (FIFO) Name() string { return "fifo" }

// Pack implements Packer: the first MaxTxs pending transactions.
func (FIFO) Pack(pending []*Pending, cfg PackConfig) []int {
	cfg = cfg.normalized()
	n := cfg.MaxTxs
	if n > len(pending) {
		n = len(pending)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// ConflictAware packs blocks to maximise TDG width: a single greedy scan
// in arrival order that skips any transaction whose predicted
// non-commutative touches would push a key past HotKeyCap. Skipping a
// transaction blocks its sender for the rest of the block (a later nonce
// must not overtake an earlier one), so hot-key traffic spreads across
// consecutive blocks while disjoint traffic fills each block to MaxTxs.
// With HotKeyCap = 1 every packed block is key-disjoint up to commuting
// deltas — the widest TDG the predictions allow.
//
// By construction every packed block's per-key conflict density is ≤
// HotKeyCap, so the density ceiling is monotone in the cap (the property
// tests pin this, and the exact density on a pure hot-key workload).
type ConflictAware struct{}

// Name implements Packer.
func (ConflictAware) Name() string { return "conflict-aware" }

// Pack implements Packer.
func (ConflictAware) Pack(pending []*Pending, cfg PackConfig) []int {
	cfg = cfg.normalized()
	blocked := make(map[types.Address]bool)
	density := make(map[string]int)
	picked := make([]int, 0, cfg.MaxTxs)
	for i, tx := range pending {
		if len(picked) == cfg.MaxTxs {
			break
		}
		if blocked[tx.Tx.From] {
			continue
		}
		if overCap(tx, density, cfg.HotKeyCap) {
			blocked[tx.Tx.From] = true
			continue
		}
		picked = append(picked, i)
		for _, k := range nonCommuting(tx) {
			density[k]++
		}
	}
	return picked
}

// nonCommuting returns the transaction's predicted non-commutative key
// touches — reads and absolute writes, deduplicated — the touches that
// count against HotKeyCap. Deltas commute among themselves (the dominant
// hot-key pattern: fee credits, airdrops) and are exempt.
func nonCommuting(tx *Pending) []string {
	out := make([]string, 0, len(tx.Reads)+len(tx.Writes))
	seen := make(map[string]bool, len(tx.Reads)+len(tx.Writes))
	for _, ks := range [][]string{tx.Reads, tx.Writes} {
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// overCap reports whether adding tx would push any of its non-commutative
// keys past the per-block cap.
func overCap(tx *Pending, density map[string]int, hotCap int) bool {
	for _, k := range nonCommuting(tx) {
		if density[k]+1 > hotCap {
			return true
		}
	}
	return false
}

// Conflicts reports whether two predicted rwsets conflict: some key is
// touched by both, and the contact does not commute. Write–anything and
// delta–read contacts conflict; read–read and delta–delta do not — the
// op-level conflict rule of the executors, applied to predictions.
func Conflicts(a, b *Pending) bool {
	const (
		r = 1 << iota
		w
		d
	)
	mask := make(map[string]int)
	add := func(keys []string, bit int) {
		for _, k := range keys {
			mask[k] |= bit
		}
	}
	add(a.Reads, r)
	add(a.Writes, w)
	add(a.Deltas, d)
	for _, pair := range []struct {
		keys []string
		bit  int
	}{{b.Reads, r}, {b.Writes, w}, {b.Deltas, d}} {
		for _, k := range pair.keys {
			am, ok := mask[k]
			if !ok {
				continue
			}
			bm := pair.bit
			if am&w != 0 || bm&w != 0 {
				return true
			}
			if (am&d != 0 && bm&r != 0) || (am&r != 0 && bm&d != 0) {
				return true
			}
		}
	}
	return false
}

// PredictTransfer fills a Pending's key sets for a plain value transfer —
// the prediction simulated clients use for non-contract traffic. The
// sender's balance and nonce are read and written absolutely; the
// recipient's balance is a pure commutative credit.
func PredictTransfer(tx *account.Transaction) *Pending {
	from := "b:" + tx.From.String()
	fromN := "n:" + tx.From.String()
	return &Pending{
		Tx:     tx,
		Reads:  []string{from, fromN},
		Writes: []string{from, fromN},
		Deltas: []string{"b:" + tx.To.String()},
	}
}
