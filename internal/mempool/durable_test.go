package mempool

import (
	"context"
	"errors"
	"testing"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// captureLog is a BlockLog double recording appends; failAt (when ≥ 0)
// fails the append with that index.
type captureLog struct {
	blocks []*account.Block
	synced int
	failAt int
	err    error
}

func newCaptureLog() *captureLog { return &captureLog{failAt: -1} }

func (l *captureLog) Append(blk *account.Block) (uint64, error) {
	if l.failAt >= 0 && len(l.blocks) == l.failAt {
		return 0, l.err
	}
	l.blocks = append(l.blocks, blk)
	return uint64(len(l.blocks) - 1), nil
}

func (l *captureLog) Sync() error {
	l.synced++
	return nil
}

// runDurable drives a builder over an already-loaded pool, returning the
// built blocks and the run error.
func runDurable(t *testing.T, pre *account.StateDB, pool *Pool, cfg BuilderConfig) ([]BuiltBlock, []*Pending, error) {
	t.Helper()
	builder := NewBuilder(pool, pre, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out := make(chan BuiltBlock)
	var blocks []BuiltBlock
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for bb := range out {
			blocks = append(blocks, bb)
		}
	}()
	left, err := builder.Run(ctx, out)
	<-collected
	return blocks, left, err
}

// TestDurableAcksResolveAfterAppend: every durable submission's ack
// delivers nil, and only after its block reached the log (persist-then-ack
// — the log holds the block by the time the ack fires).
func TestDurableAcksResolveAfterAppend(t *testing.T) {
	pre := account.NewStateDB()
	pre.AddBalance(addr(1), 1<<30)
	pool := New(8)
	log := newCaptureLog()
	var acks []<-chan error
	var hashes []types.Hash
	for n := uint64(0); n < 4; n++ {
		tx := transfer(1, 2, n, 5)
		ack, err := pool.SubmitDurable(context.Background(), PredictTransfer(tx))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
		hashes = append(hashes, tx.Hash())
	}
	pool.Close()
	blocks, left, err := runDurable(t, pre, pool, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 2, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
		Log:      log,
	})
	if err != nil || len(left) != 0 {
		t.Fatalf("run: err=%v left=%d", err, len(left))
	}
	for i, ack := range acks {
		select {
		case aerr := <-ack:
			if aerr != nil {
				t.Fatalf("ack %d: %v", i, aerr)
			}
		default:
			t.Fatalf("ack %d never resolved", i)
		}
	}
	// Persist-then-ack: the acked txs are all in the log.
	logged := make(map[types.Hash]bool)
	for _, blk := range log.blocks {
		for _, tx := range blk.Txs {
			logged[tx.Hash()] = true
		}
	}
	for i, h := range hashes {
		if !logged[h] {
			t.Fatalf("acked tx %d not in the log", i)
		}
	}
	if len(log.blocks) != len(blocks) {
		t.Fatalf("%d blocks logged, %d emitted", len(log.blocks), len(blocks))
	}
	if log.synced == 0 {
		t.Fatal("log never synced at shutdown")
	}
}

// TestDurableAcksFailOnAppendError: a WAL append failure stops the run
// with the error and fails the outstanding acks with it — never a silent
// drop, never a nil ack for an unpersisted tx.
func TestDurableAcksFailOnAppendError(t *testing.T) {
	pre := account.NewStateDB()
	pre.AddBalance(addr(1), 1<<30)
	pool := New(8)
	boom := errors.New("disk on fire")
	log := newCaptureLog()
	log.failAt, log.err = 1, boom // first block lands, second append fails
	var acks []<-chan error
	for n := uint64(0); n < 4; n++ {
		ack, err := pool.SubmitDurable(context.Background(), PredictTransfer(transfer(1, 2, n, 5)))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}
	pool.Close()
	_, _, err := runDurable(t, pre, pool, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 2, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
		Log:      log,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("run error %v, want the append failure", err)
	}
	okCount, failCount := 0, 0
	for i, ack := range acks {
		select {
		case aerr := <-ack:
			if aerr == nil {
				okCount++
			} else if errors.Is(aerr, boom) {
				failCount++
			} else {
				t.Fatalf("ack %d: unexpected %v", i, aerr)
			}
		default:
			t.Fatalf("ack %d unresolved after shutdown", i)
		}
	}
	if okCount != 2 || failCount != 2 {
		t.Fatalf("%d acked / %d failed, want 2/2 (first block persisted, second did not)", okCount, failCount)
	}
}

// TestDurableAcksFailOnClose: a durable submission that can never be
// packed (permanently invalid envelope) is failed with ErrClosed when the
// drained pool shuts down — the promise is resolved, not leaked.
func TestDurableAcksFailOnClose(t *testing.T) {
	pre := account.NewStateDB() // sender unfunded: the tx can never validate
	pool := New(4)
	ack, err := pool.SubmitDurable(context.Background(), PredictTransfer(transfer(1, 2, 0, 5)))
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	_, left, rerr := runDurable(t, pre, pool, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 2, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
		Log:      newCaptureLog(),
	})
	if rerr != nil {
		t.Fatalf("run: %v", rerr)
	}
	if len(left) != 1 {
		t.Fatalf("%d leftovers, want the invalid tx", len(left))
	}
	select {
	case aerr := <-ack:
		if !errors.Is(aerr, ErrClosed) {
			t.Fatalf("ack resolved %v, want ErrClosed", aerr)
		}
	default:
		t.Fatal("unpackable durable submission left unresolved")
	}
}

// TestDurableAckWithoutLog: durable submissions still resolve when no WAL
// is configured — the ack then means "packed into a validated block".
func TestDurableAckWithoutLog(t *testing.T) {
	pre := account.NewStateDB()
	pre.AddBalance(addr(1), 1<<30)
	pool := New(4)
	ack, err := pool.SubmitDurable(context.Background(), PredictTransfer(transfer(1, 2, 0, 5)))
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if _, _, err := runDurable(t, pre, pool, BuilderConfig{
		Pack:     PackConfig{MaxTxs: 1, HotKeyCap: 2},
		Coinbase: types.AddressFromUint64("miner", 1),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case aerr := <-ack:
		if aerr != nil {
			t.Fatalf("ack: %v", aerr)
		}
	default:
		t.Fatal("ack unresolved")
	}
}
