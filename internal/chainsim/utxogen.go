package chainsim

import (
	"fmt"

	"txconcur/internal/utxo"
)

// UTXO generator notes.
//
// In the UTXO data model the TDG has an edge only when a TXO is created and
// spent within the same block (§III-A1); sender/receiver reuse across
// transactions creates no edges. The conflict structure of a generated block
// is therefore controlled entirely by the intra-block spend chains the
// generator plants (ChainStartProb and friends), and the user-population
// size has no effect on the metrics. The generator exploits this: it keeps a
// wallet pool bounded by the per-block transaction count rather than the
// nominal era population, which keeps memory flat without changing any
// measured quantity.

// premine is the treasury endowment minted in the genesis coinbase.
const premine utxo.Amount = 1 << 50

// genSubsidy is the per-block coinbase subsidy used by generated chains.
const genSubsidy utxo.Amount = 50_0000_0000

// uwallet is one simulated key holder and its spendable outputs.
type uwallet struct {
	key  utxo.PrivateKey
	lock utxo.Script
	outs []spendable
}

type spendable struct {
	op  utxo.Outpoint
	val utxo.Amount
}

// UTXOGen generates a validated history for a UTXO-model profile.
type UTXOGen struct {
	profile Profile
	smp     *sampler
	chain   *utxo.Chain

	wallets  []*uwallet
	treasury *uwallet

	// pending holds outputs created by the current block, distributed to
	// wallets only after the block is committed so that independent
	// transactions never accidentally spend in-block outputs.
	pending []pendingOut

	schedule []int // blocks per era
	eraIdx   int
	eraPos   int
	time     int64
}

type pendingOut struct {
	wallet int // -1 for treasury
	out    spendable
}

// NewUTXOGen prepares a generator for the given UTXO profile. numBlocks is
// the total number of history blocks to generate (distributed across eras
// by weight). The genesis funding block is created immediately and does not
// count toward numBlocks. Script verification is disabled for speed; use
// NewUTXOGenVerified in tests that prove full validity.
func NewUTXOGen(p Profile, numBlocks int, seed int64) (*UTXOGen, error) {
	return newUTXOGen(p, numBlocks, seed, false)
}

// NewUTXOGenVerified is NewUTXOGen with full script verification of every
// generated input.
func NewUTXOGenVerified(p Profile, numBlocks int, seed int64) (*UTXOGen, error) {
	return newUTXOGen(p, numBlocks, seed, true)
}

func newUTXOGen(p Profile, numBlocks int, seed int64, verify bool) (*UTXOGen, error) {
	if p.Model != UTXO {
		return nil, fmt.Errorf("chainsim: profile %q is not UTXO-model", p.Name)
	}
	if len(p.Eras) == 0 {
		return nil, fmt.Errorf("chainsim: profile %q has no eras", p.Name)
	}
	g := &UTXOGen{
		profile:  p,
		smp:      newSampler(seed),
		chain:    utxo.NewChain(utxo.BlockOptions{Subsidy: premine, VerifyScripts: verify}),
		schedule: eraSchedule(p, numBlocks),
		time:     p.Eras[0].StartTime,
	}
	g.treasury = g.newWallet(1_000_000)

	// Size the wallet pool by the largest per-block transaction demand.
	maxTx := 0.0
	for _, e := range p.Eras {
		if e.TxPerBlock > maxTx {
			maxTx = e.TxPerBlock
		}
	}
	poolSize := int(4*maxTx) + 64
	g.wallets = make([]*uwallet, poolSize)
	for i := range g.wallets {
		g.wallets[i] = g.newWallet(uint64(i))
	}

	if err := g.genesis(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *UTXOGen) newWallet(idx uint64) *uwallet {
	key := utxo.NewKey(g.profile.Name, idx)
	return &uwallet{key: key, lock: utxo.P2PKH(key.PubKeyHash())}
}

// genesis mints the premine: one coinbase output per wallet plus the
// treasury reserve.
func (g *UTXOGen) genesis() error {
	outs := make([]utxo.TxOut, 0, len(g.wallets)+1)
	outs = append(outs, utxo.TxOut{Value: premine / 2, Script: g.treasury.lock})
	per := premine / 2 / utxo.Amount(len(g.wallets))
	for range g.wallets {
		outs = append(outs, utxo.TxOut{Value: per, Script: g.wallets[0].lock})
	}
	// Each wallet gets its own output (fix the script per wallet).
	for i := range g.wallets {
		outs[i+1].Script = g.wallets[i].lock
	}
	cb := utxo.NewTransaction(nil, outs)
	blk := &utxo.Block{Height: 0, Time: g.time - 86400, Txs: []*utxo.Transaction{cb}}
	if err := g.chain.Append(blk); err != nil {
		return fmt.Errorf("chainsim: genesis: %w", err)
	}
	g.treasury.outs = append(g.treasury.outs, spendable{op: cb.Outpoint(0), val: premine / 2})
	for i := range g.wallets {
		g.wallets[i].outs = append(g.wallets[i].outs, spendable{op: cb.Outpoint(i + 1), val: per})
	}
	return nil
}

// Remaining reports how many history blocks are left to generate.
func (g *UTXOGen) Remaining() int {
	n := 0
	for i, c := range g.schedule {
		if i > g.eraIdx {
			n += c
		} else if i == g.eraIdx {
			n += c - g.eraPos
		}
	}
	return n
}

// Chain exposes the validated chain built so far.
func (g *UTXOGen) Chain() *utxo.Chain { return g.chain }

// era returns the interpolated parameters for the current position.
func (g *UTXOGen) era() Era {
	cur := &g.profile.Eras[g.eraIdx]
	var next *Era
	if g.eraIdx+1 < len(g.profile.Eras) {
		next = &g.profile.Eras[g.eraIdx+1]
	}
	frac := 0.0
	if c := g.schedule[g.eraIdx]; c > 1 {
		frac = float64(g.eraPos) / float64(c-1)
	}
	return interpolate(cur, next, frac)
}

// Next generates, validates and appends the next history block. The second
// return value is false when the schedule is exhausted.
func (g *UTXOGen) Next() (*utxo.Block, bool, error) {
	for g.eraIdx < len(g.schedule) && g.eraPos >= g.schedule[g.eraIdx] {
		g.eraIdx++
		g.eraPos = 0
		if g.eraIdx < len(g.profile.Eras) {
			if t := g.profile.Eras[g.eraIdx].StartTime; t > g.time {
				g.time = t
			}
		}
	}
	if g.eraIdx >= len(g.schedule) {
		return nil, false, nil
	}
	era := g.era()
	g.eraPos++
	g.time += era.BlockInterval

	blk, err := g.buildBlock(&era)
	if err != nil {
		return nil, false, err
	}
	if err := g.chain.Append(blk); err != nil {
		return nil, false, fmt.Errorf("chainsim: generated invalid block %d: %w", blk.Height, err)
	}
	g.distributePending()
	return blk, true, nil
}

// buildBlock assembles one block according to the era parameters.
func (g *UTXOGen) buildBlock(era *Era) (*utxo.Block, error) {
	target := g.smp.txCount(era.TxPerBlock, era.TxPerBlockJitter)
	txs := make([]*utxo.Transaction, 0, target+1)
	var fees utxo.Amount

	// Coinbase placeholder; finalised once fees are known.
	g.pending = g.pending[:0]

	senderZipf := g.smp.newZipf(1.1, len(g.wallets))
	recvZipf := g.smp.newZipf(1.1, len(g.wallets))

	made := 0
	for made < target {
		if g.smp.rng.Float64() < era.ChainStartProb && target-made >= 2 {
			n, fee, err := g.buildChain(era, target-made, &txs)
			if err != nil {
				return nil, err
			}
			fees += fee
			made += n
			continue
		}
		tx, fee, err := g.buildIndependentTx(era, senderZipf, recvZipf)
		if err != nil {
			return nil, err
		}
		if tx == nil {
			// No spendable funds anywhere; stop early.
			break
		}
		txs = append(txs, tx)
		fees += fee
		made++
	}

	// Coinbase pays a mining-pool wallet (wallet 0..3). A BIP34-style
	// height marker (an unspendable zero-value data output) keeps every
	// coinbase transaction unique — without it, two empty blocks mined by
	// the same pool would recreate the same outpoint, which validation
	// rejects (utxo.ErrDuplicateCreate).
	poolIdx := g.smp.rng.Intn(4)
	height := uint64(g.chain.Height())
	marker := utxo.DataCarrier([]byte{
		byte(height >> 24), byte(height >> 16), byte(height >> 8), byte(height),
	})
	cb := utxo.NewTransaction(nil, []utxo.TxOut{
		{Value: genSubsidy + fees, Script: g.wallets[poolIdx].lock},
		{Value: 0, Script: marker},
	})
	g.pending = append(g.pending, pendingOut{wallet: poolIdx, out: spendable{op: cb.Outpoint(0), val: genSubsidy + fees}})

	all := make([]*utxo.Transaction, 0, len(txs)+1)
	all = append(all, cb)
	all = append(all, txs...)
	return &utxo.Block{
		Height:   uint64(g.chain.Height()),
		PrevHash: g.chain.TipHash(),
		Time:     g.time,
		Txs:      all,
	}, nil
}

// takeOutput removes and returns a pre-block spendable output from the
// wallet at index idx, probing forward (and finally the treasury) if the
// wallet is dry.
func (g *UTXOGen) takeOutput(idx int) (spendable, *uwallet, int) {
	n := len(g.wallets)
	for probe := 0; probe < n; probe++ {
		w := g.wallets[(idx+probe)%n]
		if len(w.outs) > 0 {
			out := w.outs[len(w.outs)-1]
			w.outs = w.outs[:len(w.outs)-1]
			return out, w, (idx + probe) % n
		}
	}
	if len(g.treasury.outs) > 0 {
		out := g.treasury.outs[len(g.treasury.outs)-1]
		g.treasury.outs = g.treasury.outs[:len(g.treasury.outs)-1]
		return out, g.treasury, -1
	}
	return spendable{}, nil, 0
}

// signInputs produces the unlock scripts once the transaction shape (and
// therefore its ID) is fixed.
func signInputs(tx *utxo.Transaction, key utxo.PrivateKey) {
	id := tx.ID()
	for i := range tx.Inputs {
		tx.Inputs[i].Unlock = utxo.Unlock(key, id)
	}
}

// buildIndependentTx creates a transaction spending only pre-block outputs:
// it adds no TDG edge. Returns (nil, 0, nil) when no funds remain.
func (g *UTXOGen) buildIndependentTx(era *Era, senderZipf, recvZipf *zipf) (*utxo.Transaction, utxo.Amount, error) {
	first, owner, ownerIdx := g.takeOutput(senderZipf.draw())
	if owner == nil {
		return nil, 0, nil
	}
	ins := []utxo.TxIn{{Prev: first.op}}
	inValue := first.val
	// Consolidation: spend several outputs of the same wallet.
	if g.smp.rng.Float64() < era.MultiInputProb {
		extra := 1 + g.smp.geometric(0.5)
		for e := 0; e < extra && len(owner.outs) > 0; e++ {
			out := owner.outs[len(owner.outs)-1]
			owner.outs = owner.outs[:len(owner.outs)-1]
			ins = append(ins, utxo.TxIn{Prev: out.op})
			inValue += out.val
		}
	}

	fee := inValue / 1000
	pay := (inValue - fee) / 2
	change := inValue - fee - pay
	recvIdx := recvZipf.draw()
	recv := g.wallets[recvIdx]
	outs := []utxo.TxOut{{Value: pay, Script: recv.lock}}
	if change > 0 {
		outs = append(outs, utxo.TxOut{Value: change, Script: owner.lock})
	}
	tx := utxo.NewTransaction(ins, outs)
	signInputs(tx, owner.key)

	g.pending = append(g.pending, pendingOut{wallet: recvIdx, out: spendable{op: tx.Outpoint(0), val: pay}})
	if change > 0 {
		g.pending = append(g.pending, pendingOut{wallet: ownerIdx, out: spendable{op: tx.Outpoint(1), val: change}})
	}
	return tx, fee, nil
}

// buildChain creates an intra-block spend chain of length ≥ 2 (an exchange
// sweep): each transaction spends an output created by the previous one,
// which is exactly the TDG edge of the UTXO model. Appends the transactions
// to txs and returns how many were created.
func (g *UTXOGen) buildChain(era *Era, budget int, txs *[]*utxo.Transaction) (int, utxo.Amount, error) {
	length := g.smp.chainLength(era)
	if length > budget {
		length = budget
	}
	// Sweeps are operated by hotspot wallets (exchanges / pools): wallet
	// indices 0..7.
	hotIdx := g.smp.rng.Intn(8)
	hot := g.wallets[hotIdx]

	seed, owner, _ := g.takeOutput(hotIdx)
	if owner == nil {
		return 0, 0, nil
	}
	var feeTotal utxo.Amount
	prev := seed
	prevKey := owner.key
	made := 0
	for i := 0; i < length; i++ {
		fee := prev.val / 1000
		remaining := prev.val - fee
		if remaining <= 1 {
			break
		}
		// Peel off a small side payment now and then, as real sweeps do.
		var outs []utxo.TxOut
		side := utxo.Amount(0)
		if remaining > 10 && g.smp.rng.Float64() < 0.5 {
			side = remaining / 10
		}
		main := remaining - side
		outs = append(outs, utxo.TxOut{Value: main, Script: hot.lock})
		sideRecv := -1
		if side > 0 {
			sideRecv = g.smp.rng.Intn(len(g.wallets))
			outs = append(outs, utxo.TxOut{Value: side, Script: g.wallets[sideRecv].lock})
		}
		tx := utxo.NewTransaction([]utxo.TxIn{{Prev: prev.op}}, outs)
		signInputs(tx, prevKey)
		*txs = append(*txs, tx)
		feeTotal += fee
		made++

		if side > 0 {
			g.pending = append(g.pending, pendingOut{wallet: sideRecv, out: spendable{op: tx.Outpoint(1), val: side}})
		}
		prev = spendable{op: tx.Outpoint(0), val: main}
		prevKey = hot.key
	}
	// The chain's final output becomes spendable in future blocks.
	if made > 0 {
		g.pending = append(g.pending, pendingOut{wallet: hotIdx, out: prev})
	} else {
		// Seed was unusable; give it back.
		owner.outs = append(owner.outs, seed)
	}
	return made, feeTotal, nil
}

// distributePending hands the committed block's created outputs to their
// owners, making them spendable from the next block on.
func (g *UTXOGen) distributePending() {
	for _, p := range g.pending {
		if p.wallet < 0 {
			g.treasury.outs = append(g.treasury.outs, p.out)
		} else {
			g.wallets[p.wallet].outs = append(g.wallets[p.wallet].outs, p.out)
		}
	}
	g.pending = g.pending[:0]
}
