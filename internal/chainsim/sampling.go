package chainsim

import (
	"math"
	"math/rand"
)

// sampler bundles the deterministic random sources a generator uses. All
// generated histories are reproducible under (profile, seed, numBlocks).
type sampler struct {
	rng *rand.Rand
}

func newSampler(seed int64) *sampler {
	return &sampler{rng: rand.New(rand.NewSource(seed))}
}

// txCount draws a per-block transaction count around mean with a lognormal
// multiplicative jitter, clamped to a sane range. The lognormal is
// mean-corrected so the expectation stays near mean.
func (s *sampler) txCount(mean, jitter float64) int {
	if mean <= 0 {
		return 0
	}
	if jitter < 0 {
		jitter = 0
	}
	mult := math.Exp(jitter*s.rng.NormFloat64() - jitter*jitter/2)
	n := int(math.Round(mean * mult))
	if n < 0 {
		n = 0
	}
	if max := int(mean*6) + 20; n > max {
		n = max
	}
	return n
}

// geometric draws from a geometric distribution starting at 0 with
// continuation probability p (mean p/(1-p)).
func (s *sampler) geometric(p float64) int {
	n := 0
	for s.rng.Float64() < p && n < 10_000 {
		n++
	}
	return n
}

// chainLength draws the length (≥ 2) of an intra-block spend chain: usually
// short and geometric, occasionally a long exchange sweep like the paper's
// Figure 6 example.
func (s *sampler) chainLength(e *Era) int {
	if s.rng.Float64() < e.LongChainProb {
		// Long sweep: Poisson-ish around LongChainMean via a sum of
		// geometrics; clamp to at least 2.
		l := int(math.Round(e.LongChainMean * math.Exp(0.3*s.rng.NormFloat64())))
		if l < 2 {
			l = 2
		}
		return l
	}
	return 2 + s.geometric(e.ChainContinueProb)
}

// zipf samples indices in [0, n) with a Zipf-like bias toward low indices:
// index 0 is the most popular (the dominant exchange, the busiest contract).
// Exponent s controls the skew; s around 1.1 matches the heavy-tailed
// address popularity observed on public chains.
type zipf struct {
	z *rand.Zipf
	n int
}

func (s *sampler) newZipf(skew float64, n int) *zipf {
	if n < 1 {
		n = 1
	}
	if skew <= 1.0 {
		skew = 1.01
	}
	return &zipf{z: rand.NewZipf(s.rng, skew, 1, uint64(n-1)), n: n}
}

func (z *zipf) draw() int { return int(z.z.Uint64()) }

// zipfQuantile maps uniform raws in [0,1) to indices in [0,n) with Zipf
// weights: index k has probability proportional to (k+1)^-s. Generators
// assign each simulated user a fixed raw so that per-user attributes (home
// exchange, favourite contract) are stable across blocks while remaining
// Zipf-distributed across the population.
type zipfQuantile struct {
	cum []float64
}

func newZipfQuantile(s float64, n int) *zipfQuantile {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &zipfQuantile{cum: cum}
}

// index maps raw ∈ [0,1) to its quantile index.
func (z *zipfQuantile) index(raw float64) int {
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < raw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// interpolate blends era parameters at position frac ∈ [0,1] between era a
// and era b, so bucketed series evolve smoothly as in the paper's plots.
func interpolate(a, b *Era, frac float64) Era {
	if b == nil || frac <= 0 {
		return *a
	}
	if frac > 1 {
		frac = 1
	}
	lerp := func(x, y float64) float64 { return x + (y-x)*frac }
	out := *a
	out.TxPerBlock = lerp(a.TxPerBlock, b.TxPerBlock)
	out.TxPerBlockJitter = lerp(a.TxPerBlockJitter, b.TxPerBlockJitter)
	out.Users = int(lerp(float64(a.Users), float64(b.Users)))
	out.ChainStartProb = lerp(a.ChainStartProb, b.ChainStartProb)
	out.ChainContinueProb = lerp(a.ChainContinueProb, b.ChainContinueProb)
	out.LongChainProb = lerp(a.LongChainProb, b.LongChainProb)
	out.LongChainMean = lerp(a.LongChainMean, b.LongChainMean)
	out.MultiInputProb = lerp(a.MultiInputProb, b.MultiInputProb)
	out.ActiveFrac = lerp(a.ActiveFrac, b.ActiveFrac)
	out.ExchangeFrac = lerp(a.ExchangeFrac, b.ExchangeFrac)
	out.Exchanges = int(lerp(float64(a.Exchanges), float64(b.Exchanges)))
	out.ContractFrac = lerp(a.ContractFrac, b.ContractFrac)
	out.CreationFrac = lerp(a.CreationFrac, b.CreationFrac)
	out.InternalDepth = lerp(a.InternalDepth, b.InternalDepth)
	out.Contracts = int(lerp(float64(a.Contracts), float64(b.Contracts)))
	out.HotReceiverFrac = lerp(a.HotReceiverFrac, b.HotReceiverFrac)
	out.HotReceivers = int(lerp(float64(a.HotReceivers), float64(b.HotReceivers)))
	out.HotSenderFrac = lerp(a.HotSenderFrac, b.HotSenderFrac)
	out.HotSenders = int(lerp(float64(a.HotSenders), float64(b.HotSenders)))
	// The rotation offset switches, never interpolates: a hotspot drifts by
	// jumping to fresh addresses at the era boundary, not by sliding — and
	// intermediate offsets would smear the hot window across both eras'
	// bots.
	return out
}

// eraSchedule converts a profile's weighted eras into per-era block counts
// totalling numBlocks (each era gets at least one block when numBlocks
// allows).
func eraSchedule(p Profile, numBlocks int) []int {
	counts := make([]int, len(p.Eras))
	if numBlocks <= 0 || len(p.Eras) == 0 {
		return counts
	}
	total := p.TotalWeight()
	assigned := 0
	for i, e := range p.Eras {
		c := int(math.Round(float64(numBlocks) * e.Weight / total))
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}
	// Adjust the largest era to hit the exact total.
	largest := 0
	for i, c := range counts {
		if c > counts[largest] {
			largest = i
		}
	}
	counts[largest] += numBlocks - assigned
	if counts[largest] < 1 {
		counts[largest] = 1
	}
	return counts
}
