package chainsim

import (
	"txconcur/internal/account"
)

// GenerateAccountChain generates a whole account-model history for the
// profile and returns the state before the first block plus the block
// sequence — the inputs the chain-level engines (exec.Pipeline.ExecuteChain,
// exec.Sharded.ExecuteChain) consume. The receipts and per-block pre-states
// are deliberately *not* returned: the generator injects era contracts
// directly into state between blocks, so chain-level callers must use a
// sequential replay of the blocks themselves as ground truth (the pattern
// bench.replayChain and the serial-equivalence suites follow). Deterministic
// under the seed.
func GenerateAccountChain(p Profile, blocks int, seed int64) (*account.StateDB, []*account.Block, error) {
	g, err := NewAcctGen(p, blocks, seed)
	if err != nil {
		return nil, nil, err
	}
	pre := g.Chain().State().Copy()
	var out []*account.Block
	for {
		blk, _, ok, err := g.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		out = append(out, blk)
	}
	return pre, out, nil
}
