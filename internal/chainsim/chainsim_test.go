package chainsim

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

func TestProfilesWellFormed(t *testing.T) {
	profiles := AllProfiles()
	if len(profiles) != 7 {
		t.Fatalf("profiles = %d, want 7 (Table I)", len(profiles))
	}
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.Model != UTXO && p.Model != Account {
			t.Fatalf("%s: bad model", p.Name)
		}
		if len(p.Eras) == 0 {
			t.Fatalf("%s: no eras", p.Name)
		}
		if p.TotalWeight() <= 0 {
			t.Fatalf("%s: zero weight", p.Name)
		}
		prev := int64(0)
		for _, e := range p.Eras {
			if e.StartTime < prev {
				t.Fatalf("%s: era %s starts before its predecessor", p.Name, e.Name)
			}
			prev = e.StartTime
			if e.TxPerBlock <= 0 || e.BlockInterval <= 0 {
				t.Fatalf("%s/%s: bad load parameters", p.Name, e.Name)
			}
		}
	}
	for _, want := range []string{"Bitcoin", "Bitcoin Cash", "Litecoin", "Dogecoin", "Ethereum", "Ethereum Classic", "Zilliqa"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("Ethereum")
	if !ok || p.Name != "Ethereum" || p.Model != Account {
		t.Fatalf("ProfileByName(Ethereum) = %+v, %v", p, ok)
	}
	if _, ok := ProfileByName("Tezos"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestEraSchedule(t *testing.T) {
	p := BitcoinProfile()
	counts := eraSchedule(p, 66)
	total := 0
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("era %d got %d blocks", i, c)
		}
		total += c
	}
	if total != 66 {
		t.Fatalf("schedule totals %d, want 66", total)
	}
}

func TestUTXOGenDeterministic(t *testing.T) {
	run := func() ([32]byte, int) {
		g, err := NewUTXOGen(LitecoinProfile(), 12, 42)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		return g.Chain().TipHash(), n
	}
	h1, n1 := run()
	h2, n2 := run()
	if h1 != h2 || n1 != n2 {
		t.Fatalf("generator not deterministic: %x/%d vs %x/%d", h1, n1, h2, n2)
	}
	if n1 != 12 {
		t.Fatalf("generated %d blocks, want 12", n1)
	}
}

func TestUTXOGenFullyValid(t *testing.T) {
	// Script verification on: every input must carry a correct signature.
	g, err := NewUTXOGenVerified(DogecoinProfile(), 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	txs := 0
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatalf("block %d: %v", blocks, err)
		}
		if !ok {
			break
		}
		blocks++
		txs += blk.NumTxs()
		if blk.Txs[0].IsCoinbase() == false {
			t.Fatal("block must start with coinbase")
		}
	}
	if blocks != 9 {
		t.Fatalf("blocks = %d", blocks)
	}
	if txs <= blocks {
		t.Fatalf("history has only %d transactions", txs)
	}
}

func TestUTXOGenModelMismatch(t *testing.T) {
	if _, err := NewUTXOGen(EthereumProfile(), 5, 1); err == nil {
		t.Fatal("account profile accepted by UTXO generator")
	}
	if _, err := NewAcctGen(BitcoinProfile(), 5, 1); err == nil {
		t.Fatal("UTXO profile accepted by account generator")
	}
}

func TestAcctGenDeterministic(t *testing.T) {
	run := func() ([32]byte, int) {
		g, err := NewAcctGen(ZilliqaProfile(), 15, 42)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, _, ok, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		return g.Chain().State().Root(), n
	}
	h1, n1 := run()
	h2, n2 := run()
	if h1 != h2 || n1 != n2 {
		t.Fatalf("generator not deterministic")
	}
	if n1 != 15 {
		t.Fatalf("generated %d blocks, want 15", n1)
	}
}

func TestAcctGenExecutes(t *testing.T) {
	g, err := NewAcctGen(EthereumProfile(), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	internal := 0
	creations := 0
	failures := 0
	for {
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(receipts) != len(blk.Txs) {
			t.Fatalf("receipts %d != txs %d", len(receipts), len(blk.Txs))
		}
		for i, r := range receipts {
			if r.Status != 1 {
				failures++
				t.Logf("tx %d failed: %s", i, r.ExecErr)
			}
			internal += len(r.Internal)
			if blk.Txs[i].IsCreation() {
				creations++
				if r.To.IsZero() {
					t.Fatal("creation without contract address")
				}
			}
		}
	}
	if failures > 0 {
		t.Fatalf("%d generated transactions failed", failures)
	}
	if internal == 0 {
		t.Fatal("no internal transactions generated (Ethereum workload must produce traces)")
	}
}

// aggregate is the transaction-weighted mean of the conflict rates over a
// run, i.e. Σ conflicted / Σ txs and Σ LCC / Σ txs, matching the paper's
// per-bucket weighting.
type aggregate struct {
	blocks, txs, internal, inputs, conflicted, lcc int
}

func (a aggregate) single() float64 {
	if a.txs == 0 {
		return 0
	}
	return float64(a.conflicted) / float64(a.txs)
}

func (a aggregate) group() float64 {
	if a.txs == 0 {
		return 0
	}
	return float64(a.lcc) / float64(a.txs)
}

func (a aggregate) txPerBlock() float64 {
	if a.blocks == 0 {
		return 0
	}
	return float64(a.txs) / float64(a.blocks)
}

func measureUTXO(t *testing.T, p Profile, numBlocks int, seed int64) aggregate {
	t.Helper()
	g, err := NewUTXOGen(p, numBlocks, seed)
	if err != nil {
		t.Fatal(err)
	}
	var agg aggregate
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		m := core.MeasureUTXOBlock(blk)
		agg.blocks++
		agg.txs += m.NumTxs
		agg.inputs += m.NumInputs
		agg.conflicted += m.Conflicted
		agg.lcc += m.LCC
	}
	return agg
}

func measureAcct(t *testing.T, p Profile, numBlocks int, seed int64) aggregate {
	t.Helper()
	g, err := NewAcctGen(p, numBlocks, seed)
	if err != nil {
		t.Fatal(err)
	}
	var agg aggregate
	for {
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		m := core.MeasureAccountBlock(blk, receipts)
		agg.blocks++
		agg.txs += m.NumTxs
		agg.internal += m.NumInternal
		agg.conflicted += m.Conflicted
		agg.lcc += m.LCC
	}
	return agg
}

// Calibration tests: the generated workloads must land in the bands the
// paper reports (DESIGN.md §5). Bands are generous — the goal is the
// paper's orderings and rough levels, not exact plot values.

func TestBitcoinCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full mini-history")
	}
	agg := measureUTXO(t, BitcoinProfile(), 60, 1)
	t.Logf("Bitcoin: tx/block=%.0f inputs/tx=%.2f single=%.3f group=%.4f",
		agg.txPerBlock(), float64(agg.inputs)/float64(agg.txs), agg.single(), agg.group())
	if s := agg.single(); s < 0.06 || s > 0.25 {
		t.Errorf("single rate %.3f outside paper band [0.06, 0.25] (~13-15%%)", s)
	}
	if gr := agg.group(); gr < 0.002 || gr > 0.05 {
		t.Errorf("group rate %.4f outside paper band [0.002, 0.05] (~1%%)", gr)
	}
	if tpb := agg.txPerBlock(); tpb < 400 {
		t.Errorf("tx/block %.0f too low (late-era Bitcoin exceeds 2000)", tpb)
	}
}

func TestEthereumCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full mini-history")
	}
	agg := measureAcct(t, EthereumProfile(), 120, 1)
	t.Logf("Ethereum: tx/block=%.0f internal/block=%.1f single=%.3f group=%.3f",
		agg.txPerBlock(), float64(agg.internal)/float64(agg.blocks), agg.single(), agg.group())
	if s := agg.single(); s < 0.5 || s > 0.9 {
		t.Errorf("single rate %.3f outside paper band [0.5, 0.9] (60-80%%)", s)
	}
	if gr := agg.group(); gr < 0.12 || gr > 0.5 {
		t.Errorf("group rate %.3f outside paper band [0.12, 0.5] (20-50%%)", gr)
	}
	if agg.internal == 0 {
		t.Error("Ethereum history has no internal transactions")
	}
	if agg.single() <= agg.group() {
		t.Errorf("single rate %.3f must exceed group rate %.3f", agg.single(), agg.group())
	}
}

func TestUTXOVersusAccountOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full mini-history")
	}
	// Paper finding 1: more concurrency (lower conflict) in UTXO chains.
	btc := measureUTXO(t, BitcoinProfile(), 40, 2)
	eth := measureAcct(t, EthereumProfile(), 80, 2)
	if btc.single() >= eth.single() {
		t.Errorf("Bitcoin single %.3f should be far below Ethereum %.3f", btc.single(), eth.single())
	}
	if btc.group() >= eth.group() {
		t.Errorf("Bitcoin group %.4f should be far below Ethereum %.3f", btc.group(), eth.group())
	}
}

func TestForkChainsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full mini-history")
	}
	// Paper §IV-C: the fork chains (fewer users) have *higher* conflict
	// rates despite fewer transactions.
	btc := measureUTXO(t, BitcoinProfile(), 40, 3)
	bch := measureUTXO(t, BitcoinCashProfile(), 40, 3)
	t.Logf("BCH: tx/block=%.0f single=%.3f group=%.4f", bch.txPerBlock(), bch.single(), bch.group())
	if bch.txPerBlock() >= btc.txPerBlock()/3 {
		t.Errorf("Bitcoin Cash tx/block %.0f should be well below Bitcoin's %.0f", bch.txPerBlock(), btc.txPerBlock())
	}
	if bch.single() <= btc.single() {
		t.Errorf("Bitcoin Cash single %.3f should exceed Bitcoin's %.3f", bch.single(), btc.single())
	}
	if bch.group() <= btc.group() {
		t.Errorf("Bitcoin Cash group %.4f should exceed Bitcoin's %.4f", bch.group(), btc.group())
	}

	eth := measureAcct(t, EthereumProfile(), 80, 4)
	etc := measureAcct(t, EthereumClassicProfile(), 80, 4)
	t.Logf("ETC: tx/block=%.0f single=%.3f group=%.3f", etc.txPerBlock(), etc.single(), etc.group())
	if etc.txPerBlock() >= eth.txPerBlock()/3 {
		t.Errorf("Classic tx/block %.0f should be an order below Ethereum's %.0f", etc.txPerBlock(), eth.txPerBlock())
	}
	if etc.group() < 0.5 || etc.group() > 0.9 {
		t.Errorf("Classic group rate %.3f outside paper band [0.5, 0.9] (~70%%)", etc.group())
	}
	if etc.group() <= eth.group() {
		t.Errorf("Classic group %.3f should exceed Ethereum's %.3f", etc.group(), eth.group())
	}
}

func TestZilliqaCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full mini-history")
	}
	zil := measureAcct(t, ZilliqaProfile(), 80, 5)
	t.Logf("Zilliqa: tx/block=%.0f single=%.3f group=%.3f", zil.txPerBlock(), zil.single(), zil.group())
	if zil.single() < 0.6 {
		t.Errorf("Zilliqa single rate %.3f should be the highest band (paper Figure 7)", zil.single())
	}
	if zil.group() < 0.5 {
		t.Errorf("Zilliqa group rate %.3f should be high (paper Figure 7)", zil.group())
	}
}

func TestLongChainsAppear(t *testing.T) {
	if testing.Short() {
		t.Skip("long history")
	}
	// Figure 6: Bitcoin blocks occasionally contain long intra-block spend
	// chains.
	g, err := NewUTXOGen(BitcoinProfile(), 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	longest := 0
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if l := core.LongestSpendChain(blk); l > longest {
			longest = l
		}
	}
	if longest < 8 {
		t.Errorf("longest spend chain over history = %d, want >= 8 (Figure 6 shows 18)", longest)
	}
}

func TestGenesisAndChainTypes(t *testing.T) {
	g, err := NewUTXOGen(LitecoinProfile(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var _ *utxo.Chain = g.Chain()
	if g.Chain().Height() != 1 {
		t.Fatalf("height before generation = %d, want 1 (genesis)", g.Chain().Height())
	}
	if g.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", g.Remaining())
	}

	ag, err := NewAcctGen(EthereumClassicProfile(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var _ *account.Chain = ag.Chain()
	if ag.Remaining() != 3 {
		t.Fatalf("acct remaining = %d, want 3", ag.Remaining())
	}
}

// TestShardProfiles checks the cross-shard extension profiles (E9): well
// formed, reachable by name, account-model, and their generated histories
// execute (the generator validates every block it appends).
func TestShardProfiles(t *testing.T) {
	ps := ShardProfiles()
	if len(ps) != 3 {
		t.Fatalf("shard profiles = %d, want 3", len(ps))
	}
	for _, p := range ps {
		byName, ok := ProfileByName(p.Name)
		if !ok || byName.Name != p.Name {
			t.Fatalf("ProfileByName(%q) failed", p.Name)
		}
		if p.Model != Account {
			t.Fatalf("%s: not account-model", p.Name)
		}
		g, err := NewAcctGen(p, 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		txs := 0
		for {
			blk, receipts, ok, err := g.Next()
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			if !ok {
				break
			}
			if len(receipts) != len(blk.Txs) {
				t.Fatalf("%s: %d receipts for %d txs", p.Name, len(receipts), len(blk.Txs))
			}
			txs += len(blk.Txs)
		}
		if txs == 0 {
			t.Fatalf("%s: empty history", p.Name)
		}
	}
}

// TestAdaptiveShardProfiles checks the adaptive-placement workloads (E11):
// well formed, reachable by name, sweep-dominated, and — the property the
// whole experiment rests on — the drift profile's active bot window really
// rotates onto fresh collector addresses between eras.
func TestAdaptiveShardProfiles(t *testing.T) {
	ps := AdaptiveShardProfiles()
	if len(ps) != 2 {
		t.Fatalf("adaptive shard profiles = %d, want 2", len(ps))
	}
	for _, p := range ps {
		byName, ok := ProfileByName(p.Name)
		if !ok || byName.Name != p.Name {
			t.Fatalf("ProfileByName(%q) failed", p.Name)
		}
		if p.Model != Account {
			t.Fatalf("%s: not account-model", p.Name)
		}
		for _, e := range p.Eras {
			if e.HotSenderFrac <= 0 || e.HotSenders <= 0 {
				t.Fatalf("%s/%s: no sweep bots", p.Name, e.Name)
			}
		}
	}

	// Drift: collect the sender set of the first and last quarter of a
	// generated history; the rotation must retire every early bot.
	p := ShardDriftProfile()
	g, err := NewAcctGen(p, 16, 23)
	if err != nil {
		t.Fatal(err)
	}
	botSenders := func(blk *account.Block) map[string]bool {
		out := map[string]bool{}
		for _, tx := range blk.Txs {
			out[tx.From.String()] = true
		}
		return out
	}
	var early, late map[string]bool
	for i := 0; ; i++ {
		blk, _, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if i == 0 {
			early = botSenders(blk)
		}
		late = botSenders(blk)
	}
	// Bots are the dedicated "bot/<name>" addresses; the user populations
	// overlap across eras, the bot windows must not.
	bot := func(i uint64) string { return types.AddressFromUint64("bot/"+p.Name, i).String() }
	earlyBots, lateBots := 0, 0
	for i := uint64(0); i < 4; i++ {
		if early[bot(i)] {
			earlyBots++
		}
		if late[bot(i)] {
			lateBots++
		}
	}
	if earlyBots == 0 {
		t.Fatal("first era never used the first bot window")
	}
	if lateBots != 0 {
		t.Fatal("last era still uses the first bot window: the hotspot does not drift")
	}

	// Sweeps pay their paired collector, extending a per-bot nonce chain.
	g2, err := NewAcctGen(ShardSkewProfile(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	blk, _, _, err := g2.Next()
	if err != nil {
		t.Fatal(err)
	}
	skew := ShardSkewProfile()
	sweeps := 0
	for _, tx := range blk.Txs {
		for i := uint64(0); i < 4; i++ {
			if tx.From == types.AddressFromUint64("bot/"+skew.Name, i) {
				if tx.To != types.AddressFromUint64("collect/"+skew.Name, i) {
					t.Fatalf("bot %d paid %v, want its paired collector", i, tx.To)
				}
				sweeps++
			}
		}
	}
	if sweeps < len(blk.Txs)/3 {
		t.Fatalf("only %d/%d sweep transactions; HotSenderFrac=0.6 expected more", sweeps, len(blk.Txs))
	}
}

// TestSweepKnobsPreserveLegacyStreams: profiles without sweep knobs must
// generate bit-identical histories to the pre-knob generator — the random
// stream is consumed only when the knob is set, so the recorded E7–E10
// baselines stay valid.
func TestSweepKnobsPreserveLegacyStreams(t *testing.T) {
	for _, p := range []Profile{EthereumProfile(), ShardHotShardProfile()} {
		a, err := NewAcctGen(p, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		// The same profile with sweep fields explicitly zeroed (they are
		// already zero; this guards against future defaulting).
		q := p
		for i := range q.Eras {
			q.Eras[i].HotSenderFrac = 0
			q.Eras[i].HotSenders = 0
			q.Eras[i].HotSenderRotate = 0
		}
		b, err := NewAcctGen(q, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		for {
			ba, _, oka, err := a.Next()
			if err != nil {
				t.Fatal(err)
			}
			bb, _, okb, err := b.Next()
			if err != nil {
				t.Fatal(err)
			}
			if oka != okb {
				t.Fatal("histories diverge in length")
			}
			if !oka {
				break
			}
			if len(ba.Txs) != len(bb.Txs) {
				t.Fatalf("block %d: %d vs %d txs", ba.Height, len(ba.Txs), len(bb.Txs))
			}
			for i := range ba.Txs {
				if ba.Txs[i].Hash() != bb.Txs[i].Hash() {
					t.Fatalf("block %d tx %d differs", ba.Height, i)
				}
			}
		}
	}
}
