// Package chainsim generates synthetic-but-executable workload histories for
// the seven public blockchains the paper analyses (Table I): Bitcoin,
// Bitcoin Cash, Litecoin, Dogecoin (UTXO model) and Ethereum, Ethereum
// Classic, Zilliqa (account model).
//
// The paper's empirical study consumes historical BigQuery datasets that are
// not available offline, so this package substitutes workload generators
// whose *dependency structure* is calibrated, era by era, to the conflict
// rates and transaction loads the paper reports (DESIGN.md §2 and §5). The
// generated blocks are real blocks: UTXO blocks validate against the
// utxo.Chain rules (value conservation, script checks), and account blocks
// execute through the VM, producing the internal-transaction traces the TDG
// analysis requires.
//
// Every generator is deterministic under its seed.
package chainsim

// DataModel distinguishes the two transaction models of §II-A.
type DataModel int

// Data models. Values start at one so the zero value is invalid.
const (
	UTXO DataModel = iota + 1
	Account
)

// String returns the paper's name for the data model.
func (m DataModel) String() string {
	switch m {
	case UTXO:
		return "UTXO"
	case Account:
		return "Account"
	default:
		return "unknown"
	}
}

// Era is a span of blocks with stationary workload parameters. A chain's
// history is a sequence of eras; the parameters are interpolated linearly
// within each era toward the next, so the bucketed series evolve smoothly
// as in the paper's figures.
type Era struct {
	// Name labels the era (usually a year, e.g. "2017").
	Name string
	// Weight is the era's share of generated blocks (relative to the other
	// eras' weights).
	Weight float64
	// StartTime is the unix time of the era's first block.
	StartTime int64
	// BlockInterval is the average block spacing in seconds.
	BlockInterval int64

	// TxPerBlock is the mean number of regular transactions per block.
	TxPerBlock float64
	// TxPerBlockJitter is the multiplicative spread of the per-block
	// transaction count (0.3 means roughly ±30%).
	TxPerBlockJitter float64
	// Users is the size of the simulated user population.
	Users int

	// UTXO-model knobs.

	// ChainStartProb is the probability that a generation step starts an
	// intra-block spend chain instead of an independent transaction —
	// the exchange/pool sweep behaviour behind the paper's Figure 6.
	ChainStartProb float64
	// ChainContinueProb is the geometric continuation probability of a
	// spend chain (chains have length ≥ 2).
	ChainContinueProb float64
	// LongChainProb is the probability that a started chain is a long
	// sweep with mean length LongChainMean (the Figure 6 pattern).
	LongChainProb float64
	// LongChainMean is the mean length of long sweep chains.
	LongChainMean float64
	// MultiInputProb is the probability a transaction consolidates several
	// inputs (drives the input-TXOs series of Figure 5a).
	MultiInputProb float64

	// Account-model knobs.

	// ActiveFrac scales the per-block active sender set: the number of
	// distinct senders active in a block is roughly ActiveFrac ×
	// TxPerBlock. Smaller values mean more sender reuse and a higher
	// single-transaction conflict rate.
	ActiveFrac float64
	// ExchangeFrac is the fraction of transactions that pay one of the
	// exchange hotspot addresses; deposits agglomerate into the block's
	// largest connected component (the paper's Poloniex example).
	ExchangeFrac float64
	// Exchanges is the number of distinct exchange hotspots.
	Exchanges int
	// ContractFrac is the fraction of transactions that invoke a smart
	// contract.
	ContractFrac float64
	// CreationFrac is the fraction of transactions that deploy a new
	// contract (high gas, usually unconflicted — the paper's explanation
	// for the lower gas-weighted conflict rate, §IV-A).
	CreationFrac float64
	// InternalDepth is the mean depth of internal call chains triggered by
	// contract calls.
	InternalDepth float64
	// Contracts is the number of popular deployed contracts.
	Contracts int
	// HotReceiverFrac is the fraction of transactions that are plain value
	// transfers to one of a few hot receiver addresses (a token sale, an
	// airdrop payout, a flash-crowd target). Hot receivers never send and
	// carry no code, so their balance is only ever credited — the pure
	// delta–delta pattern operation-level conflict refinement exploits.
	HotReceiverFrac float64
	// HotReceivers is the number of distinct hot receiver addresses.
	HotReceivers int

	// Sweep-bot knobs (the drifting-hotspot workloads of E11). A sweep bot
	// is a dedicated sender — an exchange consolidation script, a payout
	// pool — that issues long same-sender nonce chains into its own fixed
	// collector address. Under sender-committee sharding the bot and its
	// collector usually land on different shards, so every sweep is
	// cross-shard and its nonce chain serialises the merge; a placement
	// policy that co-locates the pair converts the whole stream to
	// intra-shard work.

	// HotSenderFrac is the fraction of transactions issued by sweep bots.
	HotSenderFrac float64
	// HotSenders is the number of concurrently active bot/collector pairs.
	HotSenders int
	// HotSenderRotate offsets the active window into the bot pool: eras
	// with different offsets drift the hotspot onto fresh addresses, which
	// is what forces an adaptive assignment to keep re-learning.
	HotSenderRotate int
}

// Profile describes one blockchain: its Table I characteristics and its
// era schedule.
type Profile struct {
	// Name is the blockchain's name as in Table I.
	Name string
	// Model is the data model (Table I column 2).
	Model DataModel
	// Consensus is the consensus family (Table I column 3).
	Consensus string
	// SmartContracts reports Turing-complete contract support (Table I
	// column 4).
	SmartContracts bool
	// DataSource is where the paper obtained the chain's data (Table I
	// column 5).
	DataSource string
	// LaunchYear is the chain's first year with traffic.
	LaunchYear int
	// Eras is the era schedule, in chronological order.
	Eras []Era
}

// TotalWeight sums the era weights.
func (p Profile) TotalWeight() float64 {
	var w float64
	for _, e := range p.Eras {
		w += e.Weight
	}
	return w
}

// unix timestamps for the first of January of each year, precomputed so the
// profiles read naturally. Leap years are handled by the cumulative sums.
func jan1(year int) int64 {
	// Days since 1970-01-01 for jan 1 of the given year.
	days := int64(0)
	for y := 1970; y < year; y++ {
		days += 365
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			days++
		}
	}
	return days * 86400
}

// AllProfiles returns the seven chain profiles of Table I, in the paper's
// order.
func AllProfiles() []Profile {
	return []Profile{
		BitcoinProfile(),
		BitcoinCashProfile(),
		LitecoinProfile(),
		DogecoinProfile(),
		EthereumProfile(),
		EthereumClassicProfile(),
		ZilliqaProfile(),
	}
}

// HotKeyProfiles returns the hot-key stress workloads used by the
// operation-level experiments (E8). They are not part of the paper's Table I
// (AllProfiles): each one concentrates traffic on a handful of addresses so
// that the key-level TDG collapses the block into one component, which is
// exactly where delta-write refinement matters. "Contract Crowd" is the
// delta-free control: its hot keys are contracts whose storage is genuinely
// shared, so refinement must change nothing.
func HotKeyProfiles() []Profile {
	return []Profile{
		TokenHotKeyProfile(),
		HotWalletProfile(),
		FlashCrowdProfile(),
		ContractCrowdProfile(),
	}
}

// ShardProfiles returns the cross-shard stress workloads used by the
// sharded-execution experiment (E9). Like the hot-key set they are not part
// of Table I: each one exercises a different shape of cross-shard traffic
// under sender-based committee assignment (core.ShardOf). "Shard Uniform"
// spreads load evenly but makes most transfers land on a foreign shard;
// "Shard Hot-Shard" concentrates the receivers of most transactions on a
// couple of hot addresses, so one shard's keys absorb nearly all
// cross-shard writes (the skew that commutative deltas dissolve); "Shard
// Cross-Heavy" is dominated by contract calls with deep internal chains,
// whose call targets span shards with genuinely shared storage.
func ShardProfiles() []Profile {
	return []Profile{
		ShardUniformProfile(),
		ShardHotShardProfile(),
		ShardCrossHeavyProfile(),
	}
}

// AdaptiveShardProfiles returns the placement stress workloads used by the
// adaptive-sharding experiment (E11). Both are dominated by sweep bots —
// dedicated senders issuing nonce chains into fixed collector addresses —
// whose bot/collector pairs land on different shards under static FNV
// assignment, so nearly every sweep is cross-shard and its nonce chain
// serialises the merge. "Shard Skew" keeps the same bots active for the
// whole history (one good placement fixes it forever); "Shard Drift"
// rotates the active bot window era by era, so a learned placement decays
// and must be re-learned — the workload the ROADMAP's adaptive items name.
func AdaptiveShardProfiles() []Profile {
	return []Profile{
		ShardSkewProfile(),
		ShardDriftProfile(),
	}
}

// ProfileByName returns the profile with the given name and whether it
// exists, searching the paper's Table I chains and the hot-key,
// cross-shard, and adaptive-placement extension profiles.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range HotKeyProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range ShardProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range AdaptiveShardProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// BitcoinProfile models Bitcoin 2009–2019: transaction counts grow from a
// handful to >2000 per block with ~2 inputs per transaction; the
// single-transaction conflict rate settles around 13–15% and the group rate
// around 1% (paper Figure 5).
func BitcoinProfile() Profile {
	return Profile{
		Name: "Bitcoin", Model: UTXO, Consensus: "PoW",
		SmartContracts: false, DataSource: "BigQuery", LaunchYear: 2009,
		Eras: []Era{
			{Name: "2009-2010", Weight: 2, StartTime: jan1(2009), BlockInterval: 600,
				TxPerBlock: 3, TxPerBlockJitter: 0.8, Users: 300,
				ChainStartProb: 0.010, ChainContinueProb: 0.25, LongChainProb: 0.01, LongChainMean: 8, MultiInputProb: 0.15},
			{Name: "2011-2012", Weight: 2, StartTime: jan1(2011), BlockInterval: 600,
				TxPerBlock: 40, TxPerBlockJitter: 0.6, Users: 4000,
				ChainStartProb: 0.022, ChainContinueProb: 0.30, LongChainProb: 0.02, LongChainMean: 10, MultiInputProb: 0.2},
			{Name: "2013-2014", Weight: 2, StartTime: jan1(2013), BlockInterval: 600,
				TxPerBlock: 300, TxPerBlockJitter: 0.5, Users: 40000,
				ChainStartProb: 0.035, ChainContinueProb: 0.32, LongChainProb: 0.02, LongChainMean: 12, MultiInputProb: 0.3},
			{Name: "2015-2016", Weight: 2, StartTime: jan1(2015), BlockInterval: 600,
				TxPerBlock: 1100, TxPerBlockJitter: 0.4, Users: 150000,
				ChainStartProb: 0.045, ChainContinueProb: 0.33, LongChainProb: 0.02, LongChainMean: 14, MultiInputProb: 0.4},
			{Name: "2017-2018", Weight: 2, StartTime: jan1(2017), BlockInterval: 600,
				TxPerBlock: 2100, TxPerBlockJitter: 0.3, Users: 400000,
				ChainStartProb: 0.055, ChainContinueProb: 0.34, LongChainProb: 0.025, LongChainMean: 16, MultiInputProb: 0.45},
			{Name: "2019", Weight: 1, StartTime: jan1(2019), BlockInterval: 600,
				TxPerBlock: 2300, TxPerBlockJitter: 0.3, Users: 500000,
				ChainStartProb: 0.055, ChainContinueProb: 0.34, LongChainProb: 0.025, LongChainMean: 18, MultiInputProb: 0.45},
		},
	}
}

// BitcoinCashProfile models Bitcoin Cash from the August 2017 fork: up to an
// order of magnitude fewer transactions than Bitcoin, with *higher* conflict
// rates — the paper attributes this to a smaller user base dominated by
// large exchanges (§IV-C).
func BitcoinCashProfile() Profile {
	return Profile{
		Name: "Bitcoin Cash", Model: UTXO, Consensus: "PoW",
		SmartContracts: false, DataSource: "BigQuery", LaunchYear: 2017,
		Eras: []Era{
			{Name: "2017H2", Weight: 1, StartTime: jan1(2017) + 181*86400, BlockInterval: 600,
				TxPerBlock: 250, TxPerBlockJitter: 0.9, Users: 12000,
				ChainStartProb: 0.09, ChainContinueProb: 0.40, LongChainProb: 0.05, LongChainMean: 18, MultiInputProb: 0.4},
			{Name: "2018", Weight: 2, StartTime: jan1(2018), BlockInterval: 600,
				TxPerBlock: 160, TxPerBlockJitter: 0.8, Users: 9000,
				ChainStartProb: 0.10, ChainContinueProb: 0.42, LongChainProb: 0.06, LongChainMean: 20, MultiInputProb: 0.4},
			{Name: "2019", Weight: 2, StartTime: jan1(2019), BlockInterval: 600,
				TxPerBlock: 220, TxPerBlockJitter: 0.8, Users: 10000,
				ChainStartProb: 0.10, ChainContinueProb: 0.42, LongChainProb: 0.06, LongChainMean: 20, MultiInputProb: 0.4},
		},
	}
}

// LitecoinProfile models Litecoin 2011–2019: a Bitcoin spin-off with a
// higher block frequency and lower per-block transaction counts.
func LitecoinProfile() Profile {
	return Profile{
		Name: "Litecoin", Model: UTXO, Consensus: "PoW",
		SmartContracts: false, DataSource: "BigQuery", LaunchYear: 2011,
		Eras: []Era{
			{Name: "2011-2013", Weight: 2, StartTime: jan1(2011) + 280*86400, BlockInterval: 150,
				TxPerBlock: 4, TxPerBlockJitter: 0.9, Users: 1500,
				ChainStartProb: 0.03, ChainContinueProb: 0.3, LongChainProb: 0.01, LongChainMean: 6, MultiInputProb: 0.2},
			{Name: "2014-2016", Weight: 2, StartTime: jan1(2014), BlockInterval: 150,
				TxPerBlock: 12, TxPerBlockJitter: 0.8, Users: 8000,
				ChainStartProb: 0.04, ChainContinueProb: 0.32, LongChainProb: 0.015, LongChainMean: 8, MultiInputProb: 0.25},
			{Name: "2017-2019", Weight: 3, StartTime: jan1(2017), BlockInterval: 150,
				TxPerBlock: 90, TxPerBlockJitter: 0.6, Users: 40000,
				ChainStartProb: 0.05, ChainContinueProb: 0.33, LongChainProb: 0.02, LongChainMean: 10, MultiInputProb: 0.3},
		},
	}
}

// DogecoinProfile models Dogecoin 2013–2019: Litecoin-like with an even
// higher block frequency, and bursty exchange-driven traffic.
func DogecoinProfile() Profile {
	return Profile{
		Name: "Dogecoin", Model: UTXO, Consensus: "PoW",
		SmartContracts: false, DataSource: "BigQuery", LaunchYear: 2013,
		Eras: []Era{
			{Name: "2014", Weight: 1, StartTime: jan1(2014), BlockInterval: 60,
				TxPerBlock: 25, TxPerBlockJitter: 1.0, Users: 6000,
				ChainStartProb: 0.06, ChainContinueProb: 0.36, LongChainProb: 0.03, LongChainMean: 10, MultiInputProb: 0.3},
			{Name: "2015-2017", Weight: 2, StartTime: jan1(2015), BlockInterval: 60,
				TxPerBlock: 12, TxPerBlockJitter: 0.9, Users: 5000,
				ChainStartProb: 0.06, ChainContinueProb: 0.36, LongChainProb: 0.03, LongChainMean: 10, MultiInputProb: 0.3},
			{Name: "2018-2019", Weight: 2, StartTime: jan1(2018), BlockInterval: 60,
				TxPerBlock: 30, TxPerBlockJitter: 0.8, Users: 9000,
				ChainStartProb: 0.07, ChainContinueProb: 0.36, LongChainProb: 0.03, LongChainMean: 12, MultiInputProb: 0.3},
		},
	}
}

// EthereumProfile models Ethereum July 2015 – 2019 (paper Figure 4): ~100
// regular transactions per block (~300 including internal ones); the
// transaction-weighted single-transaction conflict rate falls from ~80% to
// ~60% while the group rate falls from ~50% to a stable ~20%.
func EthereumProfile() Profile {
	return Profile{
		Name: "Ethereum", Model: Account, Consensus: "PoW",
		SmartContracts: true, DataSource: "BigQuery", LaunchYear: 2015,
		Eras: []Era{
			{Name: "2015H2", Weight: 1, StartTime: jan1(2015) + 212*86400, BlockInterval: 15,
				TxPerBlock: 8, TxPerBlockJitter: 0.8, Users: 2000,
				ActiveFrac: 0.55, ExchangeFrac: 0.48, Exchanges: 1,
				ContractFrac: 0.10, CreationFrac: 0.09, InternalDepth: 1.2, Contracts: 30},
			{Name: "2016", Weight: 2, StartTime: jan1(2016), BlockInterval: 15,
				TxPerBlock: 35, TxPerBlockJitter: 0.6, Users: 12000,
				ActiveFrac: 0.70, ExchangeFrac: 0.42, Exchanges: 2,
				ContractFrac: 0.15, CreationFrac: 0.06, InternalDepth: 1.5, Contracts: 120},
			{Name: "2017", Weight: 2, StartTime: jan1(2017), BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.5, Users: 120000,
				ActiveFrac: 1.10, ExchangeFrac: 0.36, Exchanges: 2,
				ContractFrac: 0.30, CreationFrac: 0.03, InternalDepth: 1.9, Contracts: 600},
			{Name: "2018", Weight: 2, StartTime: jan1(2018), BlockInterval: 15,
				TxPerBlock: 115, TxPerBlockJitter: 0.4, Users: 250000,
				ActiveFrac: 1.80, ExchangeFrac: 0.32, Exchanges: 3,
				ContractFrac: 0.38, CreationFrac: 0.015, InternalDepth: 1.8, Contracts: 1200},
			{Name: "2019", Weight: 2, StartTime: jan1(2019), BlockInterval: 14,
				TxPerBlock: 105, TxPerBlockJitter: 0.4, Users: 300000,
				ActiveFrac: 2.60, ExchangeFrac: 0.30, Exchanges: 3,
				ContractFrac: 0.42, CreationFrac: 0.012, InternalDepth: 1.7, Contracts: 1500},
		},
	}
}

// EthereumClassicProfile models Ethereum Classic from the July 2016 fork:
// an order of magnitude fewer transactions than Ethereum with much higher
// conflict rates (group rate ~70%, paper Figure 8) — the signature of a
// small user base dominated by a few exchanges.
func EthereumClassicProfile() Profile {
	return Profile{
		Name: "Ethereum Classic", Model: Account, Consensus: "PoW",
		SmartContracts: true, DataSource: "BigQuery", LaunchYear: 2016,
		Eras: []Era{
			{Name: "2016H2", Weight: 1, StartTime: jan1(2016) + 201*86400, BlockInterval: 14,
				TxPerBlock: 18, TxPerBlockJitter: 0.8, Users: 2500,
				ActiveFrac: 0.35, ExchangeFrac: 0.62, Exchanges: 1,
				ContractFrac: 0.06, CreationFrac: 0.01, InternalDepth: 1.2, Contracts: 40},
			{Name: "2017", Weight: 2, StartTime: jan1(2017), BlockInterval: 14,
				TxPerBlock: 15, TxPerBlockJitter: 0.8, Users: 3000,
				ActiveFrac: 0.32, ExchangeFrac: 0.68, Exchanges: 1,
				ContractFrac: 0.07, CreationFrac: 0.01, InternalDepth: 1.3, Contracts: 60},
			{Name: "2018-2019", Weight: 3, StartTime: jan1(2018), BlockInterval: 13,
				TxPerBlock: 11, TxPerBlockJitter: 0.8, Users: 2500,
				ActiveFrac: 0.30, ExchangeFrac: 0.72, Exchanges: 1,
				ContractFrac: 0.06, CreationFrac: 0.008, InternalDepth: 1.3, Contracts: 60},
		},
	}
}

// TokenHotKeyProfile models a token-distribution period: most transactions
// are plain transfers into a few sale/airdrop collection addresses, with a
// modest background of contract calls and peer payments. Key-level, the
// collection addresses merge most of the block into one component;
// operation-level, the credits commute and the block is almost embarrassingly
// parallel.
func TokenHotKeyProfile() Profile {
	return Profile{
		Name: "Token Hot-Key", Model: Account, Consensus: "PoW",
		SmartContracts: true, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "sale", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 100, TxPerBlockJitter: 0.3, Users: 30000,
				ActiveFrac: 2.0, ExchangeFrac: 0.05, Exchanges: 1,
				ContractFrac: 0.08, CreationFrac: 0.01, InternalDepth: 1.2, Contracts: 40,
				HotReceiverFrac: 0.65, HotReceivers: 4},
			{Name: "frenzy", Weight: 1, StartTime: jan1(2020) + 90*86400, BlockInterval: 15,
				TxPerBlock: 140, TxPerBlockJitter: 0.4, Users: 50000,
				ActiveFrac: 2.4, ExchangeFrac: 0.05, Exchanges: 1,
				ContractFrac: 0.06, CreationFrac: 0.005, InternalDepth: 1.2, Contracts: 40,
				HotReceiverFrac: 0.75, HotReceivers: 3},
		},
	}
}

// HotWalletProfile models an exchange hot wallet absorbing most of the
// chain's traffic: deposits from a wide sender population into a single
// exchange address — the Poloniex pattern of the paper's Figure 1b pushed to
// the workload's limit.
func HotWalletProfile() Profile {
	return Profile{
		Name: "Hot Wallet", Model: Account, Consensus: "PoW",
		SmartContracts: true, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "steady", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 40000,
				ActiveFrac: 2.5, ExchangeFrac: 0.82, Exchanges: 1,
				ContractFrac: 0.03, CreationFrac: 0.005, InternalDepth: 1.1, Contracts: 20,
				HotReceiverFrac: 0, HotReceivers: 0},
		},
	}
}

// FlashCrowdProfile models a flash crowd: nearly every transaction in the
// block pays the same single address (a viral fundraiser, an NFT mint
// treasury), with bursty block sizes. The extreme case where the key-level
// speed-up is pinned at ~1.
func FlashCrowdProfile() Profile {
	return Profile{
		Name: "Flash Crowd", Model: Account, Consensus: "PoW",
		SmartContracts: false, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "crowd", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 150, TxPerBlockJitter: 0.8, Users: 50000,
				ActiveFrac: 3.0, ExchangeFrac: 0, Exchanges: 0,
				ContractFrac: 0, CreationFrac: 0, InternalDepth: 0, Contracts: 0,
				HotReceiverFrac: 0.92, HotReceivers: 1},
		},
	}
}

// ContractCrowdProfile is the delta-free control for E8: every transaction
// invokes a contract from a small popular population, so the hot keys are
// contract storage — real shared state that commutes with nothing. Key-level
// and operation-level analyses must agree exactly on this workload.
func ContractCrowdProfile() Profile {
	return Profile{
		Name: "Contract Crowd", Model: Account, Consensus: "PoW",
		SmartContracts: true, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "crowd", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 80, TxPerBlockJitter: 0.3, Users: 20000,
				ActiveFrac: 2.0, ExchangeFrac: 0, Exchanges: 0,
				ContractFrac: 1.0, CreationFrac: 0, InternalDepth: 1.5, Contracts: 12,
				HotReceiverFrac: 0, HotReceivers: 0},
		},
	}
}

// ShardUniformProfile models uniformly distributed peer-to-peer traffic: a
// large user population paying random peers, no exchanges, no hot keys, no
// contracts. Under sender sharding the load balances almost perfectly
// across committees, but with uniform receivers roughly (s−1)/s of the
// transfers are cross-shard — the workload that measures the pure overhead
// of the cross-shard commit when almost nothing actually conflicts.
func ShardUniformProfile() Profile {
	return Profile{
		Name: "Shard Uniform", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: false, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "steady", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 30000,
				ActiveFrac: 2.5, ExchangeFrac: 0, Exchanges: 0,
				ContractFrac: 0, CreationFrac: 0, InternalDepth: 0, Contracts: 0,
				HotReceiverFrac: 0, HotReceivers: 0},
		},
	}
}

// ShardHotShardProfile models a skewed hot shard: most transactions are
// plain transfers into one or two hot receiver addresses, so whichever
// shard owns those addresses absorbs nearly every cross-shard write. At
// key level the hot balances serialise the cross-shard commit; at
// operation level the credits are blind deltas that merge commutatively
// across shards, so the skew costs (almost) nothing.
func ShardHotShardProfile() Profile {
	return Profile{
		Name: "Shard Hot-Shard", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: false, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "skew", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 30000,
				ActiveFrac: 2.5, ExchangeFrac: 0, Exchanges: 0,
				ContractFrac: 0, CreationFrac: 0, InternalDepth: 0, Contracts: 0,
				HotReceiverFrac: 0.7, HotReceivers: 2},
		},
	}
}

// ShardCrossHeavyProfile models contract-dominated traffic whose internal
// call chains span shards: deep router cascades against a popular contract
// population plus exchange deposits. Cross-shard transactions here carry
// real shared-storage conflicts that commute with nothing, so this is the
// adversarial workload for the cross-shard commit (high abort rate, the
// occasional whole-block fallback).
func ShardCrossHeavyProfile() Profile {
	return Profile{
		Name: "Shard Cross-Heavy", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: true, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "tangle", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 100, TxPerBlockJitter: 0.3, Users: 20000,
				ActiveFrac: 2.0, ExchangeFrac: 0.25, Exchanges: 2,
				ContractFrac: 0.45, CreationFrac: 0.01, InternalDepth: 2.2, Contracts: 60,
				HotReceiverFrac: 0, HotReceivers: 0},
		},
	}
}

// ShardSkewProfile models a stationary consolidation skew: four sweep bots
// (exchange consolidation scripts) issue most of the block as nonce chains
// into their fixed collectors, over a p2p background. Under static FNV
// assignment a bot and its collector usually live on different shards, so
// the sweeps dominate the cross-shard merge; the hotspot never moves, so a
// single learned placement (bot co-located with its collector, pairs
// spread across shards) recovers the loss for the rest of the history.
func ShardSkewProfile() Profile {
	return Profile{
		Name: "Shard Skew", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: false, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			{Name: "skew", Weight: 1, StartTime: jan1(2020), BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 25000,
				ActiveFrac: 2.5, ExchangeFrac: 0, Exchanges: 0,
				ContractFrac: 0, CreationFrac: 0, InternalDepth: 0, Contracts: 0,
				HotReceiverFrac: 0, HotReceivers: 0,
				HotSenderFrac: 0.6, HotSenders: 4, HotSenderRotate: 0},
		},
	}
}

// ShardDriftProfile models a drifting consolidation hotspot: the same
// sweep-bot traffic as Shard Skew, but the active bot window rotates onto
// four fresh bot/collector pairs at every era boundary — yesterday's
// placement is worthless tomorrow. This is the E11 headline workload: a
// static assignment pays the cross-shard merge on every era, an adaptive
// assignment re-learns the pairs within an epoch or two of each drift and
// pays only the migration.
func ShardDriftProfile() Profile {
	era := func(name string, start int64, rotate int) Era {
		return Era{Name: name, Weight: 1, StartTime: start, BlockInterval: 15,
			TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 25000,
			ActiveFrac: 2.5, ExchangeFrac: 0, Exchanges: 0,
			ContractFrac: 0, CreationFrac: 0, InternalDepth: 0, Contracts: 0,
			HotReceiverFrac: 0, HotReceivers: 0,
			HotSenderFrac: 0.6, HotSenders: 4, HotSenderRotate: rotate}
	}
	return Profile{
		Name: "Shard Drift", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: false, DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []Era{
			era("wave1", jan1(2020), 0),
			era("wave2", jan1(2020)+90*86400, 4),
			era("wave3", jan1(2020)+180*86400, 8),
			era("wave4", jan1(2020)+270*86400, 12),
		},
	}
}

// ZilliqaProfile models Zilliqa's 2019 mainnet (~2.2M transactions over
// ~360K tx-blocks): a young sharded chain whose traffic is dominated by a
// handful of addresses, giving it the highest conflict rates of the seven
// (paper Figure 7) — the paper attributes this to workload characteristics,
// not to sharding itself.
func ZilliqaProfile() Profile {
	return Profile{
		Name: "Zilliqa", Model: Account, Consensus: "PoW+Sharding",
		SmartContracts: true, DataSource: "Custom client", LaunchYear: 2019,
		Eras: []Era{
			{Name: "2019H1", Weight: 1, StartTime: jan1(2019) + 31*86400, BlockInterval: 40,
				TxPerBlock: 5, TxPerBlockJitter: 1.2, Users: 600,
				ActiveFrac: 0.25, ExchangeFrac: 0.62, Exchanges: 1,
				ContractFrac: 0.05, CreationFrac: 0.01, InternalDepth: 1.1, Contracts: 15},
			{Name: "2019H2", Weight: 1, StartTime: jan1(2019) + 182*86400, BlockInterval: 40,
				TxPerBlock: 7, TxPerBlockJitter: 1.1, Users: 900,
				ActiveFrac: 0.25, ExchangeFrac: 0.60, Exchanges: 2,
				ContractFrac: 0.07, CreationFrac: 0.01, InternalDepth: 1.2, Contracts: 25},
		},
	}
}
