package chainsim

import (
	"fmt"
	"math"
	"sort"

	"txconcur/internal/account"
	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// Account-model generator notes.
//
// In the account data model the TDG's nodes are addresses, so conflicts come
// from address sharing *within a block*: repeated senders (pools, bots),
// popular receivers (exchanges — the paper's Poloniex example in Figure 1b),
// popular contracts, and internal call targets (shared tokens). The
// generator reproduces each mechanism:
//
//   - a per-block active sender set whose size (ActiveFrac × transactions)
//     controls sender reuse and with it the single-transaction conflict
//     rate;
//   - exchange deposits (ExchangeFrac) that agglomerate into the block's
//     largest connected component, controlling the group conflict rate;
//   - contract calls (ContractFrac) against a Zipf-popular contract
//     population, with router contracts emitting real internal transactions
//     through the VM;
//   - contract creations (CreationFrac) from a rotating developer pool:
//     high-gas and usually unconflicted, which reproduces the paper's
//     observation that the gas-weighted conflict rate sits below the
//     transaction-weighted one (§IV-A).

// maxUserPool caps the simulated user population. Within-block conflict
// statistics depend on the Zipf head of the population, which is stable
// beyond this size; the cap keeps memory flat for late Ethereum eras.
const maxUserPool = 50_000

// userEndowment is the genesis balance of every simulated account.
const userEndowment account.Amount = 1 << 42

// devPoolSize is the number of rotating developer accounts used for
// contract creations.
const devPoolSize = 256

// contractKind distinguishes the deployed contract archetypes.
type contractKind int

const (
	// kindToken writes one storage slot keyed by the caller: no internal
	// transactions (an ERC20-style transfer bookkeeping).
	kindToken contractKind = iota + 1
	// kindRouter updates a usage counter and calls one or two other
	// contracts: one or two internal transactions per invocation.
	kindRouter
	// kindDeep calls a router, which calls further — internal chains of
	// depth ≥ 2 like the Figure 1b ElcoinDb cascade.
	kindDeep
)

// deployedContract is one contract available to the workload.
type deployedContract struct {
	addr types.Address
	kind contractKind
}

// AcctGen generates a validated, VM-executed history for an account-model
// profile.
type AcctGen struct {
	profile Profile
	smp     *sampler
	chain   *account.Chain

	users     []types.Address
	nonces    []uint64
	userRawE  []float64 // per-user quantile for the home exchange
	userRawC  []float64 // per-user quantile for the favourite contract
	devs      []types.Address
	devNonces []uint64
	devNext   int
	exchanges []types.Address
	hot       []types.Address // hot receivers: credit-only, never send
	// Sweep bots and their paired collectors (bot i always pays
	// collectors[i]): the drifting-hotspot machinery of the adaptive
	// sharding workloads. Bots are dedicated senders outside the user
	// pool, so their nonce chains are not diluted by role reassignment.
	bots       []types.Address
	botNonces  []uint64
	collectors []types.Address
	contracts  []deployedContract
	miners     []types.Address

	schedule []int
	eraIdx   int
	eraPos   int
	time     int64
	prepared int // eras whose contracts have been deployed
}

// NewAcctGen prepares a generator for the given account profile; numBlocks
// history blocks are distributed across eras by weight.
func NewAcctGen(p Profile, numBlocks int, seed int64) (*AcctGen, error) {
	if p.Model != Account {
		return nil, fmt.Errorf("chainsim: profile %q is not account-model", p.Name)
	}
	if len(p.Eras) == 0 {
		return nil, fmt.Errorf("chainsim: profile %q has no eras", p.Name)
	}
	g := &AcctGen{
		profile:  p,
		smp:      newSampler(seed),
		chain:    account.NewChain(),
		schedule: eraSchedule(p, numBlocks),
		time:     p.Eras[0].StartTime,
	}

	maxUsers, maxExchanges, maxHot, maxBots := 0, 0, 0, 0
	for _, e := range p.Eras {
		if e.Users > maxUsers {
			maxUsers = e.Users
		}
		if e.Exchanges > maxExchanges {
			maxExchanges = e.Exchanges
		}
		if e.HotReceivers > maxHot {
			maxHot = e.HotReceivers
		}
		if n := e.HotSenderRotate + e.HotSenders; n > maxBots {
			maxBots = n
		}
	}
	if maxUsers > maxUserPool {
		maxUsers = maxUserPool
	}
	if maxUsers < 1 {
		maxUsers = 1
	}

	st := g.chain.State()
	g.users = make([]types.Address, maxUsers)
	g.nonces = make([]uint64, maxUsers)
	g.userRawE = make([]float64, maxUsers)
	g.userRawC = make([]float64, maxUsers)
	for i := range g.users {
		g.users[i] = types.AddressFromUint64("user/"+p.Name, uint64(i))
		st.AddBalance(g.users[i], userEndowment)
		g.userRawE[i] = g.smp.rng.Float64()
		g.userRawC[i] = g.smp.rng.Float64()
	}
	g.devs = make([]types.Address, devPoolSize)
	g.devNonces = make([]uint64, devPoolSize)
	for i := range g.devs {
		g.devs[i] = types.AddressFromUint64("dev/"+p.Name, uint64(i))
		st.AddBalance(g.devs[i], userEndowment)
	}
	g.exchanges = make([]types.Address, maxExchanges)
	for i := range g.exchanges {
		g.exchanges[i] = types.AddressFromUint64("exchange/"+p.Name, uint64(i))
	}
	g.hot = make([]types.Address, maxHot)
	for i := range g.hot {
		g.hot[i] = types.AddressFromUint64("hot/"+p.Name, uint64(i))
	}
	g.bots = make([]types.Address, maxBots)
	g.botNonces = make([]uint64, maxBots)
	g.collectors = make([]types.Address, maxBots)
	for i := range g.bots {
		g.bots[i] = types.AddressFromUint64("bot/"+p.Name, uint64(i))
		g.collectors[i] = types.AddressFromUint64("collect/"+p.Name, uint64(i))
		st.AddBalance(g.bots[i], userEndowment)
	}
	g.miners = make([]types.Address, 4)
	for i := range g.miners {
		g.miners[i] = types.AddressFromUint64("miner/"+p.Name, uint64(i))
	}
	st.DiscardJournal()

	g.deployEraContracts(0)
	return g, nil
}

// Chain exposes the validated chain built so far.
func (g *AcctGen) Chain() *account.Chain { return g.chain }

// Remaining reports how many history blocks are left to generate.
func (g *AcctGen) Remaining() int {
	n := 0
	for i, c := range g.schedule {
		if i > g.eraIdx {
			n += c
		} else if i == g.eraIdx {
			n += c - g.eraPos
		}
	}
	return n
}

// deployEraContracts installs the popular-contract population of the given
// era directly into state (pre-history deployments; in-history creations go
// through regular transactions). Contracts deployed for earlier eras stay.
func (g *AcctGen) deployEraContracts(eraIdx int) {
	era := &g.profile.Eras[eraIdx]
	st := g.chain.State()
	for len(g.contracts) < era.Contracts {
		i := len(g.contracts)
		addr := types.AddressFromUint64("contract/"+g.profile.Name, uint64(i))
		var kind contractKind
		switch roll := g.smp.rng.Float64(); {
		case roll < 0.5 || i%clusterSize < 2:
			kind = kindToken
		case roll < 0.8:
			kind = kindRouter
		default:
			kind = kindDeep
		}
		st.SetCode(addr, g.contractCode(kind, i, era))
		g.contracts = append(g.contracts, deployedContract{addr: addr, kind: kind})
	}
	st.DiscardJournal()
	g.prepared = eraIdx + 1
}

// clusterSize partitions the contract population into disjoint ecosystems:
// a router only references contracts of its own cluster. Real contract
// ecosystems (a DEX and its tokens, the Figure 1b ElcoinDb cascade) are
// internally dense but externally disconnected; without the partition,
// overlapping reference windows would percolate the whole contract space
// into one artificial mega-component.
const clusterSize = 12

// contractCode assembles the archetype's code. Routers and deep contracts
// reference earlier contracts of their own cluster through their address
// tables, so internal call chains stay inside the ecosystem and terminate
// at tokens. The era's InternalDepth scales the router fan-out.
func (g *AcctGen) contractCode(kind contractKind, idx int, era *Era) []byte {
	recent := func() types.Address {
		lo := idx - idx%clusterSize
		if lo >= idx {
			// First contract of its cluster: self-contained token.
			return types.AddressFromUint64("contract/"+g.profile.Name, uint64(idx))
		}
		return g.contracts[lo+g.smp.rng.Intn(idx-lo)].addr
	}
	switch kind {
	case kindRouter:
		// Total calls scale with the era's InternalDepth, but they hit only
		// one or two *distinct* targets (batch operations repeat calls to
		// the same token): internal-transaction volume and component
		// bridging are controlled independently.
		fan := int(2*era.InternalDepth) + g.smp.geometric(0.5)
		if fan < 1 {
			fan = 1
		}
		if fan > 10 {
			fan = 10
		}
		distinct := 1 + g.smp.rng.Intn(2)
		if distinct > fan {
			distinct = fan
		}
		targets := make([]types.Address, distinct)
		for i := range targets {
			targets[i] = recent()
		}
		asm := vm.NewAsm().
			// Usage counter in slot 0.
			Push(0).Op(vm.OpSload).Push(1).Op(vm.OpAdd).
			Push(0).Op(vm.OpSwap, vm.OpSstore)
		for i := 0; i < fan; i++ {
			asm.Push(0).Op(vm.OpArg).PushAddr(i%distinct).Op(vm.OpCall, vm.OpPop)
		}
		asm.Op(vm.OpStop)
		return vm.EncodeContract(vm.Contract{Code: asm.Bytes(), AddrTable: targets})
	case kindDeep:
		// Call the cluster's most recent router (which fans out further)
		// plus a token, like the Figure 1b cascade.
		router := recent()
		for j := idx - 1; j >= idx-idx%clusterSize && j >= 0; j-- {
			if g.contracts[j].kind == kindRouter {
				router = g.contracts[j].addr
				break
			}
		}
		code := vm.NewAsm().
			Push(1).Op(vm.OpSload).Push(1).Op(vm.OpAdd).
			Push(1).Op(vm.OpSwap, vm.OpSstore).
			Push(0).Op(vm.OpArg).PushAddr(0).Op(vm.OpCall, vm.OpPop).
			Push(0).Op(vm.OpArg).PushAddr(1).Op(vm.OpCall, vm.OpPop).
			Op(vm.OpStop).
			Bytes()
		return vm.EncodeContract(vm.Contract{Code: code, AddrTable: []types.Address{router, recent()}})
	default: // kindToken
		// storage[fingerprint(caller)] = arg: per-user balance bookkeeping.
		code := vm.NewAsm().
			Op(vm.OpCaller, vm.OpArg, vm.OpSstore, vm.OpStop).
			Bytes()
		return vm.EncodeContract(vm.Contract{Code: code})
	}
}

// era returns the interpolated parameters for the current position.
func (g *AcctGen) era() Era {
	cur := &g.profile.Eras[g.eraIdx]
	var next *Era
	if g.eraIdx+1 < len(g.profile.Eras) {
		next = &g.profile.Eras[g.eraIdx+1]
	}
	frac := 0.0
	if c := g.schedule[g.eraIdx]; c > 1 {
		frac = float64(g.eraPos) / float64(c-1)
	}
	return interpolate(cur, next, frac)
}

// Next generates, executes and appends the next history block, returning it
// with its receipts. The third return value is false when the schedule is
// exhausted.
//
// Era transitions (including the direct deployment of the new era's
// contract population) happen at the *end* of the call, so that between
// calls Chain().State() is exactly the pre-state of the next block —
// callers may snapshot it and replay the returned block against the copy.
func (g *AcctGen) Next() (*account.Block, []*account.Receipt, bool, error) {
	if g.eraIdx >= len(g.schedule) {
		return nil, nil, false, nil
	}
	era := g.era()
	g.eraPos++
	g.time += era.BlockInterval

	blk := g.buildBlock(&era)
	receipts, err := g.chain.Append(blk)
	if err != nil {
		return nil, nil, false, fmt.Errorf("chainsim: generated invalid block %d: %w", blk.Height, err)
	}

	// Advance to the next era, deploying its contracts now so the state
	// already reflects the next block's pre-state.
	for g.eraIdx < len(g.schedule) && g.eraPos >= g.schedule[g.eraIdx] {
		g.eraIdx++
		g.eraPos = 0
		if g.eraIdx < len(g.profile.Eras) {
			if t := g.profile.Eras[g.eraIdx].StartTime; t > g.time {
				g.time = t
			}
			g.deployEraContracts(g.eraIdx)
		}
	}
	return blk, receipts, true, nil
}

// userPool returns the effective user pool size for the era.
func (g *AcctGen) userPool(era *Era) int {
	n := era.Users
	if n > len(g.users) {
		n = len(g.users)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// buildBlock assembles one block of transactions according to the era
// parameters. Nonces are assigned from the generator's local counters,
// which mirror the chain state exactly because only this generator sends
// transactions.
//
// Senders are role-specialised within a block (a bot deposits, a trader
// calls its exchange, a user pays peers), with per-user stable attributes:
// every user has a fixed home exchange and favourite contract, Zipf-
// distributed across the population. This mirrors observed behaviour and
// prevents single senders from artificially bridging the block's largest
// components.
func (g *AcctGen) buildBlock(era *Era) *account.Block {
	target := g.smp.txCount(era.TxPerBlock, era.TxPerBlockJitter)
	pool := g.userPool(era)

	// Role budgets; the random remainder keeps expectations exact on small
	// blocks.
	frac := func(f float64) int { return int(f*float64(target) + g.smp.rng.Float64()) }
	nCreate := frac(era.CreationFrac)
	nContract := frac(era.ContractFrac)
	nDeposit := frac(era.ExchangeFrac)
	// The hot-receiver and sweep-bot draws happen only when their knobs are
	// set, so profiles without them consume exactly the historical random
	// stream.
	nHot := 0
	if era.HotReceiverFrac > 0 && era.HotReceivers > 0 && len(g.hot) > 0 {
		nHot = frac(era.HotReceiverFrac)
	}
	nSweep := 0
	if era.HotSenderFrac > 0 && era.HotSenders > 0 && len(g.bots) > 0 {
		nSweep = frac(era.HotSenderFrac)
	}
	if len(g.contracts) == 0 {
		nContract = 0
	}
	if len(g.exchanges) == 0 || era.Exchanges == 0 {
		nDeposit = 0
	}
	if nCreate+nContract+nDeposit+nHot+nSweep > target {
		nSweep = target - nCreate - nContract - nDeposit - nHot
		if nSweep < 0 {
			nHot += nSweep
			nSweep = 0
		}
		if nHot < 0 {
			nDeposit += nHot
			nHot = 0
		}
		if nDeposit < 0 {
			nContract += nDeposit
			nDeposit = 0
		}
		if nContract < 0 {
			nCreate += nContract
			nContract = 0
		}
	}
	nP2P := target - nCreate - nContract - nDeposit - nHot - nSweep

	// Active sender set: distinct uniform draws from the pool, partitioned
	// by role in proportion to the role budgets.
	activeN := int(math.Round(era.ActiveFrac * float64(target)))
	if activeN < 1 {
		activeN = 1
	}
	active := make([]int, activeN)
	for i := range active {
		active[i] = g.smp.rng.Intn(pool)
	}
	nonCreate := nContract + nDeposit + nHot + nP2P
	segment := func(role, total int) []int {
		if nonCreate == 0 || total == 0 {
			return active[:1]
		}
		size := activeN * total / nonCreate
		if size < 1 {
			size = 1
		}
		if role+size > activeN {
			role = activeN - size
			if role < 0 {
				role, size = 0, activeN
			}
		}
		return active[role : role+size]
	}
	off := 0
	depositSenders := segment(off, nDeposit)
	off += len(depositSenders)
	if off >= activeN {
		off = activeN - 1
	}
	contractSenders := segment(off, nContract)
	off += len(contractSenders)
	if off >= activeN {
		off = activeN - 1
	}
	// The hot-sender segment exists only when hot transfers do, so the p2p
	// segment (and the random stream) is untouched for legacy profiles.
	hotSenders := active[:0]
	if nHot > 0 {
		hotSenders = segment(off, nHot)
		off += len(hotSenders)
		if off >= activeN {
			off = activeN - 1
		}
	}
	p2pSenders := segment(off, nP2P)

	exchQ := newZipfQuantile(1.5, mini(era.Exchanges, len(g.exchanges)))
	contractQ := newZipfQuantile(1.05, len(g.contracts))

	txs := make([]*account.Transaction, 0, target)
	for i := 0; i < nDeposit; i++ {
		s := depositSenders[g.smp.rng.Intn(len(depositSenders))]
		home := exchQ.index(g.userRawE[s])
		txs = append(txs, g.transferTx(s, g.exchanges[home]))
	}
	for i := 0; i < nContract; i++ {
		s := contractSenders[g.smp.rng.Intn(len(contractSenders))]
		c := g.contracts[contractQ.index(g.userRawC[s])]
		txs = append(txs, g.callTx(s, c.addr))
	}
	if nHot > 0 {
		// Hot transfers: a per-transaction Zipf draw across the hot pool —
		// a flash crowd converges on the head address, a token sale spreads
		// a little further down.
		hotQ := newZipfQuantile(1.3, mini(era.HotReceivers, len(g.hot)))
		for i := 0; i < nHot; i++ {
			s := hotSenders[g.smp.rng.Intn(len(hotSenders))]
			txs = append(txs, g.transferTx(s, g.hot[hotQ.index(g.smp.rng.Float64())]))
		}
	}
	if nSweep > 0 {
		// Sweep chains: each draw picks a bot from the era's active window
		// (the rotation offset is what makes the hotspot drift between
		// eras) and pays its paired collector, extending the bot's nonce
		// chain.
		lo := era.HotSenderRotate
		if lo >= len(g.bots) {
			lo = len(g.bots) - 1
		}
		if lo < 0 {
			lo = 0
		}
		width := mini(era.HotSenders, len(g.bots)-lo)
		for i := 0; i < nSweep; i++ {
			txs = append(txs, g.sweepTx(lo+g.smp.rng.Intn(width)))
		}
	}
	for i := 0; i < nP2P; i++ {
		s := p2pSenders[g.smp.rng.Intn(len(p2pSenders))]
		recv := g.users[g.smp.rng.Intn(pool)]
		txs = append(txs, g.transferTx(s, recv))
	}
	for i := 0; i < nCreate; i++ {
		txs = append(txs, g.creationTx(era))
	}
	// Shuffle so block order does not encode the role (realistic and
	// irrelevant to the TDG, which is order-free in the account model).
	g.smp.rng.Shuffle(len(txs), func(i, j int) { txs[i], txs[j] = txs[j], txs[i] })
	// Restore per-sender nonce order after the shuffle: transactions from
	// the same sender must appear in increasing nonce order to execute.
	fixNonceOrder(txs)

	return &account.Block{
		Height:   uint64(g.chain.Height()),
		PrevHash: g.chain.TipHash(),
		Time:     g.time,
		Coinbase: g.miners[g.smp.rng.Intn(len(g.miners))],
		Txs:      txs,
	}
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fixNonceOrder restores increasing nonce order per sender while keeping
// transaction positions otherwise intact: for each sender, the multiset of
// positions its transactions occupy is preserved and the transactions are
// placed into those positions in nonce order.
func fixNonceOrder(txs []*account.Transaction) {
	positions := make(map[types.Address][]int)
	for i, tx := range txs {
		positions[tx.From] = append(positions[tx.From], i)
	}
	for _, pos := range positions {
		if len(pos) < 2 {
			continue
		}
		group := make([]*account.Transaction, 0, len(pos))
		for _, p := range pos {
			group = append(group, txs[p])
		}
		sort.Slice(group, func(i, j int) bool { return group[i].Nonce < group[j].Nonce })
		for k, p := range pos {
			txs[p] = group[k]
		}
	}
}

// transferTx builds a plain value transfer from user index sender.
func (g *AcctGen) transferTx(sender int, to types.Address) *account.Transaction {
	tx := &account.Transaction{
		From:     g.users[sender],
		To:       to,
		Value:    account.Amount(1000 + g.smp.rng.Intn(100_000)),
		Nonce:    g.nonces[sender],
		GasLimit: account.GasTx,
		GasPrice: 1 + account.Amount(g.smp.rng.Intn(5)),
	}
	g.nonces[sender]++
	return tx
}

// sweepTx builds one step of bot b's consolidation stream: a plain value
// transfer into the bot's fixed collector address, continuing its nonce
// chain.
func (g *AcctGen) sweepTx(b int) *account.Transaction {
	tx := &account.Transaction{
		From:     g.bots[b],
		To:       g.collectors[b],
		Value:    account.Amount(500 + g.smp.rng.Intn(50_000)),
		Nonce:    g.botNonces[b],
		GasLimit: account.GasTx,
		GasPrice: 1 + account.Amount(g.smp.rng.Intn(5)),
	}
	g.botNonces[b]++
	return tx
}

// callTx builds a contract invocation from user index sender.
func (g *AcctGen) callTx(sender int, contract types.Address) *account.Transaction {
	tx := &account.Transaction{
		From:     g.users[sender],
		To:       contract,
		Value:    0,
		Nonce:    g.nonces[sender],
		Arg:      g.smp.rng.Uint64() % 1_000_000,
		GasLimit: 2_000_000,
		GasPrice: 1 + account.Amount(g.smp.rng.Intn(5)),
	}
	g.nonces[sender]++
	return tx
}

// creationTx builds a contract deployment from the rotating developer pool.
// The deployed code is a token-like contract with size jitter, so creations
// carry much more gas than transfers while rarely conflicting — the paper's
// explanation for the gap between the gas- and transaction-weighted conflict
// rates.
func (g *AcctGen) creationTx(era *Era) *account.Transaction {
	dev := g.devNext % len(g.devs)
	g.devNext++
	asm := vm.NewAsm().Op(vm.OpCaller, vm.OpArg, vm.OpSstore)
	// Code-size jitter: dead code after STOP.
	pad := 150 + g.smp.rng.Intn(450)
	asm.Op(vm.OpStop)
	for i := 0; i < pad; i++ {
		asm.Op(vm.OpPC)
	}
	code := vm.EncodeContract(vm.Contract{Code: asm.Bytes()})
	intrinsic := account.GasTx + account.GasTxCreate + account.GasCodeByte*uint64(len(code))
	tx := &account.Transaction{
		From:     g.devs[dev],
		Value:    0,
		Nonce:    g.devNonces[dev],
		GasLimit: intrinsic + 1000,
		GasPrice: 1 + account.Amount(g.smp.rng.Intn(5)),
		Code:     code,
	}
	g.devNonces[dev]++
	return tx
}
