package mvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore[string, int]()
	if err := s.Commit(1, map[string]int{"a": 10, "b": 20}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2, map[string]int{"a": 11}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(5, map[string]int{"a": 12, "c": 30}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		ts   uint64
		key  string
		want int
		ok   bool
	}{
		{0, "a", 0, false}, // before any commit: fall through to base
		{1, "a", 10, true},
		{1, "b", 20, true},
		{2, "a", 11, true},
		{2, "b", 20, true}, // unchanged key resolves to the older version
		{3, "a", 11, true}, // gap timestamps see the newest ≤ ts
		{5, "a", 12, true},
		{9, "c", 30, true},
		{4, "c", 0, false},
	}
	for _, c := range cases {
		got, ok := s.Get(c.key, c.ts)
		if got != c.want || ok != c.ok {
			t.Fatalf("Get(%q, %d) = %d,%v, want %d,%v", c.key, c.ts, got, ok, c.want, c.ok)
		}
	}

	if !s.ChangedSince("a", 2) {
		t.Fatal("a changed at ts 5, ChangedSince(2) must be true")
	}
	if s.ChangedSince("a", 5) {
		t.Fatal("nothing after ts 5 wrote a")
	}
	if s.ChangedSince("missing", 0) {
		t.Fatal("unknown keys never changed")
	}
}

func TestCommitMonotonic(t *testing.T) {
	s := NewStore[string, int]()
	if err := s.Commit(3, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3, nil); !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("repeat ts: err = %v, want ErrNonMonotonic", err)
	}
	if err := s.Commit(2, nil); !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("older ts: err = %v, want ErrNonMonotonic", err)
	}
	// An empty commit is legal and advances the clock.
	if err := s.Commit(4, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Latest(); got != 4 {
		t.Fatalf("Latest = %d, want 4", got)
	}
}

func TestVersionGC(t *testing.T) {
	s := NewStore[string, int]()
	for ts := uint64(1); ts <= 10; ts++ {
		if err := s.Commit(ts, map[string]int{"hot": int(ts), "cold": 1}); err != nil {
			t.Fatal(err)
		}
	}
	// "cold" is rewritten every commit too, so 20 versions are live.
	if got := s.StoreStats().Versions; got != 20 {
		t.Fatalf("live versions = %d, want 20", got)
	}

	// A pinned snapshot at 4 blocks reclamation of the versions it reads
	// (white-box: register the pin directly, as PinLatest always pins the
	// newest timestamp).
	snap := s.At(4)
	s.pinMu.Lock()
	s.pins[4]++
	s.pinMu.Unlock()

	reclaimed := s.TruncateBelow(10)
	// Cut is min(10, pinned 4) = 4: versions 1–3 of each key go, version 4
	// (the newest ≤ 4) and 5–10 stay.
	if reclaimed != 6 {
		t.Fatalf("reclaimed = %d, want 6", reclaimed)
	}
	if v, ok := snap.Get("hot"); !ok || v != 4 {
		t.Fatalf("pinned-era read = %d,%v, want 4,true", v, ok)
	}

	// Release the pin; everything below the newest version is collectible.
	s.pinMu.Lock()
	delete(s.pins, 4)
	s.pinMu.Unlock()
	s.TruncateBelow(10)
	st := s.StoreStats()
	if st.Versions != 2 {
		t.Fatalf("live versions after full GC = %d, want 2", st.Versions)
	}
	if st.Reclaimed != 18 {
		t.Fatalf("cumulative reclaimed = %d, want 18", st.Reclaimed)
	}
	if v, ok := s.Get("hot", 10); !ok || v != 10 {
		t.Fatalf("newest version must survive GC, got %d,%v", v, ok)
	}
	// Fully collected chains leave the dirty set, so repeated GC with no
	// new commits is O(1) (white-box).
	if len(s.multi) != 0 {
		t.Fatalf("dirty set not drained after full GC: %d keys", len(s.multi))
	}
	if got := s.TruncateBelow(10); got != 0 {
		t.Fatalf("idle GC reclaimed %d versions", got)
	}
}

func TestPinLatestBlocksGC(t *testing.T) {
	s := NewStore[string, int]()
	if err := s.Commit(1, map[string]int{"k": 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.PinLatest()
	if snap.TS() != 1 {
		t.Fatalf("pinned ts = %d, want 1", snap.TS())
	}
	if err := s.Commit(2, map[string]int{"k": 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.TruncateBelow(2); got != 0 {
		t.Fatalf("reclaimed %d versions under an active pin, want 0", got)
	}
	if v, _ := snap.Get("k"); v != 1 {
		t.Fatalf("pinned snapshot reads %d, want 1", v)
	}
	snap.Release()
	snap.Release() // idempotent
	if got := s.TruncateBelow(2); got != 1 {
		t.Fatalf("reclaimed = %d after release, want 1", got)
	}
}

// TestConcurrentReadersDuringCommit hammers the lock-free read path while a
// writer commits and garbage-collects: every reader pins a snapshot and
// must observe a frozen, internally consistent view — for keys written
// together, values from the same commit.
func TestConcurrentReadersDuringCommit(t *testing.T) {
	s := NewStore[string, int]()
	const commits = 200
	const readers = 8

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.PinLatest()
				a, okA := snap.Get("a")
				b, okB := snap.Get("b")
				if okA != okB || a != b {
					t.Errorf("torn snapshot at ts %d: a=%d(%v) b=%d(%v)", snap.TS(), a, okA, b, okB)
					snap.Release()
					return
				}
				if c, ok := s.Get("a", snap.TS()+1_000_000); ok && c < a {
					t.Errorf("future read older than pinned read: %d < %d", c, a)
					snap.Release()
					return
				}
				snap.Release()
			}
		}()
	}

	// Writer: "a" and "b" always move together; GC chases the committer.
	for ts := uint64(1); ts <= commits; ts++ {
		if err := s.Commit(ts, map[string]int{"a": int(ts), "b": int(ts)}); err != nil {
			t.Fatal(err)
		}
		s.TruncateBelow(ts)
	}
	close(stop)
	wg.Wait()

	if v, ok := s.Get("a", commits); !ok || v != commits {
		t.Fatalf("final value = %d,%v, want %d,true", v, ok, commits)
	}
}

// TestManyKeysStats exercises chain creation under concurrency and the
// occupancy counters.
func TestManyKeysStats(t *testing.T) {
	s := NewStore[string, int]()
	ts := uint64(0)
	for round := 0; round < 3; round++ {
		ts++
		w := make(map[string]int, 100)
		for i := 0; i < 100; i++ {
			w[fmt.Sprintf("k%03d", i)] = round
		}
		if err := s.Commit(ts, w); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StoreStats()
	if st.Keys != 100 || st.Versions != 300 || st.Latest != 3 {
		t.Fatalf("stats = %+v", st)
	}

	seen := 0
	s.RangeLatest(func(k string, v int) bool {
		if v != 2 {
			t.Fatalf("RangeLatest(%q) = %d, want newest round 2", k, v)
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Fatalf("RangeLatest visited %d keys, want 100", seen)
	}
}
