package mvstore

import (
	"sync"
	"testing"
)

// TestRangeResolvedAt: the fixed-timestamp range sees exactly the newest
// version ≤ ts per key — absolute values materialised, deltas folded onto
// their anchor, unanchored delta runs surfaced as such — and never a
// version above ts.
func TestRangeResolvedAt(t *testing.T) {
	s := NewStoreDelta[string, int](func(onto, delta int) int { return onto + delta })
	mustCommit := func(ts uint64, writes map[string]Write[int]) {
		t.Helper()
		if err := s.CommitWrites(ts, writes); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(1, map[string]Write[int]{
		"a": {Kind: Put, Val: 10},
		"d": {Kind: DeltaAdd, Val: 5}, // no anchor: pure delta run
	})
	mustCommit(2, map[string]Write[int]{
		"a": {Kind: DeltaAdd, Val: 1},
		"b": {Kind: Put, Val: 20},
	})
	mustCommit(4, map[string]Write[int]{
		"a": {Kind: Put, Val: 100}, // must be invisible at ts ≤ 3
		"d": {Kind: DeltaAdd, Val: 7},
	})

	collect := func(ts uint64) (map[string]int, map[string]bool, map[string]uint64) {
		vals := make(map[string]int)
		anchored := make(map[string]bool)
		newest := make(map[string]uint64)
		s.RangeResolvedAt(ts, func(k string, val int, anch bool, ns uint64) bool {
			vals[k] = val
			anchored[k] = anch
			newest[k] = ns
			return true
		})
		return vals, anchored, newest
	}

	// At ts 3 (a gap timestamp): a = 10+1 folded, b = 20, d = unanchored 5.
	vals, anchored, newest := collect(3)
	if len(vals) != 3 {
		t.Fatalf("ts 3 visited %d keys, want 3: %v", len(vals), vals)
	}
	if vals["a"] != 11 || !anchored["a"] || newest["a"] != 2 {
		t.Fatalf("a at ts 3: %d anchored=%v newest=%d", vals["a"], anchored["a"], newest["a"])
	}
	if vals["b"] != 20 || !anchored["b"] || newest["b"] != 2 {
		t.Fatalf("b at ts 3: %d anchored=%v newest=%d", vals["b"], anchored["b"], newest["b"])
	}
	if vals["d"] != 5 || anchored["d"] || newest["d"] != 1 {
		t.Fatalf("d at ts 3: %d anchored=%v newest=%d", vals["d"], anchored["d"], newest["d"])
	}

	// At ts 4: the newer versions become visible.
	vals, anchored, _ = collect(4)
	if vals["a"] != 100 || !anchored["a"] {
		t.Fatalf("a at ts 4: %d anchored=%v", vals["a"], anchored["a"])
	}
	if vals["d"] != 12 || anchored["d"] {
		t.Fatalf("d at ts 4: %d anchored=%v", vals["d"], anchored["d"])
	}

	// At ts 0: nothing committed yet is visible.
	vals, _, _ = collect(0)
	if len(vals) != 0 {
		t.Fatalf("ts 0 visited %d keys, want 0", len(vals))
	}

	// Early termination: a false return stops the walk.
	visited := 0
	s.RangeResolvedAt(4, func(string, int, bool, uint64) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("false return visited %d keys, want 1", visited)
	}
}

// TestRangeResolvedAtConcurrentCommits: with ts pinned, the fixed-ts range
// is stable while newer commits land concurrently — the checkpoint
// worker's exact access pattern.
func TestRangeResolvedAtConcurrentCommits(t *testing.T) {
	s := NewStore[int, int]()
	for ts := uint64(1); ts <= 8; ts++ {
		writes := make(map[int]int)
		for k := 0; k < 32; k++ {
			writes[k] = k*1000 + int(ts)
		}
		if err := s.Commit(ts, writes); err != nil {
			t.Fatal(err)
		}
	}
	pin := s.PinAt(8)
	defer pin.Release()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := uint64(9); ; ts++ {
			select {
			case <-stop:
				return
			default:
			}
			writes := make(map[int]int)
			for k := 0; k < 32; k++ {
				writes[k] = k*1000 + int(ts)
			}
			if err := s.Commit(ts, writes); err != nil {
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		seen := 0
		s.RangeResolvedAt(8, func(k, val int, anchored bool, newest uint64) bool {
			if val != k*1000+8 || newest != 8 || !anchored {
				t.Errorf("key %d at ts 8: val %d newest %d", k, val, newest)
			}
			seen++
			return true
		})
		if seen != 32 {
			t.Errorf("round %d: visited %d keys, want 32", round, seen)
		}
	}
	close(stop)
	wg.Wait()
}
