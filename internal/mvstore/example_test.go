package mvstore_test

import (
	"fmt"

	"txconcur/internal/mvstore"
)

// ExampleStore shows the snapshot semantics: a reader at timestamp T sees
// the newest version of every key committed at or before T, regardless of
// later commits.
func ExampleStore() {
	s := mvstore.NewStore[string, int]()
	_ = s.Commit(1, map[string]int{"alice": 100})
	_ = s.Commit(2, map[string]int{"alice": 70, "bob": 30})

	snap := s.At(1) // the world as of commit 1
	fmt.Println(snap.Get("alice"))
	fmt.Println(snap.Get("bob"))
	fmt.Println(s.Get("alice", 2))
	fmt.Println(s.ChangedSince("alice", 1))
	// Output:
	// 100 true
	// 0 false
	// 70 true
	// true
}

// ExampleStore_PinLatest shows epoch-style garbage collection: a pinned
// snapshot keeps the versions it can see alive; once released, everything
// below the newest surviving version is reclaimed.
func ExampleStore_PinLatest() {
	s := mvstore.NewStore[string, int]()
	for ts := uint64(1); ts <= 3; ts++ {
		_ = s.Commit(ts, map[string]int{"k": int(ts) * 10})
	}

	snap := s.PinLatest() // pins timestamp 3
	_ = s.Commit(4, map[string]int{"k": 40})
	fmt.Println("reclaimed under pin:", s.TruncateBelow(4))
	v, _ := snap.Get("k")
	fmt.Println("pinned read:", v)

	snap.Release()
	fmt.Println("reclaimed after release:", s.TruncateBelow(4))
	fmt.Println("live versions:", s.StoreStats().Versions)
	// Output:
	// reclaimed under pin: 2
	// pinned read: 30
	// reclaimed after release: 1
	// live versions: 1
}
