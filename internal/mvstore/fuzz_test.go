package mvstore

import "testing"

// FuzzDeltaChains drives a delta store through an arbitrary interleaving of
// absolute commits, delta commits, pins, and GC passes, checking every
// key's Resolve at the tip — and at one pinned timestamp — against a plain
// map model after each step. This is the model-checking counterpart of the
// permutation/GC property tests: the byte stream chooses the schedule.
func FuzzDeltaChains(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x07, 0x99, 0x10, 0x05, 0x33, 0xfe, 0x06, 0x00})
	f.Add([]byte{0x05, 0x01, 0x05, 0x02, 0x05, 0x03, 0x06, 0xff, 0x00, 0x7f})
	f.Add([]byte{0x03, 0x80, 0x04, 0x81, 0x03, 0x82, 0x06, 0x01, 0x07, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nKeys = 4
		const base = int64(10_000)
		s := NewStoreDelta[int, int64](func(a, b int64) int64 { return a + b })

		type cell struct {
			anchored bool
			val      int64
		}
		model := make(map[int]cell, nKeys)
		resolve := func(c cell) int64 {
			if c.anchored {
				return c.val
			}
			return base + c.val
		}
		var history []map[int]cell // model state per timestamp
		snapModel := func() map[int]cell {
			c := make(map[int]cell, nKeys)
			for k, v := range model {
				c[k] = v
			}
			return c
		}
		history = append(history, snapModel()) // ts 0

		var pin *Snapshot[int, int64]
		var pinTS uint64
		// gcFloor is the highest cut the collector has been allowed to
		// apply; pinning below it would violate PinAt's contract (a pin
		// cannot resurrect collected versions).
		var gcFloor uint64
		defer func() {
			if pin != nil {
				pin.Release()
			}
		}()

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], int64(int8(data[i+1]))
			key := int(op>>4) % nKeys
			ts := s.Latest()
			switch op % 8 {
			case 0, 1, 2: // delta commit
				if err := s.CommitWrites(ts+1, map[int]Write[int64]{key: {Kind: DeltaAdd, Val: arg}}); err != nil {
					t.Fatal(err)
				}
				c := model[key]
				c.val += arg
				model[key] = c
				history = append(history, snapModel())
			case 3, 4: // absolute commit
				if err := s.CommitWrites(ts+1, map[int]Write[int64]{key: {Kind: Put, Val: arg}}); err != nil {
					t.Fatal(err)
				}
				model[key] = cell{anchored: true, val: arg}
				history = append(history, snapModel())
			case 5: // empty commit (an empty block still advances the clock)
				if err := s.CommitWrites(ts+1, nil); err != nil {
					t.Fatal(err)
				}
				history = append(history, snapModel())
			case 6: // GC at an arbitrary horizon
				horizon := uint64(arg&0x3f) % (ts + 2)
				s.TruncateBelow(horizon)
				// The effective cut never exceeds the tip (there is nothing
				// newer to collect below) and never exceeds the pin.
				cut := horizon
				if cut > ts {
					cut = ts
				}
				if pin != nil && pinTS < cut {
					cut = pinTS
				}
				if cut > gcFloor {
					gcFloor = cut
				}
			case 7: // move the pin (never below what GC already collected)
				if pin != nil {
					pin.Release()
				}
				pinTS = gcFloor + uint64(arg&0x3f)%(ts-gcFloor+1)
				pin = s.PinAt(pinTS)
			}

			tip := s.Latest()
			for k := 0; k < nKeys; k++ {
				if got, want := s.Resolve(k, tip, base), resolve(history[tip][k]); got != want {
					t.Fatalf("step %d: Resolve(%d, tip=%d) = %d, want %d", i, k, tip, got, want)
				}
				if pin != nil {
					if got, want := pin.Resolve(k, base), resolve(history[pinTS][k]); got != want {
						t.Fatalf("step %d: pinned Resolve(%d, %d) = %d, want %d", i, k, pinTS, got, want)
					}
				}
			}
		}
		// Final sweep: collect everything below the tip (modulo the pin)
		// and re-verify the tip.
		tip := s.Latest()
		s.TruncateBelow(tip)
		for k := 0; k < nKeys; k++ {
			if got, want := s.Resolve(k, tip, base), resolve(history[tip][k]); got != want {
				t.Fatalf("post-GC: Resolve(%d, tip=%d) = %d, want %d", k, tip, got, want)
			}
		}
	})
}
