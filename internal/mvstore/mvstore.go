// Package mvstore implements a multi-version key-value state cache: every
// key carries a chain of timestamped versions, readers see a consistent
// snapshot of the store at any logical timestamp without taking locks, and
// superseded versions are reclaimed by an epoch-style garbage collector
// driven by the oldest pinned snapshot.
//
// The store exists to remove the single-version bottleneck of package stm:
// there, every commit bumps a global clock under one lock and invalidates
// concurrent readers, so execution and validation of consecutive blocks
// serialise on the store. With per-key version chains, block b+1 can
// execute optimistically against the snapshot left by block b-1 while block
// b is still validating and committing — the multi-version substrate behind
// the pipelined two-phase engine in package exec (Octopus-style two-phase
// pipelining; see docs/ARCHITECTURE.md).
//
// Concurrency contract:
//
//   - Get/ChangedSince/Snapshot.Get are lock-free: one atomic map load plus
//     a walk over immutable version nodes.
//   - Commit calls must carry strictly increasing timestamps and are
//     serialised by the store (the pipeline commits blocks in order, so
//     this costs nothing).
//   - A snapshot at timestamp T observes exactly the versions with ts ≤ T,
//     provided Commit(T, …) had returned before the snapshot was taken.
//   - TruncateBelow never reclaims versions visible to a pinned snapshot.
package mvstore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ErrNonMonotonic reports a commit whose timestamp does not exceed the
// store's latest committed timestamp.
var ErrNonMonotonic = errors.New("mvstore: commit timestamp not increasing")

// version is one immutable entry of a key's version chain: the value
// written at logical timestamp ts, linked to the previous (older) version.
// prev is atomic only so the garbage collector can unlink reclaimed tails
// while readers walk the chain.
type version[V any] struct {
	ts   uint64
	val  V
	prev atomic.Pointer[version[V]]
}

// keyChain is the per-key chain head. Newest version first.
type keyChain[V any] struct {
	head atomic.Pointer[version[V]]
}

// Store is a multi-version key-value cache. The zero value is not usable;
// call NewStore.
type Store[K comparable, V any] struct {
	chains sync.Map // K → *keyChain[V]

	// commitMu serialises writers (Commit) and the garbage collector.
	// Readers never take it.
	commitMu sync.Mutex
	latest   atomic.Uint64
	// multi tracks the keys whose chains hold more than one live version —
	// the only chains garbage collection can shorten — so TruncateBelow is
	// proportional to superseded keys, not to the whole key space. Guarded
	// by commitMu.
	multi map[K]struct{}

	// pinMu guards pins. PinLatest reads latest and registers the pin under
	// pinMu, and TruncateBelow computes the reclaim horizon under pinMu, so
	// a snapshot is either visible to the collector or taken after the
	// collection it could have raced with.
	pinMu sync.Mutex
	pins  map[uint64]int

	keys      atomic.Int64
	versions  atomic.Int64
	reclaimed atomic.Int64
}

// NewStore returns an empty store whose latest committed timestamp is 0:
// timestamp 0 denotes "before the first commit", so snapshots at 0 see
// nothing and fall through to whatever base state the caller layers under
// the cache.
func NewStore[K comparable, V any]() *Store[K, V] {
	return &Store[K, V]{
		pins:  make(map[uint64]int),
		multi: make(map[K]struct{}),
	}
}

// Latest returns the highest committed timestamp (0 before any commit).
func (s *Store[K, V]) Latest() uint64 { return s.latest.Load() }

// Commit installs writes as new versions at timestamp ts. ts must be
// strictly greater than every previously committed timestamp; commits are
// serialised internally. An empty write set is legal and still advances the
// clock (an empty block is still a block). The new snapshot becomes
// observable — Latest() returns ts — only after every version is installed,
// so readers taking fresh snapshots never see a half-applied commit.
func (s *Store[K, V]) Commit(ts uint64, writes map[K]V) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if prev := s.latest.Load(); ts <= prev {
		return fmt.Errorf("%w: ts %d, latest %d", ErrNonMonotonic, ts, prev)
	}
	for k, v := range writes {
		c := s.chain(k)
		n := &version[V]{ts: ts, val: v}
		if head := c.head.Load(); head != nil {
			n.prev.Store(head)
			s.multi[k] = struct{}{}
		}
		c.head.Store(n)
		s.versions.Add(1)
	}
	s.latest.Store(ts)
	return nil
}

// chain returns the version chain for k, creating it if absent.
func (s *Store[K, V]) chain(k K) *keyChain[V] {
	if c, ok := s.chains.Load(k); ok {
		return c.(*keyChain[V])
	}
	c, loaded := s.chains.LoadOrStore(k, new(keyChain[V]))
	if !loaded {
		s.keys.Add(1)
	}
	return c.(*keyChain[V])
}

// Get returns the value of k as of timestamp ts: the newest version whose
// timestamp is ≤ ts. ok is false when no such version exists (the key was
// not written at or before ts); callers layering the cache over a base
// state fall through to the base in that case. Lock-free.
func (s *Store[K, V]) Get(k K, ts uint64) (val V, ok bool) {
	c, found := s.chains.Load(k)
	if !found {
		return val, false
	}
	for n := c.(*keyChain[V]).head.Load(); n != nil; n = n.prev.Load() {
		if n.ts <= ts {
			return n.val, true
		}
	}
	return val, false
}

// ChangedSince reports whether k was written at any timestamp strictly
// greater than ts — the validation primitive of the pipelined executor: a
// speculative read at snapshot ts is stale iff the key changed since.
// Lock-free.
func (s *Store[K, V]) ChangedSince(k K, ts uint64) bool {
	c, found := s.chains.Load(k)
	if !found {
		return false
	}
	head := c.(*keyChain[V]).head.Load()
	return head != nil && head.ts > ts
}

// RangeLatest calls fn with the newest version of every key until fn
// returns false. Iteration order is unspecified. Intended for folding the
// cache back into a materialised state once the pipeline drains; running it
// concurrently with Commit yields a mix of old and new values, so callers
// should quiesce writers first.
func (s *Store[K, V]) RangeLatest(fn func(K, V) bool) {
	s.chains.Range(func(k, c any) bool {
		if n := c.(*keyChain[V]).head.Load(); n != nil {
			return fn(k.(K), n.val)
		}
		return true
	})
}

// Stats describes the store's occupancy.
type Stats struct {
	// Keys is the number of distinct keys ever written.
	Keys int
	// Versions is the number of live (unreclaimed) versions.
	Versions int
	// Reclaimed is the cumulative number of versions garbage-collected.
	Reclaimed int
	// Latest is the highest committed timestamp.
	Latest uint64
}

// StoreStats returns current occupancy counters.
func (s *Store[K, V]) StoreStats() Stats {
	return Stats{
		Keys:      int(s.keys.Load()),
		Versions:  int(s.versions.Load()),
		Reclaimed: int(s.reclaimed.Load()),
		Latest:    s.latest.Load(),
	}
}

// Snapshot is a read-only view of the store at a fixed timestamp. A
// snapshot from PinLatest additionally pins its timestamp against garbage
// collection until released. Snapshots are safe for concurrent use.
type Snapshot[K comparable, V any] struct {
	store   *Store[K, V]
	ts      uint64
	release func()
}

// TS returns the snapshot's timestamp.
func (sn *Snapshot[K, V]) TS() uint64 { return sn.ts }

// Get returns the value of k as seen by the snapshot.
func (sn *Snapshot[K, V]) Get(k K) (V, bool) { return sn.store.Get(k, sn.ts) }

// Release unpins a pinned snapshot, allowing the collector to reclaim the
// versions it was holding. Safe to call more than once; a no-op for
// unpinned snapshots.
func (sn *Snapshot[K, V]) Release() {
	if sn.release != nil {
		sn.release()
		sn.release = nil
	}
}

// At returns an unpinned snapshot at ts. The caller must ensure no
// concurrent TruncateBelow reclaims below ts (e.g. the pipeline's committer
// reads through At(ts) only for timestamps it has not yet collected).
func (s *Store[K, V]) At(ts uint64) *Snapshot[K, V] {
	return &Snapshot[K, V]{store: s, ts: ts}
}

// PinLatest atomically takes the latest committed timestamp and pins it:
// TruncateBelow will not reclaim any version the returned snapshot can see
// until Release is called. This is the epoch-entry point of the pipeline's
// speculative phase.
func (s *Store[K, V]) PinLatest() *Snapshot[K, V] {
	s.pinMu.Lock()
	ts := s.latest.Load()
	s.pins[ts]++
	s.pinMu.Unlock()
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.pinMu.Lock()
			if s.pins[ts]--; s.pins[ts] <= 0 {
				delete(s.pins, ts)
			}
			s.pinMu.Unlock()
		})
	}
	return &Snapshot[K, V]{store: s, ts: ts, release: release}
}

// minPinned returns the smallest pinned timestamp, or max-uint64 when
// nothing is pinned. Caller holds pinMu.
func (s *Store[K, V]) minPinned() uint64 {
	min := uint64(math.MaxUint64)
	for ts := range s.pins {
		if ts < min {
			min = ts
		}
	}
	return min
}

// TruncateBelow reclaims versions that no snapshot at or above
// min(horizon, oldest pinned timestamp) can observe: for every key, the
// newest version at or below that cut survives (it is the value such
// snapshots read) and everything older is unlinked. Returns the number of
// versions reclaimed. Safe to run concurrently with readers; serialised
// against Commit.
func (s *Store[K, V]) TruncateBelow(horizon uint64) int {
	s.pinMu.Lock()
	cut := s.minPinned()
	s.pinMu.Unlock()
	if horizon < cut {
		cut = horizon
	}
	if cut == 0 {
		return 0
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	reclaimed := 0
	for k := range s.multi {
		c, found := s.chains.Load(k)
		if !found {
			delete(s.multi, k)
			continue
		}
		// Find the newest version with ts ≤ cut; it must survive. Versions
		// strictly older can no longer be observed: every live snapshot has
		// ts ≥ cut and resolves to this version or a newer one.
		head := c.(*keyChain[V]).head.Load()
		n := head
		for n != nil && n.ts > cut {
			n = n.prev.Load()
		}
		if n == nil {
			continue
		}
		for old := n.prev.Load(); old != nil; old = old.prev.Load() {
			reclaimed++
		}
		n.prev.Store(nil)
		if n == head {
			// The chain is back to a single version; nothing left to
			// collect until the key is rewritten.
			delete(s.multi, k)
		}
	}
	s.versions.Add(int64(-reclaimed))
	s.reclaimed.Add(int64(reclaimed))
	return reclaimed
}
