// Package mvstore implements a multi-version key-value state cache: every
// key carries a chain of timestamped versions, readers see a consistent
// snapshot of the store at any logical timestamp without taking locks, and
// superseded versions are reclaimed by an epoch-style garbage collector
// driven by the oldest pinned snapshot.
//
// The store exists to remove the single-version bottleneck of package stm:
// there, every commit bumps a global clock under one lock and invalidates
// concurrent readers, so execution and validation of consecutive blocks
// serialise on the store. With per-key version chains, block b+1 can
// execute optimistically against the snapshot left by block b-1 while block
// b is still validating and committing — the multi-version substrate behind
// the pipelined two-phase engine in package exec (Octopus-style two-phase
// pipelining; see docs/ARCHITECTURE.md), behind the per-shard persistent
// stores of the sharded chain engine, and behind that engine's adaptive
// epoch migrations, which re-home a moved address by committing its
// materialised values to another shard's store at a dedicated timestamp.
//
// Concurrency contract:
//
//   - Get/ChangedSince/Snapshot.Get are lock-free: one atomic map load plus
//     a walk over immutable version nodes.
//   - Commit calls must carry strictly increasing timestamps and are
//     serialised by the store (the pipeline commits blocks in order, so
//     this costs nothing).
//   - A snapshot at timestamp T observes exactly the versions with ts ≤ T,
//     provided Commit(T, …) had returned before the snapshot was taken.
//   - TruncateBelow never reclaims versions visible to a pinned snapshot.
//
// Delta (commutative) writes: a store built with NewStoreDelta additionally
// accepts DeltaAdd writes (CommitWrites), whose version nodes hold an
// increment rather than an absolute value. Delta versions from different
// commits merge at read time instead of superseding each other: Resolve
// walks the chain, folds every delta at or below the snapshot timestamp
// onto the newest absolute (Put) version — or onto the caller-supplied base
// value when the chain holds no absolute anchor. This is the store-level
// half of operation-level conflict refinement: blind credits/debits to a
// hot key (an exchange wallet, a popular payee) commute, so concurrent
// blocks can all append deltas without invalidating one another, while a
// materialising read still observes every committed delta (ChangedSince
// reports delta commits like any other write, so readers re-validate).
// The garbage collector compacts unreachable delta runs into a single
// folded node instead of unlinking them, since a delta tail below the
// horizon still contributes to every visible materialisation.
package mvstore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ErrNonMonotonic reports a commit whose timestamp does not exceed the
// store's latest committed timestamp.
var ErrNonMonotonic = errors.New("mvstore: commit timestamp not increasing")

// ErrNoMerge reports a DeltaAdd write committed to a store built without a
// merge function (NewStore instead of NewStoreDelta).
var ErrNoMerge = errors.New("mvstore: delta write on a store without a merge function")

// WriteKind distinguishes absolute writes from commutative delta writes.
type WriteKind uint8

const (
	// Put installs an absolute value, superseding older versions.
	Put WriteKind = iota
	// DeltaAdd installs an increment that merges with — rather than
	// supersedes — the versions below it. Requires NewStoreDelta.
	DeltaAdd
)

// Write is one entry of a mixed-kind write set for CommitWrites.
type Write[V any] struct {
	Kind WriteKind
	Val  V
}

// version is one immutable entry of a key's version chain: the value
// written at logical timestamp ts, linked to the previous (older) version.
// prev is atomic only so the garbage collector can unlink reclaimed tails
// while readers walk the chain.
type version[V any] struct {
	ts   uint64
	kind WriteKind
	val  V
	prev atomic.Pointer[version[V]]
}

// keyChain is the per-key chain head. Newest version first. ref is the
// clock bit of the cold-key evictor: reads set it, CollectCold clears it
// and skips chains whose bit was set (second chance), so a key must go
// unread for a full eviction pass before it is considered cold.
type keyChain[V any] struct {
	head atomic.Pointer[version[V]]
	ref  atomic.Bool
}

// Store is a multi-version key-value cache. The zero value is not usable;
// call NewStore (absolute writes only) or NewStoreDelta (absolute plus
// commutative delta writes).
type Store[K comparable, V any] struct {
	chains sync.Map // K → *keyChain[V]

	// merge folds a delta onto a materialised value; nil for stores built
	// with NewStore, which then reject DeltaAdd writes. Immutable after
	// construction.
	merge func(onto, delta V) V

	// commitMu serialises writers (Commit) and the garbage collector.
	// Readers never take it.
	commitMu sync.Mutex
	latest   atomic.Uint64
	// multi tracks the keys whose chains hold more than one live version —
	// the only chains garbage collection can shorten — so TruncateBelow is
	// proportional to superseded keys, not to the whole key space. Guarded
	// by commitMu.
	multi map[K]struct{}

	// pinMu guards pins. PinLatest reads latest and registers the pin under
	// pinMu, and TruncateBelow computes the reclaim horizon under pinMu, so
	// a snapshot is either visible to the collector or taken after the
	// collection it could have raced with.
	pinMu sync.Mutex
	pins  map[uint64]int

	keys      atomic.Int64
	versions  atomic.Int64
	reclaimed atomic.Int64
}

// NewStore returns an empty store whose latest committed timestamp is 0:
// timestamp 0 denotes "before the first commit", so snapshots at 0 see
// nothing and fall through to whatever base state the caller layers under
// the cache.
func NewStore[K comparable, V any]() *Store[K, V] {
	return &Store[K, V]{
		pins:  make(map[uint64]int),
		multi: make(map[K]struct{}),
	}
}

// NewStoreDelta returns an empty store that additionally accepts DeltaAdd
// writes, merged at read time by merge(onto, delta). merge must be
// associative, and commutative across deltas committed at different
// timestamps (integer addition is the canonical instance) — Resolve folds
// deltas oldest-first, and the garbage collector folds compacted runs in
// the same order, so associativity is what keeps the two equivalent.
func NewStoreDelta[K comparable, V any](merge func(onto, delta V) V) *Store[K, V] {
	s := NewStore[K, V]()
	s.merge = merge
	return s
}

// Latest returns the highest committed timestamp (0 before any commit).
func (s *Store[K, V]) Latest() uint64 { return s.latest.Load() }

// Commit installs writes as new absolute versions at timestamp ts. ts must
// be strictly greater than every previously committed timestamp; commits
// are serialised internally. An empty write set is legal and still advances
// the clock (an empty block is still a block). The new snapshot becomes
// observable — Latest() returns ts — only after every version is installed,
// so readers taking fresh snapshots never see a half-applied commit.
func (s *Store[K, V]) Commit(ts uint64, writes map[K]V) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.checkTS(ts); err != nil {
		return err
	}
	//txlint:ordered install touches only key k's version chain; the commit becomes visible only after every install
	for k, v := range writes {
		s.install(k, ts, Put, v)
	}
	s.latest.Store(ts)
	return nil
}

// CommitWrites is Commit for a mixed write set of absolute (Put) and
// commutative (DeltaAdd) writes. DeltaAdd entries require a store built
// with NewStoreDelta; on ErrNoMerge nothing is installed and the clock does
// not advance.
func (s *Store[K, V]) CommitWrites(ts uint64, writes map[K]Write[V]) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.checkTS(ts); err != nil {
		return err
	}
	if s.merge == nil {
		for _, w := range writes {
			if w.Kind == DeltaAdd {
				return ErrNoMerge
			}
		}
	}
	//txlint:ordered same per-chain installs as Commit; visibility flips only after the loop
	for k, w := range writes {
		s.install(k, ts, w.Kind, w.Val)
	}
	s.latest.Store(ts)
	return nil
}

// checkTS enforces monotonic commit timestamps. Caller holds commitMu.
func (s *Store[K, V]) checkTS(ts uint64) error {
	if prev := s.latest.Load(); ts <= prev {
		return fmt.Errorf("%w: ts %d, latest %d", ErrNonMonotonic, ts, prev)
	}
	return nil
}

// install links one new version at the head of k's chain. Caller holds
// commitMu.
func (s *Store[K, V]) install(k K, ts uint64, kind WriteKind, val V) {
	c := s.chain(k)
	n := &version[V]{ts: ts, kind: kind, val: val}
	if head := c.head.Load(); head != nil {
		n.prev.Store(head)
		s.multi[k] = struct{}{}
	}
	c.head.Store(n)
	s.versions.Add(1)
}

// chain returns the version chain for k, creating it if absent.
func (s *Store[K, V]) chain(k K) *keyChain[V] {
	if c, ok := s.chains.Load(k); ok {
		return c.(*keyChain[V])
	}
	c, loaded := s.chains.LoadOrStore(k, new(keyChain[V]))
	if !loaded {
		s.keys.Add(1)
	}
	return c.(*keyChain[V])
}

// Get returns the value of k as of timestamp ts: the newest absolute
// version whose timestamp is ≤ ts, with any deltas between it and ts folded
// in. ok is false when no absolute version anchors the key at or before ts
// (the key was never Put, or holds only deltas — deltas alone cannot be
// materialised without a base; use Resolve for that); callers layering the
// cache over a base state fall through to the base in that case. Lock-free.
func (s *Store[K, V]) Get(k K, ts uint64) (val V, ok bool) {
	c, found := s.chains.Load(k)
	if !found {
		return val, false
	}
	ch := c.(*keyChain[V])
	ch.ref.Store(true)
	n, deltas := s.walk(ch, ts)
	if n == nil {
		return val, false
	}
	return s.fold(n.val, deltas), true
}

// Resolve returns the value of k as of timestamp ts materialised over base:
// the newest absolute version ≤ ts if one exists (else base), with every
// delta version between it and ts folded on top. A key with no versions at
// or before ts resolves to base unchanged. Lock-free.
func (s *Store[K, V]) Resolve(k K, ts uint64, base V) V {
	c, found := s.chains.Load(k)
	if !found {
		return base
	}
	ch := c.(*keyChain[V])
	ch.ref.Store(true)
	n, deltas := s.walk(ch, ts)
	if n != nil {
		base = n.val
	}
	return s.fold(base, deltas)
}

// walk descends k's chain skipping versions newer than ts, collecting the
// delta versions (newest first) above the first absolute version ≤ ts. It
// returns that anchor (nil when the visible chain is delta-only or empty)
// and the collected deltas.
func (s *Store[K, V]) walk(c *keyChain[V], ts uint64) (anchor *version[V], deltas []V) {
	for n := c.head.Load(); n != nil; n = n.prev.Load() {
		if n.ts > ts {
			continue
		}
		if n.kind == Put {
			return n, deltas
		}
		deltas = append(deltas, n.val)
	}
	return nil, deltas
}

// fold applies deltas (given newest first) onto base, oldest first.
func (s *Store[K, V]) fold(base V, deltas []V) V {
	for i := len(deltas) - 1; i >= 0; i-- {
		base = s.merge(base, deltas[i])
	}
	return base
}

// ChangedSince reports whether k was written at any timestamp strictly
// greater than ts — the validation primitive of the pipelined executor: a
// speculative read at snapshot ts is stale iff the key changed since.
// Lock-free.
func (s *Store[K, V]) ChangedSince(k K, ts uint64) bool {
	c, found := s.chains.Load(k)
	if !found {
		return false
	}
	head := c.(*keyChain[V]).head.Load()
	return head != nil && head.ts > ts
}

// RangeLatest calls fn with the newest version of every key until fn
// returns false. Iteration order is unspecified. On delta stores the newest
// version may be a raw delta; use RangeLatestResolved to materialise.
// Intended for folding the cache back into a materialised state once the
// pipeline drains; running it concurrently with Commit yields a mix of old
// and new values, so callers should quiesce writers first.
func (s *Store[K, V]) RangeLatest(fn func(K, V) bool) {
	s.chains.Range(func(k, c any) bool {
		if n := c.(*keyChain[V]).head.Load(); n != nil {
			return fn(k.(K), n.val)
		}
		return true
	})
}

// RangeLatestResolved calls fn with every key's newest materialised value
// until fn returns false. anchored reports whether the chain bottoms out at
// an absolute version: if true, val is the key's full value; if false, the
// key was only ever delta-written and val is the accumulated delta, which
// the caller must fold onto whatever base state it layers the cache over.
// The same quiescence caveat as RangeLatest applies.
func (s *Store[K, V]) RangeLatestResolved(fn func(k K, val V, anchored bool) bool) {
	s.chains.Range(func(k, c any) bool {
		ch := c.(*keyChain[V])
		if ch.head.Load() == nil {
			return true
		}
		anchor, deltas := s.walk(ch, math.MaxUint64)
		var val V
		if anchor != nil {
			val = anchor.val
		}
		return fn(k.(K), s.fold(val, deltas), anchor != nil)
	})
}

// RangeResolvedAt is RangeLatestResolved at a fixed timestamp: fn sees
// every key with a version visible at ts, materialised over the chain's
// anchor as of ts, along with the timestamp of the newest visible version
// (newest). Keys first written after ts are skipped. Callers merging
// several stores' views (the checkpoint worker over per-shard stores)
// use newest to let the most recent writer win. Safe to run concurrently
// with commits at timestamps above ts — version nodes are immutable and
// the walk skips anything newer — provided ts is pinned against garbage
// collection (see PinAt). Iteration order is unspecified.
func (s *Store[K, V]) RangeResolvedAt(ts uint64, fn func(k K, val V, anchored bool, newest uint64) bool) {
	s.chains.Range(func(k, c any) bool {
		ch := c.(*keyChain[V])
		var newest uint64
		var deltas []V
		var anchor *version[V]
		seen := false
		for n := ch.head.Load(); n != nil; n = n.prev.Load() {
			if n.ts > ts {
				continue
			}
			if !seen {
				newest = n.ts
				seen = true
			}
			if n.kind == Put {
				anchor = n
				break
			}
			deltas = append(deltas, n.val)
		}
		if !seen {
			return true
		}
		var val V
		if anchor != nil {
			val = anchor.val
		}
		return fn(k.(K), s.fold(val, deltas), anchor != nil, newest)
	})
}

// Stats describes the store's occupancy.
type Stats struct {
	// Keys is the number of distinct keys currently resident (written and
	// not evicted by DropChains).
	Keys int
	// Versions is the number of live (unreclaimed) versions.
	Versions int
	// Reclaimed is the cumulative number of versions garbage-collected.
	Reclaimed int
	// Latest is the highest committed timestamp.
	Latest uint64
}

// StoreStats returns current occupancy counters.
func (s *Store[K, V]) StoreStats() Stats {
	return Stats{
		Keys:      int(s.keys.Load()),
		Versions:  int(s.versions.Load()),
		Reclaimed: int(s.reclaimed.Load()),
		Latest:    s.latest.Load(),
	}
}

// Snapshot is a read-only view of the store at a fixed timestamp. A
// snapshot from PinLatest additionally pins its timestamp against garbage
// collection until released. Snapshots are safe for concurrent use.
type Snapshot[K comparable, V any] struct {
	store   *Store[K, V]
	ts      uint64
	release func()
	once    sync.Once
}

// TS returns the snapshot's timestamp.
func (sn *Snapshot[K, V]) TS() uint64 { return sn.ts }

// Get returns the value of k as seen by the snapshot (anchored chains
// only; see Store.Get).
func (sn *Snapshot[K, V]) Get(k K) (V, bool) { return sn.store.Get(k, sn.ts) }

// Resolve returns the value of k as seen by the snapshot, materialised over
// base (see Store.Resolve).
func (sn *Snapshot[K, V]) Resolve(k K, base V) V { return sn.store.Resolve(k, sn.ts, base) }

// Release unpins a pinned snapshot, allowing the collector to reclaim the
// versions it was holding. Safe to call more than once, from any
// goroutine; a no-op for unpinned snapshots.
func (sn *Snapshot[K, V]) Release() {
	sn.once.Do(func() {
		if sn.release != nil {
			sn.release()
		}
	})
}

// At returns an unpinned snapshot at ts. The caller must ensure no
// concurrent TruncateBelow reclaims below ts (e.g. the pipeline's committer
// reads through At(ts) only for timestamps it has not yet collected).
func (s *Store[K, V]) At(ts uint64) *Snapshot[K, V] {
	return &Snapshot[K, V]{store: s, ts: ts}
}

// PinLatest atomically takes the latest committed timestamp and pins it:
// TruncateBelow will not reclaim any version the returned snapshot can see
// until Release is called. This is the epoch-entry point of the pipeline's
// speculative phase.
func (s *Store[K, V]) PinLatest() *Snapshot[K, V] {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return s.pinLocked(s.latest.Load())
}

// PinAt pins an explicit timestamp against garbage collection and returns a
// snapshot at it. The caller must ensure Commit(ts, …) has returned (ts ≤
// Latest()), as for At, and that no TruncateBelow call has already
// collected above ts — a pin only prevents future reclamation, it cannot
// resurrect versions. Unlike At, the pinned versions survive TruncateBelow
// until Release. Used when the pinning schedule is decided externally —
// e.g. the pipeline's deterministic fixed-lag mode, which pins timestamps
// it has not yet passed to the collector.
func (s *Store[K, V]) PinAt(ts uint64) *Snapshot[K, V] {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return s.pinLocked(ts)
}

// pinLocked registers a pin at ts and builds its releasing snapshot (the
// snapshot's sync.Once guarantees the pin is dropped exactly once).
// Caller holds pinMu.
func (s *Store[K, V]) pinLocked(ts uint64) *Snapshot[K, V] {
	s.pins[ts]++
	release := func() {
		s.pinMu.Lock()
		if s.pins[ts]--; s.pins[ts] <= 0 {
			delete(s.pins, ts)
		}
		s.pinMu.Unlock()
	}
	return &Snapshot[K, V]{store: s, ts: ts, release: release}
}

// minPinned returns the smallest pinned timestamp, or max-uint64 when
// nothing is pinned. Caller holds pinMu.
func (s *Store[K, V]) minPinned() uint64 {
	min := uint64(math.MaxUint64)
	for ts := range s.pins {
		if ts < min {
			min = ts
		}
	}
	return min
}

// TruncateBelow reclaims versions that no snapshot at or above
// min(horizon, oldest pinned timestamp) can observe. For every key, find
// the newest version n with ts ≤ cut — every live snapshot resolves through
// it. If n is absolute, everything older is invisible and is unlinked, as a
// single-version store would. If n is a delta, the tail below it still
// contributes to every materialisation, so instead of unlinking it the
// collector *compacts* it: the sub-chain below n folds into one node — an
// absolute node when it contains a Put anchor, a summed delta node
// otherwise — keeping delta chains bounded by the pipeline depth instead of
// growing with chain length. Returns the number of versions reclaimed.
// Safe to run concurrently with readers (nodes are immutable; a reader
// mid-walk finishes on the old, equivalent tail); serialised against
// Commit.
func (s *Store[K, V]) TruncateBelow(horizon uint64) int {
	s.pinMu.Lock()
	cut := s.minPinned()
	s.pinMu.Unlock()
	if horizon < cut {
		cut = horizon
	}
	if cut == 0 {
		return 0
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	reclaimed := 0
	//txlint:ordered per-key GC under commitMu; each iteration truncates only k's chain and reclaimed is a commutative count
	for k := range s.multi {
		c, found := s.chains.Load(k)
		if !found {
			delete(s.multi, k)
			continue
		}
		head := c.(*keyChain[V]).head.Load()
		n := head
		for n != nil && n.ts > cut {
			n = n.prev.Load()
		}
		if n == nil {
			continue
		}
		if n.kind == Put {
			// n must survive (it is the value visible snapshots read);
			// everything strictly older is unobservable.
			for old := n.prev.Load(); old != nil; old = old.prev.Load() {
				reclaimed++
			}
			n.prev.Store(nil)
			if n == head {
				// The chain is back to a single version; nothing left to
				// collect until the key is rewritten.
				delete(s.multi, k)
			}
			continue
		}
		// n is a delta: compact the tail strictly below it. Collect the
		// sub-chain down to (and including) the first absolute anchor;
		// anything below the anchor is unobservable.
		sub := n.prev.Load()
		if sub == nil {
			continue
		}
		count := 0
		var deltas []V // newest first
		var anchor *version[V]
		for node := sub; node != nil; node = node.prev.Load() {
			count++
			if node.kind == Put {
				anchor = node
				break
			}
			deltas = append(deltas, node.val)
		}
		if anchor != nil {
			for old := anchor.prev.Load(); old != nil; old = old.prev.Load() {
				count++
			}
		}
		if count <= 1 {
			continue
		}
		folded := version[V]{ts: sub.ts, kind: DeltaAdd}
		if anchor != nil {
			folded.kind = Put
			folded.val = anchor.val
		}
		folded.val = s.fold(folded.val, deltas)
		n.prev.Store(&folded)
		reclaimed += count - 1
	}
	s.versions.Add(int64(-reclaimed))
	s.reclaimed.Add(int64(reclaimed))
	return reclaimed
}

// Evicted is one cold key surfaced by CollectCold: its fully materialised
// value as of the chain head. Anchored reports whether the chain bottoms
// out at an absolute version; when false Val is an accumulated delta the
// caller must fold onto the base state it evicts into — the same contract
// as RangeLatestResolved, so eviction preserves commutativity.
type Evicted[K comparable, V any] struct {
	Key      K
	Val      V
	Anchored bool
}

// CollectCold returns up to max (≤ 0: unlimited) cold keys: keys whose
// newest version is at or below min(horizon, oldest pinned timestamp) —
// fully resolved, so no live or future snapshot at or above that cut can
// observe anything the materialised value does not capture — and whose
// clock bit is clear, meaning the key was not read since the previous
// CollectCold pass cleared it (second chance). Every scanned chain's bit
// is cleared as a side effect. The returned values are safe to persist:
// serialised against commits, so the chain cannot grow a newer version
// between resolution and return.
//
// The intended protocol is collect → persist to the base layer → DropChains,
// in that order on one goroutine: a reader that misses a dropped chain
// then falls through to a base layer that already holds the value.
func (s *Store[K, V]) CollectCold(horizon uint64, max int) []Evicted[K, V] {
	s.pinMu.Lock()
	cut := s.minPinned()
	s.pinMu.Unlock()
	if horizon < cut {
		cut = horizon
	}
	if cut == 0 {
		return nil
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	var out []Evicted[K, V]
	s.chains.Range(func(k, c any) bool {
		ch := c.(*keyChain[V])
		head := ch.head.Load()
		if head == nil || head.ts > cut {
			return true // hot: a visible snapshot below the head may exist
		}
		if ch.ref.Swap(false) {
			return true // recently read: one more pass before eviction
		}
		anchor, deltas := s.walk(ch, math.MaxUint64)
		var val V
		if anchor != nil {
			val = anchor.val
		}
		out = append(out, Evicted[K, V]{Key: k.(K), Val: s.fold(val, deltas), Anchored: anchor != nil})
		return max <= 0 || len(out) < max
	})
	return out
}

// DropChains removes the given keys' version chains from the cache,
// provided each chain is still entirely at or below min(horizon, oldest
// pinned timestamp) — a chain that grew a newer version since CollectCold
// is skipped, as is a pin taken since: dropping it would lose that state.
// Returns the number of chains dropped. The caller must have durably
// persisted the keys' resolved values first (see CollectCold); a reader
// missing a dropped key falls through to that base layer.
func (s *Store[K, V]) DropChains(keys []K, horizon uint64) int {
	s.pinMu.Lock()
	cut := s.minPinned()
	s.pinMu.Unlock()
	if horizon < cut {
		cut = horizon
	}
	if cut == 0 {
		return 0
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	dropped := 0
	for _, k := range keys {
		c, found := s.chains.Load(k)
		if !found {
			continue
		}
		head := c.(*keyChain[V]).head.Load()
		if head == nil || head.ts > cut {
			continue
		}
		n := 0
		for node := head; node != nil; node = node.prev.Load() {
			n++
		}
		s.chains.Delete(k)
		delete(s.multi, k)
		s.keys.Add(-1)
		s.versions.Add(int64(-n))
		dropped++
	}
	return dropped
}
