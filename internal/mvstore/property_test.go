package mvstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func addI64(a, b int64) int64 { return a + b }

// TestDeltaPermutationInvariance: committing the same multiset of DeltaAdds
// to one key in any order (any interleaving of "concurrent" commits the
// store serialises) materialises the same value — the commutativity
// contract that lets the engines skip delta–delta conflicts.
func TestDeltaPermutationInvariance(t *testing.T) {
	prop := func(raw []int8, seed int64) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		deltas := make([]int64, len(raw))
		for i, d := range raw {
			deltas[i] = int64(d)
		}
		perm := rand.New(rand.NewSource(seed)).Perm(len(deltas))

		commitAll := func(order func(int) int64) *Store[string, int64] {
			s := NewStoreDelta[string, int64](addI64)
			for i := range deltas {
				err := s.CommitWrites(uint64(i+1), map[string]Write[int64]{
					"hot": {Kind: DeltaAdd, Val: order(i)},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			return s
		}
		a := commitAll(func(i int) int64 { return deltas[i] })
		b := commitAll(func(i int) int64 { return deltas[perm[i]] })

		const base = int64(1_000_000)
		va := a.Resolve("hot", a.Latest(), base)
		vb := b.Resolve("hot", b.Latest(), base)
		var want int64 = base
		for _, d := range deltas {
			want += d
		}
		return va == want && vb == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// deltaModel mirrors a single store key: anchored absolute value plus
// trailing deltas, as of each timestamp.
type deltaModel struct {
	anchored bool
	val      int64
}

func (m deltaModel) resolve(base int64) int64 {
	if m.anchored {
		return m.val
	}
	return base + m.val
}

// TestGCNeverDropsPinnedDelta: whatever mix of Put/DeltaAdd commits and GC
// horizons, a pinned snapshot keeps resolving to the exact value it saw
// when pinned, and the latest view stays correct after collection — the
// delta-run compaction must be semantically invisible.
func TestGCNeverDropsPinnedDelta(t *testing.T) {
	const nKeys = 3
	const base = int64(500)
	prop := func(ops []uint16, pinPick, horizonPick uint8) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 96 {
			ops = ops[:96]
		}
		s := NewStoreDelta[int, int64](addI64)
		model := make(map[int]deltaModel, nKeys)
		history := make([]map[int]deltaModel, 0, len(ops)+1)
		snapModel := func() map[int]deltaModel {
			c := make(map[int]deltaModel, nKeys)
			for k, v := range model {
				c[k] = v
			}
			return c
		}
		history = append(history, snapModel()) // ts 0
		for i, op := range ops {
			key := int(op) % nKeys
			val := int64(int8(op >> 8))
			w := Write[int64]{Kind: DeltaAdd, Val: val}
			m := model[key]
			if op%5 == 0 {
				w = Write[int64]{Kind: Put, Val: val}
				m = deltaModel{anchored: true, val: val}
			} else {
				m.val += val
			}
			if err := s.CommitWrites(uint64(i+1), map[int]Write[int64]{key: w}); err != nil {
				t.Fatal(err)
			}
			model[key] = m
			history = append(history, snapModel())
		}
		latest := s.Latest()
		pinTS := uint64(pinPick) % (latest + 1)
		pin := s.PinAt(pinTS)
		defer pin.Release()

		check := func(ts uint64, want map[int]deltaModel) bool {
			for k := 0; k < nKeys; k++ {
				if got := s.Resolve(k, ts, base); got != want[k].resolve(base) {
					return false
				}
			}
			return true
		}

		// GC at an arbitrary horizon: the pin must cap the cut.
		s.TruncateBelow(uint64(horizonPick) % (latest + 2))
		if !check(pinTS, history[pinTS]) || !check(latest, history[latest]) {
			return false
		}
		// Release and collect everything below the tip; the tip must
		// still resolve exactly.
		pin.Release()
		s.TruncateBelow(latest)
		return check(latest, history[latest])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
