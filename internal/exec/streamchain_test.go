package exec

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/heat"
)

// feed sends blocks on a fresh channel from a separate goroutine, closing
// it when done — the shape the streaming builder produces.
func feed(blocks []*account.Block) <-chan *account.Block {
	ch := make(chan *account.Block)
	go func() {
		defer close(ch)
		for _, b := range blocks {
			ch <- b
		}
	}()
	return ch
}

// TestStreamChainMatchesBatch: feeding the same blocks through
// ExecuteChainStream must reproduce ExecuteChain exactly — root, receipts,
// schedule stats and shard counters — across shard counts, conflict modes
// and depths, with onCommit observing every block in order. This is the
// determinism contract that lets the streaming service reuse the batch
// drivers' serial-equivalence guarantees wholesale.
func TestStreamChainMatchesBatch(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardSkewProfile(), 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	for _, shards := range []int{1, 4} {
		for _, op := range []bool{false, true} {
			for _, depth := range []int{1, 3} {
				e := Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: depth}
				batch, bcss, err := e.ExecuteChain(pre.Copy(), blocks)
				if err != nil {
					t.Fatalf("batch shards=%d op=%v depth=%d: %v", shards, op, depth, err)
				}
				var committed []int
				stream, scss, err := e.ExecuteChainStream(pre.Copy(), feed(blocks),
					func(idx int, blk *account.Block, receipts []*account.Receipt) {
						committed = append(committed, idx)
						if len(receipts) != len(blk.Txs) {
							t.Errorf("onCommit block %d: %d receipts for %d txs", idx, len(receipts), len(blk.Txs))
						}
					})
				if err != nil {
					t.Fatalf("stream shards=%d op=%v depth=%d: %v", shards, op, depth, err)
				}
				seq.RequireChain(t, "stream", stream.Root, stream.Receipts)
				if stream.Root != batch.Root {
					t.Fatalf("shards=%d op=%v depth=%d: stream root diverged from batch", shards, op, depth)
				}
				if stream.Stats.ParUnits != batch.Stats.ParUnits ||
					stream.Stats.GasPar != batch.Stats.GasPar ||
					stream.Stats.Retries != batch.Stats.Retries ||
					stream.Stats.Conflicted != batch.Stats.Conflicted {
					t.Fatalf("shards=%d op=%v depth=%d: stream stats %+v != batch %+v",
						shards, op, depth, stream.Stats, batch.Stats)
				}
				if scss.Cross != bcss.Cross || scss.CrossAborts != bcss.CrossAborts ||
					scss.Repairs != bcss.Repairs || scss.MergeUnits != bcss.MergeUnits {
					t.Fatalf("shards=%d op=%v depth=%d: shard counters diverged: %+v vs %+v",
						shards, op, depth, scss, bcss)
				}
				if len(committed) != len(blocks) {
					t.Fatalf("onCommit fired %d times for %d blocks", len(committed), len(blocks))
				}
				for i, idx := range committed {
					if idx != i {
						t.Fatalf("onCommit out of order: %v", committed)
					}
				}
			}
		}
	}
}

// TestStreamChainAdaptiveEpochs: the streamed adaptive chain must segment
// into the same epochs — same rebalance count, same migrations, same root —
// as the batch driver, including the "no rebalance after the last block"
// boundary rule (the stream learns it by peeking ahead).
func TestStreamChainAdaptiveEpochs(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardDriftProfile(), 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	// every=3 on 9 blocks lands a boundary exactly at the end — the case
	// where batch skips the trailing rebalance and the stream must too.
	for _, every := range []int{1, 3, 4} {
		batchEng := Sharded{Workers: 8, Depth: 2, Map: heat.NewAdaptiveMap(4, nil), RebalanceEvery: every}
		batch, bcss, err := batchEng.ExecuteChain(pre.Copy(), blocks)
		if err != nil {
			t.Fatalf("batch every=%d: %v", every, err)
		}
		streamEng := Sharded{Workers: 8, Depth: 2, Map: heat.NewAdaptiveMap(4, nil), RebalanceEvery: every}
		stream, scss, err := streamEng.ExecuteChainStream(pre.Copy(), feed(blocks), nil)
		if err != nil {
			t.Fatalf("stream every=%d: %v", every, err)
		}
		seq.RequireChain(t, "adaptive stream", stream.Root, stream.Receipts)
		if stream.Root != batch.Root {
			t.Fatalf("every=%d: stream root diverged from batch", every)
		}
		if scss.RebalanceEpochs != bcss.RebalanceEpochs || scss.Migrations != bcss.Migrations ||
			scss.MigrationUnits != bcss.MigrationUnits {
			t.Fatalf("every=%d: epoch accounting diverged: stream %+v vs batch %+v", every, scss, bcss)
		}
		if stream.Stats.ParUnits != batch.Stats.ParUnits {
			t.Fatalf("every=%d: makespan diverged: %d vs %d", every, stream.Stats.ParUnits, batch.Stats.ParUnits)
		}
	}
}

// TestStreamChainEmptyAndValidation: worker validation and the empty
// stream mirror the batch driver's edge cases.
func TestStreamChainEmptyAndValidation(t *testing.T) {
	st := account.NewStateDB()
	ch := make(chan *account.Block)
	close(ch)
	if _, _, err := (Sharded{Workers: 0, Shards: 2}).ExecuteChainStream(st, ch, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
	ch2 := make(chan *account.Block)
	close(ch2)
	cr, css, err := (Sharded{Workers: 2, Shards: 2}).ExecuteChainStream(st, ch2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Receipts) != 0 || len(css.Blocks) != 0 {
		t.Fatalf("empty stream produced %d blocks", len(cr.Receipts))
	}
	if cr.Stats.Speedup != 1 {
		t.Fatalf("empty stream speed-up = %v, want 1", cr.Stats.Speedup)
	}
}
