package exec

import (
	"math/rand"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/dataset"
	"txconcur/internal/heat"
	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// fuzzChain deterministically derives a funded state and a short chain of
// envelope-valid blocks from the fuzz arguments: a mix of plain transfers
// (skewed toward a few hot, credit-only receivers — the delta-heavy
// pattern), calls to a caller-keyed token, calls to a shared-slot counter
// contract (real read–write conflicts), and same-sender nonce chains.
func fuzzChain(seed int64, users, hotN, txn, hotPct, split uint8) (*account.StateDB, []*account.Block) {
	rng := rand.New(rand.NewSource(seed))
	nUsers := 2 + int(users)%30
	nHot := int(hotN) % 4
	nTxs := int(txn) % 80
	hp := int(hotPct) % 101
	nBlocks := 1 + int(split)%3

	st := account.NewStateDB()
	user := func(i int) types.Address { return types.AddressFromUint64("fuzz/user", uint64(i)) }
	hot := func(i int) types.Address { return types.AddressFromUint64("fuzz/hot", uint64(i)) }
	for i := 0; i < nUsers; i++ {
		st.AddBalance(user(i), 1_000_000_000)
	}
	token := types.AddressFromUint64("fuzz/contract", 0)
	st.SetCode(token, vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().Op(vm.OpCaller, vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	}))
	counter := types.AddressFromUint64("fuzz/contract", 1)
	st.SetCode(counter, vm.EncodeContract(vm.Contract{
		// storage[0]++ : every call reads and writes the same slot.
		Code: vm.NewAsm().Push(0).Op(vm.OpSload).Push(1).Op(vm.OpAdd).
			Push(0).Op(vm.OpSwap, vm.OpSstore, vm.OpStop).Bytes(),
	}))
	gate := types.AddressFromUint64("fuzz/contract", 2)
	st.SetCode(gate, vm.EncodeContract(vm.Contract{
		// Arg != 0: blind-write storage[0] = Arg. Arg == 0: record
		// storage[caller] = storage[0] — a pure reader whose result depends
		// on where in the block it ran (the phase-2 ordering hazard).
		Code: vm.NewAsm().
			Op(vm.OpArg).PushLabel("write").Op(vm.OpJumpI).
			Op(vm.OpCaller).Push(0).Op(vm.OpSload, vm.OpSstore, vm.OpStop).
			Label("write").
			Push(0).Op(vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	}))
	st.DiscardJournal()

	nonces := make([]uint64, nUsers)
	mkTx := func() *account.Transaction {
		s := rng.Intn(nUsers)
		tx := &account.Transaction{From: user(s), Nonce: nonces[s], GasPrice: 1 + account.Amount(rng.Intn(3))}
		nonces[s]++
		switch roll := rng.Intn(100); {
		case roll < 70: // transfer, hot-skewed
			tx.Value = account.Amount(1 + rng.Intn(50_000))
			tx.GasLimit = account.GasTx
			if nHot > 0 && rng.Intn(100) < hp {
				tx.To = hot(rng.Intn(nHot))
			} else {
				tx.To = user(rng.Intn(nUsers))
			}
		case roll < 82: // caller-keyed token call
			tx.To = token
			tx.Arg = rng.Uint64() % 1000
			tx.GasLimit = 100_000
		case roll < 91: // shared-counter call: guaranteed storage conflicts
			tx.To = counter
			tx.GasLimit = 100_000
		default: // gate call: blind writers and pure readers of one slot
			tx.To = gate
			tx.Arg = uint64(rng.Intn(3)) // 0 = reader, else blind writer
			tx.GasLimit = 100_000
		}
		return tx
	}

	blocks := make([]*account.Block, nBlocks)
	per := nTxs / nBlocks
	for b := range blocks {
		n := per
		if b == nBlocks-1 {
			n = nTxs - per*(nBlocks-1)
		}
		txs := make([]*account.Transaction, 0, n)
		for i := 0; i < n; i++ {
			txs = append(txs, mkTx())
		}
		blocks[b] = &account.Block{
			Height:   uint64(b),
			Time:     1_600_000_000 + int64(b)*15,
			Coinbase: types.AddressFromUint64("fuzz/miner", uint64(b%2)),
			Txs:      txs,
		}
	}
	return st, blocks
}

// FuzzEngineSerialEquivalence asserts, for every engine in both key-level
// and operation-level mode, receipt and state-root equality with the
// sequential engine on randomized (delta-heavy, hot-key-skewed) chains.
// The sharded engine runs at two shard counts per input — a fixed 2 and a
// seed-derived count in [1, 8] — so the fuzzer also explores one-shard
// degeneration, non-power-of-two committees, and wide sharding; the
// pipelined sharded chain additionally runs with a seed-derived depth, so
// cross-block snapshot staleness feeds the merge and repair paths, and a
// second chain run uses an adaptive shard map with a fuzz-chosen rebalance
// cadence, so epoch-boundary migration, heat-ordered merge waves, and the
// filtered final fold are hammered on every input.
func FuzzEngineSerialEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), uint8(40), uint8(80), uint8(1))
	f.Add(int64(2), uint8(3), uint8(1), uint8(60), uint8(100), uint8(2))
	f.Add(int64(3), uint8(20), uint8(3), uint8(79), uint8(50), uint8(0))
	f.Add(int64(4), uint8(2), uint8(0), uint8(30), uint8(0), uint8(2))
	f.Add(int64(5), uint8(12), uint8(1), uint8(70), uint8(95), uint8(1))
	// Sharded-engine seeds: nonce chains that straddle the intra/cross
	// boundary, hot-key skew across committees, conflict-heavy contract
	// traffic on few users, and a no-hot-key control.
	f.Add(int64(6), uint8(25), uint8(2), uint8(77), uint8(60), uint8(2))
	f.Add(int64(7), uint8(4), uint8(1), uint8(55), uint8(90), uint8(1))
	f.Add(int64(8), uint8(15), uint8(3), uint8(66), uint8(35), uint8(0))
	f.Add(int64(9), uint8(9), uint8(0), uint8(48), uint8(0), uint8(2))
	// Merge-parallelism and fallback-repair seeds: many independent
	// cross-shard transfers (re-execution waves), few-user nonce chains
	// with gate-contract readers (ordering overlaps → suffix repair), a
	// multi-block contract tangle (chain staleness feeding the merge), and
	// a wide-sharding hot-key burst (batched delta groups).
	f.Add(int64(10), uint8(26), uint8(0), uint8(74), uint8(0), uint8(2))
	f.Add(int64(11), uint8(3), uint8(2), uint8(72), uint8(88), uint8(2))
	f.Add(int64(12), uint8(14), uint8(0), uint8(69), uint8(0), uint8(1))
	f.Add(int64(13), uint8(6), uint8(3), uint8(58), uint8(100), uint8(0))
	// Adaptive-map seeds: few-user nonce chains over three blocks (the
	// sweep-bot shape — persistent sender/receiver pairs whose heat builds
	// across epochs and migrates), a hot-key chain with per-block
	// rebalancing (maximal migration churn between every pair of blocks),
	// and a contract tangle whose conflict groups exceed the pair shape.
	f.Add(int64(14), uint8(2), uint8(1), uint8(75), uint8(90), uint8(2))
	f.Add(int64(15), uint8(5), uint8(3), uint8(70), uint8(100), uint8(1))
	f.Add(int64(16), uint8(4), uint8(0), uint8(66), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, users, hotN, txn, hotPct, split uint8) {
		pre, blocks := fuzzChain(seed, users, hotN, txn, hotPct, split)

		// Ground truth: sequential replay, block by block.
		work := pre.Copy()
		pres := make([]*account.StateDB, len(blocks))
		seqs := make([]*Result, len(blocks))
		for i, blk := range blocks {
			pres[i] = work.Copy()
			seq, err := Sequential(work, blk)
			if err != nil {
				t.Fatalf("fuzzChain generated an invalid block: %v", err)
			}
			seqs[i] = seq
		}
		chainRoot := work.Root()

		checkReceipts := func(name string, got, want []*account.Receipt) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: %d receipts, want %d", name, len(got), len(want))
			}
			for i := range got {
				a, b := got[i], want[i]
				if a.Status != b.Status || a.GasUsed != b.GasUsed || a.TxHash != b.TxHash ||
					len(a.Internal) != len(b.Internal) {
					t.Fatalf("%s: receipt %d differs: %+v vs %+v", name, i, a, b)
				}
			}
		}

		for _, op := range []bool{false, true} {
			mode := map[bool]string{false: "key", true: "op"}[op]
			// Per-block engines against each block's exact pre-state.
			for i, blk := range blocks {
				spec, err := Speculative{Workers: 4, OpLevel: op}.Execute(pres[i].Copy(), blk)
				if err != nil {
					t.Fatalf("speculative/%s block %d: %v", mode, i, err)
				}
				if spec.Root != seqs[i].Root {
					t.Fatalf("speculative/%s block %d: root mismatch", mode, i)
				}
				checkReceipts("speculative/"+mode, spec.Receipts, seqs[i].Receipts)

				stm, err := STMExec{Workers: 4, OpLevel: op}.Execute(pres[i].Copy(), blk)
				if err != nil {
					t.Fatalf("stm/%s block %d: %v", mode, i, err)
				}
				if stm.Root != seqs[i].Root {
					t.Fatalf("stm/%s block %d: root mismatch", mode, i)
				}
				checkReceipts("stm/"+mode, stm.Receipts, seqs[i].Receipts)

				grp, err := Grouped{Workers: 4, Refined: op, Receipts: seqs[i].Receipts}.Execute(pres[i].Copy(), blk)
				if err != nil {
					t.Fatalf("grouped/%s block %d: %v", mode, i, err)
				}
				if grp.Root != seqs[i].Root {
					t.Fatalf("grouped/%s block %d: root mismatch", mode, i)
				}
				checkReceipts("grouped/"+mode, grp.Receipts, seqs[i].Receipts)

				for _, shards := range []int{2, 1 + int(uint64(seed)%8)} {
					shd, err := Sharded{Workers: 4, Shards: shards, OpLevel: op}.Execute(pres[i].Copy(), blk)
					if err != nil {
						t.Fatalf("sharded-%d/%s block %d: %v", shards, mode, i, err)
					}
					if shd.Root != seqs[i].Root {
						t.Fatalf("sharded-%d/%s block %d: root mismatch", shards, mode, i)
					}
					checkReceipts("sharded/"+mode, shd.Receipts, seqs[i].Receipts)
				}
			}
			// The pipeline over the whole chain.
			cr, err := Pipeline{Workers: 4, Depth: 2, OpLevel: op}.ExecuteChain(pre.Copy(), blocks)
			if err != nil {
				t.Fatalf("pipeline/%s: %v", mode, err)
			}
			if cr.Root != chainRoot {
				t.Fatalf("pipeline/%s: chain root mismatch", mode)
			}
			for i := range blocks {
				checkReceipts("pipeline/"+mode, cr.Receipts[i], seqs[i].Receipts)
			}

			// The pipelined sharded chain, fuzz-chosen shard count and
			// depth (chain length is fuzz-chosen via split).
			shards := 1 + int(uint64(seed)%8)
			depth := 1 + int(users)%3
			scr, scss, err := Sharded{Workers: 4, Shards: shards, OpLevel: op, Depth: depth}.
				ExecuteChain(pre.Copy(), blocks)
			if err != nil {
				t.Fatalf("shardedchain-%d/%s: %v", shards, mode, err)
			}
			if scr.Root != chainRoot {
				t.Fatalf("shardedchain-%d/%s: chain root mismatch", shards, mode)
			}
			for i := range blocks {
				checkReceipts("shardedchain/"+mode, scr.Receipts[i], seqs[i].Receipts)
			}
			for bi := range scss.Blocks {
				ss := &scss.Blocks[bi]
				x := len(blocks[bi].Txs)
				if ss.Intra+ss.Cross != x || ss.CrossAborts > ss.Cross ||
					ss.Fallback != (x > 0 && ss.Repairs == x) {
					t.Fatalf("shardedchain-%d/%s block %d: inconsistent stats %+v", shards, mode, bi, ss)
				}
			}

			// The same chain under an adaptive shard map: fuzz-chosen
			// rebalance cadence, fresh map per run (the profile must come
			// from this chain alone).
			every := 1 + int(hotPct)%3
			acr, acss, err := Sharded{Workers: 4, OpLevel: op, Depth: depth,
				Map: heat.NewAdaptiveMap(shards, nil), RebalanceEvery: every}.
				ExecuteChain(pre.Copy(), blocks)
			if err != nil {
				t.Fatalf("adaptivechain-%d/%s every=%d: %v", shards, mode, every, err)
			}
			if acr.Root != chainRoot {
				t.Fatalf("adaptivechain-%d/%s every=%d: chain root mismatch", shards, mode, every)
			}
			for i := range blocks {
				checkReceipts("adaptivechain/"+mode, acr.Receipts[i], seqs[i].Receipts)
			}
			if want := (len(blocks) - 1) / every; acss.RebalanceEpochs != want {
				t.Fatalf("adaptivechain-%d/%s: %d rebalance epochs, want %d",
					shards, mode, acss.RebalanceEpochs, want)
			}
			if shards == 1 && acss.Migrations != 0 {
				t.Fatalf("adaptivechain/%s: single shard migrated %d keys", mode, acss.Migrations)
			}
		}

		fuzzTraceReplay(t, seed, txn)
	})
}

// fuzzTraceReplay derives a small ERC20-shaped rwset trace from the fuzz
// arguments, compiles it to replay blocks (internal/dataset), and runs the
// engines over it with the trace's measured costs as the CostModel — the
// fuzz-driven variant of the E12 replay, checking root and receipt
// equality with the sequential engine in both conflict modes.
func fuzzTraceReplay(t *testing.T, seed int64, txn uint8) {
	tr, err := dataset.GenerateERC20Trace(dataset.ERC20TraceConfig{
		Blocks: 2, TxPerBlock: 4 + int(txn)%12, Seed: seed,
	})
	if err != nil {
		t.Fatalf("trace generator: %v", err)
	}
	rc, err := dataset.BuildReplayChain(tr)
	if err != nil {
		t.Fatalf("trace replay build: %v", err)
	}

	work := rc.Pre.Copy()
	pres := make([]*account.StateDB, len(rc.Blocks))
	seqs := make([]*Result, len(rc.Blocks))
	var costSeq uint64
	for i, blk := range rc.Blocks {
		pres[i] = work.Copy()
		seq, err := Sequential(work, blk)
		if err != nil {
			t.Fatalf("trace sequential block %d: %v", i, err)
		}
		seqs[i] = seq
		for j, rcpt := range seq.Receipts {
			if rcpt.Status != 1 {
				t.Fatalf("trace block %d tx %d: status %d (%s)", i, j, rcpt.Status, rcpt.ExecErr)
			}
			costSeq += rc.TxCost(blk.Txs[j], rcpt)
		}
	}
	chainRoot := work.Root()

	for _, op := range []bool{false, true} {
		mode := map[bool]string{false: "key", true: "op"}[op]
		var specGas, stmGas uint64
		for i, blk := range rc.Blocks {
			spec, err := Speculative{Workers: 4, OpLevel: op, Cost: rc.TxCost}.Execute(pres[i].Copy(), blk)
			if err != nil {
				t.Fatalf("trace speculative/%s block %d: %v", mode, i, err)
			}
			if spec.Root != seqs[i].Root {
				t.Fatalf("trace speculative/%s block %d: root mismatch", mode, i)
			}
			specGas += spec.Stats.GasSeq

			stm, err := STMExec{Workers: 4, OpLevel: op, Cost: rc.TxCost}.Execute(pres[i].Copy(), blk)
			if err != nil {
				t.Fatalf("trace stm/%s block %d: %v", mode, i, err)
			}
			if stm.Root != seqs[i].Root {
				t.Fatalf("trace stm/%s block %d: root mismatch", mode, i)
			}
			stmGas += stm.Stats.GasSeq
		}
		// The CostModel plumbing is loss-free: engines charge exactly the
		// trace's total measured cost sequentially.
		if specGas != costSeq || stmGas != costSeq {
			t.Fatalf("trace %s: GasSeq spec=%d stm=%d, want %d", mode, specGas, stmGas, costSeq)
		}

		cr, _, err := Sharded{Workers: 4, Shards: 1 + int(uint64(seed)%4), OpLevel: op, Depth: 2,
			Cost: rc.TxCost}.ExecuteChain(rc.Pre.Copy(), rc.Blocks)
		if err != nil {
			t.Fatalf("trace shardedchain/%s: %v", mode, err)
		}
		if cr.Root != chainRoot {
			t.Fatalf("trace shardedchain/%s: chain root mismatch", mode)
		}
		for i := range rc.Blocks {
			for j, r := range cr.Receipts[i] {
				w := seqs[i].Receipts[j]
				if r.Status != w.Status || r.GasUsed != w.GasUsed || r.TxHash != w.TxHash {
					t.Fatalf("trace shardedchain/%s block %d: receipt %d differs", mode, i, j)
				}
			}
		}
	}
}
