package exec

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"txconcur/internal/core"
	"txconcur/internal/sched"
	"txconcur/internal/utxo"
)

// GroupedUTXO validates and applies a UTXO block in parallel by TDG
// component: since an edge exists exactly when a TXO is created and spent
// within the block (§III-A1), every intra-block dependency is contained in
// a component, and distinct components can be validated concurrently
// against the read-only pre-block UTXO set.
//
// What component-disjointness does *not* cover is two components spending
// the same pre-block outpoint (such transactions share no TDG edge); those
// double spends are caught at merge time, like the sequential validator's
// in-block duplicate-spend rule. Spends of the block's own coinbase outputs
// are supported through a read-only staging map (the TDG ignores coinbase
// transactions, so they carry no edges either).
//
// This is the UTXO counterpart of the paper's group-concurrency model: with
// Bitcoin's group conflict rate around 1%, equation (2) predicts speed-ups
// near the core count, and this engine realises them.
type GroupedUTXO struct {
	// Workers is the core count n.
	Workers int
	// Subsidy is the maximum coinbase value beyond collected fees.
	Subsidy utxo.Amount
	// VerifyScripts enables full script verification (the expensive part,
	// and exactly the work the paper wants parallelised).
	VerifyScripts bool
}

// UTXOResult is the outcome of a parallel UTXO block validation.
type UTXOResult struct {
	// Stats uses the same unit-cost accounting as the account engines.
	Stats Stats
}

// ErrParallelValidation reports a block rejected during parallel
// validation.
var ErrParallelValidation = errors.New("exec: utxo block failed parallel validation")

// groupRun is the outcome of validating one worker's components.
type groupRun struct {
	// baseSpent are spends of pre-block outpoints (set removals).
	baseSpent map[utxo.Outpoint]struct{}
	// cbSpent are spends of the block's own coinbase outputs.
	cbSpent map[utxo.Outpoint]struct{}
	// created are surviving new outputs (in-component spends already
	// consumed theirs).
	created map[utxo.Outpoint]utxo.TxOut
	fees    utxo.Amount
	err     error
}

// Execute validates blk against set and, on success, applies it. The final
// set contents are identical to utxo.Set.ApplyBlock's. On error the set is
// unchanged.
func (e GroupedUTXO) Execute(set *utxo.Set, blk *utxo.Block) (*UTXOResult, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	if len(blk.Txs) == 0 || !blk.Txs[0].IsCoinbase() {
		return nil, fmt.Errorf("%w: missing coinbase", ErrParallelValidation)
	}
	for i, tx := range blk.Txs[1:] {
		if tx.IsCoinbase() {
			return nil, fmt.Errorf("%w: coinbase at index %d", utxo.ErrBadCoinbase, i+1)
		}
	}
	cb := blk.Txs[0]
	coinbaseOuts := make(map[utxo.Outpoint]utxo.TxOut, len(cb.Outputs))
	for k := range cb.Outputs {
		coinbaseOuts[cb.Outpoint(k)] = cb.Outputs[k]
	}
	regular := make([]*utxo.Transaction, 0, len(blk.Txs)-1)
	for _, tx := range blk.Txs[1:] {
		regular = append(regular, tx)
	}

	// TDG components and LPT schedule.
	tdg := core.BuildUTXO(blk)
	groups := tdg.TxGroups()
	jobs := make([]int, len(groups))
	for i, g := range groups {
		jobs[i] = len(g)
	}
	schedule, err := sched.LPT(jobs, e.Workers)
	if err != nil {
		return nil, err
	}

	// Parallel per-component validation against the immutable base set.
	runs := make([]*groupRun, e.Workers)
	parallelFor(e.Workers, e.Workers, func(w int) {
		run := &groupRun{
			baseSpent: make(map[utxo.Outpoint]struct{}),
			cbSpent:   make(map[utxo.Outpoint]struct{}),
			created:   make(map[utxo.Outpoint]utxo.TxOut),
		}
		runs[w] = run
		for _, gi := range schedule.Assignments[w] {
			for _, ti := range groups[gi] {
				if run.err = e.validateTx(set, coinbaseOuts, run, regular[ti]); run.err != nil {
					return
				}
			}
		}
	})
	for w, run := range runs {
		if run != nil && run.err != nil {
			return nil, fmt.Errorf("%w: worker %d: %w", ErrParallelValidation, w, run.err)
		}
	}

	// Merge: cross-component double spends and duplicate creations, then
	// the coinbase value rule, then the atomic commit.
	var spent []utxo.Outpoint
	seenSpent := make(map[utxo.Outpoint]struct{})
	seenCBSpent := make(map[utxo.Outpoint]struct{})
	created := make(map[utxo.Outpoint]utxo.TxOut)
	var fees utxo.Amount
	// Merging iterates each run's sets in canonical outpoint order: the
	// merge can reject the block, and which duplicate a rejection names
	// must not depend on map iteration order, or replicas replaying the
	// same invalid block would disagree on the rejection reason.
	for _, run := range runs {
		if run == nil {
			continue
		}
		for _, op := range sortedOutpoints(run.baseSpent) {
			if _, dup := seenSpent[op]; dup {
				return nil, fmt.Errorf("%w: %v", utxo.ErrDuplicateSpend, op)
			}
			seenSpent[op] = struct{}{}
			spent = append(spent, op)
		}
		for _, op := range sortedOutpoints(run.cbSpent) {
			if _, dup := seenCBSpent[op]; dup {
				return nil, fmt.Errorf("%w: %v", utxo.ErrDuplicateSpend, op)
			}
			seenCBSpent[op] = struct{}{}
		}
		for _, op := range sortedOutpoints(run.created) {
			if _, dup := created[op]; dup {
				return nil, fmt.Errorf("%w: %v", utxo.ErrDuplicateCreate, op)
			}
			created[op] = run.created[op]
		}
		fees += run.fees
	}
	if cb.OutputValue() > e.Subsidy+fees {
		return nil, fmt.Errorf("%w: coinbase mints %d > subsidy %d + fees %d",
			utxo.ErrBadCoinbase, cb.OutputValue(), e.Subsidy, fees)
	}
	for _, op := range sortedOutpoints(coinbaseOuts) {
		if _, spentInBlock := seenCBSpent[op]; spentInBlock {
			continue
		}
		if _, dup := created[op]; dup {
			return nil, fmt.Errorf("%w: %v", utxo.ErrDuplicateCreate, op)
		}
		created[op] = coinbaseOuts[op]
	}
	if err := set.ApplyDelta(spent, created); err != nil {
		return nil, fmt.Errorf("%w: commit: %w", ErrParallelValidation, err)
	}

	res := &UTXOResult{}
	x := len(regular)
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: tdg.Conflicted(),
		SeqUnits:   x,
		ParUnits:   schedule.Makespan,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, nil
}

// validateTx checks one transaction against the base set, the block's
// coinbase outputs and the group's own staged outputs (intra-component
// chains), recording spends, creations and fees.
func (e GroupedUTXO) validateTx(
	set *utxo.Set,
	coinbaseOuts map[utxo.Outpoint]utxo.TxOut,
	run *groupRun,
	tx *utxo.Transaction,
) error {
	if len(tx.Inputs) == 0 || len(tx.Outputs) == 0 {
		return utxo.ErrEmptyTx
	}
	var inValue utxo.Amount
	for j, in := range tx.Inputs {
		var out utxo.TxOut
		if staged, ok := run.created[in.Prev]; ok {
			// Intra-component chain: consume the staged output; nothing to
			// merge later.
			out = staged
			delete(run.created, in.Prev)
		} else if cbOut, ok := coinbaseOuts[in.Prev]; ok {
			if _, dup := run.cbSpent[in.Prev]; dup {
				return fmt.Errorf("%w: %v", utxo.ErrDuplicateSpend, in.Prev)
			}
			out = cbOut
			run.cbSpent[in.Prev] = struct{}{}
		} else {
			if _, dup := run.baseSpent[in.Prev]; dup {
				return fmt.Errorf("%w: %v", utxo.ErrDuplicateSpend, in.Prev)
			}
			var ok bool
			out, ok = set.Get(in.Prev)
			if !ok {
				return fmt.Errorf("%w: input %d (%v)", utxo.ErrMissingUTXO, j, in.Prev)
			}
			run.baseSpent[in.Prev] = struct{}{}
		}
		if e.VerifyScripts {
			if err := utxo.Run(in.Unlock, out.Script, tx.ID()); err != nil {
				return fmt.Errorf("%w: input %d: %w", utxo.ErrScriptReject, j, err)
			}
		}
		inValue += out.Value
	}
	outValue := tx.OutputValue()
	if outValue > inValue {
		return fmt.Errorf("%w: in %d < out %d", utxo.ErrValueConservation, inValue, outValue)
	}
	run.fees += inValue - outValue
	for k := range tx.Outputs {
		op := tx.Outpoint(k)
		if _, dup := run.created[op]; dup || set.Contains(op) {
			return fmt.Errorf("%w: %v", utxo.ErrDuplicateCreate, op)
		}
		run.created[op] = tx.Outputs[k]
	}
	return nil
}

// sortedOutpoints returns m's keys in canonical (TxID, Index) order, so the
// merge's results and rejection errors are identical across replicas
// regardless of Go's randomized map iteration.
func sortedOutpoints[V any](m map[utxo.Outpoint]V) []utxo.Outpoint {
	out := make([]utxo.Outpoint, 0, len(m))
	for op := range m {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := bytes.Compare(out[i].TxID[:], out[j].TxID[:]); c != 0 {
			return c < 0
		}
		return out[i].Index < out[j].Index
	})
	return out
}
