package exec

import (
	"sync"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/heat"
)

// ckptCapture is a CheckpointSink that keeps every snapshot it receives.
type ckptCapture struct {
	every int

	mu  sync.Mutex
	got map[int]*account.StateDB
}

func (c *ckptCapture) Interval() int { return c.every }

func (c *ckptCapture) Checkpoint(idx int, st *account.StateDB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got[idx] = st
}

func (c *ckptCapture) snapshots() map[int]*account.StateDB {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]*account.StateDB, len(c.got))
	//txlint:ordered keyed copy; distinct range keys write distinct entries
	for k, v := range c.got {
		out[k] = v
	}
	return out
}

// TestChainCheckpointsMatchSequentialPrefixes: every checkpoint the async
// worker hands the sink must be the exact committed state after its block
// — root equal to the sequential replay's prefix root — across shard
// counts, op-level modes and intervals, in both batch and streamed form.
// This is the correctness half of the durability contract: a checkpoint
// that diverged from the replayed prefix would poison every recovery that
// starts from it.
func TestChainCheckpointsMatchSequentialPrefixes(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardSkewProfile(), 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	for _, shards := range []int{1, 4} {
		for _, op := range []bool{false, true} {
			for _, every := range []int{1, 3, len(blocks)} {
				for _, stream := range []bool{false, true} {
					sink := &ckptCapture{every: every, got: make(map[int]*account.StateDB)}
					e := Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: 2, Checkpoint: sink}
					var res *ChainResult
					var css *ChainShardStats
					if stream {
						res, css, err = e.ExecuteChainStream(pre.Copy(), feed(blocks), nil)
					} else {
						res, css, err = e.ExecuteChain(pre.Copy(), blocks)
					}
					if err != nil {
						t.Fatalf("shards=%d op=%v every=%d stream=%v: %v", shards, op, every, stream, err)
					}
					seq.RequireChain(t, "checkpointed chain", res.Root, res.Receipts)

					snaps := sink.snapshots()
					if css.Checkpoints != len(snaps) {
						t.Fatalf("stats count %d checkpoints, sink received %d", css.Checkpoints, len(snaps))
					}
					points := len(blocks) / every
					if css.Checkpoints+css.CheckpointsSkipped != points {
						t.Fatalf("every=%d: %d+%d checkpoint points, want %d",
							every, css.Checkpoints, css.CheckpointsSkipped, points)
					}
					// The first enqueue always finds the worker's queue
					// empty, so at least one checkpoint must land.
					if points > 0 && css.Checkpoints == 0 {
						t.Fatalf("every=%d: all %d checkpoint points skipped", every, points)
					}
					for idx, st := range snaps {
						if (idx+1)%every != 0 {
							t.Fatalf("checkpoint at off-interval index %d (every=%d)", idx, every)
						}
						if got, want := st.Root(), seq.Roots[idx]; got != want {
							t.Fatalf("shards=%d op=%v every=%d stream=%v: checkpoint %d root %s, sequential prefix has %s",
								shards, op, every, stream, idx, got.Short(), want.Short())
						}
					}
				}
			}
		}
	}
}

// TestChainCheckpointsAcrossMigrations: checkpoints taken mid-chain under
// an adaptive map must still equal the sequential prefix state even when
// rebalance boundaries have migrated keys between shards — the newest-
// version-wins merge in materializeAt must see through the superseded
// copies migration leaves behind.
func TestChainCheckpointsAcrossMigrations(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardDriftProfile(), 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	sink := &ckptCapture{every: 2, got: make(map[int]*account.StateDB)}
	e := Sharded{Workers: 8, Depth: 2, Map: heat.NewAdaptiveMap(4, nil), RebalanceEvery: 3, Checkpoint: sink}
	res, css, err := e.ExecuteChain(pre.Copy(), blocks)
	if err != nil {
		t.Fatal(err)
	}
	seq.RequireChain(t, "adaptive checkpointed chain", res.Root, res.Receipts)
	if css.RebalanceEpochs == 0 {
		t.Fatal("fixture never rebalanced; the test is vacuous")
	}
	if css.Checkpoints == 0 {
		t.Fatal("no checkpoints received")
	}
	for idx, st := range sink.snapshots() {
		if got, want := st.Root(), seq.Roots[idx]; got != want {
			t.Fatalf("checkpoint %d root %s, sequential prefix has %s", idx, got.Short(), want.Short())
		}
	}
}
