package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/sched"
	"txconcur/internal/types"
)

// Engine errors.
var (
	// ErrNoWorkers reports an executor configured with fewer than one
	// worker.
	ErrNoWorkers = errors.New("exec: need at least one worker")
	// ErrGroupOverlap reports an oracle-TDG group schedule whose groups
	// touched overlapping state — a serial-equivalence violation (always a
	// bug: TDG components share no addresses).
	ErrGroupOverlap = errors.New("exec: scheduled groups touched overlapping state")
)

// Result is the outcome of executing one block.
type Result struct {
	// Receipts are the per-transaction receipts, in block order.
	Receipts []*account.Receipt
	// Root is the state root after the block (fees and reward included).
	Root types.Hash
	// Stats describes the execution schedule.
	Stats Stats
}

// Stats quantifies one engine run in the paper's unit-cost model plus wall
// time.
type Stats struct {
	// Workers is the configured core count n.
	Workers int
	// Txs is the number of transactions x.
	Txs int
	// Conflicted is the number of transactions the engine serialised: the
	// speculative bin of [17], the grouped engine's non-singleton
	// components, or STM aborts.
	Conflicted int
	// SeqUnits is the sequential execution time T = x under the paper's
	// unit-cost model.
	SeqUnits int
	// ParUnits is the engine's schedule length T′ in time units.
	ParUnits int
	// Speedup is SeqUnits/ParUnits — directly comparable to the paper's
	// equations (1) and (2).
	Speedup float64
	// GasSeq and GasPar are the same two quantities under gas costs
	// (real per-transaction weights) instead of unit costs.
	GasSeq uint64
	GasPar uint64
	// GasSpeedup is GasSeq/GasPar.
	GasSpeedup float64
	// Wall is the wall-clock duration of the execution phases.
	Wall time.Duration
	// Retries counts re-executions (STM aborts, speculative bin size).
	Retries int
}

func (s *Stats) finish() {
	s.Speedup = 1
	if s.ParUnits > 0 {
		s.Speedup = float64(s.SeqUnits) / float64(s.ParUnits)
	}
	s.GasSpeedup = 1
	if s.GasPar > 0 {
		s.GasSpeedup = float64(s.GasSeq) / float64(s.GasPar)
	}
}

// CostModel maps a committed transaction to its schedule weight. Engines
// that expose a Cost field use it in place of the receipt's gas wherever
// GasSeq/GasPar are accounted, so Stats.GasSpeedup becomes a speed-up
// under *measured* costs (e.g. an rwset trace's recorded gas) instead of
// the VM's. A nil model charges rcpt.GasUsed — the previous behaviour.
// Cost models must be pure: they are consulted from worker goroutines and
// may be called more than once per transaction.
type CostModel func(tx *account.Transaction, rcpt *account.Receipt) uint64

// costOf resolves one transaction's schedule weight under the model.
func costOf(m CostModel, tx *account.Transaction, rcpt *account.Receipt) uint64 {
	if rcpt == nil {
		return 0
	}
	if m == nil {
		return rcpt.GasUsed
	}
	return m(tx, rcpt)
}

// costSum is Σ costOf over a block's receipts.
func costSum(m CostModel, txs []*account.Transaction, rcpts []*account.Receipt) uint64 {
	if m == nil {
		return account.GasUsed(rcpts)
	}
	var sum uint64
	for i, r := range rcpts {
		if r == nil || i >= len(txs) {
			continue
		}
		sum += m(txs[i], r)
	}
	return sum
}

// procDeferred is the shared transaction processor configuration: fees are
// credited in one batch so that per-transaction coinbase payments do not
// serialise parallel schedules (see account.Processor.DeferCoinbase).
var procDeferred = account.Processor{DeferCoinbase: true}

// finalizeBlock credits the deferred fees and the block reward, exactly as
// the sequential ApplyBlock does.
func finalizeBlock(st *account.StateDB, blk *account.Block, receipts []*account.Receipt) {
	st.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
	st.AddBalance(blk.Coinbase, account.BlockReward)
	st.DiscardJournal()
}

// Sequential executes the block in order on st — the baseline every public
// blockchain implements (§II-A). st is mutated.
func Sequential(st *account.StateDB, blk *account.Block) (*Result, error) {
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	x := len(blk.Txs)
	receipts := make([]*account.Receipt, 0, x)
	for i, tx := range blk.Txs {
		rcpt, err := procDeferred.ApplyTransaction(st, blk, tx)
		if err != nil {
			return nil, fmt.Errorf("exec: sequential tx %d: %w", i, err)
		}
		receipts = append(receipts, rcpt)
	}
	finalizeBlock(st, blk, receipts)
	res := &Result{Receipts: receipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:  1,
		Txs:      x,
		SeqUnits: x,
		ParUnits: x,
		GasSeq:   account.GasUsed(receipts),
		GasPar:   account.GasUsed(receipts),
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, nil
}

// Speculative is the two-phase engine of Saraph & Herlihy [17], modelled by
// the paper's equation (1): phase one executes every transaction
// concurrently against the pre-block state, recording read/write sets at
// storage granularity; any transaction touching state written by another is
// moved to a bin; phase two re-executes the bin sequentially.
type Speculative struct {
	// Workers is the core count n used for schedule-length accounting.
	// Phase one runs on min(Workers, GOMAXPROCS) OS threads, so simulated
	// speed-ups for n = 64 remain meaningful on small machines.
	Workers int
	// OpLevel enables operation-level conflict refinement: balance credits
	// and debits are recorded as commutative deltas, so transactions that
	// only *add* to a shared account (hot-wallet deposits, flash-crowd
	// payments) no longer conflict with each other — only with readers and
	// absolute writers of that balance. Off, the engine uses the key-level
	// read/write rule of [17] that the paper's equation (1) models.
	OpLevel bool
	// Cost overrides the per-transaction schedule weight used for the
	// GasSeq/GasPar accounting; nil charges the receipt's gas.
	Cost CostModel
}

// Execute runs the block on st (mutated on success).
//
// Soundness: winners (unconflicted transactions) are pairwise independent
// by the symmetric conflict rule, so their phase-1 results equal their
// sequential results. The hazard is phase 2 itself: a binned transaction's
// *re-execution* can touch keys phase 1 never saw it touch (different
// branch after seeing different values, or an envelope failure that
// produced no phase-1 access sets) — in both directions. Its re-execution
// must not *observe* a later-ordered winner's write, so Execute stages the
// block into the accumulator strictly in block order (a binned transaction
// sees exactly its sequential prefix, never a later winner). And if its
// re-execution *writes* a key that a later-ordered winner touched, that
// winner's phase-1 result is stale: winners are validated against the
// per-transaction phase-2 write logs, with a fallback to plain sequential
// execution of the whole block (from the untouched pre-state) when the
// validation fails — rare in practice, counted in Stats.Retries.
func (e Speculative) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	//txlint:clock wall-clock timing metric only
	start := time.Now()
	x := len(blk.Txs)

	// Phase 1: every transaction runs on its own overlay over the
	// immutable pre-block state, all in parallel.
	overlays := make([]*overlay, x)
	phase1Receipts := make([]*account.Receipt, x)
	phase1Fail := make([]bool, x)
	parallelFor(x, e.Workers, func(i int) {
		o := newOverlayOp(st, e.OpLevel)
		rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[i])
		if err != nil {
			// Envelope failure against the pre-block state (e.g. a nonce
			// that depends on an earlier in-block transaction): binned for
			// sequential re-execution, like any other conflict.
			phase1Fail[i] = true
		} else {
			phase1Receipts[i] = rcpt
		}
		overlays[i] = o
	})

	// Conflict detection: symmetric storage-layer rule of [17] — every
	// transaction involved in a collision goes to the sequential bin (the
	// conservative reading the paper discusses in §III-A5).
	ac := countAccesses(overlays)
	binned := make([]bool, x)
	numBinned := 0
	for i, o := range overlays {
		if phase1Fail[i] || o.conflicted(ac) {
			binned[i] = true
			numBinned++
		}
	}

	// Phase 2: stage the block into an accumulator overlay strictly in
	// block order (nothing touches st yet) — winners contribute their
	// phase-1 overlays, binned transactions re-execute against the exact
	// prefix staged so far. Ordered staging matters: a binned transaction's
	// re-execution may read keys its phase-1 run never touched, and those
	// reads must observe only *earlier* transactions, never a later
	// winner's write. Each binned transaction's writes are logged (delta
	// writes included: a winner that *read* a delta-written balance is
	// stale); phase2MinWriter[k] is the smallest binned index that wrote k.
	acc := newOverlayOp(st, e.OpLevel)
	receipts := make([]*account.Receipt, x)
	phase2MinWriter := make(map[StateKey]int)
	logWriter := func(k StateKey, i int) {
		if _, seen := phase2MinWriter[k]; !seen {
			phase2MinWriter[k] = i
		}
	}
	for i, tx := range blk.Txs {
		if !binned[i] {
			overlays[i].applyTo(acc)
			receipts[i] = phase1Receipts[i]
			continue
		}
		o := newOverlayOp(acc, e.OpLevel)
		rcpt, err := procDeferred.ApplyTransaction(o, blk, tx)
		if err != nil {
			return nil, fmt.Errorf("exec: speculative phase 2, tx %d: %w", i, err)
		}
		receipts[i] = rcpt
		//txlint:ordered logWriter keeps the first-writer minimum per key with i fixed for the loop; per-key first-win with an invariant value commutes
		for k := range o.writes {
			logWriter(k, i)
		}
		//txlint:ordered same per-key first-win as above; deltaKey maps distinct addresses to distinct keys
		for a := range o.deltas {
			logWriter(deltaKey(a), i)
		}
		o.applyTo(acc)
	}

	// Validate winners: a winner is stale if a binned transaction that
	// precedes it in block order wrote a key the winner read or absolutely
	// wrote. A winner's *delta* writes need no check: deltas commute with
	// every phase-2 write to the same balance (absolute balance writes do
	// not exist in op-level mode), so the accumulated sum is order-free.
	valid := true
	if len(phase2MinWriter) > 0 {
	validate:
		for i, o := range overlays {
			if binned[i] {
				continue
			}
			//txlint:ordered only effect is the constant valid=false before the labeled break; skipped iterations could only re-set the same constant
			for k := range o.writes {
				if j, ok := phase2MinWriter[k]; ok && j < i {
					valid = false
					break validate
				}
			}
			//txlint:ordered same single-constant-flag scan as the writes loop above
			for k := range o.reads {
				if j, ok := phase2MinWriter[k]; ok && j < i {
					valid = false
					break validate
				}
			}
		}
	}

	retried := 0
	if valid {
		acc.applyTo(st)
	} else {
		// Sound fallback: the pre-state is untouched; execute the whole
		// block sequentially.
		for i, tx := range blk.Txs {
			rcpt, err := procDeferred.ApplyTransaction(st, blk, tx)
			if err != nil {
				return nil, fmt.Errorf("exec: speculative fallback tx %d: %w", i, err)
			}
			receipts[i] = rcpt
			retried++
		}
	}
	finalizeBlock(st, blk, receipts)

	var gasBin uint64
	for i, r := range receipts {
		if binned[i] {
			gasBin += costOf(e.Cost, blk.Txs[i], r)
		}
	}
	gasSeq := costSum(e.Cost, blk.Txs, receipts)
	res := &Result{Receipts: receipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: numBinned,
		SeqUnits:   x,
		// T′ = ⌈x/n⌉ + c·x: the exact form of the paper's equation (1)
		// (⌊x/n⌋+1 is its printed upper bound), plus the rare full
		// sequential fallback.
		ParUnits: ceilDiv(x, e.Workers) + numBinned + retried,
		GasSeq:   gasSeq,
		GasPar:   ceilDivU(gasSeq, uint64(e.Workers)) + gasBin,
		Retries:  numBinned + retried,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	if x == 0 {
		res.Stats.ParUnits = 0
	}
	res.Stats.finish()
	return res, nil
}

// Grouped is the group-concurrency engine the paper's equation (2) models:
// connected components of the TDG are scheduled onto workers with LPT and
// executed in parallel; transactions within a component run sequentially in
// block order. Components share no addresses, so workers never race.
type Grouped struct {
	// Workers is the core count n.
	Workers int
	// Approx builds the TDG from regular transactions only (no internal
	// transactions), the a-priori approximation of §V-C. Hidden conflicts
	// are detected by write-set overlap and repaired by sequential
	// re-execution, and counted in Stats.Retries.
	Approx bool
	// Refined schedules on the operation-level TDG
	// (core.BuildAccountRefined): pure delta–delta edges — transfers whose
	// receiver is only ever credited within the block — do not merge
	// components, so hot-key deposits spread across workers instead of
	// serialising in one giant group. Workers then record balance credits
	// as commutative deltas, which the overlap validation permits across
	// workers (the credits commute); everything else still overlaps as
	// before.
	Refined bool
	// Receipts optionally supplies the block's known receipts (oracle
	// TDG). When nil, a sequential pre-run on a copy derives them — the
	// pre-processing step whose cost the paper calls K.
	Receipts []*account.Receipt
	// Cost overrides the per-transaction schedule weight used for the
	// gas-weighted LPT schedule and the GasSeq/GasPar accounting; nil
	// charges the receipt's gas.
	Cost CostModel
}

// Execute runs the block on st (mutated on success).
func (e Grouped) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	//txlint:clock wall-clock timing metric only
	start := time.Now()
	x := len(blk.Txs)

	receipts := e.Receipts
	if receipts == nil {
		pre := st.Copy()
		seq, err := Sequential(pre, blk)
		if err != nil {
			return nil, fmt.Errorf("exec: grouped pre-run: %w", err)
		}
		receipts = seq.Receipts
	}
	groups := groupsFromReceipts(blk, receipts, e.Approx, e.Refined)

	// LPT-schedule groups onto workers, unit cost per transaction.
	jobs := make([]int, len(groups))
	for gi, g := range groups {
		jobs[gi] = len(g)
	}
	schedule, err := sched.LPT(jobs, e.Workers)
	if err != nil {
		return nil, fmt.Errorf("exec: grouped: %w", err)
	}
	gasJobs := scheduleGas(groups, blk, receipts, e.Cost)
	gasSchedule, err := sched.LPT(gasJobs, e.Workers)
	if err != nil {
		return nil, fmt.Errorf("exec: grouped: %w", err)
	}

	// Execute: one overlay per worker; groups within a worker run
	// sequentially, transactions within a group in block order. Each
	// worker records its own transactions' receipts (disjoint slots, so no
	// synchronisation is needed): the supplied receipts drive *scheduling*
	// only, never the result.
	workerOverlays := make([]*overlay, e.Workers)
	workerErrs := make([]error, e.Workers)
	workerReceipts := make([]*account.Receipt, x)
	parallelFor(e.Workers, e.Workers, func(w int) {
		o := newOverlayOp(st, e.Refined)
		workerOverlays[w] = o
		for _, gi := range schedule.Assignments[w] {
			for _, ti := range groups[gi] {
				rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[ti])
				if err != nil {
					workerErrs[w] = fmt.Errorf("group %d tx %d: %w", gi, ti, err)
					return
				}
				workerReceipts[ti] = rcpt
			}
		}
	})

	// Validate: with the oracle TDG, workers can never overlap (components
	// share no addresses) and never fail (per-sender order is preserved
	// inside components). With the approximate TDG of §V-C, internal
	// transactions are invisible, so hidden cross-group conflicts are
	// possible; they are detected here and repaired by discarding the
	// parallel attempt and executing the block sequentially — a sound
	// fallback whose frequency is exactly the "effectiveness of the
	// approximate TDG" the paper leaves as future work. Nothing is
	// committed until validation passes, so repair needs no rollback.
	clean := !anyOverlap(workerOverlays, workerErrs)
	retried := 0
	finalReceipts := make([]*account.Receipt, x)
	if clean {
		for _, o := range workerOverlays {
			o.applyTo(st)
		}
		copy(finalReceipts, workerReceipts)
	} else {
		if !e.Approx {
			return nil, ErrGroupOverlap
		}
		for i, tx := range blk.Txs {
			rcpt, err := procDeferred.ApplyTransaction(st, blk, tx)
			if err != nil {
				return nil, fmt.Errorf("exec: grouped fallback tx %d: %w", i, err)
			}
			finalReceipts[i] = rcpt
			retried++
		}
	}
	finalizeBlock(st, blk, finalReceipts)

	conflicted := 0
	for _, g := range groups {
		if len(g) >= 2 {
			conflicted += len(g)
		}
	}
	parUnits := schedule.Makespan + retried
	gasPar := uint64(gasSchedule.Makespan)
	if retried > 0 {
		gasPar += costSum(e.Cost, blk.Txs, finalReceipts)
	}
	res := &Result{Receipts: finalReceipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: conflicted,
		SeqUnits:   x,
		ParUnits:   parUnits,
		GasSeq:     costSum(e.Cost, blk.Txs, finalReceipts),
		GasPar:     gasPar,
		Retries:    retried,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, nil
}

// anyOverlap reports whether any worker failed or any state key was written
// by one worker and read or written by another. Delta writes are exempt
// from the delta–delta case only: two workers blindly crediting the same
// balance commute, but a delta still overlaps with another worker's read or
// absolute write of that key.
func anyOverlap(overlays []*overlay, errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return true
		}
	}
	writer := make(map[StateKey]int)
	for w, o := range overlays {
		if o == nil {
			continue
		}
		//txlint:ordered writer is a local first-win index with w fixed per loop; an early return true discards it unobserved
		for k := range o.writes {
			if prev, ok := writer[k]; ok && prev != w {
				return true
			}
			writer[k] = w
		}
	}
	// deltaOwner[k] is the sole delta-writing worker, or -1 once several
	// workers delta-write k (legal between themselves).
	deltaOwner := make(map[StateKey]int)
	for w, o := range overlays {
		if o == nil {
			continue
		}
		//txlint:ordered deltaOwner updates commute per key and the map dies with the function on the early return
		for a := range o.deltas {
			k := deltaKey(a)
			if fw, ok := writer[k]; ok && fw != w {
				return true
			}
			if prev, ok := deltaOwner[k]; !ok {
				deltaOwner[k] = w
			} else if prev != w {
				deltaOwner[k] = -1
			}
		}
	}
	for w, o := range overlays {
		if o == nil {
			continue
		}
		for k := range o.reads {
			if fw, ok := writer[k]; ok && fw != w {
				return true
			}
			if dw, ok := deltaOwner[k]; ok && dw != w {
				return true
			}
		}
	}
	return false
}

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines
// (capped by GOMAXPROCS; extra logical workers add no parallelism).
func parallelFor(n, workers int, fn func(int)) {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ceilDiv returns ⌈a/b⌉ for ints. A non-positive divisor is always a
// misconfigured worker or bin count that the caller failed to validate
// (every engine rejects Workers < 1 with ErrNoWorkers before scheduling);
// returning a silently, as an earlier version did, masked such bugs as
// plausible-looking schedule lengths.
func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("exec: ceilDiv with non-positive divisor %d", b))
	}
	return (a + b - 1) / b
}

// ceilDivU returns ⌈a/b⌉ for uint64s. As with ceilDiv, a zero divisor is a
// caller bug and panics rather than masquerading as a schedule length.
func ceilDivU(a, b uint64) uint64 {
	if b == 0 {
		panic("exec: ceilDivU with zero divisor")
	}
	return (a + b - 1) / b
}

// groupsFromReceipts builds the TDG transaction groups for a block given
// its receipts (oracle mode) or from regular transactions only (approx).
// refined drops pure delta–delta edges (operation-level scheduling).
func groupsFromReceipts(blk *account.Block, receipts []*account.Receipt, approx, refined bool) [][]int {
	v := core.ViewFromReceipts(blk, receipts)
	if approx {
		v = &core.AccountBlockView{Regular: v.Regular, GasUsed: v.GasUsed, Transfer: v.Transfer}
	}
	var tdg *core.TDG
	if refined {
		tdg = core.BuildAccountRefined(v)
	} else if approx {
		tdg = core.BuildAccountApprox(v)
	} else {
		tdg = core.BuildAccount(v)
	}
	return tdg.TxGroups()
}

// scheduleGas converts transaction groups into cost-weighted job lengths
// (the receipt's gas under a nil model).
func scheduleGas(groups [][]int, blk *account.Block, receipts []*account.Receipt, cost CostModel) []int {
	jobs := make([]int, len(groups))
	for gi, g := range groups {
		for _, ti := range g {
			if ti < len(receipts) && receipts[ti] != nil {
				jobs[gi] += int(costOf(cost, blk.Txs[ti], receipts[ti]))
			}
		}
	}
	return jobs
}
