package exec

import (
	"fmt"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/mvstore"
	"txconcur/internal/types"
)

// Pipeline is the two-phase pipelined engine: phase 1 executes every
// transaction of a block optimistically against a multi-version snapshot,
// recording read/write sets; phase 2 validates in block order and
// re-executes only the transactions whose reads went stale. Because the
// state cache is multi-version (package mvstore), phase 1 of block b+1 runs
// concurrently with phase 2 of block b — the Octopus-style design that
// overlaps execution and validation across blocks instead of serialising
// every block on one global commit lock.
//
// Unlike Speculative (whose conflicted bin re-executes *after* a barrier
// over the whole block, with a full sequential fallback when phase 2
// invalidates a winner) the pipeline validates and repairs per transaction
// at its commit point, so an intra-block conflict costs exactly one
// re-execution, and cross-block staleness — the price of running ahead —
// is detected by per-key version checks rather than a global clock.
//
// Serial equivalence: phase 2 accepts a phase-1 result only if none of its
// read keys were written by an earlier transaction of the same block nor by
// any block committed after its snapshot; accepted results therefore equal
// their sequential execution, and rejected transactions re-execute against
// the exact sequential prefix state. The regression tests enforce receipt
// and state-root equality with Sequential on every chainsim profile.
type Pipeline struct {
	// Workers is the core count n used by phase 1 and for schedule-length
	// accounting.
	Workers int
	// Depth is the buffer between the phases: phase 1 may hold Depth
	// completed blocks awaiting validation, plus the one it is currently
	// executing, so snapshots can be up to Depth+1 blocks stale. 0 means
	// 1. Deeper lookahead buys more overlap at the price of staler
	// snapshots (more re-executions).
	Depth int
	// OpLevel records balance credits/debits as commutative deltas: blind
	// credits carry no read of the hot key, so they neither fail validation
	// when another transaction (or a previously committed block) credited
	// the same account, nor invalidate later blind credits. Blocks commit
	// delta writes to the multi-version cache as mvstore.DeltaAdd versions,
	// which merge at read time instead of superseding each other; an
	// explicit balance read still materialises every committed delta and
	// re-establishes the dependency.
	OpLevel bool
	// FixedLag makes phase-1 snapshots deterministic: block i speculates
	// against timestamp max(0, i−Depth−1) — the worst-case lag the channel
	// backpressure guarantees is already committed — instead of whatever
	// the committer happens to have finished (PinLatest). Re-execution
	// counts and ParUnits then depend only on the workload, never on
	// scheduler timing; E8 uses this so its key-level vs operation-level
	// pipeline columns are exactly comparable. Slightly pessimistic: the
	// adaptive default usually observes a smaller lag.
	FixedLag bool
	// Cost overrides the per-transaction schedule weight used for the
	// GasSeq/GasPar accounting; nil charges the receipt's gas.
	Cost CostModel
	// Backend, if non-nil, is the disk-backed base layer below the version
	// cache: after each GC pass the committer evicts cold, fully resolved
	// keys beyond CacheBudget into it, and cache misses read through to it
	// before falling back to the pre-chain state. nil keeps the historical
	// all-RAM behaviour.
	Backend StateBackend
	// CacheBudget is the target resident key count of the version cache
	// when Backend is set: eviction trims cold keys down to it (0 evicts
	// every cold key each pass). Ignored without a Backend.
	CacheBudget int
}

// BlockStats describes the pipeline's work on one block.
type BlockStats struct {
	// Txs is the number of transactions in the block.
	Txs int
	// Reexecuted is how many of them failed validation (stale reads,
	// intra-block conflicts, or phase-1 envelope failures) and were
	// re-executed serially in phase 2.
	Reexecuted int
	// Lag is the staleness of the phase-1 snapshot in blocks: 0 means
	// phase 1 ran against the immediately preceding block's committed
	// state; k means k blocks committed between snapshot and validation.
	Lag int
}

// ChainResult is the outcome of executing a sequence of blocks through the
// pipeline.
type ChainResult struct {
	// Receipts holds the per-block, per-transaction receipts in order.
	Receipts [][]*account.Receipt
	// Root is the state root after the last block.
	Root types.Hash
	// Stats aggregates the whole chain under the paper's unit-cost model;
	// ParUnits is the two-stage flow-shop makespan (phase 1 of block b+1
	// overlapping phase 2 of block b).
	Stats Stats
	// Blocks holds per-block counters.
	Blocks []BlockStats
	// Evicted counts version chains the committer moved from the cache to
	// the state backend; ColdReads counts reads the backend served after
	// their key was evicted. Both zero without a backend.
	Evicted   int
	ColdReads int
}

// snapState adapts a multi-version snapshot layered over an immutable base
// — the pre-chain StateDB, or a backedState reading through the disk base
// layer first — to the account.State reads. All execution writes go
// through recording overlays, never through their base, so the mutators
// panic to surface any violation of that invariant.
type snapState struct {
	base baseState
	snap *mvstore.Snapshot[StateKey, stateVal]
}

var _ account.State = (*snapState)(nil)

// GetBalance implements vm.State. Balances resolve through the version
// chain: committed delta versions fold onto the newest absolute version, or
// onto the base state's balance when the chain holds only deltas.
func (s *snapState) GetBalance(a types.Address) int64 {
	k := StateKey{Kind: kindBalance, Addr: a}
	return s.snap.Resolve(k, stateVal{i64: s.base.GetBalance(a)}).i64
}

// GetNonce implements account.State.
func (s *snapState) GetNonce(a types.Address) uint64 {
	if v, ok := s.snap.Get(StateKey{Kind: kindNonce, Addr: a}); ok {
		return v.u64
	}
	return s.base.GetNonce(a)
}

// GetCode implements vm.State.
func (s *snapState) GetCode(a types.Address) []byte {
	if v, ok := s.snap.Get(StateKey{Kind: kindCode, Addr: a}); ok {
		return v.bytes
	}
	return s.base.GetCode(a)
}

// GetStorage implements vm.State.
func (s *snapState) GetStorage(a types.Address, slot uint64) uint64 {
	if v, ok := s.snap.Get(StateKey{Kind: kindStorage, Addr: a, Slot: slot}); ok {
		return v.u64
	}
	return s.base.GetStorage(a, slot)
}

// Snapshot implements vm.State; snapshots of an immutable view are free.
func (s *snapState) Snapshot() int { return 0 }

// RevertToSnapshot implements vm.State; nothing was written, nothing to do.
func (s *snapState) RevertToSnapshot(int) {}

func (s *snapState) AddBalance(types.Address, int64) { panic("exec: write to mv snapshot") }
func (s *snapState) SubBalance(types.Address, int64) { panic("exec: write to mv snapshot") }
func (s *snapState) SetNonce(types.Address, uint64)  { panic("exec: write to mv snapshot") }
func (s *snapState) SetCode(types.Address, []byte)   { panic("exec: write to mv snapshot") }
func (s *snapState) SetStorage(types.Address, uint64, uint64) {
	panic("exec: write to mv snapshot")
}

// specBlock carries one block's phase-1 output from the speculative stage
// to the validation stage.
type specBlock struct {
	idx      int
	overlays []*overlay
	receipts []*account.Receipt
	failed   []bool
	snap     *mvstore.Snapshot[StateKey, stateVal]
}

// foldResolvedInto returns a RangeLatestResolved callback that folds a
// multi-version store's newest values into the given state database.
// Anchored chains materialise to absolute values; a balance that was only
// ever delta-written resolves to its accumulated delta, applied on top of
// the base balance in st. Shared by the pipeline's end-of-chain fold and
// the sharded engine's per-shard sub-block folds.
func foldResolvedInto(st *account.StateDB) func(k StateKey, v stateVal, anchored bool) bool {
	return func(k StateKey, v stateVal, anchored bool) bool {
		switch {
		case k.Kind == kindBalance && !anchored:
			st.AddBalance(k.Addr, v.i64)
		case k.Kind == kindBalance:
			st.AddBalance(k.Addr, v.i64-st.GetBalance(k.Addr))
		case k.Kind == kindNonce:
			st.SetNonce(k.Addr, v.u64)
		case k.Kind == kindCode:
			st.SetCode(k.Addr, v.bytes)
		case k.Kind == kindStorage:
			st.SetStorage(k.Addr, k.Slot, v.u64)
		}
		return true
	}
}

// overlayWrites converts an overlay's buffered values into the
// multi-version store's write-set representation: absolute values as Put
// versions, accumulated balance deltas as DeltaAdd versions that merge with
// — rather than supersede — the chain below them.
func overlayWrites(o *overlay) map[StateKey]mvstore.Write[stateVal] {
	w := make(map[StateKey]mvstore.Write[stateVal],
		len(o.balances)+len(o.deltas)+len(o.nonces)+len(o.codes)+len(o.storage))
	for a, v := range o.balances {
		w[StateKey{Kind: kindBalance, Addr: a}] = mvstore.Write[stateVal]{Kind: mvstore.Put, Val: stateVal{i64: v}}
	}
	for a, d := range o.deltas {
		w[StateKey{Kind: kindBalance, Addr: a}] = mvstore.Write[stateVal]{Kind: mvstore.DeltaAdd, Val: stateVal{i64: d}}
	}
	for a, n := range o.nonces {
		w[StateKey{Kind: kindNonce, Addr: a}] = mvstore.Write[stateVal]{Kind: mvstore.Put, Val: stateVal{u64: n}}
	}
	for a, c := range o.codes {
		w[StateKey{Kind: kindCode, Addr: a}] = mvstore.Write[stateVal]{Kind: mvstore.Put, Val: stateVal{bytes: c}}
	}
	for sk, v := range o.storage {
		w[StateKey{Kind: kindStorage, Addr: sk.Addr, Slot: sk.Slot}] = mvstore.Write[stateVal]{Kind: mvstore.Put, Val: stateVal{u64: v}}
	}
	return w
}

// Execute runs a single block through the pipeline (engine-interface
// parity with the other executors; with one block there is nothing to
// overlap, so this degenerates to optimistic execution plus in-order
// validation). st is mutated on success.
func (e Pipeline) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	cr, err := e.ExecuteChain(st, []*account.Block{blk})
	if err != nil {
		return nil, err
	}
	return &Result{Receipts: cr.Receipts[0], Root: cr.Root, Stats: cr.Stats}, nil
}

// ExecuteChain executes blocks in order on st (mutated on success), with
// phase 1 of later blocks overlapping phase 2 of earlier ones.
//
// Timestamps: logical time 0 is st as given; block i commits its write set
// to the multi-version cache at time i+1. Nothing touches st until every
// block has validated, so the speculative stage can read it lock-free; the
// cache's newest values are folded into st once at the end.
func (e Pipeline) ExecuteChain(st *account.StateDB, blocks []*account.Block) (*ChainResult, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	depth := e.Depth
	if depth < 1 {
		depth = 1
	}
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	mv := mvstore.NewStoreDelta[StateKey, stateVal](mergeStateVal)

	// The speculative base: the pre-chain state, read through the disk
	// base layer when one is configured (evicted keys resolve from it).
	var bs baseState = st
	var bst *backedState
	if e.Backend != nil {
		bst = &backedState{st: st, be: e.Backend}
		bs = bst
	}

	// Stage 1: speculative execution, one block at a time, each transaction
	// on its own read/write-recording overlay over a pinned snapshot. The
	// channel buffer is the pipeline depth: stage 1 runs at most depth
	// blocks ahead of stage 2.
	specCh := make(chan specBlock, depth)
	done := make(chan struct{})
	// abort stops the speculative stage and waits for it to exit before an
	// error return: otherwise its workers would keep reading st after the
	// caller regains ownership of it. Draining specCh both releases the
	// buffered snapshot pins and blocks until the goroutine's deferred
	// close.
	abort := func() {
		close(done)
		for sb := range specCh {
			sb.snap.Release()
		}
	}
	go func() {
		defer close(specCh)
		for i, blk := range blocks {
			var snap *mvstore.Snapshot[StateKey, stateVal]
			if e.FixedLag {
				// Deterministic pessimistic snapshot. When stage 1 starts
				// block i it has pushed blocks 0..i−1 through a channel of
				// capacity depth, so stage 2 has received at least i−depth
				// of them and committed all but its current one: timestamp
				// i−depth−1 is guaranteed durable.
				ts := 0
				if i > depth {
					ts = i - depth - 1
				}
				snap = mv.PinAt(uint64(ts))
			} else {
				snap = mv.PinLatest()
			}
			ss := &snapState{base: bs, snap: snap}
			x := len(blk.Txs)
			sb := specBlock{
				idx:      i,
				overlays: make([]*overlay, x),
				receipts: make([]*account.Receipt, x),
				failed:   make([]bool, x),
				snap:     snap,
			}
			parallelFor(x, e.Workers, func(j int) {
				o := newOverlayOp(ss, e.OpLevel)
				rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[j])
				if err != nil {
					// Envelope failure against the snapshot (e.g. a nonce
					// depending on an earlier in-flight transaction): phase 2
					// re-executes it against the true prefix state.
					sb.failed[j] = true
				} else {
					sb.receipts[j] = rcpt
				}
				sb.overlays[j] = o
			})
			//txlint:clock send-vs-shutdown arbitration; stage 2 validates and commits strictly in block order either way
			select {
			case specCh <- sb:
			case <-done:
				snap.Release()
				return
			}
		}
	}()

	// Stage 2: validate and commit, strictly in block order.
	all := make([][]*account.Receipt, len(blocks))
	blockStats := make([]BlockStats, len(blocks))
	p1Units := make([]int, len(blocks))
	p2Units := make([]int, len(blocks))
	p1Gas := make([]uint64, len(blocks))
	p2Gas := make([]uint64, len(blocks))
	var seqUnits int
	var gasSeq uint64
	evicted := 0

	for sb := range specCh {
		blk := blocks[sb.idx]
		commitTS := uint64(sb.idx) + 1
		specTS := sb.snap.TS()
		x := len(blk.Txs)

		// acc accumulates the block's true (sequential-prefix) writes over
		// the committed state as of the previous block.
		acc := newOverlayOp(&snapState{base: bs, snap: mv.At(commitTS - 1)}, e.OpLevel)
		// blockWrites holds every key written so far by this block —
		// absolute writes and deltas alike, since a later transaction that
		// *read* the key missed either kind in its snapshot.
		blockWrites := make(map[StateKey]struct{})
		logWrites := func(o *overlay) {
			for k := range o.writes {
				blockWrites[k] = struct{}{}
			}
			for a := range o.deltas {
				blockWrites[deltaKey(a)] = struct{}{}
			}
		}
		// When the snapshot already reflects the previous block, no
		// committed version can postdate it — only intra-block conflicts
		// need checking.
		stale := specTS < commitTS-1
		receipts := make([]*account.Receipt, x)
		reexec := 0
		var gasRetried uint64
		for i, tx := range blk.Txs {
			o := sb.overlays[i]
			ok := !sb.failed[i]
			if ok {
				//txlint:ordered read-only staleness probe; sole effect is the constant ok=false set immediately before break
				for k := range o.reads {
					if _, hit := blockWrites[k]; hit {
						ok = false
						break
					}
					if stale && mv.ChangedSince(k, specTS) {
						ok = false
						break
					}
				}
			}
			if ok {
				// Clean reads: the phase-1 result is the sequential result.
				// (A transaction whose only touch of a hot key is a blind
				// delta has no read of it, so concurrent credits — intra- or
				// cross-block — never send it here.)
				receipts[i] = sb.receipts[i]
				o.applyTo(acc)
				logWrites(o)
				continue
			}
			// Stale or failed: re-execute against the exact prefix state. An
			// envelope error here means the block itself is invalid.
			ro := newOverlayOp(acc, e.OpLevel)
			rcpt, err := procDeferred.ApplyTransaction(ro, blk, tx)
			if err != nil {
				sb.snap.Release()
				abort()
				return nil, fmt.Errorf("exec: pipeline block %d tx %d: %w", blk.Height, i, err)
			}
			receipts[i] = rcpt
			ro.applyTo(acc)
			logWrites(ro)
			reexec++
			gasRetried += costOf(e.Cost, tx, rcpt)
		}

		// Deferred fees and block reward, exactly as finalizeBlock does.
		acc.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		acc.AddBalance(blk.Coinbase, account.BlockReward)

		if err := mv.CommitWrites(commitTS, overlayWrites(acc)); err != nil {
			sb.snap.Release()
			abort()
			return nil, fmt.Errorf("exec: pipeline block %d: %w", blk.Height, err)
		}
		sb.snap.Release()
		// Epoch GC: reclaim versions no live snapshot can observe. In
		// fixed-lag mode the horizon must stop at the oldest timestamp a
		// *future* pin may still request (block j ≥ idx+1 pins j−depth−1):
		// PinAt cannot resurrect collected versions, and a freer horizon
		// would reintroduce exactly the scheduling-dependent phase-1 reads
		// FixedLag exists to eliminate.
		horizon := commitTS
		if e.FixedLag {
			horizon = 0
			if commitTS > uint64(depth)+1 {
				horizon = commitTS - uint64(depth) - 1
			}
		}
		mv.TruncateBelow(horizon)
		// Cold-key eviction: after GC, move fully resolved cold keys
		// beyond the cache budget into the base layer. A backend failure —
		// here or latched by a concurrent cold read — aborts the chain; a
		// half-evicted batch is harmless (persist happens before drop, so
		// the backend only ever holds values the cache no longer shadows
		// incorrectly).
		if bst != nil {
			ev, err := evictCold(mv, bst, horizon, e.CacheBudget)
			if err == nil {
				err = bst.Err()
			}
			if err != nil {
				abort()
				return nil, fmt.Errorf("exec: pipeline block %d: state backend: %w", blk.Height, err)
			}
			evicted += ev
		}

		all[sb.idx] = receipts
		gasBlock := costSum(e.Cost, blk.Txs, receipts)
		blockStats[sb.idx] = BlockStats{
			Txs:        x,
			Reexecuted: reexec,
			Lag:        int(commitTS-1) - int(specTS),
		}
		p1Units[sb.idx] = ceilDiv(x, e.Workers)
		p2Units[sb.idx] = reexec
		p1Gas[sb.idx] = ceilDivU(gasBlock, uint64(e.Workers))
		p2Gas[sb.idx] = gasRetried
		seqUnits += x
		gasSeq += gasBlock
	}

	// Fold the base layer's entries, then the cache's newest values, into
	// the caller's state database — in that order: cache chains are
	// strictly newer than the base values their keys evicted to.
	if bst != nil {
		err := bst.Err()
		if err == nil {
			err = foldBackendInto(bst.be, st)
		}
		if err != nil {
			return nil, fmt.Errorf("exec: pipeline: state backend: %w", err)
		}
	}
	mv.RangeLatestResolved(foldResolvedInto(st))
	st.DiscardJournal()

	res := &ChainResult{Receipts: all, Root: st.Root(), Blocks: blockStats, Evicted: evicted}
	if bst != nil {
		res.ColdReads = bst.ColdReads()
	}
	conflicted := 0
	for _, bs := range blockStats {
		conflicted += bs.Reexecuted
	}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        seqUnits,
		Conflicted: conflicted,
		SeqUnits:   seqUnits,
		ParUnits:   flowShopMakespan(p1Units, p2Units),
		GasSeq:     gasSeq,
		GasPar:     flowShopMakespan(p1Gas, p2Gas),
		Retries:    conflicted,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, nil
}

// flowShopMakespan is the classic two-machine flow-shop completion-time
// recurrence with a fixed job order: machine 1 (speculative execution)
// processes blocks back to back; machine 2 (validation/re-execution) starts
// block b as soon as both machine 1 finished b and machine 2 finished b-1.
// This is exactly the pipeline's schedule length under the paper's
// unit-cost model (or gas-weighted costs): validation of block b overlaps
// execution of block b+1.
func flowShopMakespan[T int | uint64](p1, p2 []T) T {
	var c1, c2 T
	for i := range p1 {
		c1 += p1[i]
		if c1 > c2 {
			c2 = c1
		}
		c2 += p2[i]
	}
	return c2
}
