package exec

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
)

// runOpLevelEngines executes blk with every engine in operation-level mode
// and asserts root and receipt agreement with the sequential baseline.
func runOpLevelEngines(t *testing.T, st *account.StateDB, blk *account.Block, workers int) map[string]*Result {
	t.Helper()
	seq, err := Sequential(st.Copy(), blk)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	results := map[string]*Result{"sequential": seq}
	engines := map[string]func(*account.StateDB, *account.Block) (*Result, error){
		"speculative-op": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Speculative{Workers: workers, OpLevel: true}.Execute(s, b)
		},
		"stm-op": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return STMExec{Workers: workers, OpLevel: true}.Execute(s, b)
		},
		"grouped-refined": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Grouped{Workers: workers, Refined: true, Receipts: seq.Receipts}.Execute(s, b)
		},
		"pipeline-op": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Pipeline{Workers: workers, OpLevel: true}.Execute(s, b)
		},
	}
	for name, run := range engines {
		res, err := run(st.Copy(), blk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Root != seq.Root {
			t.Fatalf("%s: root mismatch with sequential", name)
		}
		for i := range res.Receipts {
			a, b := res.Receipts[i], seq.Receipts[i]
			if a.Status != b.Status || a.GasUsed != b.GasUsed || a.TxHash != b.TxHash {
				t.Fatalf("%s: receipt %d differs", name, i)
			}
		}
		results[name] = res
	}
	return results
}

func TestOpLevelSharedReceiverCommutes(t *testing.T) {
	// The exchange-deposit pattern that degenerates under key-level
	// conflicts: four blind credits to one receiver. Operation-level, the
	// credits commute, so nothing is binned, retried, or serialised.
	st := fundedState(10)
	blk := testBlock(
		transfer(0, 9, 0, 100),
		transfer(1, 9, 0, 100),
		transfer(2, 9, 0, 100),
		transfer(3, 9, 0, 100),
	)
	results := runOpLevelEngines(t, st, blk, 4)

	spec := results["speculative-op"].Stats
	if spec.Conflicted != 0 {
		t.Fatalf("op-level speculative binned %d, want 0", spec.Conflicted)
	}
	if spec.ParUnits != 1 || spec.Speedup != 4 {
		t.Fatalf("op-level speculative stats = %+v", spec)
	}
	stm := results["stm-op"].Stats
	if stm.Retries != 0 {
		t.Fatalf("op-level stm retries = %d, want 0", stm.Retries)
	}
	grp := results["grouped-refined"].Stats
	if grp.Conflicted != 0 || grp.ParUnits != 1 {
		t.Fatalf("refined grouped stats = %+v", grp)
	}
	pipe := results["pipeline-op"].Stats
	if pipe.Retries != 0 {
		t.Fatalf("op-level pipeline re-executed %d, want 0", pipe.Retries)
	}

	// Key-level, the same block fully serialises (the paper's §V-A worked
	// example regime) — the contrast E8 measures.
	key, err := Speculative{Workers: 4}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if key.Stats.Conflicted != 4 {
		t.Fatalf("key-level speculative binned %d, want 4", key.Stats.Conflicted)
	}
}

func TestOpLevelReadMaterializesDependency(t *testing.T) {
	// tx1 spends money it only has because tx0 credited it: the balance
	// *read* (the envelope funds check) must re-establish the dependency a
	// blind credit alone would not create. Every op-level engine must
	// detect the conflict and still produce the sequential result.
	st := fundedState(3)
	poor := uint64(7) // unfunded account
	upfront := int64(account.GasTx) + 400_000
	st.AddBalance(addr(poor), upfront) // enough for fees, not for the send
	st.DiscardJournal()
	blk := testBlock(
		transfer(0, poor, 0, 500_000),
		&account.Transaction{
			From: addr(poor), To: addr(2), Value: 500_000,
			Nonce: 0, GasLimit: account.GasTx, GasPrice: 1,
		},
	)
	results := runOpLevelEngines(t, st, blk, 4)
	// The dependency is real: the speculative engine must bin both sides of
	// the read–delta collision.
	if got := results["speculative-op"].Stats.Conflicted; got != 2 {
		t.Fatalf("speculative-op binned %d, want 2 (read vs delta)", got)
	}
}

func TestOpLevelEnginesOnHotKeyHistories(t *testing.T) {
	// Serial equivalence on the generated hot-key workloads — the profiles
	// whose key-level TDG collapses into one component.
	for _, p := range chainsim.HotKeyProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := chainsim.NewAcctGen(p, 6, 11)
			if err != nil {
				t.Fatal(err)
			}
			for {
				pre := g.Chain().State().Copy()
				blk, _, ok, err := g.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				runOpLevelEngines(t, pre, blk, 8)
			}
		})
	}
}

func TestOpLevelPipelineChain(t *testing.T) {
	// Cross-block: block 2's deposits to the same hot wallet must not be
	// invalidated by block 1's commit (delta versions merge), while a
	// cross-block read of the hot balance still re-executes.
	g, err := chainsim.NewAcctGen(chainsim.HotWalletProfile(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	pre := g.Chain().State().Copy()
	var blocks []*account.Block
	for {
		blk, _, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		blocks = append(blocks, blk)
	}
	work := pre.Copy()
	for _, blk := range blocks {
		if _, err := Sequential(work, blk); err != nil {
			t.Fatal(err)
		}
	}
	seqRoot := work.Root()

	for _, op := range []bool{false, true} {
		cr, err := Pipeline{Workers: 8, Depth: 2, OpLevel: op}.ExecuteChain(pre.Copy(), blocks)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		if cr.Root != seqRoot {
			t.Fatalf("op=%v: chain root diverged from sequential replay", op)
		}
	}
}
