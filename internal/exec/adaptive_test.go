package exec

import (
	"testing"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/exec/testutil"
	"txconcur/internal/heat"
	"txconcur/internal/types"
)

// adaptiveEngine builds a sharded engine with a fresh adaptive map. Every
// test builds a fresh one per run: adaptive maps are stateful by design.
func adaptiveEngine(shards int, op bool, rebalance int) Sharded {
	return Sharded{
		Workers:        8,
		OpLevel:        op,
		Depth:          2,
		Map:            heat.NewAdaptiveMap(shards, nil),
		RebalanceEvery: rebalance,
	}
}

// TestAdaptiveChainSerialEquivalenceAllProfiles is the migration-correctness
// property the adaptive subsystem must uphold: for every account-model
// chainsim profile, shard count {1, 2, 4, 8}, conflict mode, and rebalance
// schedule (every block — migration between *every* pair of blocks — and
// every third block), the adaptive chain produces the sequential root and
// receipts, and therefore exactly the root of the static-map run.
func TestAdaptiveChainSerialEquivalenceAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("long: all profiles x shard counts x modes x rebalance schedules")
	}
	for _, p := range shardedEquivalenceProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pre, blocks, err := chainsim.GenerateAccountChain(p, 6, 11)
			if err != nil {
				t.Fatal(err)
			}
			seq := testutil.ReplaySequential(t, pre, blocks)
			for _, shards := range []int{1, 2, 4, 8} {
				for _, op := range []bool{false, true} {
					static, _, err := Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: 2}.
						ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("static shards=%d op=%v: %v", shards, op, err)
					}
					for _, every := range []int{1, 3} {
						cr, css, err := adaptiveEngine(shards, op, every).ExecuteChain(pre.Copy(), blocks)
						if err != nil {
							t.Fatalf("shards=%d op=%v every=%d: %v", shards, op, every, err)
						}
						if cr.Root != seq.Root() {
							t.Fatalf("shards=%d op=%v every=%d: root diverged from sequential (stats %+v)",
								shards, op, every, css)
						}
						if cr.Root != static.Root {
							t.Fatalf("shards=%d op=%v every=%d: root diverged from static map",
								shards, op, every)
						}
						seq.RequireChain(t, p.Name, cr.Root, cr.Receipts)
						wantEpochs := (len(blocks) - 1) / every
						if css.RebalanceEpochs != wantEpochs {
							t.Fatalf("shards=%d op=%v every=%d: %d rebalance epochs, want %d",
								shards, op, every, css.RebalanceEpochs, wantEpochs)
						}
						if shards == 1 && css.Migrations != 0 {
							t.Fatalf("single shard migrated %d keys", css.Migrations)
						}
					}
				}
			}
		})
	}
}

// TestAdaptiveChainFuzzFixtures replays the conflict-heavy fuzz chains
// through the adaptive engine at several shard counts and rebalance
// schedules — nonce chains and shared-counter contracts exercise the
// conflict-group observation, and per-block rebalancing exercises
// migration under maximal churn.
func TestAdaptiveChainFuzzFixtures(t *testing.T) {
	for _, tc := range []struct {
		seed                          int64
		users, hotN, txn, hotPct, spl uint8
	}{
		{7, 24, 3, 75, 85, 2},
		{42, 9, 2, 60, 70, 1},
		{11, 3, 2, 72, 88, 2},
	} {
		pre, blocks := fuzzChain(tc.seed, tc.users, tc.hotN, tc.txn, tc.hotPct, tc.spl)
		seq := testutil.ReplaySequential(t, pre, blocks)
		for _, shards := range []int{2, 3, 8} {
			for _, every := range []int{1, 2} {
				for _, op := range []bool{false, true} {
					cr, _, err := adaptiveEngine(shards, op, every).ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("seed=%d shards=%d every=%d op=%v: %v", tc.seed, shards, every, op, err)
					}
					seq.RequireChain(t, "adaptive", cr.Root, cr.Receipts)
				}
			}
		}
	}
}

// TestAdaptiveDeterministicStats: two runs over the same chain with fresh
// maps must agree on every schedule-relevant counter — the determinism
// contract that makes the E11 numbers reproducible.
func TestAdaptiveDeterministicStats(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardDriftProfile(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*ChainResult, *ChainShardStats) {
		cr, css, err := adaptiveEngine(4, false, 3).ExecuteChain(pre.Copy(), blocks)
		if err != nil {
			t.Fatal(err)
		}
		return cr, css
	}
	a, sa := run()
	b, sb := run()
	if a.Root != b.Root {
		t.Fatal("roots differ across identical runs")
	}
	if a.Stats.ParUnits != b.Stats.ParUnits || a.Stats.Retries != b.Stats.Retries {
		t.Fatalf("schedule accounting differs: %+v vs %+v", a.Stats, b.Stats)
	}
	if sa.Migrations != sb.Migrations || sa.RebalanceEpochs != sb.RebalanceEpochs ||
		sa.MigrationUnits != sb.MigrationUnits || sa.CrossAborts != sb.CrossAborts {
		t.Fatalf("shard counters differ: %+v vs %+v", sa, sb)
	}
}

// TestAdaptiveMigrationMovesState: on the drifting hot-sender workload the
// map must actually move addresses (the whole point), the migration
// counters must be consistent, and the migration units must be charged to
// the chain makespan.
func TestAdaptiveMigrationMovesState(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardDriftProfile(), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	e := adaptiveEngine(4, false, 3)
	cr, css, err := e.ExecuteChain(pre.Copy(), blocks)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Root != seq.Root() {
		t.Fatal("root diverged from sequential replay")
	}
	if css.RebalanceEpochs == 0 {
		t.Fatal("no rebalance epochs on a 12-block chain with RebalanceEvery=3")
	}
	if css.Migrations == 0 {
		t.Fatal("drifting hot senders never migrated: the placement policy is inert")
	}
	am := e.Map.(*heat.AdaptiveMap)
	if am.Epochs() != css.RebalanceEpochs {
		t.Fatalf("map saw %d epochs, engine reports %d", am.Epochs(), css.RebalanceEpochs)
	}
	if css.MigrationUnits == 0 || css.MigrationUnits > css.Migrations {
		t.Fatalf("migration units %d inconsistent with %d migrated keys",
			css.MigrationUnits, css.Migrations)
	}
}

// TestAdaptivePerBlockObservation: ExecuteSharded with a shared adaptive
// map must feed the map after every block (the per-block counterpart of
// the chain's observation loop) while preserving serial equivalence.
func TestAdaptivePerBlockObservation(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardHotShardProfile(), 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	am := heat.NewAdaptiveMap(4, nil)
	e := Sharded{Workers: 8, Map: am}
	work, seqWork := pre.Copy(), pre.Copy()
	for i, blk := range blocks {
		seq, err := Sequential(seqWork, blk)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.ExecuteSharded(work, blk)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if res.Root != seq.Root {
			t.Fatalf("block %d: root diverged from sequential", i)
		}
		if am.Tracker().Blocks() != i+1 {
			t.Fatalf("block %d: map observed %d blocks", i, am.Tracker().Blocks())
		}
	}
}

// TestOverrideShardMapRouting: overrides route, everything else falls back
// to FNV, and the sharded engine honours a hand-built override map.
func TestOverrideShardMapRouting(t *testing.T) {
	a := types.AddressFromUint64("override/a", 1)
	b := types.AddressFromUint64("override/b", 2)
	m := core.NewOverrideShardMap(4, map[types.Address]int{a: 3, b: 99})
	if m.Shard(a) != 3 {
		t.Fatalf("override ignored: shard %d", m.Shard(a))
	}
	if got := m.Shard(b); got != 3 { // clamped to n-1
		t.Fatalf("out-of-range override not clamped: %d", got)
	}
	other := types.AddressFromUint64("override/c", 7)
	if m.Shard(other) != core.ShardOf(other, 4) {
		t.Fatal("fallback does not match ShardOf")
	}

	// The engine must accept a plain (non-adaptive) custom map and still
	// reproduce sequential results.
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardUniformProfile(), 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	over := make(map[types.Address]int)
	for i, blk := range blocks {
		if len(blk.Txs) > 0 && i%2 == 0 {
			over[blk.Txs[0].From] = 0
		}
	}
	cr, _, err := Sharded{Workers: 8, Map: core.NewOverrideShardMap(4, over), Depth: 2}.
		ExecuteChain(pre.Copy(), blocks)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Root != seq.Root() {
		t.Fatal("override-map chain diverged from sequential replay")
	}
}
