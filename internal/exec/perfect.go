package exec

import (
	"fmt"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
)

// PerfectSpeculative is the perfect-information variant of the two-phase
// scheme that the paper models in §V-A: with a-priori knowledge of the
// conflict set ("If we have perfect prior information about which
// transactions are going to conflict"), only the unconflicted transactions
// run in the parallel phase — nothing is executed twice — at the price of a
// pre-processing step of cost K (here: building the TDG from the supplied
// receipts).
//
// Its schedule length is the model's T′ = K + ⌈(1−c)x/n⌉ + c·x, making it
// the direct executable counterpart of core.PerfectInfoSpeedup.
type PerfectSpeculative struct {
	// Workers is the core count n.
	Workers int
	// Receipts supplies the conflict oracle (the block's known receipts).
	// When nil, a sequential pre-run derives them.
	Receipts []*account.Receipt
	// PreprocessCost is the model's K in time units, added to the
	// schedule-length accounting (the work itself — TDG construction — is
	// performed for real either way).
	PreprocessCost int
	// Cost overrides the per-transaction schedule weight used for the
	// GasSeq/GasPar accounting; nil charges the receipt's gas.
	Cost CostModel
}

// Execute runs the block on st (mutated on success).
func (e PerfectSpeculative) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	x := len(blk.Txs)

	receipts := e.Receipts
	if receipts == nil {
		pre := st.Copy()
		seq, err := Sequential(pre, blk)
		if err != nil {
			return nil, fmt.Errorf("exec: perfect pre-run: %w", err)
		}
		receipts = seq.Receipts
	}
	// The conflict oracle: the TDG's conflicted transactions. This is the
	// paper's set "which transactions are going to conflict" — note it is
	// *address-level*, coarser than the storage-level sets phase 1 of the
	// blind engine discovers, so no conflicted transaction can slip into
	// the parallel phase.
	tdg := core.BuildAccount(core.ViewFromReceipts(blk, receipts))
	conflicted := make([]bool, x)
	numConflicted := 0
	for i := range blk.Txs {
		if tdg.ComponentTxCount[tdg.TxComponent[i]] >= 2 {
			conflicted[i] = true
			numConflicted++
		}
	}

	// Parallel phase: unconflicted transactions only, on per-transaction
	// overlays over the pre-state. By the address-level TDG, an
	// unconflicted transaction shares no address with *any* other
	// transaction of the block, so its phase-1 result is final.
	// (Correctness therefore rests on the oracle being faithful to st —
	// that is what "perfect prior information" means in the paper's model;
	// for untrusted oracles use Grouped, which validates and falls back.)
	overlays := make([]*overlay, x)
	receiptsOut := make([]*account.Receipt, x)
	errs := make([]error, x)
	parallelFor(x, e.Workers, func(i int) {
		if conflicted[i] {
			return
		}
		o := newOverlay(st)
		rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[i])
		errs[i] = err
		overlays[i] = o
		receiptsOut[i] = rcpt
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exec: perfect parallel tx %d: %w", i, err)
		}
	}
	for i, o := range overlays {
		if o != nil && !conflicted[i] {
			o.applyTo(st)
		}
	}

	// Sequential phase: the conflicted transactions, in block order.
	for i, tx := range blk.Txs {
		if !conflicted[i] {
			continue
		}
		rcpt, err := procDeferred.ApplyTransaction(st, blk, tx)
		if err != nil {
			return nil, fmt.Errorf("exec: perfect sequential tx %d: %w", i, err)
		}
		receiptsOut[i] = rcpt
	}
	finalizeBlock(st, blk, receiptsOut)

	res := &Result{Receipts: receiptsOut, Root: st.Root()}
	parUnits := e.PreprocessCost + ceilDiv(x-numConflicted, e.Workers) + numConflicted
	if x == 0 {
		parUnits = 0
	}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: numConflicted,
		SeqUnits:   x,
		ParUnits:   parUnits,
		GasSeq:     costSum(e.Cost, blk.Txs, receiptsOut),
		GasPar:     ceilDivU(costSum(e.Cost, blk.Txs, receiptsOut), uint64(e.Workers)),
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, nil
}
