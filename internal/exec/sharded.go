package exec

import (
	"fmt"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/mvstore"
	"txconcur/internal/types"
)

// Sharded is a multi-shard execution engine. The paper's §II-B singles out
// Zilliqa-style network sharding as a scaling route whose "major limitation
// ... is that it does not support cross-shard transactions"; package core's
// ShardingAnalysis (E6) measures how many transactions that limitation
// forfeits. This engine closes the gap: the account state is partitioned
// into per-shard multi-version stores keyed by core.ShardOf(sender), each
// shard runs its intra-shard sub-block on its own speculative two-phase
// worker pipeline (the per-shard instance of the Saraph–Herlihy scheme the
// other engines use), and — unlike Zilliqa — cross-shard transactions are
// *handled*, by a deterministic two-phase cross-shard commit:
//
//   - Phase 1 (parallel, per shard): every transaction executes on a
//     recording overlay against the pinned pre-block state. Transactions
//     whose access set stays inside their home shard are committed
//     shard-locally (winners apply, intra-shard conflicts re-execute in
//     block order against the shard's staged prefix), and the shard's
//     sub-block is installed into its own mvstore at timestamp 1.
//     Transactions that touched foreign-shard state — or whose phase-1
//     access set overlaps an earlier cross-shard transaction's writes —
//     stage their read/write sets for phase 2 instead.
//   - Phase 2 (deterministic, in block order): the cross-shard commit
//     validates each staged transaction's reads against the per-shard
//     commits and the earlier cross-shard writes. A clean transaction's
//     phase-1 result is applied as-is; a stale one re-executes against the
//     merged view (every shard's pinned snapshot plus the cross-shard
//     accumulator). Operation-level delta writes merge commutatively
//     across shards: a blind credit staged by one shard never conflicts
//     with another shard's blind credits to the same account, so hot-key
//     deposit traffic stays parallel even when it is almost entirely
//     cross-shard.
//
// Soundness follows the same discipline as Speculative: nothing touches st
// until every result is validated, order-sensitive overlaps that the
// validation cannot repair locally (a cross-shard write observed too early
// or clobbering a later intra-shard result) trigger a sequential fallback
// from the untouched pre-state, and the regression and fuzz tests enforce
// receipt and state-root equality with Sequential on every profile, shard
// count, and conflict mode.
type Sharded struct {
	// Workers is the total core count n. Each shard's pipeline is credited
	// ⌈n/s⌉ logical workers; since s·⌈n/s⌉ can exceed n when s does not
	// divide n, the schedule-length accounting is additionally floored by
	// the total core budget (all intra-shard work over n cores), so the
	// reported speed-up never exceeds what n cores could deliver.
	Workers int
	// Shards is the committee count s; values below 1 mean 1 (a single
	// shard degenerates to a speculative two-phase engine).
	Shards int
	// OpLevel enables operation-level conflict refinement: balance credits
	// and debits are recorded as commutative deltas. Deltas merge within a
	// shard's mvstore (DeltaAdd version chains) and across shards in the
	// cross-shard commit, so blind credits never abort each other no
	// matter which shard staged them.
	OpLevel bool
}

// ShardStats describes the sharded engine's work on one block, beyond the
// generic Stats.
type ShardStats struct {
	// Shards is the committee count actually used.
	Shards int
	// Intra is the number of transactions classified intra-shard and
	// committed shard-locally (or re-run sequentially when Fallback is
	// set).
	Intra int
	// Cross is the number of transactions classified for the cross-shard
	// commit (foreign-shard touches, ordering overlaps with cross-shard
	// writes, and phase-1 failures rerouted by their shard). Intra+Cross
	// always equals the block's transaction count, fallback or not.
	Cross int
	// CrossAborts counts cross-shard transactions whose staged phase-1
	// result failed validation (or was never staged) and had to re-execute
	// sequentially in the merge. On a Fallback block it equals Cross:
	// every cross-shard transaction, accepted or not, re-ran sequentially.
	CrossAborts int
	// Fallback reports that an unrepairable ordering overlap forced the
	// whole block through the sequential fallback.
	Fallback bool
	// PerShardTxs is the phase-1 transaction count per home shard.
	PerShardTxs []int
}

// shardedState reads through every shard's pinned sub-block snapshot,
// dispatching each key to the mvstore of the shard that owns its address.
// It is the merged pre-cross-commit view of the block: pre-block state
// plus all intra-shard commits. Writes panic, as on snapState: all
// cross-shard execution goes through recording overlays.
type shardedState struct {
	shards int
	views  []*snapState
}

var _ account.State = (*shardedState)(nil)

func (s *shardedState) view(a types.Address) *snapState { return s.views[core.ShardOf(a, s.shards)] }

func (s *shardedState) GetBalance(a types.Address) int64 { return s.view(a).GetBalance(a) }
func (s *shardedState) GetNonce(a types.Address) uint64  { return s.view(a).GetNonce(a) }
func (s *shardedState) GetCode(a types.Address) []byte   { return s.view(a).GetCode(a) }
func (s *shardedState) GetStorage(a types.Address, slot uint64) uint64 {
	return s.view(a).GetStorage(a, slot)
}
func (s *shardedState) Snapshot() int                   { return 0 }
func (s *shardedState) RevertToSnapshot(int)            {}
func (s *shardedState) AddBalance(types.Address, int64) { panic("exec: write to sharded view") }
func (s *shardedState) SubBalance(types.Address, int64) { panic("exec: write to sharded view") }
func (s *shardedState) SetNonce(types.Address, uint64)  { panic("exec: write to sharded view") }
func (s *shardedState) SetCode(types.Address, []byte)   { panic("exec: write to sharded view") }
func (s *shardedState) SetStorage(types.Address, uint64, uint64) {
	panic("exec: write to sharded view")
}

// Execute runs the block on st (mutated on success), engine-interface
// parity with the other executors.
func (e Sharded) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	res, _, err := e.ExecuteSharded(st, blk)
	return res, err
}

// touchesForeign reports whether the overlay's access set leaves the home
// shard.
func touchesForeign(o *overlay, home, shards int) bool {
	for k := range o.reads {
		if core.ShardOf(k.Addr, shards) != home {
			return true
		}
	}
	for k := range o.writes {
		if core.ShardOf(k.Addr, shards) != home {
			return true
		}
	}
	for a := range o.deltas {
		if core.ShardOf(a, shards) != home {
			return true
		}
	}
	return false
}

// crossWriteIndex is the per-key ordering index of the cross-shard set:
// the smallest block position of a cross transaction that absolutely
// writes (abs) or delta-writes (delta) the key. Missing entries mean "not
// written"; -1 is never stored.
type crossWriteIndex struct {
	abs   map[StateKey]int
	delta map[StateKey]int
}

// noteMinIdx keeps the smallest block position recorded for k, noteMaxIdx
// the largest — the two ordering-index primitives of the cross-shard
// commit.
func noteMinIdx(m map[StateKey]int, k StateKey, i int) {
	if prev, ok := m[k]; !ok || i < prev {
		m[k] = i
	}
}

func noteMaxIdx(m map[StateKey]int, k StateKey, i int) {
	if prev, ok := m[k]; !ok || i > prev {
		m[k] = i
	}
}

// ExecuteSharded runs the block and additionally returns the sharding
// counters the E9 experiment reports. st is mutated on success.
func (e Sharded) ExecuteSharded(st *account.StateDB, blk *account.Block) (*Result, *ShardStats, error) {
	if e.Workers < 1 {
		return nil, nil, ErrNoWorkers
	}
	shards := e.Shards
	if shards < 1 {
		shards = 1
	}
	wps := ceilDiv(e.Workers, shards)
	start := time.Now()
	x := len(blk.Txs)

	// Home-shard assignment by sender, as Zilliqa assigns accounts to
	// committees. Same-sender nonce chains therefore stay in one shard.
	home := make([]int, x)
	byShard := make([][]int, shards)
	for i, tx := range blk.Txs {
		home[i] = core.ShardOf(tx.From, shards)
		byShard[home[i]] = append(byShard[home[i]], i)
	}

	// Phase 1: per-shard speculative pipelines, every transaction on its
	// own recording overlay over the immutable pre-block state.
	overlays := make([]*overlay, x)
	p1rcpt := make([]*account.Receipt, x)
	failed := make([]bool, x)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			idxs := byShard[sh]
			parallelFor(len(idxs), wps, func(j int) {
				i := idxs[j]
				o := newOverlayOp(st, e.OpLevel)
				rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[i])
				if err != nil {
					// Envelope failure against the pre-block state (e.g. a
					// nonce chain): the shard's phase-2 bin re-executes it.
					failed[i] = true
				} else {
					p1rcpt[i] = rcpt
				}
				overlays[i] = o
			})
		}(sh)
	}
	wg.Wait()

	// Classification. A transaction whose phase-1 access set leaves its
	// home shard joins the cross-shard set. Then, to fixpoint: an intra
	// transaction ordered *after* a cross-shard write it touches must be
	// ordered against it, so it joins the cross-shard set too (delta–delta
	// contact commutes and is exempt). The fixpoint uses phase-1 access
	// sets — predictions, not guarantees; divergent re-executions are
	// caught by the commit-time validation below.
	cross := make([]bool, x)
	for i := range cross {
		cross[i] = touchesForeign(overlays[i], home[i], shards)
	}
	// The fixpoint is monotone — cross membership only grows and the
	// per-key minima in p1cw only decrease — so the index is maintained
	// incrementally: each reclassified transaction adds its writes once,
	// and the scan repeats until a full pass reclassifies nothing.
	p1cw := crossWriteIndex{abs: make(map[StateKey]int), delta: make(map[StateKey]int)}
	addCrossWrites := func(i int, o *overlay) {
		for k := range o.writes {
			noteMinIdx(p1cw.abs, k, i)
		}
		for a := range o.deltas {
			noteMinIdx(p1cw.delta, deltaKey(a), i)
		}
	}
	for i, o := range overlays {
		if cross[i] {
			addCrossWrites(i, o)
		}
	}
	orderedAfterCross := func(i int, o *overlay) bool {
		for k := range o.reads {
			if j, ok := p1cw.abs[k]; ok && j < i {
				return true
			}
			if j, ok := p1cw.delta[k]; ok && j < i {
				return true
			}
		}
		for k := range o.writes {
			if j, ok := p1cw.abs[k]; ok && j < i {
				return true
			}
			if j, ok := p1cw.delta[k]; ok && j < i {
				return true
			}
		}
		for a := range o.deltas {
			// Delta–delta commutes across the intra/cross boundary; only
			// an earlier cross *absolute* write forces ordering.
			if j, ok := p1cw.abs[deltaKey(a)]; ok && j < i {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i, o := range overlays {
			if cross[i] {
				continue
			}
			if orderedAfterCross(i, o) {
				cross[i] = true
				addCrossWrites(i, o)
				changed = true
			}
		}
	}

	// Phase 2a: per-shard in-order commit of the intra-shard sub-blocks,
	// all shards in parallel. Winners (intra transactions that pass the
	// shard-local symmetric conflict rule) apply their phase-1 overlays in
	// block order; binned ones re-execute against the shard's staged
	// prefix. A re-execution that leaves the shard — or fails — is handed
	// to the cross-shard commit: the shard prefix is not the sequential
	// prefix, so neither its access set nor its error is authoritative.
	type shardOutcome struct {
		acc    *overlay
		mv     *mvstore.Store[StateKey, stateVal]
		err    error
		binned int
		gasBin uint64 // gas of the shard-local sequential re-executions
		stale  bool   // a winner read a key the shard's bin later wrote
	}
	final := make([]*overlay, x) // committed intra results, by tx index
	receipts := make([]*account.Receipt, x)
	// reexecuted marks the distinct transactions the engine serialised at
	// least once (shard bin or cross-shard merge) — a bin re-execution
	// rerouted to the cross set and aborted there must not count twice.
	reexecuted := make([]bool, x)
	outcomes := make([]shardOutcome, shards)
	parallelFor(shards, shards, func(sh int) {
		out := &outcomes[sh]
		// Shard-local conflict detection over the intra candidates.
		intra := make([]*overlay, 0, len(byShard[sh]))
		for _, i := range byShard[sh] {
			if !cross[i] {
				intra = append(intra, overlays[i])
			}
		}
		ac := countAccesses(intra)
		acc := newOverlayOp(st, e.OpLevel)
		out.acc = acc
		// p2min[k] is the smallest binned index that wrote k during this
		// shard's re-executions — the winner-staleness probe of the
		// speculative scheme, applied per shard.
		p2min := make(map[StateKey]int)
		logW := func(o *overlay, i int) {
			for k := range o.writes {
				if _, seen := p2min[k]; !seen {
					p2min[k] = i
				}
			}
			for a := range o.deltas {
				k := deltaKey(a)
				if _, seen := p2min[k]; !seen {
					p2min[k] = i
				}
			}
		}
		for _, i := range byShard[sh] {
			if cross[i] {
				continue
			}
			o := overlays[i]
			if !failed[i] && !o.conflicted(ac) {
				o.applyTo(acc)
				final[i] = o
				receipts[i] = p1rcpt[i]
				continue
			}
			out.binned++
			reexecuted[i] = true
			ro := newOverlayOp(acc, e.OpLevel)
			rcpt, err := procDeferred.ApplyTransaction(ro, blk, blk.Txs[i])
			if err != nil || touchesForeign(ro, sh, shards) {
				cross[i] = true
				continue
			}
			receipts[i] = rcpt
			out.gasBin += rcpt.GasUsed
			logW(ro, i)
			ro.applyTo(acc)
			final[i] = ro
		}
		// Winner staleness: a shard-local bin re-execution may write keys
		// phase 1 never saw it write; any winner ordered after such a write
		// holds a stale result.
		if len(p2min) > 0 {
			for _, i := range byShard[sh] {
				if cross[i] || final[i] == nil || final[i] != overlays[i] {
					continue
				}
				o := overlays[i]
				for k := range o.reads {
					if j, ok := p2min[k]; ok && j < i {
						out.stale = true
					}
				}
				for k := range o.writes {
					if j, ok := p2min[k]; ok && j < i {
						out.stale = true
					}
				}
			}
		}
		// Install the shard's sub-block into its own multi-version store at
		// timestamp 1; the cross-shard commit reads it through a pinned
		// snapshot, deltas folding at read time.
		out.mv = mvstore.NewStoreDelta[StateKey, stateVal](mergeStateVal)
		out.err = out.mv.CommitWrites(1, overlayWrites(acc))
	})
	conflict := false
	for sh := range outcomes {
		if outcomes[sh].err != nil {
			return nil, nil, fmt.Errorf("exec: sharded shard %d commit: %w", sh, outcomes[sh].err)
		}
		if outcomes[sh].stale {
			conflict = true
		}
	}

	// Intra touch index, for ordering the cross-shard set against the
	// committed sub-blocks: per key, the smallest intra writer (reads of a
	// staged cross transaction must not postdate it) and the largest intra
	// reader / absolute writer / delta writer (a cross write must not be
	// visible to, or clobber, a later intra result).
	minIntraWrite := make(map[StateKey]int)
	maxIntraRead := make(map[StateKey]int)
	maxIntraAbs := make(map[StateKey]int)
	maxIntraDelta := make(map[StateKey]int)
	for i, f := range final {
		if f == nil {
			continue
		}
		for k := range f.reads {
			noteMaxIdx(maxIntraRead, k, i)
		}
		for k := range f.writes {
			noteMinIdx(minIntraWrite, k, i)
			noteMaxIdx(maxIntraAbs, k, i)
		}
		for a := range f.deltas {
			k := deltaKey(a)
			noteMinIdx(minIntraWrite, k, i)
			noteMaxIdx(maxIntraDelta, k, i)
		}
	}

	// Phase 2b: deterministic cross-shard commit, strictly in block order,
	// over the merged view (pre-block state + every shard's pinned
	// sub-block snapshot) plus the cross-shard accumulator.
	merged := &shardedState{shards: shards, views: make([]*snapState, shards)}
	snaps := make([]*mvstore.Snapshot[StateKey, stateVal], shards)
	for sh := range snaps {
		snaps[sh] = outcomes[sh].mv.PinAt(1)
		merged.views[sh] = &snapState{base: st, snap: snaps[sh]}
	}
	releaseSnaps := func() {
		for _, sn := range snaps {
			sn.Release()
		}
	}
	accX := newOverlayOp(merged, e.OpLevel)
	cw := crossWriteIndex{abs: make(map[StateKey]int), delta: make(map[StateKey]int)}
	// crossN is the full classification count, not a merge-progress
	// counter: a conflict can stop the merge mid-block, and the reported
	// intra/cross split must stay exact even on fallback blocks.
	crossN, aborts := 0, 0
	for j := 0; j < x; j++ {
		if cross[j] {
			crossN++
		}
	}
	var gasCrossReexec uint64
	for j := 0; j < x && !conflict; j++ {
		if !cross[j] {
			continue
		}
		// Validate the staged phase-1 result: every read must predate both
		// the intra commits and the earlier cross-shard writes. (Blind
		// deltas carry no reads, so op-level hot-key credits validate
		// vacuously — they commute with everything staged so far.)
		var f *overlay
		staged := !failed[j] && final[j] == nil && p1rcpt[j] != nil
		if staged {
			o := overlays[j]
			valid := true
			for k := range o.reads {
				if i, ok := minIntraWrite[k]; ok && i < j {
					valid = false
					break
				}
				if _, ok := cw.abs[k]; ok {
					valid = false
					break
				}
				if _, ok := cw.delta[k]; ok {
					valid = false
					break
				}
			}
			if valid {
				receipts[j] = p1rcpt[j]
				o.applyTo(accX)
				f = o
			}
		}
		if f == nil {
			// Stale or never staged: re-execute against the merged prefix.
			aborts++
			reexecuted[j] = true
			ro := newOverlayOp(accX, e.OpLevel)
			rcpt, err := procDeferred.ApplyTransaction(ro, blk, blk.Txs[j])
			if err != nil {
				// The merged prefix is not the exact sequential prefix, so
				// the failure is not authoritative: fall back.
				conflict = true
				break
			}
			// The merged view folds *whole* sub-blocks; the re-execution is
			// prefix-correct only if nothing it read was written by an
			// intra transaction ordered after it.
			for k := range ro.reads {
				if i, ok := maxIntraAbs[k]; ok && i > j {
					conflict = true
				}
				if i, ok := maxIntraDelta[k]; ok && i > j {
					conflict = true
				}
			}
			if conflict {
				break
			}
			receipts[j] = rcpt
			ro.applyTo(accX)
			f = ro
			gasCrossReexec += rcpt.GasUsed
		}
		// Ordering check against later intra results: a cross-shard write
		// must not be one a later intra transaction should have observed
		// (stale read) or superseded (the merge applies cross writes after
		// the sub-blocks). Delta–delta contact commutes and is exempt.
		for k := range f.writes {
			if i, ok := maxIntraRead[k]; ok && i > j {
				conflict = true
			}
			if i, ok := maxIntraAbs[k]; ok && i > j {
				conflict = true
			}
			if i, ok := maxIntraDelta[k]; ok && i > j {
				conflict = true
			}
		}
		for a := range f.deltas {
			k := deltaKey(a)
			if i, ok := maxIntraRead[k]; ok && i > j {
				conflict = true
			}
			if i, ok := maxIntraAbs[k]; ok && i > j {
				conflict = true
			}
		}
		if conflict {
			break
		}
		for k := range f.writes {
			noteMinIdx(cw.abs, k, j)
		}
		for a := range f.deltas {
			noteMinIdx(cw.delta, deltaKey(a), j)
		}
	}

	ss := &ShardStats{
		Shards: shards, Cross: crossN, Intra: x - crossN,
		CrossAborts: aborts, PerShardTxs: make([]int, shards),
	}
	for sh := range byShard {
		ss.PerShardTxs[sh] = len(byShard[sh])
	}

	retried := 0
	if conflict {
		// Sequential fallback from the untouched pre-state: the one sound
		// answer when the merge order cannot reproduce the block order.
		releaseSnaps()
		ss.Fallback = true
		// Every cross-shard transaction ends up re-executed sequentially on
		// a fallback block — including ones the merge had provisionally
		// accepted — so the reported abort count must not stop at the
		// conflict point. (The schedule accounting keeps the pre-conflict
		// `aborts`: only that work was actually performed by the merge.)
		ss.CrossAborts = crossN
		for i := range receipts {
			receipts[i] = nil
		}
		for i, tx := range blk.Txs {
			rcpt, err := procDeferred.ApplyTransaction(st, blk, tx)
			if err != nil {
				return nil, nil, fmt.Errorf("exec: sharded fallback tx %d: %w", i, err)
			}
			receipts[i] = rcpt
			retried++
		}
	} else {
		// Fold every shard's sub-block, then the cross-shard accumulator,
		// into the caller's state. Shards own disjoint key sets, so the
		// shard fold order is irrelevant; cross writes apply last, which
		// the ordering checks above made safe.
		for sh := range outcomes {
			outcomes[sh].mv.RangeLatestResolved(foldResolvedInto(st))
		}
		releaseSnaps()
		accX.applyTo(st)
	}
	finalizeBlock(st, blk, receipts)

	// Schedule-length accounting, paper unit-cost model: the per-shard
	// pipelines run concurrently (max over shards of phase 1 + bin), the
	// cross-shard commit is one sequential merge whose re-executions cost
	// one unit each (validated applications, like winner applies, are
	// free), and a fallback appends the whole block. Because each shard's
	// pipeline is credited ⌈n/s⌉ workers, s·⌈n/s⌉ can exceed n when s does
	// not divide n; the intra stage is therefore floored by the total
	// core-budget bound — all intra work over n cores — so configurations
	// like Workers=2, Shards=8 cannot report an 8-way speed-up.
	intraUnits, binnedTotal := 0, 0
	var intraGas, gasTotal, gasBinTotal uint64
	for sh := range byShard {
		u := 0
		if len(byShard[sh]) > 0 {
			u = ceilDiv(len(byShard[sh]), wps) + outcomes[sh].binned
		}
		// Gas counterpart of u: the shard's phase 1 spreads the sub-block's
		// gas over its workers, the shard-local bin re-executes its gas
		// sequentially — the same two terms as the speculative engine's
		// GasPar, per shard.
		var g uint64
		for _, i := range byShard[sh] {
			if receipts[i] != nil {
				g += receipts[i].GasUsed
			}
		}
		var shardGas uint64
		if g > 0 {
			shardGas = ceilDivU(g, uint64(wps)) + outcomes[sh].gasBin
		}
		if u > intraUnits {
			intraUnits = u
		}
		if shardGas > intraGas {
			intraGas = shardGas
		}
		binnedTotal += outcomes[sh].binned
		gasTotal += g
		gasBinTotal += outcomes[sh].gasBin
	}
	if floor := ceilDiv(x+binnedTotal, e.Workers); x > 0 && floor > intraUnits {
		intraUnits = floor
	}
	if gasTotal+gasBinTotal > 0 {
		if floor := ceilDivU(gasTotal+gasBinTotal, uint64(e.Workers)); floor > intraGas {
			intraGas = floor
		}
	}
	// Conflicted counts distinct serialised transactions; Retries counts
	// re-execution events (a bin re-execution rerouted to the cross-shard
	// merge and aborted there is one transaction, two re-executions).
	conflicted := 0
	for _, r := range reexecuted {
		if r {
			conflicted++
		}
	}
	res := &Result{Receipts: receipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: conflicted,
		SeqUnits:   x,
		ParUnits:   intraUnits + aborts + retried,
		GasSeq:     account.GasUsed(receipts),
		GasPar:     intraGas + gasCrossReexec,
		Retries:    binnedTotal + aborts + retried,
		Wall:       time.Since(start),
	}
	if retried > 0 {
		res.Stats.GasPar += account.GasUsed(receipts)
	}
	res.Stats.finish()
	return res, ss, nil
}
