package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/types"
)

// Sharded is a multi-shard execution engine. The paper's §II-B singles out
// Zilliqa-style network sharding as a scaling route whose "major limitation
// ... is that it does not support cross-shard transactions"; package core's
// ShardingAnalysis (E6) measures how many transactions that limitation
// forfeits. This engine closes the gap: the account state is partitioned
// into per-shard state views keyed by the engine's shard map — a pluggable
// core.ShardMap whose baseline is static FNV-1a over the sender address
// (core.StaticShardMap / core.ShardOf), and whose adaptive variant
// (internal/heat.AdaptiveMap) learns conflict heat across blocks and
// rebalances between them — each shard runs
// its intra-shard sub-block on its own speculative two-phase worker pipeline
// (the per-shard instance of the Saraph–Herlihy scheme the other engines
// use), and — unlike Zilliqa — cross-shard transactions are *handled*, by a
// deterministic two-phase cross-shard commit:
//
//   - Phase 1 (parallel, per shard): every transaction executes on a
//     recording overlay against the pinned pre-block state. Transactions
//     whose access set stays inside their home shard are committed
//     shard-locally (winners apply, intra-shard conflicts re-execute in
//     block order against the shard's staged prefix). Transactions that
//     touched foreign-shard state — or whose phase-1 access set overlaps an
//     earlier cross-shard transaction's writes — stage their read/write
//     sets for phase 2 instead.
//   - Phase 2 (deterministic, in block order): the cross-shard commit
//     validates each staged transaction's reads against the per-shard
//     commits and the earlier cross-shard writes. Runs of clean staged
//     transactions commit as one batched group (delta-only cross traffic —
//     hot-key deposits — commutes and batches maximally); stale or
//     never-staged ones re-execute against the merged view (every shard's
//     committed sub-block plus the cross-shard accumulator) in *parallel
//     waves* of key-disjoint transactions with in-order commit validation,
//     so the merge's sequential tail is ceil(wave/n) instead of one unit
//     per abort.
//
// Soundness follows the same discipline as Speculative: nothing touches st
// until every result is validated. Order-sensitive overlaps that the merge
// cannot reproduce (a cross-shard write a later intra-shard transaction
// should have observed, or a merged-view read that folded a later
// sub-block write) no longer force a whole-block sequential fallback:
// the engine records the earliest affected block position and the final
// composition pass re-executes only that suffix against its exact
// sequential prefix (ShardStats.Repairs). The regression and fuzz tests
// enforce receipt and state-root equality with Sequential on every profile,
// shard count, and conflict mode.
type Sharded struct {
	// Workers is the total core count n. Each shard's pipeline is credited
	// ⌈n/s⌉ logical workers; since s·⌈n/s⌉ can exceed n when s does not
	// divide n, the schedule-length accounting is additionally floored by
	// the total core budget (all intra-shard work over n cores), so the
	// reported speed-up never exceeds what n cores could deliver.
	Workers int
	// Shards is the committee count s; values below 1 mean 1 (a single
	// shard degenerates to a speculative two-phase engine).
	Shards int
	// OpLevel enables operation-level conflict refinement: balance credits
	// and debits are recorded as commutative deltas. Deltas merge within a
	// shard's sub-block and across shards in the cross-shard commit, so
	// blind credits never abort each other no matter which shard staged
	// them.
	OpLevel bool
	// SequentialMerge caps the cross-shard merge's re-execution waves and
	// staged commit groups at one transaction, restoring the strictly
	// sequential merge the first version of this engine used. Results are
	// identical; only the schedule accounting (and wall time) change.
	// BenchmarkShardedMerge uses it to isolate what the parallel merge
	// buys.
	SequentialMerge bool
	// Depth is the pipeline lookahead of ExecuteChain in blocks: phase 1
	// may run up to Depth blocks ahead of the cross-shard commit, against
	// per-shard snapshots pinned at the deterministic fixed-lag timestamp
	// (the Pipeline.FixedLag discipline). 0 means 1. Ignored by the
	// per-block Execute/ExecuteSharded.
	Depth int
	// Map overrides the address→shard assignment. nil means the static
	// FNV-1a baseline over Shards committees (core.StaticShardMap); when
	// set, its Shards() wins over the Shards field. A core.AdaptiveShardMap
	// is additionally fed every committed block's access/conflict heat
	// (ObserveBlock, in block order) and — in ExecuteChain, when
	// RebalanceEvery > 0 — rebalanced at epoch boundaries with the moved
	// addresses' state migrated between the per-shard stores. Adaptive maps
	// are stateful: reusing one across runs carries its learned profile
	// over, which is the intended chain-level usage.
	Map core.ShardMap
	// RebalanceEvery is ExecuteChain's epoch length in blocks: after every
	// RebalanceEvery committed blocks the pipeline drains, the adaptive map
	// rebalances, and the moved addresses' state migrates to its new home
	// shard before the next epoch starts. 0 disables rebalancing (the map
	// still observes). Ignored unless Map is a core.AdaptiveShardMap.
	RebalanceEvery int
	// Cost overrides the per-transaction schedule weight used for the
	// GasSeq/GasPar accounting (intra spreads, bins, merge waves, and
	// repairs alike); nil charges the receipt's gas.
	Cost CostModel
	// Checkpoint, if non-nil with a positive Interval, receives async
	// snapshots of committed chain state every Interval blocks from
	// ExecuteChain/ExecuteChainStream (see CheckpointSink). The snapshot
	// worker never blocks the commit path: busy intervals are skipped and
	// counted in ChainShardStats.CheckpointsSkipped. Ignored by the
	// per-block Execute/ExecuteSharded.
	Checkpoint CheckpointSink
	// Backend, if non-nil, is the disk-backed base layer shared by every
	// shard's version cache: the chain drivers evict cold, fully resolved
	// keys beyond CacheBudget per shard into it after each GC pass, and
	// cache misses read through to it before falling back to the pre-chain
	// state. A single shared base makes epoch migrations free for evicted
	// keys — any shard reads the same base entry. nil keeps the historical
	// all-RAM behaviour. Ignored by the per-block Execute/ExecuteSharded,
	// which hold at most one block of state.
	Backend StateBackend
	// CacheBudget is the target resident key count of each shard's version
	// cache when Backend is set: eviction trims cold keys down to it (0
	// evicts every cold key each pass). Ignored without a Backend.
	CacheBudget int
}

// shardMap resolves the effective assignment: the configured Map, or the
// static FNV baseline over the Shards field.
func (e Sharded) shardMap() core.ShardMap {
	if e.Map != nil {
		return e.Map
	}
	s := e.Shards
	if s < 1 {
		s = 1
	}
	return core.StaticShardMap(s)
}

// conflictHeatSource is the optional heat signal of a shard map
// (heat.AdaptiveMap implements it): the merge gives predicted-conflicting
// transactions their own re-execution wave instead of trusting a stale
// phase-1 prediction.
type conflictHeatSource interface {
	ConflictHot(a types.Address) bool
}

// ShardStats describes the sharded engine's work on one block, beyond the
// generic Stats.
type ShardStats struct {
	// Shards is the committee count actually used.
	Shards int
	// Intra is the number of transactions classified intra-shard and
	// committed shard-locally.
	Intra int
	// Cross is the number of transactions classified for the cross-shard
	// commit (foreign-shard touches, ordering overlaps with cross-shard
	// writes, and phase-1 failures rerouted by their shard). Intra+Cross
	// always equals the block's transaction count.
	Cross int
	// CrossAborts counts cross-shard transactions whose staged phase-1
	// result failed validation (or was never staged) and had to re-execute:
	// in the merge's waves, or — past the repair point — in the composition
	// pass. Always ≤ Cross.
	CrossAborts int
	// BatchedStage is the number of staged cross-shard transactions
	// committed as part of a multi-transaction commuting group (delta-only
	// runs batch maximally; a group of one is not counted).
	BatchedStage int
	// MergeWaves is the number of parallel re-execution waves the merge
	// ran; MergeUnits is the merge's schedule length in time units —
	// ⌈wave/n⌉ per wave plus one unit per in-order commit repair — which
	// replaces the one-unit-per-abort sequential tail of the strictly
	// sequential merge.
	MergeWaves int
	MergeUnits int
	// Repairs is the number of transactions re-executed by the
	// per-transaction repair pass: when the merge detects an ordering
	// overlap it cannot reproduce, the composition pass re-runs only the
	// block suffix from the earliest affected position, each against its
	// exact sequential prefix. 0 on clean blocks.
	Repairs int
	// Fallback reports that the repair suffix was the whole block — the
	// per-transaction repair was exhausted and the block was effectively
	// re-executed sequentially. Implies Repairs == Intra+Cross.
	Fallback bool
	// PerShardTxs is the phase-1 transaction count per home shard.
	PerShardTxs []int
}

// mergedState reads through every shard's committed view, dispatching each
// key to the view of the shard that owns its address under the block's
// shard map. Phase 2 layers the cross-shard accumulator over it; phase 1
// of ExecuteChain uses it over pinned per-shard snapshots. Writes panic:
// all execution goes through recording overlays.
type mergedState struct {
	m     core.ShardMap
	views []account.State
}

var _ account.State = (*mergedState)(nil)

func (s *mergedState) view(a types.Address) account.State {
	return s.views[s.m.Shard(a)]
}

func (s *mergedState) GetBalance(a types.Address) int64 { return s.view(a).GetBalance(a) }
func (s *mergedState) GetNonce(a types.Address) uint64  { return s.view(a).GetNonce(a) }
func (s *mergedState) GetCode(a types.Address) []byte   { return s.view(a).GetCode(a) }
func (s *mergedState) GetStorage(a types.Address, slot uint64) uint64 {
	return s.view(a).GetStorage(a, slot)
}
func (s *mergedState) Snapshot() int                   { return 0 }
func (s *mergedState) RevertToSnapshot(int)            {}
func (s *mergedState) AddBalance(types.Address, int64) { panic("exec: write to merged view") }
func (s *mergedState) SubBalance(types.Address, int64) { panic("exec: write to merged view") }
func (s *mergedState) SetNonce(types.Address, uint64)  { panic("exec: write to merged view") }
func (s *mergedState) SetCode(types.Address, []byte)   { panic("exec: write to merged view") }
func (s *mergedState) SetStorage(types.Address, uint64, uint64) {
	panic("exec: write to merged view")
}

// Execute runs the block on st (mutated on success), engine-interface
// parity with the other executors.
func (e Sharded) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	res, _, err := e.ExecuteSharded(st, blk)
	return res, err
}

// touchesForeign reports whether the overlay's access set leaves the home
// shard under the block's shard map.
func touchesForeign(o *overlay, home int, m core.ShardMap) bool {
	//txlint:ordered m.Shard is a pure function of the address; the scan returns a constant on the first foreign hit, so any visit order agrees
	for k := range o.reads {
		if m.Shard(k.Addr) != home {
			return true
		}
	}
	//txlint:ordered same pure-predicate constant-return scan as the reads loop
	for k := range o.writes {
		if m.Shard(k.Addr) != home {
			return true
		}
	}
	//txlint:ordered same pure-predicate constant-return scan over delta addresses
	for a := range o.deltas {
		if m.Shard(a) != home {
			return true
		}
	}
	return false
}

// crossWriteIndex is the per-key ordering index of the cross-shard set:
// the smallest block position of a cross transaction that absolutely
// writes (abs) or delta-writes (delta) the key. Missing entries mean "not
// written"; -1 is never stored.
type crossWriteIndex struct {
	abs   map[StateKey]int
	delta map[StateKey]int
}

// noteMinIdx keeps the smallest block position recorded for k — the
// ordering-index primitive of the cross-shard commit.
func noteMinIdx(m map[StateKey]int, k StateKey, i int) {
	if prev, ok := m[k]; !ok || i < prev {
		m[k] = i
	}
}

// shardedSpec carries one block's phase-1 output into phase 2 — built
// inline by ExecuteSharded, and by the speculative stage goroutine (against
// pinned per-shard snapshots) in ExecuteChain.
type shardedSpec struct {
	overlays []*overlay
	p1rcpt   []*account.Receipt
	failed   []bool
	home     []int
	byShard  [][]int
}

// specExec runs phase 1: home-shard assignment by sender (as Zilliqa
// assigns accounts to committees — same-sender nonce chains stay in one
// shard) under the block's shard map, then per-shard speculative
// pipelines, every transaction on its own recording overlay over base.
// base must be safe for concurrent reads, and m must not be rebalanced
// while the stage runs.
func (e Sharded) specExec(base account.State, blk *account.Block, m core.ShardMap, wps int) *shardedSpec {
	x := len(blk.Txs)
	shards := m.Shards()
	sp := &shardedSpec{
		overlays: make([]*overlay, x),
		p1rcpt:   make([]*account.Receipt, x),
		failed:   make([]bool, x),
		home:     make([]int, x),
		byShard:  make([][]int, shards),
	}
	for i, tx := range blk.Txs {
		sp.home[i] = m.Shard(tx.From)
		sp.byShard[sp.home[i]] = append(sp.byShard[sp.home[i]], i)
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			idxs := sp.byShard[sh]
			parallelFor(len(idxs), wps, func(j int) {
				i := idxs[j]
				o := newOverlayOp(base, e.OpLevel)
				rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[i])
				if err != nil {
					// Envelope failure against the pinned state (e.g. a
					// nonce chain): the shard's phase-2 bin re-executes it.
					sp.failed[i] = true
				} else {
					sp.p1rcpt[i] = rcpt
				}
				sp.overlays[i] = o
			})
		}(sh)
	}
	wg.Wait()
	return sp
}

// shardedOutcome is phase 2's result: the final receipts, the block's write
// set composed in block order over the base view (fees not yet credited),
// the sharding counters, and the schedule-length terms the callers fold
// into Stats.
type shardedOutcome struct {
	receipts []*account.Receipt
	acc      *overlay
	ss       *ShardStats
	// obs is the block's heat observation, built only when the engine runs
	// with an adaptive shard map (nil otherwise).
	obs *core.BlockHeat

	// Unit-cost schedule terms. spreadUnits is the phase-1 spread alone
	// (max over shards, floored by the core budget); intraUnits adds the
	// shard-local bins (the per-block engine's phase-1+2a term);
	// mergeUnits and repairs are the cross-shard commit's and the repair
	// pass's sequential-tail contributions.
	spreadUnits, intraUnits, mergeUnits, repairs int
	// Re-execution event counters: binned shard-local re-executions, merge
	// re-executions (wave runs), in-order commit redos, and conflicted
	// (distinct serialised transactions).
	binned, mergeReexecs, redos, conflicted int
	// Gas-weighted counterparts.
	spreadGas, intraGas, mergeGas, repairGas uint64
}

// phase2 classifies the block, commits the per-shard sub-blocks, runs the
// cross-shard merge (batched staged groups, parallel re-execution waves),
// and composes the final block write set in order — re-executing the repair
// suffix when the merge detected an ordering overlap. stale, when non-nil,
// reports keys whose committed value postdates the phase-1 snapshot
// (ExecuteChain's cross-block staleness); phase-1 results reading such keys
// are demoted to failures and re-execute on the true prefix.
func (e Sharded) phase2(base account.State, stale func(StateKey) bool, blk *account.Block,
	sp *shardedSpec, m core.ShardMap, wps int) (*shardedOutcome, error) {
	x := len(blk.Txs)
	shards := m.Shards()
	overlays, failed, p1rcpt := sp.overlays, sp.failed, sp.p1rcpt

	if stale != nil {
		for i, o := range overlays {
			if failed[i] {
				continue
			}
			//txlint:ordered stale() only reads; sole effect is the constant failed[i] set immediately before break
			for k := range o.reads {
				if stale(k) {
					failed[i] = true
					break
				}
			}
		}
	}

	// Classification. A transaction whose phase-1 access set leaves its
	// home shard joins the cross-shard set. Then, to fixpoint: an intra
	// transaction ordered *after* a cross-shard write it touches must be
	// ordered against it, so it joins the cross-shard set too (delta–delta
	// contact commutes and is exempt). The fixpoint uses phase-1 access
	// sets — predictions, not guarantees; divergent re-executions are
	// caught by the commit-time validation below.
	cross := make([]bool, x)
	for i := range cross {
		cross[i] = touchesForeign(overlays[i], sp.home[i], m)
	}
	// The fixpoint is monotone — cross membership only grows and the
	// per-key minima in p1cw only decrease — so the index is maintained
	// incrementally: each reclassified transaction adds its writes once,
	// and the scan repeats until a full pass reclassifies nothing.
	p1cw := crossWriteIndex{abs: make(map[StateKey]int), delta: make(map[StateKey]int)}
	addCrossWrites := func(i int, o *overlay) {
		//txlint:ordered noteMinIdx keeps the per-key minimum with i fixed for the loop; min-reduction commutes
		for k := range o.writes {
			noteMinIdx(p1cw.abs, k, i)
		}
		//txlint:ordered same per-key min-reduction via deltaKey
		for a := range o.deltas {
			noteMinIdx(p1cw.delta, deltaKey(a), i)
		}
	}
	for i, o := range overlays {
		if cross[i] {
			addCrossWrites(i, o)
		}
	}
	orderedAfterCross := func(i int, o *overlay) bool {
		for k := range o.reads {
			if j, ok := p1cw.abs[k]; ok && j < i {
				return true
			}
			if j, ok := p1cw.delta[k]; ok && j < i {
				return true
			}
		}
		for k := range o.writes {
			if j, ok := p1cw.abs[k]; ok && j < i {
				return true
			}
			if j, ok := p1cw.delta[k]; ok && j < i {
				return true
			}
		}
		for a := range o.deltas {
			// Delta–delta commutes across the intra/cross boundary; only
			// an earlier cross *absolute* write forces ordering.
			if j, ok := p1cw.abs[deltaKey(a)]; ok && j < i {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i, o := range overlays {
			if cross[i] {
				continue
			}
			if orderedAfterCross(i, o) {
				cross[i] = true
				addCrossWrites(i, o)
				changed = true
			}
		}
	}

	// Phase 2a: per-shard in-order commit of the intra-shard sub-blocks,
	// all shards in parallel. Winners (intra transactions that pass the
	// shard-local symmetric conflict rule) apply their phase-1 overlays in
	// block order; binned ones re-execute against the shard's staged
	// prefix. A re-execution that leaves the shard — or fails — is handed
	// to the cross-shard commit: the shard prefix is not the sequential
	// prefix, so neither its access set nor its error is authoritative.
	type shardOutcome struct {
		acc      *overlay
		binned   int
		gasBin   uint64 // gas of the shard-local sequential re-executions
		staleMin int    // smallest winner index holding a stale result; -1 if none
	}
	final := make([]*overlay, x) // committed results, by tx index
	receipts := make([]*account.Receipt, x)
	// reexecuted marks the distinct transactions the engine serialised at
	// least once (shard bin, cross-shard merge, or repair pass) — a bin
	// re-execution rerouted to the cross set and aborted there must not
	// count twice.
	reexecuted := make([]bool, x)
	outcomes := make([]shardOutcome, shards)
	parallelFor(shards, shards, func(sh int) {
		out := &outcomes[sh]
		out.staleMin = -1
		// Shard-local conflict detection over the intra candidates.
		intra := make([]*overlay, 0, len(sp.byShard[sh]))
		for _, i := range sp.byShard[sh] {
			if !cross[i] {
				intra = append(intra, overlays[i])
			}
		}
		ac := countAccesses(intra)
		acc := newOverlayOp(base, e.OpLevel)
		out.acc = acc
		// p2min[k] is the smallest binned index that wrote k during this
		// shard's re-executions — the winner-staleness probe of the
		// speculative scheme, applied per shard.
		p2min := make(map[StateKey]int)
		logW := func(o *overlay, i int) {
			for k := range o.writes {
				if _, seen := p2min[k]; !seen {
					p2min[k] = i
				}
			}
			for a := range o.deltas {
				k := deltaKey(a)
				if _, seen := p2min[k]; !seen {
					p2min[k] = i
				}
			}
		}
		for _, i := range sp.byShard[sh] {
			if cross[i] {
				continue
			}
			o := overlays[i]
			if !failed[i] && !o.conflicted(ac) {
				o.applyTo(acc)
				final[i] = o
				receipts[i] = p1rcpt[i]
				continue
			}
			out.binned++
			reexecuted[i] = true
			ro := newOverlayOp(acc, e.OpLevel)
			rcpt, err := procDeferred.ApplyTransaction(ro, blk, blk.Txs[i])
			if err != nil || touchesForeign(ro, sh, m) {
				cross[i] = true
				continue
			}
			receipts[i] = rcpt
			out.gasBin += costOf(e.Cost, blk.Txs[i], rcpt)
			logW(ro, i)
			ro.applyTo(acc)
			final[i] = ro
		}
		// Winner staleness: a shard-local bin re-execution may write keys
		// phase 1 never saw it write; any winner ordered after such a write
		// holds a stale result. The smallest such winner index bounds the
		// repair suffix.
		if len(p2min) > 0 {
			for _, i := range sp.byShard[sh] {
				if cross[i] || final[i] == nil || final[i] != overlays[i] {
					continue
				}
				o := overlays[i]
				isStale := false
				for k := range o.reads {
					if j, ok := p2min[k]; ok && j < i {
						isStale = true
					}
				}
				for k := range o.writes {
					if j, ok := p2min[k]; ok && j < i {
						isStale = true
					}
				}
				if isStale && (out.staleMin < 0 || i < out.staleMin) {
					out.staleMin = i
				}
			}
		}
	})
	// repairFrom is the earliest block position whose committed result is
	// suspect: everything at or after it is re-executed by the composition
	// pass against its exact sequential prefix. x means "no repair".
	repairFrom := x
	bump := func(p int) {
		if p < repairFrom {
			repairFrom = p
		}
	}
	for sh := range outcomes {
		if v := outcomes[sh].staleMin; v >= 0 {
			bump(v)
		}
	}

	// Intra touch index, for ordering the cross-shard set against the
	// committed sub-blocks: per key, the smallest intra writer (reads of a
	// staged cross transaction must not postdate it) and the full ascending
	// position lists of intra readers / absolute writers / delta writers.
	// The lists bound the repair suffix precisely: when a cross-shard write
	// at j overlaps later intra results, only the *first affected* intra
	// position — not j+1 — starts the re-run.
	minIntraWrite := make(map[StateKey]int)
	intraReads := make(map[StateKey][]int)
	intraAbs := make(map[StateKey][]int)
	intraDeltas := make(map[StateKey][]int)
	for i, f := range final {
		if f == nil {
			continue
		}
		for k := range f.reads {
			intraReads[k] = append(intraReads[k], i)
		}
		//txlint:ordered per-key min and ascending-position append with i fixed; distinct keys, commuting updates
		for k := range f.writes {
			noteMinIdx(minIntraWrite, k, i)
			intraAbs[k] = append(intraAbs[k], i)
		}
		//txlint:ordered same commuting per-key min and append via deltaKey
		for a := range f.deltas {
			k := deltaKey(a)
			noteMinIdx(minIntraWrite, k, i)
			intraDeltas[k] = append(intraDeltas[k], i)
		}
	}
	// firstAfter returns the smallest position in the ascending list
	// strictly greater than j, or -1; lastOf the largest entry.
	firstAfter := func(list []int, j int) int {
		lo := sort.SearchInts(list, j+1)
		if lo == len(list) {
			return -1
		}
		return list[lo]
	}
	lastOf := func(list []int) int {
		if len(list) == 0 {
			return -1
		}
		return list[len(list)-1]
	}

	// Phase 2b: deterministic cross-shard commit, in block order, over the
	// merged view (every shard's committed sub-block read through
	// non-recording overlay readers) plus the cross-shard accumulator.
	merged := &mergedState{m: m, views: make([]account.State, shards)}
	for sh := range merged.views {
		merged.views[sh] = outcomes[sh].acc.reader()
	}
	accX := newOverlayOp(merged, e.OpLevel)
	cw := crossWriteIndex{abs: make(map[StateKey]int), delta: make(map[StateKey]int)}
	crossIdx := make([]int, 0, x)
	for j := 0; j < x; j++ {
		if cross[j] {
			crossIdx = append(crossIdx, j)
		}
	}
	crossN := len(crossIdx)
	ss := &ShardStats{
		Shards: shards, Cross: crossN, Intra: x - crossN,
		PerShardTxs: make([]int, shards),
	}
	for sh := range sp.byShard {
		ss.PerShardTxs[sh] = len(sp.byShard[sh])
	}
	out := &shardedOutcome{receipts: receipts, ss: ss}

	maxWave := e.Workers
	if e.SequentialMerge || maxWave < 1 {
		maxWave = 1
	}

	// Heat-aware wave ordering: when the shard map carries a learned
	// conflict profile, no two transactions touching the *same*
	// conflict-hot address share a wave — the second one is cut off so it
	// leads the next wave, executing against the first one's committed
	// writes instead of betting on a phase-1 prediction. Predictions are
	// exactly wrong on hot addresses whose transactions failed phase 1
	// outright (a sweep bot's nonce chain: the failed overlays predict
	// almost nothing, so the disjointness check waves the whole chain
	// together and every member past the first redoes sequentially at its
	// commit point); scheduling each hot community's next transaction into
	// the earliest *following* wave converts those redo units back into
	// wave-parallel ones. Transactions over distinct hot communities — four
	// bots' chains interleaved — still share waves freely.
	hs, _ := e.Map.(conflictHeatSource)
	hotAddrsOf := func(o *overlay) []types.Address {
		if hs == nil {
			return nil
		}
		var out []types.Address
		seen := func(a types.Address) bool {
			for _, b := range out {
				if a == b {
					return true
				}
			}
			return false
		}
		//txlint:ordered collects a deduplicated set of hot addresses; consumers only test membership, never order
		for k := range o.reads {
			if hs.ConflictHot(k.Addr) && !seen(k.Addr) {
				out = append(out, k.Addr)
			}
		}
		//txlint:ordered same membership-set collection as the reads loop
		for k := range o.writes {
			if hs.ConflictHot(k.Addr) && !seen(k.Addr) {
				out = append(out, k.Addr)
			}
		}
		//txlint:ordered same membership-set collection over delta addresses
		for a := range o.deltas {
			if hs.ConflictHot(a) && !seen(a) {
				out = append(out, a)
			}
		}
		return out
	}

	// validStaged reports whether j's phase-1 result is the sequential
	// result: every read must predate both the intra commits and the
	// earlier cross-shard writes. (Blind deltas carry no reads, so
	// op-level hot-key credits validate vacuously — they commute with
	// everything staged so far.)
	validStaged := func(j int) bool {
		if failed[j] || final[j] != nil || p1rcpt[j] == nil {
			return false
		}
		o := overlays[j]
		for k := range o.reads {
			if i, ok := minIntraWrite[k]; ok && i < j {
				return false
			}
			if _, ok := cw.abs[k]; ok {
				return false
			}
			if _, ok := cw.delta[k]; ok {
				return false
			}
		}
		return true
	}
	// commitCross records j's committed writes in the cross-write index and
	// runs the ordering checks against later intra results: a cross write a
	// later intra transaction read (that reader is stale), or one a later
	// intra write supersedes (the merged view would show the wrong value to
	// cross readers after that writer), bounds the repair suffix at the
	// *first affected* intra position — j's own result stands, and
	// everything from the first stale or superseding intra result on
	// re-executes against its exact prefix. Delta–delta contact commutes
	// and is exempt.
	bumpAffected := func(j int, list []int) {
		if i := firstAfter(list, j); i >= 0 {
			bump(i)
		}
	}
	commitCross := func(j int, f *overlay) {
		//txlint:ordered noteMinIdx and bumpAffected are per-key min-reductions of the repair bound; they commute
		for k := range f.writes {
			noteMinIdx(cw.abs, k, j)
			bumpAffected(j, intraReads[k])
			bumpAffected(j, intraAbs[k])
			bumpAffected(j, intraDeltas[k])
		}
		//txlint:ordered same commuting min-reductions via deltaKey
		for a := range f.deltas {
			k := deltaKey(a)
			noteMinIdx(cw.delta, k, j)
			bumpAffected(j, intraReads[k])
			bumpAffected(j, intraAbs[k])
		}
	}
	// exactReexec re-executes cross transaction j against its exact
	// sequential prefix, composed in block order from the committed
	// results — the per-transaction repair for a merge re-execution whose
	// merged-view reads folded a later sub-block write (or that failed
	// against the merged prefix, where the failure is not authoritative).
	// Everything before j is committed and valid here: any earlier
	// invalidity would have lowered repairFrom below j and stopped the
	// merge first. An envelope failure against the exact prefix therefore
	// *is* authoritative: the block itself is invalid. Repair positions
	// are strictly increasing within the block, so the prefix accumulator
	// advances incrementally instead of being rebuilt per repair.
	var pacc *overlay
	paccPos := 0
	exactReexec := func(j int) (*overlay, *account.Receipt, error) {
		if pacc == nil {
			pacc = newOverlayOp(base, e.OpLevel)
		}
		for ; paccPos < j; paccPos++ {
			if f := final[paccPos]; f != nil {
				f.applyTo(pacc)
			}
		}
		ro := newOverlayOp(pacc, e.OpLevel)
		rcpt, err := procDeferred.ApplyTransaction(ro, blk, blk.Txs[j])
		if err != nil {
			return nil, nil, fmt.Errorf("exec: sharded cross tx %d: %w", j, err)
		}
		return ro, rcpt, nil
	}

	// The staged group buffer: consecutive staged-valid transactions commit
	// as one commuting batch when the next merge step forces a flush.
	var group []int
	flushGroup := func() {
		committed := 0
		for _, j := range group {
			// A mid-flush ordering bump can cut the repair point into the
			// group: members at or past it stay uncommitted (the
			// composition pass re-executes them) and must not count as
			// batched.
			if j >= repairFrom {
				break
			}
			o := overlays[j]
			receipts[j] = p1rcpt[j]
			o.applyTo(accX)
			final[j] = o
			commitCross(j, o)
			committed++
		}
		if committed >= 2 {
			ss.BatchedStage += committed
		}
		group = group[:0]
	}

	p := 0
	for p < len(crossIdx) {
		j := crossIdx[p]
		if j >= repairFrom {
			break
		}
		if validStaged(j) {
			// Group members are validated against the incrementally
			// updated cross-write index only at flush time below; to keep
			// the in-group validation exact, flush-time commitCross runs
			// per member, and validStaged here sees cw as of the last
			// flush. A member whose reads hit an earlier member's writes
			// must not batch — close the group and revalidate.
			hit := false
			o := overlays[j]
			for _, g := range group {
				go_ := overlays[g]
				for k := range o.reads {
					if _, w := go_.writes[k]; w {
						hit = true
					}
					if k.Kind == kindBalance {
						if _, d := go_.deltas[k.Addr]; d {
							hit = true
						}
					}
				}
				if hit {
					break
				}
			}
			if !hit {
				group = append(group, j)
				if e.SequentialMerge {
					// One transaction per group: flush immediately so the
					// sequential baseline never batch-commits.
					flushGroup()
				}
				p++
				continue
			}
			flushGroup()
			if j >= repairFrom {
				break
			}
			if validStaged(j) {
				group = append(group, j)
				if e.SequentialMerge {
					flushGroup()
				}
				p++
				continue
			}
			// Flushing exposed a real stale read: fall through to
			// re-execution.
		}
		flushGroup()
		if j >= repairFrom {
			break
		}

		// Build a re-execution wave: the maximal run of consecutive cross
		// transactions that all need re-execution and are pairwise
		// key-disjoint by their phase-1 predictions (delta–delta contact
		// exempt). Predictions can be wrong — the in-order commit below
		// revalidates against the wave's actual writes and redoes
		// mispredicted members sequentially at their commit point.
		wave := []int{j}
		waveW := make(map[StateKey]struct{})
		waveR := make(map[StateKey]struct{})
		noteWave := func(o *overlay) {
			for k := range o.writes {
				waveW[k] = struct{}{}
			}
			for a := range o.deltas {
				waveW[deltaKey(a)] = struct{}{}
			}
			for k := range o.reads {
				waveR[k] = struct{}{}
			}
		}
		noteWave(overlays[j])
		var waveHot map[types.Address]struct{}
		noteHot := func(o *overlay) {
			addrs := hotAddrsOf(o)
			if len(addrs) == 0 {
				return
			}
			if waveHot == nil {
				waveHot = make(map[types.Address]struct{})
			}
			for _, a := range addrs {
				waveHot[a] = struct{}{}
			}
		}
		noteHot(overlays[j])
		for p+len(wave) < len(crossIdx) && len(wave) < maxWave {
			jn := crossIdx[p+len(wave)]
			if jn >= repairFrom || validStaged(jn) {
				break
			}
			hotShared := false
			for _, a := range hotAddrsOf(overlays[jn]) {
				if _, ok := waveHot[a]; ok {
					hotShared = true
					break
				}
			}
			if hotShared {
				// A hot community already has a member in this wave; its
				// next transaction leads the following wave instead.
				break
			}
			o := overlays[jn]
			indep := true
			for k := range o.reads {
				if _, w := waveW[k]; w {
					indep = false
					break
				}
			}
			if indep {
				for k := range o.writes {
					_, w := waveW[k]
					_, r := waveR[k]
					if w || r {
						indep = false
						break
					}
				}
			}
			if indep {
				//txlint:ordered membership probes only; sole effect is the constant indep=false set immediately before break
				for a := range o.deltas {
					k := deltaKey(a)
					// Delta–delta commutes; a delta against a wave
					// member's read or absolute write does not.
					if _, r := waveR[k]; r {
						indep = false
						break
					}
					if waveAbsWrite(waveW, wave, overlays, k) {
						indep = false
						break
					}
				}
			}
			if !indep {
				break
			}
			wave = append(wave, jn)
			noteWave(o)
			noteHot(o)
		}

		// Execute the wave in parallel against the pre-wave merged prefix.
		reader := accX.reader()
		wOverlays := make([]*overlay, len(wave))
		wReceipts := make([]*account.Receipt, len(wave))
		wErr := make([]error, len(wave))
		parallelFor(len(wave), maxWave, func(w int) {
			o := newOverlayOp(reader, e.OpLevel)
			rcpt, err := procDeferred.ApplyTransaction(o, blk, blk.Txs[wave[w]])
			wOverlays[w], wReceipts[w], wErr[w] = o, rcpt, err
		})
		ss.MergeWaves++
		waveUnits := ceilDiv(len(wave), maxWave)
		out.mergeUnits += waveUnits
		ss.MergeUnits += waveUnits
		var waveGas uint64

		// In-order commit with revalidation: a member whose actual reads
		// hit an earlier member's actual writes (or that failed against the
		// pre-wave prefix) re-executes sequentially at its commit point.
		committed := make(map[StateKey]struct{})
		noteCommitted := func(f *overlay) {
			for k := range f.writes {
				committed[k] = struct{}{}
			}
			for a := range f.deltas {
				committed[deltaKey(a)] = struct{}{}
			}
		}
		for w, jw := range wave {
			if jw >= repairFrom {
				break
			}
			f, rcpt := wOverlays[w], wReceipts[w]
			redone := false
			ok := wErr[w] == nil
			if ok {
				for k := range f.reads {
					if _, hit := committed[k]; hit {
						ok = false
						break
					}
				}
			}
			if ok {
				// The merged view folds *whole* sub-blocks; the wave run is
				// prefix-correct only if nothing it read was written by an
				// intra transaction ordered after it.
				//txlint:ordered lastOf reads fixed per-key lists; sole effect is the constant ok=false set immediately before break
				for k := range f.reads {
					if lastOf(intraAbs[k]) > jw || lastOf(intraDeltas[k]) > jw {
						ok = false
						break
					}
				}
			}
			if !ok {
				// Mispredicted independence, an envelope failure against
				// the merged prefix, or a merged read that folded a later
				// sub-block write: repair this transaction at its commit
				// point against the exact sequential prefix — one
				// sequential unit, instead of invalidating the block
				// suffix.
				ro, r2, err := exactReexec(jw)
				if err != nil {
					return nil, err
				}
				f, rcpt = ro, r2
				redone = true
				out.redos++
				out.mergeUnits++
				ss.MergeUnits++
			}
			receipts[jw] = rcpt
			final[jw] = f
			reexecuted[jw] = true
			out.mergeReexecs++
			ss.CrossAborts++
			if redone {
				// Redo gas is a sequential commit-point cost, not part of
				// the wave's parallel spread.
				out.mergeGas += costOf(e.Cost, blk.Txs[jw], rcpt)
			} else {
				waveGas += costOf(e.Cost, blk.Txs[jw], rcpt)
			}
			noteCommitted(f)
			f.applyTo(accX)
			commitCross(jw, f)
		}
		out.mergeGas += ceilDivU(waveGas, uint64(maxWave))
		p += len(wave)
	}
	flushGroup()

	// Composition (and repair) pass: fold every committed result into the
	// block accumulator strictly in block order — absolute values land as
	// writes, deltas as commutative increments, so the in-order fold
	// reproduces the sequential composition (a later intra write correctly
	// supersedes an earlier cross write, unlike a fold that applies whole
	// sub-blocks first). From repairFrom on, results are suspect: each such
	// transaction re-executes against the accumulator, which at its turn
	// holds exactly the sequential prefix — so the repair is authoritative,
	// and an envelope failure here means the block itself is invalid.
	acc := newOverlayOp(base, e.OpLevel)
	for i := 0; i < x; i++ {
		if i < repairFrom && final[i] != nil {
			final[i].applyTo(acc)
			continue
		}
		ro := newOverlayOp(acc, e.OpLevel)
		rcpt, err := procDeferred.ApplyTransaction(ro, blk, blk.Txs[i])
		if err != nil {
			return nil, fmt.Errorf("exec: sharded repair tx %d: %w", i, err)
		}
		receipts[i] = rcpt
		ro.applyTo(acc)
		final[i] = ro
		if cross[i] && !reexecuted[i] {
			ss.CrossAborts++
		}
		reexecuted[i] = true
		out.repairs++
		out.repairGas += costOf(e.Cost, blk.Txs[i], rcpt)
	}
	out.acc = acc
	ss.Repairs = out.repairs
	ss.Fallback = x > 0 && out.repairs == x
	if _, adaptive := e.Map.(core.AdaptiveShardMap); adaptive {
		out.obs = buildBlockHeat(final, reexecuted)
	}

	// Schedule-length accounting, paper unit-cost model: the per-shard
	// pipelines run concurrently (max over shards of phase 1 + bin), the
	// cross-shard merge costs ⌈wave/n⌉ per re-execution wave plus one unit
	// per commit redo (validated applications, like winner applies, are
	// free), and the repair pass appends its suffix sequentially. Because
	// each shard's pipeline is credited ⌈n/s⌉ workers, s·⌈n/s⌉ can exceed
	// n when s does not divide n; the intra stage is therefore floored by
	// the total core-budget bound — all intra work over n cores — so
	// configurations like Workers=2, Shards=8 cannot report an 8-way
	// speed-up.
	var gasTotal, gasBinTotal uint64
	for sh := range sp.byShard {
		n := len(sp.byShard[sh])
		spread, u := 0, 0
		if n > 0 {
			spread = ceilDiv(n, wps)
			u = spread + outcomes[sh].binned
		}
		// Gas counterpart of u: the shard's phase 1 spreads the sub-block's
		// gas over its workers, the shard-local bin re-executes its gas
		// sequentially — the same two terms as the speculative engine's
		// GasPar, per shard.
		var g uint64
		for _, i := range sp.byShard[sh] {
			if receipts[i] != nil {
				g += costOf(e.Cost, blk.Txs[i], receipts[i])
			}
		}
		var spreadGas, shardGas uint64
		if g > 0 {
			spreadGas = ceilDivU(g, uint64(wps))
			shardGas = spreadGas + outcomes[sh].gasBin
		}
		if spread > out.spreadUnits {
			out.spreadUnits = spread
		}
		if u > out.intraUnits {
			out.intraUnits = u
		}
		if spreadGas > out.spreadGas {
			out.spreadGas = spreadGas
		}
		if shardGas > out.intraGas {
			out.intraGas = shardGas
		}
		out.binned += outcomes[sh].binned
		gasTotal += g
		gasBinTotal += outcomes[sh].gasBin
	}
	if x > 0 {
		if floor := ceilDiv(x, e.Workers); floor > out.spreadUnits {
			out.spreadUnits = floor
		}
		if floor := ceilDiv(x+out.binned, e.Workers); floor > out.intraUnits {
			out.intraUnits = floor
		}
	}
	if gasTotal > 0 {
		if floor := ceilDivU(gasTotal, uint64(e.Workers)); floor > out.spreadGas {
			out.spreadGas = floor
		}
	}
	if gasTotal+gasBinTotal > 0 {
		if floor := ceilDivU(gasTotal+gasBinTotal, uint64(e.Workers)); floor > out.intraGas {
			out.intraGas = floor
		}
	}
	for _, r := range reexecuted {
		if r {
			out.conflicted++
		}
	}
	return out, nil
}

// touchedAddrs returns the distinct addresses of the overlay's recorded
// access set, in deterministic (byte) order.
func touchedAddrs(o *overlay) []types.Address {
	set := make(map[types.Address]struct{})
	for k := range o.reads {
		set[k.Addr] = struct{}{}
	}
	for k := range o.writes {
		set[k.Addr] = struct{}{}
	}
	for a := range o.deltas {
		set[a] = struct{}{}
	}
	addrs := make([]types.Address, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	return addrs
}

// buildBlockHeat summarises one committed block for an adaptive shard map:
// per-address access counts over the committed results, per-address
// conflict counts over the serialised (re-executed) transactions, and the
// serialised transactions' address groups — the affinity signal placement
// clusters on.
func buildBlockHeat(final []*overlay, reexecuted []bool) *core.BlockHeat {
	h := &core.BlockHeat{
		Access:   make(map[types.Address]int),
		Conflict: make(map[types.Address]int),
	}
	for i, f := range final {
		if f == nil {
			continue
		}
		addrs := touchedAddrs(f)
		for _, a := range addrs {
			h.Access[a]++
		}
		if reexecuted[i] {
			for _, a := range addrs {
				h.Conflict[a]++
			}
			h.Groups = append(h.Groups, addrs)
		}
	}
	return h
}

// waveAbsWrite reports whether any wave member absolutely wrote k (as
// opposed to delta-writing it): waveW conflates the two kinds, so the
// delta-candidate check walks the members' write sets directly.
func waveAbsWrite(waveW map[StateKey]struct{}, wave []int, overlays []*overlay, k StateKey) bool {
	if _, any := waveW[k]; !any {
		return false
	}
	for _, j := range wave {
		if _, w := overlays[j].writes[k]; w {
			return true
		}
	}
	return false
}

// ExecuteSharded runs the block and additionally returns the sharding
// counters the E9 experiment reports. st is mutated on success. With an
// adaptive Map, the committed block's heat is fed to the map before
// returning, so repeated per-block calls against a shared map accumulate a
// profile exactly as ExecuteChain does.
func (e Sharded) ExecuteSharded(st *account.StateDB, blk *account.Block) (*Result, *ShardStats, error) {
	if e.Workers < 1 {
		return nil, nil, ErrNoWorkers
	}
	m := e.shardMap()
	shards := m.Shards()
	wps := ceilDiv(e.Workers, shards)
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	x := len(blk.Txs)

	sp := e.specExec(st, blk, m, wps)
	out, err := e.phase2(st, nil, blk, sp, m, wps)
	if err != nil {
		return nil, nil, err
	}
	out.acc.applyTo(st)
	finalizeBlock(st, blk, out.receipts)
	if am, ok := m.(core.AdaptiveShardMap); ok && out.obs != nil {
		am.ObserveBlock(*out.obs)
	}

	res := &Result{Receipts: out.receipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: out.conflicted,
		SeqUnits:   x,
		ParUnits:   out.intraUnits + out.mergeUnits + out.repairs,
		GasSeq:     costSum(e.Cost, blk.Txs, out.receipts),
		GasPar:     out.intraGas + out.mergeGas + out.repairGas,
		Retries:    out.binned + out.mergeReexecs + out.redos + out.repairs,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, out.ss, nil
}
