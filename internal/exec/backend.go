package exec

import (
	"sync"
	"sync/atomic"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
	"txconcur/internal/mvstore"
	"txconcur/internal/types"
)

// StateBackend is the chain drivers' seam to the disk-backed base layer
// (internal/basestore.Store is the production implementation): cold keys
// evicted from the mvstore version cache are folded into it, and cache
// misses read through to it, so the cache holds only hot keys and total
// state can exceed RAM. Implementations must be safe for concurrent use —
// speculative workers read while the committer evicts.
//
// Keys and values use the basestore state-entry codec
// (basestore.EncodeKey / basestore.StateEntries); Get's second result is
// false when the backend holds no entry for the key.
type StateBackend interface {
	Get(key []byte) ([]byte, bool, error)
	Apply(entries []basestore.Entry) error
	Range(fn func(key string, val []byte) bool) error
}

// baseState is the read-only subset of account.State the speculative
// snapshots fall through to on a cache miss: the immutable pre-chain
// StateDB, or a backedState layering the disk base layer over it.
type baseState interface {
	GetBalance(types.Address) int64
	GetNonce(types.Address) uint64
	GetCode(types.Address) []byte
	GetStorage(types.Address, uint64) uint64
}

// kindByte maps an exec state-key kind to the basestore codec's constant.
func kindByte(k keyKind) byte {
	switch k {
	case kindBalance:
		return basestore.KindBalance
	case kindNonce:
		return basestore.KindNonce
	case kindCode:
		return basestore.KindCode
	case kindStorage:
		return basestore.KindStorage
	}
	panic("exec: invalid state-key kind")
}

// encodeStateKey encodes a StateKey for the backend.
func encodeStateKey(k StateKey) []byte {
	return basestore.EncodeKey(k.Addr, kindByte(k.Kind), k.Slot)
}

// encodeStateVal encodes a fully materialised state value for the backend.
func encodeStateVal(k StateKey, v stateVal) []byte {
	switch k.Kind {
	case kindBalance:
		return basestore.EncodeU64(uint64(v.i64))
	case kindCode:
		return v.bytes
	default: // nonce, storage
		return basestore.EncodeU64(v.u64)
	}
}

// backedState layers a StateBackend between the version cache and the
// immutable pre-chain StateDB: evicted keys resolve from the backend,
// everything else falls through to the pre-chain state. Reads are safe for
// concurrent use. Backend read or decode failures cannot surface through
// the account.State read signatures, so they latch: the chain drivers
// check Err at every commit point and abort the chain — a read that
// latched an error returns the pre-chain fallback, which the abort makes
// unobservable.
type backedState struct {
	st *account.StateDB
	be StateBackend

	// cold counts backend hits — reads the version cache had evicted.
	cold atomic.Uint64

	errMu sync.Mutex
	err   error
}

var _ baseState = (*backedState)(nil)

func (b *backedState) fail(err error) {
	b.errMu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.errMu.Unlock()
}

// Err returns the first latched backend failure, if any.
func (b *backedState) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.err
}

// ColdReads returns the number of reads served by the backend.
func (b *backedState) ColdReads() int { return int(b.cold.Load()) }

// lookup fetches one backend entry; ok is false on absence (fall through
// to the pre-chain state) and on a latched error.
func (b *backedState) lookup(kind keyKind, a types.Address, slot uint64) ([]byte, bool) {
	v, ok, err := b.be.Get(basestore.EncodeKey(a, kindByte(kind), slot))
	if err != nil {
		b.fail(err)
		return nil, false
	}
	if ok {
		b.cold.Add(1)
	}
	return v, ok
}

func (b *backedState) u64(kind keyKind, a types.Address, slot uint64) (uint64, bool) {
	v, ok := b.lookup(kind, a, slot)
	if !ok {
		return 0, false
	}
	u, err := basestore.DecodeU64(v)
	if err != nil {
		b.fail(err)
		return 0, false
	}
	return u, true
}

func (b *backedState) GetBalance(a types.Address) int64 {
	if u, ok := b.u64(kindBalance, a, 0); ok {
		return int64(u)
	}
	return b.st.GetBalance(a)
}

func (b *backedState) GetNonce(a types.Address) uint64 {
	if u, ok := b.u64(kindNonce, a, 0); ok {
		return u
	}
	return b.st.GetNonce(a)
}

func (b *backedState) GetCode(a types.Address) []byte {
	if v, ok := b.lookup(kindCode, a, 0); ok {
		return v
	}
	return b.st.GetCode(a)
}

func (b *backedState) GetStorage(a types.Address, slot uint64) uint64 {
	if u, ok := b.u64(kindStorage, a, slot); ok {
		return u
	}
	return b.st.GetStorage(a, slot)
}

// evictCold moves cold keys from a single version cache into the backend:
// collect resolved cold keys down to budget, durably persist them
// (delta-only balance chains folded over the backed base, preserving
// commutativity), then — and only then — drop the chains, so a reader that
// misses a dropped chain always finds the value in the backend. horizon
// must be the GC horizon of the commit that triggered eviction. Returns
// the number of chains dropped.
func evictCold(mv *mvstore.Store[StateKey, stateVal], bst *backedState, horizon uint64, budget int) (int, error) {
	excess := mv.StoreStats().Keys - budget
	if excess <= 0 {
		return 0, nil
	}
	cold := mv.CollectCold(horizon, excess)
	if len(cold) == 0 {
		return 0, nil
	}
	entries := make([]basestore.Entry, 0, len(cold))
	keys := make([]StateKey, 0, len(cold))
	for _, ev := range cold {
		v := ev.Val
		if !ev.Anchored {
			// Deltas exist only for balances: fold the accumulated
			// increment over the backed base so the persisted value is
			// absolute.
			v = stateVal{i64: bst.GetBalance(ev.Key.Addr) + ev.Val.i64}
		}
		entries = append(entries, basestore.Entry{Key: encodeStateKey(ev.Key), Val: encodeStateVal(ev.Key, v)})
		keys = append(keys, ev.Key)
	}
	if err := bst.be.Apply(entries); err != nil {
		return 0, err
	}
	return mv.DropChains(keys, horizon), nil
}

// foldBackendInto installs every backend entry into st — the base-layer
// half of the end-of-chain fold (and of checkpoint materialisation). Runs
// before the version-cache fold: cache chains are strictly newer than the
// base values their keys evicted to, so the cache fold wins per key.
func foldBackendInto(be StateBackend, st *account.StateDB) error {
	var ierr error
	err := be.Range(func(key string, val []byte) bool {
		if e := basestore.InstallEntry(st, []byte(key), val); e != nil {
			ierr = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return ierr
}
