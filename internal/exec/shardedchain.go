package exec

import (
	"fmt"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
	"txconcur/internal/core"
	"txconcur/internal/mvstore"
	"txconcur/internal/types"
)

// This file composes the sharded engine with the mvstore pipeline: across a
// chain of blocks, the per-shard speculative phase 1 of block b+1 overlaps
// the deterministic cross-shard commit of block b. Each shard owns a
// persistent multi-version store; a block commits its writes — partitioned
// by the engine's shard map — to every shard's store at the next logical
// timestamp, and phase 1 speculates against per-shard snapshots pinned at
// the deterministic fixed-lag timestamp (the Pipeline.FixedLag discipline):
// re-execution counts and ParUnits depend only on the workload, never on
// scheduler timing.
//
// With an adaptive shard map (core.AdaptiveShardMap + RebalanceEvery > 0)
// the chain is additionally segmented into epochs. At each epoch boundary
// the pipeline drains, the map rebalances from the heat it observed, and
// the moved addresses' state migrates between the per-shard stores as one
// migration commit — a reconfiguration barrier, exactly as committee
// reassignment is in a real sharded chain. Timestamps within an epoch
// advance one per block; each boundary consumes one extra timestamp for
// its migration commit, so the logical clock remains strictly monotonic on
// every store and fixed-lag pins stay valid:
//
//	epoch 0                 boundary            epoch 1
//	blk0   blk1   blk2      rebalance+migrate   blk3   blk4   ...
//	ts 1   ts 2   ts 3      ts 4 (migration)    ts 5   ts 6   ...
//
// Migrated values are committed as absolute (Put) versions materialised
// over the pre-chain state, so they supersede any stale copy an earlier
// migration left behind; the final fold into the caller's StateDB filters
// every store by the *final* assignment, which owns each key's newest
// version by construction.

// ChainShardStats aggregates the sharding counters of a chain executed by
// Sharded.ExecuteChain, per block and in total.
type ChainShardStats struct {
	// Blocks holds each block's ShardStats, in chain order.
	Blocks []ShardStats
	// Cross, CrossAborts, Repairs, MergeWaves, MergeUnits and BatchedStage
	// sum the per-block counters; FallbackBlocks counts blocks whose
	// repair suffix was the whole block.
	Cross, CrossAborts, Repairs  int
	MergeWaves, MergeUnits       int
	BatchedStage, FallbackBlocks int
	// RebalanceEpochs counts the epoch boundaries at which the adaptive
	// shard map recomputed its assignment (including boundaries that moved
	// nothing); Migrations counts the key-values copied between per-shard
	// stores across all of them, and MigrationUnits the schedule-length
	// cost charged for the copies (⌈moved keys/n⌉ per boundary — migration
	// is a real cost, so it is folded into Stats.ParUnits). All zero under
	// a static map.
	RebalanceEpochs int
	Migrations      int
	MigrationUnits  int
	// Checkpoints counts snapshots handed to the engine's CheckpointSink;
	// CheckpointsSkipped counts commit points whose checkpoint was dropped
	// because the async worker was still busy (the commit path never
	// waits). Both zero without a sink.
	Checkpoints        int
	CheckpointsSkipped int
	// Evicted counts version chains the committer moved from the per-shard
	// caches to the state backend (stale migration leftovers dropped
	// alongside included); ColdReads counts reads the backend served after
	// their key was evicted. Both zero without a Backend.
	Evicted   int
	ColdReads int
}

// add folds one block's counters into the aggregate.
func (c *ChainShardStats) add(ss *ShardStats) {
	c.Blocks = append(c.Blocks, *ss)
	c.Cross += ss.Cross
	c.CrossAborts += ss.CrossAborts
	c.Repairs += ss.Repairs
	c.MergeWaves += ss.MergeWaves
	c.MergeUnits += ss.MergeUnits
	c.BatchedStage += ss.BatchedStage
	if ss.Fallback {
		c.FallbackBlocks++
	}
}

// shardedSpecBlock carries one block's phase-1 output from the speculative
// stage to the cross-shard committer. rel is the block's position within
// its epoch (the fixed-lag clock runs on epoch-relative positions).
type shardedSpecBlock struct {
	rel    int
	blk    *account.Block
	spec   *shardedSpec
	snaps  []*mvstore.Snapshot[StateKey, stateVal]
	specTS uint64
}

func (sb *shardedSpecBlock) release() {
	for _, sn := range sb.snaps {
		sn.Release()
	}
}

// shardedChain is the mutable state ExecuteChain threads through its
// epochs: the per-shard stores, the logical clock, and the chain-level
// accumulators.
type shardedChain struct {
	st  *account.StateDB
	mvs []*mvstore.Store[StateKey, stateVal]
	m   core.ShardMap
	// bs is the speculative base every snapState falls through to: st
	// itself, or — with a configured Backend — bst, which reads the disk
	// base layer before st. budget is the per-shard eviction target.
	bs     baseState
	bst    *backedState
	budget int
	// baseTS is the last committed timestamp at the current epoch's entry
	// (0 before the first block; the migration timestamp after a
	// boundary). Block lo+r of an epoch starting at lo commits at
	// baseTS+r+1.
	baseTS uint64

	// all and blockStats grow by append as blocks commit (strictly in
	// order), so the same accumulator serves slice-backed and streamed
	// chains alike.
	all        [][]*account.Receipt
	blockStats []BlockStats
	css        *ChainShardStats
	// Per-epoch flow-shop inputs; the makespans are summed across epochs
	// because a boundary is a barrier (phase 1 of the next epoch cannot
	// start before the migration commit).
	parUnits, seqUnits  int
	gasParUnits         uint64
	gasSeq              uint64
	conflicted, retries int

	// Async checkpointing (see checkpoint.go): the committer enqueues
	// pinned commit points every ckptEvery blocks; the worker materialises
	// and hands them to the engine's CheckpointSink. ckptCh nil when
	// checkpointing is off.
	ckptCh    chan ckptReq
	ckptWG    sync.WaitGroup
	ckptOnce  sync.Once
	ckptEvery int
}

// ExecuteChain executes blocks in order on st (mutated on success), with
// the per-shard speculative phase 1 of later blocks overlapping the
// cross-shard commit of earlier ones — the composition of the sharded
// engine with the mvstore pipeline that converts the merge's sequential
// tail from a per-block barrier into pipelined work. With an adaptive
// shard map and RebalanceEvery > 0 the chain runs in epochs: each boundary
// drains the pipeline, rebalances the map from the heat observed so far,
// and migrates the moved addresses' state between the per-shard stores
// (ChainShardStats.RebalanceEpochs/Migrations/MigrationUnits).
//
// Nothing touches st until every block has committed, so the speculative
// stage can read it lock-free; each shard's newest values are folded into
// st once at the end, filtered by the final assignment. Serial equivalence
// (state roots and receipts against Sequential) is enforced by the
// regression and fuzz suites on every profile, shard count, conflict mode,
// and rebalance schedule.
func (e Sharded) ExecuteChain(st *account.StateDB, blocks []*account.Block) (*ChainResult, *ChainShardStats, error) {
	if e.Workers < 1 {
		return nil, nil, ErrNoWorkers
	}
	m := e.shardMap()
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()

	am, adaptive := m.(core.AdaptiveShardMap)
	epochLen := len(blocks)
	if adaptive && e.RebalanceEvery > 0 && e.RebalanceEvery < epochLen {
		epochLen = e.RebalanceEvery
	}
	if epochLen < 1 {
		epochLen = 1
	}

	c := e.newShardedChain(st, m, len(blocks))
	c.startCheckpoints(e.Checkpoint)
	for lo := 0; lo < len(blocks); lo += epochLen {
		hi := lo + epochLen
		if hi > len(blocks) {
			hi = len(blocks)
		}
		// A slice-backed source never blocks, so the quit channel is moot.
		src := func(rel int, _ <-chan struct{}) (*account.Block, bool) {
			if lo+rel >= hi {
				return nil, false
			}
			return blocks[lo+rel], true
		}
		if _, err := e.runShardedEpoch(c, src, am, nil); err != nil {
			c.closeCheckpoints()
			return nil, nil, err
		}
		if adaptive && e.RebalanceEvery > 0 && hi < len(blocks) {
			e.migrateShards(c, am.Rebalance())
		}
	}
	return e.finishChain(c, start)
}

// newShardedChain builds the chain accumulator with one fresh multi-version
// store per shard. sizeHint pre-sizes the per-block slices (0 when the
// block count is unknown, as in a streamed chain).
func (e Sharded) newShardedChain(st *account.StateDB, m core.ShardMap, sizeHint int) *shardedChain {
	c := &shardedChain{
		st:         st,
		mvs:        make([]*mvstore.Store[StateKey, stateVal], m.Shards()),
		m:          m,
		all:        make([][]*account.Receipt, 0, sizeHint),
		blockStats: make([]BlockStats, 0, sizeHint),
		css:        &ChainShardStats{},
	}
	for sh := range c.mvs {
		c.mvs[sh] = mvstore.NewStoreDelta[StateKey, stateVal](mergeStateVal)
	}
	c.bs = st
	if e.Backend != nil {
		c.bst = &backedState{st: st, be: e.Backend}
		c.bs = c.bst
		c.budget = e.CacheBudget
	}
	return c
}

// finishChain folds every shard's newest values into the caller's state
// database, filtered by the final assignment: migration leaves superseded
// copies behind on a key's previous shards, and only the owning shard's
// chain is guaranteed newest. Under a static map the filter never rejects.
func (e Sharded) finishChain(c *shardedChain, start time.Time) (*ChainResult, *ChainShardStats, error) {
	// The checkpoint worker reads c.st as its immutable base; stop it
	// before mutating.
	c.closeCheckpoints()
	// Base layer first, per-shard caches second: cache chains are strictly
	// newer than the base values their keys evicted to, so the cache fold
	// wins per key.
	if c.bst != nil {
		err := c.bst.Err()
		if err == nil {
			err = foldBackendInto(c.bst.be, c.st)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("exec: sharded chain: state backend: %w", err)
		}
		c.css.ColdReads = c.bst.ColdReads()
	}
	for sh := range c.mvs {
		fold := foldResolvedInto(c.st)
		c.mvs[sh].RangeLatestResolved(func(k StateKey, v stateVal, anchored bool) bool {
			if c.m.Shard(k.Addr) != sh {
				return true
			}
			return fold(k, v, anchored)
		})
	}
	c.st.DiscardJournal()

	res := &ChainResult{Receipts: c.all, Root: c.st.Root(), Blocks: c.blockStats}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        c.seqUnits,
		Conflicted: c.conflicted,
		SeqUnits:   c.seqUnits,
		ParUnits:   c.parUnits,
		GasSeq:     c.gasSeq,
		GasPar:     c.gasParUnits,
		Retries:    c.retries,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	res.Stats.finish()
	return res, c.css, nil
}

// epochSource yields one epoch's blocks to the speculative stage, in order:
// src(rel, quit) returns the epoch's rel-th block, or false when the epoch
// is over (boundary reached, slice exhausted, or stream closed). A source
// backed by a live stream must honour quit — it is closed when the
// committer aborts, and a source still blocked on its producer would
// deadlock the drain otherwise.
type epochSource func(rel int, quit <-chan struct{}) (*account.Block, bool)

// runShardedEpoch pipelines one epoch's blocks: stage 1 speculates per
// shard against pinned fixed-lag snapshots (never below the epoch's entry
// timestamp — everything older was superseded by the boundary migration),
// stage 2 classifies, commits sub-blocks, merges cross-shard and composes,
// strictly in block order, committing each block's writes to the per-shard
// stores. onCommit (optional) fires after each block's writes are durable
// on every shard, with the block's chain-wide index. Returns the number of
// blocks committed; on return the epoch's last commit is c.baseTS.
func (e Sharded) runShardedEpoch(c *shardedChain, src epochSource,
	am core.AdaptiveShardMap, onCommit func(idx int, blk *account.Block, receipts []*account.Receipt)) (int, error) {
	wps := ceilDiv(e.Workers, c.m.Shards())
	depth := e.Depth
	if depth < 1 {
		depth = 1
	}
	bs, mvs, m := c.bs, c.mvs, c.m
	shards := m.Shards()
	baseTS := c.baseTS
	shardOfKey := func(k StateKey) int { return m.Shard(k.Addr) }

	// Stage 1: per-shard speculative execution, one block at a time, each
	// transaction on its own recording overlay over the pinned per-shard
	// snapshots. The channel buffer is the pipeline depth: stage 1 runs at
	// most depth blocks ahead of the cross-shard committer.
	specCh := make(chan shardedSpecBlock, depth)
	done := make(chan struct{})
	// abort stops the speculative stage and waits for it to exit before an
	// error return: otherwise its workers would keep reading st after the
	// caller regains ownership of it. Draining specCh both releases the
	// buffered snapshot pins and blocks until the goroutine's deferred
	// close.
	abort := func() {
		close(done)
		for sb := range specCh {
			sb.release()
		}
	}
	go func() {
		defer close(specCh)
		for rel := 0; ; rel++ {
			blk, ok := src(rel, done)
			if !ok {
				return
			}
			// Deterministic pessimistic snapshot (Pipeline.FixedLag): when
			// stage 1 starts the epoch's rel-th block it has pushed the
			// previous rel blocks through a channel of capacity depth, so
			// stage 2 has received at least rel−depth of them and committed
			// all but its current one: baseTS+rel−depth−1 is guaranteed
			// durable on every shard. Earlier epochs are fully durable
			// (the boundary drained), so the floor is the epoch's entry
			// timestamp. The clock runs on epoch-relative positions, so a
			// streamed source — whose producers have arbitrary timing —
			// yields the same pins, and therefore the same re-execution
			// counts and schedule stats, as the slice-backed batch run.
			ts := baseTS
			if rel > depth {
				ts = baseTS + uint64(rel-depth-1)
			}
			sb := shardedSpecBlock{
				rel:    rel,
				blk:    blk,
				snaps:  make([]*mvstore.Snapshot[StateKey, stateVal], shards),
				specTS: ts,
			}
			view := &mergedState{m: m, views: make([]account.State, shards)}
			for sh := range mvs {
				sb.snaps[sh] = mvs[sh].PinAt(ts)
				view.views[sh] = &snapState{base: bs, snap: sb.snaps[sh]}
			}
			sb.spec = e.specExec(view, blk, m, wps)
			//txlint:clock send-vs-shutdown arbitration; commit order is enforced by stage 2, not by this select
			select {
			case specCh <- sb:
			case <-done:
				sb.release()
				return
			}
		}
	}()

	// Stage 2: classification, per-shard sub-block commit, cross-shard
	// merge and composition — strictly in block order (stage 1 emits in
	// order and the channel preserves it, so appends index correctly).
	var p1Units, p2Units []int
	var p1Gas, p2Gas []uint64

	n := 0
	for sb := range specCh {
		blk := sb.blk
		rel := sb.rel
		commitTS := baseTS + uint64(rel) + 1
		specTS := sb.specTS

		// The committed pre-block view: every shard's store at the previous
		// timestamp, over the immutable pre-chain state.
		base := &mergedState{m: m, views: make([]account.State, shards)}
		for sh := range mvs {
			base.views[sh] = &snapState{base: bs, snap: mvs[sh].At(commitTS - 1)}
		}
		// Cross-block staleness: a phase-1 read is stale iff its key was
		// committed after the pinned snapshot (per-shard ChangedSince, the
		// mvstore validation primitive).
		stale := func(k StateKey) bool {
			return mvs[shardOfKey(k)].ChangedSince(k, specTS)
		}
		if specTS == commitTS-1 {
			// The snapshot already reflects the previous commit; no
			// committed version can postdate it.
			stale = nil
		}
		out, err := e.phase2(base, stale, blk, sb.spec, m, wps)
		sb.release()
		if err != nil {
			abort()
			return n, fmt.Errorf("exec: sharded chain block %d: %w", blk.Height, err)
		}

		// Deferred fees and block reward, exactly as finalizeBlock does,
		// then the block's writes partitioned onto the per-shard stores.
		out.acc.AddBalance(blk.Coinbase, account.Fees(blk.Txs, out.receipts))
		out.acc.AddBalance(blk.Coinbase, account.BlockReward)
		parts := make([]map[StateKey]mvstore.Write[stateVal], shards)
		for sh := range parts {
			parts[sh] = make(map[StateKey]mvstore.Write[stateVal])
		}
		//txlint:ordered distinct keys land in distinct entries of the per-shard partition maps; shardOfKey is a pure function of k
		for k, w := range overlayWrites(out.acc) {
			parts[shardOfKey(k)][k] = w
		}
		for sh := range mvs {
			// Empty partitions still commit: every shard's clock advances
			// in lockstep so fixed-lag pins stay valid on all shards.
			if err := mvs[sh].CommitWrites(commitTS, parts[sh]); err != nil {
				abort()
				return n, fmt.Errorf("exec: sharded chain block %d shard %d: %w", blk.Height, sh, err)
			}
		}
		if am != nil && out.obs != nil {
			am.ObserveBlock(*out.obs)
		}
		// Epoch GC, fixed-lag horizon: a future pin within this epoch
		// requests at least commitTS−depth (the next block's floor), later
		// epochs pin above the boundary migration, and PinAt cannot
		// resurrect collected versions.
		if commitTS > baseTS+uint64(depth)+1 {
			horizon := commitTS - uint64(depth) - 1
			for sh := range mvs {
				mvs[sh].TruncateBelow(horizon)
			}
			// Cold-key eviction rides the GC cadence: fully resolved cold
			// keys beyond each shard's budget are persisted to the shared
			// base layer, then their chains dropped from every shard.
			if c.bst != nil {
				ev, err := c.evictShards(horizon)
				if err != nil {
					abort()
					return n, fmt.Errorf("exec: sharded chain block %d: state backend: %w", blk.Height, err)
				}
				c.css.Evicted += ev
			}
		}
		// A backend read failure latched by a speculative worker poisons
		// every result after it; surface it at the commit point.
		if c.bst != nil {
			if err := c.bst.Err(); err != nil {
				abort()
				return n, fmt.Errorf("exec: sharded chain block %d: state backend: %w", blk.Height, err)
			}
		}

		c.all = append(c.all, out.receipts)
		c.css.add(out.ss)
		x := len(blk.Txs)
		gasBlock := costSum(e.Cost, blk.Txs, out.receipts)
		c.blockStats = append(c.blockStats, BlockStats{
			Txs:        x,
			Reexecuted: out.conflicted,
			Lag:        int(commitTS-1) - int(specTS),
		})
		// Two-stage flow shop: machine 1 is the per-shard speculative
		// spread (overlappable with the previous block's commit), machine 2
		// everything ordered — shard bins, merge waves, repairs. The two
		// sum to the per-block engine's ParUnits, so pipelining can only
		// help.
		p1Units = append(p1Units, out.spreadUnits)
		p2Units = append(p2Units, out.intraUnits-out.spreadUnits+out.mergeUnits+out.repairs)
		p1Gas = append(p1Gas, out.spreadGas)
		p2Gas = append(p2Gas, out.intraGas-out.spreadGas+out.mergeGas+out.repairGas)
		c.seqUnits += x
		c.gasSeq += gasBlock
		c.conflicted += out.conflicted
		c.retries += out.binned + out.mergeReexecs + out.redos + out.repairs
		n++
		if onCommit != nil {
			onCommit(len(c.all)-1, blk, out.receipts)
		}
		if c.ckptCh != nil && len(c.all)%c.ckptEvery == 0 {
			c.enqueueCheckpoint(len(c.all)-1, commitTS)
		}
	}

	c.baseTS = baseTS + uint64(n)
	c.parUnits += flowShopMakespan(p1Units, p2Units)
	c.gasParUnits += flowShopMakespan(p1Gas, p2Gas)
	return n, nil
}

// evictShards moves cold keys from every shard's version cache into the
// shared base layer, down to the per-shard budget. The protocol is
// persist-then-drop: the batch is durable in the backend before any chain
// is removed, so a reader missing a dropped chain always finds the value
// in the base. A key owned by its shard (per the current map) is persisted
// from that shard's chain — the newest by construction — and dropped on
// *every* shard, so a stale copy an epoch migration left behind can never
// outlive the owner's chain and win a newest-wins merge against the base
// value. A cold chain on a non-owning shard is such a stale copy: strictly
// older, never read (dispatch is by the current map), dropped without a
// base write. horizon must be the GC horizon of the triggering commit; the
// eviction cut additionally respects snapshot pins, exactly like GC.
// Returns the number of chains dropped across all shards.
func (c *shardedChain) evictShards(horizon uint64) (int, error) {
	var entries []basestore.Entry
	var owned []StateKey
	dropLocal := make([][]StateKey, len(c.mvs))
	for sh := range c.mvs {
		excess := c.mvs[sh].StoreStats().Keys - c.budget
		if excess <= 0 {
			continue
		}
		for _, ev := range c.mvs[sh].CollectCold(horizon, excess) {
			if c.m.Shard(ev.Key.Addr) != sh {
				dropLocal[sh] = append(dropLocal[sh], ev.Key)
				continue
			}
			v := ev.Val
			if !ev.Anchored {
				// Deltas exist only for balances: fold the accumulated
				// increment over the backed base so the persisted value is
				// absolute and commutativity is preserved.
				v = stateVal{i64: c.bst.GetBalance(ev.Key.Addr) + ev.Val.i64}
			}
			entries = append(entries, basestore.Entry{Key: encodeStateKey(ev.Key), Val: encodeStateVal(ev.Key, v)})
			owned = append(owned, ev.Key)
		}
	}
	if len(entries) > 0 {
		if err := c.bst.be.Apply(entries); err != nil {
			return 0, err
		}
	}
	dropped := 0
	for sh := range c.mvs {
		dropped += c.mvs[sh].DropChains(owned, horizon)
		dropped += c.mvs[sh].DropChains(dropLocal[sh], horizon)
	}
	return dropped, nil
}

// migrateShards applies one rebalance's moves to the per-shard stores: for
// every moved address, each of its keys present on the old shard is
// materialised (deltas folded over the pre-chain state) and committed to
// the new shard as an absolute version at the boundary's migration
// timestamp. Every store commits at that timestamp — empty write sets
// included — so the per-shard clocks stay in lockstep. The schedule charge
// is ⌈moved keys/n⌉: copies are independent and spread across the worker
// pool, but the boundary itself is a barrier.
func (e Sharded) migrateShards(c *shardedChain, moves []core.ShardMove) {
	migTS := c.baseTS + 1
	shards := len(c.mvs)
	parts := make([]map[StateKey]mvstore.Write[stateVal], shards)
	for sh := range parts {
		parts[sh] = make(map[StateKey]mvstore.Write[stateVal])
	}
	movedFrom := make([]map[types.Address]int, shards)
	for _, mv := range moves {
		if mv.From < 0 || mv.From >= shards || mv.To < 0 || mv.To >= shards || mv.From == mv.To {
			continue
		}
		if movedFrom[mv.From] == nil {
			movedFrom[mv.From] = make(map[types.Address]int)
		}
		movedFrom[mv.From][mv.Addr] = mv.To
	}
	migrated := 0
	for sh := range c.mvs {
		if len(movedFrom[sh]) == 0 {
			continue
		}
		c.mvs[sh].RangeLatestResolved(func(k StateKey, v stateVal, anchored bool) bool {
			dest, ok := movedFrom[sh][k.Addr]
			if !ok {
				return true
			}
			if !anchored {
				// Delta-only chain: v is the accumulated balance increment;
				// materialise it over the backed base (the disk base layer
				// holds the anchor when the key's absolute chain was
				// evicted, the immutable pre-chain state otherwise) so the
				// copy supersedes (rather than double-counts) any stale
				// version a previous migration left on the destination.
				v = stateVal{i64: c.bs.GetBalance(k.Addr) + v.i64}
			}
			parts[dest][k] = mvstore.Write[stateVal]{Kind: mvstore.Put, Val: v}
			migrated++
			return true
		})
	}
	for sh := range c.mvs {
		// Migration commits are infallible by construction (the timestamp
		// is fresh and strictly above every block commit of the epoch);
		// a failure would mean the clock discipline itself is broken.
		if err := c.mvs[sh].CommitWrites(migTS, parts[sh]); err != nil {
			panic(fmt.Sprintf("exec: shard migration commit: %v", err))
		}
	}
	c.baseTS = migTS
	c.css.RebalanceEpochs++
	c.css.Migrations += migrated
	if migrated > 0 {
		mu := ceilDiv(migrated, e.Workers)
		c.css.MigrationUnits += mu
		c.parUnits += mu
	}
}
