package exec

import (
	"fmt"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/mvstore"
)

// This file composes the sharded engine with the mvstore pipeline: across a
// chain of blocks, the per-shard speculative phase 1 of block b+1 overlaps
// the deterministic cross-shard commit of block b. Each shard owns a
// persistent multi-version store; block i commits its writes — partitioned
// by core.ShardOf — to every shard's store at timestamp i+1, and phase 1
// speculates against per-shard snapshots pinned at the deterministic
// fixed-lag timestamp max(0, i−Depth−1), the Pipeline.FixedLag discipline:
// re-execution counts and ParUnits depend only on the workload, never on
// scheduler timing.

// ChainShardStats aggregates the sharding counters of a chain executed by
// Sharded.ExecuteChain, per block and in total.
type ChainShardStats struct {
	// Blocks holds each block's ShardStats, in chain order.
	Blocks []ShardStats
	// Cross, CrossAborts, Repairs, MergeWaves, MergeUnits and BatchedStage
	// sum the per-block counters; FallbackBlocks counts blocks whose
	// repair suffix was the whole block.
	Cross, CrossAborts, Repairs  int
	MergeWaves, MergeUnits       int
	BatchedStage, FallbackBlocks int
}

// add folds one block's counters into the aggregate.
func (c *ChainShardStats) add(ss *ShardStats) {
	c.Blocks = append(c.Blocks, *ss)
	c.Cross += ss.Cross
	c.CrossAborts += ss.CrossAborts
	c.Repairs += ss.Repairs
	c.MergeWaves += ss.MergeWaves
	c.MergeUnits += ss.MergeUnits
	c.BatchedStage += ss.BatchedStage
	if ss.Fallback {
		c.FallbackBlocks++
	}
}

// shardedSpecBlock carries one block's phase-1 output from the speculative
// stage to the cross-shard committer.
type shardedSpecBlock struct {
	idx    int
	spec   *shardedSpec
	snaps  []*mvstore.Snapshot[StateKey, stateVal]
	specTS uint64
}

func (sb *shardedSpecBlock) release() {
	for _, sn := range sb.snaps {
		sn.Release()
	}
}

// ExecuteChain executes blocks in order on st (mutated on success), with
// the per-shard speculative phase 1 of later blocks overlapping the
// cross-shard commit of earlier ones — the composition of the sharded
// engine with the mvstore pipeline that converts the merge's sequential
// tail from a per-block barrier into pipelined work.
//
// Timestamps: logical time 0 is st as given; block i commits its write set,
// partitioned across the per-shard stores, at time i+1. Nothing touches st
// until every block has committed, so the speculative stage can read it
// lock-free; each shard's newest values are folded into st once at the end.
// Serial equivalence (state roots and receipts against Sequential) is
// enforced by the regression and fuzz suites on every profile, shard count,
// and conflict mode.
func (e Sharded) ExecuteChain(st *account.StateDB, blocks []*account.Block) (*ChainResult, *ChainShardStats, error) {
	if e.Workers < 1 {
		return nil, nil, ErrNoWorkers
	}
	shards := e.Shards
	if shards < 1 {
		shards = 1
	}
	wps := ceilDiv(e.Workers, shards)
	depth := e.Depth
	if depth < 1 {
		depth = 1
	}
	start := time.Now()

	mvs := make([]*mvstore.Store[StateKey, stateVal], shards)
	for sh := range mvs {
		mvs[sh] = mvstore.NewStoreDelta[StateKey, stateVal](mergeStateVal)
	}
	shardOfKey := func(k StateKey) int { return core.ShardOf(k.Addr, shards) }

	// Stage 1: per-shard speculative execution, one block at a time, each
	// transaction on its own recording overlay over the pinned per-shard
	// snapshots. The channel buffer is the pipeline depth: stage 1 runs at
	// most depth blocks ahead of the cross-shard committer.
	specCh := make(chan shardedSpecBlock, depth)
	done := make(chan struct{})
	// abort stops the speculative stage and waits for it to exit before an
	// error return: otherwise its workers would keep reading st after the
	// caller regains ownership of it. Draining specCh both releases the
	// buffered snapshot pins and blocks until the goroutine's deferred
	// close.
	abort := func() {
		close(done)
		for sb := range specCh {
			sb.release()
		}
	}
	go func() {
		defer close(specCh)
		for i, blk := range blocks {
			// Deterministic pessimistic snapshot (Pipeline.FixedLag): when
			// stage 1 starts block i it has pushed blocks 0..i−1 through a
			// channel of capacity depth, so stage 2 has received at least
			// i−depth of them and committed all but its current one:
			// timestamp i−depth−1 is guaranteed durable on every shard.
			ts := 0
			if i > depth {
				ts = i - depth - 1
			}
			sb := shardedSpecBlock{
				idx:    i,
				snaps:  make([]*mvstore.Snapshot[StateKey, stateVal], shards),
				specTS: uint64(ts),
			}
			view := &mergedState{shards: shards, views: make([]account.State, shards)}
			for sh := range mvs {
				sb.snaps[sh] = mvs[sh].PinAt(uint64(ts))
				view.views[sh] = &snapState{base: st, snap: sb.snaps[sh]}
			}
			sb.spec = e.specExec(view, blk, shards, wps)
			select {
			case specCh <- sb:
			case <-done:
				sb.release()
				return
			}
		}
	}()

	// Stage 2: classification, per-shard sub-block commit, cross-shard
	// merge and composition — strictly in block order.
	all := make([][]*account.Receipt, len(blocks))
	blockStats := make([]BlockStats, len(blocks))
	css := &ChainShardStats{}
	p1Units := make([]int, len(blocks))
	p2Units := make([]int, len(blocks))
	p1Gas := make([]uint64, len(blocks))
	p2Gas := make([]uint64, len(blocks))
	var seqUnits, conflicted, retries int
	var gasSeq uint64

	for sb := range specCh {
		blk := blocks[sb.idx]
		commitTS := uint64(sb.idx) + 1
		specTS := sb.specTS

		// The committed pre-block view: every shard's store at the previous
		// block's timestamp, over the immutable pre-chain state.
		base := &mergedState{shards: shards, views: make([]account.State, shards)}
		for sh := range mvs {
			base.views[sh] = &snapState{base: st, snap: mvs[sh].At(commitTS - 1)}
		}
		// Cross-block staleness: a phase-1 read is stale iff its key was
		// committed after the pinned snapshot (per-shard ChangedSince, the
		// mvstore validation primitive).
		stale := func(k StateKey) bool {
			return mvs[shardOfKey(k)].ChangedSince(k, specTS)
		}
		if specTS == commitTS-1 {
			// The snapshot already reflects the previous block; no
			// committed version can postdate it.
			stale = nil
		}
		out, err := e.phase2(base, stale, blk, sb.spec, shards, wps)
		sb.release()
		if err != nil {
			abort()
			return nil, nil, fmt.Errorf("exec: sharded chain block %d: %w", blk.Height, err)
		}

		// Deferred fees and block reward, exactly as finalizeBlock does,
		// then the block's writes partitioned onto the per-shard stores.
		out.acc.AddBalance(blk.Coinbase, account.Fees(blk.Txs, out.receipts))
		out.acc.AddBalance(blk.Coinbase, account.BlockReward)
		parts := make([]map[StateKey]mvstore.Write[stateVal], shards)
		for sh := range parts {
			parts[sh] = make(map[StateKey]mvstore.Write[stateVal])
		}
		for k, w := range overlayWrites(out.acc) {
			parts[shardOfKey(k)][k] = w
		}
		for sh := range mvs {
			// Empty partitions still commit: every shard's clock advances
			// in lockstep so fixed-lag pins stay valid on all shards.
			if err := mvs[sh].CommitWrites(commitTS, parts[sh]); err != nil {
				abort()
				return nil, nil, fmt.Errorf("exec: sharded chain block %d shard %d: %w", blk.Height, sh, err)
			}
		}
		// Epoch GC, fixed-lag horizon: a future pin requests at most
		// commitTS−depth−1 (block j ≥ idx+1 pins j−depth−1), and PinAt
		// cannot resurrect collected versions.
		if commitTS > uint64(depth)+1 {
			horizon := commitTS - uint64(depth) - 1
			for sh := range mvs {
				mvs[sh].TruncateBelow(horizon)
			}
		}

		all[sb.idx] = out.receipts
		css.add(out.ss)
		x := len(blk.Txs)
		gasBlock := account.GasUsed(out.receipts)
		blockStats[sb.idx] = BlockStats{
			Txs:        x,
			Reexecuted: out.conflicted,
			Lag:        int(commitTS-1) - int(specTS),
		}
		// Two-stage flow shop: machine 1 is the per-shard speculative
		// spread (overlappable with the previous block's commit), machine 2
		// everything ordered — shard bins, merge waves, repairs. The two
		// sum to the per-block engine's ParUnits, so pipelining can only
		// help.
		p1Units[sb.idx] = out.spreadUnits
		p2Units[sb.idx] = out.intraUnits - out.spreadUnits + out.mergeUnits + out.repairs
		p1Gas[sb.idx] = out.spreadGas
		p2Gas[sb.idx] = out.intraGas - out.spreadGas + out.mergeGas + out.repairGas
		seqUnits += x
		gasSeq += gasBlock
		conflicted += out.conflicted
		retries += out.binned + out.mergeReexecs + out.redos + out.repairs
	}

	// Fold every shard's newest values into the caller's state database;
	// shards own disjoint key sets, so the fold order is irrelevant.
	for sh := range mvs {
		mvs[sh].RangeLatestResolved(foldResolvedInto(st))
	}
	st.DiscardJournal()

	res := &ChainResult{Receipts: all, Root: st.Root(), Blocks: blockStats}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        seqUnits,
		Conflicted: conflicted,
		SeqUnits:   seqUnits,
		ParUnits:   flowShopMakespan(p1Units, p2Units),
		GasSeq:     gasSeq,
		GasPar:     flowShopMakespan(p1Gas, p2Gas),
		Retries:    retries,
		Wall:       time.Since(start),
	}
	res.Stats.finish()
	return res, css, nil
}
