package exec

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec/testutil"
)

// TestShardedChainSerialEquivalenceAllProfiles: the pipelined sharded
// engine must reproduce the sequential chain root and receipts on every
// account-model chainsim profile, for shard counts {1, 2, 4, 8}, in both
// key-level and operation-level mode — the acceptance criterion of the
// E10 experiment.
func TestShardedChainSerialEquivalenceAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("long: all profiles x shard counts x modes")
	}
	for _, p := range shardedEquivalenceProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pre, blocks, err := chainsim.GenerateAccountChain(p, 6, 11)
			if err != nil {
				t.Fatal(err)
			}
			seq := testutil.ReplaySequential(t, pre, blocks)
			for _, shards := range []int{1, 2, 4, 8} {
				for _, op := range []bool{false, true} {
					cr, css, err := Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: 2}.
						ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("shards=%d op=%v: %v", shards, op, err)
					}
					if cr.Root != seq.Root() {
						t.Fatalf("shards=%d op=%v: chain root mismatch (stats %+v)", shards, op, css)
					}
					seq.RequireChain(t, p.Name, cr.Root, cr.Receipts)
					if len(css.Blocks) != len(blocks) {
						t.Fatalf("shards=%d op=%v: %d block stats, want %d",
							shards, op, len(css.Blocks), len(blocks))
					}
				}
			}
		})
	}
}

// TestShardedChainFuzzFixtures replays the conflict-heavy fuzz chains —
// nonce chains, shared-counter contracts, blind writers and readers —
// through ExecuteChain at several shard counts and depths.
func TestShardedChainFuzzFixtures(t *testing.T) {
	for _, tc := range []struct {
		seed                          int64
		users, hotN, txn, hotPct, spl uint8
	}{
		{7, 24, 3, 75, 85, 2},
		{42, 9, 2, 60, 70, 1},
		{3, 20, 3, 79, 50, 0},
	} {
		pre, blocks := fuzzChain(tc.seed, tc.users, tc.hotN, tc.txn, tc.hotPct, tc.spl)
		seq := testutil.ReplaySequential(t, pre, blocks)
		for _, shards := range []int{1, 2, 3, 8} {
			for _, depth := range []int{1, 3} {
				for _, op := range []bool{false, true} {
					cr, _, err := Sharded{Workers: 6, Shards: shards, OpLevel: op, Depth: depth}.
						ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("seed=%d shards=%d depth=%d op=%v: %v", tc.seed, shards, depth, op, err)
					}
					seq.RequireChain(t, "chain", cr.Root, cr.Receipts)
				}
			}
		}
	}
}

// TestShardedChainValidation: worker validation and the empty chain.
func TestShardedChainValidation(t *testing.T) {
	st := account.NewStateDB()
	if _, _, err := (Sharded{Workers: 0, Shards: 2}).ExecuteChain(st, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
	cr, css, err := (Sharded{Workers: 2, Shards: 2}).ExecuteChain(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Receipts) != 0 || len(css.Blocks) != 0 {
		t.Fatalf("empty chain produced %d blocks", len(cr.Receipts))
	}
	if cr.Stats.Speedup != 1 {
		t.Fatalf("empty chain speed-up = %v, want 1", cr.Stats.Speedup)
	}
}

// TestShardedChainOverlapBound: the chain makespan must never exceed the
// sum of the per-block engine's schedule lengths (pipelining can only
// help), and must still respect the core budget.
func TestShardedChainOverlapBound(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardUniformProfile(), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []bool{false, true} {
		e := Sharded{Workers: 8, Shards: 4, OpLevel: op, Depth: 2}
		cr, _, err := e.ExecuteChain(pre.Copy(), blocks)
		if err != nil {
			t.Fatal(err)
		}
		var perBlock int
		work := pre.Copy()
		for _, blk := range blocks {
			res, _, err := e.ExecuteSharded(work, blk)
			if err != nil {
				t.Fatal(err)
			}
			perBlock += res.Stats.ParUnits
		}
		if cr.Stats.ParUnits > perBlock {
			t.Fatalf("op=%v: chain makespan %d exceeds per-block sum %d",
				op, cr.Stats.ParUnits, perBlock)
		}
		if cr.Stats.Speedup > float64(e.Workers)+1e-9 {
			t.Fatalf("op=%v: speed-up %.2f exceeds the %d-worker budget",
				op, cr.Stats.Speedup, e.Workers)
		}
	}
}
