// Package exec implements the parallel transaction execution engines whose
// absence the paper names as its main limitation (§VII: "we have not
// designed and implemented an execution engine that can exploit the
// available concurrency"):
//
//   - Sequential: the baseline all public blockchains use today (§II-A).
//   - Speculative: the two-phase scheme of Saraph & Herlihy [17] that the
//     paper's equation (1) models — execute everything in parallel against
//     the pre-block state, then re-execute conflicted transactions
//     sequentially.
//   - Grouped: the TDG/group-concurrency engine the paper's equation (2)
//     models — connected components are scheduled onto workers (LPT) and
//     run in parallel, since components share no addresses.
//   - STMExec: an optimistic engine that commits transactions in block
//     order through per-key version validation, retrying aborted ones (the
//     design direction of Dickerson et al. [6] and of later systems such as
//     Block-STM).
//   - Pipeline: the Octopus-style two-phase engine over the multi-version
//     cache of package mvstore — optimistic execution against pinned
//     snapshots, in-order validation with per-transaction repair, and
//     phase 1 of block b+1 overlapping phase 2 of block b across a chain.
//   - Sharded: state partitioned by a pluggable core.ShardMap (static
//     FNV-1a by default), each shard running its sub-block on its own
//     speculative pipeline, with — unlike the Zilliqa design of §II-B — a
//     deterministic two-phase cross-shard commit for the transactions that
//     span committees: commuting staged groups commit in batches, aborted
//     ones re-execute in parallel waves, and ordering overlaps are
//     repaired per transaction. Sharded.ExecuteChain composes it with
//     per-shard persistent mvstore instances so phase 1 of block b+1
//     overlaps the cross-shard commit of block b; with an adaptive map
//     (internal/heat.AdaptiveMap) it additionally learns per-address
//     conflict heat across blocks, rebalances hot conflict communities at
//     epoch boundaries with deterministic state migration between the
//     per-shard stores, and orders its merge waves by the same heat
//     signal.
//
// Every parallel engine additionally supports operation-level conflict
// refinement (the OpLevel/Refined fields): balance credits and debits are
// recorded as commutative deltas rather than read-modify-writes, so blind
// credits to a hot key (exchange deposits, flash-crowd payments) do not
// conflict with each other — only with reads and absolute writes. See
// docs/ARCHITECTURE.md, "Operation-level conflict refinement".
//
// Every engine proves serial equivalence: its final state root must equal
// the sequential root, and the tests enforce it.
package exec

import (
	"txconcur/internal/account"
	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// keyKind distinguishes the classes of state a transaction can touch.
type keyKind uint8

// Key kinds. Values start at one so the zero StateKey is invalid.
const (
	kindBalance keyKind = iota + 1
	kindNonce
	kindCode
	kindStorage
)

// StateKey identifies one unit of state at conflict-detection granularity:
// an account's balance, nonce or code, or a single storage slot. This is
// the storage-layer granularity of [17], strictly finer than the paper's
// address-level TDG.
type StateKey struct {
	Kind keyKind
	Addr types.Address
	Slot uint64
}

// overlay is a read/write-recording state layered over an immutable base
// (a StateDB, or another overlay for chaining). Phase-1 speculative
// executions run on one overlay per transaction; the overlay records
// exactly which keys were touched.
//
// In operation-level mode (newOverlayOp) balance mutations are recorded as
// commutative *deltas* instead of read-modify-writes: AddBalance/SubBalance
// accumulate an increment without reading the base, so a blind credit to a
// hot account neither depends on nor invalidates concurrent credits — only
// an explicit GetBalance materialises the value and establishes a real
// dependency. In key-level mode (newOverlay) balances behave like every
// other key: an absolute write preceded by a read, the conflict granularity
// of [17].
//
// The base must not be mutated while overlays over it are live (concurrent
// map reads are only safe without writers).
type overlay struct {
	base account.State
	// op selects operation-level (delta) balance semantics.
	op bool

	balances map[types.Address]int64 // absolute balances (key-level mode)
	deltas   map[types.Address]int64 // balance increments (op-level mode)
	nonces   map[types.Address]uint64
	codes    map[types.Address][]byte
	storage  map[account.StorageKey]uint64

	reads  map[StateKey]struct{}
	writes map[StateKey]struct{}

	journal []func(*overlay)
}

var _ account.State = (*overlay)(nil)

func newOverlay(base account.State) *overlay {
	return &overlay{
		base:     base,
		balances: make(map[types.Address]int64),
		deltas:   make(map[types.Address]int64),
		nonces:   make(map[types.Address]uint64),
		codes:    make(map[types.Address][]byte),
		storage:  make(map[account.StorageKey]uint64),
		reads:    make(map[StateKey]struct{}),
		writes:   make(map[StateKey]struct{}),
	}
}

// newOverlayOp returns an overlay in operation-level (delta-write) mode
// when opLevel is true, key-level mode otherwise.
func newOverlayOp(base account.State, opLevel bool) *overlay {
	o := newOverlay(base)
	o.op = opLevel
	return o
}

func (o *overlay) read(k StateKey)  { o.reads[k] = struct{}{} }
func (o *overlay) write(k StateKey) { o.writes[k] = struct{}{} }

// GetBalance implements vm.State.
func (o *overlay) GetBalance(a types.Address) int64 {
	o.read(StateKey{Kind: kindBalance, Addr: a})
	if v, ok := o.balances[a]; ok {
		return v
	}
	return o.base.GetBalance(a) + o.deltas[a]
}

// AddBalance implements vm.State.
func (o *overlay) AddBalance(a types.Address, v int64) {
	if o.op {
		// Operation-level: record a blind commutative increment — no read
		// of the current value, no absolute write.
		prev, had := o.deltas[a]
		o.journal = append(o.journal, func(o *overlay) {
			if had {
				o.deltas[a] = prev
			} else {
				delete(o.deltas, a)
			}
		})
		o.deltas[a] = prev + v
		return
	}
	cur := o.GetBalance(a)
	k := StateKey{Kind: kindBalance, Addr: a}
	o.write(k)
	prev, had := o.balances[a]
	o.journal = append(o.journal, func(o *overlay) {
		if had {
			o.balances[a] = prev
		} else {
			delete(o.balances, a)
		}
	})
	o.balances[a] = cur + v
}

// SubBalance implements vm.State.
func (o *overlay) SubBalance(a types.Address, v int64) { o.AddBalance(a, -v) }

// GetNonce implements account.State.
func (o *overlay) GetNonce(a types.Address) uint64 {
	o.read(StateKey{Kind: kindNonce, Addr: a})
	if v, ok := o.nonces[a]; ok {
		return v
	}
	return o.base.GetNonce(a)
}

// SetNonce implements account.State.
func (o *overlay) SetNonce(a types.Address, n uint64) {
	o.write(StateKey{Kind: kindNonce, Addr: a})
	prev, had := o.nonces[a]
	o.journal = append(o.journal, func(o *overlay) {
		if had {
			o.nonces[a] = prev
		} else {
			delete(o.nonces, a)
		}
	})
	o.nonces[a] = n
}

// GetCode implements vm.State.
func (o *overlay) GetCode(a types.Address) []byte {
	o.read(StateKey{Kind: kindCode, Addr: a})
	if c, ok := o.codes[a]; ok {
		return c
	}
	return o.base.GetCode(a)
}

// SetCode implements account.State.
func (o *overlay) SetCode(a types.Address, code []byte) {
	o.write(StateKey{Kind: kindCode, Addr: a})
	prev, had := o.codes[a]
	o.journal = append(o.journal, func(o *overlay) {
		if had {
			o.codes[a] = prev
		} else {
			delete(o.codes, a)
		}
	})
	c := make([]byte, len(code))
	copy(c, code)
	o.codes[a] = c
}

// GetStorage implements vm.State.
func (o *overlay) GetStorage(a types.Address, slot uint64) uint64 {
	o.read(StateKey{Kind: kindStorage, Addr: a, Slot: slot})
	if v, ok := o.storage[account.StorageKey{Addr: a, Slot: slot}]; ok {
		return v
	}
	return o.base.GetStorage(a, slot)
}

// SetStorage implements vm.State.
func (o *overlay) SetStorage(a types.Address, slot, value uint64) {
	o.write(StateKey{Kind: kindStorage, Addr: a, Slot: slot})
	sk := account.StorageKey{Addr: a, Slot: slot}
	prev, had := o.storage[sk]
	o.journal = append(o.journal, func(o *overlay) {
		if had {
			o.storage[sk] = prev
		} else {
			delete(o.storage, sk)
		}
	})
	o.storage[sk] = value
}

// Snapshot implements vm.State.
func (o *overlay) Snapshot() int { return len(o.journal) }

// RevertToSnapshot implements vm.State. Reverts values only; read/write
// sets keep reverted keys, which is conservative (may flag extra conflicts,
// never misses one).
func (o *overlay) RevertToSnapshot(snap int) {
	for i := len(o.journal) - 1; i >= snap; i-- {
		o.journal[i](o)
	}
	o.journal = o.journal[:snap]
}

// applyTo writes the overlay's accumulated values into dst. Callers
// guarantee disjointness (or intended ordering) between overlays; delta
// entries commute, so their application order never matters.
func (o *overlay) applyTo(dst account.State) {
	//txlint:ordered each iteration overwrites only dst's entry for address a; distinct addresses, distinct entries
	for a, v := range o.balances {
		dst.AddBalance(a, v-dst.GetBalance(a))
	}
	//txlint:ordered per-address balance deltas are additive and commute
	for a, d := range o.deltas {
		dst.AddBalance(a, d)
	}
	//txlint:ordered distinct addresses, distinct nonce entries
	for a, n := range o.nonces {
		dst.SetNonce(a, n)
	}
	//txlint:ordered distinct addresses, distinct code entries
	for a, c := range o.codes {
		dst.SetCode(a, c)
	}
	//txlint:ordered distinct storage keys, distinct entries
	for sk, v := range o.storage {
		dst.SetStorage(sk.Addr, sk.Slot, v)
	}
}

// deltaKey builds the state key of a balance delta entry.
func deltaKey(a types.Address) StateKey { return StateKey{Kind: kindBalance, Addr: a} }

// reader returns a read-only, non-recording view of the overlay, safe for
// *concurrent* readers as long as nothing mutates the overlay (or any state
// below it) while readers are live — Go map reads without writers are safe.
// The cross-shard merge's parallel re-execution waves read the committed
// prefix through readers: a plain overlay would record every read into its
// shared read-set maps, racing with its siblings. The base chain must itself
// be safe for concurrent reads (StateDB, snapState, mergedState, or another
// reader — not a bare overlay, whose getters record).
func (o *overlay) reader() account.State { return &overlayReader{o: o} }

// overlayReader is the non-recording view behind overlay.reader.
type overlayReader struct{ o *overlay }

var _ account.State = (*overlayReader)(nil)

func (r *overlayReader) GetBalance(a types.Address) int64 {
	if v, ok := r.o.balances[a]; ok {
		return v
	}
	return r.o.base.GetBalance(a) + r.o.deltas[a]
}

func (r *overlayReader) GetNonce(a types.Address) uint64 {
	if v, ok := r.o.nonces[a]; ok {
		return v
	}
	return r.o.base.GetNonce(a)
}

func (r *overlayReader) GetCode(a types.Address) []byte {
	if c, ok := r.o.codes[a]; ok {
		return c
	}
	return r.o.base.GetCode(a)
}

func (r *overlayReader) GetStorage(a types.Address, slot uint64) uint64 {
	if v, ok := r.o.storage[account.StorageKey{Addr: a, Slot: slot}]; ok {
		return v
	}
	return r.o.base.GetStorage(a, slot)
}

func (r *overlayReader) Snapshot() int                   { return 0 }
func (r *overlayReader) RevertToSnapshot(int)            {}
func (r *overlayReader) AddBalance(types.Address, int64) { panic("exec: write to overlay reader") }
func (r *overlayReader) SubBalance(types.Address, int64) { panic("exec: write to overlay reader") }
func (r *overlayReader) SetNonce(types.Address, uint64)  { panic("exec: write to overlay reader") }
func (r *overlayReader) SetCode(types.Address, []byte)   { panic("exec: write to overlay reader") }
func (r *overlayReader) SetStorage(types.Address, uint64, uint64) {
	panic("exec: write to overlay reader")
}

// accessCounts aggregates, per state key, how many phase-1 transactions
// read, wrote, and delta-wrote it.
type accessCounts struct {
	writers map[StateKey]int
	readers map[StateKey]int
	deltas  map[StateKey]int
}

func countAccesses(overlays []*overlay) accessCounts {
	ac := accessCounts{
		writers: make(map[StateKey]int),
		readers: make(map[StateKey]int),
		deltas:  make(map[StateKey]int),
	}
	for _, o := range overlays {
		if o == nil {
			continue
		}
		for k := range o.writes {
			ac.writers[k]++
		}
		for k := range o.reads {
			ac.readers[k]++
		}
		for a := range o.deltas {
			ac.deltas[deltaKey(a)]++
		}
	}
	return ac
}

// conflicted reports whether this overlay's transaction conflicts with any
// other transaction, symmetrically (as in [17], where *all* transactions
// involved in a collision go to the sequential bin): another writer of a
// key we wrote, another reader of a key we wrote, or any writer of a key we
// read. Delta writes are the exception that operation-level concurrency
// exploits: two delta writes to the same key commute and do not conflict;
// a delta write conflicts only with another transaction's read or absolute
// write of that key.
func (o *overlay) conflicted(ac accessCounts) bool {
	for k := range o.writes {
		if ac.writers[k] >= 2 {
			return true
		}
		selfReads := 0
		if _, ours := o.reads[k]; ours {
			selfReads = 1
		}
		if ac.readers[k] > selfReads {
			return true
		}
		// An absolute write vs anyone's delta: the delta's base moved.
		// (A single overlay never both writes and delta-writes one key, so
		// any delta counted here is another transaction's.)
		if ac.deltas[k] >= 1 {
			return true
		}
	}
	for a := range o.deltas {
		k := deltaKey(a)
		if ac.writers[k] >= 1 {
			return true
		}
		selfReads := 0
		if _, ours := o.reads[k]; ours {
			selfReads = 1
		}
		if ac.readers[k] > selfReads {
			return true
		}
	}
	for k := range o.reads {
		if _, ours := o.writes[k]; ours {
			continue // covered by the writer rules above
		}
		if ac.writers[k] >= 1 {
			return true
		}
		selfDeltas := 0
		if k.Kind == kindBalance {
			if _, ours := o.deltas[k.Addr]; ours {
				selfDeltas = 1
			}
		}
		if ac.deltas[k] > selfDeltas {
			return true
		}
	}
	return false
}

// interface check: overlays satisfy the VM contract too.
var _ vm.State = (*overlay)(nil)
