package exec

import (
	"fmt"
	"testing"

	"txconcur/internal/chainsim"
)

// checkShardStats asserts the ShardStats bookkeeping invariants for one
// block run:
//
//   - Intra + Cross equals the block's transaction count, and the per-shard
//     phase-1 counts partition it.
//   - CrossAborts never exceeds Cross, and batched staged commits never
//     overlap the aborted set.
//   - MergeUnits is bounded by the sequential merge's cost (one unit per
//     abort for the wave run plus at most one redo each) — the parallel
//     merge may only compress the tail, never inflate it.
//   - Fallback is set exactly when the per-transaction repair was
//     exhausted: the repair suffix covered every transaction.
func checkShardStats(t *testing.T, label string, txs int, ss *ShardStats, st *Stats) {
	t.Helper()
	if ss.Intra+ss.Cross != txs {
		t.Fatalf("%s: intra %d + cross %d != %d txs", label, ss.Intra, ss.Cross, txs)
	}
	sum := 0
	for _, n := range ss.PerShardTxs {
		sum += n
	}
	if sum != txs {
		t.Fatalf("%s: per-shard counts sum to %d, want %d", label, sum, txs)
	}
	if len(ss.PerShardTxs) != ss.Shards {
		t.Fatalf("%s: %d per-shard entries for %d shards", label, len(ss.PerShardTxs), ss.Shards)
	}
	if ss.CrossAborts > ss.Cross {
		t.Fatalf("%s: CrossAborts %d > Cross %d", label, ss.CrossAborts, ss.Cross)
	}
	if ss.BatchedStage > ss.Cross-ss.CrossAborts {
		t.Fatalf("%s: BatchedStage %d overlaps aborts (cross %d, aborts %d)",
			label, ss.BatchedStage, ss.Cross, ss.CrossAborts)
	}
	if ss.MergeUnits > 2*ss.CrossAborts {
		t.Fatalf("%s: MergeUnits %d exceeds sequential bound %d", label, ss.MergeUnits, 2*ss.CrossAborts)
	}
	if ss.Repairs > txs {
		t.Fatalf("%s: Repairs %d > %d txs", label, ss.Repairs, txs)
	}
	if ss.Fallback != (txs > 0 && ss.Repairs == txs) {
		t.Fatalf("%s: Fallback %v inconsistent with Repairs %d of %d txs",
			label, ss.Fallback, ss.Repairs, txs)
	}
	if st != nil {
		// Retries counts re-execution events, Conflicted distinct
		// serialised transactions; every abort and repair is an event.
		if st.Conflicted > st.Txs {
			t.Fatalf("%s: Conflicted %d > Txs %d", label, st.Conflicted, st.Txs)
		}
		if st.Retries < st.Conflicted {
			t.Fatalf("%s: Retries %d < Conflicted %d", label, st.Retries, st.Conflicted)
		}
		if st.Retries < ss.CrossAborts {
			t.Fatalf("%s: Retries %d < CrossAborts %d", label, st.Retries, ss.CrossAborts)
		}
	}
}

// TestShardStatsInvariants runs every sharded profile at shard counts
// {1, 2, 4, 8} in both conflict modes, through both the per-block engine
// and the pipelined chain, checking the counter invariants on every block.
func TestShardStatsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long: profiles x shard counts x modes x engines")
	}
	for _, p := range chainsim.ShardProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pre, blocks, err := chainsim.GenerateAccountChain(p, 6, 17)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				for _, op := range []bool{false, true} {
					label := fmt.Sprintf("%s s=%d op=%v", p.Name, shards, op)
					work := pre.Copy()
					for bi, blk := range blocks {
						res, ss, err := Sharded{Workers: 8, Shards: shards, OpLevel: op}.
							ExecuteSharded(work, blk)
						if err != nil {
							t.Fatalf("%s block %d: %v", label, bi, err)
						}
						checkShardStats(t, fmt.Sprintf("%s block %d", label, bi), len(blk.Txs), ss, &res.Stats)
					}
					cr, css, err := Sharded{Workers: 8, Shards: shards, OpLevel: op, Depth: 2}.
						ExecuteChain(pre.Copy(), blocks)
					if err != nil {
						t.Fatalf("%s chain: %v", label, err)
					}
					for bi := range css.Blocks {
						checkShardStats(t, fmt.Sprintf("%s chain block %d", label, bi),
							len(blocks[bi].Txs), &css.Blocks[bi], nil)
					}
					if cr.Stats.Retries < cr.Stats.Conflicted {
						t.Fatalf("%s chain: Retries %d < Conflicted %d",
							label, cr.Stats.Retries, cr.Stats.Conflicted)
					}
				}
			}
		})
	}
}

// TestShardedSequentialMergeEquivalence: the SequentialMerge knob must not
// change any result — only the schedule. It also bounds the parallel
// merge from above: waves can only compress the merge's unit cost.
func TestShardedSequentialMergeEquivalence(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardCrossHeavyProfile(), 5, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []bool{false, true} {
		work := pre.Copy()
		for bi, blk := range blocks {
			par, pss, err := Sharded{Workers: 8, Shards: 4, OpLevel: op}.ExecuteSharded(work.Copy(), blk)
			if err != nil {
				t.Fatal(err)
			}
			seq, sss, err := Sharded{Workers: 8, Shards: 4, OpLevel: op, SequentialMerge: true}.
				ExecuteSharded(work.Copy(), blk)
			if err != nil {
				t.Fatal(err)
			}
			if par.Root != seq.Root {
				t.Fatalf("op=%v block %d: SequentialMerge changed the root", op, bi)
			}
			if pss.Cross != sss.Cross || pss.CrossAborts != sss.CrossAborts {
				t.Fatalf("op=%v block %d: classification drifted: %+v vs %+v", op, bi, pss, sss)
			}
			if pss.MergeUnits > sss.MergeUnits {
				t.Fatalf("op=%v block %d: parallel merge units %d exceed sequential %d",
					op, bi, pss.MergeUnits, sss.MergeUnits)
			}
			if _, _, err := (Sharded{Workers: 8, Shards: 4, OpLevel: op}).ExecuteSharded(work, blk); err != nil {
				t.Fatal(err)
			}
		}
	}
}
