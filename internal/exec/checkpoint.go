package exec

import (
	"txconcur/internal/account"
	"txconcur/internal/mvstore"
)

// CheckpointSink receives asynchronous snapshots of committed chain state
// from the sharded chain drivers. wal.Checkpointer is the production
// implementation; the seam keeps exec free of any dependency on the
// durability layer.
//
// Checkpoint is called from a dedicated worker goroutine — never the
// commit path — with the chain-wide index of the last block included and
// a private, fully materialised StateDB (the committed state after that
// block, journal empty). The sink owns st.
type CheckpointSink interface {
	// Interval is the checkpoint cadence in blocks; <= 0 disables
	// checkpointing entirely.
	Interval() int
	Checkpoint(idx int, st *account.StateDB)
}

// ckptReq asks the checkpoint worker for a snapshot of the state as of
// the commit timestamp ts (block index idx). The committer pins every
// shard's store at ts before enqueueing so epoch GC cannot reclaim the
// versions the worker will read; the worker releases the pins as soon as
// it has materialised.
type ckptReq struct {
	idx  int
	ts   uint64
	pins []*mvstore.Snapshot[StateKey, stateVal]
}

// startCheckpoints launches the checkpoint worker if the engine has a
// sink with a positive interval. Called once per chain, before any block
// commits.
func (c *shardedChain) startCheckpoints(sink CheckpointSink) {
	if sink == nil || sink.Interval() <= 0 {
		return
	}
	c.ckptEvery = sink.Interval()
	c.ckptCh = make(chan ckptReq, 2)
	c.ckptWG.Add(1)
	go func() {
		defer c.ckptWG.Done()
		for req := range c.ckptCh {
			st := c.materializeAt(req.ts)
			for _, p := range req.pins {
				p.Release()
			}
			sink.Checkpoint(req.idx, st)
		}
	}()
}

// enqueueCheckpoint hands the current commit point to the worker without
// ever blocking the commit path: if the worker is still busy (two
// requests deep), the checkpoint is skipped — a longer replay after a
// crash, never commit latency.
func (c *shardedChain) enqueueCheckpoint(idx int, ts uint64) {
	req := ckptReq{idx: idx, ts: ts, pins: make([]*mvstore.Snapshot[StateKey, stateVal], len(c.mvs))}
	for sh := range c.mvs {
		req.pins[sh] = c.mvs[sh].PinAt(ts)
	}
	select {
	case c.ckptCh <- req:
		c.css.Checkpoints++
	default:
		for _, p := range req.pins {
			p.Release()
		}
		c.css.CheckpointsSkipped++
	}
}

// closeCheckpoints drains and stops the worker. Idempotent; called on
// every chain exit path (and before finishChain folds into c.st, which
// the worker reads as its immutable base).
func (c *shardedChain) closeCheckpoints() {
	if c.ckptCh == nil {
		return
	}
	c.ckptOnce.Do(func() {
		close(c.ckptCh)
		c.ckptWG.Wait()
	})
}

// materializeAt builds a standalone StateDB equal to the committed state
// at timestamp ts: every shard's view at ts is resolved and the newest
// version of each key wins across shards (migration leaves superseded
// copies behind on a key's previous shards; a key commits on exactly one
// shard per timestamp, so the newest visible version is unique). Runs on
// the checkpoint worker concurrently with commits at timestamps above ts,
// which is safe: version nodes are immutable, RangeResolvedAt skips
// anything newer than ts, and the caller's pins keep GC at bay.
func (c *shardedChain) materializeAt(ts uint64) *account.StateDB {
	type cand struct {
		val      stateVal
		anchored bool
		newest   uint64
	}
	best := make(map[StateKey]cand)
	for _, mv := range c.mvs {
		mv.RangeResolvedAt(ts, func(k StateKey, v stateVal, anchored bool, newest uint64) bool {
			if cur, ok := best[k]; !ok || newest > cur.newest {
				best[k] = cand{val: v, anchored: anchored, newest: newest}
			}
			return true
		})
	}
	st := c.st.Copy()
	// Base layer between the pre-chain copy and the cache fold. Ordering
	// vs a concurrent eviction: eviction persists before it drops, and the
	// backend capture here runs *after* the cache scan above — so a chain
	// the scan missed was dropped before the scan, hence persisted before
	// the capture, and the base read below sees it. A key present in both
	// reads identically (eviction requires the chain fully resolved at or
	// below every pin, including ours at ts) or strictly newer from the
	// cache, and the cache fold runs last, so it wins either way. An
	// eviction-cut chain always has head ≤ our pinned ts, so the base
	// value never postdates the checkpoint.
	if c.bst != nil {
		// A backend failure poisons the snapshot; the committer latches
		// and aborts the chain, so a best-effort empty base here is moot —
		// record the error and hand the sink the pre-chain copy.
		if err := foldBackendInto(c.bst.be, st); err != nil {
			c.bst.fail(err)
		}
	}
	fold := foldResolvedInto(st)
	//txlint:ordered distinct StateKeys mutate distinct state entries; fold order across keys cannot matter
	for k, b := range best {
		fold(k, b.val, b.anchored)
	}
	st.DiscardJournal()
	return st
}
