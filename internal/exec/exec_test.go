package exec

import (
	"errors"
	"sync/atomic"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/types"
	"txconcur/internal/vm"
)

func addr(i uint64) types.Address { return types.AddressFromUint64("exectest", i) }

// fundedState returns a state with users 0..n-1 funded.
func fundedState(n int) *account.StateDB {
	st := account.NewStateDB()
	for i := 0; i < n; i++ {
		st.AddBalance(addr(uint64(i)), 1_000_000_000)
	}
	st.DiscardJournal()
	return st
}

func transfer(from, to, nonce uint64, value int64) *account.Transaction {
	return &account.Transaction{
		From: addr(from), To: addr(to), Value: value,
		Nonce: nonce, GasLimit: account.GasTx, GasPrice: 1,
	}
}

func testBlock(txs ...*account.Transaction) *account.Block {
	return &account.Block{Height: 1, Time: 99, Coinbase: addr(999), Txs: txs}
}

// runAllEngines executes blk from identical copies of st with every engine
// and asserts root and receipt agreement with the sequential baseline.
func runAllEngines(t *testing.T, st *account.StateDB, blk *account.Block, workers int) map[string]*Result {
	t.Helper()
	seqSt := st.Copy()
	seq, err := Sequential(seqSt, blk)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	results := map[string]*Result{"sequential": seq}

	engines := map[string]func(*account.StateDB, *account.Block) (*Result, error){
		"speculative": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Speculative{Workers: workers}.Execute(s, b)
		},
		"grouped": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Grouped{Workers: workers}.Execute(s, b)
		},
		"grouped-oracle": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Grouped{Workers: workers, Receipts: seq.Receipts}.Execute(s, b)
		},
		"grouped-approx": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return Grouped{Workers: workers, Approx: true, Receipts: seq.Receipts}.Execute(s, b)
		},
		"stm": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return STMExec{Workers: workers}.Execute(s, b)
		},
		"perfect": func(s *account.StateDB, b *account.Block) (*Result, error) {
			return PerfectSpeculative{Workers: workers, Receipts: seq.Receipts}.Execute(s, b)
		},
	}
	for name, run := range engines {
		cp := st.Copy()
		res, err := run(cp, blk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Root != seq.Root {
			t.Fatalf("%s: root mismatch with sequential", name)
		}
		if len(res.Receipts) != len(seq.Receipts) {
			t.Fatalf("%s: %d receipts, want %d", name, len(res.Receipts), len(seq.Receipts))
		}
		for i := range res.Receipts {
			a, b := res.Receipts[i], seq.Receipts[i]
			if a.Status != b.Status || a.GasUsed != b.GasUsed || a.TxHash != b.TxHash {
				t.Fatalf("%s: receipt %d differs: %+v vs %+v", name, i, a, b)
			}
		}
		results[name] = res
	}
	return results
}

func TestEnginesAgreeIndependentTxs(t *testing.T) {
	st := fundedState(20)
	blk := testBlock(
		transfer(0, 10, 0, 100),
		transfer(1, 11, 0, 100),
		transfer(2, 12, 0, 100),
		transfer(3, 13, 0, 100),
		transfer(4, 14, 0, 100),
		transfer(5, 15, 0, 100),
		transfer(6, 16, 0, 100),
		transfer(7, 17, 0, 100),
	)
	results := runAllEngines(t, st, blk, 4)

	spec := results["speculative"].Stats
	if spec.Conflicted != 0 {
		t.Fatalf("independent txs binned: %d", spec.Conflicted)
	}
	// T' = ceil(8/4) = 2 units; speed-up 4.
	if spec.ParUnits != 2 || spec.Speedup != 4 {
		t.Fatalf("speculative stats = %+v", spec)
	}
	grp := results["grouped-oracle"].Stats
	if grp.Conflicted != 0 || grp.Retries != 0 {
		t.Fatalf("grouped stats = %+v", grp)
	}
	if grp.ParUnits != 2 {
		t.Fatalf("grouped makespan = %d, want 2", grp.ParUnits)
	}
	stm := results["stm"].Stats
	if stm.Retries != 0 {
		t.Fatalf("stm retries = %d, want 0", stm.Retries)
	}
	if stm.ParUnits != 2 {
		t.Fatalf("stm units = %d, want 2", stm.ParUnits)
	}
}

func TestEnginesAgreeSameSenderChain(t *testing.T) {
	// Three txs from one sender: nonce-dependent, must serialise.
	st := fundedState(10)
	blk := testBlock(
		transfer(0, 5, 0, 100),
		transfer(0, 6, 1, 100),
		transfer(0, 7, 2, 100),
		transfer(1, 8, 0, 100),
	)
	results := runAllEngines(t, st, blk, 4)
	spec := results["speculative"].Stats
	if spec.Conflicted != 3 {
		t.Fatalf("speculative binned %d, want 3 (the sender chain)", spec.Conflicted)
	}
	stm := results["stm"].Stats
	if stm.Retries < 2 {
		t.Fatalf("stm retries = %d, want >= 2 (nonce chain)", stm.Retries)
	}
}

func TestEnginesAgreeSharedReceiver(t *testing.T) {
	// Exchange-deposit pattern: all txs write one receiver balance.
	st := fundedState(10)
	blk := testBlock(
		transfer(0, 9, 0, 100),
		transfer(1, 9, 0, 100),
		transfer(2, 9, 0, 100),
		transfer(3, 9, 0, 100),
	)
	results := runAllEngines(t, st, blk, 4)
	spec := results["speculative"].Stats
	if spec.Conflicted != 4 {
		t.Fatalf("speculative binned %d, want all 4", spec.Conflicted)
	}
	// T' = ceil(4/4) + 4 = 5 > 4: slower than sequential, the R < 1 regime
	// of the paper's worked example (§V-A).
	if spec.Speedup >= 1 {
		t.Fatalf("speed-up %v, want < 1", spec.Speedup)
	}
	// The grouped engine also serialises them (one component), makespan 4.
	grp := results["grouped-oracle"].Stats
	if grp.ParUnits != 4 {
		t.Fatalf("grouped units = %d, want 4", grp.ParUnits)
	}
	if grp.Speedup != 1 {
		t.Fatalf("grouped speed-up = %v, want 1 (LCC = x)", grp.Speedup)
	}
}

func TestEnginesAgreeContractWorkload(t *testing.T) {
	// Two independent token contracts, plus a router calling one of them:
	// the TDG groups {t0-calls, router-calls} and {t1-calls} separately.
	st := fundedState(20)
	tokenCode := vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().Op(vm.OpCaller, vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	})
	t0, t1 := addr(100), addr(101)
	st.SetCode(t0, tokenCode)
	st.SetCode(t1, tokenCode)
	routerCode := vm.EncodeContract(vm.Contract{
		Code:      vm.NewAsm().Call(0, 0, 7).Op(vm.OpPop, vm.OpStop).Bytes(),
		AddrTable: []types.Address{t0},
	})
	router := addr(102)
	st.SetCode(router, routerCode)
	st.DiscardJournal()

	call := func(from uint64, to types.Address, nonce uint64) *account.Transaction {
		return &account.Transaction{
			From: addr(from), To: to, Nonce: nonce,
			GasLimit: 1_000_000, GasPrice: 1, Arg: from,
		}
	}
	blk := testBlock(
		call(0, t0, 0),
		call(1, t1, 0),
		call(2, router, 0), // internally touches t0
		call(3, t1, 0),
		transfer(4, 5, 0, 10),
	)
	results := runAllEngines(t, st, blk, 4)

	// Full TDG: {t0: tx0, tx2}, {t1: tx1, tx3}, {tx4} -> LCC 2.
	grp := results["grouped-oracle"].Stats
	if grp.Conflicted != 4 {
		t.Fatalf("grouped conflicted = %d, want 4", grp.Conflicted)
	}
	// Approx TDG misses tx2->t0 (internal): tx2 looks independent, and the
	// hidden conflict (storage write to t0 via router vs tx0's direct
	// write... different slots, caller-keyed!) may or may not overlap; the
	// engine must stay serially equivalent either way (checked by
	// runAllEngines).
	if results["grouped-approx"].Root != results["sequential"].Root {
		t.Fatal("approx root mismatch")
	}
}

// gateCode builds the branch-divergent contract used to pin down phase-2
// ordering: Arg != 0 blindly writes storage[0] = Arg; Arg == 0 records
// storage[caller] = storage[0] — a pure reader of the shared slot.
func gateCode() []byte {
	asm := vm.NewAsm().
		Op(vm.OpArg).PushLabel("write").Op(vm.OpJumpI).
		// Reader path: storage[caller] = storage[0].
		Op(vm.OpCaller).Push(0).Op(vm.OpSload, vm.OpSstore, vm.OpStop).
		Label("write").
		// Blind-writer path: storage[0] = Arg, no read.
		Push(0).Op(vm.OpArg, vm.OpSstore, vm.OpStop)
	return vm.EncodeContract(vm.Contract{Code: asm.Bytes()})
}

// TestSpeculativeBinnedReexecSeesOnlyPrefix is a regression test for a
// serial-equivalence bug: phase 2 used to stage ALL winners into the
// accumulator before re-executing the bin, so a binned transaction whose
// re-execution read a key it never touched in phase 1 (here: it never ran —
// envelope failure) could observe a later-ordered winner's write. The block
// below made the binned reader record the winner's future value into its
// own storage slot, silently diverging from the sequential root; staging in
// block order fixes it.
func TestSpeculativeBinnedReexecSeesOnlyPrefix(t *testing.T) {
	st := fundedState(10)
	gate := addr(300)
	st.SetCode(gate, gateCode())
	st.DiscardJournal()

	blk := testBlock(
		// tx0 makes tx1 fail its phase-1 envelope (nonce gap) and shares
		// its sender, so both are binned.
		transfer(0, 9, 0, 100),
		// tx1: the reader — sequentially it must see storage[0] == 0.
		&account.Transaction{From: addr(0), To: gate, Nonce: 1, Arg: 0,
			GasLimit: 1_000_000, GasPrice: 1},
		// tx2: the blind writer — an unconflicted winner under the
		// storage-level rule, ordered AFTER the reader.
		&account.Transaction{From: addr(1), To: gate, Nonce: 0, Arg: 42,
			GasLimit: 1_000_000, GasPrice: 1},
	)
	results := runAllEngines(t, st, blk, 4)
	// Sanity: the hazard shape is as constructed — reader and its
	// prerequisite binned, writer a winner.
	if got := results["speculative"].Stats.Conflicted; got != 2 {
		t.Fatalf("binned %d, want 2 (tx0, tx1)", got)
	}
	// And op-level mode shares the ordered-staging path.
	seq := results["sequential"]
	op, err := Speculative{Workers: 4, OpLevel: true}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if op.Root != seq.Root {
		t.Fatal("op-level speculative diverged on binned-reader block")
	}
}

func TestGroupedApproxHiddenConflictFallsBack(t *testing.T) {
	// Two routers that internally write the SAME storage slot of the same
	// token: the approximate TDG schedules them in different groups, the
	// write overlap is detected, and the engine falls back sequentially.
	st := fundedState(10)
	token := addr(100)
	st.SetCode(token, vm.EncodeContract(vm.Contract{
		// storage[0] = arg: same slot for every caller.
		Code: vm.NewAsm().Push(0).Op(vm.OpArg, vm.OpSstore, vm.OpStop).Bytes(),
	}))
	mkRouter := func(a types.Address) []byte {
		return vm.EncodeContract(vm.Contract{
			Code:      vm.NewAsm().Call(0, 0, 42).Op(vm.OpPop, vm.OpStop).Bytes(),
			AddrTable: []types.Address{token},
		})
	}
	r1, r2 := addr(101), addr(102)
	st.SetCode(r1, mkRouter(r1))
	st.SetCode(r2, mkRouter(r2))
	st.DiscardJournal()

	blk := testBlock(
		&account.Transaction{From: addr(0), To: r1, GasLimit: 1_000_000, GasPrice: 1},
		&account.Transaction{From: addr(1), To: r2, GasLimit: 1_000_000, GasPrice: 1},
	)

	seqSt := st.Copy()
	seq, err := Sequential(seqSt, blk)
	if err != nil {
		t.Fatal(err)
	}
	cp := st.Copy()
	res, err := Grouped{Workers: 2, Approx: true, Receipts: seq.Receipts}.Execute(cp, blk)
	if err != nil {
		t.Fatalf("approx: %v", err)
	}
	if res.Root != seq.Root {
		t.Fatal("approx fallback root mismatch")
	}
	if res.Stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (full sequential fallback)", res.Stats.Retries)
	}
	// Oracle mode groups them together; no overlap possible.
	cp2 := st.Copy()
	res2, err := Grouped{Workers: 2, Receipts: seq.Receipts}.Execute(cp2, blk)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Retries != 0 {
		t.Fatalf("oracle retries = %d", res2.Stats.Retries)
	}
}

func TestEnginesOnGeneratedHistory(t *testing.T) {
	// Integration: every engine reproduces the sequential root on real
	// generated Ethereum-like blocks (contracts, internal txs, creations).
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Track the pre-block state by copying before each append.
	for {
		pre := g.Chain().State().Copy()
		blk, _, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		runAllEngines(t, pre, blk, 8)
	}
}

func TestEmptyBlock(t *testing.T) {
	st := fundedState(1)
	blk := testBlock()
	results := runAllEngines(t, st, blk, 4)
	for name, res := range results {
		if res.Stats.Speedup != 1 {
			t.Fatalf("%s: empty block speed-up = %v", name, res.Stats.Speedup)
		}
	}
}

func TestWorkerValidation(t *testing.T) {
	st := fundedState(2)
	blk := testBlock(transfer(0, 1, 0, 1))
	if _, err := (Speculative{}).Execute(st.Copy(), blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("speculative no workers: %v", err)
	}
	if _, err := (Grouped{}).Execute(st.Copy(), blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("grouped no workers: %v", err)
	}
	if _, err := (STMExec{}).Execute(st.Copy(), blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("stm no workers: %v", err)
	}
}

func TestInvalidBlockRejected(t *testing.T) {
	st := fundedState(2)
	bad := testBlock(transfer(0, 1, 7, 1)) // wrong nonce
	if _, err := Sequential(st.Copy(), bad); err == nil {
		t.Fatal("sequential accepted bad nonce")
	}
	if _, err := (Speculative{Workers: 2}).Execute(st.Copy(), bad); err == nil {
		t.Fatal("speculative accepted bad nonce")
	}
	if _, err := (STMExec{Workers: 2}).Execute(st.Copy(), bad); err == nil {
		t.Fatal("stm accepted bad nonce")
	}
	if _, err := (Grouped{Workers: 2}).Execute(st.Copy(), bad); err == nil {
		t.Fatal("grouped accepted bad nonce")
	}
}

func TestSpeculativeMatchesEquationOne(t *testing.T) {
	// A block shaped like the paper's Figure 1b worked example: 16 txs, 14
	// conflicted. T' with 16 workers = 1 + 14 = 15, speed-up 16/15.
	txs := make([]*account.Transaction, 0, 16)
	// 9 deposits to one exchange address.
	for i := uint64(0); i < 9; i++ {
		txs = append(txs, transfer(i, 30, 0, 10))
	}
	// 3 calls to one contract... modelled as transfers to one address.
	for i := uint64(9); i < 12; i++ {
		txs = append(txs, transfer(i, 31, 0, 10))
	}
	// 2 txs from one sender.
	txs = append(txs, transfer(12, 20, 0, 10), transfer(12, 21, 1, 10))
	// 2 independent.
	txs = append(txs, transfer(13, 22, 0, 10), transfer(14, 23, 0, 10))

	res, err := Speculative{Workers: 16}.Execute(fundedStateFor(t, txs), testBlock(txs...))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Conflicted != 14 {
		t.Fatalf("binned = %d, want 14", res.Stats.Conflicted)
	}
	if res.Stats.ParUnits != 15 {
		t.Fatalf("T' = %d, want 15", res.Stats.ParUnits)
	}
}

// fundedStateFor funds every sender in txs.
func fundedStateFor(t *testing.T, txs []*account.Transaction) *account.StateDB {
	t.Helper()
	st := account.NewStateDB()
	for _, tx := range txs {
		if st.GetBalance(tx.From) == 0 {
			st.AddBalance(tx.From, 1_000_000_000)
		}
	}
	st.DiscardJournal()
	return st
}

func TestParallelFor(t *testing.T) {
	var sum atomic.Int64
	parallelFor(100, 8, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	var count atomic.Int64
	parallelFor(0, 4, func(int) { count.Add(1) })
	if count.Load() != 0 {
		t.Fatal("fn called for empty range")
	}
	parallelFor(3, 1, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatal("single worker path broken")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{10, 4, 3}, {8, 4, 2}, {1, 4, 1}, {0, 4, 0}}
	for _, c := range cases {
		if got := ceilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	if ceilDivU(10, 4) != 3 {
		t.Error("ceilDivU wrong")
	}
	// Non-positive divisors panic; see TestCeilDivValidatesDivisor.
}

func TestGroupedSpeedupBoundedByModel(t *testing.T) {
	// The grouped engine's unit speed-up can never exceed the paper's
	// eq. (2) bound min(n, x/LCC).
	g, err := chainsim.NewAcctGen(chainsim.EthereumClassicProfile(), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pre := g.Chain().State().Copy()
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(blk.Txs) == 0 {
			continue
		}
		res, err := Grouped{Workers: 8, Receipts: receipts}.Execute(pre, blk)
		if err != nil {
			t.Fatal(err)
		}
		// Bound: min(n, x / LCC).
		lcc := 0
		for _, gsz := range groupSizes(blk, receipts) {
			if gsz > lcc {
				lcc = gsz
			}
		}
		bound := float64(res.Stats.Txs) / float64(lcc)
		if b := float64(res.Stats.Workers); b < bound {
			bound = b
		}
		if res.Stats.Speedup > bound+1e-9 {
			t.Fatalf("grouped speed-up %v exceeds eq. (2) bound %v", res.Stats.Speedup, bound)
		}
	}
}

func groupSizes(blk *account.Block, receipts []*account.Receipt) []int {
	groups := groupsFromReceipts(blk, receipts, false, false)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	return sizes
}

// TestCeilDivValidatesDivisor is a regression test: the helpers used to
// return the dividend unchanged on a non-positive divisor, so a
// misconfigured worker count that slipped past engine validation produced a
// plausible-looking (wrong) schedule length instead of failing loudly.
func TestCeilDivValidatesDivisor(t *testing.T) {
	if got := ceilDiv(7, 2); got != 4 {
		t.Fatalf("ceilDiv(7,2) = %d", got)
	}
	if got := ceilDivU(7, 2); got != 4 {
		t.Fatalf("ceilDivU(7,2) = %d", got)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on invalid divisor", name)
			}
		}()
		fn()
	}
	mustPanic("ceilDiv zero", func() { ceilDiv(5, 0) })
	mustPanic("ceilDiv negative", func() { ceilDiv(5, -3) })
	mustPanic("ceilDivU zero", func() { ceilDivU(5, 0) })
}

// TestEnginesRejectZeroWorkers confirms every engine validates its worker
// count up front (ErrNoWorkers) rather than letting a zero divisor reach
// the schedule-length accounting.
func TestEnginesRejectZeroWorkers(t *testing.T) {
	st := account.NewStateDB()
	blk := &account.Block{Coinbase: addr(9000)}
	if _, err := (Speculative{}).Execute(st, blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("speculative: %v", err)
	}
	if _, err := (Grouped{}).Execute(st, blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("grouped: %v", err)
	}
	if _, err := (STMExec{}).Execute(st, blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("stm: %v", err)
	}
	if _, err := (Pipeline{}).Execute(st, blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("pipeline: %v", err)
	}
	if _, err := (Sharded{Shards: 2}).Execute(st, blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("sharded: %v", err)
	}
}
