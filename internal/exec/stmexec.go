package exec

import (
	"errors"
	"fmt"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/stm"
	"txconcur/internal/types"
)

// STMExec is an optimistic execution engine in the style the paper's
// related-work section attributes to Dickerson et al. [6] (and which later
// production systems like Block-STM industrialised): transactions execute
// speculatively in parallel through a software transactional memory, and
// commit strictly in block order with read-set validation; a transaction
// whose reads were invalidated by an earlier commit re-executes at its
// commit point.
//
// Unlike Speculative (one global parallel phase, then one sequential bin),
// STMExec pipelines in windows of n transactions, so a conflict only costs
// the conflicting transaction a retry instead of demoting it to a fully
// sequential phase.
type STMExec struct {
	// Workers is the core count n; it is also the lookahead window.
	Workers int
	// OpLevel records AddBalance/SubBalance as blind commutative deltas
	// (stm.Tx.WriteDelta) instead of read-modify-writes: concurrent credits
	// to one hot account commit without aborting each other, and only an
	// explicit balance read re-establishes a dependency on the key.
	OpLevel bool
	// Cost overrides the per-transaction schedule weight used for the
	// GasSeq/GasPar accounting; nil charges the receipt's gas.
	Cost CostModel
}

// stateVal is the uniform cell type stored in the STM: exactly one of the
// fields is meaningful for a given key kind.
type stateVal struct {
	i64   int64  // balances
	u64   uint64 // nonces, storage
	bytes []byte // code
}

// stmState adapts an stm.Tx over a base StateDB to the account.State
// interface. vm.State methods cannot return errors, so STM conflicts
// detected mid-transaction latch into err and the executor retries the
// whole transaction.
type stmState struct {
	base *account.StateDB
	tx   *stm.Tx[StateKey, stateVal]
	// op selects operation-level (delta) balance semantics.
	op bool
	// journal undoes buffered writes for VM Snapshot/Revert semantics.
	journal []func(*stmState)
	err     error
}

var _ account.State = (*stmState)(nil)

func (s *stmState) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// readVal reads through the transaction with base fallback. Missing keys
// are recorded in the read set (version 0), so later writes to them are
// detected at commit.
func (s *stmState) readVal(k StateKey) (stateVal, bool) {
	v, ok, err := s.tx.Read(k)
	if err != nil {
		s.fail(err)
		return stateVal{}, false
	}
	return v, ok
}

// currentVal returns the value the adapter currently exposes for k: the
// transaction's buffered write, else the committed store value, else the
// base state.
func (s *stmState) currentVal(k StateKey) stateVal {
	if v, ok := s.readVal(k); ok {
		return v
	}
	switch k.Kind {
	case kindBalance:
		return stateVal{i64: s.base.GetBalance(k.Addr)}
	case kindNonce:
		return stateVal{u64: s.base.GetNonce(k.Addr)}
	case kindCode:
		return stateVal{bytes: s.base.GetCode(k.Addr)}
	default:
		return stateVal{u64: s.base.GetStorage(k.Addr, k.Slot)}
	}
}

// writeVal buffers a write and journals the previously visible value, so
// that VM frame reverts restore exactly what a fresh read would have seen
// (the write set cannot shrink, but rewriting the prior value is
// semantically identical).
func (s *stmState) writeVal(k StateKey, v stateVal) {
	prev := s.currentVal(k)
	s.journal = append(s.journal, func(s *stmState) {
		_ = s.tx.Write(k, prev)
	})
	if err := s.tx.Write(k, v); err != nil {
		s.fail(err)
	}
}

// GetBalance implements vm.State.
func (s *stmState) GetBalance(a types.Address) int64 {
	k := StateKey{Kind: kindBalance, Addr: a}
	if s.op {
		// Materialise over the base state: committed delta cells and this
		// transaction's own pending deltas fold onto the base balance. The
		// read is version-recorded, so later delta commits by others still
		// invalidate us — reading re-establishes the dependency.
		v, err := s.tx.ReadBase(k, stateVal{i64: s.base.GetBalance(a)})
		if err != nil {
			s.fail(err)
			return 0
		}
		return v.i64
	}
	if v, ok := s.readVal(k); ok {
		return v.i64
	}
	return s.base.GetBalance(a)
}

// AddBalance implements vm.State.
func (s *stmState) AddBalance(a types.Address, v int64) {
	k := StateKey{Kind: kindBalance, Addr: a}
	if s.op {
		// Blind commutative increment: no read, no read-set entry, no
		// conflict with concurrent increments. The journal entry is the
		// inverse delta, which restores the exact pending sum on revert.
		s.journal = append(s.journal, func(s *stmState) {
			_ = s.tx.WriteDelta(k, stateVal{i64: -v})
		})
		if err := s.tx.WriteDelta(k, stateVal{i64: v}); err != nil {
			s.fail(err)
		}
		return
	}
	cur := s.GetBalance(a)
	s.writeVal(k, stateVal{i64: cur + v})
}

// SubBalance implements vm.State.
func (s *stmState) SubBalance(a types.Address, v int64) { s.AddBalance(a, -v) }

// GetNonce implements account.State.
func (s *stmState) GetNonce(a types.Address) uint64 {
	k := StateKey{Kind: kindNonce, Addr: a}
	if v, ok := s.readVal(k); ok {
		return v.u64
	}
	return s.base.GetNonce(a)
}

// SetNonce implements account.State.
func (s *stmState) SetNonce(a types.Address, n uint64) {
	s.writeVal(StateKey{Kind: kindNonce, Addr: a}, stateVal{u64: n})
}

// GetCode implements vm.State.
func (s *stmState) GetCode(a types.Address) []byte {
	k := StateKey{Kind: kindCode, Addr: a}
	if v, ok := s.readVal(k); ok {
		return v.bytes
	}
	return s.base.GetCode(a)
}

// SetCode implements account.State.
func (s *stmState) SetCode(a types.Address, code []byte) {
	c := make([]byte, len(code))
	copy(c, code)
	s.writeVal(StateKey{Kind: kindCode, Addr: a}, stateVal{bytes: c})
}

// GetStorage implements vm.State.
func (s *stmState) GetStorage(a types.Address, slot uint64) uint64 {
	k := StateKey{Kind: kindStorage, Addr: a, Slot: slot}
	if v, ok := s.readVal(k); ok {
		return v.u64
	}
	return s.base.GetStorage(a, slot)
}

// SetStorage implements vm.State.
func (s *stmState) SetStorage(a types.Address, slot, value uint64) {
	s.writeVal(StateKey{Kind: kindStorage, Addr: a, Slot: slot}, stateVal{u64: value})
}

// Snapshot implements vm.State.
func (s *stmState) Snapshot() int { return len(s.journal) }

// RevertToSnapshot implements vm.State.
func (s *stmState) RevertToSnapshot(snap int) {
	for i := len(s.journal) - 1; i >= snap; i-- {
		s.journal[i](s)
	}
	s.journal = s.journal[:snap]
}

// mergeStateVal folds a balance delta onto a state cell; only the i64
// (balance) field is ever delta-written.
func mergeStateVal(onto, delta stateVal) stateVal {
	onto.i64 += delta.i64
	return onto
}

// Execute runs the block on st (mutated on success).
func (e STMExec) Execute(st *account.StateDB, blk *account.Block) (*Result, error) {
	if e.Workers < 1 {
		return nil, ErrNoWorkers
	}
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()
	x := len(blk.Txs)
	var store *stm.Store[StateKey, stateVal]
	if e.OpLevel {
		store = stm.NewStoreDelta[StateKey, stateVal](mergeStateVal)
	} else {
		store = stm.NewStore[StateKey, stateVal]()
	}
	receipts := make([]*account.Receipt, x)

	retries := 0
	parUnits := 0
	committed := 0
	for committed < x {
		hi := committed + e.Workers
		if hi > x {
			hi = x
		}
		window := blk.Txs[committed:hi]
		parUnits += ceilDiv(len(window), e.Workers)

		// Speculate the whole window in parallel.
		states := make([]*stmState, len(window))
		specReceipts := make([]*account.Receipt, len(window))
		specErrs := make([]error, len(window))
		parallelFor(len(window), e.Workers, func(i int) {
			ss := &stmState{base: st, tx: store.Begin(), op: e.OpLevel}
			rcpt, err := procDeferred.ApplyTransaction(ss, blk, window[i])
			if err == nil && ss.err != nil {
				err = ss.err
			}
			states[i] = ss
			specReceipts[i] = rcpt
			specErrs[i] = err
		})

		// Commit strictly in block order; re-execute on conflict at the
		// commit point (where no concurrent commits can intervene).
		for i := range window {
			idx := committed + i
			ok := specErrs[i] == nil
			if ok {
				if err := states[i].tx.Commit(); err != nil {
					if !errors.Is(err, stm.ErrConflict) {
						return nil, fmt.Errorf("exec: stm commit tx %d: %w", idx, err)
					}
					ok = false
				}
			} else {
				states[i].tx.Abort()
			}
			if ok {
				receipts[idx] = specReceipts[i]
				continue
			}
			// Retry inline: nothing commits between Begin and Commit here,
			// so this attempt cannot conflict; an error now means the
			// block itself is invalid.
			retries++
			parUnits++
			ss := &stmState{base: st, tx: store.Begin(), op: e.OpLevel}
			rcpt, err := procDeferred.ApplyTransaction(ss, blk, window[i])
			if err == nil && ss.err != nil {
				err = ss.err
			}
			if err != nil {
				return nil, fmt.Errorf("exec: stm retry tx %d: %w", idx, err)
			}
			if err := ss.tx.Commit(); err != nil {
				return nil, fmt.Errorf("exec: stm retry commit tx %d: %w", idx, err)
			}
			receipts[idx] = rcpt
		}
		committed = hi
	}

	// Fold the committed STM cells into the state database. Anchored cells
	// hold absolute values; unanchored balance cells hold the pure delta
	// accumulated by blind credits, applied on top of the base balance.
	store.RangeCells(func(k StateKey, v stateVal, anchored bool) bool {
		switch {
		case k.Kind == kindBalance && !anchored:
			st.AddBalance(k.Addr, v.i64)
		case k.Kind == kindBalance:
			st.AddBalance(k.Addr, v.i64-st.GetBalance(k.Addr))
		case k.Kind == kindNonce:
			st.SetNonce(k.Addr, v.u64)
		case k.Kind == kindCode:
			st.SetCode(k.Addr, v.bytes)
		case k.Kind == kindStorage:
			st.SetStorage(k.Addr, k.Slot, v.u64)
		}
		return true
	})
	finalizeBlock(st, blk, receipts)

	res := &Result{Receipts: receipts, Root: st.Root()}
	res.Stats = Stats{
		Workers:    e.Workers,
		Txs:        x,
		Conflicted: retries,
		SeqUnits:   x,
		ParUnits:   parUnits,
		GasSeq:     costSum(e.Cost, blk.Txs, receipts),
		GasPar:     0,
		Retries:    retries,
		//txlint:clock wall-clock timing metric only
		Wall: time.Since(start),
	}
	// Gas-cost schedule: each window costs its max gas across workers plus
	// retried gas; approximate with Σ window-max. Unit-cost is the primary
	// model; gas parallel time is estimated as GasSeq/Workers bounded
	// below by the largest transaction.
	res.Stats.GasPar = ceilDivU(res.Stats.GasSeq, uint64(e.Workers))
	res.Stats.finish()
	return res, nil
}
