// Package testutil centralises the serial-equivalence oracle every engine
// suite checks against: a sequential replay of a block sequence and the
// root/receipt comparisons. The same helper verifies the per-block engines,
// the pipelined chains and the streaming builder, so "serial equivalence"
// means one thing across the repo.
//
// The replay reproduces exec.Sequential exactly — deferred coinbase fees
// credited in one batch after the block, then the block reward — but is
// implemented against internal/account alone so that in-package exec test
// files can import this package without an import cycle.
package testutil

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// procDeferred mirrors exec's shared processor configuration: fees are
// credited in one batch so the replay's intermediate states (which the VM
// can observe via balance reads) match what every parallel engine sees.
var procDeferred = account.Processor{DeferCoinbase: true}

// Chain is the sequential replay of a block sequence: the oracle for state
// roots and receipts.
type Chain struct {
	// Receipts holds the per-block, per-transaction receipts in order.
	Receipts [][]*account.Receipt
	// Roots holds the state root after each block.
	Roots []types.Hash
	// Final is the state database after the last block.
	Final *account.StateDB
}

// ReplaySequential replays blocks in order from a copy of pre (pre itself is
// never mutated), failing the test on any envelope error — a sequential
// replay that rejects a transaction means the fixture itself is broken.
func ReplaySequential(tb testing.TB, pre *account.StateDB, blocks []*account.Block) *Chain {
	tb.Helper()
	c := &Chain{Final: pre.Copy()}
	for i, blk := range blocks {
		receipts := make([]*account.Receipt, 0, len(blk.Txs))
		for j, tx := range blk.Txs {
			rcpt, err := procDeferred.ApplyTransaction(c.Final, blk, tx)
			if err != nil {
				tb.Fatalf("sequential replay block %d tx %d: %v", i, j, err)
			}
			receipts = append(receipts, rcpt)
		}
		c.Final.AddBalance(blk.Coinbase, account.Fees(blk.Txs, receipts))
		c.Final.AddBalance(blk.Coinbase, account.BlockReward)
		c.Final.DiscardJournal()
		c.Receipts = append(c.Receipts, receipts)
		c.Roots = append(c.Roots, c.Final.Root())
	}
	return c
}

// Root returns the chain root after the last block.
func (c *Chain) Root() types.Hash { return c.Final.Root() }

// RequireChain asserts that an engine's chain root and per-block receipts
// match the sequential oracle.
func (c *Chain) RequireChain(tb testing.TB, name string, root types.Hash, receipts [][]*account.Receipt) {
	tb.Helper()
	if root != c.Root() {
		tb.Fatalf("%s: chain root %s, sequential replay has %s", name, root.Short(), c.Root().Short())
	}
	if len(receipts) != len(c.Receipts) {
		tb.Fatalf("%s: %d receipt blocks, want %d", name, len(receipts), len(c.Receipts))
	}
	for b := range receipts {
		RequireReceipts(tb, name, b, receipts[b], c.Receipts[b])
	}
}

// RequireReceipts asserts that one block's receipts match the oracle's:
// status, gas, transaction hash and internal-call count — the fields every
// engine must agree on regardless of schedule.
func RequireReceipts(tb testing.TB, name string, block int, got, want []*account.Receipt) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s block %d: %d receipts, want %d", name, block, len(got), len(want))
	}
	for i := range got {
		a, w := got[i], want[i]
		if a == nil || w == nil {
			tb.Fatalf("%s block %d receipt %d missing", name, block, i)
		}
		if a.Status != w.Status || a.GasUsed != w.GasUsed || a.TxHash != w.TxHash ||
			len(a.Internal) != len(w.Internal) {
			tb.Fatalf("%s block %d receipt %d differs: %+v vs %+v", name, block, i, a, w)
		}
	}
}
